# Standard development targets; CI runs `make ci`.

GO ?= go

.PHONY: all vet orapvet audit fmt build test race bench bench-parallel bench-smoke bench-json ci

all: vet build test

vet:
	$(GO) vet ./...

# The repo's own invariants (no math/rand or wall-clock reads in
# internal/, Clone/Release pairing, ir.Program immutability, race-leg
# test hygiene) plus the interprocedural secret-flow engine behind the
# nosecret rule; see cmd/orapvet and DESIGN.md "Static analysis". The
# binary is built once so CI can rerun it with -report for the
# machine-readable artifact without a second compile.
orapvet:
	$(GO) build -o bin/orapvet ./cmd/orapvet
	./bin/orapvet -report VET_report.json

# Security clean-sweep: every shipped circuit × all five locking schemes
# through the audit analyzer, plus the weighted + OraP oracle pairing.
# Random XOR must fire the fingerprint/removability rules; OraP configs
# must audit error-free with full key entropy. See cmd/orapaudit -sweep.
audit:
	$(GO) run ./cmd/orapaudit -sweep

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Whole-repo race leg. -short skips the 2e6-draw RNG disjointness scan,
# which is slow under the race runtime and single-goroutine anyway; the
# orapvet shortrace rule guarantees no goroutine-spawning test hides
# behind the same gate. `go test` always executes the checked-in fuzz
# seed corpora (internal/sat's FuzzSolver/FuzzParseDIMACS included), so
# this leg also replays the solver crashers under the race detector.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# The serial-vs-parallel pairs behind the Performance sections of README
# and EXPERIMENTS.md.
bench-parallel:
	$(GO) test -run '^$$' -bench 'Serial|Parallel' -benchtime 3x .
	$(GO) test -run '^$$' -bench 'CloneRelease|NewParallelNoPool' -benchmem ./internal/sim

# One-iteration compile-and-run pass over the SAT-engine, dataflow, and
# vet benchmarks: the legacy-vs-COI miter attack pair, the propagation
# microbench, the five-domain fixpoint sweep (whose worker-invariance
# assertion runs before the timer), and a full secret-flow analysis of
# the orapvet fixture module. Catches benchmark bit-rot in CI without
# paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench 'SATAttack|SolverPropagate|Dataflow|BDDCompile|ExactCorrupt|VetModule' -benchtime 1x ./internal/attack ./internal/sat ./internal/dataflow ./internal/bdd ./internal/audit ./internal/vet

# Machine-readable oracle-channel benchmarks: the serial-vs-batched pairs
# (scan protocol, disagreement sampling, AppSAT settlement) plus the
# memoised-session batch, emitted as `go test -json` into BENCH_oracle.json
# for dashboards and regression diffing. BENCHTIME=3x for stabler numbers;
# CI runs the 1x default as a smoke pass.
BENCHTIME ?= 1x
bench-json:
	$(GO) test -run '^$$' -bench 'ScanOracle|SessionCached|SampleDisagreement|AppSAT' \
		-benchtime $(BENCHTIME) -json ./internal/oracle ./internal/attack > BENCH_oracle.json

ci: vet fmt orapvet audit build test race bench-smoke bench-json
