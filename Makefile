# Standard development targets; CI runs `make ci`.

GO ?= go

# Packages that gained goroutines in the worker-pool work: every PR runs
# them under the race detector.
RACE_PKGS := ./internal/par ./internal/rng ./internal/ir ./internal/sim ./internal/metrics ./internal/faultsim ./internal/exp

.PHONY: all vet build test race bench bench-parallel ci

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short race leg: -short skips the 2e6-draw RNG disjointness scan, which
# is slow under the race runtime and single-goroutine anyway.
race:
	$(GO) test -race -short $(RACE_PKGS)

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# The serial-vs-parallel pairs behind the Performance sections of README
# and EXPERIMENTS.md.
bench-parallel:
	$(GO) test -run '^$$' -bench 'Serial|Parallel' -benchtime 3x .
	$(GO) test -run '^$$' -bench 'CloneRelease|NewParallelNoPool' -benchmem ./internal/sim

ci: vet build test race
