// Testability: the paper's Table II observation in miniature — because
// the OraP key register sits in the scan chains, the key inputs of the
// protected circuit are freely controllable during test, the key gates
// act as test points, and fault coverage does not degrade (it typically
// improves).
//
// Run with: go run ./examples/testability
package main

import (
	"fmt"
	"log"

	"orap/internal/atpg"
	"orap/internal/benchgen"
	"orap/internal/faultsim"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/rng"
)

func main() {
	const seed = 11
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		log.Fatal(err)
	}
	design, err := benchgen.Generate(prof.Scale(0.01), seed)
	if err != nil {
		log.Fatal(err)
	}
	locked, err := lock.Weighted(design, lock.WeightedOptions{
		KeyBits:      24,
		ControlWidth: 3,
		Rand:         rng.New(seed),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The OraP-protected chip is TESTED LOCKED: the scan-enable edge cleared the")
	fmt.Println("key register, but the register is itself part of the scan chains, so ATPG")
	fmt.Println("may assign any key value — keys become controllable test inputs.")
	fmt.Println()

	for _, c := range []*netlist.Circuit{design, locked.Circuit} {
		sum, random, err := flow(c, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %6d faults | random phase %6.2f%% | final FC %6.2f%% | redundant %3d | aborted %d\n",
			c.Name, sum.Total, random, sum.Coverage(), sum.Redundant, sum.Aborted)
	}
	fmt.Println()
	fmt.Println("The protected circuit carries more faults (control and key gates) yet reaches")
	fmt.Println("at least the original coverage, mirroring the paper's Table II.")
}

func flow(c *netlist.Circuit, seed uint64) (atpg.Summary, float64, error) {
	sim, err := faultsim.New(c)
	if err != nil {
		return atpg.Summary{}, 0, err
	}
	faults := faultsim.CollapseFaults(c)
	rand := sim.RunRandom(faults, 32, rng.New(seed+1))
	sum, err := atpg.Run(c, sim, rand, atpg.Options{})
	return sum, rand.Coverage(), err
}
