// Trojan analysis: replay the five foundry-Trojan scenarios of the
// paper's Section III against chips built with the basic and the modified
// OraP scheme, and print each Trojan's payload cost under the paper's
// countermeasures.
//
// Run with: go run ./examples/trojan-analysis
package main

import (
	"fmt"
	"log"

	"orap/internal/exp"
	"orap/internal/lfsr"
	"orap/internal/trojan"
)

func main() {
	fmt.Println("Section III threat model: an untrusted foundry fabricates the chip with a")
	fmt.Println("Trojan, buys a functional part from the open market, triggers the Trojan and")
	fmt.Println("attacks through scan. The chip must keep its original functionality, so every")
	fmt.Println("payload gate risks side-channel detection — the countermeasures maximize that")
	fmt.Println("payload.")
	fmt.Println()

	rows, err := exp.TrojanStudy(exp.TrojanStudyOptions{KeyBits: 128, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(exp.FormatTrojanStudy(rows))
	fmt.Println()

	fmt.Println("Reading the table:")
	fmt.Println("  (a)/(b) suppress the key-register reset: they work behaviourally against both")
	fmt.Println("          schemes, but cost ≥64 GE on a 128-bit register (one pulse-generator")
	fmt.Println("          NAND per cell, or one bypass mux per cell under interleaved placement),")
	fmt.Println("          large enough for power side-channel detection.")
	fmt.Println("  (c)     a shadow key register works too, at an even larger payload.")
	fmt.Println("  (d)     XOR-tree reconstruction of the (linear) LFSR is exact — and enormous.")
	fmt.Println("  (e)     freezing the flip-flops is nearly free (a few gates) and defeats the")
	fmt.Println("          BASIC scheme: that is precisely why Fig. 3 feeds circuit responses")
	fmt.Println("          into the reseeding points. Against the MODIFIED scheme the frozen")
	fmt.Println("          (wrong) responses corrupt the generated key and the attack fails.")
	fmt.Println()

	// The designer's lever against scenario (d): sweep the LFSR design
	// space and show how the XOR-tree payload grows with mixing.
	sweep, err := exp.XorTreeSweep(128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Attack-(d) payload across the LFSR design space (128-bit key):")
	fmt.Print(exp.FormatXorTreeSweep(sweep))
	fmt.Println()

	// Show the paper's specific arithmetic for scenario (a).
	p := trojan.PayloadA(128)
	fmt.Printf("Paper cross-check — %v (the paper says \"roughly 64 NAND2 gates\")\n", p)

	// And a concrete scenario-(d) bill for the paper's default wiring.
	cfg := lfsr.Config{N: 128, Taps: lfsr.StandardTaps(128, 8), Inject: lfsr.AllInject(128)}
	d, err := trojan.PayloadD(cfg, lfsr.UniformSchedule(4, 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Scenario (d) with 4 seeds and 2 free-run cycles: %v\n", d)
}
