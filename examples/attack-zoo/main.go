// Attack zoo: every attack in the repository against one compound defense
// (weighted logic locking + SARLock), through an unprotected oracle and
// through OraP. Shows in one run why the paper protects the oracle rather
// than hardening the netlist further.
//
// Run with: go run ./examples/attack-zoo
package main

import (
	"fmt"
	"log"

	"orap/internal/attack"
	"orap/internal/benchgen"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/scan"
)

func main() {
	const seed = 13
	prof, err := benchgen.ProfileByName("b21")
	if err != nil {
		log.Fatal(err)
	}
	scaled := prof.Scale(0.004)
	design, err := benchgen.Generate(scaled, seed)
	if err != nil {
		log.Fatal(err)
	}
	// Compound defense: weighted locking for corruption + SARLock for SAT
	// resistance, the netlist-hardening state of the art the paper
	// contrasts itself against.
	r := rng.New(seed)
	l, err := lock.Stack(design,
		func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.Weighted(c, lock.WeightedOptions{KeyBits: 9, ControlWidth: 3, KeyGates: 9, Rand: r})
		},
		func(c *netlist.Circuit) (*lock.Locked, error) { return lock.SARLock(c, 6, r) },
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defense: weighted (9 bits) + SARLock (6 bits) on %s\n", design.Name)
	fmt.Printf("%-11s | %-24s | %-24s\n", "attack", "vs unprotected oracle", "vs OraP oracle")
	fmt.Println("------------+--------------------------+-------------------------")

	// Channel telemetry per attack×oracle cell, summarized after the table.
	type channelRow struct {
		attack string
		prot   string
		stats  oracle.ChannelStats
	}
	var channel []channelRow

	run := func(name string, f func(o oracle.Oracle, seed uint64) ([]bool, int, error)) {
		line := fmt.Sprintf("%-11s |", name)
		for _, prot := range []scan.Protection{scan.None, scan.OraPBasic} {
			o := newOracle(l, scaled, prot, seed)
			key, queries, err := f(o, seed)
			channel = append(channel, channelRow{name, prot.String(), o.Stats()})
			var verdict string
			switch {
			case err != nil:
				verdict = "not applicable"
			case key == nil:
				verdict = "bits undetermined"
			default:
				ok, verr := attack.VerifyKey(l.Circuit, design, key)
				if verr != nil {
					log.Fatal(verr)
				}
				if ok {
					verdict = fmt.Sprintf("KEY STOLEN (%d q)", queries)
				} else {
					ref, _ := oracle.NewComb(design, nil)
					dis, _ := attack.SampleDisagreement(l.Circuit, key, ref, 256, rng.New(seed+5))
					if dis <= 0.05 {
						// Approximate attacks (Double DIP, AppSAT) settle
						// with a key wrong on a vanishing input fraction —
						// their published success criterion.
						verdict = fmt.Sprintf("APPROX KEY %.0f%% err (%dq)", 100*dis, queries)
					} else {
						verdict = fmt.Sprintf("wrong key %.0f%% err (%dq)", 100*dis, queries)
					}
				}
			}
			line += fmt.Sprintf(" %-24s |", verdict)
		}
		fmt.Println(line)
	}

	budget := attack.Budgets{MaxIterations: 512}
	run("SAT", func(o oracle.Oracle, s uint64) ([]bool, int, error) {
		res, err := attack.SAT(l.Circuit, o, budget)
		return keyOf(res), queriesOf(res, o), err
	})
	run("DoubleDIP", func(o oracle.Oracle, s uint64) ([]bool, int, error) {
		res, err := attack.DoubleDIP(l.Circuit, o, budget)
		return keyOf(res), queriesOf(res, o), err
	})
	run("AppSAT", func(o oracle.Oracle, s uint64) ([]bool, int, error) {
		res, err := attack.AppSAT(l.Circuit, o, attack.AppSATOptions{Budgets: budget, Rand: rng.New(s + 1)})
		return keyOf(res), queriesOf(res, o), err
	})
	run("HillClimb", func(o oracle.Oracle, s uint64) ([]bool, int, error) {
		res, err := attack.HillClimb(l.Circuit, o, attack.HillOptions{Patterns: 256, Restarts: 16, Rand: rng.New(s + 2)})
		return keyOf(res), queriesOf(res, o), err
	})
	run("Sensitize", func(o oracle.Oracle, s uint64) ([]bool, int, error) {
		res, err := attack.Sensitize(l.Circuit, o, attack.SensitizeOptions{Rand: rng.New(s + 3)})
		if res == nil {
			return nil, 0, err
		}
		all := true
		for _, d := range res.Determined {
			all = all && d
		}
		if !all {
			return nil, res.OracleQueries, err // partial keys don't count
		}
		return res.Key, res.OracleQueries, err
	})
	run("Bypass", func(o oracle.Oracle, s uint64) ([]bool, int, error) {
		chosen := make([]bool, l.Circuit.NumKeys())
		res, err := attack.Bypass(l.Circuit, o, chosen, attack.BypassOptions{MaxPatches: 128})
		if err != nil {
			return nil, res.OracleQueries, err
		}
		// Treat the patched design as "key stolen" if it matches the
		// original everywhere (sampled).
		ref, _ := oracle.NewComb(design, nil)
		rr := rng.New(s + 4)
		wrong := 0
		x := make([]bool, design.NumInputs())
		for i := 0; i < 256; i++ {
			rr.Bits(x)
			want, _ := ref.Query(x)
			got, _ := res.Eval(l.Circuit, x)
			for j := range want {
				if want[j] != got[j] {
					wrong++
					break
				}
			}
		}
		if wrong == 0 {
			return res.Key, res.OracleQueries, nil // design effectively stolen
		}
		return nil, res.OracleQueries, fmt.Errorf("patched design wrong on %d/256 samples", wrong)
	})

	// SPS is oracle-less: it inspects the netlist alone. Against this
	// compound defense it nominates SARLock's skewed flip wire; the paper
	// notes OraP itself exposes no such signal (see internal/attack tests).
	sps, err := attack.SPS(l.Circuit, attack.SPSOptions{Rand: rng.New(seed + 6)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if sps.Candidate >= 0 {
		fmt.Printf("SPS (oracle-less): flags node %d as a skewed key-fed wire — SARLock's flip\n", sps.Candidate)
		fmt.Println("signal. Cutting it removes SARLock, but the weighted layer (and OraP) remain.")
	} else {
		fmt.Println("SPS (oracle-less): no skewed key-fed signal found.")
	}
	fmt.Println()
	fmt.Println("Note how every oracle-based attack that succeeds on the left column fails on")
	fmt.Println("the right: the OraP chip's key register cleared on the scan-enable edge, so")
	fmt.Println("all observations describe the locked circuit.")

	// The channel view of the same sessions: what each attack cost on the
	// scan interface, and what the transcript cache saved.
	fmt.Println()
	fmt.Println("oracle channel usage per session:")
	fmt.Printf("%-11s | %-13s | %8s | %8s | %6s | %11s\n",
		"attack", "oracle", "queries", "unique", "hit%", "scan cycles")
	for _, c := range channel {
		fmt.Printf("%-11s | %-13s | %8d | %8d | %5.1f%% | %11d\n",
			c.attack, c.prot, c.stats.Queries, c.stats.Unique, 100*c.stats.HitRate(), c.stats.ScanCycles)
	}
}

func keyOf(res *attack.Result) []bool {
	if res == nil {
		return nil
	}
	return res.Key
}

func queriesOf(res *attack.Result, o oracle.Oracle) int {
	if res != nil && res.OracleQueries > 0 {
		return res.OracleQueries
	}
	return o.Queries()
}

func newOracle(l *lock.Locked, prof benchgen.Profile, prot scan.Protection, seed uint64) *oracle.Session {
	cfg, err := orap.Protect(l.Circuit, l.Key, prof.Pins, prof.PinOuts, prot, orap.Options{Rand: rng.New(seed + 9)})
	if err != nil {
		log.Fatal(err)
	}
	ch, err := scan.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := ch.Unlock(nil); err != nil {
		log.Fatal(err)
	}
	return oracle.NewSession(oracle.NewScan(ch), 0)
}
