// Quickstart: lock a small circuit with weighted logic locking, protect
// it with the OraP scheme, unlock it the way the chip owner would, and
// show what an attacker's scan access sees.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"orap/internal/circuits"
	"orap/internal/lock"
	"orap/internal/oracle"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/scan"
	"orap/internal/sim"
)

func main() {
	r := rng.New(42)

	// 1. Start from a plain combinational design: an 8-bit ripple adder.
	//    Its 17 inputs are split into 9 package pins and 8 flip-flop
	//    outputs, its 9 outputs into 1 pin and 8 flip-flop inputs — the
	//    standard "combinational part" view of a sequential design.
	design := circuits.RippleAdder(8)
	fmt.Printf("design:  %s", design.Summary())

	// 2. Lock it with weighted logic locking: 12 key bits, 3-input
	//    control gates in front of each XOR/XNOR key gate, placed at the
	//    highest fault-impact nodes.
	locked, err := lock.Weighted(design, lock.WeightedOptions{
		KeyBits:      12,
		ControlWidth: 3,
		Rand:         r,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("locked:  %s", locked.Circuit.Summary())
	fmt.Printf("key:     %s (stays inside the design house)\n", bits(locked.Key))

	// 3. Protect the oracle with the basic OraP scheme: the key register
	//    becomes an LFSR unlocked by a multi-cycle key sequence, and every
	//    cell clears itself when scan enable rises.
	cfg, err := orap.Protect(locked.Circuit, locked.Key, 9, 1, scan.OraPBasic, orap.Options{Seeds: 4, FreeRun: 2, Rand: r})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OraP:    %d-cell LFSR, %d seeds over %d unlock cycles\n",
		cfg.LFSR.N, cfg.Schedule.NumSeeds(), cfg.Schedule.TotalCycles())
	for i, s := range cfg.Seeds {
		fmt.Printf("  tamper-proof memory word %d: %s (none of these is the key)\n", i, s)
	}

	// 4. Fabricate and activate the chip: run the unlock sequence.
	chip, err := scan.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := chip.Unlock(nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip unlocked: key register now holds %s\n", bits(chip.Key()))

	// 5. Normal operation works: add 100 + 27 through the chip and
	//    compare with the original design.
	pins := make([]bool, 9)
	ffs := make([]bool, 8)
	for i := 0; i < 8; i++ {
		pins[i] = 100>>uint(i)&1 == 1 // a = 100 on the pins
		ffs[i] = 27>>uint(i)&1 == 1   // b = 27 in the flip-flops
	}
	chip.SetScanEnable(true) // rising edge clears the key register!
	chip.ScanInFFs(ffs)
	chip.SetScanEnable(false)
	// The chip is locked again now — re-unlock (the controller's job),
	// which preserves our scanned state? No: unlock resets the state
	// flip-flops. This is exactly the attacker's dilemma. The legitimate
	// owner instead drives inputs through the functional interface after
	// one unlock, so let's do that comparison with the reference oracle.
	ref, err := sim.Eval(design, append(append([]bool(nil), pins...), ffs...), nil)
	if err != nil {
		log.Fatal(err)
	}
	sum := 0
	for i := 0; i < 8; i++ {
		if ref[i] {
			sum |= 1 << uint(i)
		}
	}
	fmt.Printf("reference: 100 + 27 = %d (bit 8 carry %v)\n", sum, ref[8])

	// 6. The attacker's view: scan-based queries on the protected chip
	//    return locked-circuit responses, because the rising scan-enable
	//    edge cleared the key register before the first shift.
	o := oracle.NewScan(chip)
	x := append(append([]bool(nil), pins...), ffs...)
	resp, err := o.Query(x)
	if err != nil {
		log.Fatal(err)
	}
	diff := 0
	for i := range resp {
		if resp[i] != ref[i] {
			diff++
		}
	}
	fmt.Printf("attacker's scan query: %d of %d response bits are wrong (locked-circuit response)\n",
		diff, len(resp))
	fmt.Printf("key register after the attack attempt: %s\n", bits(chip.Key()))
}

func bits(bs []bool) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
