// SAT-attack demo: the same locked circuit attacked twice — through an
// unprotected scan chain (the attack recovers the key) and through an
// OraP-protected one (the attack converges to a key that reproduces the
// locked circuit, not the design).
//
// Run with: go run ./examples/sat-attack-demo
package main

import (
	"fmt"
	"log"

	"orap/internal/attack"
	"orap/internal/benchgen"
	"orap/internal/lock"
	"orap/internal/oracle"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/scan"
)

func main() {
	const seed = 7
	// A small slice of the b20 profile keeps the SAT attack fast while
	// staying a "real" random-logic circuit.
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		log.Fatal(err)
	}
	design, err := benchgen.Generate(prof.Scale(0.004), seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design: %s", design.Summary())

	locked, err := lock.Weighted(design, lock.WeightedOptions{
		KeyBits:      14,
		ControlWidth: 3,
		KeyGates:     14,
		Rand:         rng.New(seed),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("locked with %d key bits; true key %s\n\n", len(locked.Key), bits(locked.Key))

	scaled := prof.Scale(0.004)
	for _, prot := range []scan.Protection{scan.None, scan.OraPBasic} {
		// Most of the circuit's inputs and outputs connect to flip-flops
		// (the profile's pin/FF split), so the attacker genuinely needs
		// the scan chains to control and observe the combinational core —
		// the paper's threat model.
		cfg, err := orap.Protect(locked.Circuit, locked.Key,
			scaled.Pins, scaled.PinOuts, prot, orap.Options{Rand: rng.New(seed + 1)})
		if err != nil {
			log.Fatal(err)
		}
		chip, err := scan.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := chip.Unlock(nil); err != nil {
			log.Fatal(err)
		}
		o := oracle.NewScan(chip)

		fmt.Printf("=== SAT attack via %s oracle ===\n", prot)
		res, err := attack.SAT(locked.Circuit, o, attack.Budgets{MaxIterations: 4096})
		if err != nil {
			fmt.Printf("attack error: %v\n\n", err)
			continue
		}
		fmt.Printf("converged after %d DIPs, %d oracle queries, %d SAT conflicts\n",
			res.Iterations, res.OracleQueries, res.SolverStats.Conflicts)
		fmt.Printf("recovered key: %s\n", bits(res.Key))
		ok, err := attack.VerifyKey(locked.Circuit, design, res.Key)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			fmt.Print("VERDICT: key is functionally CORRECT — the design is stolen\n\n")
		} else {
			ref, _ := oracle.NewComb(design, nil)
			dis, err := attack.SampleDisagreement(locked.Circuit, res.Key, ref, 512, rng.New(seed+2))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("VERDICT: key is WRONG — it reproduces the locked circuit, and disagrees with\n")
			fmt.Printf("the real design on %.0f%% of sampled inputs. The oracle was protected.\n\n", 100*dis)
		}
	}
}

func bits(bs []bool) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
