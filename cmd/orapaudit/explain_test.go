package main

import (
	"strings"
	"testing"
)

// -explain appends a witness path to each key-anchored finding; the
// fixture's leaking XOR must show the key input, the anchored output
// and the Anti proof along the path.
func TestExplainFlag(t *testing.T) {
	code, out, _ := runCase(t, "-explain", "testdata/warn.bench")
	if code != exitWarnings {
		t.Fatalf("exit %d, want %d\n%s", code, exitWarnings, out)
	}
	if !strings.Contains(out, "witness path (key bit 0 -> o1)") {
		t.Fatalf("missing witness path header:\n%s", out)
	}
	if !strings.Contains(out, "keyinput0") || !strings.Contains(out, "anti") {
		t.Fatalf("witness path missing the key input or the Anti proof:\n%s", out)
	}
	if !strings.Contains(out, "[key-leak]") {
		t.Fatalf("warn.bench must key-leak through its XOR output:\n%s", out)
	}
}

// Repeated runs must produce byte-identical output in every mode — the
// deterministic-ordering contract of the report sort.
func TestOutputDeterministic(t *testing.T) {
	for _, args := range [][]string{
		{"testdata/warn.bench", "testdata/clean.bench"},
		{"-json", "testdata/warn.bench"},
		{"-explain", "testdata/warn.bench"},
	} {
		code1, out1, _ := runCase(t, args...)
		code2, out2, _ := runCase(t, args...)
		if code1 != code2 || out1 != out2 {
			t.Fatalf("%v: runs differ (%d vs %d):\n%s\n---\n%s", args, code1, code2, out1, out2)
		}
	}
}
