package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// runCase drives run() the way main does and returns the exit code plus
// both streams.
func runCase(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestExitCodeClean(t *testing.T) {
	code, out, _ := runCase(t, "testdata/clean.bench")
	if code != exitClean {
		t.Fatalf("exit %d, want %d\n%s", code, exitClean, out)
	}
	if !strings.Contains(out, "0 errors, 0 warnings") {
		t.Fatalf("missing summary line:\n%s", out)
	}
}

func TestExitCodeWarningsOnly(t *testing.T) {
	code, out, _ := runCase(t, "testdata/warn.bench")
	if code != exitWarnings {
		t.Fatalf("exit %d, want %d\n%s", code, exitWarnings, out)
	}
	if !strings.Contains(out, "[key-fingerprint]") || !strings.Contains(out, "[low-corruptibility]") {
		t.Fatalf("expected fingerprint and corruptibility warnings:\n%s", out)
	}
}

func TestExitCodeErrors(t *testing.T) {
	code, out, _ := runCase(t, "testdata/err.bench")
	if code != exitErrors {
		t.Fatalf("exit %d, want %d\n%s", code, exitErrors, out)
	}
	if !strings.Contains(out, "[key-removable]") {
		t.Fatalf("expected a removability error:\n%s", out)
	}
}

// Errors must dominate warnings across a multi-file run, whatever the
// argument order.
func TestExitCodePrecedence(t *testing.T) {
	for _, args := range [][]string{
		{"testdata/warn.bench", "testdata/err.bench"},
		{"testdata/err.bench", "testdata/warn.bench"},
		{"testdata/clean.bench", "testdata/warn.bench"},
	} {
		want := exitErrors
		if args[0] == "testdata/clean.bench" {
			want = exitWarnings
		}
		code, out, _ := runCase(t, args...)
		if code != want {
			t.Errorf("%v: exit %d, want %d\n%s", args, code, want, out)
		}
	}
}

func TestExitCodeInternal(t *testing.T) {
	if code, _, _ := runCase(t, "testdata/missing.bench"); code != exitInternal {
		t.Fatalf("missing file: exit %d, want %d", code, exitInternal)
	}
	if code, _, _ := runCase(t); code != exitInternal {
		t.Fatalf("no arguments: exit %d, want %d", code, exitInternal)
	}
	if code, _, _ := runCase(t, "-nosuchflag"); code != exitInternal {
		t.Fatalf("bad flag: exit %d, want %d", code, exitInternal)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runCase(t, "-json", "testdata/warn.bench", "testdata/clean.bench")
	if code != exitWarnings {
		t.Fatalf("exit %d, want %d", code, exitWarnings)
	}
	var reports []jsonReport
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("unparseable JSON: %v\n%s", err, out)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	warn := reports[0]
	if warn.Errors != 0 || warn.Warnings == 0 {
		t.Fatalf("warn.bench counts: %+v", warn)
	}
	seen := map[string]bool{}
	for _, f := range warn.Findings {
		seen[f.Rule] = true
		if f.Severity == "" || f.Msg == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
	if !seen["key-fingerprint"] || !seen["low-corruptibility"] {
		t.Fatalf("missing rules in JSON findings: %+v", warn.Findings)
	}
	if clean := reports[1]; len(clean.Findings) != 0 {
		t.Fatalf("clean.bench findings: %+v", clean.Findings)
	}
}

// -min-corrupt raises the corruptibility threshold: a key bit covering
// both outputs is clean by default but flagged at 3.
func TestMinCorruptFlag(t *testing.T) {
	code, out, _ := runCase(t, "-min-corrupt", "1", "testdata/warn.bench")
	if code != exitWarnings {
		t.Fatalf("exit %d, want %d\n%s", code, exitWarnings, out)
	}
	if strings.Contains(out, "[low-corruptibility]") {
		t.Fatalf("corruptibility fired below the explicit threshold:\n%s", out)
	}
}

// -exact swaps the structural bounds for model-counted verdicts:
// warn.bench's single key bit feeds an output XOR, so the exact
// backend proves the leak as a tautology, counts the corrupting
// (input, key) pairs, and prints the BDD telemetry line.
func TestExactFlag(t *testing.T) {
	code, out, _ := runCase(t, "-exact", "testdata/warn.bench")
	if code != exitWarnings {
		t.Fatalf("exit %d, want %d\n%s", code, exitWarnings, out)
	}
	for _, want := range []string{
		"exact symbolic proof",
		"corrupts exactly 1 of 2 primary outputs",
		"exact: 1/1 key bits symbolic (0 budget fallbacks)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in -exact output:\n%s", want, out)
		}
	}
}

// A starved node budget must degrade to the dataflow bounds — same
// findings as the plain run plus a fallback count in the telemetry —
// never crash or change the exit code.
func TestExactBudgetFallback(t *testing.T) {
	code, out, _ := runCase(t, "-exact", "-bdd-budget", "1", "testdata/warn.bench")
	if code != exitWarnings {
		t.Fatalf("exit %d, want %d\n%s", code, exitWarnings, out)
	}
	for _, want := range []string{
		"can corrupt at most", // structural message, not the exact one
		"exact: 0/1 key bits symbolic (1 budget fallbacks)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in fallback output:\n%s", want, out)
		}
	}
}

func TestExactJSON(t *testing.T) {
	code, out, _ := runCase(t, "-json", "-exact", "testdata/warn.bench", "testdata/clean.bench")
	if code != exitWarnings {
		t.Fatalf("exit %d, want %d", code, exitWarnings)
	}
	var reports []jsonReport
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("unparseable JSON: %v\n%s", err, out)
	}
	warn := reports[0]
	if warn.Exact == nil || len(warn.Exact.Bits) != 1 {
		t.Fatalf("warn.bench exact section: %+v", warn.Exact)
	}
	b := warn.Exact.Bits[0]
	// 2 PIs + 1 key bit; the output XOR flips for every (input, key)
	// pair, so all 8 pairs corrupt and all 4 input patterns distinguish.
	if !b.OK || b.CorruptCount != "8" || b.DistInputs != "4" || b.Rate != 1 {
		t.Fatalf("exact bit verdict: %+v", b)
	}
	// clean.bench has no key inputs, so the audit returns before the
	// symbolic backend runs and the section is absent.
	if clean := reports[1]; clean.Exact != nil {
		t.Fatalf("clean.bench exact section: %+v", clean.Exact)
	}
}

// The sweep gate must pass against the shipped circuits and lockers.
func TestSweepPasses(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-sweep"}, &stdout, &stderr); code != exitClean {
		t.Fatalf("sweep exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, exitClean, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "0 violations") {
		t.Fatalf("missing sweep summary:\n%s", stdout.String())
	}
}
