package main

import (
	"fmt"
	"io"

	"orap/internal/audit"
	"orap/internal/check"
	"orap/internal/circuits"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/scan"
)

// sweepCircuits are the shipped reference designs the regression gate
// audits; sweepLockers the five locking schemes applied to each. The
// seeds match internal/audit's clean-sweep test so the CLI leg and the
// unit test pin the same fixed point.
func sweepCircuits() []struct {
	name string
	c    *netlist.Circuit
} {
	return []struct {
		name string
		c    *netlist.Circuit
	}{
		{"c17", circuits.C17()},
		{"fulladder", circuits.FullAdder()},
		{"rippleadder", circuits.RippleAdder(4)},
		{"parity", circuits.Parity(8)},
		{"comparator4", circuits.Comparator4()},
		{"mux21", circuits.Mux21()},
	}
}

func sweepLockers() []struct {
	name string
	lk   func(*netlist.Circuit) (*lock.Locked, error)
} {
	return []struct {
		name string
		lk   func(*netlist.Circuit) (*lock.Locked, error)
	}{
		{"randomxor", func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.RandomXOR(c, 3, rng.New(11))
		}},
		{"weighted", func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.Weighted(c, lock.WeightedOptions{KeyBits: 6, ControlWidth: 3, Rand: rng.New(12)})
		}},
		{"sarlock", func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.SARLock(c, 3, rng.New(13))
		}},
		{"antisat", func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.AntiSAT(c, 4, rng.New(14))
		}},
		{"ttlock", func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.TTLock(c, 3, rng.New(15))
		}},
	}
}

// runSweep is the make audit leg: audit every shipped circuit under all
// five locking schemes, then the weighted + OraP pairing. Every locked
// configuration is additionally proven functionally equivalent to its
// original under the stored key with the symbolic KeyEquivalence check
// — an exact proof over every input pattern where the lock tests only
// sample. Exit 1 when a fixed-point expectation breaks, 2 on synthesis
// failure, 0 otherwise — warnings are the *point* of the sweep (random
// XOR must warn), so unlike file mode they do not change the exit code.
func runSweep(stdout, stderr io.Writer) int {
	audited, proofs, violations := 0, 0, 0
	fail := func(format string, args ...any) {
		violations++
		fmt.Fprintf(stderr, "orapaudit: sweep: "+format+"\n", args...)
	}
	for _, sc := range sweepCircuits() {
		for _, sl := range sweepLockers() {
			l, err := sl.lk(sc.c.Clone())
			if err != nil {
				// Locking precondition (circuit too small), not a defect.
				fmt.Fprintf(stdout, "%-12s %-10s skipped (%v)\n", sc.name, sl.name, err)
				continue
			}
			rep, err := audit.Circuit(l.Circuit)
			if err != nil {
				fmt.Fprintf(stderr, "orapaudit: sweep: %s/%s: %v\n", sc.name, sl.name, err)
				return exitInternal
			}
			audited++
			errs, warns, infos := rep.Counts()
			fmt.Fprintf(stdout, "%-12s %-10s %d errors, %d warnings, %d notes\n",
				sc.name, sl.name, errs, warns, infos)

			// Symbolic proof that the lock preserved the function: the
			// locked circuit under its stored key must be equivalent to
			// the original on every input pattern.
			eqRep, err := audit.KeyEquivalence(l.Circuit, sc.c, l.Key, audit.ExactOptions{})
			if err != nil {
				fmt.Fprintf(stderr, "orapaudit: sweep: %s/%s: equivalence proof: %v\n", sc.name, sl.name, err)
				return exitInternal
			}
			if eqRep.HasErrors() {
				fail("%s/%s: locked circuit is not equivalent to the original under its key:\n%s",
					sc.name, sl.name, eqRep)
			} else {
				proofs++
			}

			for _, f := range rep.ByRule(audit.RuleKeyRemovable) {
				if f.Sev == check.Error {
					fail("%s/%s: removability error on a legitimate scheme:\n%s", sc.name, sl.name, rep)
				}
			}
			if sl.name == "randomxor" {
				hits := len(rep.ByRule(audit.RuleKeyFingerprint)) + len(rep.ByRule(audit.RuleKeyRemovable))
				if hits == 0 {
					fail("%s/randomxor: no fingerprint or removability finding", sc.name)
				}
			}
			if sl.name != "weighted" {
				continue
			}
			if rep.HasErrors() {
				fail("%s/weighted: netlist audit errors:\n%s", sc.name, rep)
			}
			cfg, err := orap.Protect(l.Circuit, l.Key,
				l.Circuit.NumInputs(), l.Circuit.NumOutputs(),
				scan.OraPBasic, orap.Options{Rand: rng.New(16)})
			if err != nil {
				fmt.Fprintf(stderr, "orapaudit: sweep: %s/weighted: protect: %v\n", sc.name, err)
				return exitInternal
			}
			orep, err := audit.Oracle(cfg, nil)
			if err != nil {
				fmt.Fprintf(stderr, "orapaudit: sweep: %s/weighted: oracle: %v\n", sc.name, err)
				return exitInternal
			}
			fmt.Fprintf(stdout, "%-12s %-10s oracle: %s\n", sc.name, "w+orap",
				fmt.Sprintf("%d errors, entropy %d/%d", len(orep.Errors()),
					orep.EffectiveEntropy, orep.NominalEntropy))
			if orep.HasErrors() {
				fail("%s/weighted+orap: oracle audit errors:\n%s", sc.name, orep)
			}
			if orep.EffectiveEntropy != orep.NominalEntropy || orep.NominalEntropy != len(l.Key) {
				fail("%s/weighted+orap: entropy %d/%d, want full %d",
					sc.name, orep.EffectiveEntropy, orep.NominalEntropy, len(l.Key))
			}
		}
	}
	fmt.Fprintf(stdout, "sweep: %d configurations audited, %d equivalence proofs, %d violations\n",
		audited, proofs, violations)
	if violations > 0 {
		return exitErrors
	}
	return exitClean
}
