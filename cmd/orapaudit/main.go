// Command orapaudit runs the security static analyzer over locked
// .bench netlists: key-gate removability, topology fingerprints and
// output-corruptibility bounds, with findings referencing the attack
// literature that exploits each weakness.
//
// Usage:
//
//	orapaudit locked.bench ...       # audit netlists, text report
//	orapaudit -json locked.bench     # machine-readable report
//	orapaudit -explain locked.bench  # append witness paths to key findings
//	orapaudit -min-corrupt 4 x.bench # raise the corruptibility threshold
//	orapaudit -exact locked.bench    # model-counted verdicts (ROBDD backend)
//	orapaudit -sweep                 # built-in clean-sweep regression gate
//
// -exact swaps the structural corruptibility and key-leak bounds for
// exact symbolic verdicts: per key bit the analyzer compiles the bit's
// corruption cone to a ROBDD and model-counts corrupting (input, key)
// pairs and distinguishing inputs. A cone exceeding the node budget
// (-bdd-budget, default 2^19 nodes) degrades that bit back to the
// dataflow bound; the report's telemetry line counts such fallbacks.
//
// Exit codes (documented in README, asserted in tests, consumed by the
// make audit leg):
//
//	0  clean, or info-level findings only
//	1  error-severity findings (or a netlist that fails internal/check)
//	2  internal failure (unreadable file, bad flags)
//	3  warning-severity findings, no errors
//
// -sweep audits every shipped reference circuit under all five locking
// schemes plus the weighted + OraP pairing, and enforces the repo's
// fixed-point expectations: random-XOR locking must fire the
// fingerprint/removability rules, and OraP-protected configurations
// must audit error-free with full effective key entropy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"orap/internal/audit"
	"orap/internal/check"
	"orap/internal/ir"
)

// Exit codes.
const (
	exitClean    = 0
	exitErrors   = 1
	exitInternal = 2
	exitWarnings = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	KeyBit   int    `json:"key_bit"`
	Node     int    `json:"node"`
	Name     string `json:"name,omitempty"`
	Line     int    `json:"line,omitempty"`
	Msg      string `json:"msg"`
	Ref      string `json:"ref,omitempty"`
}

// jsonExactBit is the -json wire form of one key bit's symbolic
// verdict; the model counts travel as decimal strings since they can
// exceed float64 (and JSON number) precision.
type jsonExactBit struct {
	Bit          int     `json:"bit"`
	OK           bool    `json:"ok"`
	ConePOs      int     `json:"cone_pos"`
	SensPOs      int     `json:"sens_pos"`
	SupportVars  int     `json:"support_vars"`
	CorruptCount string  `json:"corrupt_count,omitempty"`
	Rate         float64 `json:"rate"`
	DistInputs   string  `json:"dist_inputs,omitempty"`
	LeakPOs      []int32 `json:"leak_pos,omitempty"`
}

// jsonExact is the -json wire form of the symbolic backend's result.
type jsonExact struct {
	NumPIs       int            `json:"num_pis"`
	NumKeys      int            `json:"num_keys"`
	Bits         []jsonExactBit `json:"bits"`
	BDDNodes     int            `json:"bdd_nodes"`
	BDDPeakNodes int            `json:"bdd_peak_nodes"`
	BDDBudget    int            `json:"bdd_budget"`
	CacheHitRate float64        `json:"ite_cache_hit_rate"`
	Fallbacks    int            `json:"budget_fallbacks"`
}

// jsonReport is the -json wire form of one circuit's report.
type jsonReport struct {
	Circuit  string        `json:"circuit"`
	Findings []jsonFinding `json:"findings"`
	Errors   int           `json:"errors"`
	Warnings int           `json:"warnings"`
	Infos    int           `json:"infos"`
	Exact    *jsonExact    `json:"exact,omitempty"`
}

func toJSON(rep *audit.Report) jsonReport {
	out := jsonReport{Circuit: rep.Circuit, Findings: []jsonFinding{}}
	out.Errors, out.Warnings, out.Infos = rep.Counts()
	for _, f := range rep.Findings {
		out.Findings = append(out.Findings, jsonFinding{
			Rule:     f.Rule,
			Severity: f.Sev.String(),
			KeyBit:   f.KeyBit,
			Node:     f.Node,
			Name:     f.Name,
			Line:     f.Line,
			Msg:      f.Msg,
			Ref:      f.Ref,
		})
	}
	if ex := rep.Exact; ex != nil {
		je := &jsonExact{
			NumPIs:       ex.NumPIs,
			NumKeys:      ex.NumKeys,
			BDDNodes:     ex.Stats.Nodes,
			BDDPeakNodes: ex.Stats.PeakNodes,
			BDDBudget:    ex.Stats.Budget,
			CacheHitRate: ex.Stats.HitRate(),
			Fallbacks:    ex.Stats.Fallbacks,
		}
		for _, b := range ex.Bits {
			jb := jsonExactBit{
				Bit:         b.Bit,
				OK:          b.OK,
				ConePOs:     b.ConePOs,
				SensPOs:     b.SensPOs,
				SupportVars: b.SupportVars,
				Rate:        b.Rate,
				LeakPOs:     b.LeakPOs,
			}
			if b.CorruptCount != nil {
				jb.CorruptCount = b.CorruptCount.String()
			}
			if b.DistInputs != nil {
				jb.DistInputs = b.DistInputs.String()
			}
			je.Bits = append(je.Bits, jb)
		}
		out.Exact = je
	}
	return out
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("orapaudit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut    = fs.Bool("json", false, "emit the report as JSON")
		wall       = fs.Bool("Wall", false, "also print internal/check warnings while loading")
		sweep      = fs.Bool("sweep", false, "run the built-in clean-sweep regression gate and exit")
		explain    = fs.Bool("explain", false, "append a key-to-node witness path to each key-anchored finding (text mode)")
		minCorrupt = fs.Int("min-corrupt", 0, "low-corruptibility threshold in primary outputs (0 = default)")
		exact      = fs.Bool("exact", false, "model-counted verdicts via the ROBDD backend (falls back per key bit over budget)")
		bddBudget  = fs.Int("bdd-budget", 0, "per-key-bit BDD node budget for -exact (0 = default 2^19)")
	)
	if err := fs.Parse(args); err != nil {
		return exitInternal
	}
	if *sweep {
		return runSweep(stdout, stderr)
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "orapaudit: no input files (and no -sweep); see -h")
		return exitInternal
	}

	opts := audit.Options{MinCorruptPOs: *minCorrupt, Exact: *exact, BDDBudget: *bddBudget}
	code := exitClean
	raise := func(c int) {
		// Severity order of the exit codes is errors > warnings > clean;
		// internal failures abort immediately and never reach here.
		if c == exitErrors || code == exitErrors {
			code = exitErrors
		} else if c == exitWarnings {
			code = exitWarnings
		}
	}
	var reports []jsonReport
	for _, path := range fs.Args() {
		c, crep, err := check.File(path)
		if err != nil {
			fmt.Fprintf(stderr, "orapaudit: %v\n", err)
			return exitInternal
		}
		if *wall || crep.HasErrors() {
			fmt.Fprint(stderr, crep.String())
		}
		if crep.HasErrors() {
			// A netlist that fails the structural checker counts as
			// error findings, not as an internal failure: the input was
			// readable, the verdict is "broken".
			raise(exitErrors)
			continue
		}
		prog, err := ir.Compile(c)
		if err != nil {
			fmt.Fprintf(stderr, "orapaudit: %s: %v\n", path, err)
			return exitInternal
		}
		rep := audit.AnalyzeProgram(prog, c, opts)
		errs, warns, infos := rep.Counts()
		switch {
		case errs > 0:
			raise(exitErrors)
		case warns > 0:
			raise(exitWarnings)
		}
		if *jsonOut {
			reports = append(reports, toJSON(rep))
			continue
		}
		if *explain {
			printExplained(stdout, prog, c, rep)
		} else {
			fmt.Fprint(stdout, rep.String())
		}
		fmt.Fprintf(stdout, "%s: %d errors, %d warnings, %d notes\n", path, errs, warns, infos)
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(stderr, "orapaudit: %v\n", err)
			return exitInternal
		}
	}
	return code
}
