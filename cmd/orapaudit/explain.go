package main

import (
	"fmt"
	"io"

	"orap/internal/audit"
	"orap/internal/dataflow"
	"orap/internal/ir"
	"orap/internal/netlist"
)

// printExplained renders the report like Report.String, but follows
// every key-anchored finding with the witness path audit.Explain
// reconstructs: the chain of nets from the key input to the finding's
// anchor, annotated with the abstract values the engine proved on each
// step.
func printExplained(w io.Writer, prog *ir.Program, c *netlist.Circuit, rep *audit.Report) {
	for _, f := range rep.Findings {
		fmt.Fprintf(w, "%s: %s\n", rep.Circuit, f)
		if f.KeyBit < 0 || f.Node < 0 {
			continue
		}
		steps := audit.Explain(prog, c, f)
		if len(steps) == 0 {
			continue
		}
		fmt.Fprintf(w, "  witness path (key bit %d -> %s):\n", f.KeyBit, steps[len(steps)-1].Name)
		for _, s := range steps {
			fmt.Fprintf(w, "    %-6v %-12s pair=(%s,%s%s) taint=%d cc=%d/%d co=%s\n",
				s.Op, s.Name, tern(s.V0), tern(s.V1), pairFlags(s),
				s.TaintBits, s.CC0, s.CC1, coStr(s.CO))
		}
	}
}

// tern renders a ternary abstract value.
func tern(v int8) string {
	if v == dataflow.Unknown {
		return "?"
	}
	return fmt.Sprintf("%d", v)
}

// pairFlags renders the pair domain's proof flags.
func pairFlags(s audit.PathStep) string {
	switch {
	case s.Anti:
		return " anti"
	case s.Eq:
		return " eq"
	}
	return ""
}

// coStr renders an observability score, with the lattice ceiling shown
// as unreachable.
func coStr(co int32) string {
	if co >= dataflow.Unreachable {
		return "unreach"
	}
	return fmt.Sprintf("%d", co)
}
