// Command orapsim simulates one chip session: build an OraP-protected
// chip from a locked .bench netlist, run the owner's unlock sequence,
// then play an attacker's scan queries (or a chosen Trojan scenario)
// against it, printing what each side observes.
//
// Usage:
//
//	orapsim -locked c432_locked.bench -key 0110… -protect basic \
//	        -query 101001… -query 111000…
//	orapsim -locked c432_locked.bench -key 0110… -protect modified -trojan freeze
//
// Each -query shifts a pattern through the scan chains (scan in – capture
// – scan out) and prints the response next to the correct one, bit
// differences marked. -trojan {suppress,shadow,freeze} arms the
// corresponding Section III payload before the session.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"orap/internal/check"
	"orap/internal/ir"
	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/orap"
	"orap/internal/par"
	"orap/internal/rng"
	"orap/internal/scan"
)

type queryList []string

func (q *queryList) String() string { return fmt.Sprint(*q) }
func (q *queryList) Set(s string) error {
	*q = append(*q, s)
	return nil
}

func main() {
	var queries queryList
	var (
		lockedPath = flag.String("locked", "", "locked .bench netlist (required)")
		key        = flag.String("key", "", "correct key as a 0/1 string (required)")
		prot       = flag.String("protect", "basic", "protection: none, basic, modified")
		trojanName = flag.String("trojan", "", "arm a Trojan: suppress, shadow, freeze")
		pins       = flag.Int("pins", -1, "package-pin inputs (-1 = all)")
		pinOuts    = flag.Int("pinouts", -1, "package-pin outputs (-1 = all)")
		seed       = flag.Uint64("seed", 1, "random seed for the scheme synthesis")
		workers    = flag.Int("workers", 0, "worker pool size for reference-response simulation (0 = all cores)")
		wall       = flag.Bool("Wall", false, "print warning- and info-level netlist diagnostics")
	)
	flag.Var(&queries, "query", "input pattern to scan in (repeatable); random patterns are used when none given")
	flag.Parse()
	if *lockedPath == "" || *key == "" {
		fmt.Fprintln(os.Stderr, "orapsim: -locked and -key are required")
		flag.Usage()
		os.Exit(2)
	}
	var warn io.Writer
	if *wall {
		warn = os.Stderr
	}
	locked, err := check.LoadFile(*lockedPath, warn)
	fatal(err)
	if len(*key) != locked.NumKeys() {
		fatal(fmt.Errorf("key must have %d bits, got %d", locked.NumKeys(), len(*key)))
	}
	kb := make([]bool, len(*key))
	for i := range kb {
		kb[i] = (*key)[i] == '1'
	}

	var protection scan.Protection
	switch *prot {
	case "none":
		protection = scan.None
	case "basic":
		protection = scan.OraPBasic
	case "modified":
		protection = scan.OraPModified
	default:
		fatal(fmt.Errorf("unknown protection %q", *prot))
	}
	realPIs, realPOs := *pins, *pinOuts
	if realPIs < 0 {
		realPIs = locked.NumInputs()
	}
	if realPOs < 0 {
		realPOs = locked.NumOutputs()
	}
	cfg, err := orap.Protect(locked, kb, realPIs, realPOs, protection, orap.Options{Rand: rng.New(*seed)})
	fatal(err)
	chip, err := scan.New(cfg)
	fatal(err)

	fmt.Printf("chip: %s protection, %d-bit key register", protection, locked.NumKeys())
	if protection != scan.None {
		fmt.Printf(", %d seeds over %d unlock cycles", cfg.Schedule.NumSeeds(), cfg.Schedule.TotalCycles())
	}
	fmt.Println()

	switch *trojanName {
	case "":
	case "suppress":
		chip.ArmTrojans(scan.Trojans{SuppressKeyReset: true})
		fmt.Println("trojan: key-register reset suppressed (scenarios a/b)")
	case "shadow":
		chip.ArmTrojans(scan.Trojans{ShadowKey: true})
		fmt.Println("trojan: shadow key register armed (scenario c)")
	case "freeze":
		chip.ArmTrojans(scan.Trojans{FreezeFFs: true})
		fmt.Println("trojan: flip-flops frozen during unlock (scenario e)")
	default:
		fatal(fmt.Errorf("unknown trojan %q", *trojanName))
	}

	fmt.Println("owner: running the unlock sequence…")
	fatal(chip.Unlock(nil))
	fmt.Printf("owner: key register now %s (correct: %s)\n", bits(chip.Key()), *key)

	if *trojanName == "shadow" {
		leaked, err := chip.ReadShadow()
		fatal(err)
		fmt.Printf("trojan: shadow register leaked %s\n", bits(leaked))
	}

	// Attacker session. The chip itself is stateful and must be queried
	// serially, but the correct reference responses are independent per
	// pattern, so they are simulated up front on the worker pool.
	o := oracle.NewScan(chip)
	pats := patterns(queries, locked, *seed)
	prog := ir.MustCompile(locked) // compiled once; Eval is goroutine-safe
	wants := make([][]bool, len(pats))
	fatal(par.ForEach(*workers, len(pats), func(i int) error {
		w, err := prog.Eval(pats[i], kb)
		wants[i] = w
		return err
	}))
	fmt.Printf("\nattacker: %d scan queries (scan in – capture – scan out)\n", len(pats))
	for qi, x := range pats {
		resp, err := o.Query(x)
		fatal(err)
		want := wants[qi]
		diff := 0
		for i := range resp {
			if resp[i] != want[i] {
				diff++
			}
		}
		status := "CORRECT — oracle exposed"
		if diff > 0 {
			status = fmt.Sprintf("%d/%d bits wrong — locked-circuit response", diff, len(resp))
		}
		fmt.Printf("  query %d: in=%s out=%s (%s)\n", qi, bits(x), bits(resp), status)
	}
	fmt.Printf("\nkey register after the session: %s\n", bits(chip.Key()))
	fmt.Printf("scan interface: %d test-clock cycles (%d-cell longest chain, %d cycles per query)\n",
		chip.Cycles(), chip.ChainLength(), chip.CyclesPerQuery())
}

// patterns parses the -query strings or draws random patterns.
func patterns(qs queryList, c *netlist.Circuit, seed uint64) [][]bool {
	var out [][]bool
	for _, q := range qs {
		if len(q) != c.NumInputs() {
			fatal(fmt.Errorf("query %q must have %d bits", q, c.NumInputs()))
		}
		x := make([]bool, len(q))
		for i := range x {
			x[i] = q[i] == '1'
		}
		out = append(out, x)
	}
	if len(out) == 0 {
		r := rng.New(seed + 100)
		for i := 0; i < 3; i++ {
			x := make([]bool, c.NumInputs())
			r.Bits(x)
			out = append(out, x)
		}
	}
	return out
}

func bits(bs []bool) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "orapsim: %v\n", err)
		os.Exit(1)
	}
}
