// Command orapattack runs oracle-guided attacks against a locked .bench
// circuit.
//
// The oracle is built from the original (unlocked) circuit plus, for the
// realistic mode, a simulated chip with scan chains: -oracle comb queries
// the function directly, -oracle scan goes through the scan in – capture –
// scan out protocol of a chip protected as requested. Against -protect
// basic/modified the scan oracle answers for the locked circuit (the key
// register clears on the scan-enable rising edge) and the attacks fail —
// the paper's central claim, reproducible from the command line.
//
// Usage:
//
//	orapattack -locked c432_locked.bench -orig c432.bench -attack sat -oracle scan -protect basic
//
// With -dimacs <path> the command instead writes the SAT-attack miter for
// the locked netlist as a DIMACS CNF file (input/key variable indices in
// the header comments) for cross-checking against external solvers, and
// exits without running an attack.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"orap/internal/attack"
	"orap/internal/check"
	"orap/internal/cnf"
	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/sat"
	"orap/internal/scan"
)

func main() {
	var (
		lockedPath = flag.String("locked", "", "locked .bench netlist (required)")
		origPath   = flag.String("orig", "", "original .bench netlist, used as the oracle and for verification (required)")
		attackName = flag.String("attack", "sat", "attack: sat, doubledip, appsat, hill, sensitize")
		oracleKind = flag.String("oracle", "comb", "oracle: comb (direct) or scan (through the chip's scan protocol)")
		prot       = flag.String("protect", "none", "chip protection for -oracle scan: none, basic, modified")
		key        = flag.String("key", "", "correct key as a 0/1 string (required for -oracle scan)")
		maxIter    = flag.Int("maxiter", 4096, "attack iteration budget")
		seed       = flag.Uint64("seed", 1, "random seed")
		wall       = flag.Bool("Wall", false, "print warning- and info-level netlist diagnostics")
		dimacsPath = flag.String("dimacs", "", "write the SAT-attack miter as DIMACS CNF to this path and exit (no attack run)")
	)
	flag.Parse()
	if *lockedPath == "" || *origPath == "" {
		fmt.Fprintln(os.Stderr, "orapattack: -locked and -orig are required")
		flag.Usage()
		os.Exit(2)
	}
	var warn io.Writer
	if *wall {
		warn = os.Stderr
	}
	locked := parse(*lockedPath, warn)
	orig := parse(*origPath, warn)
	if orig.NumKeys() != 0 {
		fatal(fmt.Errorf("original netlist %q has key inputs; pass the unlocked design", *origPath))
	}

	if *dimacsPath != "" {
		fatal(dumpMiterDIMACS(locked, *dimacsPath))
		fmt.Printf("wrote miter CNF for %s to %s\n", locked.Name, *dimacsPath)
		return
	}

	var inner oracle.Oracle
	switch *oracleKind {
	case "comb":
		var err error
		inner, err = oracle.NewComb(orig, nil)
		fatal(err)
	case "scan":
		if len(*key) != locked.NumKeys() {
			fatal(fmt.Errorf("-oracle scan needs -key with %d bits", locked.NumKeys()))
		}
		kb := make([]bool, len(*key))
		for i := range kb {
			kb[i] = (*key)[i] == '1'
		}
		var protection scan.Protection
		switch *prot {
		case "none":
			protection = scan.None
		case "basic":
			protection = scan.OraPBasic
		case "modified":
			protection = scan.OraPModified
		default:
			fatal(fmt.Errorf("unknown protection %q", *prot))
		}
		// All interface bits are treated as package pins for the simulated
		// chip; the protection mechanics (key-register clearing) are
		// independent of the pin/flip-flop split.
		cfg, err := orap.Protect(locked, kb, locked.NumInputs(), locked.NumOutputs(), protection, orap.Options{Rand: rng.New(*seed + 7)})
		fatal(err)
		ch, err := scan.New(cfg)
		fatal(err)
		fatal(ch.Unlock(nil))
		inner = oracle.NewScan(ch)
	default:
		fatal(fmt.Errorf("unknown oracle kind %q", *oracleKind))
	}
	// Every attack runs through a channel session: batched word queries,
	// transcript memoisation, and the telemetry printed below.
	o := oracle.NewSession(inner, 0)

	budgets := attack.Budgets{MaxIterations: *maxIter}
	r := rng.New(*seed)
	start := time.Now()
	var (
		res *attack.Result
		err error
	)
	switch *attackName {
	case "sat":
		res, err = attack.SAT(locked, o, budgets)
	case "doubledip":
		res, err = attack.DoubleDIP(locked, o, budgets)
	case "appsat":
		res, err = attack.AppSAT(locked, o, attack.AppSATOptions{Budgets: budgets, Rand: r})
	case "hill":
		res, err = attack.HillClimb(locked, o, attack.HillOptions{Rand: r})
	case "sensitize":
		var sres *attack.SensitizeResult
		sres, err = attack.Sensitize(locked, o, attack.SensitizeOptions{Rand: r})
		if sres != nil {
			res = &sres.Result
			determined := 0
			for _, d := range sres.Determined {
				if d {
					determined++
				}
			}
			fmt.Printf("determined key bits: %d/%d\n", determined, locked.NumKeys())
		}
	default:
		fatal(fmt.Errorf("unknown attack %q", *attackName))
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	if err != nil {
		fmt.Printf("attack %s failed after %v: %v\n", *attackName, elapsed, err)
		if res != nil {
			fmt.Printf("iterations: %d, oracle queries: %d\n", res.Iterations, res.OracleQueries)
		}
		printChannel(o.Stats())
		os.Exit(1)
	}
	fmt.Printf("attack:        %s (%v)\n", *attackName, elapsed)
	fmt.Printf("converged:     %v\n", res.Converged)
	fmt.Printf("iterations:    %d\n", res.Iterations)
	fmt.Printf("oracle queries:%d\n", res.OracleQueries)
	printChannel(o.Stats())
	st := res.SolverStats
	fmt.Printf("solver:        %d conflicts, %d decisions, %d propagations (%d binary)\n",
		st.Conflicts, st.Decisions, st.Propagations, st.BinPropagations)
	fmt.Printf("learned:       %d clauses (%d glue, mean LBD %.2f, mean len %.1f), %d lits minimized away\n",
		st.Learnt, st.GlueClauses(), st.MeanLBD(), st.MeanLearntLen(), st.MinimizedLits)
	if st.Reductions > 0 {
		fmt.Printf("reductions:    %d (removed %d learned clauses)\n", st.Reductions, st.RemovedClauses)
	}
	if res.Key == nil {
		fmt.Println("no key recovered")
		os.Exit(1)
	}
	fmt.Printf("recovered key: %s\n", bits(res.Key))
	ok, err := attack.VerifyKey(locked, orig, res.Key)
	fatal(err)
	fmt.Printf("key correct:   %v (SAT equivalence check)\n", ok)
	if !ok {
		dis, err := attack.SampleDisagreement(locked, res.Key, mustComb(orig), 512, rng.New(*seed+99))
		fatal(err)
		fmt.Printf("disagreement:  %.1f%% of sampled inputs\n", 100*dis)
	}
}

// dumpMiterDIMACS builds the cone-of-influence SAT-attack miter for the
// locked circuit and writes it in DIMACS CNF, with header comments mapping
// the shared primary inputs, the two key copies and the activation
// variable to their 1-based DIMACS indices. External solvers can check the
// base formula: it is satisfiable iff some input pattern distinguishes two
// keys (solve under the unit assumption act=true; act=false disables the
// disequality).
func dumpMiterDIMACS(locked *netlist.Circuit, path string) error {
	s := sat.New()
	m, err := cnf.NewMiter(s, locked)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "c SAT-attack miter (cone-of-influence encoding) for circuit %q\n", locked.Name)
	fmt.Fprintf(w, "c two key copies share the primary inputs; the clause guarded by act\n")
	fmt.Fprintf(w, "c asserts that some key-reachable output differs between the copies.\n")
	fmt.Fprintf(w, "c assume act (positive) to search for a distinguishing input;\n")
	fmt.Fprintf(w, "c assume -act for a formula where the copies may agree everywhere.\n")
	fmt.Fprintf(w, "c variables are 1-based DIMACS indices:\n")
	fmt.Fprintf(w, "c act %d\n", int(m.Act)+1)
	fmt.Fprintf(w, "c inputs %s\n", dimacsVars(m.PIVars))
	fmt.Fprintf(w, "c key1 %s\n", dimacsVars(m.Key1))
	fmt.Fprintf(w, "c key2 %s\n", dimacsVars(m.Key2))
	if err := w.Flush(); err != nil {
		return err
	}
	if err := s.WriteDIMACS(f); err != nil {
		return err
	}
	return f.Close()
}

// dimacsVars renders a variable slice as space-separated 1-based indices.
func dimacsVars(vars []sat.Var) string {
	var b strings.Builder
	for i, v := range vars {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", int(v)+1)
	}
	return b.String()
}

// printChannel reports the session's view of the oracle access channel:
// how many patterns crossed the interface, how many were distinct, how
// much the transcript cache saved, and the modeled scan-clock bill.
func printChannel(st oracle.ChannelStats) {
	fmt.Printf("oracle channel: %d unique patterns, %.1f%% cache hits, %d batch calls\n",
		st.Unique, 100*st.HitRate(), st.BatchCalls)
	if st.ScanCycles > 0 {
		fmt.Printf("scan cycles:    %d (modeled, 2*chain+1 clocks per admitted query)\n", st.ScanCycles)
	}
}

func parse(path string, warn io.Writer) *netlist.Circuit {
	c, err := check.LoadFile(path, warn)
	fatal(err)
	return c
}

func mustComb(c *netlist.Circuit) oracle.Oracle {
	o, err := oracle.NewComb(c, nil)
	fatal(err)
	return o
}

func bits(bs []bool) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "orapattack: %v\n", err)
		os.Exit(1)
	}
}
