// Command orapbench regenerates the paper's evaluation tables and this
// repository's additional studies.
//
// Usage:
//
//	orapbench -table 1        # Table I: HD, area and delay overhead
//	orapbench -table 2        # Table II: stuck-at coverage, red+abrt faults
//	orapbench -table attacks  # Section II-A: attacks vs oracle protection
//	orapbench -table trojan   # Section III: Trojan payloads and outcomes
//	orapbench -table scaling  # ablation: SAT iterations vs defense/key width
//	orapbench -table xortree  # ablation: attack-(d) XOR-tree design space
//	orapbench -table ctrl     # ablation: HD vs control-gate width
//	orapbench -table keysize  # ablation: HD saturation vs key size
//	orapbench -table others   # bypass / SPS+removal applicability
//	orapbench -table all
//	orapbench -check          # structural preflight of the generated suite
//	orapbench -audit          # preflight + security audit of the locked suite
//
// The preflight modes exit 0 when clean (or info-only), 1 on
// error-severity findings, 2 on internal failure and 3 on warnings only
// — the same convention as cmd/orapaudit.
//
// The -scale flag shrinks the generated benchmark circuits; -scale 1
// reproduces the paper's circuit sizes (Table I/II then take minutes to
// hours of CPU depending on the circuit).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"orap/internal/exp"
)

func main() {
	var (
		table    = flag.String("table", "all", "which table to regenerate: 1, 2, attacks, trojan, scaling, xortree, ctrl, keysize, others, all")
		scale    = flag.Float64("scale", 0.05, "benchmark circuit scale factor (1 = paper scale)")
		seed     = flag.Uint64("seed", 2020, "experiment seed")
		patterns = flag.Int("patterns", 0, "HD pattern count (0 = default, a few hundred thousand)")
		circuits = flag.String("circuits", "", "comma-separated benchmark subset (default: all eight)")
		workers  = flag.Int("workers", 0, "worker pool size for the simulation hot paths (0 = all cores, 1 = serial); tables are identical at any setting")
		doCheck  = flag.Bool("check", false, "structurally check the generated benchmark suite at this -scale/-seed and exit")
		doAudit  = flag.Bool("audit", false, "like -check, plus the security audit of the Table I lock + OraP pairing")
	)
	flag.Parse()
	scaleExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "scale" {
			scaleExplicit = true
		}
	})
	// Table II runs full ATPG; at the shared default scale it dominates a
	// "-table all" run, so it gets a lighter default unless -scale was
	// passed explicitly.
	atpgScale := *scale
	if !scaleExplicit && atpgScale > 0.02 {
		atpgScale = 0.02
	}

	var subset []string
	if *circuits != "" {
		subset = strings.Split(*circuits, ",")
	}

	if *doCheck || *doAudit {
		os.Exit(preflight(subset, *scale, *seed, *doAudit, os.Stdout, os.Stderr))
	}

	run := func(name string, f func() error) {
		start := time.Now()
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "orapbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(t string) bool { return *table == "all" || *table == t }

	if want("1") {
		run("Table I — HD, area and delay overhead (OraP + weighted logic locking)", func() error {
			rows, err := exp.TableI(exp.TableIOptions{
				Scale:    *scale,
				Patterns: *patterns,
				Circuits: subset,
				Workers:  *workers,
				Seed:     *seed,
			})
			if err != nil {
				return err
			}
			fmt.Print(exp.FormatTableI(rows))
			return nil
		})
	}
	if want("2") {
		run("Table II — stuck-at fault coverage, original vs protected", func() error {
			rows, err := exp.TableII(exp.TableIIOptions{
				Scale:    atpgScale,
				Circuits: subset,
				Workers:  *workers,
				Seed:     *seed,
			})
			if err != nil {
				return err
			}
			fmt.Print(exp.FormatTableII(rows))
			return nil
		})
	}
	if want("attacks") {
		run("Section II-A — oracle-guided attacks vs oracle protection", func() error {
			rows, err := exp.AttackStudy(exp.AttackStudyOptions{Workers: *workers, Seed: *seed})
			if err != nil {
				return err
			}
			fmt.Print(exp.FormatAttackStudy(rows))
			return nil
		})
	}
	if want("trojan") {
		run("Section III — Trojan scenarios: payloads and simulated outcomes", func() error {
			rows, err := exp.TrojanStudy(exp.TrojanStudyOptions{Seed: *seed})
			if err != nil {
				return err
			}
			fmt.Print(exp.FormatTrojanStudy(rows))
			return nil
		})
	}
	if want("scaling") {
		run("Ablation — SAT-attack iterations vs defense and key width", func() error {
			rows, err := exp.SATScaling(exp.SATScalingOptions{Workers: *workers, Seed: *seed})
			if err != nil {
				return err
			}
			fmt.Print(exp.FormatSATScaling(rows))
			return nil
		})
	}
	if want("xortree") {
		run("Ablation — attack-(d) XOR-tree cost vs LFSR design space", func() error {
			rows, err := exp.XorTreeSweep(128)
			if err != nil {
				return err
			}
			fmt.Print(exp.FormatXorTreeSweep(rows))
			return nil
		})
	}
	if want("others") {
		run("Section II-A — bypass / SPS+removal applicability", func() error {
			rows, err := exp.OtherAttacks(*seed)
			if err != nil {
				return err
			}
			fmt.Print(exp.FormatOtherAttacks(rows))
			return nil
		})
	}
	if want("keysize") {
		run("Ablation — HD saturation vs key size (the paper's stopping rule)", func() error {
			rows, err := exp.KeySizeSweep(*seed, nil, *workers)
			if err != nil {
				return err
			}
			fmt.Print(exp.FormatKeySizeSweep(rows))
			return nil
		})
	}
	if want("ctrl") {
		run("Ablation — HD vs weighted-locking control-gate width", func() error {
			rows, err := exp.CtrlWidthSweep(*seed, nil, *workers)
			if err != nil {
				return err
			}
			fmt.Print(exp.FormatCtrlWidthSweep(rows))
			return nil
		})
	}
}
