package main

import (
	"bytes"
	"strings"
	"testing"
)

// The generated suite must pass the structural preflight cleanly at the
// default table scale, and an unknown circuit name must be an internal
// failure, not a finding.
func TestPreflightCheckExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := preflight([]string{"s38417", "b20"}, 0.05, 2020, false, &stdout, &stderr)
	if code != exitClean {
		t.Fatalf("exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, exitClean, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "0 errors") {
		t.Fatalf("missing per-circuit summary:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := preflight([]string{"nosuch"}, 0.05, 2020, false, &stdout, &stderr); code != exitInternal {
		t.Fatalf("unknown circuit: exit %d, want %d", code, exitInternal)
	}
}

// The audit leg runs the Table I lock + OraP pairing: no error-severity
// findings, full effective key entropy, and weighted locking's control
// cones stay below warning severity so the leg reports clean.
func TestPreflightAuditCleanOnGeneratedSuite(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := preflight([]string{"s38417", "b20"}, 0.05, 2020, true, &stdout, &stderr)
	if code == exitErrors || code == exitInternal {
		t.Fatalf("audit preflight exit %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "audit:") || !strings.Contains(out, "entropy") {
		t.Fatalf("missing audit summary lines:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "audit:") {
			continue
		}
		if strings.Contains(line, "netlist") && !strings.Contains(line, "netlist 0E") {
			t.Errorf("netlist audit errors in: %s", line)
		}
		if strings.Contains(line, "oracle") && !strings.Contains(line, "oracle 0E") {
			t.Errorf("oracle audit errors in: %s", line)
		}
	}
}
