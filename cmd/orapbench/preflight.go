package main

import (
	"fmt"
	"io"

	"orap/internal/audit"
	"orap/internal/benchgen"
	"orap/internal/check"
	"orap/internal/lock"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/scan"
)

// Preflight exit codes, shared with cmd/orapaudit so CI legs can treat
// the two tools uniformly.
const (
	exitClean    = 0
	exitErrors   = 1
	exitInternal = 2
	exitWarnings = 3
)

// preflight generates every benchmark the tables would use at this
// scale/seed and runs the structural checker over each; with doAudit it
// additionally locks each one the way Table I does (weighted locking at
// the profile's LFSR size and control width), audits the locked netlist
// and OraP-protects it for the oracle-path audit. Exit codes: 0 clean or
// info-only, 1 error-severity findings, 2 generation/synthesis failure,
// 3 warnings only.
func preflight(names []string, scale float64, seed uint64, doAudit bool, stdout, stderr io.Writer) int {
	if names == nil {
		for _, p := range benchgen.Profiles {
			names = append(names, p.Name)
		}
	}
	code := exitClean
	raise := func(c int) {
		if c == exitErrors || code == exitErrors {
			code = exitErrors
		} else if c == exitWarnings {
			code = exitWarnings
		}
	}
	for _, name := range names {
		prof, err := benchgen.ProfileByName(name)
		if err != nil {
			fmt.Fprintf(stderr, "orapbench: %v\n", err)
			return exitInternal
		}
		scaled := prof.Scale(scale)
		c, err := benchgen.Generate(scaled, seed)
		if err != nil {
			fmt.Fprintf(stderr, "orapbench: %s: %v\n", name, err)
			return exitInternal
		}
		rep := check.Circuit(c)
		fmt.Fprint(stdout, rep.String())
		fmt.Fprintf(stdout, "%-8s %d diagnostics, %d errors\n",
			name, len(rep.Diags), len(rep.Errors()))
		switch {
		case rep.HasErrors():
			raise(exitErrors)
		case len(rep.Diags) > 0:
			raise(exitWarnings)
		}
		if !doAudit || rep.HasErrors() {
			continue
		}

		// Audit leg: the same lock + protect pairing the tables measure.
		r := rng.NewNamed(seed, "preflight/audit/"+name)
		l, err := lock.Weighted(c, lock.WeightedOptions{
			KeyBits:      scaled.LFSRSize,
			ControlWidth: scaled.CtrlInputs,
			Rand:         r,
		})
		if err != nil {
			fmt.Fprintf(stderr, "orapbench: %s: weighted lock: %v\n", name, err)
			return exitInternal
		}
		arep, err := audit.Circuit(l.Circuit)
		if err != nil {
			fmt.Fprintf(stderr, "orapbench: %s: audit: %v\n", name, err)
			return exitInternal
		}
		cfg, err := orap.Protect(l.Circuit, l.Key, scaled.Pins, scaled.PinOuts, scan.OraPBasic, orap.Options{Rand: r})
		if err != nil {
			fmt.Fprintf(stderr, "orapbench: %s: OraP protect: %v\n", name, err)
			return exitInternal
		}
		orep, err := audit.Oracle(cfg, nil)
		if err != nil {
			fmt.Fprintf(stderr, "orapbench: %s: oracle audit: %v\n", name, err)
			return exitInternal
		}
		fmt.Fprint(stdout, arep.String())
		fmt.Fprint(stdout, orep.String())
		ne, nw, _ := arep.Counts()
		oe, ow, _ := orep.Counts()
		fmt.Fprintf(stdout, "%-8s audit: netlist %dE/%dW, oracle %dE/%dW, entropy %d/%d\n",
			name, ne, nw, oe, ow, orep.EffectiveEntropy, orep.NominalEntropy)
		switch {
		case ne+oe > 0:
			raise(exitErrors)
		case nw+ow > 0:
			raise(exitWarnings)
		}
	}
	return code
}
