// Package ok is the clean fixture: orapvet must exit 0 on this module.
package ok

func Answer() int { return 42 }
