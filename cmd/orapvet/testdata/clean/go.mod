module cleanfixture

go 1.22
