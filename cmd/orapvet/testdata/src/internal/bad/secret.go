// nosecret firing cases, in their own file so the line-pinned findings
// in bad.go stay put.
package bad

import (
	"fmt"

	"vetfixture/internal/gf2"
)

func DumpKey(key []bool) {
	fmt.Println(key)
}

func DumpSeed(seed gf2.Vec) {
	fmt.Printf("seed=%v\n", seed)
}
