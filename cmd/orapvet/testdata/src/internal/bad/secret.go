// nosecret firing cases, in their own file so the line-pinned findings
// in bad.go stay put.
package bad

import (
	"fmt"

	"vetfixture/internal/gf2"
)

func DumpKey(key []bool) {
	fmt.Println(key)
}

func DumpSeed(seed gf2.Vec) {
	fmt.Printf("seed=%v\n", seed)
}

// The alias must fire: k provably still holds cfg.Key at the print.
func DumpAliasedKey(cfg struct{ Key []bool }) {
	k := cfg.Key
	fmt.Println(k)
}

// A reassigned local no longer aliases the key — must stay clean.
func DumpReassignedLocal(cfg struct{ Key []bool }, other []bool) {
	k := cfg.Key
	k = other
	fmt.Println(k)
}

// An alias of innocuous bits must stay clean.
func DumpHarmlessAlias(bits []bool) {
	vals := bits
	fmt.Println(vals)
}
