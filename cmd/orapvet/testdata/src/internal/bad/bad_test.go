package bad

import "testing"

func TestSpawnSkipsShort(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in short mode")
	}
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
