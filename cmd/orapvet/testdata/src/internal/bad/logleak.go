// nosecret log-package firing cases, in their own file so the
// line-pinned findings in secret.go stay put (adding an import there
// would shift them).
package bad

import "log"

func LogKey(keyBits []bool) {
	log.Printf("unlocking with %v", keyBits)
}

func LogToLogger(l *log.Logger, masterKey []bool) {
	l.Println(masterKey)
}

// Derived scalars stay clean through log, same as through fmt.
func LogKeyWidth(keyBits []bool) {
	log.Printf("key of %d bits", len(keyBits))
}
