// clonerelease path-sensitivity cases, in their own file so the
// line-pinned findings in bad.go stay put.
package bad

import (
	"errors"

	"vetfixture/internal/sim"
)

// ClonePathLeak releases its clone on the happy path only: the early
// error return leaks the pooled buffers.
func ClonePathLeak(p *sim.Parallel, fail bool) error {
	c := p.Clone()
	if fail {
		return errors.New("scan chain locked")
	}
	c.Release()
	return nil
}
