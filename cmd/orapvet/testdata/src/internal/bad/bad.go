// Package bad seeds exactly one violation per orapvet rule; the
// analyzer unit tests assert each one is caught at the right place.
package bad

import (
	"math/rand"
	"time"

	"vetfixture/internal/ir"
	"vetfixture/internal/sim"
)

func Sample() int { return rand.Int() }

func Stamp() int64 { return time.Now().UnixNano() }

func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }

func LeakClone(p *sim.Parallel) *sim.Parallel {
	return p.Clone()
}

func Rename(prog *ir.Program) {
	prog.Name = "hacked"
}

func Patch(prog *ir.Program) {
	prog.Ops[0] = 1
}
