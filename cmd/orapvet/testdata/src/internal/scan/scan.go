// Package scan mirrors the real module's oracle-facing configuration
// types: a Config carries the loaded key and LFSR seed, a Chip embeds a
// Config plus its key register. Both are secret-bearing types for the
// flow engine — by field type (gf2.Vec) and by field name (Key []bool).
package scan

import "vetfixture/internal/gf2"

type Config struct {
	Width int
	Key   []bool
	Seed  gf2.Vec
}

type Chip struct {
	cfg    Config
	keyReg gf2.Vec
}

func (c *Chip) Width() int { return c.cfg.Width }
