// Package redact mirrors the real module's sanctioned key formatters.
// The flow engine treats every function in an internal/redact package
// (and any function carrying a //vet:sanitizer directive) as a
// sanitizer: taint stops at the call, and the formatter's own body is
// exempt from sink findings.
package redact

import (
	"fmt"

	"vetfixture/internal/gf2"
)

//vet:sanitizer
func Key(bits []bool) string {
	return fmt.Sprintf("[%d bits]", len(bits))
}

//vet:sanitizer
func Vec(v gf2.Vec) string {
	return fmt.Sprintf("[vec %d]", v.Len())
}
