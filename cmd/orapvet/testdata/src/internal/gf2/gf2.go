// Package gf2 mirrors the real module's dense bit-vector type so the
// nosecret rule can be exercised against the fixture.
package gf2

type Vec struct {
	bits []uint64
	n    int
}

func (v Vec) Len() int { return v.n }
