// Package flow exercises the interprocedural secret-flow engine: every
// exported function in this file leaks key material through at least
// one call hop, struct field or closure, and the expected findings
// (with their witness chains) are line-pinned in internal/vet's tests.
package flow

import (
	"fmt"
	"os"

	"vetfixture/internal/scan"
)

// emit is the shared leaf helper: its parameter reaches fmt.Println, so
// any caller handing it key material leaks.
func emit(bits []bool) {
	fmt.Println(bits)
}

// Helper leaks through one call hop.
func Helper(cfg scan.Config) {
	emit(cfg.Key)
}

// relay adds a second hop on the way to emit.
func relay(bits []bool) {
	emit(bits)
}

// Deep leaks through two call hops.
func Deep(cfg scan.Config) {
	relay(cfg.Key)
}

// holder is deliberately not a secret-bearing type (its field is
// neither key-named nor a gf2.Vec); only the flow engine can see the
// key arrive in it.
type holder struct {
	bits []bool
}

func (h holder) show() {
	fmt.Println(h.bits)
}

// Method leaks through a method on a struct the key was stored into.
func Method(cfg scan.Config) {
	h := holder{bits: cfg.Key}
	h.show()
}

// Capture leaks through a closure capturing an alias of the key.
func Capture(cfg scan.Config) {
	b := cfg.Key
	dump := func() {
		fmt.Println(b)
	}
	dump()
}

// tee forwards its variadic arguments to the logger.
func tee(vals ...interface{}) {
	fmt.Println(vals...)
}

// Variadic leaks through a variadic ...interface{} parameter.
func Variadic(cfg scan.Config) {
	tee("key schedule:", cfg.Key)
}

// Whole prints an entire key-holding struct value: the finding names
// the offending field.
func Whole(cfg scan.Config) {
	fmt.Printf("cfg=%+v\n", cfg)
}

// Raw writes rendered key bits to the process stdout stream. Two leaks:
// the fmt.Sprint of the raw bits, and the os.Stdout write of its result.
func Raw(cfg scan.Config) {
	os.Stdout.WriteString(fmt.Sprint(cfg.Key))
}
