// Clean flows the engine must accept: sanitized formatting (by package
// and by directive), redacted values through helpers, derived scalars.
package flow

import (
	"fmt"

	"vetfixture/internal/redact"
	"vetfixture/internal/scan"
)

// emitStr prints an already-formatted string: safe for redacted input.
func emitStr(s string) {
	fmt.Println(s)
}

// Redacted formats the key through the sanctioned formatter.
func Redacted(cfg scan.Config) {
	fmt.Println(redact.Key(cfg.Key))
}

// RedactedDeep hands a redacted rendering through a helper.
func RedactedDeep(cfg scan.Config) {
	emitStr(redact.Vec(cfg.Seed))
}

// hexKey renders raw key bits — sanctioned here and only here, because
// the directive marks this function as a formatter.
//
//vet:sanitizer
func hexKey(bits []bool) string {
	return fmt.Sprint(bits)
}

// Hexed is clean: hexKey is a directive-marked sanitizer.
func Hexed(cfg scan.Config) {
	emitStr(hexKey(cfg.Key))
}

// WidthOnly prints a derived scalar, the sanctioned shape for logs.
func WidthOnly(cfg scan.Config) {
	emitWidth(len(cfg.Key))
}

func emitWidth(n int) {
	fmt.Printf("key width: %d\n", n)
}
