// Package sim mirrors the shape of orap/internal/sim that the
// clonerelease rule keys on: a Parallel simulator with pooled buffers,
// cloned per worker and released when done.
package sim

type Parallel struct {
	vals []uint64
}

func (p *Parallel) Clone() *Parallel { return &Parallel{vals: p.vals} }

func (p *Parallel) Release() { p.vals = nil }

func (p *Parallel) Run() {}
