// Package good exercises the idioms each rule must accept: cloning
// inside a closure with the release in the same enclosing function,
// reading (not writing) a Program, and time.Duration values without
// wall-clock reads.
package good

import (
	"fmt"
	"log"
	"time"

	"vetfixture/internal/gf2"
	"vetfixture/internal/ir"
	"vetfixture/internal/sim"
)

func UseClone(p *sim.Parallel) {
	done := make(chan struct{})
	go func() {
		c := p.Clone()
		defer c.Release()
		c.Run()
		close(done)
	}()
	<-done
}

func ReadProgram(p *ir.Program) int { return p.NumNodes() }

func NotAProgram() string {
	var prog struct{ Name string }
	prog.Name = "fine"
	return prog.Name
}

func Budget(d time.Duration) time.Duration { return 2 * d }

// The nosecret rule must accept: redacted formatting, error wrapping
// via fmt.Errorf, and derived scalars of key vectors.
func DescribeKey(key []bool, seed gf2.Vec) (string, error) {
	if len(key) == 0 {
		return "", fmt.Errorf("empty key %v (seed %v)", key, seed)
	}
	return fmt.Sprintf("key of %d bits, seed of %d", len(key), seed.Len()), nil
}

// The log surface must accept the same clean idioms: derived scalars
// and innocuously named slices.
func LogKeyShape(key []bool, bits []bool) {
	log.Printf("key of %d bits", len(key))
	log.Println(bits)
}
