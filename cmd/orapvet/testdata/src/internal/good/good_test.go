package good

import "testing"

// Spawns goroutines without a -short gate: the race leg runs it.
func TestSpawn(t *testing.T) {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// Gates on -short without spawning goroutines: fine too.
func TestShortOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running case")
	}
}
