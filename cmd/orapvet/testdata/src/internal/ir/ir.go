// Package ir mirrors the shape of orap/internal/ir that the irmutate
// rule keys on: an immutable compiled Program.
package ir

type Program struct {
	Name string
	Ops  []uint8
}

func (p *Program) NumNodes() int { return len(p.Ops) }

// Rebrand is a legal write: it lives inside the ir package.
func (p *Program) Rebrand(name string) { p.Name = name }
