// Command demo shows what the cmd/ layer may do that internal/ may
// not: wall-clock reads and math/rand are allowed here, while the
// clonerelease pairing still applies.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"vetfixture/internal/sim"
)

func main() {
	start := time.Now()
	fmt.Println(rand.Int())
	p := &sim.Parallel{}
	c := p.Clone()
	defer c.Release()
	c.Run()
	fmt.Println(time.Since(start))
}
