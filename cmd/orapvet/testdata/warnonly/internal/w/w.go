// Package w exists so the warnonly fixture module typechecks; its only
// finding is the warning-severity shortrace case in the test file,
// pinning the exit-3 (warnings only) convention.
package w

func Version() int { return 1 }
