package w

import (
	"sync"
	"testing"
)

func TestSpawnsButShort(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { wg.Done() }()
	wg.Wait()
}
