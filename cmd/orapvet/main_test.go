package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCase drives run() as a caller would, capturing both streams.
func runCase(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCleanModuleExitsZero(t *testing.T) {
	code, out, errOut := runCase(t, "-C", filepath.Join("testdata", "clean"))
	if code != exitClean {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, exitClean, errOut)
	}
	if !strings.Contains(out, "orapvet: cleanfixture clean") {
		t.Errorf("stdout = %q, want clean banner", out)
	}
}

func TestFixtureModuleExitsOne(t *testing.T) {
	code, out, _ := runCase(t, "-C", filepath.Join("testdata", "src"))
	if code != exitErrors {
		t.Fatalf("exit = %d, want %d", code, exitErrors)
	}
	if !strings.Contains(out, "[nosecret]") || !strings.Contains(out, "[clonerelease]") {
		t.Errorf("stdout missing expected rule tags:\n%s", out)
	}
	// Witness chains render indented under their finding.
	if !strings.Contains(out, "\tsource ") || !strings.Contains(out, "\tsink   ") {
		t.Errorf("stdout missing rendered witness chain:\n%s", out)
	}
}

func TestJSONReport(t *testing.T) {
	code, out, errOut := runCase(t, "-C", filepath.Join("testdata", "src"), "-json")
	if code != exitErrors {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, exitErrors, errOut)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, out)
	}
	if rep.Module != "vetfixture" {
		t.Errorf("module = %q, want vetfixture", rep.Module)
	}
	if rep.Errors == 0 {
		t.Error("errors = 0, want > 0")
	}
	if rep.Errors+rep.Warnings != len(rep.Findings) {
		t.Errorf("errors(%d)+warnings(%d) != findings(%d)", rep.Errors, rep.Warnings, len(rep.Findings))
	}
	var chained *jsonFinding
	for i := range rep.Findings {
		f := &rep.Findings[i]
		if !strings.HasPrefix(f.File, "internal/") {
			t.Errorf("finding path %q is not module-relative", f.File)
		}
		if len(f.Chain) > 0 && chained == nil {
			chained = f
		}
	}
	if chained == nil {
		t.Fatal("no finding carries a witness chain")
	}
	last := chained.Chain[len(chained.Chain)-1]
	if last.Kind != "sink" {
		t.Errorf("chain ends with %q hop, want sink", last.Kind)
	}
}

func TestWarningsOnlyExitsThree(t *testing.T) {
	code, out, _ := runCase(t, "-C", filepath.Join("testdata", "warnonly"))
	if code != exitWarnings {
		t.Fatalf("exit = %d, want %d\n%s", code, exitWarnings, out)
	}
	if !strings.Contains(out, "[shortrace]") {
		t.Errorf("stdout = %q, want a shortrace warning", out)
	}
}

func TestNoModuleExitsTwo(t *testing.T) {
	code, _, errOut := runCase(t, "-C", t.TempDir())
	if code != exitInternal {
		t.Fatalf("exit = %d, want %d", code, exitInternal)
	}
	if !strings.Contains(errOut, "orapvet:") {
		t.Errorf("stderr = %q, want an orapvet error", errOut)
	}
}

func TestReportFileArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vet.json")
	code, out, _ := runCase(t, "-C", filepath.Join("testdata", "warnonly"), "-report", path)
	if code != exitWarnings {
		t.Fatalf("exit = %d, want %d", code, exitWarnings)
	}
	// -report does not silence the text output.
	if !strings.Contains(out, "[shortrace]") {
		t.Errorf("stdout = %q, want text findings alongside the report file", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report file is not valid JSON: %v", err)
	}
	if rep.Module != "warnfixture" || rep.Warnings != 1 || rep.Errors != 0 {
		t.Errorf("report = module %q errors %d warnings %d, want warnfixture 0 1",
			rep.Module, rep.Errors, rep.Warnings)
	}
}
