package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The repo-invariant rules. Each has a stable ID used in findings and in
// the per-rule unit tests; DESIGN.md documents the rationale.
const (
	// RuleNoRand: internal/ packages must use internal/rng, never
	// math/rand, so every simulation result is reproducible from a seed.
	RuleNoRand = "norand"
	// RuleNoWallTime: internal/ packages must not read the wall clock
	// (time.Now, time.Since); timing belongs to the cmd/ layer.
	RuleNoWallTime = "nowalltime"
	// RuleCloneRelease: a function that calls sim.Parallel.Clone must
	// call Release in the same function (including nested closures), or
	// the pooled value buffers leak.
	RuleCloneRelease = "clonerelease"
	// RuleIRMutate: ir.Program is immutable after Compile; no package
	// outside internal/ir may write its fields or their elements.
	RuleIRMutate = "irmutate"
	// RuleShortRace: a test that spawns goroutines must not gate itself
	// on testing.Short, because the -race CI leg runs with -short and
	// would silently skip exactly the tests the race detector is for.
	RuleShortRace = "shortrace"
	// RuleNoSecret: internal/ packages must not pass raw key material
	// ([]bool values with key-like names, or gf2.Vec values) to the fmt
	// print family; keys reach logs only through internal/redact, which
	// emits a width + fingerprint instead of the bits. fmt.Errorf is
	// exempt: error values carry key detail up to the caller, they are
	// not output.
	RuleNoSecret = "nosecret"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// vetter parses and typechecks the module's packages on demand. Module
// packages are resolved from the source tree; standard-library imports
// are delegated to the go/importer source importer. Test files are
// parsed but never typechecked (external _test packages would need the
// full go test harness); the only test-file rule is syntactic.
type vetter struct {
	fset     *token.FileSet
	modRoot  string
	modPath  string
	stdlib   types.Importer
	pkgs     map[string]*vetPkg
	findings []Finding
}

type vetPkg struct {
	path      string
	files     []*ast.File
	testFiles []*ast.File
	pkg       *types.Package
	info      *types.Info
	err       error
}

// analyze runs every rule over the module's ./internal/... and ./cmd/...
// packages and returns the sorted findings. The error reports the first
// parse or typecheck failure; rules still run over the packages that
// loaded.
func analyze(modRoot, modPath string) ([]Finding, error) {
	v := &vetter{
		fset:    token.NewFileSet(),
		modRoot: modRoot,
		modPath: modPath,
		pkgs:    map[string]*vetPkg{},
	}
	v.stdlib = importer.ForCompiler(v.fset, "source", nil)

	var paths []string
	for _, sub := range []string{"internal", "cmd"} {
		paths = append(paths, v.packagesUnder(sub)...)
	}
	var firstErr error
	for _, path := range paths {
		p, err := v.load(path)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		v.vetPackage(p)
	}
	sort.Slice(v.findings, func(i, j int) bool {
		a, b := v.findings[i], v.findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return v.findings, firstErr
}

// packagesUnder lists the import paths of the Go packages below a module
// subdirectory, skipping testdata trees.
func (v *vetter) packagesUnder(sub string) []string {
	seen := map[string]bool{}
	var paths []string
	root := filepath.Join(v.modRoot, sub)
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		rel, err := filepath.Rel(v.modRoot, filepath.Dir(path))
		if err != nil {
			return nil
		}
		ip := v.modPath + "/" + filepath.ToSlash(rel)
		if !seen[ip] {
			seen[ip] = true
			paths = append(paths, ip)
		}
		return nil
	})
	sort.Strings(paths)
	return paths
}

// Import resolves an import path for the typechecker: module-local
// packages load from the source tree, everything else from the standard
// library.
func (v *vetter) Import(path string) (*types.Package, error) {
	if path == v.modPath || strings.HasPrefix(path, v.modPath+"/") {
		p, err := v.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return v.stdlib.Import(path)
}

// load parses and typechecks one module package, memoized.
func (v *vetter) load(path string) (*vetPkg, error) {
	if p, ok := v.pkgs[path]; ok {
		return p, p.err
	}
	p := &vetPkg{path: path}
	v.pkgs[path] = p
	dir := filepath.Join(v.modRoot, filepath.FromSlash(strings.TrimPrefix(path, v.modPath+"/")))
	entries, err := os.ReadDir(dir)
	if err != nil {
		p.err = fmt.Errorf("orapvet: %s: %w", path, err)
		return p, p.err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		file, err := parser.ParseFile(v.fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			p.err = err
			return p, p.err
		}
		if strings.HasSuffix(e.Name(), "_test.go") {
			p.testFiles = append(p.testFiles, file)
		} else {
			p.files = append(p.files, file)
		}
	}
	if len(p.files) == 0 {
		p.err = fmt.Errorf("orapvet: %s: no Go files", path)
		return p, p.err
	}
	p.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: v}
	p.pkg, err = conf.Check(path, v.fset, p.files, p.info)
	if err != nil {
		p.err = err
		return p, p.err
	}
	return p, nil
}

func (v *vetter) report(pos token.Pos, rule, format string, args ...interface{}) {
	v.findings = append(v.findings, Finding{
		Pos:  v.fset.Position(pos),
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

func (v *vetter) vetPackage(p *vetPkg) {
	inInternal := strings.Contains(p.path+"/", "/internal/")
	for _, f := range p.files {
		if inInternal {
			v.ruleNoRand(f)
			v.ruleNoWallTime(p, f)
			v.ruleNoSecret(p, f)
		}
		v.ruleCloneRelease(p, f)
		v.ruleIRMutate(p, f)
	}
	for _, f := range p.testFiles {
		v.ruleShortRace(f)
	}
}

// ruleNoRand flags math/rand imports in internal packages.
func (v *vetter) ruleNoRand(f *ast.File) {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path == "math/rand" || path == "math/rand/v2" {
			v.report(imp.Pos(), RuleNoRand,
				"import of %s in internal/; use internal/rng so results are reproducible from a seed", path)
		}
	}
}

// ruleNoWallTime flags wall-clock reads in internal packages, resolved
// through the typechecker so aliased imports are still caught.
func (v *vetter) ruleNoWallTime(p *vetPkg, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := p.info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		if full := fn.FullName(); full == "time.Now" || full == "time.Since" {
			v.report(id.Pos(), RuleNoWallTime,
				"%s in internal/; wall-clock reads belong in the cmd/ layer", full)
		}
		return true
	})
}

// ruleCloneRelease flags any top-level function that calls
// sim.Parallel.Clone without also calling Release somewhere in the same
// function (nested closures included).
func (v *vetter) ruleCloneRelease(p *vetPkg, f *ast.File) {
	simPath := v.modPath + "/internal/sim"
	if p.path == simPath {
		return // the methods' own package
	}
	cloneName := "(*" + simPath + ".Parallel).Clone"
	releaseName := "(*" + simPath + ".Parallel).Release"
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		clonePos := token.NoPos
		released := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			switch fn.FullName() {
			case cloneName:
				if clonePos == token.NoPos {
					clonePos = call.Pos()
				}
			case releaseName:
				released = true
			}
			return true
		})
		if clonePos != token.NoPos && !released {
			v.report(clonePos, RuleCloneRelease,
				"%s calls sim.Parallel.Clone without a Release in the same function; the pooled buffers leak", fd.Name.Name)
		}
	}
}

// ruleIRMutate flags writes to ir.Program fields (or elements of slice
// fields) from outside internal/ir.
func (v *vetter) ruleIRMutate(p *vetPkg, f *ast.File) {
	irPath := v.modPath + "/internal/ir"
	if p.path == irPath {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if name, ok := v.programField(p, irPath, lhs); ok {
					v.report(lhs.Pos(), RuleIRMutate,
						"write to ir.Program field %s outside internal/ir; Programs are immutable after Compile", name)
				}
			}
		case *ast.IncDecStmt:
			if name, ok := v.programField(p, irPath, st.X); ok {
				v.report(st.X.Pos(), RuleIRMutate,
					"write to ir.Program field %s outside internal/ir; Programs are immutable after Compile", name)
			}
		}
		return true
	})
}

// programField reports whether an assignable expression resolves to a
// field of ir.Program, looking through index expressions so writes like
// prog.Ops[i] = x are caught too.
func (v *vetter) programField(p *vetPkg, irPath string, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		sel := p.info.Selections[e]
		if sel == nil || sel.Kind() != types.FieldVal {
			return "", false
		}
		recv := sel.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return "", false
		}
		if named.Obj().Pkg().Path() == irPath && named.Obj().Name() == "Program" {
			return e.Sel.Name, true
		}
	case *ast.IndexExpr:
		return v.programField(p, irPath, e.X)
	case *ast.ParenExpr:
		return v.programField(p, irPath, e.X)
	case *ast.StarExpr:
		return v.programField(p, irPath, e.X)
	}
	return "", false
}

// printFamily is the fmt and log output surface covered by nosecret:
// every call that renders its arguments somewhere a developer might
// leave enabled in production, including the standard logger and its
// method set. fmt.Errorf is deliberately absent — wrapping key material
// into an error for the caller to redact is the sanctioned pattern.
var printFamily = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"fmt.Sprint": true, "fmt.Sprintf": true, "fmt.Sprintln": true,

	"log.Print": true, "log.Printf": true, "log.Println": true,
	"log.Fatal": true, "log.Fatalf": true, "log.Fatalln": true,
	"log.Panic": true, "log.Panicf": true, "log.Panicln": true,

	"(*log.Logger).Print": true, "(*log.Logger).Printf": true, "(*log.Logger).Println": true,
	"(*log.Logger).Fatal": true, "(*log.Logger).Fatalf": true, "(*log.Logger).Fatalln": true,
	"(*log.Logger).Panic": true, "(*log.Logger).Panicf": true, "(*log.Logger).Panicln": true,
}

// ruleNoSecret flags fmt and log print-family calls in internal/ packages whose
// arguments are raw key material: values of static type []bool whose
// base identifier names key bits, or values of the gf2.Vec bit-vector
// type. The key-naming heuristic sees through single-assignment local
// aliases (`k := cfg.Key; fmt.Println(k)` still fires); a local that is
// ever reassigned no longer provably holds the aliased value and is
// judged by its own name. internal/redact is the sanctioned way to
// format either shape.
func (v *vetter) ruleNoSecret(p *vetPkg, f *ast.File) {
	if p.path == v.modPath+"/internal/redact" {
		return // the redacting formatter's own package
	}
	gf2Path := v.modPath + "/internal/gf2"
	for _, decl := range f.Decls {
		var aliases map[types.Object]string
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			aliases = v.secretAliases(p, fd.Body)
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.info.Uses[sel.Sel].(*types.Func)
			if !ok || !printFamily[fn.FullName()] {
				return true
			}
			for _, arg := range call.Args {
				tv, ok := p.info.Types[arg]
				if !ok {
					continue
				}
				name := baseName(arg)
				resolved, viaAlias := name, false
				if al := v.aliasedName(p, aliases, arg); al != "" && al != name {
					resolved, viaAlias = al, true
				}
				switch {
				case isGF2Vec(tv.Type, gf2Path):
					v.report(arg.Pos(), RuleNoSecret,
						"%s passes gf2.Vec %q; format it with internal/redact.Vec", fn.FullName(), name)
				case isBoolSlice(tv.Type) && strings.Contains(strings.ToLower(resolved), "key"):
					if viaAlias {
						v.report(arg.Pos(), RuleNoSecret,
							"%s passes raw key bits %q (aliased from %q); format them with internal/redact.Key", fn.FullName(), name, resolved)
					} else {
						v.report(arg.Pos(), RuleNoSecret,
							"%s passes raw key bits %q; format them with internal/redact.Key", fn.FullName(), name)
					}
				}
			}
			return true
		})
	}
}

// secretAliases maps the single-assignment locals of one function body
// to the name of the value they alias, resolved through alias chains
// (`k := cfg.Key; k2 := k` resolves k2 to "Key"). A local written more
// than once — its defining `:=` plus any later assignment, anywhere in
// the body including closures — is dropped: it no longer provably holds
// the aliased value at the print site.
func (v *vetter) secretAliases(p *vetPkg, body *ast.BlockStmt) map[types.Object]string {
	writes := map[types.Object]int{}
	cand := map[types.Object]ast.Expr{}
	lhsObj := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := p.info.Defs[id]; obj != nil {
			return obj
		}
		return p.info.Uses[id]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				obj := lhsObj(lhs)
				if obj == nil {
					continue
				}
				writes[obj]++
				if st.Tok == token.DEFINE && len(st.Lhs) == len(st.Rhs) {
					cand[obj] = st.Rhs[i]
				}
			}
		case *ast.RangeStmt:
			if obj := lhsObj(st.Key); obj != nil {
				writes[obj]++
			}
			if st.Value != nil {
				if obj := lhsObj(st.Value); obj != nil {
					writes[obj]++
				}
			}
		case *ast.IncDecStmt:
			if obj := lhsObj(st.X); obj != nil {
				writes[obj]++
			}
		}
		return true
	})
	out := map[types.Object]string{}
	var resolve func(obj types.Object, depth int) string
	resolve = func(obj types.Object, depth int) string {
		if depth > 8 {
			return ""
		}
		expr, ok := cand[obj]
		if !ok || writes[obj] != 1 {
			return ""
		}
		if id, ok := expr.(*ast.Ident); ok {
			if src := p.info.Uses[id]; src != nil {
				if through := resolve(src, depth+1); through != "" {
					return through
				}
			}
			return id.Name
		}
		return baseName(expr)
	}
	for obj := range cand {
		if name := resolve(obj, 0); name != "" {
			out[obj] = name
		}
	}
	return out
}

// aliasedName resolves a print argument through the function's alias
// map: when the argument reads a single-assignment local, the name of
// the value it aliases is returned ("" otherwise).
func (v *vetter) aliasedName(p *vetPkg, aliases map[types.Object]string, e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if obj := p.info.Uses[x]; obj != nil {
				return aliases[obj]
			}
			return ""
		default:
			return ""
		}
	}
}

// baseName digs out the identifier an argument expression reads from,
// for the key-naming heuristic ("" when there is none, e.g. a call
// result).
func baseName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return baseName(e.X)
	case *ast.ParenExpr:
		return baseName(e.X)
	case *ast.StarExpr:
		return baseName(e.X)
	}
	return ""
}

func isBoolSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func isGF2Vec(t types.Type, gf2Path string) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == gf2Path && named.Obj().Name() == "Vec"
}

// ruleShortRace flags test functions that both spawn goroutines and gate
// on testing.Short: the CI race leg runs `go test -race -short`, so such
// a test exempts itself from the race detector.
func (v *vetter) ruleShortRace(f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Test") {
			continue
		}
		spawns, short := false, false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				spawns = true
			case *ast.SelectorExpr:
				if id, ok := x.X.(*ast.Ident); ok && id.Name == "testing" && x.Sel.Name == "Short" {
					short = true
				}
			}
			return true
		})
		if spawns && short {
			v.report(fd.Pos(), RuleShortRace,
				"%s spawns goroutines but gates on testing.Short; the -race -short CI leg would skip it", fd.Name.Name)
		}
	}
}
