// Command orapvet enforces this repository's cross-package invariants —
// the properties the compiler cannot check but the experiments and the
// threat model depend on. It is a thin driver over internal/vet, which
// typechecks ./internal/... and ./cmd/... once and runs two rule
// layers: the syntactic rules (norand, nowalltime, clonerelease,
// irmutate, shortrace) and the interprocedural secret-flow engine
// behind nosecret, whose findings carry a witness chain from the key
// material's source through every call to the sink.
//
// Usage:
//
//	orapvet [-C dir] [-json] [-report file]
//
// Findings print one per line as file:line: [rule] message; secret-flow
// findings are followed by their indented witness chain. -json writes
// the machine-readable report to stdout instead; -report additionally
// writes it to a file (the CI artifact).
//
// Exit codes (same convention as orapaudit, asserted in tests and
// consumed by the make orapvet leg):
//
//	0  clean
//	1  error-severity findings
//	2  internal failure (no module, parse or typecheck error, bad flags)
//	3  warning-severity findings only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"orap/internal/vet"
)

// Exit codes.
const (
	exitClean    = 0
	exitErrors   = 1
	exitInternal = 2
	exitWarnings = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonHop is the -json wire form of one witness-chain hop.
type jsonHop struct {
	Kind string `json:"kind"`
	Desc string `json:"desc"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	Rule     string    `json:"rule"`
	Severity string    `json:"severity"`
	File     string    `json:"file"`
	Line     int       `json:"line"`
	Msg      string    `json:"msg"`
	Chain    []jsonHop `json:"chain,omitempty"`
}

// jsonReport is the -json wire form of one module's report.
type jsonReport struct {
	Module   string        `json:"module"`
	Findings []jsonFinding `json:"findings"`
	Errors   int           `json:"errors"`
	Warnings int           `json:"warnings"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("orapvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory inside the module to vet")
	jsonOut := fs.Bool("json", false, "write the report as JSON to stdout")
	reportFile := fs.String("report", "", "also write the JSON report to this file")
	if err := fs.Parse(args); err != nil {
		return exitInternal
	}

	root, modPath, err := vet.FindModule(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "orapvet: %v\n", err)
		return exitInternal
	}
	findings, err := vet.Analyze(root, modPath)
	if err != nil {
		fmt.Fprintf(stderr, "orapvet: %v\n", err)
		return exitInternal
	}

	// Relative paths keep reports stable across checkouts.
	rel := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil {
			return filepath.ToSlash(r)
		}
		return name
	}
	rep := jsonReport{Module: modPath, Findings: []jsonFinding{}}
	for _, f := range findings {
		jf := jsonFinding{
			Rule:     f.Rule,
			Severity: f.Sev.String(),
			File:     rel(f.Pos.Filename),
			Line:     f.Pos.Line,
			Msg:      f.Msg,
		}
		for _, h := range f.Chain {
			jf.Chain = append(jf.Chain, jsonHop{Kind: h.Kind, Desc: h.Desc, File: rel(h.Pos.Filename), Line: h.Pos.Line})
		}
		rep.Findings = append(rep.Findings, jf)
		if f.Sev == vet.SevError {
			rep.Errors++
		} else {
			rep.Warnings++
		}
	}

	if *reportFile != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*reportFile, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "orapvet: %v\n", err)
			return exitInternal
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "orapvet: %v\n", err)
			return exitInternal
		}
	} else {
		for _, jf := range rep.Findings {
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", jf.File, jf.Line, jf.Rule, jf.Msg)
			for _, h := range jf.Chain {
				fmt.Fprintf(stdout, "\t%-6s %s at %s:%d\n", h.Kind, h.Desc, h.File, h.Line)
			}
		}
		if len(rep.Findings) == 0 {
			fmt.Fprintf(stdout, "orapvet: %s clean\n", modPath)
		}
	}

	switch {
	case rep.Errors > 0:
		return exitErrors
	case rep.Warnings > 0:
		return exitWarnings
	}
	return exitClean
}
