// Command orapvet enforces this repository's cross-package invariants —
// the properties the compiler cannot check but the experiments depend
// on. It typechecks ./internal/... and ./cmd/... with go/types and
// applies six rules:
//
//	norand        no math/rand in internal/ (use internal/rng)
//	nowalltime    no time.Now / time.Since in internal/
//	clonerelease  sim.Parallel.Clone paired with Release per function
//	irmutate      no ir.Program field writes outside internal/ir
//	shortrace     goroutine-spawning tests must not skip under -short
//	nosecret      no fmt-printing of raw key bits or gf2.Vec values in
//	              internal/ (format through internal/redact)
//
// Usage:
//
//	orapvet [-C dir]
//
// Findings print one per line as file:line: [rule] message; the exit
// status is 1 when there are any. Run from anywhere inside the module
// (the go.mod is located by walking up), or point -C at the module.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dir := flag.String("C", ".", "directory inside the module to vet")
	flag.Parse()

	root, modPath, err := findModule(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orapvet: %v\n", err)
		os.Exit(2)
	}
	findings, err := analyze(root, modPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orapvet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		// Relative paths keep the output stable across checkouts.
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	fmt.Printf("orapvet: %s clean\n", modPath)
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
