package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixtureFindings runs the analyzer over the seeded fixture module once
// per test binary.
var fixtureFindings []Finding

func fixture(t *testing.T) []Finding {
	t.Helper()
	if fixtureFindings != nil {
		return fixtureFindings
	}
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analyze(root, "vetfixture")
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	fixtureFindings = findings
	return findings
}

// one returns the single finding for rule whose message mentions ident,
// failing the test otherwise.
func one(t *testing.T, rule, ident string) Finding {
	t.Helper()
	var hits []Finding
	for _, f := range fixture(t) {
		if f.Rule == rule && strings.Contains(f.Msg, ident) {
			hits = append(hits, f)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("rule %s mentioning %q: %d findings, want 1\nall: %v", rule, ident, len(hits), fixture(t))
	}
	return hits[0]
}

func TestFixtureFindingCount(t *testing.T) {
	fs := fixture(t)
	if len(fs) != 12 {
		for _, f := range fs {
			t.Log(f)
		}
		t.Fatalf("fixture produced %d findings, want 12", len(fs))
	}
	for _, f := range fs {
		if !strings.Contains(f.Pos.Filename, filepath.Join("internal", "bad")) {
			t.Errorf("finding outside internal/bad: %v", f)
		}
	}
}

func TestNoRandRule(t *testing.T) {
	f := one(t, RuleNoRand, "math/rand")
	if !strings.HasSuffix(f.Pos.Filename, "bad.go") || f.Pos.Line != 6 {
		t.Errorf("norand at %s:%d, want bad.go:6", f.Pos.Filename, f.Pos.Line)
	}
}

func TestNoWallTimeRule(t *testing.T) {
	now := one(t, RuleNoWallTime, "time.Now")
	since := one(t, RuleNoWallTime, "time.Since")
	if now.Pos.Line != 15 || since.Pos.Line != 17 {
		t.Errorf("nowalltime at lines %d/%d, want 15/17", now.Pos.Line, since.Pos.Line)
	}
}

func TestCloneReleaseRule(t *testing.T) {
	f := one(t, RuleCloneRelease, "LeakClone")
	if f.Pos.Line != 20 {
		t.Errorf("clonerelease at line %d, want 20", f.Pos.Line)
	}
}

func TestIRMutateRule(t *testing.T) {
	name := one(t, RuleIRMutate, "field Name")
	ops := one(t, RuleIRMutate, "field Ops")
	if name.Pos.Line != 24 || ops.Pos.Line != 28 {
		t.Errorf("irmutate at lines %d/%d, want 24/28", name.Pos.Line, ops.Pos.Line)
	}
}

func TestShortRaceRule(t *testing.T) {
	f := one(t, RuleShortRace, "TestSpawnSkipsShort")
	if !strings.HasSuffix(f.Pos.Filename, "bad_test.go") {
		t.Errorf("shortrace in %s, want bad_test.go", f.Pos.Filename)
	}
}

func TestNoSecretRule(t *testing.T) {
	bits := one(t, RuleNoSecret, `raw key bits "key"`)
	vec := one(t, RuleNoSecret, "gf2.Vec")
	if !strings.HasSuffix(bits.Pos.Filename, "secret.go") || bits.Pos.Line != 12 {
		t.Errorf("nosecret []bool case at %s:%d, want secret.go:12", bits.Pos.Filename, bits.Pos.Line)
	}
	if vec.Pos.Line != 16 {
		t.Errorf("nosecret gf2.Vec case at line %d, want 16", vec.Pos.Line)
	}
	if !strings.Contains(bits.Msg, "fmt.Println") || !strings.Contains(vec.Msg, "fmt.Printf") {
		t.Errorf("nosecret messages missing the offending call: %q / %q", bits.Msg, vec.Msg)
	}
}

// TestNoSecretLogRule pins the log-package extension: key material
// routed through the standard logger — package-level functions and
// (*log.Logger) methods alike — fires exactly like the fmt family,
// while derived scalars (good.LogKeyShape) stay clean.
func TestNoSecretLogRule(t *testing.T) {
	direct := one(t, RuleNoSecret, `raw key bits "keyBits"`)
	if !strings.HasSuffix(direct.Pos.Filename, "logleak.go") || direct.Pos.Line != 9 {
		t.Errorf("nosecret log case at %s:%d, want logleak.go:9", direct.Pos.Filename, direct.Pos.Line)
	}
	if !strings.Contains(direct.Msg, "log.Printf") {
		t.Errorf("log finding must name the offending call: %q", direct.Msg)
	}
	method := one(t, RuleNoSecret, `raw key bits "masterKey"`)
	if !strings.Contains(method.Msg, "(*log.Logger).Println") {
		t.Errorf("logger-method finding must name the method: %q", method.Msg)
	}
}

// TestNoSecretAliasRule pins the single-assignment alias case: the
// print of the alias fires with its resolved source name, while the
// reassigned local and the innocuously named alias stay clean.
func TestNoSecretAliasRule(t *testing.T) {
	alias := one(t, RuleNoSecret, "aliased from")
	if !strings.HasSuffix(alias.Pos.Filename, "secret.go") {
		t.Errorf("nosecret alias case in %s, want secret.go", alias.Pos.Filename)
	}
	if !strings.Contains(alias.Msg, `raw key bits "k"`) || !strings.Contains(alias.Msg, `(aliased from "Key")`) {
		t.Errorf("alias finding must name the local and its source: %q", alias.Msg)
	}
	secretFindings := 0
	for _, f := range fixture(t) {
		if f.Rule == RuleNoSecret && strings.HasSuffix(f.Pos.Filename, "secret.go") {
			secretFindings++
		}
	}
	if secretFindings != 3 {
		t.Errorf("secret.go produced %d nosecret findings, want 3 (direct, gf2.Vec, alias); "+
			"the reassigned and harmless aliases must stay clean", secretFindings)
	}
}

// TestRepoIsClean runs the analyzer over this repository itself — the
// same check `make orapvet` enforces in CI.
func TestRepoIsClean(t *testing.T) {
	root, modPath, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analyze(root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}

func TestFindModule(t *testing.T) {
	root, modPath, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "orap" {
		t.Errorf("module path = %q, want orap", modPath)
	}
	if _, _, err := findModule(filepath.Join(root, "internal", "sim")); err != nil {
		t.Errorf("findModule from a subdirectory: %v", err)
	}
}
