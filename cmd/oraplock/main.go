// Command oraplock locks a combinational .bench circuit with a
// conventional locking layer (weighted logic locking by default) and
// synthesizes the OraP key sequence that unlocks it.
//
// Usage:
//
//	oraplock -in c432.bench -out c432_locked.bench -keybits 64 -ctrl 3
//
// The locked netlist is written in .bench format (key inputs named
// keyinput0…), the correct key and the OraP key sequence (the seeds the
// chip owner would store in tamper-proof memory) are printed, along with
// the unlock schedule and register overhead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"orap/internal/bench"
	"orap/internal/check"
	"orap/internal/lock"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/scan"
)

func main() {
	var (
		in      = flag.String("in", "", "input .bench file (required)")
		out     = flag.String("out", "", "output .bench file for the locked netlist (default: stdout)")
		keyBits = flag.Int("keybits", 64, "key (LFSR) size")
		ctrl    = flag.Int("ctrl", 3, "weighted-locking control gate width (1 = plain XOR/XNOR)")
		scheme  = flag.String("lock", "weighted", "locking technique: weighted, random, sarlock, antisat, ttlock")
		prot    = flag.String("protect", "basic", "OraP variant: basic, modified, none")
		pins    = flag.Int("pins", -1, "number of leading inputs that are package pins; the rest feed from flip-flops (-1 = all inputs are pins)")
		pinOuts = flag.Int("pinouts", -1, "number of leading outputs that are package pins (-1 = all outputs are pins)")
		seed    = flag.Uint64("seed", 1, "random seed")
		wall    = flag.Bool("Wall", false, "print warning- and info-level netlist diagnostics")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "oraplock: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	var warn io.Writer
	if *wall {
		warn = os.Stderr
	}
	circuit, err := check.LoadFile(*in, warn)
	fatal(err)
	fmt.Fprintf(os.Stderr, "parsed %s\n", circuit.Summary())

	r := rng.New(*seed)
	var locked *lock.Locked
	switch *scheme {
	case "weighted":
		locked, err = lock.Weighted(circuit, lock.WeightedOptions{
			KeyBits:      *keyBits,
			ControlWidth: *ctrl,
			Rand:         r,
		})
	case "random":
		locked, err = lock.RandomXOR(circuit, *keyBits, r)
	case "sarlock":
		locked, err = lock.SARLock(circuit, *keyBits, r)
	case "antisat":
		locked, err = lock.AntiSAT(circuit, *keyBits/2, r)
	case "ttlock":
		locked, err = lock.TTLock(circuit, *keyBits, r)
	default:
		err = fmt.Errorf("unknown locking technique %q", *scheme)
	}
	fatal(err)

	var protection scan.Protection
	switch *prot {
	case "basic":
		protection = scan.OraPBasic
	case "modified":
		protection = scan.OraPModified
	case "none":
		protection = scan.None
	default:
		fatal(fmt.Errorf("unknown protection %q", *prot))
	}
	realPIs, realPOs := *pins, *pinOuts
	if realPIs < 0 {
		realPIs = circuit.NumInputs()
	}
	if realPOs < 0 {
		realPOs = circuit.NumOutputs()
	}
	if protection == scan.OraPModified && circuit.NumInputs()-realPIs == 0 {
		fatal(fmt.Errorf("the modified scheme needs flip-flops: pass -pins/-pinouts to mark part of the interface as flip-flop connections"))
	}
	cfg, err := orap.Protect(locked.Circuit, locked.Key, realPIs, realPOs, protection, orap.Options{Rand: r})
	fatal(err)

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		fatal(err)
		defer w.Close()
	}
	fatal(bench.Format(w, locked.Circuit))

	fmt.Fprintf(os.Stderr, "locked circuit: %s", locked.Circuit.Summary())
	fmt.Fprintf(os.Stderr, "correct key:    %s\n", bits(locked.Key))
	if protection != scan.None {
		ov := orap.RegisterOverhead(cfg.LFSR)
		fmt.Fprintf(os.Stderr, "OraP register:  %d cells, %d reseeding points, %d taps\n",
			cfg.LFSR.N, len(cfg.LFSR.Inject), len(cfg.LFSR.Taps))
		fmt.Fprintf(os.Stderr, "register cost:  %d gates (+%d inverters)\n",
			ov.Gates(), ov.PulseGenInverters)
		fmt.Fprintf(os.Stderr, "unlock:         %d seeds over %d cycles\n",
			cfg.Schedule.NumSeeds(), cfg.Schedule.TotalCycles())
		for i, s := range cfg.Seeds {
			fmt.Fprintf(os.Stderr, "  seed %2d: %s\n", i, s)
		}
	}
}

func bits(bs []bool) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "oraplock: %v\n", err)
		os.Exit(1)
	}
}
