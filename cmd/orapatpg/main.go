// Command orapatpg runs the Table II testability flow on a circuit:
// fault collapsing, random-pattern fault simulation with dropping (the
// HOPE step), then SAT-based deterministic test generation with
// redundant/aborted classification (the Atalanta step).
//
// Usage:
//
//	orapatpg -in c432.bench
//	orapatpg -gen b20 -scale 0.05     # on a generated benchmark profile
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"orap/internal/atpg"
	"orap/internal/benchgen"
	"orap/internal/check"
	"orap/internal/faultsim"
	"orap/internal/netlist"
	"orap/internal/rng"
)

func main() {
	var (
		in           = flag.String("in", "", "input .bench file")
		gen          = flag.String("gen", "", "generate a synthetic benchmark instead (s38417, b17, …)")
		scale        = flag.Float64("scale", 0.05, "scale factor for -gen")
		randomBlocks = flag.Int("randblocks", 32, "random fault-simulation blocks (64 patterns each) before ATPG")
		budget       = flag.Int64("conflicts", 0, "SAT conflict budget per fault (0 = high effort)")
		seed         = flag.Uint64("seed", 1, "random seed")
		workers      = flag.Int("workers", 0, "fault-simulation worker pool size (0 = all cores, 1 = serial); results are identical at any setting")
		wall         = flag.Bool("Wall", false, "print warning- and info-level netlist diagnostics")
	)
	flag.Parse()

	var warn io.Writer
	if *wall {
		warn = os.Stderr
	}
	var circuit *netlist.Circuit
	switch {
	case *in != "":
		var err error
		circuit, err = check.LoadFile(*in, warn)
		fatal(err)
	case *gen != "":
		prof, err := benchgen.ProfileByName(*gen)
		fatal(err)
		circuit, err = benchgen.Generate(prof.Scale(*scale), *seed)
		fatal(err)
		// Generated circuits are structurally sound by construction, but
		// the hygiene rules still apply to them.
		rep := check.Circuit(circuit)
		if warn != nil {
			fmt.Fprint(os.Stderr, rep.String())
		}
		fatal(rep.Err())
	default:
		fmt.Fprintln(os.Stderr, "orapatpg: pass -in or -gen")
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("circuit: %s", circuit.Summary())

	sim, err := faultsim.New(circuit)
	fatal(err)
	sim.Workers = *workers
	faults := faultsim.CollapseFaults(circuit)
	fmt.Printf("collapsed fault list: %d faults\n", len(faults))

	start := time.Now()
	randRes := sim.RunRandom(faults, *randomBlocks, rng.New(*seed))
	fmt.Printf("random phase: %d/%d detected (%.2f%%) in %v, %d faults remain\n",
		randRes.Detected, randRes.Total, randRes.Coverage(),
		time.Since(start).Round(time.Millisecond), len(randRes.Remaining))

	start = time.Now()
	sum, err := atpg.Run(circuit, sim, randRes, atpg.Options{ConflictBudget: *budget})
	fatal(err)
	fmt.Printf("deterministic phase: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("fault coverage:      %.2f%%\n", sum.Coverage())
	fmt.Printf("detected:            %d/%d\n", sum.Detected, sum.Total)
	fmt.Printf("redundant:           %d\n", sum.Redundant)
	fmt.Printf("aborted:             %d\n", sum.Aborted)
	fmt.Printf("red + abrt:          %d\n", sum.RedundantPlusAborted())
	fmt.Printf("generated patterns:  %d\n", len(sum.Patterns))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "orapatpg: %v\n", err)
		os.Exit(1)
	}
}
