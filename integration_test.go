package orap_test

import (
	"os"
	"path/filepath"
	"testing"

	"orap/internal/attack"
	"orap/internal/bench"
	"orap/internal/benchgen"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/scan"
)

// TestEndToEndFileWorkflow exercises the full tool pipeline at the file
// level, the way cmd/oraplock and cmd/orapattack are used: generate a
// design, serialize it, lock the reparsed copy, serialize the locked
// netlist, reparse it, and attack it — with both an unprotected and an
// OraP-gated chip as the oracle.
func TestEndToEndFileWorkflow(t *testing.T) {
	dir := t.TempDir()
	seed := uint64(2024)

	// Design → file → reparse.
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		t.Fatal(err)
	}
	scaled := prof.Scale(0.004)
	design, err := benchgen.Generate(scaled, seed)
	if err != nil {
		t.Fatal(err)
	}
	origPath := filepath.Join(dir, "design.bench")
	writeBench(t, origPath, design)
	design2 := parseBench(t, origPath)
	if design2.GateCount() != design.GateCount() || design2.NumOutputs() != design.NumOutputs() {
		t.Fatalf("round trip changed the design: %s vs %s", design2.Summary(), design.Summary())
	}

	// Lock the reparsed design → file → reparse.
	locked, err := lock.Weighted(design2, lock.WeightedOptions{
		KeyBits:      12,
		ControlWidth: 3,
		KeyGates:     12,
		Rand:         rng.New(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	lockedPath := filepath.Join(dir, "locked.bench")
	writeBench(t, lockedPath, locked.Circuit)
	locked2 := parseBench(t, lockedPath)
	if locked2.NumKeys() != 12 {
		t.Fatalf("locked round trip lost key inputs: %d", locked2.NumKeys())
	}

	// Attack through an unprotected chip: the key must fall.
	cfgNone, err := orap.Protect(locked2, locked.Key, scaled.Pins, scaled.PinOuts, scan.None, orap.Options{Rand: rng.New(seed + 1)})
	if err != nil {
		t.Fatal(err)
	}
	chip, err := scan.New(cfgNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Unlock(nil); err != nil {
		t.Fatal(err)
	}
	res, err := attack.SAT(locked2, oracle.NewScan(chip), attack.Budgets{MaxIterations: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := attack.VerifyKey(locked2, design2, res.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("SAT attack via unprotected chip failed on the reparsed netlist")
	}

	// Attack through an OraP chip: the recovered key must NOT verify.
	cfgOraP, err := orap.Protect(locked2, locked.Key, scaled.Pins, scaled.PinOuts, scan.OraPBasic, orap.Options{Rand: rng.New(seed + 2)})
	if err != nil {
		t.Fatal(err)
	}
	chipP, err := scan.New(cfgOraP)
	if err != nil {
		t.Fatal(err)
	}
	if err := chipP.Unlock(nil); err != nil {
		t.Fatal(err)
	}
	resP, err := attack.SAT(locked2, oracle.NewScan(chipP), attack.Budgets{MaxIterations: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if resP.Key != nil {
		okP, err := attack.VerifyKey(locked2, design2, resP.Key)
		if err != nil {
			t.Fatal(err)
		}
		if okP {
			t.Fatal("SAT attack via the OraP chip recovered a correct key — protection broken")
		}
	}
}

// TestEndToEndModifiedSchemeChip runs the full modified-scheme lifecycle:
// protect, unlock, verify functionality, then confirm the scenario-(e)
// freeze corrupts the key.
func TestEndToEndModifiedSchemeChip(t *testing.T) {
	seed := uint64(77)
	prof, err := benchgen.ProfileByName("b21")
	if err != nil {
		t.Fatal(err)
	}
	scaled := prof.Scale(0.01)
	design, err := benchgen.Generate(scaled, seed)
	if err != nil {
		t.Fatal(err)
	}
	locked, err := lock.Weighted(design, lock.WeightedOptions{
		KeyBits:      18,
		ControlWidth: 3,
		Rand:         rng.New(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := orap.Protect(locked.Circuit, locked.Key, scaled.Pins, scaled.PinOuts, scan.OraPModified, orap.Options{Rand: rng.New(seed + 1)})
	if err != nil {
		t.Fatal(err)
	}
	chip, err := scan.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Unlock(nil); err != nil {
		t.Fatal(err)
	}
	got := chip.Key()
	for i := range got {
		if got[i] != locked.Key[i] {
			t.Fatal("modified-scheme chip unlocked to the wrong key")
		}
	}

	// Freeze trojan corrupts it.
	chip2, err := scan.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chip2.SetScanEnable(true)
	ffs := make([]bool, cfg.NumFFs())
	for i := range ffs {
		ffs[i] = i%3 == 0
	}
	if err := chip2.ScanInFFs(ffs); err != nil {
		t.Fatal(err)
	}
	chip2.SetScanEnable(false)
	chip2.ArmTrojans(scan.Trojans{FreezeFFs: true})
	if err := chip2.Unlock(nil); err != nil {
		t.Fatal(err)
	}
	same := true
	for i, b := range chip2.Key() {
		if b != locked.Key[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("frozen flip-flops did not corrupt the modified-scheme key")
	}
}

func writeBench(t *testing.T, path string, c *netlist.Circuit) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := bench.Format(f, c); err != nil {
		t.Fatal(err)
	}
}

func parseBench(t *testing.T, path string) *netlist.Circuit {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := bench.Parse(f, filepath.Base(path))
	if err != nil {
		t.Fatal(err)
	}
	return c
}
