// Package orap's root benchmark harness regenerates every table and
// figure-equivalent of the paper's evaluation, one testing.B benchmark
// per experiment. The benchmarks run the generated benchmark circuits at
// a reduced scale by default so `go test -bench=. -benchmem` finishes in
// minutes; run `go run ./cmd/orapbench -table all -scale 1` for
// paper-scale numbers. Key result figures are attached to each benchmark
// via b.ReportMetric, so the -bench output doubles as a summary of the
// reproduction.
package orap_test

import (
	"testing"

	"orap/internal/audit"
	"orap/internal/benchgen"
	"orap/internal/exp"
	"orap/internal/faultsim"
	"orap/internal/ir"
	"orap/internal/lock"
	"orap/internal/metrics"
	"orap/internal/netlist"
	"orap/internal/rng"
)

// The reduced-scale knobs for every benchmark live here so the whole
// harness is retuned in one place.
const (
	// benchScale is the default circuit scale for benchmarks.
	benchScale = 0.05
	// benchTableIIScale is Table II's lighter scale: its flow runs full
	// ATPG per circuit, which dominates everything else at benchScale
	// (mirroring orapbench's reduced ATPG default).
	benchTableIIScale = 0.01
	benchSeed         = 2020
)

// BenchmarkTableI regenerates Table I (HD %, area overhead %, delay
// overhead % under OraP + weighted logic locking) on scaled versions of
// all eight benchmark circuits. Reported metrics: the mean HD and mean
// area overhead across circuits.
//
// The Serial/Parallel pair measures the worker-pool speedup on the same
// workload (Workers 1 vs all cores); the tables they produce are
// identical, which the exp determinism tests assert.
func benchmarkTableI(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.TableI(exp.TableIOptions{
			Scale:    benchScale,
			Patterns: 1 << 14,
			Workers:  workers,
			Seed:     benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		var hd, area float64
		for _, r := range rows {
			hd += r.HDPercent
			area += r.AreaOvhd
		}
		b.ReportMetric(hd/float64(len(rows)), "meanHD%")
		b.ReportMetric(area/float64(len(rows)), "meanAreaOvhd%")
	}
}

func BenchmarkTableI(b *testing.B)         { benchmarkTableI(b, 0) }
func BenchmarkTableISerial(b *testing.B)   { benchmarkTableI(b, 1) }
func BenchmarkTableIParallel(b *testing.B) { benchmarkTableI(b, 0) }

// BenchmarkHD measures the Hamming-distance kernel alone (one locked
// circuit, many pattern blocks) serial vs parallel.
func benchmarkHD(b *testing.B, workers int) {
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		b.Fatal(err)
	}
	circuit, err := benchgen.Generate(prof.Scale(benchScale), benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lock.Weighted(circuit, lock.WeightedOptions{KeyBits: 48, ControlWidth: 3, Rand: rng.New(benchSeed)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := metrics.HammingDistance(l.Circuit, l.Key, metrics.HDOptions{
			Patterns:  1 << 15,
			WrongKeys: 4,
			Workers:   workers,
			Rand:      rng.New(benchSeed + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HDPercent, "HD%")
	}
}

func BenchmarkHDSerial(b *testing.B)   { benchmarkHD(b, 1) }
func BenchmarkHDParallel(b *testing.B) { benchmarkHD(b, 0) }

// benchEvalCircuit builds the circuit shared by the IR benchmarks.
func benchEvalCircuit(b *testing.B) *netlist.Circuit {
	b.Helper()
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		b.Fatal(err)
	}
	circuit, err := benchgen.Generate(prof.Scale(benchScale), benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	return circuit
}

// BenchmarkIRCompile measures ir.Compile alone: the one-time cost every
// evaluator pays to obtain the flat program.
func BenchmarkIRCompile(b *testing.B) {
	circuit := benchEvalCircuit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ir.Compile(circuit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalIR and BenchmarkEvalLegacy are a before/after pair for the
// compiled-IR refactor: one full 64-pattern bit-parallel sweep over the
// scaled b20 netlist, through the shared IR kernel versus an inline
// walker chasing the netlist's slice-of-struct gates (the pre-IR
// evaluation strategy, kept here only as the benchmark baseline).
func BenchmarkEvalIR(b *testing.B) {
	circuit := benchEvalCircuit(b)
	prog, err := ir.Compile(circuit)
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]uint64, prog.NumNodes())
	r := rng.New(benchSeed + 3)
	for _, id := range prog.Inputs {
		vals[id] = r.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.RunWords(vals, 1)
	}
}

func BenchmarkEvalLegacy(b *testing.B) {
	circuit := benchEvalCircuit(b)
	order, err := circuit.TopoOrder()
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]uint64, circuit.NumNodes())
	r := rng.New(benchSeed + 3)
	for _, id := range circuit.AllInputs() {
		vals[id] = r.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range order {
			g := &circuit.Gates[id]
			switch g.Type {
			case netlist.Input:
			case netlist.Const0:
				vals[id] = 0
			case netlist.Const1:
				vals[id] = ^uint64(0)
			case netlist.Buf:
				vals[id] = vals[g.Fanin[0]]
			case netlist.Not:
				vals[id] = ^vals[g.Fanin[0]]
			case netlist.And, netlist.Nand:
				v := vals[g.Fanin[0]]
				for _, f := range g.Fanin[1:] {
					v &= vals[f]
				}
				if g.Type == netlist.Nand {
					v = ^v
				}
				vals[id] = v
			case netlist.Or, netlist.Nor:
				v := vals[g.Fanin[0]]
				for _, f := range g.Fanin[1:] {
					v |= vals[f]
				}
				if g.Type == netlist.Nor {
					v = ^v
				}
				vals[id] = v
			case netlist.Xor, netlist.Xnor:
				v := vals[g.Fanin[0]]
				for _, f := range g.Fanin[1:] {
					v ^= vals[f]
				}
				if g.Type == netlist.Xnor {
					v = ^v
				}
				vals[id] = v
			}
		}
	}
}

// BenchmarkFaultSim measures the PPSFP random fault-simulation kernel
// serial vs parallel on one generated circuit.
func benchmarkFaultSim(b *testing.B, workers int) {
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		b.Fatal(err)
	}
	circuit, err := benchgen.Generate(prof.Scale(benchScale), benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	faults := faultsim.CollapseFaults(circuit)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := faultsim.New(circuit)
		if err != nil {
			b.Fatal(err)
		}
		s.Workers = workers
		res := s.RunRandom(faults, 16, rng.New(benchSeed+2))
		b.ReportMetric(res.Coverage(), "coverage%")
	}
}

func BenchmarkFaultSimSerial(b *testing.B)   { benchmarkFaultSim(b, 1) }
func BenchmarkFaultSimParallel(b *testing.B) { benchmarkFaultSim(b, 0) }

// BenchmarkAudit measures the full security analyzer (removability
// constant propagation per key bit, fingerprint classification,
// corruptibility cones) on the largest generated circuit, locked the
// way Table I locks it. Reported metric: findings per run, pinned so a
// rule regression shows up next to a timing one.
func BenchmarkAudit(b *testing.B) {
	prof, err := benchgen.ProfileByName("b19")
	if err != nil {
		b.Fatal(err)
	}
	scaled := prof.Scale(benchScale)
	circuit, err := benchgen.Generate(scaled, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lock.Weighted(circuit, lock.WeightedOptions{
		KeyBits:      scaled.LFSRSize,
		ControlWidth: scaled.CtrlInputs,
		Rand:         rng.New(benchSeed),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := audit.Circuit(l.Circuit)
		if err != nil {
			b.Fatal(err)
		}
		if rep.HasErrors() {
			b.Fatalf("audit errors on the weighted-locked benchmark:\n%s", rep)
		}
		b.ReportMetric(float64(len(rep.Findings)), "findings")
	}
}

// BenchmarkTableII regenerates Table II (stuck-at fault coverage and
// redundant+aborted fault counts, original vs protected). The coverage
// delta (protected − original, averaged) is reported; the paper's
// observation is that it is non-negative.
func BenchmarkTableII(b *testing.B) {
	circuits := []string{"s38417", "s38584", "b17", "b20", "b21", "b22"}
	if testing.Short() {
		circuits = []string{"b20"}
	}
	for i := 0; i < b.N; i++ {
		rows, err := exp.TableII(exp.TableIIOptions{
			Scale:    benchTableIIScale,
			Circuits: circuits,
			Seed:     benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		var delta float64
		for _, r := range rows {
			delta += r.ProtFC - r.OrigFC
		}
		b.ReportMetric(delta/float64(len(rows)), "meanFCdelta%")
	}
}

// BenchmarkSectionIIA regenerates the Section II-A security analysis as
// an experiment: four oracle-guided attacks against the unprotected and
// the OraP-gated scan oracle. Reported metrics: how many attacks steal a
// correct key in each mode (expected: all vs none).
func BenchmarkSectionIIA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AttackStudy(exp.AttackStudyOptions{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		var vsNone, vsOraP float64
		for _, r := range rows {
			if r.KeyCorrect {
				if r.Protection == "none" {
					vsNone++
				} else {
					vsOraP++
				}
			}
		}
		b.ReportMetric(vsNone, "stolen-vs-unprotected")
		b.ReportMetric(vsOraP, "stolen-vs-orap")
	}
}

// BenchmarkSectionIII regenerates the Section III Trojan study: payload
// costs under the countermeasures plus behavioural outcomes of every
// scenario against the basic and modified schemes. Reported metric: the
// scenario-(d) payload in gate equivalents for a 128-bit register.
func BenchmarkSectionIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.TrojanStudy(exp.TrojanStudyOptions{KeyBits: 128, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scenario == "d" {
				b.ReportMetric(r.PayloadGE, "payloadD-GE")
			}
			if r.Scenario == "e" && (!r.BasicWorks || r.ModifiedWorks) {
				b.Fatalf("scenario (e) shape broken: basic=%v modified=%v", r.BasicWorks, r.ModifiedWorks)
			}
		}
	}
}

// BenchmarkSATScaling regenerates the attack-scaling ablation: SAT-attack
// iterations against random XOR locking, weighted locking, SARLock and
// Anti-SAT as the key widens. Reported metric: SARLock iterations at the
// widest swept key (expected ≈ 2^keybits).
func BenchmarkSATScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.SATScaling(exp.SATScalingOptions{KeyWidths: []int{4, 6, 8}, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Defense == "sarlock" && r.KeyBits == 8 {
				b.ReportMetric(float64(r.Iterations), "sarlock8-iters")
			}
		}
	}
}

// BenchmarkXorTreeSweep regenerates the attack-(d) design-space sweep:
// the XOR-tree payload a Trojan needs as a function of the LFSR wiring
// and unlock schedule. Reported metric: the payload at the densest swept
// design point.
func BenchmarkXorTreeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.XorTreeSweep(128)
		if err != nil {
			b.Fatal(err)
		}
		max := 0.0
		for _, r := range rows {
			if r.PayloadGE > max {
				max = r.PayloadGE
			}
		}
		b.ReportMetric(max, "maxPayload-GE")
	}
}

// BenchmarkCtrlWidthSweep regenerates the weighted-locking control-width
// ablation (HD versus control gate width). Reported metric: HD at width 3
// (Table I's standard choice).
func BenchmarkCtrlWidthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.CtrlWidthSweep(benchSeed, []int{1, 2, 3, 5}, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.ControlWidth == 3 {
				b.ReportMetric(r.HDPercent, "HD@w3-%")
			}
		}
	}
}

// BenchmarkOtherAttacks regenerates the bypass / SPS+removal
// applicability study. Reported metric: how many of the five rows apply
// (expected 3: bypass/SARLock both oracles, SPS/Anti-SAT).
func BenchmarkOtherAttacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.OtherAttacks(11)
		if err != nil {
			b.Fatal(err)
		}
		applies := 0.0
		for _, r := range rows {
			if r.Applies {
				applies++
			}
		}
		b.ReportMetric(applies, "applicable-rows")
	}
}

// BenchmarkKeySizeSweep regenerates the HD-saturation ablation. Reported
// metric: HD at the largest swept key size (expected just under 50%).
func BenchmarkKeySizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.KeySizeSweep(benchSeed, []int{12, 48, 96}, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].HDPercent, "HD@96-%")
	}
}
