// Package orap's root benchmark harness regenerates every table and
// figure-equivalent of the paper's evaluation, one testing.B benchmark
// per experiment. The benchmarks run the generated benchmark circuits at
// a reduced scale by default so `go test -bench=. -benchmem` finishes in
// minutes; run `go run ./cmd/orapbench -table all -scale 1` for
// paper-scale numbers. Key result figures are attached to each benchmark
// via b.ReportMetric, so the -bench output doubles as a summary of the
// reproduction.
package orap_test

import (
	"testing"

	"orap/internal/exp"
)

const (
	benchScale = 0.05
	benchSeed  = 2020
)

// BenchmarkTableI regenerates Table I (HD %, area overhead %, delay
// overhead % under OraP + weighted logic locking) on scaled versions of
// all eight benchmark circuits. Reported metrics: the mean HD and mean
// area overhead across circuits.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.TableI(exp.TableIOptions{
			Scale:    benchScale,
			Patterns: 1 << 14,
			Seed:     benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		var hd, area float64
		for _, r := range rows {
			hd += r.HDPercent
			area += r.AreaOvhd
		}
		b.ReportMetric(hd/float64(len(rows)), "meanHD%")
		b.ReportMetric(area/float64(len(rows)), "meanAreaOvhd%")
	}
}

// BenchmarkTableII regenerates Table II (stuck-at fault coverage and
// redundant+aborted fault counts, original vs protected). The coverage
// delta (protected − original, averaged) is reported; the paper's
// observation is that it is non-negative.
func BenchmarkTableII(b *testing.B) {
	circuits := []string{"s38417", "s38584", "b17", "b20", "b21", "b22"}
	if testing.Short() {
		circuits = []string{"b20"}
	}
	for i := 0; i < b.N; i++ {
		rows, err := exp.TableII(exp.TableIIOptions{
			Scale:    0.01,
			Circuits: circuits,
			Seed:     benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		var delta float64
		for _, r := range rows {
			delta += r.ProtFC - r.OrigFC
		}
		b.ReportMetric(delta/float64(len(rows)), "meanFCdelta%")
	}
}

// BenchmarkSectionIIA regenerates the Section II-A security analysis as
// an experiment: four oracle-guided attacks against the unprotected and
// the OraP-gated scan oracle. Reported metrics: how many attacks steal a
// correct key in each mode (expected: all vs none).
func BenchmarkSectionIIA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AttackStudy(exp.AttackStudyOptions{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		var vsNone, vsOraP float64
		for _, r := range rows {
			if r.KeyCorrect {
				if r.Protection == "none" {
					vsNone++
				} else {
					vsOraP++
				}
			}
		}
		b.ReportMetric(vsNone, "stolen-vs-unprotected")
		b.ReportMetric(vsOraP, "stolen-vs-orap")
	}
}

// BenchmarkSectionIII regenerates the Section III Trojan study: payload
// costs under the countermeasures plus behavioural outcomes of every
// scenario against the basic and modified schemes. Reported metric: the
// scenario-(d) payload in gate equivalents for a 128-bit register.
func BenchmarkSectionIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.TrojanStudy(exp.TrojanStudyOptions{KeyBits: 128, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scenario == "d" {
				b.ReportMetric(r.PayloadGE, "payloadD-GE")
			}
			if r.Scenario == "e" && (!r.BasicWorks || r.ModifiedWorks) {
				b.Fatalf("scenario (e) shape broken: basic=%v modified=%v", r.BasicWorks, r.ModifiedWorks)
			}
		}
	}
}

// BenchmarkSATScaling regenerates the attack-scaling ablation: SAT-attack
// iterations against random XOR locking, weighted locking, SARLock and
// Anti-SAT as the key widens. Reported metric: SARLock iterations at the
// widest swept key (expected ≈ 2^keybits).
func BenchmarkSATScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.SATScaling(exp.SATScalingOptions{KeyWidths: []int{4, 6, 8}, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Defense == "sarlock" && r.KeyBits == 8 {
				b.ReportMetric(float64(r.Iterations), "sarlock8-iters")
			}
		}
	}
}

// BenchmarkXorTreeSweep regenerates the attack-(d) design-space sweep:
// the XOR-tree payload a Trojan needs as a function of the LFSR wiring
// and unlock schedule. Reported metric: the payload at the densest swept
// design point.
func BenchmarkXorTreeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.XorTreeSweep(128)
		if err != nil {
			b.Fatal(err)
		}
		max := 0.0
		for _, r := range rows {
			if r.PayloadGE > max {
				max = r.PayloadGE
			}
		}
		b.ReportMetric(max, "maxPayload-GE")
	}
}

// BenchmarkCtrlWidthSweep regenerates the weighted-locking control-width
// ablation (HD versus control gate width). Reported metric: HD at width 3
// (Table I's standard choice).
func BenchmarkCtrlWidthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.CtrlWidthSweep(benchSeed, []int{1, 2, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.ControlWidth == 3 {
				b.ReportMetric(r.HDPercent, "HD@w3-%")
			}
		}
	}
}

// BenchmarkOtherAttacks regenerates the bypass / SPS+removal
// applicability study. Reported metric: how many of the five rows apply
// (expected 3: bypass/SARLock both oracles, SPS/Anti-SAT).
func BenchmarkOtherAttacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.OtherAttacks(11)
		if err != nil {
			b.Fatal(err)
		}
		applies := 0.0
		for _, r := range rows {
			if r.Applies {
				applies++
			}
		}
		b.ReportMetric(applies, "applicable-rows")
	}
}

// BenchmarkKeySizeSweep regenerates the HD-saturation ablation. Reported
// metric: HD at the largest swept key size (expected just under 50%).
func BenchmarkKeySizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.KeySizeSweep(benchSeed, []int{12, 48, 96})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].HDPercent, "HD@96-%")
	}
}
