module orap

go 1.22
