// Package cnf translates gate-level circuits into CNF via the Tseitin
// transformation and builds the miter circuits used by oracle-guided
// attacks.
//
// The SAT attack encodes two copies of the locked netlist that share their
// primary inputs but carry independent key variables, plus a disequality
// (miter) constraint over the outputs; each oracle query then adds two
// more copies with the inputs fixed to the distinguishing pattern and the
// outputs fixed to the oracle's response. All of those encodings are
// provided here so the attack packages stay free of clause-level detail.
//
// Encoding runs over the compiled circuit IR (internal/ir): a Miter
// compiles its circuit once and every per-query copy re-walks the same
// flat program, so clause emission order — and hence variable numbering —
// is reproducible and independent of the netlist's mutable state.
package cnf

import (
	"fmt"

	"orap/internal/ir"
	"orap/internal/netlist"
	"orap/internal/sat"
)

// Instance is one CNF copy of a circuit inside a solver: the variable
// assigned to every netlist node.
type Instance struct {
	// NodeVar maps node ID to its SAT variable.
	NodeVar []sat.Var
	// PIVars, KeyVars and POVars are the variables of the circuit's
	// primary inputs, key inputs and primary outputs, in declaration
	// order (they alias entries of NodeVar).
	PIVars  []sat.Var
	KeyVars []sat.Var
	POVars  []sat.Var
}

// Options controls variable sharing between encoded copies.
type Options struct {
	// PIVars, when non-nil, reuses these variables for the primary
	// inputs instead of allocating fresh ones (for input sharing between
	// miter halves). Length must equal the circuit's PI count.
	PIVars []sat.Var
	// KeyVars, when non-nil, reuses these variables for the key inputs.
	KeyVars []sat.Var
	// FixedPIs, when non-nil, constrains the primary inputs to the given
	// constant bits with unit clauses. Length must equal the PI count.
	// May be combined with PIVars (the shared variables get the units).
	FixedPIs []bool
}

// Encode adds one Tseitin copy of c to the solver and returns the variable
// mapping. It compiles the circuit per call; repeat encoders (miters,
// per-query copies) should compile once and use EncodeProgram.
func Encode(s *sat.Solver, c *netlist.Circuit, opts Options) (*Instance, error) {
	prog, err := ir.Compile(c)
	if err != nil {
		return nil, err
	}
	return EncodeProgram(s, prog, opts)
}

// EncodeProgram adds one Tseitin copy of the compiled circuit to the
// solver and returns the variable mapping. Variable numbering follows the
// program's topological order, so repeated encodings of the same program
// are structurally identical.
func EncodeProgram(s *sat.Solver, prog *ir.Program, opts Options) (*Instance, error) {
	if opts.PIVars != nil && len(opts.PIVars) != prog.NumInputs() {
		return nil, fmt.Errorf("cnf: %d shared PI vars for %d inputs", len(opts.PIVars), prog.NumInputs())
	}
	if opts.KeyVars != nil && len(opts.KeyVars) != prog.NumKeys() {
		return nil, fmt.Errorf("cnf: %d shared key vars for %d key inputs", len(opts.KeyVars), prog.NumKeys())
	}
	if opts.FixedPIs != nil && len(opts.FixedPIs) != prog.NumInputs() {
		return nil, fmt.Errorf("cnf: %d fixed PI bits for %d inputs", len(opts.FixedPIs), prog.NumInputs())
	}

	inst := &Instance{NodeVar: make([]sat.Var, prog.NumNodes())}
	for i := range inst.NodeVar {
		inst.NodeVar[i] = -1
	}
	// Assign input variables first (shared or fresh).
	for i, id := range prog.PIs {
		if opts.PIVars != nil {
			inst.NodeVar[id] = opts.PIVars[i]
		} else {
			inst.NodeVar[id] = s.NewVar()
		}
	}
	for i, id := range prog.Keys {
		if opts.KeyVars != nil {
			inst.NodeVar[id] = opts.KeyVars[i]
		} else {
			inst.NodeVar[id] = s.NewVar()
		}
	}

	var fan []sat.Lit
	for _, id32 := range prog.Order {
		id := int(id32)
		op := prog.Ops[id]
		if op == ir.OpInput {
			if inst.NodeVar[id] < 0 {
				return nil, fmt.Errorf("cnf: input node %d not in PI/key lists", id)
			}
			continue
		}
		v := s.NewVar()
		inst.NodeVar[id] = v
		span := prog.FaninSpan(id)
		fan = fan[:0]
		for _, f := range span {
			fan = append(fan, sat.MkLit(inst.NodeVar[f], false))
		}
		if err := EmitGate(s, op, sat.MkLit(v, false), fan); err != nil {
			return nil, fmt.Errorf("cnf: node %d: %w", id, err)
		}
	}

	inst.PIVars = make([]sat.Var, len(prog.PIs))
	for i, id := range prog.PIs {
		inst.PIVars[i] = inst.NodeVar[id]
	}
	inst.KeyVars = make([]sat.Var, len(prog.Keys))
	for i, id := range prog.Keys {
		inst.KeyVars[i] = inst.NodeVar[id]
	}
	inst.POVars = make([]sat.Var, len(prog.POs))
	for i, id := range prog.POs {
		inst.POVars[i] = inst.NodeVar[id]
	}

	if opts.FixedPIs != nil {
		for i, b := range opts.FixedPIs {
			s.AddClause(sat.MkLit(inst.PIVars[i], !b))
		}
	}
	return inst, nil
}

// EmitGate emits the Tseitin clauses for out ↔ op(fan...). It is shared
// with the ATPG encoder so every SAT path emits the same clause shapes.
func EmitGate(s *sat.Solver, op ir.Op, out sat.Lit, fan []sat.Lit) error {
	switch op {
	case ir.OpConst0:
		s.AddClause(out.Not())
	case ir.OpConst1:
		s.AddClause(out)
	case ir.OpBuf:
		equiv(s, out, fan[0])
	case ir.OpNot:
		equiv(s, out, fan[0].Not())
	case ir.OpAnd:
		andGate(s, out, fan)
	case ir.OpNand:
		andGate(s, out.Not(), fan)
	case ir.OpOr:
		orGate(s, out, fan)
	case ir.OpNor:
		orGate(s, out.Not(), fan)
	case ir.OpXor:
		xorChain(s, out, fan)
	case ir.OpXnor:
		xorChain(s, out.Not(), fan)
	default:
		return fmt.Errorf("unsupported gate type %v", op)
	}
	return nil
}

// equiv emits out ↔ a.
func equiv(s *sat.Solver, out, a sat.Lit) {
	s.AddClause(out.Not(), a)
	s.AddClause(out, a.Not())
}

// andGate emits out ↔ AND(fan...).
func andGate(s *sat.Solver, out sat.Lit, fan []sat.Lit) {
	all := make([]sat.Lit, 0, len(fan)+1)
	for _, f := range fan {
		s.AddClause(out.Not(), f) // out → f
		all = append(all, f.Not())
	}
	all = append(all, out)
	s.AddClause(all...) // ∧f → out
}

// orGate emits out ↔ OR(fan...).
func orGate(s *sat.Solver, out sat.Lit, fan []sat.Lit) {
	all := make([]sat.Lit, 0, len(fan)+1)
	for _, f := range fan {
		s.AddClause(out, f.Not()) // f → out
		all = append(all, f)
	}
	all = append(all, out.Not())
	s.AddClause(all...) // out → ∨f
}

// EmitXor2 emits out ↔ a ⊕ b (the four-clause XOR constraint used for
// miter disequality bits as well as gate encodings).
func EmitXor2(s *sat.Solver, out, a, b sat.Lit) {
	s.AddClause(out.Not(), a, b)
	s.AddClause(out.Not(), a.Not(), b.Not())
	s.AddClause(out, a.Not(), b)
	s.AddClause(out, a, b.Not())
}

// xorChain emits out ↔ fan[0] ⊕ fan[1] ⊕ … using auxiliary variables for
// arity above two.
func xorChain(s *sat.Solver, out sat.Lit, fan []sat.Lit) {
	acc := fan[0]
	for i := 1; i < len(fan); i++ {
		var dst sat.Lit
		if i == len(fan)-1 {
			dst = out
		} else {
			dst = sat.MkLit(s.NewVar(), false)
		}
		EmitXor2(s, dst, acc, fan[i])
		acc = dst
	}
	if len(fan) == 1 {
		equiv(s, out, fan[0])
	}
}

// ConstrainBits adds unit clauses forcing each variable to the given bit.
func ConstrainBits(s *sat.Solver, vars []sat.Var, bits []bool) error {
	if len(vars) != len(bits) {
		return fmt.Errorf("cnf: %d vars vs %d bits", len(vars), len(bits))
	}
	for i, v := range vars {
		s.AddClause(sat.MkLit(v, !bits[i]))
	}
	return nil
}

// Miter is the SAT-attack formulation: two copies of a locked circuit that
// share primary inputs but have independent keys K1 and K2, with a
// constraint that at least one output differs.
//
// NewMiter builds the cone-of-influence form (only key-reachable logic is
// duplicated); NewMiterLegacy builds the classical two-full-copy form.
type Miter struct {
	S       *sat.Solver
	Circuit *netlist.Circuit
	// Prog is the compiled form of Circuit; every per-query copy is
	// encoded from it, so the circuit is compiled exactly once per miter.
	Prog   *ir.Program
	PIVars []sat.Var
	Key1   []sat.Var
	Key2   []sat.Var
	// Out1/Out2 hold the primary-output variables of the two key copies,
	// full PO width. In a cone-of-influence miter a key-independent output
	// is the same variable in both slices (the single shared encoding), or
	// -1 when the output is outside the needed support and was never
	// encoded.
	Out1 []sat.Var
	Out2 []sat.Var
	// Act is an activation variable guarding the output-disequality
	// clause: solve under assumption Act=true to search for a
	// distinguishing input, and under Act=false to extract a key that is
	// merely consistent with all recorded observations.
	Act sat.Var

	// Cone-of-influence state (nil/absent on legacy miters).
	coi       *coiInfo
	sharedVar []sat.Var // per node: shared support variable, -1 if not encoded
	constTrue sat.Var   // lazily allocated const-true var for query folding
	evalBuf   []bool    // per-node evaluation buffer for query folding
}

// AssumeDiff returns the assumption literal enabling the disequality.
func (m *Miter) AssumeDiff() sat.Lit { return sat.MkLit(m.Act, false) }

// AssumeNoDiff returns the assumption literal disabling the disequality,
// used for final key extraction.
func (m *Miter) AssumeNoDiff() sat.Lit { return sat.MkLit(m.Act, true) }

// NewMiterLegacy compiles the locked circuit c once, encodes the classical
// miter — two complete copies of the circuit — into a fresh configuration
// on solver s and asserts output disequality. Attacks that reason about
// complete output vectors or need every output variable materialized (the
// bypass attack's full-pattern enumeration) use this form; the SAT-attack
// family uses the cone-of-influence NewMiter.
func NewMiterLegacy(s *sat.Solver, c *netlist.Circuit) (*Miter, error) {
	if c.NumKeys() == 0 {
		return nil, fmt.Errorf("cnf: miter over circuit %q with no key inputs", c.Name)
	}
	prog, err := ir.Compile(c)
	if err != nil {
		return nil, err
	}
	a, err := EncodeProgram(s, prog, Options{})
	if err != nil {
		return nil, err
	}
	b, err := EncodeProgram(s, prog, Options{PIVars: a.PIVars})
	if err != nil {
		return nil, err
	}
	m := &Miter{
		S:         s,
		Circuit:   c,
		Prog:      prog,
		PIVars:    a.PIVars,
		Key1:      a.KeyVars,
		Key2:      b.KeyVars,
		Out1:      a.POVars,
		Out2:      b.POVars,
		constTrue: -1,
	}
	// diff_i ↔ out1_i ⊕ out2_i; assert act → OR(diff_i).
	m.Act = s.NewVar()
	diffs := make([]sat.Lit, 0, len(a.POVars)+1)
	diffs = append(diffs, sat.MkLit(m.Act, true))
	for i := range a.POVars {
		d := sat.MkLit(s.NewVar(), false)
		EmitXor2(s, d, sat.MkLit(a.POVars[i], false), sat.MkLit(b.POVars[i], false))
		diffs = append(diffs, d)
	}
	s.AddClause(diffs...)
	return m, nil
}

// AddIOConstraint records an oracle observation: for input pattern x with
// oracle response y, both key copies must reproduce y on x. On a
// cone-of-influence miter only the key cones are re-encoded (with the
// concrete shared values folded in); a legacy miter encodes two fresh
// complete copies of the compiled program with constant inputs.
func (m *Miter) AddIOConstraint(x, y []bool) error {
	if m.coi != nil {
		return m.addIOConstraintCOI(x, y)
	}
	for _, keys := range [][]sat.Var{m.Key1, m.Key2} {
		inst, err := EncodeProgram(m.S, m.Prog, Options{KeyVars: keys, FixedPIs: x})
		if err != nil {
			return err
		}
		if err := ConstrainBits(m.S, inst.POVars, y); err != nil {
			return err
		}
	}
	return nil
}

// ExtractInputs reads the shared primary-input pattern from the last model.
func (m *Miter) ExtractInputs() []bool {
	x := make([]bool, len(m.PIVars))
	for i, v := range m.PIVars {
		x[i] = m.S.Value(v) == sat.True
	}
	return x
}

// ExtractKey1 reads key copy 1 from the last model.
func (m *Miter) ExtractKey1() []bool { return extract(m.S, m.Key1) }

// ExtractKey2 reads key copy 2 from the last model.
func (m *Miter) ExtractKey2() []bool { return extract(m.S, m.Key2) }

func extract(s *sat.Solver, vars []sat.Var) []bool {
	out := make([]bool, len(vars))
	for i, v := range vars {
		out[i] = s.Value(v) == sat.True
	}
	return out
}
