// Package cnf translates gate-level circuits into CNF via the Tseitin
// transformation and builds the miter circuits used by oracle-guided
// attacks.
//
// The SAT attack encodes two copies of the locked netlist that share their
// primary inputs but carry independent key variables, plus a disequality
// (miter) constraint over the outputs; each oracle query then adds two
// more copies with the inputs fixed to the distinguishing pattern and the
// outputs fixed to the oracle's response. All of those encodings are
// provided here so the attack packages stay free of clause-level detail.
package cnf

import (
	"fmt"

	"orap/internal/netlist"
	"orap/internal/sat"
)

// Instance is one CNF copy of a circuit inside a solver: the variable
// assigned to every netlist node.
type Instance struct {
	// NodeVar maps node ID to its SAT variable.
	NodeVar []sat.Var
	// PIVars, KeyVars and POVars are the variables of the circuit's
	// primary inputs, key inputs and primary outputs, in declaration
	// order (they alias entries of NodeVar).
	PIVars  []sat.Var
	KeyVars []sat.Var
	POVars  []sat.Var
}

// Options controls variable sharing between encoded copies.
type Options struct {
	// PIVars, when non-nil, reuses these variables for the primary
	// inputs instead of allocating fresh ones (for input sharing between
	// miter halves). Length must equal the circuit's PI count.
	PIVars []sat.Var
	// KeyVars, when non-nil, reuses these variables for the key inputs.
	KeyVars []sat.Var
	// FixedPIs, when non-nil, constrains the primary inputs to the given
	// constant bits with unit clauses. Length must equal the PI count.
	// May be combined with PIVars (the shared variables get the units).
	FixedPIs []bool
}

// Encode adds one Tseitin copy of c to the solver and returns the variable
// mapping.
func Encode(s *sat.Solver, c *netlist.Circuit, opts Options) (*Instance, error) {
	if opts.PIVars != nil && len(opts.PIVars) != c.NumInputs() {
		return nil, fmt.Errorf("cnf: %d shared PI vars for %d inputs", len(opts.PIVars), c.NumInputs())
	}
	if opts.KeyVars != nil && len(opts.KeyVars) != c.NumKeys() {
		return nil, fmt.Errorf("cnf: %d shared key vars for %d key inputs", len(opts.KeyVars), c.NumKeys())
	}
	if opts.FixedPIs != nil && len(opts.FixedPIs) != c.NumInputs() {
		return nil, fmt.Errorf("cnf: %d fixed PI bits for %d inputs", len(opts.FixedPIs), c.NumInputs())
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}

	inst := &Instance{NodeVar: make([]sat.Var, c.NumNodes())}
	for i := range inst.NodeVar {
		inst.NodeVar[i] = -1
	}
	// Assign input variables first (shared or fresh).
	for i, id := range c.PIs {
		if opts.PIVars != nil {
			inst.NodeVar[id] = opts.PIVars[i]
		} else {
			inst.NodeVar[id] = s.NewVar()
		}
	}
	for i, id := range c.Keys {
		if opts.KeyVars != nil {
			inst.NodeVar[id] = opts.KeyVars[i]
		} else {
			inst.NodeVar[id] = s.NewVar()
		}
	}

	for _, id := range order {
		g := &c.Gates[id]
		if g.Type == netlist.Input {
			if inst.NodeVar[id] < 0 {
				return nil, fmt.Errorf("cnf: input node %d not in PI/key lists", id)
			}
			continue
		}
		v := s.NewVar()
		inst.NodeVar[id] = v
		fan := make([]sat.Lit, len(g.Fanin))
		for i, f := range g.Fanin {
			fan[i] = sat.MkLit(inst.NodeVar[f], false)
		}
		if err := encodeGate(s, g.Type, sat.MkLit(v, false), fan); err != nil {
			return nil, fmt.Errorf("cnf: node %d: %w", id, err)
		}
	}

	inst.PIVars = make([]sat.Var, len(c.PIs))
	for i, id := range c.PIs {
		inst.PIVars[i] = inst.NodeVar[id]
	}
	inst.KeyVars = make([]sat.Var, len(c.Keys))
	for i, id := range c.Keys {
		inst.KeyVars[i] = inst.NodeVar[id]
	}
	inst.POVars = make([]sat.Var, len(c.POs))
	for i, id := range c.POs {
		inst.POVars[i] = inst.NodeVar[id]
	}

	if opts.FixedPIs != nil {
		for i, b := range opts.FixedPIs {
			s.AddClause(sat.MkLit(inst.PIVars[i], !b))
		}
	}
	return inst, nil
}

// encodeGate emits the Tseitin clauses for out ↔ type(fan...).
func encodeGate(s *sat.Solver, t netlist.GateType, out sat.Lit, fan []sat.Lit) error {
	switch t {
	case netlist.Const0:
		s.AddClause(out.Not())
	case netlist.Const1:
		s.AddClause(out)
	case netlist.Buf:
		equiv(s, out, fan[0])
	case netlist.Not:
		equiv(s, out, fan[0].Not())
	case netlist.And:
		andGate(s, out, fan)
	case netlist.Nand:
		andGate(s, out.Not(), fan)
	case netlist.Or:
		orGate(s, out, fan)
	case netlist.Nor:
		orGate(s, out.Not(), fan)
	case netlist.Xor:
		xorChain(s, out, fan)
	case netlist.Xnor:
		xorChain(s, out.Not(), fan)
	default:
		return fmt.Errorf("unsupported gate type %v", t)
	}
	return nil
}

// equiv emits out ↔ a.
func equiv(s *sat.Solver, out, a sat.Lit) {
	s.AddClause(out.Not(), a)
	s.AddClause(out, a.Not())
}

// andGate emits out ↔ AND(fan...).
func andGate(s *sat.Solver, out sat.Lit, fan []sat.Lit) {
	all := make([]sat.Lit, 0, len(fan)+1)
	for _, f := range fan {
		s.AddClause(out.Not(), f) // out → f
		all = append(all, f.Not())
	}
	all = append(all, out)
	s.AddClause(all...) // ∧f → out
}

// orGate emits out ↔ OR(fan...).
func orGate(s *sat.Solver, out sat.Lit, fan []sat.Lit) {
	all := make([]sat.Lit, 0, len(fan)+1)
	for _, f := range fan {
		s.AddClause(out, f.Not()) // f → out
		all = append(all, f)
	}
	all = append(all, out.Not())
	s.AddClause(all...) // out → ∨f
}

// xor2 emits out ↔ a ⊕ b.
func xor2(s *sat.Solver, out, a, b sat.Lit) {
	s.AddClause(out.Not(), a, b)
	s.AddClause(out.Not(), a.Not(), b.Not())
	s.AddClause(out, a.Not(), b)
	s.AddClause(out, a, b.Not())
}

// xorChain emits out ↔ fan[0] ⊕ fan[1] ⊕ … using auxiliary variables for
// arity above two.
func xorChain(s *sat.Solver, out sat.Lit, fan []sat.Lit) {
	acc := fan[0]
	for i := 1; i < len(fan); i++ {
		var dst sat.Lit
		if i == len(fan)-1 {
			dst = out
		} else {
			dst = sat.MkLit(s.NewVar(), false)
		}
		xor2(s, dst, acc, fan[i])
		acc = dst
	}
	if len(fan) == 1 {
		equiv(s, out, fan[0])
	}
}

// ConstrainBits adds unit clauses forcing each variable to the given bit.
func ConstrainBits(s *sat.Solver, vars []sat.Var, bits []bool) error {
	if len(vars) != len(bits) {
		return fmt.Errorf("cnf: %d vars vs %d bits", len(vars), len(bits))
	}
	for i, v := range vars {
		s.AddClause(sat.MkLit(v, !bits[i]))
	}
	return nil
}

// Miter is the SAT-attack formulation: two copies of a locked circuit that
// share primary inputs but have independent keys K1 and K2, with a
// constraint that at least one output differs.
type Miter struct {
	S       *sat.Solver
	Circuit *netlist.Circuit
	PIVars  []sat.Var
	Key1    []sat.Var
	Key2    []sat.Var
	Out1    []sat.Var
	Out2    []sat.Var
	// Act is an activation variable guarding the output-disequality
	// clause: solve under assumption Act=true to search for a
	// distinguishing input, and under Act=false to extract a key that is
	// merely consistent with all recorded observations.
	Act sat.Var
}

// AssumeDiff returns the assumption literal enabling the disequality.
func (m *Miter) AssumeDiff() sat.Lit { return sat.MkLit(m.Act, false) }

// AssumeNoDiff returns the assumption literal disabling the disequality,
// used for final key extraction.
func (m *Miter) AssumeNoDiff() sat.Lit { return sat.MkLit(m.Act, true) }

// NewMiter encodes the miter for the locked circuit c into a fresh
// configuration on solver s and asserts output disequality.
func NewMiter(s *sat.Solver, c *netlist.Circuit) (*Miter, error) {
	if c.NumKeys() == 0 {
		return nil, fmt.Errorf("cnf: miter over circuit %q with no key inputs", c.Name)
	}
	a, err := Encode(s, c, Options{})
	if err != nil {
		return nil, err
	}
	b, err := Encode(s, c, Options{PIVars: a.PIVars})
	if err != nil {
		return nil, err
	}
	m := &Miter{
		S:       s,
		Circuit: c,
		PIVars:  a.PIVars,
		Key1:    a.KeyVars,
		Key2:    b.KeyVars,
		Out1:    a.POVars,
		Out2:    b.POVars,
	}
	// diff_i ↔ out1_i ⊕ out2_i; assert act → OR(diff_i).
	m.Act = s.NewVar()
	diffs := make([]sat.Lit, 0, len(a.POVars)+1)
	diffs = append(diffs, sat.MkLit(m.Act, true))
	for i := range a.POVars {
		d := sat.MkLit(s.NewVar(), false)
		xor2(s, d, sat.MkLit(a.POVars[i], false), sat.MkLit(b.POVars[i], false))
		diffs = append(diffs, d)
	}
	s.AddClause(diffs...)
	return m, nil
}

// AddIOConstraint records an oracle observation: for input pattern x with
// oracle response y, both key copies must reproduce y on x. Two fresh
// circuit copies (with constant inputs) are encoded per call.
func (m *Miter) AddIOConstraint(x, y []bool) error {
	for _, keys := range [][]sat.Var{m.Key1, m.Key2} {
		inst, err := Encode(m.S, m.Circuit, Options{KeyVars: keys, FixedPIs: x})
		if err != nil {
			return err
		}
		if err := ConstrainBits(m.S, inst.POVars, y); err != nil {
			return err
		}
	}
	return nil
}

// ExtractInputs reads the shared primary-input pattern from the last model.
func (m *Miter) ExtractInputs() []bool {
	x := make([]bool, len(m.PIVars))
	for i, v := range m.PIVars {
		x[i] = m.S.Value(v) == sat.True
	}
	return x
}

// ExtractKey1 reads key copy 1 from the last model.
func (m *Miter) ExtractKey1() []bool { return extract(m.S, m.Key1) }

// ExtractKey2 reads key copy 2 from the last model.
func (m *Miter) ExtractKey2() []bool { return extract(m.S, m.Key2) }

func extract(s *sat.Solver, vars []sat.Var) []bool {
	out := make([]bool, len(vars))
	for i, v := range vars {
		out[i] = s.Value(v) == sat.True
	}
	return out
}
