package cnf

import (
	"testing"

	"orap/internal/benchgen"
	"orap/internal/circuits"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/rng"
	"orap/internal/sat"
	"orap/internal/sim"
)

// solveWithInputs fixes the PI variables to a pattern and reads back the
// outputs from the model, cross-checking the encoding against simulation.
func solveWithInputs(t *testing.T, c *netlist.Circuit, pattern []bool) []bool {
	t.Helper()
	s := sat.New()
	inst, err := Encode(s, c, Options{FixedPIs: pattern})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Solve()
	if err != nil || !ok {
		t.Fatalf("Solve = %v, %v", ok, err)
	}
	out := make([]bool, len(inst.POVars))
	for i, v := range inst.POVars {
		out[i] = s.Value(v) == sat.True
	}
	return out
}

func TestEncodeMatchesSimulationC17(t *testing.T) {
	c := circuits.C17()
	for v := 0; v < 32; v++ {
		in := make([]bool, 5)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		want, err := sim.Eval(c, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := solveWithInputs(t, c, in)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("input %05b output %d: CNF %v, sim %v", v, j, got[j], want[j])
			}
		}
	}
}

func TestEncodeMatchesSimulationAllGateTypes(t *testing.T) {
	c := netlist.New("allgates")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	d, _ := c.AddInput("d")
	one, _ := c.AddConst(true, "one")
	zero, _ := c.AddConst(false, "zero")
	nodes := []int{
		c.MustAddGate(netlist.And, "and", a, b, d),
		c.MustAddGate(netlist.Nand, "nand", a, b, d),
		c.MustAddGate(netlist.Or, "or", a, b, d),
		c.MustAddGate(netlist.Nor, "nor", a, b, d),
		c.MustAddGate(netlist.Xor, "xor", a, b, d),
		c.MustAddGate(netlist.Xnor, "xnor", a, b, d),
		c.MustAddGate(netlist.Not, "not", a),
		c.MustAddGate(netlist.Buf, "buf", b),
		c.MustAddGate(netlist.And, "withconst", one, a),
		c.MustAddGate(netlist.Or, "withzero", zero, b),
	}
	for _, n := range nodes {
		c.MarkOutput(n)
	}
	for v := 0; v < 8; v++ {
		in := []bool{v&1 == 1, v>>1&1 == 1, v>>2&1 == 1}
		want, err := sim.Eval(c, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := solveWithInputs(t, c, in)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("input %03b output %d (%s): CNF %v, sim %v", v, j, c.NameOf(c.POs[j]), got[j], want[j])
			}
		}
	}
}

func TestEncodeSharedVariables(t *testing.T) {
	c := circuits.C17()
	s := sat.New()
	a, err := Encode(s, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(s, c, Options{PIVars: a.PIVars})
	if err != nil {
		t.Fatal(err)
	}
	// Same inputs → outputs must always match: disequality is UNSAT.
	diffs := make([]sat.Lit, 0, 2)
	for i := range a.POVars {
		d := sat.MkLit(s.NewVar(), false)
		EmitXor2(s, d, sat.MkLit(a.POVars[i], false), sat.MkLit(b.POVars[i], false))
		diffs = append(diffs, d)
	}
	s.AddClause(diffs...)
	ok, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("two copies sharing inputs produced different outputs")
	}
}

func TestEncodeOptionValidation(t *testing.T) {
	c := circuits.C17()
	s := sat.New()
	if _, err := Encode(s, c, Options{PIVars: make([]sat.Var, 2)}); err == nil {
		t.Error("wrong PIVars width accepted")
	}
	if _, err := Encode(s, c, Options{FixedPIs: make([]bool, 2)}); err == nil {
		t.Error("wrong FixedPIs width accepted")
	}
	if _, err := Encode(s, c, Options{KeyVars: make([]sat.Var, 1)}); err == nil {
		t.Error("wrong KeyVars width accepted")
	}
}

func TestMiterRequiresKeys(t *testing.T) {
	s := sat.New()
	if _, err := NewMiter(s, circuits.C17()); err == nil {
		t.Fatal("miter over unkeyed circuit accepted")
	}
}

func TestMiterFindsDistinguishingInput(t *testing.T) {
	r := rng.New(1)
	l, err := lock.RandomXOR(circuits.C17(), 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s := sat.New()
	m, err := NewMiter(s, l.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Solve(m.AssumeDiff())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no DIP found for a randomly locked c17")
	}
	// The model must truly be a DIP: simulate both extracted keys.
	x := m.ExtractInputs()
	k1 := m.ExtractKey1()
	k2 := m.ExtractKey2()
	o1, _ := sim.Eval(l.Circuit, x, k1)
	o2, _ := sim.Eval(l.Circuit, x, k2)
	same := true
	for i := range o1 {
		if o1[i] != o2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("extracted DIP does not distinguish the extracted keys")
	}
}

func TestMiterIOConstraintNarrowsKeys(t *testing.T) {
	r := rng.New(2)
	orig := circuits.C17()
	l, err := lock.RandomXOR(orig, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s := sat.New()
	m, err := NewMiter(s, l.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	// Feed every input pattern's correct response; afterwards the miter
	// must be UNSAT and key extraction must yield a correct key.
	for v := 0; v < 32; v++ {
		x := make([]bool, 5)
		for i := range x {
			x[i] = v>>uint(i)&1 == 1
		}
		y, err := sim.Eval(orig, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddIOConstraint(x, y); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := s.Solve(m.AssumeDiff())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("DIP still exists after constraining all 32 patterns")
	}
	ok, err = s.Solve(m.AssumeNoDiff())
	if err != nil || !ok {
		t.Fatalf("key extraction Solve = %v, %v", ok, err)
	}
	key := m.ExtractKey1()
	for v := 0; v < 32; v++ {
		x := make([]bool, 5)
		for i := range x {
			x[i] = v>>uint(i)&1 == 1
		}
		want, _ := sim.Eval(orig, x, nil)
		got, _ := sim.Eval(l.Circuit, x, key)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("extracted key wrong on input %05b", v)
			}
		}
	}
}

func TestConstrainBitsLengthChecked(t *testing.T) {
	s := sat.New()
	v := s.NewVar()
	if err := ConstrainBits(s, []sat.Var{v}, []bool{true, false}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestEncodeMatchesSimulationRandomCircuits(t *testing.T) {
	// Cross-check the Tseitin encoding against the simulator on generated
	// random-logic circuits: for random input patterns, fixing the PIs in
	// CNF must force exactly the simulated outputs.
	r := rng.New(77)
	for trial := 0; trial < 5; trial++ {
		prof, err := benchgen.ProfileByName("b20")
		if err != nil {
			t.Fatal(err)
		}
		c, err := benchgen.Generate(prof.Scale(0.002), uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		in := make([]bool, c.NumInputs())
		for pat := 0; pat < 4; pat++ {
			r.Bits(in)
			want, err := sim.Eval(c, in, nil)
			if err != nil {
				t.Fatal(err)
			}
			s := sat.New()
			inst, err := Encode(s, c, Options{FixedPIs: in})
			if err != nil {
				t.Fatal(err)
			}
			ok, err := s.Solve()
			if err != nil || !ok {
				t.Fatalf("trial %d pattern %d: Solve = %v, %v", trial, pat, ok, err)
			}
			for j, v := range inst.POVars {
				if (s.Value(v) == sat.True) != want[j] {
					t.Fatalf("trial %d pattern %d output %d: CNF disagrees with simulation", trial, pat, j)
				}
			}
		}
	}
}

func BenchmarkEncodeB20Slice(b *testing.B) {
	prof, _ := benchgen.ProfileByName("b20")
	c, err := benchgen.Generate(prof.Scale(0.05), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sat.New()
		if _, err := Encode(s, c, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
