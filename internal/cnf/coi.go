package cnf

import (
	"fmt"

	"orap/internal/ir"
	"orap/internal/netlist"
	"orap/internal/sat"
)

// coiInfo captures the key-dependence structure of a compiled program for
// cone-of-influence miter encoding: which nodes can depend on the key
// (cone), which nodes feed a key-reachable output at all (needed), and
// which primary outputs are key-reachable (keyPOIdx).
type coiInfo struct {
	// cone marks nodes in the transitive fanout of any key input.
	cone []bool
	// needed marks nodes in the transitive fanin of the key-reachable
	// outputs; nodes outside it are irrelevant to every miter query.
	needed []bool
	// keyPOIdx lists the indices (into Prog.POs) of the key-reachable
	// primary outputs, in declaration order.
	keyPOIdx []int
}

func newCOIInfo(prog *ir.Program) *coiInfo {
	keys := make([]int, len(prog.Keys))
	for i, id := range prog.Keys {
		keys[i] = int(id)
	}
	info := &coiInfo{cone: prog.TransitiveFanout(keys...)}
	var keyPOs []int
	for i, id := range prog.POs {
		if info.cone[id] {
			info.keyPOIdx = append(info.keyPOIdx, i)
			keyPOs = append(keyPOs, int(id))
		}
	}
	if len(keyPOs) == 0 {
		info.needed = make([]bool, prog.NumNodes())
	} else {
		info.needed = prog.TransitiveFanin(keyPOs...)
	}
	return info
}

// NewMiter compiles the locked circuit c once and encodes the SAT-attack
// miter using cone-of-influence reduction: only gates in the transitive
// fanout of the key inputs are duplicated per key copy, the shared fan-in
// logic is encoded once and reused by both copies, and the output
// disequality ranges over the key-reachable outputs only (outputs the key
// cannot influence are equal by construction). The resulting formula is
// equisatisfiable with the full two-copy miter on every attack query but
// substantially smaller whenever the key logic touches a fraction of the
// circuit. Use NewMiterLegacy for formulations that need both full copies
// (e.g. the bypass attack's full-pattern enumeration).
func NewMiter(s *sat.Solver, c *netlist.Circuit) (*Miter, error) {
	if c.NumKeys() == 0 {
		return nil, fmt.Errorf("cnf: miter over circuit %q with no key inputs", c.Name)
	}
	prog, err := ir.Compile(c)
	if err != nil {
		return nil, err
	}
	m := &Miter{
		S:         s,
		Circuit:   c,
		Prog:      prog,
		coi:       newCOIInfo(prog),
		constTrue: -1,
	}
	// Primary inputs keep their full width — inputs outside the needed
	// support stay unconstrained, which is sound: no encoded gate reads
	// them, so any model value is as good as any other for DIP extraction.
	m.PIVars = make([]sat.Var, prog.NumInputs())
	for i := range m.PIVars {
		m.PIVars[i] = s.NewVar()
	}
	m.Key1 = make([]sat.Var, prog.NumKeys())
	m.Key2 = make([]sat.Var, prog.NumKeys())
	for i := range m.Key1 {
		m.Key1[i] = s.NewVar()
	}
	for i := range m.Key2 {
		m.Key2[i] = s.NewVar()
	}
	if err := m.encodeShared(); err != nil {
		return nil, err
	}
	if err := m.addConePair(m); err != nil {
		return nil, err
	}
	return m, nil
}

// NewMiterShared encodes a second miter over base's circuit that reuses
// base's primary-input variables and shared fan-in encoding, adding only
// two more key-cone copies with fresh key variables and its own activation
// variable. This is the multi-miter formulation Double DIP uses; base must
// be a cone-of-influence miter (from NewMiter).
func NewMiterShared(s *sat.Solver, base *Miter) (*Miter, error) {
	if base.coi == nil {
		return nil, fmt.Errorf("cnf: NewMiterShared requires a cone-of-influence miter")
	}
	if s != base.S {
		return nil, fmt.Errorf("cnf: NewMiterShared must target the base miter's solver")
	}
	m := &Miter{
		S:         s,
		Circuit:   base.Circuit,
		Prog:      base.Prog,
		coi:       base.coi,
		sharedVar: base.sharedVar,
		constTrue: -1,
		PIVars:    base.PIVars,
	}
	m.Key1 = make([]sat.Var, base.Prog.NumKeys())
	m.Key2 = make([]sat.Var, base.Prog.NumKeys())
	for i := range m.Key1 {
		m.Key1[i] = s.NewVar()
	}
	for i := range m.Key2 {
		m.Key2[i] = s.NewVar()
	}
	if err := m.addConePair(base); err != nil {
		return nil, err
	}
	return m, nil
}

// encodeShared emits the key-independent support logic once: every needed
// node outside the key cone gets a single variable reused by all copies.
func (m *Miter) encodeShared() error {
	prog, info := m.Prog, m.coi
	m.sharedVar = make([]sat.Var, prog.NumNodes())
	for i := range m.sharedVar {
		m.sharedVar[i] = -1
	}
	for i, id := range prog.PIs {
		m.sharedVar[id] = m.PIVars[i]
	}
	var fan []sat.Lit
	for _, id32 := range prog.Order {
		id := int(id32)
		if !info.needed[id] || info.cone[id] || prog.Ops[id] == ir.OpInput {
			continue
		}
		v := m.S.NewVar()
		m.sharedVar[id] = v
		fan = fan[:0]
		for _, f := range prog.FaninSpan(id) {
			// Fanin closure puts every fanin of a needed non-cone node in
			// the shared set (the cone is fanout-closed).
			fan = append(fan, sat.MkLit(m.sharedVar[f], false))
		}
		if err := EmitGate(m.S, prog.Ops[id], sat.MkLit(v, false), fan); err != nil {
			return fmt.Errorf("cnf: shared node %d: %w", id, err)
		}
	}
	return nil
}

// encodeCone emits one copy of the needed key-cone gates, with shared
// fanins resolved through shared (a per-node variable map) and key inputs
// bound to keyVars. It returns the variables of the key-reachable outputs,
// in keyPOIdx order.
func (m *Miter) encodeCone(keyVars []sat.Var, shared []sat.Var) ([]sat.Var, error) {
	prog, info := m.Prog, m.coi
	copyVar := make([]sat.Var, prog.NumNodes())
	for i := range copyVar {
		copyVar[i] = -1
	}
	for i, id := range prog.Keys {
		copyVar[id] = keyVars[i]
	}
	var fan []sat.Lit
	for _, id32 := range prog.Order {
		id := int(id32)
		if !info.needed[id] || !info.cone[id] || prog.Ops[id] == ir.OpInput {
			continue
		}
		v := m.S.NewVar()
		copyVar[id] = v
		fan = fan[:0]
		for _, f := range prog.FaninSpan(id) {
			if info.cone[f] {
				fan = append(fan, sat.MkLit(copyVar[f], false))
			} else {
				fan = append(fan, sat.MkLit(shared[f], false))
			}
		}
		if err := EmitGate(m.S, prog.Ops[id], sat.MkLit(v, false), fan); err != nil {
			return nil, fmt.Errorf("cnf: cone node %d: %w", id, err)
		}
	}
	outs := make([]sat.Var, len(info.keyPOIdx))
	for i, poi := range info.keyPOIdx {
		outs[i] = copyVar[prog.POs[poi]]
	}
	return outs, nil
}

// addConePair encodes the two key-cone copies of m (reading shared logic
// from src, which is m itself for a base miter and the base for a shared
// one), fills Out1/Out2 and asserts the activation-guarded disequality
// over the key-reachable outputs.
func (m *Miter) addConePair(src *Miter) error {
	prog, info := m.Prog, m.coi
	o1, err := m.encodeCone(m.Key1, src.sharedVar)
	if err != nil {
		return err
	}
	o2, err := m.encodeCone(m.Key2, src.sharedVar)
	if err != nil {
		return err
	}
	// Out1/Out2 keep full PO width: key-reachable outputs carry their
	// per-copy variables, key-independent outputs share the single support
	// variable when one was encoded and are -1 otherwise.
	m.Out1 = make([]sat.Var, prog.NumOutputs())
	m.Out2 = make([]sat.Var, prog.NumOutputs())
	for i, id := range prog.POs {
		m.Out1[i] = src.sharedVar[id]
		m.Out2[i] = src.sharedVar[id]
	}
	for i, poi := range info.keyPOIdx {
		m.Out1[poi] = o1[i]
		m.Out2[poi] = o2[i]
	}
	m.Act = m.S.NewVar()
	diffs := make([]sat.Lit, 0, len(o1)+1)
	diffs = append(diffs, sat.MkLit(m.Act, true))
	for i := range o1 {
		d := sat.MkLit(m.S.NewVar(), false)
		EmitXor2(m.S, d, sat.MkLit(o1[i], false), sat.MkLit(o2[i], false))
		diffs = append(diffs, d)
	}
	// With no key-reachable output this collapses to a unit ¬Act: no input
	// can distinguish any two keys, so AssumeDiff is immediately
	// unsatisfiable — the same verdict the full miter reaches by search.
	m.S.AddClause(diffs...)
	return nil
}

// addIOConstraintCOI records an oracle observation on a cone-of-influence
// miter. The key-independent logic is not re-encoded: one concrete
// evaluation of the program under x fixes every shared node, the two
// per-key cone copies are emitted with those constants folded in, and only
// the key-reachable outputs are constrained to the oracle response. A
// response bit that contradicts the circuit on a key-independent output
// makes the formula unsatisfiable, exactly as the full encoding's unit
// clauses would.
func (m *Miter) addIOConstraintCOI(x, y []bool) error {
	prog, info := m.Prog, m.coi
	if len(x) != prog.NumInputs() {
		return fmt.Errorf("cnf: %d input bits for %d inputs", len(x), prog.NumInputs())
	}
	if len(y) != prog.NumOutputs() {
		return fmt.Errorf("cnf: %d output bits for %d outputs", len(y), prog.NumOutputs())
	}
	if m.evalBuf == nil {
		m.evalBuf = make([]bool, prog.NumNodes())
	}
	vals := m.evalBuf
	for i, id := range prog.PIs {
		vals[id] = x[i]
	}
	// Key values are irrelevant to nodes outside the cone; zero them so
	// the evaluation is well-defined.
	for _, id := range prog.Keys {
		vals[id] = false
	}
	prog.RunBools(vals)
	for i, id := range prog.POs {
		if !info.cone[id] && vals[id] != y[i] {
			// The observation contradicts the key-independent logic: no key
			// can explain it. Mark the formula unsatisfiable.
			m.S.AddClause()
			return nil
		}
	}
	if m.constTrue < 0 {
		m.constTrue = m.S.NewVar()
		m.S.AddClause(sat.MkLit(m.constTrue, false))
	}
	for _, keys := range [][]sat.Var{m.Key1, m.Key2} {
		if err := m.addConeQuery(keys, vals, y); err != nil {
			return err
		}
	}
	return nil
}

// addConeQuery emits one per-query cone copy under the given key
// variables, folding the concrete shared-node values in as literals of the
// constant-true variable, and pins the key-reachable outputs to y.
func (m *Miter) addConeQuery(keyVars []sat.Var, vals []bool, y []bool) error {
	prog, info := m.Prog, m.coi
	copyVar := make([]sat.Var, prog.NumNodes())
	for i := range copyVar {
		copyVar[i] = -1
	}
	for i, id := range prog.Keys {
		copyVar[id] = keyVars[i]
	}
	var fan []sat.Lit
	for _, id32 := range prog.Order {
		id := int(id32)
		if !info.needed[id] || !info.cone[id] || prog.Ops[id] == ir.OpInput {
			continue
		}
		v := m.S.NewVar()
		copyVar[id] = v
		fan = fan[:0]
		for _, f := range prog.FaninSpan(id) {
			if info.cone[f] {
				fan = append(fan, sat.MkLit(copyVar[f], false))
			} else {
				// Constant fold: the solver's level-0 clause simplification
				// drops false literals and discards satisfied clauses.
				fan = append(fan, sat.MkLit(m.constTrue, !vals[f]))
			}
		}
		if err := EmitGate(m.S, prog.Ops[id], sat.MkLit(v, false), fan); err != nil {
			return fmt.Errorf("cnf: query cone node %d: %w", id, err)
		}
	}
	for _, poi := range info.keyPOIdx {
		v := copyVar[prog.POs[poi]]
		m.S.AddClause(sat.MkLit(v, !y[poi]))
	}
	return nil
}
