package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS emits the solver's problem clauses (not learned clauses) in
// DIMACS CNF format, including the level-0 unit facts. Variables are
// numbered 1-based as DIMACS requires.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	nclauses := len(s.clauses)
	// Level-0 assignments become unit clauses.
	var units []Lit
	for _, l := range s.trail {
		if s.level[l.Var()] == 0 {
			units = append(units, l)
		}
	}
	nclauses += len(units)
	if !s.ok {
		nclauses++ // the empty clause
	}
	fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), nclauses)
	emit := func(lits []Lit) {
		for _, l := range lits {
			v := int(l.Var()) + 1
			if l.Neg() {
				v = -v
			}
			fmt.Fprintf(bw, "%d ", v)
		}
		fmt.Fprintln(bw, "0")
	}
	for _, u := range units {
		emit([]Lit{u})
	}
	for _, c := range s.clauses {
		emit(c.lits)
	}
	if !s.ok {
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}

// ParseDIMACS reads a DIMACS CNF problem into a fresh solver. Comment
// lines ("c …") and the problem line ("p cnf V C") are handled; variables
// beyond the declared count are allocated on demand.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var clause []Lit
	lineno := 0
	ensure := func(v int) Var {
		for s.NumVars() < v {
			s.NewVar()
		}
		return Var(v - 1)
	}
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: dimacs:%d: malformed problem line %q", lineno, line)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv < 0 {
				return nil, fmt.Errorf("sat: dimacs:%d: bad variable count", lineno)
			}
			ensure(nv)
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: dimacs:%d: bad literal %q", lineno, tok)
			}
			if n == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			v := n
			if v < 0 {
				v = -v
			}
			clause = append(clause, MkLit(ensure(v), n < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sat: dimacs read: %w", err)
	}
	if len(clause) != 0 {
		return nil, fmt.Errorf("sat: dimacs: trailing clause without terminating 0")
	}
	return s, nil
}
