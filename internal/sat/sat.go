// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat/Glucose lineage: two-literal watching with
// blocking literals, a specialized binary-clause watch representation,
// first-UIP conflict analysis with on-the-fly clause minimization, VSIDS
// variable activity, phase saving, Luby restarts and LBD-tiered
// learned-clause reduction.
//
// It is the engine behind the oracle-guided SAT attack of Subramanyan et
// al. that the OraP paper defends against, and the solver is deliberately
// self-contained (stdlib only) so the whole attack stack reproduces
// offline. The solver is fully deterministic: the same clause/assumption
// sequence produces the same models, conflicts and Stats on every run.
package sat

import "fmt"

// Var is a 0-based propositional variable index.
type Var int32

// Lit is a literal: variable times two, plus one when negated.
type Lit int32

// MkLit builds a literal from a variable and a sign (neg=true ⇒ ¬v).
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as v<n> or ¬v<n>.
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("~v%d", l.Var())
	}
	return fmt.Sprintf("v%d", l.Var())
}

// LBool is a three-valued boolean.
type LBool int8

// The three truth values.
const (
	False LBool = -1
	Undef LBool = 0
	True  LBool = 1
)

func boolToLBool(b bool) LBool {
	if b {
		return True
	}
	return False
}

// Not returns the logical complement (Undef maps to itself).
func (b LBool) Not() LBool { return -b }

type clause struct {
	lits     []Lit
	activity float64
	lbd      int32
	learnt   bool
}

// watcher is the long-clause (≥3 literals) watch entry. The blocking
// literal lets propagation skip the clause without touching its memory
// whenever the blocker is already satisfied.
type watcher struct {
	c       *clause
	blocker Lit
}

// binWatch is the specialized binary-clause watch entry: when the watched
// literal is falsified the only possible consequence is `other`, so
// binary propagation reads nothing but the watcher itself. The clause
// pointer is carried only as the reason for conflict analysis.
type binWatch struct {
	other Lit
	c     *clause
}

// glueLBD is the LBD at or below which a learned clause is "glue":
// reduceDB never evicts it (Glucose's core tier).
const glueLBD = 2

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses    []*clause
	learnts    []*clause
	watches    [][]watcher  // indexed by Lit; long clauses only
	binWatches [][]binWatch // indexed by Lit; binary clauses only

	assigns  []LBool // per var
	level    []int32
	reason   []*clause
	polarity []bool // saved phase per var
	activity []float64
	varInc   float64

	heap     varHeap
	trail    []Lit
	trailLim []int
	qhead    int

	seen       []bool
	analyzeBuf []Lit
	levelMark  []int64 // per decision level, stamped by computeLBD
	lbdStamp   int64

	ok    bool
	model []LBool

	// MaxConflicts, when positive, bounds the total conflicts across the
	// solver's lifetime; Solve returns ErrBudget once exceeded.
	MaxConflicts int64

	stats Stats
}

// ErrBudget is returned by Solve when MaxConflicts is exhausted.
var ErrBudget = fmt.Errorf("sat: conflict budget exhausted")

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, ok: true, levelMark: make([]int64, 1)}
	s.heap.s = s
	return s
}

// Stats returns a copy of the solver counters.
func (s *Solver) Stats() Stats { return s.stats }

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, Undef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.polarity = append(s.polarity, true) // default phase: false (neg lit)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.binWatches = append(s.binWatches, nil, nil)
	s.levelMark = append(s.levelMark, 0)
	s.heap.insert(v)
	return v
}

func (s *Solver) valueLit(l Lit) LBool {
	v := s.assigns[l.Var()]
	if l.Neg() {
		return v.Not()
	}
	return v
}

// Value returns the value of v in the most recent satisfying model.
func (s *Solver) Value(v Var) LBool {
	if int(v) < len(s.model) {
		return s.model[v]
	}
	return Undef
}

// ValueLit returns the value of literal l in the most recent model.
func (s *Solver) ValueLit(l Lit) LBool {
	v := s.Value(l.Var())
	if l.Neg() {
		return v.Not()
	}
	return v
}

// AddClause adds a clause over the given literals. It returns false if the
// solver is already in an unsatisfiable state (e.g. after adding an empty
// or immediately conflicting clause).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.trailLim) != 0 {
		panic("sat: AddClause called during search")
	}
	// Normalize: sort-unique, drop false lits, detect tautology.
	norm := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if int(l.Var()) >= s.NumVars() {
			panic(fmt.Sprintf("sat: clause uses unallocated variable %d", l.Var()))
		}
		switch s.valueLit(l) {
		case True:
			return true // satisfied at level 0
		case False:
			continue // drop
		}
		dup := false
		for _, e := range norm {
			if e == l {
				dup = true
				break
			}
			if e == l.Not() {
				return true // tautology
			}
		}
		if !dup {
			norm = append(norm, l)
		}
	}
	switch len(norm) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(norm[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	c := &clause{lits: norm}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	if len(c.lits) == 2 {
		s.binWatches[c.lits[0].Not()] = append(s.binWatches[c.lits[0].Not()], binWatch{c.lits[1], c})
		s.binWatches[c.lits[1].Not()] = append(s.binWatches[c.lits[1].Not()], binWatch{c.lits[0], c})
		return
	}
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, c.lits[0]})
}

func (s *Solver) detach(c *clause) {
	if len(c.lits) == 2 {
		for _, l := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
			ws := s.binWatches[l]
			for i := range ws {
				if ws[i].c == c {
					ws[i] = ws[len(ws)-1]
					s.binWatches[l] = ws[:len(ws)-1]
					break
				}
			}
		}
		return
	}
	for _, l := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[l]
		for i := range ws {
			if ws[i].c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[l] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assigns[v] = boolToLBool(!l.Neg())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation and returns the conflicting clause,
// or nil when no conflict arises.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		// Binary watchers first: the implied literal lives in the watch
		// entry, so this pass never dereferences clause memory.
		for _, w := range s.binWatches[p] {
			switch s.valueLit(w.other) {
			case False:
				s.qhead = len(s.trail)
				return w.c
			case Undef:
				s.stats.BinPropagations++
				s.uncheckedEnqueue(w.other, w.c)
			}
		}
		ws := s.watches[p]
		j := 0
		var confl *clause
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.valueLit(w.blocker) == True {
				ws[j] = w
				j++
				continue
			}
			c := w.c
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == True {
				ws[j] = watcher{c, first}
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != False {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{c, first}
			j++
			if s.valueLit(first) == False {
				confl = c
				// Copy remaining watchers and stop.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return confl
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:j]
	}
	return nil
}

func (s *Solver) varBump(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) varDecay() { s.varInc /= 0.95 }

func (s *Solver) claBump(c *clause) {
	c.activity++
}

// computeLBD returns the literal block distance of the clause: the number
// of distinct non-root decision levels among its literals (Glucose's
// quality measure — low-LBD clauses connect few decision blocks and stay
// useful across restarts).
func (s *Solver) computeLBD(lits []Lit) int32 {
	s.lbdStamp++
	var lbd int32
	for _, l := range lits {
		lv := s.level[l.Var()]
		if lv > 0 && s.levelMark[lv] != s.lbdStamp {
			s.levelMark[lv] = s.lbdStamp
			lbd++
		}
	}
	return lbd
}

// analyze performs first-UIP conflict analysis and returns the learned
// clause (with the asserting literal first), the backtrack level and the
// clause's LBD.
func (s *Solver) analyze(confl *clause) ([]Lit, int, int32) {
	learnt := s.analyzeBuf[:0]
	learnt = append(learnt, 0) // placeholder for asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		if confl.learnt {
			s.claBump(confl)
		}
		for _, q := range confl.lits {
			// Skip the asserted literal when walking a reason clause. The
			// positional skip of lits[0] is not valid for binary reasons
			// reached through binWatches, whose literal order is fixed at
			// attach time.
			if p != -1 && q.Var() == p.Var() {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.varBump(v)
				if int(s.level[v]) >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Pick next literal on the trail that is marked.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Not()
			break
		}
		confl = s.reason[v]
	}

	// On-the-fly clause minimization: drop literals implied by the rest.
	// Clear seen flags of dropped literals too, or later conflicts would
	// inherit stale marks.
	before := len(learnt)
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if s.redundant(l) {
			s.seen[l.Var()] = false
		} else {
			out = append(out, l)
		}
	}
	learnt = out
	s.stats.MinimizedLits += int64(before - len(learnt))

	// Backtrack level: second-highest decision level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	lbd := s.computeLBD(learnt)
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	s.analyzeBuf = learnt
	res := make([]Lit, len(learnt))
	copy(res, learnt)
	return res, btLevel, lbd
}

// redundant reports whether literal l in a learned clause is implied by a
// reason clause whose other literals are all already in the clause or at
// level 0 (one-step minimization).
func (s *Solver) redundant(l Lit) bool {
	r := s.reason[l.Var()]
	if r == nil {
		return false
	}
	for _, q := range r.lits {
		if q.Var() == l.Var() {
			continue
		}
		if s.level[q.Var()] != 0 && !s.seen[q.Var()] {
			return false
		}
	}
	return true
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assigns[v] == False // phase saving
		s.assigns[v] = Undef
		s.reason[v] = nil
		s.heap.insertMaybe(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchVar() Var {
	for !s.heap.empty() {
		v := s.heap.pop()
		if s.assigns[v] == Undef {
			return v
		}
	}
	return -1
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
func luby(i int64) int64 {
	x := i - 1
	size, seq := int64(1), uint(0)
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x %= size
	}
	return int64(1) << seq
}

// reduceDB evicts roughly half of the evictable learned clauses. The
// policy is LBD-tiered, Glucose-style: binary clauses, glue clauses
// (LBD ≤ 2) and clauses locked as reasons on the current trail are never
// evicted; the rest are ranked by LBD (ties broken toward keeping the
// more active clause) and the worse half is detached.
//
// Learned-clause sets smaller than four are left alone: median-selecting
// on a near-empty candidate slice is meaningless and the clauses are
// cheap to keep.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 4 {
		return
	}
	locked := func(c *clause) bool {
		v := c.lits[0].Var()
		return s.assigns[v] != Undef && s.reason[v] == c
	}
	evictable := func(c *clause) bool {
		return len(c.lits) > 2 && c.lbd > glueLBD && !locked(c)
	}
	// Composite rank: LBD dominates, clause activity breaks ties (higher
	// score = better eviction candidate). Activities are conflict counts,
	// far below the tier width, so tiers never interleave.
	score := func(c *clause) float64 {
		return float64(c.lbd)*1e12 - c.activity
	}
	scores := make([]float64, 0, len(s.learnts))
	for _, c := range s.learnts {
		if evictable(c) {
			scores = append(scores, score(c))
		}
	}
	if len(scores) < 4 {
		return
	}
	med := quickSelectMedian(scores)
	removed := 0
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if !evictable(c) || score(c) < med || removed*2 >= len(scores) {
			kept = append(kept, c)
		} else {
			s.detach(c)
			removed++
		}
	}
	s.learnts = kept
	if removed > 0 {
		s.stats.Reductions++
		s.stats.RemovedClauses += int64(removed)
	}
}

// quickSelectMedian returns the median element of a (by value, not
// position) without fully sorting it. Empty input returns 0.
func quickSelectMedian(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	b := append([]float64(nil), a...)
	k := len(b) / 2
	lo, hi := 0, len(b)-1
	for lo < hi {
		p := b[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for b[i] < p {
				i++
			}
			for b[j] > p {
				j--
			}
			if i <= j {
				b[i], b[j] = b[j], b[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return b[k]
}

// recordLearnt updates the learning counters for one learned clause.
func (s *Solver) recordLearnt(lits []Lit, lbd int32) {
	s.stats.Learnt++
	s.stats.LearntLits += int64(len(lits))
	s.stats.LBDSum += int64(lbd)
	bucket := int(lbd) - 1
	if bucket < 0 {
		bucket = 0
	}
	if bucket >= LBDBuckets {
		bucket = LBDBuckets - 1
	}
	s.stats.LBDHist[bucket]++
}

// Solve searches for a satisfying assignment under the given assumption
// literals. It returns (true, nil) when satisfiable (the model is then
// available via Value), (false, nil) when unsatisfiable under the
// assumptions, and (false, ErrBudget) if MaxConflicts was exceeded.
func (s *Solver) Solve(assumptions ...Lit) (bool, error) {
	if !s.ok {
		return false, nil
	}
	// Already-satisfied assumptions open empty pseudo-decision levels, so
	// the level count is bounded by numVars+len(assumptions), not numVars;
	// levelMark must cover the whole range for computeLBD.
	for len(s.levelMark) <= s.NumVars()+len(assumptions) {
		s.levelMark = append(s.levelMark, 0)
	}
	defer s.backtrackTo(0)

	restarts := int64(0)
	for {
		budget := 100 * luby(restarts+1)
		status, err := s.search(budget, assumptions)
		if err != nil {
			return false, err
		}
		if status != Undef {
			if status == True {
				s.model = append([]LBool(nil), s.assigns...)
				return true, nil
			}
			return false, nil
		}
		restarts++
		s.stats.Restarts++
		if s.MaxConflicts > 0 && s.stats.Conflicts >= s.MaxConflicts {
			return false, ErrBudget
		}
	}
}

// search runs CDCL until a result, a conflict budget is hit (Undef), or the
// assumption set is refuted.
func (s *Solver) search(budget int64, assumptions []Lit) (LBool, error) {
	conflicts := int64(0)
	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return False, nil
			}
			learnt, btLevel, lbd := s.analyze(confl)
			// Backtrack exactly to the asserting level. Assumption levels
			// may be retracted here; the decision loop below re-enqueues
			// them (learned clauses are global consequences, so this is
			// sound).
			s.backtrackTo(btLevel)
			s.recordLearnt(learnt, lbd)
			if len(learnt) == 1 {
				if s.valueLit(learnt[0]) == False {
					s.ok = false
					return False, nil
				}
				if s.valueLit(learnt[0]) == Undef {
					s.uncheckedEnqueue(learnt[0], nil)
				}
			} else {
				c := &clause{lits: learnt, learnt: true, activity: 1, lbd: lbd}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				if s.valueLit(learnt[0]) == Undef {
					s.uncheckedEnqueue(learnt[0], c)
				}
			}
			s.varDecay()
			if len(s.learnts) > 4000+len(s.clauses) {
				s.reduceDB()
			}
			continue
		}
		if conflicts >= budget {
			s.backtrackTo(0)
			return Undef, nil
		}
		if s.MaxConflicts > 0 && s.stats.Conflicts >= s.MaxConflicts {
			return Undef, ErrBudget
		}
		// Extend with assumptions first.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.valueLit(a) {
			case True:
				// Already satisfied: open an empty decision level so the
				// index keeps advancing.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case False:
				return False, nil
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.uncheckedEnqueue(a, nil)
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			return True, nil
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(MkLit(v, s.polarity[v]), nil)
	}
}

// varHeap is a max-heap of variables ordered by VSIDS activity.
type varHeap struct {
	s    *Solver
	heap []Var
	pos  []int32 // per var: index in heap, -1 when absent
}

func (h *varHeap) less(a, b Var) bool {
	return h.s.activity[a] > h.s.activity[b]
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) ensure(v Var) {
	for int(v) >= len(h.pos) {
		h.pos = append(h.pos, -1)
	}
}

func (h *varHeap) insert(v Var) {
	h.ensure(v)
	if h.pos[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = int32(len(h.heap) - 1)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) insertMaybe(v Var) { h.insert(v) }

func (h *varHeap) update(v Var) {
	h.ensure(v)
	if h.pos[v] >= 0 {
		h.up(int(h.pos[v]))
	}
}

func (h *varHeap) pop() Var {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last] = 0
		h.down(0)
	}
	return v
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.pos[h.heap[i]] = int32(i)
		i = p
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	for {
		l := 2*i + 1
		if l >= len(h.heap) {
			break
		}
		c := l
		if r := l + 1; r < len(h.heap) && h.less(h.heap[r], h.heap[l]) {
			c = r
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[i]] = int32(i)
		i = c
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}
