// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat lineage: two-literal watching, first-UIP conflict
// analysis, VSIDS variable activity, phase saving, Luby restarts and
// activity-based learned-clause reduction.
//
// It is the engine behind the oracle-guided SAT attack of Subramanyan et
// al. that the OraP paper defends against, and the solver is deliberately
// self-contained (stdlib only) so the whole attack stack reproduces
// offline.
package sat

import "fmt"

// Var is a 0-based propositional variable index.
type Var int32

// Lit is a literal: variable times two, plus one when negated.
type Lit int32

// MkLit builds a literal from a variable and a sign (neg=true ⇒ ¬v).
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as v<n> or ¬v<n>.
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("~v%d", l.Var())
	}
	return fmt.Sprintf("v%d", l.Var())
}

// LBool is a three-valued boolean.
type LBool int8

// The three truth values.
const (
	False LBool = -1
	Undef LBool = 0
	True  LBool = 1
)

func boolToLBool(b bool) LBool {
	if b {
		return True
	}
	return False
}

// Not returns the logical complement (Undef maps to itself).
func (b LBool) Not() LBool { return -b }

type clause struct {
	lits     []Lit
	activity float64
	learnt   bool
}

type watcher struct {
	c       *clause
	blocker Lit
}

// Stats carries solver counters, useful for the attack evaluations that
// report solver effort.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnt       int64
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by Lit

	assigns  []LBool // per var
	level    []int32
	reason   []*clause
	polarity []bool // saved phase per var
	activity []float64
	varInc   float64

	heap     varHeap
	trail    []Lit
	trailLim []int
	qhead    int

	seen       []bool
	analyzeBuf []Lit

	ok    bool
	model []LBool

	// MaxConflicts, when positive, bounds the total conflicts across the
	// solver's lifetime; Solve returns ErrBudget once exceeded.
	MaxConflicts int64

	stats Stats
}

// ErrBudget is returned by Solve when MaxConflicts is exhausted.
var ErrBudget = fmt.Errorf("sat: conflict budget exhausted")

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, ok: true}
	s.heap.s = s
	return s
}

// Stats returns a copy of the solver counters.
func (s *Solver) Stats() Stats { return s.stats }

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, Undef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.polarity = append(s.polarity, true) // default phase: false (neg lit)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(v)
	return v
}

func (s *Solver) valueLit(l Lit) LBool {
	v := s.assigns[l.Var()]
	if l.Neg() {
		return v.Not()
	}
	return v
}

// Value returns the value of v in the most recent satisfying model.
func (s *Solver) Value(v Var) LBool {
	if int(v) < len(s.model) {
		return s.model[v]
	}
	return Undef
}

// ValueLit returns the value of literal l in the most recent model.
func (s *Solver) ValueLit(l Lit) LBool {
	v := s.Value(l.Var())
	if l.Neg() {
		return v.Not()
	}
	return v
}

// AddClause adds a clause over the given literals. It returns false if the
// solver is already in an unsatisfiable state (e.g. after adding an empty
// or immediately conflicting clause).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.trailLim) != 0 {
		panic("sat: AddClause called during search")
	}
	// Normalize: sort-unique, drop false lits, detect tautology.
	norm := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if int(l.Var()) >= s.NumVars() {
			panic(fmt.Sprintf("sat: clause uses unallocated variable %d", l.Var()))
		}
		switch s.valueLit(l) {
		case True:
			return true // satisfied at level 0
		case False:
			continue // drop
		}
		dup := false
		for _, e := range norm {
			if e == l {
				dup = true
				break
			}
			if e == l.Not() {
				return true // tautology
			}
		}
		if !dup {
			norm = append(norm, l)
		}
	}
	switch len(norm) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(norm[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	c := &clause{lits: norm}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, c.lits[0]})
}

func (s *Solver) detach(c *clause) {
	for _, l := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[l]
		for i := range ws {
			if ws[i].c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[l] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assigns[v] = boolToLBool(!l.Neg())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation and returns the conflicting clause,
// or nil when no conflict arises.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		ws := s.watches[p]
		j := 0
		var confl *clause
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.valueLit(w.blocker) == True {
				ws[j] = w
				j++
				continue
			}
			c := w.c
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == True {
				ws[j] = watcher{c, first}
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != False {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{c, first}
			j++
			if s.valueLit(first) == False {
				confl = c
				// Copy remaining watchers and stop.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return confl
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:j]
	}
	return nil
}

func (s *Solver) varBump(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) varDecay() { s.varInc /= 0.95 }

func (s *Solver) claBump(c *clause) {
	c.activity++
}

// analyze performs first-UIP conflict analysis and returns the learned
// clause (with the asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := s.analyzeBuf[:0]
	learnt = append(learnt, 0) // placeholder for asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		if confl.learnt {
			s.claBump(confl)
		}
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.varBump(v)
				if int(s.level[v]) >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Pick next literal on the trail that is marked.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Not()
			break
		}
		confl = s.reason[v]
	}

	// Simple clause minimization: drop literals implied by the rest.
	// Clear seen flags of dropped literals too, or later conflicts would
	// inherit stale marks.
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if s.redundant(l) {
			s.seen[l.Var()] = false
		} else {
			out = append(out, l)
		}
	}
	learnt = out

	// Backtrack level: second-highest decision level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	s.analyzeBuf = learnt
	res := make([]Lit, len(learnt))
	copy(res, learnt)
	return res, btLevel
}

// redundant reports whether literal l in a learned clause is implied by a
// reason clause whose other literals are all already in the clause or at
// level 0 (one-step minimization).
func (s *Solver) redundant(l Lit) bool {
	r := s.reason[l.Var()]
	if r == nil {
		return false
	}
	for _, q := range r.lits {
		if q.Var() == l.Var() {
			continue
		}
		if s.level[q.Var()] != 0 && !s.seen[q.Var()] {
			return false
		}
	}
	return true
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assigns[v] == False
		s.assigns[v] = Undef
		s.reason[v] = nil
		s.heap.insertMaybe(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchVar() Var {
	for !s.heap.empty() {
		v := s.heap.pop()
		if s.assigns[v] == Undef {
			return v
		}
	}
	return -1
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
func luby(i int64) int64 {
	x := i - 1
	size, seq := int64(1), uint(0)
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x %= size
	}
	return int64(1) << seq
}

func (s *Solver) reduceDB() {
	// Sort learnt clauses by activity (simple selection by median split).
	if len(s.learnts) < 100 {
		return
	}
	// Compute median activity.
	acts := make([]float64, len(s.learnts))
	for i, c := range s.learnts {
		acts[i] = c.activity
	}
	med := quickSelectMedian(acts)
	kept := s.learnts[:0]
	locked := func(c *clause) bool {
		v := c.lits[0].Var()
		return s.assigns[v] != Undef && s.reason[v] == c
	}
	removed := 0
	for _, c := range s.learnts {
		if len(c.lits) <= 2 || locked(c) || c.activity > med || removed*2 >= len(acts) {
			kept = append(kept, c)
		} else {
			s.detach(c)
			removed++
		}
	}
	s.learnts = kept
}

func quickSelectMedian(a []float64) float64 {
	b := append([]float64(nil), a...)
	k := len(b) / 2
	lo, hi := 0, len(b)-1
	for lo < hi {
		p := b[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for b[i] < p {
				i++
			}
			for b[j] > p {
				j--
			}
			if i <= j {
				b[i], b[j] = b[j], b[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return b[k]
}

// Solve searches for a satisfying assignment under the given assumption
// literals. It returns (true, nil) when satisfiable (the model is then
// available via Value), (false, nil) when unsatisfiable under the
// assumptions, and (false, ErrBudget) if MaxConflicts was exceeded.
func (s *Solver) Solve(assumptions ...Lit) (bool, error) {
	if !s.ok {
		return false, nil
	}
	defer s.backtrackTo(0)

	restarts := int64(0)
	for {
		budget := 100 * luby(restarts+1)
		status, err := s.search(budget, assumptions)
		if err != nil {
			return false, err
		}
		if status != Undef {
			if status == True {
				s.model = append([]LBool(nil), s.assigns...)
				return true, nil
			}
			return false, nil
		}
		restarts++
		s.stats.Restarts++
		if s.MaxConflicts > 0 && s.stats.Conflicts >= s.MaxConflicts {
			return false, ErrBudget
		}
	}
}

// search runs CDCL until a result, a conflict budget is hit (Undef), or the
// assumption set is refuted.
func (s *Solver) search(budget int64, assumptions []Lit) (LBool, error) {
	conflicts := int64(0)
	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return False, nil
			}
			learnt, btLevel := s.analyze(confl)
			// Backtrack exactly to the asserting level. Assumption levels
			// may be retracted here; the decision loop below re-enqueues
			// them (learned clauses are global consequences, so this is
			// sound).
			s.backtrackTo(btLevel)
			if len(learnt) == 1 {
				if s.valueLit(learnt[0]) == False {
					s.ok = false
					return False, nil
				}
				if s.valueLit(learnt[0]) == Undef {
					s.uncheckedEnqueue(learnt[0], nil)
				}
			} else {
				c := &clause{lits: learnt, learnt: true, activity: 1}
				s.learnts = append(s.learnts, c)
				s.stats.Learnt++
				s.attach(c)
				if s.valueLit(learnt[0]) == Undef {
					s.uncheckedEnqueue(learnt[0], c)
				}
			}
			s.varDecay()
			if len(s.learnts) > 4000+len(s.clauses) {
				s.reduceDB()
			}
			continue
		}
		if conflicts >= budget {
			s.backtrackTo(0)
			return Undef, nil
		}
		if s.MaxConflicts > 0 && s.stats.Conflicts >= s.MaxConflicts {
			return Undef, ErrBudget
		}
		// Extend with assumptions first.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.valueLit(a) {
			case True:
				// Already satisfied: open an empty decision level so the
				// index keeps advancing.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case False:
				return False, nil
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.uncheckedEnqueue(a, nil)
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			return True, nil
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(MkLit(v, s.polarity[v]), nil)
	}
}

// varHeap is a max-heap of variables ordered by VSIDS activity.
type varHeap struct {
	s    *Solver
	heap []Var
	pos  []int32 // per var: index in heap, -1 when absent
}

func (h *varHeap) less(a, b Var) bool {
	return h.s.activity[a] > h.s.activity[b]
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) ensure(v Var) {
	for int(v) >= len(h.pos) {
		h.pos = append(h.pos, -1)
	}
}

func (h *varHeap) insert(v Var) {
	h.ensure(v)
	if h.pos[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = int32(len(h.heap) - 1)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) insertMaybe(v Var) { h.insert(v) }

func (h *varHeap) update(v Var) {
	h.ensure(v)
	if h.pos[v] >= 0 {
		h.up(int(h.pos[v]))
	}
}

func (h *varHeap) pop() Var {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last] = 0
		h.down(0)
	}
	return v
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.pos[h.heap[i]] = int32(i)
		i = p
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	for {
		l := 2*i + 1
		if l >= len(h.heap) {
			break
		}
		c := l
		if r := l + 1; r < len(h.heap) && h.less(h.heap[r], h.heap[l]) {
			c = r
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[i]] = int32(i)
		i = c
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}
