package sat

import (
	"sort"
	"testing"

	"orap/internal/rng"
)

// mkLearnt installs a fake learned clause with the given LBD directly, so
// reduceDB policy is testable in isolation.
func mkLearnt(s *Solver, lbd int32, lits ...Lit) *clause {
	c := &clause{lits: lits, learnt: true, lbd: lbd}
	s.learnts = append(s.learnts, c)
	s.attach(c)
	return c
}

func TestReduceDBSkipsTinyLearntSets(t *testing.T) {
	s := New()
	v := mkVars(s, 8)
	for i := 0; i < 3; i++ {
		mkLearnt(s, 5, MkLit(v[i], false), MkLit(v[i+1], true), MkLit(v[i+2], false))
	}
	s.reduceDB()
	if got := len(s.learnts); got != 3 {
		t.Fatalf("reduceDB touched a %d-clause learnt set: %d left", 3, got)
	}
	if s.stats.Reductions != 0 || s.stats.RemovedClauses != 0 {
		t.Fatalf("reduction counted on a tiny set: %+v", s.stats)
	}
}

func TestReduceDBBoundaryAtFourClauses(t *testing.T) {
	// Exactly four evictable clauses is the smallest set reduceDB acts on:
	// the two worst (highest-LBD) halves go, the better half stays.
	s := New()
	v := mkVars(s, 8)
	kept3 := mkLearnt(s, 3, MkLit(v[0], false), MkLit(v[1], false), MkLit(v[2], false))
	kept4 := mkLearnt(s, 4, MkLit(v[1], false), MkLit(v[2], true), MkLit(v[3], false))
	mkLearnt(s, 5, MkLit(v[2], false), MkLit(v[3], true), MkLit(v[4], false))
	mkLearnt(s, 6, MkLit(v[3], false), MkLit(v[4], true), MkLit(v[5], false))
	s.reduceDB()
	if got := len(s.learnts); got != 2 {
		t.Fatalf("expected 2 survivors of 4, got %d", got)
	}
	if s.learnts[0] != kept3 || s.learnts[1] != kept4 {
		t.Fatal("reduceDB evicted the low-LBD clauses instead of the high-LBD ones")
	}
	if s.stats.Reductions != 1 || s.stats.RemovedClauses != 2 {
		t.Fatalf("reduction stats wrong: %+v", s.stats)
	}
}

func TestReduceDBNeverEvictsGlueOrBinary(t *testing.T) {
	s := New()
	v := mkVars(s, 12)
	// Four glue clauses (LBD ≤ 2) and four binary clauses: none evictable,
	// so even though the set is large enough, nothing moves.
	for i := 0; i < 4; i++ {
		mkLearnt(s, 2, MkLit(v[i], false), MkLit(v[i+1], true), MkLit(v[i+2], false))
		mkLearnt(s, 9, MkLit(v[i+4], false), MkLit(v[i+5], true))
	}
	s.reduceDB()
	if got := len(s.learnts); got != 8 {
		t.Fatalf("glue/binary clauses evicted: %d of 8 left", got)
	}
}

func TestQuickSelectMedian(t *testing.T) {
	if got := quickSelectMedian(nil); got != 0 {
		t.Fatalf("median(nil) = %v, want 0", got)
	}
	if got := quickSelectMedian([]float64{7}); got != 7 {
		t.Fatalf("median([7]) = %v, want 7", got)
	}
	r := rng.New(11)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(40)
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(r.Intn(20))
		}
		orig := append([]float64(nil), a...)
		got := quickSelectMedian(a)
		sorted := append([]float64(nil), orig...)
		sort.Float64s(sorted)
		if want := sorted[n/2]; got != want {
			t.Fatalf("trial %d: median(%v) = %v, want %v", trial, orig, got, want)
		}
		for i := range a {
			if a[i] != orig[i] {
				t.Fatal("quickSelectMedian mutated its input")
			}
		}
	}
}

func TestBinaryPropagationCounted(t *testing.T) {
	// A pure binary implication chain: v0 → v1 → … → v19. Assuming v0
	// must propagate the whole chain through the binary watch lists.
	s := New()
	const n = 20
	v := mkVars(s, n)
	for i := 0; i+1 < n; i++ {
		s.AddClause(MkLit(v[i], true), MkLit(v[i+1], false))
	}
	ok, err := s.Solve(MkLit(v[0], false))
	if err != nil || !ok {
		t.Fatalf("Solve = %v, %v", ok, err)
	}
	for i := 0; i < n; i++ {
		if s.Value(v[i]) != True {
			t.Fatalf("chain not propagated at v%d", i)
		}
	}
	st := s.Stats()
	if st.BinPropagations < n-1 {
		t.Fatalf("binary propagations %d < chain length %d", st.BinPropagations, n-1)
	}
}

func TestLBDStatsRecorded(t *testing.T) {
	s := New()
	pigeonhole(s, 5)
	if ok, _ := s.Solve(); ok {
		t.Fatal("PHP(5) SAT?")
	}
	st := s.Stats()
	if st.Learnt == 0 {
		t.Fatal("no clauses learned on PHP(5)")
	}
	var hist int64
	for _, h := range st.LBDHist {
		hist += h
	}
	if hist != st.Learnt {
		t.Fatalf("LBD histogram sums to %d, learned %d", hist, st.Learnt)
	}
	if st.LBDSum <= 0 || st.MeanLBD() <= 0 {
		t.Fatalf("LBD sum not recorded: %+v", st)
	}
	if st.LearntLits < st.Learnt {
		t.Fatalf("learned literal count %d below clause count %d", st.LearntLits, st.Learnt)
	}
}

// solveStats builds and solves an instance, returning verdict and stats.
func solveStats(t *testing.T, build func(*Solver)) (bool, Stats) {
	t.Helper()
	s := New()
	build(s)
	ok, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return ok, s.Stats()
}

func TestStatsDeterministicAcrossRuns(t *testing.T) {
	builders := map[string]func(*Solver){
		"php5": func(s *Solver) { pigeonhole(s, 5) },
		"random3sat": func(s *Solver) {
			r := rng.New(99)
			vars := mkVars(s, 60)
			for c := 0; c < 255; c++ {
				s.AddClause(
					MkLit(vars[r.Intn(60)], r.Bool()),
					MkLit(vars[r.Intn(60)], r.Bool()),
					MkLit(vars[r.Intn(60)], r.Bool()),
				)
			}
		},
	}
	for name, build := range builders {
		ok1, st1 := solveStats(t, build)
		ok2, st2 := solveStats(t, build)
		if ok1 != ok2 {
			t.Fatalf("%s: verdicts differ across runs", name)
		}
		if st1 != st2 {
			t.Fatalf("%s: stats differ across runs:\n%+v\n%+v", name, st1, st2)
		}
	}
}

// BenchmarkSolverPropagate stresses unit propagation: a deep implication
// ladder of binary clauses with ternary cross-links, triggered by a single
// assumption, so nearly all work is watch-list traversal.
func BenchmarkSolverPropagate(b *testing.B) {
	const n = 1 << 15
	s := New()
	v := mkVars(s, n)
	for i := 0; i+1 < n; i++ {
		s.AddClause(MkLit(v[i], true), MkLit(v[i+1], false))
	}
	for i := 0; i+7 < n; i += 5 {
		s.AddClause(MkLit(v[i], true), MkLit(v[i+3], true), MkLit(v[i+7], false))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := s.Solve(MkLit(v[0], false))
		if err != nil || !ok {
			b.Fatalf("Solve = %v, %v", ok, err)
		}
	}
}
