package sat

import (
	"strings"
	"testing"

	"orap/internal/rng"
)

func TestParseDIMACSBasic(t *testing.T) {
	src := `c a comment
p cnf 3 3
1 -2 0
2 3 0
-1 0
`
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Solve()
	if err != nil || !ok {
		t.Fatalf("Solve = %v, %v", ok, err)
	}
	// -1 forces v0=false; 1∨¬2 forces v1=false; 2∨3 forces v2=true.
	if s.Value(0) != False || s.Value(1) != False || s.Value(2) != True {
		t.Fatalf("model wrong: %v %v %v", s.Value(0), s.Value(1), s.Value(2))
	}
}

func TestParseDIMACSUNSAT(t *testing.T) {
	src := "p cnf 1 2\n1 0\n-1 0\n"
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Solve(); ok {
		t.Fatal("contradictory units reported SAT")
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for name, src := range map[string]string{
		"bad problem line": "p dnf 2 1\n1 0\n",
		"bad literal":      "p cnf 2 1\n1 x 0\n",
		"trailing clause":  "p cnf 2 1\n1 2\n",
	} {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseDIMACSAllocatesBeyondHeader(t *testing.T) {
	src := "p cnf 1 1\n5 0\n"
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() < 5 {
		t.Fatalf("vars = %d, want >= 5", s.NumVars())
	}
}

func TestDIMACSRoundTripPreservesSatisfiability(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 40; trial++ {
		s1 := New()
		vars := mkVars(s1, 10)
		for c := 0; c < 30+r.Intn(20); c++ {
			s1.AddClause(
				MkLit(vars[r.Intn(10)], r.Bool()),
				MkLit(vars[r.Intn(10)], r.Bool()),
				MkLit(vars[r.Intn(10)], r.Bool()),
			)
		}
		var b strings.Builder
		if err := s1.WriteDIMACS(&b); err != nil {
			t.Fatal(err)
		}
		s2, err := ParseDIMACS(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, b.String())
		}
		ok1, err1 := s1.Solve()
		ok2, err2 := s2.Solve()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if ok1 != ok2 {
			t.Fatalf("trial %d: original %v, round trip %v", trial, ok1, ok2)
		}
	}
}

func TestWriteDIMACSIncludesUnits(t *testing.T) {
	s := New()
	v := mkVars(s, 2)
	s.AddClause(MkLit(v[0], false)) // unit: lands on the trail, not the DB
	s.AddClause(MkLit(v[0], true), MkLit(v[1], false))
	var b strings.Builder
	if err := s.WriteDIMACS(&b); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseDIMACS(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := s2.Solve()
	if !ok || s2.Value(0) != True || s2.Value(1) != True {
		t.Fatalf("round trip lost unit facts:\n%s", b.String())
	}
}
