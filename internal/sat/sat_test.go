package sat

import (
	"testing"

	"orap/internal/rng"
)

// mkVars allocates n variables and returns them.
func mkVars(s *Solver, n int) []Var {
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	return vs
}

func TestTrivialSAT(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(MkLit(v, false))
	ok, err := s.Solve()
	if err != nil || !ok {
		t.Fatalf("Solve = %v, %v", ok, err)
	}
	if s.Value(v) != True {
		t.Fatalf("v = %v, want True", s.Value(v))
	}
}

func TestTrivialUNSAT(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(MkLit(v, false))
	if s.AddClause(MkLit(v, true)) {
		t.Fatal("conflicting units not detected at add time")
	}
	ok, err := s.Solve()
	if err != nil || ok {
		t.Fatalf("Solve = %v, %v; want UNSAT", ok, err)
	}
}

func TestEmptyClauseUNSAT(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("empty clause accepted")
	}
	if ok, _ := s.Solve(); ok {
		t.Fatal("solver SAT after empty clause")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	v := mkVars(s, 2)
	s.AddClause(MkLit(v[0], false), MkLit(v[0], true)) // tautology
	s.AddClause(MkLit(v[1], false))
	ok, _ := s.Solve()
	if !ok {
		t.Fatal("tautology made problem UNSAT")
	}
}

func TestXorChain(t *testing.T) {
	// x0 ^ x1 = 1, x1 ^ x2 = 1, ..., forces alternation; satisfiable.
	s := New()
	const n = 20
	v := mkVars(s, n)
	for i := 0; i+1 < n; i++ {
		a, b := v[i], v[i+1]
		// a != b  ==  (a | b) & (~a | ~b)
		s.AddClause(MkLit(a, false), MkLit(b, false))
		s.AddClause(MkLit(a, true), MkLit(b, true))
	}
	ok, err := s.Solve()
	if err != nil || !ok {
		t.Fatalf("Solve = %v, %v", ok, err)
	}
	for i := 0; i+1 < n; i++ {
		if s.Value(v[i]) == s.Value(v[i+1]) {
			t.Fatalf("model violates x%d != x%d", i, i+1)
		}
	}
}

// pigeonhole encodes n+1 pigeons into n holes; always UNSAT.
func pigeonhole(s *Solver, n int) {
	p := make([][]Var, n+1)
	for i := range p {
		p[i] = mkVars(s, n)
	}
	for i := 0; i <= n; i++ {
		lits := make([]Lit, n)
		for j := 0; j < n; j++ {
			lits[j] = MkLit(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
			}
		}
	}
}

func TestPigeonholeUNSAT(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n)
		ok, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("PHP(%d) reported SAT", n)
		}
	}
}

func TestPigeonholeEqualSAT(t *testing.T) {
	// n pigeons in n holes is satisfiable.
	n := 5
	s := New()
	p := make([][]Var, n)
	for i := range p {
		p[i] = mkVars(s, n)
	}
	for i := 0; i < n; i++ {
		lits := make([]Lit, n)
		for j := 0; j < n; j++ {
			lits[j] = MkLit(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			for k := i + 1; k < n; k++ {
				s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
			}
		}
	}
	if ok, _ := s.Solve(); !ok {
		t.Fatal("PHP(n,n) reported UNSAT")
	}
}

// bruteForce checks satisfiability of a clause set over nv variables.
func bruteForce(nv int, clauses [][]Lit) bool {
	for m := 0; m < 1<<uint(nv); m++ {
		good := true
		for _, cl := range clauses {
			sat := false
			for _, l := range cl {
				val := m>>uint(l.Var())&1 == 1
				if val != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				good = false
				break
			}
		}
		if good {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	r := rng.New(2024)
	const nv = 12
	for trial := 0; trial < 200; trial++ {
		nc := 20 + r.Intn(50)
		clauses := make([][]Lit, 0, nc)
		s := New()
		vars := mkVars(s, nv)
		addOK := true
		for i := 0; i < nc; i++ {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = MkLit(vars[r.Intn(nv)], r.Bool())
			}
			clauses = append(clauses, cl)
			if !s.AddClause(cl...) {
				addOK = false
			}
		}
		want := bruteForce(nv, clauses)
		got, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if !addOK && got {
			t.Fatalf("trial %d: solver SAT after AddClause signalled UNSAT", trial)
		}
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v (%d clauses)", trial, got, want, nc)
		}
		if got {
			// Verify the model satisfies every clause.
			for ci, cl := range clauses {
				sat := false
				for _, l := range cl {
					if s.ValueLit(l) == True {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model violates clause %d", trial, ci)
				}
			}
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	v := mkVars(s, 3)
	// v0 -> v1, v1 -> v2
	s.AddClause(MkLit(v[0], true), MkLit(v[1], false))
	s.AddClause(MkLit(v[1], true), MkLit(v[2], false))
	// ~v2
	s.AddClause(MkLit(v[2], true))

	// Under assumption v0, UNSAT (forces v2).
	ok, err := s.Solve(MkLit(v[0], false))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("assuming v0 should be UNSAT")
	}
	// Without assumptions, SAT.
	ok, err = s.Solve()
	if err != nil || !ok {
		t.Fatalf("unassumed Solve = %v, %v", ok, err)
	}
	// Solver remains reusable: assume ~v0, still SAT.
	ok, err = s.Solve(MkLit(v[0], true))
	if err != nil || !ok {
		t.Fatalf("Solve(~v0) = %v, %v", ok, err)
	}
	if s.Value(v[0]) != False {
		t.Fatal("assumption not honoured in model")
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := New()
	v := mkVars(s, 4)
	s.AddClause(MkLit(v[0], false), MkLit(v[1], false))
	if ok, _ := s.Solve(); !ok {
		t.Fatal("phase 1 should be SAT")
	}
	s.AddClause(MkLit(v[0], true))
	s.AddClause(MkLit(v[1], true))
	if ok, _ := s.Solve(); ok {
		t.Fatal("phase 2 should be UNSAT")
	}
}

func TestConflictBudget(t *testing.T) {
	s := New()
	pigeonhole(s, 8) // hard enough to exceed a tiny budget
	s.MaxConflicts = 10
	_, err := s.Solve()
	if err != ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func TestDuplicateLiteralsInClause(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(MkLit(v, false), MkLit(v, false), MkLit(v, false))
	ok, _ := s.Solve()
	if !ok || s.Value(v) != True {
		t.Fatal("duplicate-literal clause mishandled")
	}
}

func TestLitHelpers(t *testing.T) {
	l := MkLit(7, true)
	if l.Var() != 7 || !l.Neg() {
		t.Fatalf("MkLit broken: %v", l)
	}
	if l.Not().Neg() || l.Not().Var() != 7 {
		t.Fatalf("Not broken: %v", l.Not())
	}
	if l.String() != "~v7" || l.Not().String() != "v7" {
		t.Fatalf("String broken: %q %q", l.String(), l.Not().String())
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestStatsProgress(t *testing.T) {
	s := New()
	pigeonhole(s, 5)
	if ok, _ := s.Solve(); ok {
		t.Fatal("PHP(5) SAT?")
	}
	st := s.Stats()
	if st.Conflicts == 0 || st.Decisions == 0 || st.Propagations == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
}

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonhole(s, 7)
		if ok, err := s.Solve(); ok || err != nil {
			b.Fatalf("Solve = %v, %v", ok, err)
		}
	}
}

func BenchmarkRandom3SAT(b *testing.B) {
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		vars := mkVars(s, 100)
		for c := 0; c < 420; c++ {
			s.AddClause(
				MkLit(vars[r.Intn(100)], r.Bool()),
				MkLit(vars[r.Intn(100)], r.Bool()),
				MkLit(vars[r.Intn(100)], r.Bool()),
			)
		}
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
