package sat

// LBDBuckets is the number of histogram buckets in Stats.LBDHist: bucket
// i (0-based) counts learned clauses with LBD i+1, and the final bucket
// absorbs every clause with LBD ≥ LBDBuckets.
const LBDBuckets = 8

// Stats carries solver counters, useful for the attack evaluations that
// report solver effort. The zero value is an empty tally; Add merges two
// tallies, so campaign drivers (ATPG, experiment tables) can aggregate
// per-solve stats into one figure.
type Stats struct {
	Decisions    int64
	Propagations int64
	// BinPropagations counts the implications served by the specialized
	// binary-clause watch lists, where the implied literal lives in the
	// watcher itself and propagation never dereferences clause memory.
	BinPropagations int64
	Conflicts       int64
	Restarts        int64
	// Learnt counts learned clauses, including learned units.
	Learnt int64
	// LearntLits counts the literals across learned clauses after
	// minimization; MinimizedLits counts the literals the on-the-fly
	// one-step minimizer removed before the clauses were stored.
	LearntLits    int64
	MinimizedLits int64
	// LBDSum accumulates the literal-block-distance (number of distinct
	// decision levels) of every learned clause; LBDHist is the matching
	// histogram (bucket i counts LBD i+1, last bucket is ≥ LBDBuckets).
	LBDSum  int64
	LBDHist [LBDBuckets]int64
	// Reductions counts clause-database reductions that performed work;
	// RemovedClauses the learned clauses they dropped.
	Reductions     int64
	RemovedClauses int64
}

// Add merges the counters of o into s.
func (s *Stats) Add(o Stats) {
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.BinPropagations += o.BinPropagations
	s.Conflicts += o.Conflicts
	s.Restarts += o.Restarts
	s.Learnt += o.Learnt
	s.LearntLits += o.LearntLits
	s.MinimizedLits += o.MinimizedLits
	s.LBDSum += o.LBDSum
	for i := range s.LBDHist {
		s.LBDHist[i] += o.LBDHist[i]
	}
	s.Reductions += o.Reductions
	s.RemovedClauses += o.RemovedClauses
}

// GlueClauses returns the number of learned clauses with LBD ≤ 2 — the
// "glue" tier that clause-database reduction never evicts.
func (s Stats) GlueClauses() int64 { return s.LBDHist[0] + s.LBDHist[1] }

// MeanLBD returns the mean literal-block distance of the learned
// clauses, or 0 when nothing was learned.
func (s Stats) MeanLBD() float64 {
	if s.Learnt == 0 {
		return 0
	}
	return float64(s.LBDSum) / float64(s.Learnt)
}

// MeanLearntLen returns the mean learned-clause length after
// minimization, or 0 when nothing was learned.
func (s Stats) MeanLearntLen() float64 {
	if s.Learnt == 0 {
		return 0
	}
	return float64(s.LearntLits) / float64(s.Learnt)
}
