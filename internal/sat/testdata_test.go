package sat

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// corpus pins the verdicts of the DIMACS regression instances under
// testdata/. The files are fixed; any verdict flip is a solver regression.
var corpus = []struct {
	file string
	sat  bool
}{
	{"php-4-3.cnf", false},
	{"php-5-4.cnf", false},
	{"random3sat-sat.cnf", true},
	{"random3sat-unsat.cnf", false},
	{"unit-heavy.cnf", true},
}

// rawClauses parses a DIMACS file with a minimal, solver-independent
// reader, so model validation does not trust ParseDIMACS.
func rawClauses(t *testing.T, path string) [][]int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var clauses [][]int
	var cur []int
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "c") || strings.HasPrefix(line, "p") {
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				t.Fatalf("%s: bad literal %q", path, tok)
			}
			if n == 0 {
				clauses = append(clauses, cur)
				cur = nil
				continue
			}
			cur = append(cur, n)
		}
	}
	if len(cur) != 0 {
		t.Fatalf("%s: trailing clause", path)
	}
	return clauses
}

// solveFile parses and solves one corpus instance from scratch.
func solveFile(t *testing.T, path string) (*Solver, bool) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := ParseDIMACS(f)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return s, ok
}

func TestDIMACSCorpus(t *testing.T) {
	for _, tc := range corpus {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", tc.file)
			s, ok := solveFile(t, path)
			if ok != tc.sat {
				t.Fatalf("verdict %v, want %v", ok, tc.sat)
			}
			if tc.sat {
				// Validate the model against the independently parsed
				// clause list: every clause must hold.
				for ci, cl := range rawClauses(t, path) {
					holds := false
					for _, n := range cl {
						v := Var(n - 1)
						if n < 0 {
							v = Var(-n - 1)
						}
						val := s.Value(v)
						if (n > 0 && val == True) || (n < 0 && val == False) {
							holds = true
							break
						}
					}
					if !holds {
						t.Fatalf("model violates clause %d (%v)", ci, cl)
					}
				}
			}
			// Determinism gate: a second fresh run must reproduce the
			// verdict and every solver counter bit for bit.
			s2, ok2 := solveFile(t, path)
			if ok2 != ok {
				t.Fatalf("second run verdict %v, first %v", ok2, ok)
			}
			if s.Stats() != s2.Stats() {
				t.Fatalf("stats differ across runs:\n%+v\n%+v", s.Stats(), s2.Stats())
			}
		})
	}
}
