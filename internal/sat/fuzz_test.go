package sat

import (
	"strings"
	"testing"
)

// FuzzParseDIMACS feeds arbitrary text to the DIMACS reader: parsing must
// either fail cleanly or produce a solver whose Solve terminates (the
// instances are tiny, so a full solve is affordable inside the fuzzer).
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p cnf 2 2\n1 -2 0\n2 0\n")
	f.Add("c comment\np cnf 1 1\n1 0\n")
	f.Add("1 0")
	f.Add("p cnf 0 0\n")
	f.Add("p cnf 3 1\n1 2 3 0 -1 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		// Cap problem size so hostile inputs cannot allocate wildly.
		if len(src) > 1<<12 || strings.Count(src, "\n") > 256 {
			return
		}
		s, err := ParseDIMACS(strings.NewReader(src))
		if err != nil {
			return
		}
		if s.NumVars() > 64 {
			return // avoid huge random instances in the fuzz loop
		}
		s.MaxConflicts = 1000
		_, _ = s.Solve()
	})
}
