package sat

import (
	"strings"
	"testing"
)

// FuzzSolver decodes the fuzz input into a clause set over at most 16
// variables plus an assumption list, solves with a conflict cap, and
// checks the solver's answer: a model must satisfy every clause and
// every assumption, and a second identical run must reproduce the
// verdict and the exact Stats (determinism gate).
func FuzzSolver(f *testing.F) {
	f.Add([]byte{3, 0x01, 0x12, 0x83, 0x21}, []byte{0x01})
	f.Add([]byte{8, 0x15, 0x9a, 0x3f, 0x70, 0x88, 0x02}, []byte{0x83, 0x04})
	f.Add([]byte{16, 0xff, 0x00, 0x42, 0x51, 0x66, 0x77, 0x38, 0x29}, []byte{})
	f.Add([]byte{1, 0x80, 0x00}, []byte{0x80})
	f.Fuzz(func(t *testing.T, clauseBytes, assumeBytes []byte) {
		if len(clauseBytes) < 2 || len(clauseBytes) > 256 || len(assumeBytes) > 8 {
			return
		}
		nv := 1 + int(clauseBytes[0]%16)
		// Each remaining byte is one literal: low bits pick the variable,
		// the top bit the sign; a zero byte terminates the current clause.
		decode := func() (*Solver, [][]Lit, []Lit) {
			s := New()
			vars := mkVars(s, nv)
			var clauses [][]Lit
			var cur []Lit
			for _, b := range clauseBytes[1:] {
				if b == 0 {
					if len(cur) > 0 {
						clauses = append(clauses, cur)
						s.AddClause(cur...)
						cur = nil
					}
					continue
				}
				cur = append(cur, MkLit(vars[int(b&0x7f)%nv], b&0x80 != 0))
			}
			if len(cur) > 0 {
				clauses = append(clauses, cur)
				s.AddClause(cur...)
			}
			var assumps []Lit
			for _, b := range assumeBytes {
				assumps = append(assumps, MkLit(vars[int(b&0x7f)%nv], b&0x80 != 0))
			}
			return s, clauses, assumps
		}
		s, clauses, assumps := decode()
		s.MaxConflicts = 2000
		ok, err := s.Solve(assumps...)
		if err != nil {
			return // budget exhausted: no verdict to check
		}
		if ok {
			for ci, cl := range clauses {
				holds := false
				for _, l := range cl {
					if s.ValueLit(l) == True {
						holds = true
						break
					}
				}
				if !holds {
					t.Fatalf("model violates clause %d", ci)
				}
			}
			for _, a := range assumps {
				if s.ValueLit(a) != True {
					t.Fatalf("model violates assumption %v", a)
				}
			}
		}
		s2, _, assumps2 := decode()
		s2.MaxConflicts = 2000
		ok2, err2 := s2.Solve(assumps2...)
		if err2 != nil {
			t.Fatalf("second run errored (%v) where first succeeded", err2)
		}
		if ok2 != ok {
			t.Fatalf("verdict flipped across identical runs: %v then %v", ok, ok2)
		}
		if s.Stats() != s2.Stats() {
			t.Fatalf("stats differ across identical runs:\n%+v\n%+v", s.Stats(), s2.Stats())
		}
	})
}

// FuzzParseDIMACS feeds arbitrary text to the DIMACS reader: parsing must
// either fail cleanly or produce a solver whose Solve terminates (the
// instances are tiny, so a full solve is affordable inside the fuzzer).
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p cnf 2 2\n1 -2 0\n2 0\n")
	f.Add("c comment\np cnf 1 1\n1 0\n")
	f.Add("1 0")
	f.Add("p cnf 0 0\n")
	f.Add("p cnf 3 1\n1 2 3 0 -1 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		// Cap problem size so hostile inputs cannot allocate wildly.
		if len(src) > 1<<12 || strings.Count(src, "\n") > 256 {
			return
		}
		s, err := ParseDIMACS(strings.NewReader(src))
		if err != nil {
			return
		}
		if s.NumVars() > 64 {
			return // avoid huge random instances in the fuzz loop
		}
		s.MaxConflicts = 1000
		_, _ = s.Solve()
	})
}
