// Package sim evaluates combinational circuits.
//
// The workhorse is the 64-way bit-parallel simulator: every node carries a
// vector of 64-bit words, so one pass over the netlist evaluates 64 input
// patterns per word. This is the engine behind the Hamming-distance
// corruptibility measurements of Table I (hundreds of thousands of
// pseudorandom patterns), the fault simulator, and the attack oracles.
package sim

import (
	"fmt"
	"math/bits"
	"sync"

	"orap/internal/netlist"
	"orap/internal/rng"
)

// valsPool recycles value buffers between evaluators. Workers that clone
// an evaluator per task (the parallel HD and fault-simulation drivers)
// would otherwise allocate len(Gates)×words words per clone; Release puts
// the buffer back so the next Clone or NewParallel reuses it.
var valsPool sync.Pool

// grabVals returns a zeroed buffer of n words, reusing a pooled one when
// it is large enough.
func grabVals(n int) []uint64 {
	if p, ok := valsPool.Get().(*[]uint64); ok {
		if cap(*p) >= n {
			v := (*p)[:n]
			for i := range v {
				v[i] = 0
			}
			return v
		}
	}
	return make([]uint64, n)
}

// Parallel is a reusable bit-parallel evaluator for a fixed circuit and a
// fixed number of 64-pattern words.
type Parallel struct {
	c     *netlist.Circuit
	order []int
	words int
	vals  []uint64 // node-major: vals[id*words : (id+1)*words]
}

// NewParallel builds an evaluator for c carrying words×64 patterns.
func NewParallel(c *netlist.Circuit, words int) (*Parallel, error) {
	if words <= 0 {
		return nil, fmt.Errorf("sim: words must be positive, got %d", words)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &Parallel{
		c:     c,
		order: order,
		words: words,
		vals:  grabVals(len(c.Gates) * words),
	}, nil
}

// Clone returns an independent evaluator for the same circuit and word
// count. The (immutable) topological order is shared; only the value
// buffer is private, so clones are cheap and safe to run concurrently.
// Pair with Release when the clone is short-lived.
func (p *Parallel) Clone() *Parallel {
	return &Parallel{
		c:     p.c,
		order: p.order,
		words: p.words,
		vals:  grabVals(len(p.c.Gates) * p.words),
	}
}

// Release returns the evaluator's value buffer to a shared pool for reuse
// by later NewParallel/Clone calls. The evaluator must not be used
// afterwards.
func (p *Parallel) Release() {
	v := p.vals
	p.vals = nil
	valsPool.Put(&v)
}

// Words returns the number of 64-pattern words per node.
func (p *Parallel) Words() int { return p.words }

// Patterns returns the number of patterns evaluated per run (words × 64).
func (p *Parallel) Patterns() int { return p.words * 64 }

// Value returns the value words of node id. The returned slice aliases the
// simulator's buffer; it is valid until the next Run and must not be
// modified except for input nodes via SetInput.
func (p *Parallel) Value(id int) []uint64 {
	return p.vals[id*p.words : (id+1)*p.words]
}

// SetInput copies the given pattern words into input node id.
func (p *Parallel) SetInput(id int, w []uint64) {
	copy(p.Value(id), w)
}

// SetInputConst sets all patterns of input node id to the same bit.
func (p *Parallel) SetInputConst(id int, v bool) {
	var word uint64
	if v {
		word = ^uint64(0)
	}
	dst := p.Value(id)
	for i := range dst {
		dst[i] = word
	}
}

// Run evaluates every gate in topological order. Input node values must
// have been set beforehand; values of non-input nodes are overwritten.
func (p *Parallel) Run() {
	W := p.words
	for _, id := range p.order {
		g := &p.c.Gates[id]
		dst := p.vals[id*W : (id+1)*W]
		switch g.Type {
		case netlist.Input:
			// Values were provided by the caller.
		case netlist.Const0:
			for i := range dst {
				dst[i] = 0
			}
		case netlist.Const1:
			for i := range dst {
				dst[i] = ^uint64(0)
			}
		case netlist.Buf:
			src := p.vals[g.Fanin[0]*W : g.Fanin[0]*W+W]
			copy(dst, src)
		case netlist.Not:
			src := p.vals[g.Fanin[0]*W : g.Fanin[0]*W+W]
			for i := range dst {
				dst[i] = ^src[i]
			}
		case netlist.And, netlist.Nand:
			first := p.vals[g.Fanin[0]*W : g.Fanin[0]*W+W]
			copy(dst, first)
			for _, f := range g.Fanin[1:] {
				src := p.vals[f*W : f*W+W]
				for i := range dst {
					dst[i] &= src[i]
				}
			}
			if g.Type == netlist.Nand {
				for i := range dst {
					dst[i] = ^dst[i]
				}
			}
		case netlist.Or, netlist.Nor:
			first := p.vals[g.Fanin[0]*W : g.Fanin[0]*W+W]
			copy(dst, first)
			for _, f := range g.Fanin[1:] {
				src := p.vals[f*W : f*W+W]
				for i := range dst {
					dst[i] |= src[i]
				}
			}
			if g.Type == netlist.Nor {
				for i := range dst {
					dst[i] = ^dst[i]
				}
			}
		case netlist.Xor, netlist.Xnor:
			first := p.vals[g.Fanin[0]*W : g.Fanin[0]*W+W]
			copy(dst, first)
			for _, f := range g.Fanin[1:] {
				src := p.vals[f*W : f*W+W]
				for i := range dst {
					dst[i] ^= src[i]
				}
			}
			if g.Type == netlist.Xnor {
				for i := range dst {
					dst[i] = ^dst[i]
				}
			}
		}
	}
}

// RandomizeInputs fills every primary input with pseudo-random patterns
// from r, leaving key inputs untouched.
func (p *Parallel) RandomizeInputs(r *rng.Stream) {
	for _, id := range p.c.PIs {
		r.Words(p.Value(id))
	}
}

// SetKey applies the given key bits to the circuit's key inputs, each bit
// replicated across all patterns. len(key) must equal the key width.
func (p *Parallel) SetKey(key []bool) error {
	if len(key) != len(p.c.Keys) {
		return fmt.Errorf("sim: key width %d does not match circuit key width %d", len(key), len(p.c.Keys))
	}
	for i, id := range p.c.Keys {
		p.SetInputConst(id, key[i])
	}
	return nil
}

// Eval evaluates the circuit on a single pattern given as primary-input and
// key bit slices, returning the primary output bits in declaration order.
func Eval(c *netlist.Circuit, pi, key []bool) ([]bool, error) {
	if len(pi) != c.NumInputs() {
		return nil, fmt.Errorf("sim: got %d primary input bits, circuit has %d", len(pi), c.NumInputs())
	}
	if len(key) != c.NumKeys() {
		return nil, fmt.Errorf("sim: got %d key bits, circuit has %d", len(key), c.NumKeys())
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	vals := make([]bool, len(c.Gates))
	for i, id := range c.PIs {
		vals[id] = pi[i]
	}
	for i, id := range c.Keys {
		vals[id] = key[i]
	}
	for _, id := range order {
		g := &c.Gates[id]
		switch g.Type {
		case netlist.Input:
		case netlist.Const0:
			vals[id] = false
		case netlist.Const1:
			vals[id] = true
		case netlist.Buf:
			vals[id] = vals[g.Fanin[0]]
		case netlist.Not:
			vals[id] = !vals[g.Fanin[0]]
		case netlist.And, netlist.Nand:
			v := true
			for _, f := range g.Fanin {
				v = v && vals[f]
			}
			vals[id] = v != (g.Type == netlist.Nand)
		case netlist.Or, netlist.Nor:
			v := false
			for _, f := range g.Fanin {
				v = v || vals[f]
			}
			vals[id] = v != (g.Type == netlist.Nor)
		case netlist.Xor, netlist.Xnor:
			v := false
			for _, f := range g.Fanin {
				v = v != vals[f]
			}
			vals[id] = v != (g.Type == netlist.Xnor)
		}
	}
	out := make([]bool, len(c.POs))
	for i, id := range c.POs {
		out[i] = vals[id]
	}
	return out, nil
}

// EvalAll evaluates a single pattern and returns the value of every node.
// It is used by attacks that need internal visibility (e.g. sensitization)
// and by tests.
func EvalAll(c *netlist.Circuit, assign []bool) ([]bool, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	if len(assign) != len(c.Gates) {
		return nil, fmt.Errorf("sim: EvalAll needs one seed value per node (%d), got %d", len(c.Gates), len(assign))
	}
	vals := append([]bool(nil), assign...)
	for _, id := range order {
		g := &c.Gates[id]
		switch g.Type {
		case netlist.Input:
		case netlist.Const0:
			vals[id] = false
		case netlist.Const1:
			vals[id] = true
		case netlist.Buf:
			vals[id] = vals[g.Fanin[0]]
		case netlist.Not:
			vals[id] = !vals[g.Fanin[0]]
		case netlist.And, netlist.Nand:
			v := true
			for _, f := range g.Fanin {
				v = v && vals[f]
			}
			vals[id] = v != (g.Type == netlist.Nand)
		case netlist.Or, netlist.Nor:
			v := false
			for _, f := range g.Fanin {
				v = v || vals[f]
			}
			vals[id] = v != (g.Type == netlist.Nor)
		case netlist.Xor, netlist.Xnor:
			v := false
			for _, f := range g.Fanin {
				v = v != vals[f]
			}
			vals[id] = v != (g.Type == netlist.Xnor)
		}
	}
	return vals, nil
}

// PopCount returns the number of set bits across the first n bits of w.
func PopCount(w []uint64, n int) int {
	total := 0
	full := n / 64
	for i := 0; i < full && i < len(w); i++ {
		total += bits.OnesCount64(w[i])
	}
	if rem := n % 64; rem > 0 && full < len(w) {
		total += bits.OnesCount64(w[full] & (1<<uint(rem) - 1))
	}
	return total
}

// DiffBits XORs two equal-length word vectors and counts differing bits
// among the first n patterns.
func DiffBits(a, b []uint64, n int) int {
	total := 0
	full := n / 64
	for i := 0; i < full; i++ {
		total += bits.OnesCount64(a[i] ^ b[i])
	}
	if rem := n % 64; rem > 0 {
		total += bits.OnesCount64((a[full] ^ b[full]) & (1<<uint(rem) - 1))
	}
	return total
}
