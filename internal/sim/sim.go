// Package sim evaluates combinational circuits.
//
// The workhorse is the 64-way bit-parallel simulator: every node carries a
// vector of 64-bit words, so one pass over the netlist evaluates 64 input
// patterns per word. This is the engine behind the Hamming-distance
// corruptibility measurements of Table I (hundreds of thousands of
// pseudorandom patterns), the fault simulator, and the attack oracles.
//
// All evaluation runs over the compiled circuit IR (internal/ir): an
// evaluator compiles its circuit once at construction and then walks
// flat opcode/fanin arrays, and clones share the immutable program, so
// any number of evaluators may run concurrently with no warm-up.
package sim

import (
	"fmt"
	"math/bits"
	"sync"

	"orap/internal/ir"
	"orap/internal/netlist"
	"orap/internal/rng"
)

// valsPool recycles value buffers between evaluators. Workers that clone
// an evaluator per task (the parallel HD and fault-simulation drivers)
// would otherwise allocate len(Gates)×words words per clone; Release puts
// the buffer back so the next Clone or NewParallel reuses it.
var valsPool sync.Pool

// grabVals returns a zeroed buffer of n words, reusing a pooled one when
// it is large enough.
func grabVals(n int) []uint64 {
	if p, ok := valsPool.Get().(*[]uint64); ok {
		if cap(*p) >= n {
			v := (*p)[:n]
			for i := range v {
				v[i] = 0
			}
			return v
		}
	}
	return make([]uint64, n)
}

// Parallel is a reusable bit-parallel evaluator for a fixed circuit and a
// fixed number of 64-pattern words.
type Parallel struct {
	prog  *ir.Program
	words int
	vals  []uint64 // node-major: vals[id*words : (id+1)*words]
}

// NewParallel compiles c and builds an evaluator carrying words×64
// patterns.
func NewParallel(c *netlist.Circuit, words int) (*Parallel, error) {
	prog, err := ir.Compile(c)
	if err != nil {
		return nil, err
	}
	return ForProgram(prog, words)
}

// ForProgram builds an evaluator over an already-compiled program,
// sharing it read-only with any other consumer.
func ForProgram(prog *ir.Program, words int) (*Parallel, error) {
	if words <= 0 {
		return nil, fmt.Errorf("sim: words must be positive, got %d", words)
	}
	return &Parallel{
		prog:  prog,
		words: words,
		vals:  grabVals(prog.NumNodes() * words),
	}, nil
}

// Program returns the compiled program the evaluator runs; it is
// immutable and may be shared with other evaluators and backends.
func (p *Parallel) Program() *ir.Program { return p.prog }

// Clone returns an independent evaluator for the same circuit and word
// count. The immutable compiled program is shared; only the value
// buffer is private, so clones are cheap and safe to run concurrently.
// Pair with Release when the clone is short-lived.
func (p *Parallel) Clone() *Parallel {
	return &Parallel{
		prog:  p.prog,
		words: p.words,
		vals:  grabVals(p.prog.NumNodes() * p.words),
	}
}

// Release returns the evaluator's value buffer to a shared pool for reuse
// by later NewParallel/Clone calls. The evaluator must not be used
// afterwards.
func (p *Parallel) Release() {
	v := p.vals
	p.vals = nil
	valsPool.Put(&v)
}

// Words returns the number of 64-pattern words per node.
func (p *Parallel) Words() int { return p.words }

// Patterns returns the number of patterns evaluated per run (words × 64).
func (p *Parallel) Patterns() int { return p.words * 64 }

// Value returns the value words of node id. The returned slice aliases the
// simulator's buffer; it is valid until the next Run and must not be
// modified except for input nodes via SetInput.
func (p *Parallel) Value(id int) []uint64 {
	return p.vals[id*p.words : (id+1)*p.words]
}

// SetInput copies the given pattern words into input node id.
func (p *Parallel) SetInput(id int, w []uint64) {
	copy(p.Value(id), w)
}

// SetInputConst sets all patterns of input node id to the same bit.
func (p *Parallel) SetInputConst(id int, v bool) {
	var word uint64
	if v {
		word = ^uint64(0)
	}
	dst := p.Value(id)
	for i := range dst {
		dst[i] = word
	}
}

// Run evaluates every gate in topological order. Input node values must
// have been set beforehand; values of non-input nodes are overwritten.
func (p *Parallel) Run() {
	p.prog.RunWords(p.vals, p.words)
}

// RandomizeInputs fills every primary input with pseudo-random patterns
// from r, leaving key inputs untouched.
func (p *Parallel) RandomizeInputs(r *rng.Stream) {
	for _, id := range p.prog.PIs {
		r.Words(p.Value(int(id)))
	}
}

// SetKey applies the given key bits to the circuit's key inputs, each bit
// replicated across all patterns. len(key) must equal the key width.
func (p *Parallel) SetKey(key []bool) error {
	if len(key) != p.prog.NumKeys() {
		return fmt.Errorf("sim: key width %d does not match circuit key width %d", len(key), p.prog.NumKeys())
	}
	for i, id := range p.prog.Keys {
		p.SetInputConst(int(id), key[i])
	}
	return nil
}

// Evaluator is a reusable single-pattern evaluator over a compiled
// program. It amortizes the per-node value buffer across calls, so
// oracles and attack loops that evaluate the same circuit thousands of
// times pay the compile cost once and no allocation per query beyond
// the returned output slice. Not safe for concurrent use; clone per
// goroutine (or call ir.Program.Eval, which is).
type Evaluator struct {
	prog *ir.Program
	vals []bool
}

// NewEvaluator compiles c and returns a reusable single-pattern
// evaluator.
func NewEvaluator(c *netlist.Circuit) (*Evaluator, error) {
	prog, err := ir.Compile(c)
	if err != nil {
		return nil, err
	}
	return EvaluatorFor(prog), nil
}

// EvaluatorFor returns a reusable single-pattern evaluator over an
// already-compiled program.
func EvaluatorFor(prog *ir.Program) *Evaluator {
	return &Evaluator{prog: prog, vals: make([]bool, prog.NumNodes())}
}

// Program returns the evaluator's compiled program.
func (e *Evaluator) Program() *ir.Program { return e.prog }

// Eval evaluates one pattern and returns a fresh primary-output slice in
// declaration order.
func (e *Evaluator) Eval(pi, key []bool) ([]bool, error) {
	if len(pi) != e.prog.NumInputs() {
		return nil, fmt.Errorf("sim: got %d primary input bits, circuit has %d", len(pi), e.prog.NumInputs())
	}
	if len(key) != e.prog.NumKeys() {
		return nil, fmt.Errorf("sim: got %d key bits, circuit has %d", len(key), e.prog.NumKeys())
	}
	e.prog.EvalInto(e.vals, pi, key)
	out := make([]bool, e.prog.NumOutputs())
	for i, id := range e.prog.POs {
		out[i] = e.vals[id]
	}
	return out, nil
}

// Eval evaluates the circuit on a single pattern given as primary-input and
// key bit slices, returning the primary output bits in declaration order.
// It compiles the circuit per call; loops should hold an Evaluator (or a
// compiled ir.Program) instead.
func Eval(c *netlist.Circuit, pi, key []bool) ([]bool, error) {
	prog, err := ir.Compile(c)
	if err != nil {
		return nil, err
	}
	return prog.Eval(pi, key)
}

// EvalAll evaluates a single pattern and returns the value of every node.
// It is used by attacks that need internal visibility (e.g. sensitization)
// and by tests.
func EvalAll(c *netlist.Circuit, assign []bool) ([]bool, error) {
	prog, err := ir.Compile(c)
	if err != nil {
		return nil, err
	}
	if len(assign) != prog.NumNodes() {
		return nil, fmt.Errorf("sim: EvalAll needs one seed value per node (%d), got %d", prog.NumNodes(), len(assign))
	}
	vals := append([]bool(nil), assign...)
	prog.RunBools(vals)
	return vals, nil
}

// PopCount returns the number of set bits across the first n bits of w.
func PopCount(w []uint64, n int) int {
	total := 0
	full := n / 64
	for i := 0; i < full && i < len(w); i++ {
		total += bits.OnesCount64(w[i])
	}
	if rem := n % 64; rem > 0 && full < len(w) {
		total += bits.OnesCount64(w[full] & (1<<uint(rem) - 1))
	}
	return total
}

// DiffBits XORs two equal-length word vectors and counts differing bits
// among the first n patterns.
func DiffBits(a, b []uint64, n int) int {
	total := 0
	full := n / 64
	for i := 0; i < full; i++ {
		total += bits.OnesCount64(a[i] ^ b[i])
	}
	if rem := n % 64; rem > 0 {
		total += bits.OnesCount64((a[full] ^ b[full]) & (1<<uint(rem) - 1))
	}
	return total
}
