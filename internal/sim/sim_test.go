package sim

import (
	"testing"
	"testing/quick"

	"orap/internal/circuits"
	"orap/internal/netlist"
	"orap/internal/rng"
)

// c17Reference computes c17's outputs directly from its NAND equations.
func c17Reference(g1, g2, g3, g6, g7 bool) (g22, g23 bool) {
	nand := func(a, b bool) bool { return !(a && b) }
	g10 := nand(g1, g3)
	g11 := nand(g3, g6)
	g16 := nand(g2, g11)
	g19 := nand(g11, g7)
	return nand(g10, g16), nand(g16, g19)
}

func TestEvalC17Exhaustive(t *testing.T) {
	c := circuits.C17()
	for v := 0; v < 32; v++ {
		in := make([]bool, 5)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		out, err := Eval(c, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		w22, w23 := c17Reference(in[0], in[1], in[2], in[3], in[4])
		if out[0] != w22 || out[1] != w23 {
			t.Fatalf("input %05b: got (%v,%v), want (%v,%v)", v, out[0], out[1], w22, w23)
		}
	}
}

func TestEvalFullAdder(t *testing.T) {
	c := circuits.FullAdder()
	for v := 0; v < 8; v++ {
		a, b, cin := v&1 == 1, v>>1&1 == 1, v>>2&1 == 1
		out, err := Eval(c, []bool{a, b, cin}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sum := a != b != cin
		n := 0
		for _, x := range []bool{a, b, cin} {
			if x {
				n++
			}
		}
		cout := n >= 2
		if out[0] != sum || out[1] != cout {
			t.Fatalf("a=%v b=%v cin=%v: got (%v,%v), want (%v,%v)", a, b, cin, out[0], out[1], sum, cout)
		}
	}
}

func TestRippleAdderAddsIntegers(t *testing.T) {
	const n = 8
	c := circuits.RippleAdder(n)
	check := func(a, b uint8, cin bool) bool {
		in := make([]bool, 2*n+1)
		for i := 0; i < n; i++ {
			in[i] = a>>uint(i)&1 == 1
			in[n+i] = b>>uint(i)&1 == 1
		}
		in[2*n] = cin
		out, err := Eval(c, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := uint16(a) + uint16(b)
		if cin {
			want++
		}
		got := uint16(0)
		for i := 0; i < n; i++ {
			if out[i] {
				got |= 1 << uint(i)
			}
		}
		if out[n] {
			got |= 1 << n
		}
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesScalar(t *testing.T) {
	c := circuits.C17()
	p, err := NewParallel(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(123)
	p.RandomizeInputs(r)
	p.Run()
	// Cross-check 40 of the 128 patterns against scalar evaluation.
	for pat := 0; pat < 128; pat += 3 {
		in := make([]bool, 5)
		for i, id := range c.PIs {
			in[i] = p.Value(id)[pat/64]>>(uint(pat)%64)&1 == 1
		}
		want, err := Eval(c, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		for oi, id := range c.POs {
			got := p.Value(id)[pat/64]>>(uint(pat)%64)&1 == 1
			if got != want[oi] {
				t.Fatalf("pattern %d output %d: parallel %v, scalar %v", pat, oi, got, want[oi])
			}
		}
	}
}

func TestParallelKeyedCircuit(t *testing.T) {
	c := netlist.New("keyed")
	a, _ := c.AddInput("a")
	k, _ := c.AddKeyInput("keyinput0")
	g := c.MustAddGate(netlist.Xor, "y", a, k)
	c.MarkOutput(g)

	p, err := NewParallel(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.SetInput(a, []uint64{0x00000000ffffffff})
	if err := p.SetKey([]bool{true}); err != nil {
		t.Fatal(err)
	}
	p.Run()
	if got := p.Value(g)[0]; got != ^uint64(0x00000000ffffffff) {
		t.Fatalf("XOR with key=1 wrong: %016x", got)
	}
	if err := p.SetKey([]bool{false}); err != nil {
		t.Fatal(err)
	}
	p.Run()
	if got := p.Value(g)[0]; got != 0x00000000ffffffff {
		t.Fatalf("XOR with key=0 wrong: %016x", got)
	}
}

func TestSetKeyWidthChecked(t *testing.T) {
	c := circuits.C17()
	p, _ := NewParallel(c, 1)
	if err := p.SetKey([]bool{true}); err == nil {
		t.Fatal("SetKey accepted wrong width")
	}
}

func TestEvalWidthChecked(t *testing.T) {
	c := circuits.C17()
	if _, err := Eval(c, []bool{true}, nil); err == nil {
		t.Fatal("Eval accepted wrong PI width")
	}
	if _, err := Eval(c, make([]bool, 5), []bool{true}); err == nil {
		t.Fatal("Eval accepted wrong key width")
	}
}

func TestConstantsAndInverters(t *testing.T) {
	c := netlist.New("consts")
	a, _ := c.AddInput("a")
	one, _ := c.AddConst(true, "one")
	zero, _ := c.AddConst(false, "zero")
	na := c.MustAddGate(netlist.Not, "na", a)
	buf := c.MustAddGate(netlist.Buf, "buf", na)
	o1 := c.MustAddGate(netlist.And, "o1", buf, one)
	o2 := c.MustAddGate(netlist.Or, "o2", a, zero)
	c.MarkOutput(o1)
	c.MarkOutput(o2)
	out, err := Eval(c, []bool{true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false || out[1] != true {
		t.Fatalf("got (%v,%v), want (false,true)", out[0], out[1])
	}
	out, _ = Eval(c, []bool{false}, nil)
	if out[0] != true || out[1] != false {
		t.Fatalf("got (%v,%v), want (true,false)", out[0], out[1])
	}
}

func TestMultiInputGates(t *testing.T) {
	c := netlist.New("wide")
	var ins []int
	for i := 0; i < 5; i++ {
		id, _ := c.AddInput(string(rune('a' + i)))
		ins = append(ins, id)
	}
	and := c.MustAddGate(netlist.And, "and5", ins...)
	or := c.MustAddGate(netlist.Or, "or5", ins...)
	xor := c.MustAddGate(netlist.Xor, "xor5", ins...)
	for _, id := range []int{and, or, xor} {
		c.MarkOutput(id)
	}
	for v := 0; v < 32; v++ {
		in := make([]bool, 5)
		ones := 0
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
			if in[i] {
				ones++
			}
		}
		out, err := Eval(c, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != (ones == 5) || out[1] != (ones > 0) || out[2] != (ones%2 == 1) {
			t.Fatalf("v=%05b: and=%v or=%v xor=%v (ones=%d)", v, out[0], out[1], out[2], ones)
		}
	}
}

func TestPopCountPartialWord(t *testing.T) {
	w := []uint64{^uint64(0), ^uint64(0)}
	if got := PopCount(w, 70); got != 70 {
		t.Fatalf("PopCount over 70 bits = %d", got)
	}
	if got := PopCount(w, 128); got != 128 {
		t.Fatalf("PopCount over 128 bits = %d", got)
	}
	if got := PopCount(w, 0); got != 0 {
		t.Fatalf("PopCount over 0 bits = %d", got)
	}
}

func TestDiffBits(t *testing.T) {
	a := []uint64{0xff, 0x1}
	b := []uint64{0x0f, 0x0}
	if got := DiffBits(a, b, 128); got != 5 {
		t.Fatalf("DiffBits = %d, want 5", got)
	}
	if got := DiffBits(a, b, 6); got != 2 {
		t.Fatalf("DiffBits over 6 bits = %d, want 2", got)
	}
}

func TestNewParallelRejectsZeroWords(t *testing.T) {
	if _, err := NewParallel(circuits.C17(), 0); err == nil {
		t.Fatal("NewParallel accepted 0 words")
	}
}

func BenchmarkParallelC17(b *testing.B) {
	c := circuits.C17()
	p, _ := NewParallel(c, 16)
	r := rng.New(1)
	p.RandomizeInputs(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run()
	}
}

func TestCloneMatchesOriginal(t *testing.T) {
	c := circuits.RippleAdder(8)
	p, err := NewParallel(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	r1, r2 := rng.New(55), rng.New(55)
	p.RandomizeInputs(r1)
	q.RandomizeInputs(r2)
	p.Run()
	q.Run()
	for _, id := range c.POs {
		pv, qv := p.Value(id), q.Value(id)
		for w := range pv {
			if pv[w] != qv[w] {
				t.Fatalf("clone diverged on node %d word %d: %x vs %x", id, w, pv[w], qv[w])
			}
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	c := circuits.C17()
	p, _ := NewParallel(c, 1)
	q := p.Clone()
	p.SetInputConst(c.PIs[0], true)
	if q.Value(c.PIs[0])[0] != 0 {
		t.Fatal("writing the original's inputs leaked into the clone")
	}
}

func TestReleaseRecyclesBuffers(t *testing.T) {
	// A released buffer must come back zeroed through the pool, so a
	// fresh evaluator cannot observe a previous user's values. (Whether
	// the pool actually returns it is up to the runtime; correctness must
	// hold either way.)
	c := circuits.C17()
	p, _ := NewParallel(c, 2)
	for _, id := range c.PIs {
		p.SetInputConst(id, true)
	}
	p.Run()
	p.Release()
	q, _ := NewParallel(c, 2)
	for id := range c.Gates {
		for _, w := range q.Value(id) {
			if w != 0 {
				t.Fatalf("fresh evaluator saw stale value %x on node %d", w, id)
			}
		}
	}
}

// BenchmarkCloneRelease measures the per-worker evaluator setup cost with
// buffer pooling (run with -benchmem: steady state allocates nothing for
// the value buffer).
func BenchmarkCloneRelease(b *testing.B) {
	c := circuits.RippleAdder(64)
	p, _ := NewParallel(c, 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := p.Clone()
		q.Release()
	}
}

// BenchmarkNewParallelNoPool is the no-reuse baseline for
// BenchmarkCloneRelease: a fresh evaluator per iteration whose buffer is
// never returned to the pool.
func BenchmarkNewParallelNoPool(b *testing.B) {
	c := circuits.RippleAdder(64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewParallel(c, 64); err != nil {
			b.Fatal(err)
		}
	}
}
