package circuits

import (
	"testing"
	"testing/quick"

	"orap/internal/sim"
)

func TestC17Shape(t *testing.T) {
	c := C17()
	if c.NumInputs() != 5 || c.NumOutputs() != 2 || c.GateCount() != 6 {
		t.Fatalf("c17 shape wrong: %s", c.Summary())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFullAdderTruthTable(t *testing.T) {
	c := FullAdder()
	for v := 0; v < 8; v++ {
		a, b, cin := v&1 == 1, v>>1&1 == 1, v>>2&1 == 1
		out, err := sim.Eval(c, []bool{a, b, cin}, nil)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, x := range []bool{a, b, cin} {
			if x {
				n++
			}
		}
		if out[0] != (n%2 == 1) || out[1] != (n >= 2) {
			t.Fatalf("full adder wrong at %03b", v)
		}
	}
}

func TestRippleAdderProperty(t *testing.T) {
	c := RippleAdder(10)
	check := func(a, b uint16, cin bool) bool {
		a &= 0x3ff
		b &= 0x3ff
		in := make([]bool, 21)
		for i := 0; i < 10; i++ {
			in[i] = a>>uint(i)&1 == 1
			in[10+i] = b>>uint(i)&1 == 1
		}
		in[20] = cin
		out, err := sim.Eval(c, in, nil)
		if err != nil {
			return false
		}
		want := uint32(a) + uint32(b)
		if cin {
			want++
		}
		var got uint32
		for i := 0; i <= 10; i++ {
			if out[i] {
				got |= 1 << uint(i)
			}
		}
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParityProperty(t *testing.T) {
	for _, n := range []int{2, 3, 7, 16, 33} {
		c := Parity(n)
		if c.NumOutputs() != 1 {
			t.Fatalf("parity%d has %d outputs", n, c.NumOutputs())
		}
		in := make([]bool, n)
		// All-zero → 0; single one → 1; all ones → n mod 2.
		out, _ := sim.Eval(c, in, nil)
		if out[0] {
			t.Fatalf("parity%d(0…0) = 1", n)
		}
		in[n/2] = true
		out, _ = sim.Eval(c, in, nil)
		if !out[0] {
			t.Fatalf("parity%d(single 1) = 0", n)
		}
		for i := range in {
			in[i] = true
		}
		out, _ = sim.Eval(c, in, nil)
		if out[0] != (n%2 == 1) {
			t.Fatalf("parity%d(all 1) wrong", n)
		}
	}
}

func TestComparator4(t *testing.T) {
	c := Comparator4()
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			in := make([]bool, 8)
			for i := 0; i < 4; i++ {
				in[2*i] = a>>uint(i)&1 == 1
				in[2*i+1] = b>>uint(i)&1 == 1
			}
			out, err := sim.Eval(c, in, nil)
			if err != nil {
				t.Fatal(err)
			}
			if out[0] != (a == b) {
				t.Fatalf("cmp4(%d, %d) = %v", a, b, out[0])
			}
		}
	}
}

func TestMux21(t *testing.T) {
	c := Mux21()
	for v := 0; v < 8; v++ {
		a, b, s := v&1 == 1, v>>1&1 == 1, v>>2&1 == 1
		out, err := sim.Eval(c, []bool{a, b, s}, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := a
		if s {
			want = b
		}
		if out[0] != want {
			t.Fatalf("mux(%v,%v,%v) = %v", a, b, s, out[0])
		}
	}
}

func TestParityPanicsBelowTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Parity(1) did not panic")
		}
	}()
	Parity(1)
}
