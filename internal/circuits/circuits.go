// Package circuits provides small, well-known reference circuits used by
// tests, examples and documentation: the ISCAS'85 c17 benchmark, a ripple
// full adder, a 4-bit comparator and a parity tree. These are real,
// hand-checked netlists (not generated), so tests can assert exact
// functional behaviour.
package circuits

import (
	"fmt"

	"orap/internal/bench"
	"orap/internal/netlist"
)

// C17Bench is the ISCAS'85 c17 benchmark in .bench syntax: 5 inputs,
// 2 outputs, 6 NAND2 gates.
const C17Bench = `# c17 (ISCAS'85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

// C17 returns the ISCAS'85 c17 benchmark circuit.
func C17() *netlist.Circuit {
	c, err := bench.ParseString(C17Bench, "c17")
	if err != nil {
		panic(fmt.Sprintf("circuits: c17 failed to parse: %v", err))
	}
	return c
}

// FullAdder returns a 1-bit full adder: inputs a, b, cin; outputs sum, cout.
func FullAdder() *netlist.Circuit {
	c := netlist.New("fulladder")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	cin, _ := c.AddInput("cin")
	axb := c.MustAddGate(netlist.Xor, "axb", a, b)
	sum := c.MustAddGate(netlist.Xor, "sum", axb, cin)
	ab := c.MustAddGate(netlist.And, "ab", a, b)
	axbc := c.MustAddGate(netlist.And, "axbc", axb, cin)
	cout := c.MustAddGate(netlist.Or, "cout", ab, axbc)
	c.MarkOutput(sum)
	c.MarkOutput(cout)
	return c
}

// RippleAdder returns an n-bit ripple-carry adder with inputs a0..a(n-1),
// b0..b(n-1), cin and outputs s0..s(n-1), cout.
func RippleAdder(n int) *netlist.Circuit {
	c := netlist.New(fmt.Sprintf("ripple%d", n))
	as := make([]int, n)
	bs := make([]int, n)
	for i := 0; i < n; i++ {
		as[i], _ = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i], _ = c.AddInput(fmt.Sprintf("b%d", i))
	}
	carry, _ := c.AddInput("cin")
	for i := 0; i < n; i++ {
		axb := c.MustAddGate(netlist.Xor, fmt.Sprintf("axb%d", i), as[i], bs[i])
		sum := c.MustAddGate(netlist.Xor, fmt.Sprintf("s%d", i), axb, carry)
		ab := c.MustAddGate(netlist.And, fmt.Sprintf("ab%d", i), as[i], bs[i])
		ac := c.MustAddGate(netlist.And, fmt.Sprintf("ac%d", i), axb, carry)
		carry = c.MustAddGate(netlist.Or, fmt.Sprintf("c%d", i+1), ab, ac)
		c.MarkOutput(sum)
	}
	c.Rename(carry, "cout")
	c.MarkOutput(carry)
	return c
}

// Parity returns an n-input parity (XOR) tree with a single output "p".
func Parity(n int) *netlist.Circuit {
	if n < 2 {
		panic("circuits: Parity needs at least 2 inputs")
	}
	c := netlist.New(fmt.Sprintf("parity%d", n))
	ids := make([]int, n)
	for i := range ids {
		ids[i], _ = c.AddInput(fmt.Sprintf("x%d", i))
	}
	for len(ids) > 1 {
		var next []int
		for i := 0; i+1 < len(ids); i += 2 {
			next = append(next, c.MustAddGate(netlist.Xor, "", ids[i], ids[i+1]))
		}
		if len(ids)%2 == 1 {
			next = append(next, ids[len(ids)-1])
		}
		ids = next
	}
	c.Rename(ids[0], "p")
	c.MarkOutput(ids[0])
	return c
}

// Comparator4 returns a 4-bit equality comparator: output eq is 1 iff
// a3..a0 equals b3..b0.
func Comparator4() *netlist.Circuit {
	c := netlist.New("cmp4")
	var eqs []int
	for i := 0; i < 4; i++ {
		a, _ := c.AddInput(fmt.Sprintf("a%d", i))
		b, _ := c.AddInput(fmt.Sprintf("b%d", i))
		eqs = append(eqs, c.MustAddGate(netlist.Xnor, fmt.Sprintf("eq%d", i), a, b))
	}
	out := c.MustAddGate(netlist.And, "eq", eqs[0], eqs[1], eqs[2], eqs[3])
	c.MarkOutput(out)
	return c
}

// Mux21 returns a 2:1 multiplexer: out = s ? b : a, built from basic gates.
func Mux21() *netlist.Circuit {
	c := netlist.New("mux21")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	s, _ := c.AddInput("s")
	ns := c.MustAddGate(netlist.Not, "ns", s)
	t0 := c.MustAddGate(netlist.And, "t0", a, ns)
	t1 := c.MustAddGate(netlist.And, "t1", b, s)
	out := c.MustAddGate(netlist.Or, "out", t0, t1)
	c.MarkOutput(out)
	return c
}
