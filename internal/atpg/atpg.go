// Package atpg generates stuck-at-fault test patterns, the role Atalanta
// plays in the paper's Table II flow.
//
// The generator is SAT-based rather than PODEM-based: for every target
// fault it encodes the good and faulty circuits (restricted to the
// fault's cone of influence) sharing their inputs, asserts that some
// reachable output differs, and asks the CDCL solver for a pattern. The
// classification matches the classic ATPG vocabulary exactly:
//
//   - SAT        → a test pattern (returned and fault-simulated),
//   - UNSAT      → the fault is provably redundant,
//   - budget hit → the fault is aborted.
//
// Key inputs are treated as ordinary, freely controllable inputs: under
// OraP the key register is wired into the scan chains, so "the tool was
// allowed to set any value to the key inputs" (Table II's setup).
//
// A campaign compiles the circuit once (or reuses the fault simulator's
// compiled program) and encodes every fault cone from the flat IR view;
// the Tseitin clauses themselves come from cnf.EmitGate, so the ATPG and
// attack SAT paths share one gate encoding.
package atpg

import (
	"fmt"

	"orap/internal/cnf"
	"orap/internal/faultsim"
	"orap/internal/ir"
	"orap/internal/netlist"
	"orap/internal/sat"
)

// Class is the ATPG outcome for a single fault.
type Class int

// Fault classes.
const (
	// Detected faults have a generated (or fault-simulated) pattern.
	Detected Class = iota
	// Redundant faults are proven untestable.
	Redundant
	// Aborted faults exceeded the effort budget undecided.
	Aborted
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Detected:
		return "detected"
	case Redundant:
		return "redundant"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Options bounds ATPG effort.
type Options struct {
	// ConflictBudget bounds SAT conflicts per fault (the "backtrack
	// limit"); 0 means 20000, mirroring a high-effort Atalanta run.
	ConflictBudget int64
}

func (o Options) budget() int64 {
	if o.ConflictBudget > 0 {
		return o.ConflictBudget
	}
	return 20000
}

// Outcome reports one fault's result.
type Outcome struct {
	Fault   faultsim.Fault
	Class   Class
	Pattern []bool // inputs then keys; nil unless Detected by this call
	// Solver carries the per-fault SAT effort (conflicts, propagations,
	// learned-clause figures).
	Solver sat.Stats
}

// Generate targets one fault and returns its outcome. It compiles the
// circuit per call; campaigns should compile once and use
// GenerateProgram (Run does so automatically).
func Generate(c *netlist.Circuit, f faultsim.Fault, opts Options) (Outcome, error) {
	prog, err := ir.Compile(c)
	if err != nil {
		return Outcome{}, err
	}
	return GenerateProgram(prog, f, opts)
}

// GenerateProgram targets one fault of an already-compiled circuit and
// returns its outcome.
func GenerateProgram(prog *ir.Program, f faultsim.Fault, opts Options) (Outcome, error) {
	s := sat.New()
	s.MaxConflicts = opts.budget()

	enc, err := encodeFaultCone(s, prog, f)
	if err != nil {
		return Outcome{}, err
	}
	ok, err := s.Solve()
	if err == sat.ErrBudget {
		return Outcome{Fault: f, Class: Aborted, Solver: s.Stats()}, nil
	}
	if err != nil {
		return Outcome{}, err
	}
	if !ok {
		return Outcome{Fault: f, Class: Redundant, Solver: s.Stats()}, nil
	}
	pattern := make([]bool, len(prog.Inputs))
	for i, id := range prog.Inputs {
		if v := enc.inputVar[int(id)]; v >= 0 {
			pattern[i] = s.Value(v) == sat.True
		}
		// Inputs outside the cone stay false; any value works.
	}
	return Outcome{Fault: f, Class: Detected, Pattern: pattern, Solver: s.Stats()}, nil
}

// coneEncoding carries the variable maps of the restricted good/faulty
// encoding.
type coneEncoding struct {
	inputVar map[int]sat.Var // circuit input node -> shared variable
}

// encodeFaultCone adds CNF for the good and faulty circuit restricted to
// the union of the fault's output cone and that cone's input support,
// sharing input variables, and asserts that an observed output differs.
func encodeFaultCone(s *sat.Solver, prog *ir.Program, f faultsim.Fault) (*coneEncoding, error) {
	if f.Node < 0 || f.Node >= prog.NumNodes() {
		return nil, fmt.Errorf("atpg: fault node %d out of range", f.Node)
	}
	// Influence region: transitive fanout of the fault node; support:
	// transitive fanin of that region.
	influenced := prog.TransitiveFanout(f.Node)
	need := make([]bool, prog.NumNodes())
	stack := []int{}
	for id := range influenced {
		if influenced[id] {
			need[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fi := range prog.FaninSpan(id) {
			if !need[fi] {
				need[fi] = true
				stack = append(stack, int(fi))
			}
		}
	}

	goodVar := make([]sat.Var, prog.NumNodes())
	faultVar := make([]sat.Var, prog.NumNodes())
	for i := range goodVar {
		goodVar[i] = -1
		faultVar[i] = -1
	}
	enc := &coneEncoding{inputVar: make(map[int]sat.Var)}

	lits := func(vars []sat.Var, ids []int32) []sat.Lit {
		ls := make([]sat.Lit, len(ids))
		for i, id := range ids {
			ls[i] = sat.MkLit(vars[id], false)
		}
		return ls
	}

	for _, id32 := range prog.Order {
		id := int(id32)
		if !need[id] {
			continue
		}
		op := prog.Ops[id]
		fanin := prog.FaninSpan(id)
		// Good copy.
		gv := s.NewVar()
		goodVar[id] = gv
		if op == ir.OpInput {
			enc.inputVar[id] = gv
		} else {
			if err := cnf.EmitGate(s, op, sat.MkLit(gv, false), lits(goodVar, fanin)); err != nil {
				return nil, err
			}
		}
		// Faulty copy: nodes outside the influenced region share the
		// good variable; influenced nodes get their own, with the fault
		// injected at the fault site.
		if !influenced[id] {
			faultVar[id] = gv
			continue
		}
		fv := s.NewVar()
		faultVar[id] = fv
		switch {
		case id == f.Node && f.Pin < 0:
			// Output fault: the node is a constant.
			s.AddClause(sat.MkLit(fv, !f.SA1))
		case op == ir.OpInput:
			// An influenced input can only be the fault node itself
			// (inputs have no fanin); constrain equal to good.
			s.AddClause(sat.MkLit(fv, true), sat.MkLit(gv, false))
			s.AddClause(sat.MkLit(fv, false), sat.MkLit(gv, true))
		default:
			fan := lits(faultVar, fanin)
			if id == f.Node && f.Pin >= 0 {
				// Input-pin fault: replace that pin with a constant.
				cv := s.NewVar()
				s.AddClause(sat.MkLit(cv, !f.SA1))
				fan[f.Pin] = sat.MkLit(cv, false)
			}
			if err := cnf.EmitGate(s, op, sat.MkLit(fv, false), fan); err != nil {
				return nil, err
			}
		}
	}

	// Some observed output in the influenced region must differ.
	var diffs []sat.Lit
	for _, o := range prog.POs {
		if !influenced[o] {
			continue
		}
		d := sat.MkLit(s.NewVar(), false)
		cnf.EmitXor2(s, d, sat.MkLit(goodVar[o], false), sat.MkLit(faultVar[o], false))
		diffs = append(diffs, d)
	}
	if len(diffs) == 0 {
		// Fault effect cannot reach any output: structurally redundant.
		s.AddClause() // empty clause: force UNSAT
		return enc, nil
	}
	s.AddClause(diffs...)
	return enc, nil
}

// Summary aggregates a full ATPG campaign.
type Summary struct {
	Total     int
	Detected  int
	Redundant int
	Aborted   int
	// Patterns holds the generated test patterns (deduplicated runs may
	// hold fewer than Detected).
	Patterns [][]bool
	// Solver aggregates the SAT effort across every targeted fault.
	Solver sat.Stats
}

// Coverage returns the stuck-at fault coverage in percent: detected over
// total, the definition Table II reports.
func (s Summary) Coverage() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.Detected) / float64(s.Total)
}

// RedundantPlusAborted returns the paper's "# Red.+Abrt faults" column.
func (s Summary) RedundantPlusAborted() int { return s.Redundant + s.Aborted }

// Run performs the full Table II flow on a circuit: collapse the fault
// list, drop the easy faults with `randomBlocks` blocks of random-pattern
// fault simulation (the HOPE step), then target every remaining fault
// with the SAT generator. Each generated pattern is fault-simulated with
// dropping so later faults skip generation when already covered. The
// fault simulator's compiled program is reused for every cone encoding,
// so the circuit is never recompiled per fault.
func Run(c *netlist.Circuit, fsim *faultsim.Simulator, randomResult faultsim.Result, opts Options) (Summary, error) {
	prog := fsim.Program()
	sum := Summary{Total: randomResult.Total, Detected: randomResult.Detected}
	live := append([]faultsim.Fault(nil), randomResult.Remaining...)
	for len(live) > 0 {
		f := live[0]
		live = live[1:]
		out, err := GenerateProgram(prog, f, opts)
		if err != nil {
			return sum, err
		}
		sum.Solver.Add(out.Solver)
		switch out.Class {
		case Redundant:
			sum.Redundant++
		case Aborted:
			sum.Aborted++
		case Detected:
			sum.Detected++
			sum.Patterns = append(sum.Patterns, out.Pattern)
			// Drop any other live fault the new pattern detects.
			kept := live[:0]
			for _, g := range live {
				hit, err := fsim.DetectsWithPattern(g, out.Pattern)
				if err != nil {
					return sum, err
				}
				if hit {
					sum.Detected++
				} else {
					kept = append(kept, g)
				}
			}
			live = kept
		}
	}
	return sum, nil
}
