// Package atpg generates stuck-at-fault test patterns, the role Atalanta
// plays in the paper's Table II flow.
//
// The generator is SAT-based rather than PODEM-based: for every target
// fault it encodes the good and faulty circuits (restricted to the
// fault's cone of influence) sharing their inputs, asserts that some
// reachable output differs, and asks the CDCL solver for a pattern. The
// classification matches the classic ATPG vocabulary exactly:
//
//   - SAT        → a test pattern (returned and fault-simulated),
//   - UNSAT      → the fault is provably redundant,
//   - budget hit → the fault is aborted.
//
// Key inputs are treated as ordinary, freely controllable inputs: under
// OraP the key register is wired into the scan chains, so "the tool was
// allowed to set any value to the key inputs" (Table II's setup).
package atpg

import (
	"fmt"

	"orap/internal/faultsim"
	"orap/internal/netlist"
	"orap/internal/sat"
)

// Class is the ATPG outcome for a single fault.
type Class int

// Fault classes.
const (
	// Detected faults have a generated (or fault-simulated) pattern.
	Detected Class = iota
	// Redundant faults are proven untestable.
	Redundant
	// Aborted faults exceeded the effort budget undecided.
	Aborted
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Detected:
		return "detected"
	case Redundant:
		return "redundant"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Options bounds ATPG effort.
type Options struct {
	// ConflictBudget bounds SAT conflicts per fault (the "backtrack
	// limit"); 0 means 20000, mirroring a high-effort Atalanta run.
	ConflictBudget int64
}

func (o Options) budget() int64 {
	if o.ConflictBudget > 0 {
		return o.ConflictBudget
	}
	return 20000
}

// Outcome reports one fault's result.
type Outcome struct {
	Fault   faultsim.Fault
	Class   Class
	Pattern []bool // inputs then keys; nil unless Detected by this call
}

// Generate targets one fault and returns its outcome.
func Generate(c *netlist.Circuit, f faultsim.Fault, opts Options) (Outcome, error) {
	s := sat.New()
	s.MaxConflicts = opts.budget()

	enc, err := encodeFaultCone(s, c, f)
	if err != nil {
		return Outcome{}, err
	}
	ok, err := s.Solve()
	if err == sat.ErrBudget {
		return Outcome{Fault: f, Class: Aborted}, nil
	}
	if err != nil {
		return Outcome{}, err
	}
	if !ok {
		return Outcome{Fault: f, Class: Redundant}, nil
	}
	all := c.AllInputs()
	pattern := make([]bool, len(all))
	for i, id := range all {
		if v := enc.inputVar[id]; v >= 0 {
			pattern[i] = s.Value(v) == sat.True
		}
		// Inputs outside the cone stay false; any value works.
	}
	return Outcome{Fault: f, Class: Detected, Pattern: pattern}, nil
}

// coneEncoding carries the variable maps of the restricted good/faulty
// encoding.
type coneEncoding struct {
	inputVar map[int]sat.Var // circuit input node -> shared variable
}

// encodeFaultCone adds CNF for the good and faulty circuit restricted to
// the union of the fault's output cone and that cone's input support,
// sharing input variables, and asserts that an observed output differs.
func encodeFaultCone(s *sat.Solver, c *netlist.Circuit, f faultsim.Fault) (*coneEncoding, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	// Influence region: transitive fanout of the fault node; support:
	// transitive fanin of that region.
	influenced := c.TransitiveFanout(f.Node)
	need := make([]bool, c.NumNodes())
	stack := []int{}
	for id := range influenced {
		if influenced[id] {
			need[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fi := range c.Gates[id].Fanin {
			if !need[fi] {
				need[fi] = true
				stack = append(stack, fi)
			}
		}
	}

	goodVar := make([]sat.Var, c.NumNodes())
	faultVar := make([]sat.Var, c.NumNodes())
	for i := range goodVar {
		goodVar[i] = -1
		faultVar[i] = -1
	}
	enc := &coneEncoding{inputVar: make(map[int]sat.Var)}

	lits := func(vars []sat.Var, ids []int) []sat.Lit {
		ls := make([]sat.Lit, len(ids))
		for i, id := range ids {
			ls[i] = sat.MkLit(vars[id], false)
		}
		return ls
	}

	for _, id := range order {
		if !need[id] {
			continue
		}
		g := &c.Gates[id]
		// Good copy.
		gv := s.NewVar()
		goodVar[id] = gv
		if g.Type == netlist.Input {
			enc.inputVar[id] = gv
		} else {
			if err := emitGate(s, g.Type, sat.MkLit(gv, false), lits(goodVar, g.Fanin)); err != nil {
				return nil, err
			}
		}
		// Faulty copy: nodes outside the influenced region share the
		// good variable; influenced nodes get their own, with the fault
		// injected at the fault site.
		if !influenced[id] {
			faultVar[id] = gv
			continue
		}
		fv := s.NewVar()
		faultVar[id] = fv
		switch {
		case id == f.Node && f.Pin < 0:
			// Output fault: the node is a constant.
			s.AddClause(sat.MkLit(fv, !f.SA1))
		case g.Type == netlist.Input:
			// An influenced input can only be the fault node itself
			// (inputs have no fanin); constrain equal to good.
			s.AddClause(sat.MkLit(fv, true), sat.MkLit(gv, false))
			s.AddClause(sat.MkLit(fv, false), sat.MkLit(gv, true))
		default:
			fan := lits(faultVar, g.Fanin)
			if id == f.Node && f.Pin >= 0 {
				// Input-pin fault: replace that pin with a constant.
				cv := s.NewVar()
				s.AddClause(sat.MkLit(cv, !f.SA1))
				fan[f.Pin] = sat.MkLit(cv, false)
			}
			if err := emitGate(s, g.Type, sat.MkLit(fv, false), fan); err != nil {
				return nil, err
			}
		}
	}

	// Some observed output in the influenced region must differ.
	var diffs []sat.Lit
	for _, o := range c.POs {
		if !influenced[o] {
			continue
		}
		d := sat.MkLit(s.NewVar(), false)
		emitXor2(s, d, sat.MkLit(goodVar[o], false), sat.MkLit(faultVar[o], false))
		diffs = append(diffs, d)
	}
	if len(diffs) == 0 {
		// Fault effect cannot reach any output: structurally redundant.
		s.AddClause() // empty clause: force UNSAT
		return enc, nil
	}
	s.AddClause(diffs...)
	return enc, nil
}

func emitGate(s *sat.Solver, t netlist.GateType, out sat.Lit, fan []sat.Lit) error {
	switch t {
	case netlist.Const0:
		s.AddClause(out.Not())
	case netlist.Const1:
		s.AddClause(out)
	case netlist.Buf:
		s.AddClause(out.Not(), fan[0])
		s.AddClause(out, fan[0].Not())
	case netlist.Not:
		s.AddClause(out.Not(), fan[0].Not())
		s.AddClause(out, fan[0])
	case netlist.And, netlist.Nand:
		o := out
		if t == netlist.Nand {
			o = out.Not()
		}
		all := make([]sat.Lit, 0, len(fan)+1)
		for _, f := range fan {
			s.AddClause(o.Not(), f)
			all = append(all, f.Not())
		}
		s.AddClause(append(all, o)...)
	case netlist.Or, netlist.Nor:
		o := out
		if t == netlist.Nor {
			o = out.Not()
		}
		all := make([]sat.Lit, 0, len(fan)+1)
		for _, f := range fan {
			s.AddClause(o, f.Not())
			all = append(all, f)
		}
		s.AddClause(append(all, o.Not())...)
	case netlist.Xor, netlist.Xnor:
		o := out
		if t == netlist.Xnor {
			o = out.Not()
		}
		acc := fan[0]
		for i := 1; i < len(fan); i++ {
			dst := o
			if i != len(fan)-1 {
				dst = sat.MkLit(s.NewVar(), false)
			}
			emitXor2(s, dst, acc, fan[i])
			acc = dst
		}
		if len(fan) == 1 {
			s.AddClause(o.Not(), fan[0])
			s.AddClause(o, fan[0].Not())
		}
	default:
		return fmt.Errorf("atpg: unsupported gate type %v", t)
	}
	return nil
}

func emitXor2(s *sat.Solver, d, a, b sat.Lit) {
	s.AddClause(d.Not(), a, b)
	s.AddClause(d.Not(), a.Not(), b.Not())
	s.AddClause(d, a.Not(), b)
	s.AddClause(d, a, b.Not())
}

// Summary aggregates a full ATPG campaign.
type Summary struct {
	Total     int
	Detected  int
	Redundant int
	Aborted   int
	// Patterns holds the generated test patterns (deduplicated runs may
	// hold fewer than Detected).
	Patterns [][]bool
}

// Coverage returns the stuck-at fault coverage in percent: detected over
// total, the definition Table II reports.
func (s Summary) Coverage() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.Detected) / float64(s.Total)
}

// RedundantPlusAborted returns the paper's "# Red.+Abrt faults" column.
func (s Summary) RedundantPlusAborted() int { return s.Redundant + s.Aborted }

// Run performs the full Table II flow on a circuit: collapse the fault
// list, drop the easy faults with `randomBlocks` blocks of random-pattern
// fault simulation (the HOPE step), then target every remaining fault
// with the SAT generator. Each generated pattern is fault-simulated with
// dropping so later faults skip generation when already covered.
func Run(c *netlist.Circuit, fsim *faultsim.Simulator, randomResult faultsim.Result, opts Options) (Summary, error) {
	sum := Summary{Total: randomResult.Total, Detected: randomResult.Detected}
	live := append([]faultsim.Fault(nil), randomResult.Remaining...)
	for len(live) > 0 {
		f := live[0]
		live = live[1:]
		out, err := Generate(c, f, opts)
		if err != nil {
			return sum, err
		}
		switch out.Class {
		case Redundant:
			sum.Redundant++
		case Aborted:
			sum.Aborted++
		case Detected:
			sum.Detected++
			sum.Patterns = append(sum.Patterns, out.Pattern)
			// Drop any other live fault the new pattern detects.
			kept := live[:0]
			for _, g := range live {
				hit, err := fsim.DetectsWithPattern(g, out.Pattern)
				if err != nil {
					return sum, err
				}
				if hit {
					sum.Detected++
				} else {
					kept = append(kept, g)
				}
			}
			live = kept
		}
	}
	return sum, nil
}
