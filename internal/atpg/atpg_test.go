package atpg

import (
	"testing"

	"orap/internal/circuits"
	"orap/internal/faultsim"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/rng"
)

func TestGenerateDetectsTestableFault(t *testing.T) {
	c := circuits.C17()
	sim, err := faultsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range faultsim.CollapseFaults(c) {
		out, err := Generate(c, f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Class != Detected {
			t.Fatalf("fault %v classified %v; c17 has no redundant faults", f, out.Class)
		}
		hit, err := sim.DetectsWithPattern(f, out.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Fatalf("generated pattern %v does not detect %v", out.Pattern, f)
		}
	}
}

func TestGenerateProvesRedundancy(t *testing.T) {
	// y = OR(a, AND(a, b)): AND-output s-a-0 is redundant (absorption).
	c := netlist.New("red")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	and := c.MustAddGate(netlist.And, "and", a, b)
	y := c.MustAddGate(netlist.Or, "y", a, and)
	c.MarkOutput(y)
	out, err := Generate(c, faultsim.Fault{Node: and, Pin: -1, SA1: false}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Class != Redundant {
		t.Fatalf("absorbed fault classified %v, want redundant", out.Class)
	}
	// The same gate's s-a-1 is testable (a=0, b arbitrary → y flips).
	out, err = Generate(c, faultsim.Fault{Node: and, Pin: -1, SA1: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Class != Detected {
		t.Fatalf("testable fault classified %v", out.Class)
	}
}

func TestGenerateUnobservableFault(t *testing.T) {
	// A gate with no path to an output is structurally redundant.
	c := netlist.New("dead")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	dead := c.MustAddGate(netlist.And, "dead", a, b)
	y := c.MustAddGate(netlist.Or, "y", a, b)
	c.MarkOutput(y)
	out, err := Generate(c, faultsim.Fault{Node: dead, Pin: -1, SA1: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Class != Redundant {
		t.Fatalf("unobservable fault classified %v", out.Class)
	}
}

func TestRunFullFlowC17(t *testing.T) {
	c := circuits.C17()
	sim, err := faultsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := faultsim.CollapseFaults(c)
	// Deliberately weak random phase so ATPG has faults left to target.
	rand := sim.RunRandom(faults, 1, rng.New(1))
	sum, err := Run(c, sim, rand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Coverage() != 100 {
		t.Fatalf("c17 coverage = %.2f%%, want 100%%", sum.Coverage())
	}
	if sum.RedundantPlusAborted() != 0 {
		t.Fatalf("c17 red+abrt = %d, want 0", sum.RedundantPlusAborted())
	}
	if sum.Detected != sum.Total {
		t.Fatalf("detected %d != total %d", sum.Detected, sum.Total)
	}
}

func TestRunFlowOnLockedCircuitKeyInputsControllable(t *testing.T) {
	// Table II's premise: with key inputs scannable, the locked circuit
	// stays (at least) as testable as the original. On small circuits
	// both reach full coverage.
	orig := circuits.RippleAdder(4)
	l, err := lock.Weighted(orig, lock.WeightedOptions{KeyBits: 6, ControlWidth: 3, KeyGates: 4, Rand: rng.New(2)})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*netlist.Circuit{orig, l.Circuit} {
		sim, err := faultsim.New(c)
		if err != nil {
			t.Fatal(err)
		}
		faults := faultsim.CollapseFaults(c)
		rand := sim.RunRandom(faults, 2, rng.New(3))
		sum, err := Run(c, sim, rand, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Coverage() < 100 {
			t.Fatalf("%s coverage = %.2f%% (red=%d abrt=%d)", c.Name, sum.Coverage(), sum.Redundant, sum.Aborted)
		}
	}
}

func TestAbortedOnTinyBudget(t *testing.T) {
	// A wide parity cone with a 1-conflict budget should abort at least
	// one fault (XOR cones admit no easy implications).
	c := circuits.Parity(24)
	faults := faultsim.CollapseFaults(c)
	aborted := 0
	for _, f := range faults[:8] {
		out, err := Generate(c, f, Options{ConflictBudget: 1})
		if err != nil {
			t.Fatal(err)
		}
		if out.Class == Aborted {
			aborted++
		}
	}
	if aborted == 0 {
		t.Skip("solver resolved all parity faults without conflicts; budget path not exercised")
	}
}

func TestClassString(t *testing.T) {
	if Detected.String() != "detected" || Redundant.String() != "redundant" || Aborted.String() != "aborted" {
		t.Fatal("class names wrong")
	}
}
