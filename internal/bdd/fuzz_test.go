package bdd_test

import (
	"errors"
	"math/big"
	"math/bits"
	"testing"

	"orap/internal/bdd"
)

// FuzzITE decodes the fuzz input into a random expression DAG over at
// most 6 variables, built twice on one Manager, and checks the
// canonicity contract against a concrete truth table carried alongside
// every stack entry: equal truth tables ⇔ identical node IDs, and
// SatCount must equal the table's popcount. The same convention as
// internal/sat's FuzzSolver: a checked-in seed corpus replays under
// plain `go test`, including the -race leg.
func FuzzITE(f *testing.F) {
	f.Add([]byte{3, 0x00, 0x01, 0x82, 0x02, 0xc1})
	f.Add([]byte{6, 0x00, 0x01, 0x83, 0x02, 0x03, 0x84, 0x04, 0x05, 0x85, 0xc2})
	f.Add([]byte{2, 0x00, 0x00, 0x82, 0x01, 0xc0, 0x83})
	f.Add([]byte{1, 0x00, 0xc0, 0xc0, 0xc0})
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) < 2 || len(prog) > 512 {
			return
		}
		nv := 1 + int(prog[0]%6)
		m := bdd.New(nv, 1<<12)
		mask := uint64(1)<<(1<<uint(nv)) - 1
		if nv == 6 {
			mask = ^uint64(0)
		}
		// varTab[v] is the truth table of variable v over nv variables
		// (minterm index bit v selects the variable's value).
		varTab := make([]uint64, nv)
		for v := 0; v < nv; v++ {
			for minterm := 0; minterm < 1<<uint(nv); minterm++ {
				if minterm>>uint(v)&1 == 1 {
					varTab[v] |= 1 << uint(minterm)
				}
			}
		}

		type entry struct {
			n   bdd.Node
			tab uint64
		}
		var stack []entry
		pop := func() entry {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			return e
		}
		// Each byte is one stack-machine instruction: low 6 bits select
		// the operand, the top two bits the opcode family — push var,
		// binary op (and/or/xor by operand%3), unary not, or dup.
		for _, b := range prog[1:] {
			var err error
			switch b >> 6 {
			case 0, 1: // push variable
				v := int(b&0x3f) % nv
				var n bdd.Node
				n, err = m.Var(v)
				stack = append(stack, entry{n, varTab[v]})
			case 2: // binary
				if len(stack) < 2 {
					continue
				}
				x, y := pop(), pop()
				var n bdd.Node
				var tab uint64
				switch b % 3 {
				case 0:
					n, err = m.And(x.n, y.n)
					tab = x.tab & y.tab
				case 1:
					n, err = m.Or(x.n, y.n)
					tab = x.tab | y.tab
				default:
					n, err = m.Xor(x.n, y.n)
					tab = x.tab ^ y.tab
				}
				stack = append(stack, entry{n, tab & mask})
			case 3: // not
				if len(stack) < 1 {
					continue
				}
				x := pop()
				var n bdd.Node
				n, err = m.Not(x.n)
				stack = append(stack, entry{n, ^x.tab & mask})
			}
			if err != nil {
				if errors.Is(err, bdd.ErrBudget) {
					return // budget trip is a legal outcome, not a bug
				}
				t.Fatal(err)
			}
		}

		assign := make([]bool, nv)
		for i, e := range stack {
			// Semantics: the BDD agrees with the truth table everywhere.
			for minterm := 0; minterm < 1<<uint(nv); minterm++ {
				for v := 0; v < nv; v++ {
					assign[v] = minterm>>uint(v)&1 == 1
				}
				if m.Eval(e.n, assign) != (e.tab>>uint(minterm)&1 == 1) {
					t.Fatalf("entry %d: BDD disagrees with table at minterm %d", i, minterm)
				}
			}
			// Exact model count.
			if got := m.SatCount(e.n); got.Cmp(big.NewInt(int64(bits.OnesCount64(e.tab)))) != 0 {
				t.Fatalf("entry %d: SatCount %v, table popcount %d", i, got, bits.OnesCount64(e.tab))
			}
			// Canonicity: equal functions are the same node, different
			// functions are different nodes.
			for j := i + 1; j < len(stack); j++ {
				if (e.tab == stack[j].tab) != (e.n == stack[j].n) {
					t.Fatalf("canonicity violated: entries %d and %d have tabs %x/%x but nodes %d/%d",
						i, j, e.tab, stack[j].tab, e.n, stack[j].n)
				}
			}
		}
	})
}
