// Package bdd is a from-scratch reduced ordered binary decision diagram
// (ROBDD) engine: the exact symbolic backend behind internal/audit's
// -exact analyses. Where the dataflow engine's abstract domains answer
// "at most" (cone membership over-approximates sensitization), a BDD
// represents a cone's Boolean function canonically, so the audit can
// report model-counted quantities — corruption rates, distinguishing
// input counts, equivalence proofs — exactly.
//
// Design:
//
//   - Hash-consed unique table: mk(level, low, high) returns the one
//     node for that triple, so two equal functions built in the same
//     Manager are the same node ID and equivalence checking is pointer
//     comparison. No complement edges — the canonical form is the plain
//     Bryant reduction (no duplicate triples, no redundant tests),
//     which keeps every traversal branch-free at the cost of explicit
//     negation nodes.
//   - Memoised ITE: every connective is if-then-else with a shared
//     operation cache, the standard Brace/Rudell/Bryant kernel.
//   - Hard node budget: a Manager refuses to grow past its budget and
//     unwinds the in-flight operation with a typed ErrBudget, so
//     callers degrade gracefully to the dataflow approximation instead
//     of hanging on an exponential cone. A tripped Manager stays
//     usable for reads and for further (re-failing) operations.
//   - Variable order comes from the caller; InputOrder seeds it from
//     the ir.Program level schedule (see compile.go).
//
// The package has no dependencies beyond the standard library and
// internal/ir, and a Manager is single-goroutine by design (callers
// wanting parallelism build one Manager per goroutine; managers share
// nothing).
package bdd

import (
	"errors"
	"fmt"
)

// Node is a function handle: an index into its Manager's node arena.
// The terminals False and True are valid in every Manager. Nodes from
// different Managers must never be mixed; the Manager cannot detect it.
type Node = int32

// Terminal nodes, present in every Manager.
const (
	False Node = 0
	True  Node = 1
)

// ErrBudget is returned (wrapped) when an operation would grow the
// Manager past its node budget. Callers match it with errors.Is and
// fall back to an approximate analysis.
var ErrBudget = errors.New("bdd: node budget exhausted")

// budgetMark is the panic value the recursive kernel unwinds with when
// mk hits the budget; exported entry points recover it into ErrBudget.
type budgetMark struct{}

// node is one decision node: test variable `level`, follow low on 0,
// high on 1. Terminals carry level == numVars so the variable order
// can be compared without special cases.
type node struct {
	level     int32
	low, high Node
}

// utriple keys the unique table.
type utriple struct {
	level     int32
	low, high Node
}

// Stats is the Manager's telemetry, shaped like the oracle layer's
// ChannelStats: enough to see whether the cache is working and how
// close to the budget a run came.
type Stats struct {
	// Nodes is the number of decision nodes allocated (terminals
	// excluded); with no garbage collection this is also the peak.
	Nodes int
	// Budget echoes the configured node budget.
	Budget int
	// UniqueHits counts mk calls answered by the unique table — the
	// hash-consing that makes equal functions identical nodes.
	UniqueHits int64
	// CacheLookups and CacheHits count ITE operation-cache probes.
	CacheLookups, CacheHits int64
}

// HitRate returns the ITE cache hit fraction in [0, 1].
func (s Stats) HitRate() float64 {
	if s.CacheLookups == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheLookups)
}

// Add accumulates another Manager's counters (per-key-bit managers
// aggregate into one audit telemetry line).
func (s *Stats) Add(o Stats) {
	s.Nodes += o.Nodes
	if o.Budget > s.Budget {
		s.Budget = o.Budget
	}
	s.UniqueHits += o.UniqueHits
	s.CacheLookups += o.CacheLookups
	s.CacheHits += o.CacheHits
}

// DefaultBudget is the node budget a Manager gets when the caller
// passes 0: large enough for every shipped circuit's cones, small
// enough that a blowing-up cone aborts in well under a second.
const DefaultBudget = 1 << 19

// Manager owns a DAG of hash-consed decision nodes over a fixed set of
// numVars variables (levels 0..numVars-1, level 0 nearest the root).
type Manager struct {
	numVars int
	budget  int
	nodes   []node
	unique  map[utriple]Node
	ite     map[[3]Node]Node
	stats   Stats
}

// New returns a Manager over numVars variables with the given node
// budget (0 selects DefaultBudget).
func New(numVars, budget int) *Manager {
	if budget <= 0 {
		budget = DefaultBudget
	}
	m := &Manager{
		numVars: numVars,
		budget:  budget,
		nodes:   make([]node, 2, 1024),
		unique:  make(map[utriple]Node),
		ite:     make(map[[3]Node]Node),
	}
	tl := int32(numVars)
	m.nodes[False] = node{level: tl, low: False, high: False}
	m.nodes[True] = node{level: tl, low: True, high: True}
	return m
}

// NumVars returns the variable count the Manager was built for.
func (m *Manager) NumVars() int { return m.numVars }

// Stats returns a snapshot of the Manager's telemetry.
func (m *Manager) Stats() Stats {
	s := m.stats
	s.Nodes = len(m.nodes) - 2
	s.Budget = m.budget
	return s
}

// budgetErr builds the typed error an unwound operation reports.
func (m *Manager) budgetErr() error {
	return fmt.Errorf("%w (budget %d nodes, %d variables)", ErrBudget, m.budget, m.numVars)
}

// guard converts a budgetMark unwind into ErrBudget; every exported
// node-building operation defers it.
func (m *Manager) guard(n *Node, err *error) {
	if r := recover(); r != nil {
		if _, ok := r.(budgetMark); !ok {
			panic(r)
		}
		*n = False
		*err = m.budgetErr()
	}
}

// mk returns the unique node (level, low, high), applying both
// reduction rules: a redundant test collapses to its child, and an
// existing triple is reused. Panics with budgetMark past the budget.
func (m *Manager) mk(level int32, low, high Node) Node {
	if low == high {
		return low
	}
	k := utriple{level, low, high}
	if id, ok := m.unique[k]; ok {
		m.stats.UniqueHits++
		return id
	}
	if len(m.nodes)-2 >= m.budget {
		panic(budgetMark{})
	}
	id := Node(len(m.nodes))
	m.nodes = append(m.nodes, node{level, low, high})
	m.unique[k] = id
	return id
}

// Var returns the function of variable v (level v tests v: 0 → False,
// 1 → True). v must be in [0, NumVars). The results must be named so
// guard's recover can overwrite them on a budget trip.
func (m *Manager) Var(v int) (n Node, err error) {
	if v < 0 || v >= m.numVars {
		return False, fmt.Errorf("bdd: variable %d out of range [0,%d)", v, m.numVars)
	}
	defer m.guard(&n, &err)
	n = m.mk(int32(v), False, True)
	return n, nil
}

// Const returns the terminal for a constant.
func (m *Manager) Const(v bool) Node {
	if v {
		return True
	}
	return False
}

// Level returns the variable a node tests (NumVars for terminals).
func (m *Manager) Level(f Node) int { return int(m.nodes[f].level) }

// Low and High return a node's cofactors; for terminals they return
// the node itself.
func (m *Manager) Low(f Node) Node  { return m.nodes[f].low }
func (m *Manager) High(f Node) Node { return m.nodes[f].high }

// cofactors splits f by variable lv: if f tests lv its children,
// otherwise (f is independent of lv, sitting deeper) f itself twice.
func (m *Manager) cofactors(f Node, lv int32) (Node, Node) {
	n := m.nodes[f]
	if n.level == lv {
		return n.low, n.high
	}
	return f, f
}

// iteRec is the memoised if-then-else kernel.
func (m *Manager) iteRec(f, g, h Node) Node {
	// Terminal and absorption cases, before touching the cache.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	// ITE(f, f, h) = ITE(f, 1, h); ITE(f, g, f) = ITE(f, g, 0).
	if f == g {
		g = True
	}
	if f == h {
		h = False
	}
	key := [3]Node{f, g, h}
	m.stats.CacheLookups++
	if r, ok := m.ite[key]; ok {
		m.stats.CacheHits++
		return r
	}
	top := m.nodes[f].level
	if l := m.nodes[g].level; l < top {
		top = l
	}
	if l := m.nodes[h].level; l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	r := m.mk(top, m.iteRec(f0, g0, h0), m.iteRec(f1, g1, h1))
	m.ite[key] = r
	return r
}

// ITE returns if-then-else(f, g, h) = f·g + ¬f·h.
func (m *Manager) ITE(f, g, h Node) (n Node, err error) {
	defer m.guard(&n, &err)
	return m.iteRec(f, g, h), nil
}

// Not returns ¬f.
func (m *Manager) Not(f Node) (n Node, err error) {
	defer m.guard(&n, &err)
	return m.iteRec(f, False, True), nil
}

// And returns f·g.
func (m *Manager) And(f, g Node) (n Node, err error) {
	defer m.guard(&n, &err)
	return m.iteRec(f, g, False), nil
}

// Or returns f+g.
func (m *Manager) Or(f, g Node) (n Node, err error) {
	defer m.guard(&n, &err)
	return m.iteRec(f, True, g), nil
}

// Xor returns f⊕g.
func (m *Manager) Xor(f, g Node) (n Node, err error) {
	defer m.guard(&n, &err)
	return m.iteRec(f, m.iteRec(g, False, True), g), nil
}

// Eval evaluates f under a complete assignment (indexed by variable
// level).
func (m *Manager) Eval(f Node, assign []bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign[n.level] {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}
