package bdd

import (
	"fmt"
	"sort"

	"orap/internal/ir"
)

// Symbolic compilation of ir.Program cones: every circuit input that
// matters becomes a BDD variable (or a bound constant), and each
// requested output's Boolean function is built gate by gate in
// topological order. The compiler memoises per-node results, so
// overlapping cones (shared logic between primary outputs) are
// compiled once.

// InputOrder returns the program's inputs (PIs then keys, the
// declaration order of ir.Program.Inputs) sorted into the BDD variable
// order: ascending by the earliest topological position of any gate
// the input drives. The program's Order is level-monotone, so this
// seeds the variable order from the level schedule — inputs feeding
// shallow logic test first, which keeps the intermediate diagrams of a
// levelized compile narrow. Inputs driving nothing sort last; ties
// break on declaration order, so the result is deterministic.
func InputOrder(p *ir.Program) []int32 {
	type ranked struct {
		id   int32
		pos  int32
		decl int
	}
	inputs := make([]ranked, len(p.Inputs))
	for i, id := range p.Inputs {
		first := int32(p.NumNodes()) // past every real position
		for _, fo := range p.FanoutSpan(int(id)) {
			if p.Pos[fo] < first {
				first = p.Pos[fo]
			}
		}
		inputs[i] = ranked{id: id, pos: first, decl: i}
	}
	sort.Slice(inputs, func(a, b int) bool {
		if inputs[a].pos != inputs[b].pos {
			return inputs[a].pos < inputs[b].pos
		}
		return inputs[a].decl < inputs[b].decl
	})
	out := make([]int32, len(inputs))
	for i, r := range inputs {
		out[i] = r.id
	}
	return out
}

// Compiler builds BDD functions for a program's nodes inside one
// Manager. Bind every input the requested cones reach (BindVar or
// BindConst) before calling Compile.
type Compiler struct {
	m *Manager
	p *ir.Program
	// vals memoises the compiled function per program node; -1 = not
	// yet compiled. Inputs are seeded by the Bind calls.
	vals []Node
	done []bool
}

// NewCompiler returns a compiler for p targeting m.
func NewCompiler(m *Manager, p *ir.Program) *Compiler {
	c := &Compiler{
		m:    m,
		p:    p,
		vals: make([]Node, p.NumNodes()),
		done: make([]bool, p.NumNodes()),
	}
	return c
}

// BindVar maps input node id to BDD variable level v.
func (c *Compiler) BindVar(id int32, v int) error {
	n, err := c.m.Var(v)
	if err != nil {
		return err
	}
	c.vals[id] = n
	c.done[id] = true
	return nil
}

// BindConst fixes input node id to a constant (how KeyEquivalence
// locks the key inputs to the provided key).
func (c *Compiler) BindConst(id int32, v bool) {
	c.vals[id] = c.m.Const(v)
	c.done[id] = true
}

// Compile returns the Boolean function of program node out as a BDD
// over the bound variables. An ErrBudget from the Manager is passed
// through; an unbound input in the cone is a caller bug and errors.
func (c *Compiler) Compile(out int32) (n Node, err error) {
	if c.done[out] {
		return c.vals[out], nil
	}
	// Gather the not-yet-compiled cone, then evaluate it in topological
	// order (sorting by Pos; the program's Order is level-monotone so
	// fanins always come first).
	var cone []int32
	stack := []int32{out}
	seen := make(map[int32]bool)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] || c.done[id] {
			continue
		}
		seen[id] = true
		cone = append(cone, id)
		stack = append(stack, c.p.FaninSpan(int(id))...)
	}
	sort.Slice(cone, func(a, b int) bool { return c.p.Pos[cone[a]] < c.p.Pos[cone[b]] })

	defer c.m.guard(&n, &err)
	for _, id := range cone {
		v, gerr := c.gate(id)
		if gerr != nil {
			return False, gerr
		}
		c.vals[id] = v
		c.done[id] = true
	}
	return c.vals[out], nil
}

// gate evaluates one program node whose fanins are all compiled. Runs
// inside Compile's budget guard, so it uses the panicking kernel
// directly.
func (c *Compiler) gate(id int32) (Node, error) {
	m, p := c.m, c.p
	op := p.Ops[id]
	switch op {
	case ir.OpInput:
		return False, fmt.Errorf("bdd: input %d reached by the cone but not bound", id)
	case ir.OpConst0:
		return False, nil
	case ir.OpConst1:
		return True, nil
	}
	fi := p.FaninSpan(int(id))
	switch op {
	case ir.OpBuf:
		return c.vals[fi[0]], nil
	case ir.OpNot:
		return m.iteRec(c.vals[fi[0]], False, True), nil
	}
	acc := c.vals[fi[0]]
	for _, f := range fi[1:] {
		g := c.vals[f]
		switch op {
		case ir.OpAnd, ir.OpNand:
			acc = m.iteRec(acc, g, False)
		case ir.OpOr, ir.OpNor:
			acc = m.iteRec(acc, True, g)
		case ir.OpXor, ir.OpXnor:
			acc = m.iteRec(acc, m.iteRec(g, False, True), g)
		default:
			return False, fmt.Errorf("bdd: node %d has unknown opcode %d", id, uint8(op))
		}
	}
	switch op {
	case ir.OpNand, ir.OpNor, ir.OpXnor:
		acc = m.iteRec(acc, False, True)
	}
	return acc, nil
}
