package bdd

import "math/big"

// Model counting and the two structural operations the exact audit
// needs on top of the ITE kernel: existential quantification (project
// the key variables out of a difference function) and single-variable
// flip (substitute v ↦ ¬v, which turns F(x, k) into F(x, k⊕e_v)
// without a second compile).

// SatCount returns the exact number of satisfying assignments of f
// over all NumVars variables, as a big integer (counts routinely
// exceed 2^53, and exactness is the point of this package). Pure read:
// never allocates nodes, never trips the budget.
func (m *Manager) SatCount(f Node) *big.Int {
	memo := make(map[Node]*big.Int)
	cnt := m.countRec(f, memo)
	// countRec counts over the variables at or below f's level; the
	// levels above the root are free.
	return new(big.Int).Lsh(cnt, uint(m.nodes[f].level))
}

// countRec counts satisfying assignments of the variables with level
// >= level(f).
func (m *Manager) countRec(f Node, memo map[Node]*big.Int) *big.Int {
	if f == False {
		return big.NewInt(0)
	}
	if f == True {
		return big.NewInt(1)
	}
	if c, ok := memo[f]; ok {
		return c
	}
	n := m.nodes[f]
	lo := m.countRec(n.low, memo)
	hi := m.countRec(n.high, memo)
	c := new(big.Int).Lsh(lo, uint(m.nodes[n.low].level-n.level-1))
	c.Add(c, new(big.Int).Lsh(hi, uint(m.nodes[n.high].level-n.level-1)))
	memo[f] = c
	return c
}

// SatFraction returns SatCount(f) / 2^NumVars as a float64 — the
// probability a uniformly random assignment satisfies f.
func (m *Manager) SatFraction(f Node) float64 {
	cnt := new(big.Float).SetInt(m.SatCount(f))
	space := new(big.Float).SetMantExp(big.NewFloat(1), m.numVars)
	out, _ := new(big.Float).Quo(cnt, space).Float64()
	return out
}

// Exists existentially quantifies the variables whose levels are set
// in quant (indexed by level): the result is independent of them and
// true wherever some assignment of them satisfied f.
func (m *Manager) Exists(f Node, quant []bool) (n Node, err error) {
	defer m.guard(&n, &err)
	return m.existsRec(f, quant, make(map[Node]Node)), nil
}

func (m *Manager) existsRec(f Node, quant []bool, memo map[Node]Node) Node {
	nd := m.nodes[f]
	if int(nd.level) >= m.numVars {
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	lo := m.existsRec(nd.low, quant, memo)
	hi := m.existsRec(nd.high, quant, memo)
	var r Node
	if quant[nd.level] {
		r = m.iteRec(lo, True, hi) // ∃v. f = f|v=0 + f|v=1
	} else {
		r = m.mk(nd.level, lo, hi)
	}
	memo[f] = r
	return r
}

// Flip substitutes ¬v for variable v: Flip(F, v)(…, v, …) = F(…, ¬v, …).
// Nodes at levels below v cannot depend on v and are shared untouched,
// so the operation is linear in the nodes at or above v's level.
func (m *Manager) Flip(f Node, v int) (n Node, err error) {
	defer m.guard(&n, &err)
	return m.flipRec(f, int32(v), make(map[Node]Node)), nil
}

func (m *Manager) flipRec(f Node, v int32, memo map[Node]Node) Node {
	nd := m.nodes[f]
	if nd.level > v {
		return f // terminal or ordered past v: independent of v
	}
	if r, ok := memo[f]; ok {
		return r
	}
	var r Node
	if nd.level == v {
		r = m.mk(v, nd.high, nd.low)
	} else {
		r = m.mk(nd.level, m.flipRec(nd.low, v, memo), m.flipRec(nd.high, v, memo))
	}
	memo[f] = r
	return r
}

// AnySat returns one satisfying assignment of f as a slice indexed by
// variable level: 0/1 for a decided variable, -1 for a don't-care.
// Returns nil when f is unsatisfiable. The walk prefers the high
// branch, so the witness is deterministic.
func (m *Manager) AnySat(f Node) []int8 {
	if f == False {
		return nil
	}
	out := make([]int8, m.numVars)
	for i := range out {
		out[i] = -1
	}
	for f != True {
		n := m.nodes[f]
		if n.high != False {
			out[n.level] = 1
			f = n.high
		} else {
			out[n.level] = 0
			f = n.low
		}
	}
	return out
}
