package bdd_test

import (
	"errors"
	"math/big"
	"testing"

	"orap/internal/bdd"
	"orap/internal/circuits"
	"orap/internal/ir"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/rng"
	"orap/internal/sim"
)

func compile(t *testing.T, c *netlist.Circuit) *ir.Program {
	t.Helper()
	p, err := ir.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// compileOutputs builds a manager over every circuit input (variable
// order from InputOrder) and compiles all primary outputs.
func compileOutputs(t *testing.T, p *ir.Program, budget int) (*bdd.Manager, []bdd.Node, map[int32]int) {
	t.Helper()
	order := bdd.InputOrder(p)
	m := bdd.New(len(order), budget)
	cp := bdd.NewCompiler(m, p)
	varOf := make(map[int32]int, len(order))
	for v, id := range order {
		varOf[id] = v
		if err := cp.BindVar(id, v); err != nil {
			t.Fatal(err)
		}
	}
	outs := make([]bdd.Node, len(p.POs))
	for i, o := range p.POs {
		f, err := cp.Compile(o)
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = f
	}
	return m, outs, varOf
}

func TestConnectiveTruthTables(t *testing.T) {
	m := bdd.New(2, 0)
	a, _ := m.Var(0)
	b, _ := m.Var(1)
	and, _ := m.And(a, b)
	or, _ := m.Or(a, b)
	xor, _ := m.Xor(a, b)
	na, _ := m.Not(a)
	for _, tc := range []struct {
		name string
		f    bdd.Node
		want [4]bool // (a,b) = 00, 01, 10, 11
	}{
		{"and", and, [4]bool{false, false, false, true}},
		{"or", or, [4]bool{false, true, true, true}},
		{"xor", xor, [4]bool{false, true, true, false}},
		{"nota", na, [4]bool{true, true, false, false}},
	} {
		for i, want := range tc.want {
			got := m.Eval(tc.f, []bool{i&2 != 0, i&1 != 0})
			if got != want {
				t.Errorf("%s(%d,%d) = %v, want %v", tc.name, i>>1, i&1, got, want)
			}
		}
	}
}

// TestCanonicity is the hash-consing contract: functions built through
// different operation sequences are the same node when and only when
// they are the same function.
func TestCanonicity(t *testing.T) {
	m := bdd.New(3, 0)
	a, _ := m.Var(0)
	b, _ := m.Var(1)
	c, _ := m.Var(2)

	ab, _ := m.And(a, b)
	left, _ := m.Or(ab, c)    // ab + c
	ac, _ := m.Or(a, c)       // a + c
	bc, _ := m.Or(b, c)       // b + c
	right, _ := m.And(ac, bc) // (a+c)(b+c) = ab + c
	if left != right {
		t.Fatalf("ab+c and (a+c)(b+c) built different nodes %d, %d", left, right)
	}

	xx, _ := m.Xor(a, a)
	if xx != bdd.False {
		t.Fatalf("a xor a = node %d, want False", xx)
	}
	dn, _ := m.Not(a)
	dnn, _ := m.Not(dn)
	if dnn != a {
		t.Fatalf("double negation of a = node %d, want %d", dnn, a)
	}
}

func TestSatCountSmall(t *testing.T) {
	m := bdd.New(4, 0)
	a, _ := m.Var(0)
	d, _ := m.Var(3)
	f, _ := m.Or(a, d) // 2^4 - 4 = 12 models
	if got := m.SatCount(f); got.Cmp(big.NewInt(12)) != 0 {
		t.Fatalf("SatCount(a+d) = %v, want 12", got)
	}
	if got := m.SatCount(bdd.True); got.Cmp(big.NewInt(16)) != 0 {
		t.Fatalf("SatCount(True) = %v, want 16", got)
	}
	if got := m.SatCount(bdd.False); got.Sign() != 0 {
		t.Fatalf("SatCount(False) = %v, want 0", got)
	}
	if got := m.SatFraction(f); got != 12.0/16.0 {
		t.Fatalf("SatFraction = %v, want 0.75", got)
	}
}

// TestSatCountAgainstEnumeration cross-checks SatCount against
// exhaustive enumeration of every shipped circuit's primary outputs —
// all are ≤ 14 inputs once locked, so the full truth table is cheap.
func TestSatCountAgainstEnumeration(t *testing.T) {
	cases := map[string]*netlist.Circuit{
		"c17":         circuits.C17(),
		"fulladder":   circuits.FullAdder(),
		"rippleadder": circuits.RippleAdder(4),
		"parity":      circuits.Parity(8),
		"comparator4": circuits.Comparator4(),
		"mux21":       circuits.Mux21(),
	}
	l, err := lock.RandomXOR(circuits.RippleAdder(4).Clone(), 3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	cases["rippleadder+xor"] = l.Circuit

	for name, c := range cases {
		p := compile(t, c)
		nin := len(p.Inputs)
		if nin > 14 {
			t.Fatalf("%s: %d inputs, harness expects ≤ 14", name, nin)
		}
		m, outs, varOf := compileOutputs(t, p, 0)
		want := make([]int64, len(outs))
		ev, err := sim.NewEvaluator(c)
		if err != nil {
			t.Fatal(err)
		}
		nPI := len(p.PIs)
		vars := make([]bool, nin)
		for v := 0; v < 1<<nin; v++ {
			full := make([]bool, 0, nin)
			for i := range p.Inputs {
				full = append(full, v>>uint(i)&1 == 1)
			}
			outBits, err := ev.Eval(full[:nPI], full[nPI:])
			if err != nil {
				t.Fatal(err)
			}
			for j, bit := range outBits {
				if bit {
					want[j]++
				}
			}
			// Mirror the same assignment into BDD variable order and
			// check Eval agreement on a sample of outputs.
			for i, id := range p.Inputs {
				vars[varOf[id]] = full[i]
			}
			for j, f := range outs {
				if m.Eval(f, vars) != outBits[j] {
					t.Fatalf("%s: input %b PO %d: BDD and simulator disagree", name, v, j)
				}
			}
		}
		for j, f := range outs {
			if got := m.SatCount(f); got.Cmp(big.NewInt(want[j])) != 0 {
				t.Errorf("%s PO %d: SatCount %v, enumeration %d", name, j, got, want[j])
			}
		}
	}
}

func TestFlipMatchesRecompile(t *testing.T) {
	l, err := lock.Weighted(circuits.RippleAdder(4).Clone(), lock.WeightedOptions{
		KeyBits: 4, ControlWidth: 3, Rand: rng.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := compile(t, l.Circuit)
	m, outs, varOf := compileOutputs(t, p, 0)
	kb := p.Keys[1]
	v := varOf[kb]
	vars := make([]bool, m.NumVars())
	for _, f := range outs {
		flipped, err := m.Flip(f, v)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 1<<uint(m.NumVars()); trial++ {
			for i := range vars {
				vars[i] = trial>>uint(i)&1 == 1
			}
			a := m.Eval(flipped, vars)
			vars[v] = !vars[v]
			b := m.Eval(f, vars)
			vars[v] = !vars[v]
			if a != b {
				t.Fatalf("Flip(%d): disagreement at assignment %b", v, trial)
			}
		}
	}
}

func TestExistsQuantifiesOut(t *testing.T) {
	m := bdd.New(3, 0)
	a, _ := m.Var(0)
	b, _ := m.Var(1)
	c, _ := m.Var(2)
	abc, _ := m.And(a, b)
	abc, _ = m.And(abc, c)
	quant := []bool{false, true, false}
	e, err := m.Exists(abc, quant)
	if err != nil {
		t.Fatal(err)
	}
	// ∃b. abc = ac.
	ac, _ := m.And(a, c)
	if e != ac {
		t.Fatalf("∃b.abc = node %d, want ac = %d", e, ac)
	}
	// Count over x-vars only: SatCount includes the quantified level as
	// a free variable, so the caller halves once per quantified var.
	cnt := m.SatCount(e)
	if cnt.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("SatCount(∃b.abc) = %v, want 2 (1 xz-model × free b)", cnt)
	}
}

func TestAnySat(t *testing.T) {
	m := bdd.New(3, 0)
	a, _ := m.Var(0)
	c, _ := m.Var(2)
	na, _ := m.Not(a)
	f, _ := m.And(na, c)
	w := m.AnySat(f)
	if w == nil {
		t.Fatal("AnySat returned nil for a satisfiable function")
	}
	assign := make([]bool, 3)
	for i, v := range w {
		assign[i] = v == 1
	}
	if !m.Eval(f, assign) {
		t.Fatalf("AnySat witness %v does not satisfy f", w)
	}
	if m.AnySat(bdd.False) != nil {
		t.Fatal("AnySat(False) must be nil")
	}
}

// TestBudgetTyped pins the degradation contract: a cone too big for
// the budget returns ErrBudget (matchable with errors.Is), leaves the
// manager usable, and never panics out of the package.
func TestBudgetTyped(t *testing.T) {
	p := compile(t, circuits.RippleAdder(8))
	order := bdd.InputOrder(p)
	m := bdd.New(len(order), 8) // absurdly small
	cp := bdd.NewCompiler(m, p)
	budgetHit := false
	for v, id := range order {
		if err := cp.BindVar(id, v); err != nil {
			if !errors.Is(err, bdd.ErrBudget) {
				t.Fatal(err)
			}
			budgetHit = true
		}
	}
	// Var itself must report the trip through the typed error, never a
	// silent (False, nil) — regression for the unnamed-results bug that
	// let a starved Manager "prove" cones constant.
	tiny := bdd.New(4, 1)
	if _, err := tiny.Var(0); err != nil {
		t.Fatalf("first Var within budget: %v", err)
	}
	if _, err := tiny.Var(1); !errors.Is(err, bdd.ErrBudget) {
		t.Fatalf("Var over budget: err = %v, want ErrBudget", err)
	}
	for _, o := range p.POs {
		if _, err := cp.Compile(o); err != nil {
			// Inputs past the tripped bind are unbound, so Compile may
			// report either the budget or the unbound cone input; both
			// are the degradation path, neither is a panic.
			if errors.Is(err, bdd.ErrBudget) {
				budgetHit = true
			}
		}
	}
	if !budgetHit {
		t.Fatal("an 8-node budget compiled an 8-bit adder; budget guard inert")
	}
	// The manager stays usable for reads and small operations.
	a, err := m.Var(0)
	if err != nil {
		t.Fatalf("Var after budget trip: %v", err)
	}
	if got := m.SatCount(a); got.Sign() <= 0 {
		t.Fatalf("SatCount after budget trip = %v", got)
	}
	st := m.Stats()
	if st.Nodes > st.Budget {
		t.Fatalf("stats report %d nodes over budget %d", st.Nodes, st.Budget)
	}
}

// TestInputOrderDeterministic pins that the level-schedule seeding is
// stable and covers every input exactly once.
func TestInputOrderDeterministic(t *testing.T) {
	l, err := lock.Weighted(circuits.RippleAdder(6).Clone(), lock.WeightedOptions{
		KeyBits: 6, ControlWidth: 3, Rand: rng.New(31),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := compile(t, l.Circuit)
	a := bdd.InputOrder(p)
	b := bdd.InputOrder(p)
	if len(a) != len(p.Inputs) {
		t.Fatalf("order has %d entries, want %d", len(a), len(p.Inputs))
	}
	seen := make(map[int32]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs across calls at %d: %d vs %d", i, a[i], b[i])
		}
		if seen[a[i]] {
			t.Fatalf("input %d appears twice", a[i])
		}
		seen[a[i]] = true
	}
}
