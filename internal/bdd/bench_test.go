package bdd_test

import (
	"testing"

	"orap/internal/bdd"
	"orap/internal/benchgen"
	"orap/internal/ir"
	"orap/internal/lock"
	"orap/internal/rng"
)

// BenchmarkBDDCompile measures symbolic compilation of every primary
// output of a weighted-locked b20 slice — the same shape the exact
// audit compiles per key bit. Runs in the bench-smoke CI leg, so a
// budget regression (compile suddenly blowing up) fails loudly.
func BenchmarkBDDCompile(b *testing.B) {
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		b.Fatal(err)
	}
	scaled := prof.Scale(0.004)
	circuit, err := benchgen.Generate(scaled, 2020)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lock.Weighted(circuit, lock.WeightedOptions{
		KeyBits: 16, ControlWidth: 3, Rand: rng.New(2020),
	})
	if err != nil {
		b.Fatal(err)
	}
	p, err := ir.Compile(l.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	order := bdd.InputOrder(p)

	var nodes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := bdd.New(len(order), 0)
		cp := bdd.NewCompiler(m, p)
		for v, id := range order {
			if err := cp.BindVar(id, v); err != nil {
				b.Fatal(err)
			}
		}
		for _, o := range p.POs {
			if _, err := cp.Compile(o); err != nil {
				b.Fatal(err)
			}
		}
		nodes = m.Stats().Nodes
	}
	b.ReportMetric(float64(nodes), "nodes")
}
