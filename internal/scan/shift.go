package scan

import "fmt"

// SetLayout attaches an explicit scan-chain layout to the chip, enabling
// the cycle-accurate shift interface (ShiftCycle). The layout must cover
// every flip-flop, plus every key-register cell when the chip is OraP
// protected (the register sits in the chains by design); a conventional
// chip's layout must contain flip-flops only.
func (ch *Chip) SetLayout(l Layout) error {
	keyCells := ch.keyReg.Len()
	if ch.cfg.Protection == None {
		keyCells = 0
	}
	if err := l.Validate(keyCells, len(ch.ff)); err != nil {
		return err
	}
	ch.layout = &l
	return nil
}

// Layout returns the attached layout, if any.
func (ch *Chip) Layout() *Layout { return ch.layout }

// cellValue reads one chain cell from the chip state.
func (ch *Chip) cellValue(c Cell) bool {
	if c.IsKey {
		return ch.keyReg.Bit(c.Index)
	}
	return ch.ff[c.Index]
}

// setCellValue writes one chain cell.
func (ch *Chip) setCellValue(c Cell, v bool) {
	if c.IsKey {
		ch.keyReg.SetBit(c.Index, v)
	} else {
		ch.ff[c.Index] = v
	}
}

// ShiftCycle performs one scan shift clock: every chain takes its next
// input bit at the head, all cells move one position toward the tail, and
// the previous tail values appear at the scan-out pins. The chip must be
// in scan mode and must have a layout attached. len(in) must equal the
// number of chains; the returned slice has the same length.
//
// This is the cycle-accurate view of the abstract ScanInFFs/ScanOutFFs
// operations: shifting length-of-chain cycles loads or unloads a chain
// completely. Because the key-register cells sit in the chains, they
// shift like any other cell — an OraP chip's cleared register can be
// loaded with arbitrary attacker values, just never with the secret.
func (ch *Chip) ShiftCycle(in []bool) ([]bool, error) {
	if !ch.se {
		return nil, fmt.Errorf("scan: ShiftCycle outside scan mode")
	}
	if ch.layout == nil {
		return nil, fmt.Errorf("scan: no layout attached (SetLayout)")
	}
	if len(in) != len(ch.layout.Chains) {
		return nil, fmt.Errorf("scan: %d scan-in bits for %d chains", len(in), len(ch.layout.Chains))
	}
	out := make([]bool, len(ch.layout.Chains))
	for ci, chain := range ch.layout.Chains {
		if len(chain) == 0 {
			continue
		}
		out[ci] = ch.cellValue(chain[len(chain)-1])
		for i := len(chain) - 1; i > 0; i-- {
			ch.setCellValue(chain[i], ch.cellValue(chain[i-1]))
		}
		ch.setCellValue(chain[0], in[ci])
	}
	if ch.cfg.Protection != None {
		ch.unlocked = false
	}
	ch.cycles++
	return out, nil
}

// ShiftInPattern loads full chain contents through repeated ShiftCycle
// calls. pattern[ci][j] is the value that ends up in chain ci's cell j
// (head first). All chains are shifted in lock-step for max(len)
// cycles, padding shorter chains with zeros.
func (ch *Chip) ShiftInPattern(pattern [][]bool) error {
	if ch.layout == nil {
		return fmt.Errorf("scan: no layout attached (SetLayout)")
	}
	if len(pattern) != len(ch.layout.Chains) {
		return fmt.Errorf("scan: %d chain patterns for %d chains", len(pattern), len(ch.layout.Chains))
	}
	maxLen := 0
	for ci, chain := range ch.layout.Chains {
		if len(pattern[ci]) != len(chain) {
			return fmt.Errorf("scan: chain %d pattern has %d bits for %d cells", ci, len(pattern[ci]), len(chain))
		}
		if len(chain) > maxLen {
			maxLen = len(chain)
		}
	}
	// After T cycles, chain cell j holds the bit inserted at cycle
	// T-1-j, so the value destined for the tail enters first.
	in := make([]bool, len(pattern))
	for cycle := 0; cycle < maxLen; cycle++ {
		for ci := range pattern {
			idx := maxLen - 1 - cycle
			if idx < len(pattern[ci]) {
				in[ci] = pattern[ci][idx]
			} else {
				in[ci] = false // padding for shorter chains
			}
		}
		if _, err := ch.ShiftCycle(in); err != nil {
			return err
		}
	}
	return nil
}
