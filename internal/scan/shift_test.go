package scan

import (
	"testing"

	"orap/internal/rng"
)

// shiftChip builds an OraPBasic chip with a layout over its 4 flip-flops
// and 6 key cells.
func shiftChip(t *testing.T, chains int) *Chip {
	t.Helper()
	_, l := testCore(t, 40)
	cfg := basicConfig(t, l)
	ch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	layout := InterleavedLayout(l.Circuit.NumKeys(), cfg.NumFFs(), chains)
	if err := ch.SetLayout(layout); err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestShiftCycleRequiresScanModeAndLayout(t *testing.T) {
	ch := shiftChip(t, 2)
	if _, err := ch.ShiftCycle([]bool{true, false}); err == nil {
		t.Fatal("shift outside scan mode accepted")
	}
	ch.SetScanEnable(true)
	if _, err := ch.ShiftCycle([]bool{true}); err == nil {
		t.Fatal("wrong scan-in width accepted")
	}
	_, l := testCore(t, 41)
	bare, _ := New(basicConfig(t, l))
	bare.SetScanEnable(true)
	if _, err := bare.ShiftCycle([]bool{true}); err == nil {
		t.Fatal("shift without layout accepted")
	}
}

func TestShiftInPatternLoadsChains(t *testing.T) {
	ch := shiftChip(t, 2)
	ch.SetScanEnable(true)
	layout := ch.Layout()
	r := rng.New(42)
	pattern := make([][]bool, len(layout.Chains))
	for ci, chain := range layout.Chains {
		pattern[ci] = make([]bool, len(chain))
		r.Bits(pattern[ci])
	}
	if err := ch.ShiftInPattern(pattern); err != nil {
		t.Fatal(err)
	}
	for ci, chain := range layout.Chains {
		for j, cell := range chain {
			if got := ch.cellValue(cell); got != pattern[ci][j] {
				t.Fatalf("chain %d cell %d: got %v want %v (cell %+v)", ci, j, got, pattern[ci][j], cell)
			}
		}
	}
}

func TestShiftOutRecoversContents(t *testing.T) {
	// Shifting N more cycles returns the loaded values at the scan-out
	// pins, tail first.
	ch := shiftChip(t, 1)
	ch.SetScanEnable(true)
	chain := ch.Layout().Chains[0]
	pattern := [][]bool{make([]bool, len(chain))}
	for i := range pattern[0] {
		pattern[0][i] = i%3 == 0
	}
	if err := ch.ShiftInPattern(pattern); err != nil {
		t.Fatal(err)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		out, err := ch.ShiftCycle([]bool{false})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != pattern[0][i] {
			t.Fatalf("scan-out cycle for cell %d: got %v want %v", i, out[0], pattern[0][i])
		}
	}
}

func TestShiftTouchesKeyRegisterCells(t *testing.T) {
	// The key register is in the chains by design: shifting must move
	// values through its cells (that is why local reset suppression
	// cannot simply cut scan enable).
	ch := shiftChip(t, 1)
	ch.SetScanEnable(true)
	ones := [][]bool{make([]bool, len(ch.Layout().Chains[0]))}
	for i := range ones[0] {
		ones[0][i] = true
	}
	if err := ch.ShiftInPattern(ones); err != nil {
		t.Fatal(err)
	}
	allSet := true
	for _, b := range ch.Key() {
		allSet = allSet && b
	}
	if !allSet {
		t.Fatal("shifting did not reach the key-register cells")
	}
}

func TestSetLayoutValidates(t *testing.T) {
	_, l := testCore(t, 43)
	ch, _ := New(basicConfig(t, l))
	bad := Layout{Chains: [][]Cell{{{Index: 0}}}} // missing cells
	if err := ch.SetLayout(bad); err == nil {
		t.Fatal("incomplete layout accepted")
	}
	// A conventional chip's layout must not contain key cells.
	cfg := Config{Core: l.Circuit, RealPIs: 5, RealPOs: 1, Protection: None, Key: l.Key}
	conv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	withKeys := InterleavedLayout(l.Circuit.NumKeys(), cfg.NumFFs(), 1)
	if err := conv.SetLayout(withKeys); err == nil {
		t.Fatal("conventional chip accepted key cells in its chains")
	}
	ffOnly := InterleavedLayout(0, cfg.NumFFs(), 1)
	if err := conv.SetLayout(ffOnly); err != nil {
		t.Fatal(err)
	}
}
