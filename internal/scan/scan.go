// Package scan models an activated chip at the level the OraP paper
// reasons about: a locked combinational core, its normal (state)
// flip-flops, the key-register LFSR, the scan chains that thread through
// both, and the per-cell pulse generators of Fig. 2 that clear the key
// register on every rising edge of scan enable.
//
// The model exposes exactly the controls an attacker on the tester has —
// scan enable, scan in/out, functional capture clocks — plus the hooks a
// foundry-inserted hardware Trojan would add (suppressing the key-register
// reset, freezing the normal flip-flops, or shadowing the key), so the
// threat scenarios of Section III replay as executable experiments.
package scan

import (
	"fmt"

	"orap/internal/gf2"
	"orap/internal/lfsr"
	"orap/internal/netlist"
	"orap/internal/sim"
)

// Protection selects the key-register behaviour.
type Protection int

// Protection levels.
const (
	// None models a conventional logic-locked chip: the key register is
	// loaded from tamper-proof memory and keeps its contents in test
	// mode. This is the configuration every oracle-guided attack
	// assumes.
	None Protection = iota
	// OraPBasic is the scheme of Fig. 1: the key register is an LFSR
	// unlocked by a multi-cycle key sequence, and every cell is cleared
	// by its pulse generator when scan enable rises.
	OraPBasic
	// OraPModified is the scheme of Fig. 3: additionally, half the
	// reseeding points are driven by circuit responses captured during
	// the (still locked) unlock cycles, so frozen flip-flops corrupt the
	// generated key.
	OraPModified
)

// String names the protection level.
func (p Protection) String() string {
	switch p {
	case None:
		return "none"
	case OraPBasic:
		return "orap-basic"
	case OraPModified:
		return "orap-modified"
	}
	return fmt.Sprintf("Protection(%d)", int(p))
}

// Trojans models the payloads an untrusted foundry could add. The
// corresponding payload hardware costs are computed in package trojan;
// here only the behavioural effect matters.
type Trojans struct {
	// SuppressKeyReset disables the pulse-generator reset of the key
	// register (scenarios (a) and (b) of the paper).
	SuppressKeyReset bool
	// FreezeFFs holds the normal flip-flops at their current values
	// during unlock (scenario (e)).
	FreezeFFs bool
	// ShadowKey snapshots the key register into a shadow register at the
	// end of every unlock (scenario (c)).
	ShadowKey bool
}

// Config describes a chip build.
type Config struct {
	// Core is the locked combinational core. Its primary inputs are
	// [pins..., FF outputs...] and its primary outputs are
	// [pins..., FF inputs...], the standard combinational-part view.
	Core *netlist.Circuit
	// RealPIs is the number of leading Core inputs that are package pins
	// (the rest are flip-flop outputs).
	RealPIs int
	// RealPOs is the number of leading Core outputs that are package
	// pins (the rest are flip-flop inputs). The flip-flop counts implied
	// by RealPIs and RealPOs must match.
	RealPOs int
	// Protection selects the key-register scheme.
	Protection Protection
	// LFSR is the key-register wiring; LFSR.N must equal the core's key
	// width. Ignored for Protection == None.
	LFSR lfsr.Config
	// Schedule is the unlock schedule (seed cycles and free runs).
	Schedule lfsr.Schedule
	// Seeds is the key sequence stored in tamper-proof memory, one
	// gf2.Vec of width len(MemInject) per seeded cycle.
	Seeds []gf2.Vec
	// MemInject lists the positions (indices into LFSR.Inject) fed by
	// the memory seeds.
	MemInject []int
	// RespInject lists the positions (indices into LFSR.Inject) fed by
	// circuit responses (OraPModified only); disjoint from MemInject.
	RespInject []int
	// RespTaps lists, for each RespInject entry, the flip-flop index
	// whose value drives that reseeding point.
	RespTaps []int
	// Key is the conventional stored key for Protection == None.
	Key []bool
}

// NumFFs returns the number of normal flip-flops implied by the core split.
func (c *Config) NumFFs() int { return c.Core.NumInputs() - c.RealPIs }

// Validate checks the structural consistency of the configuration.
func (c *Config) Validate() error {
	if c.Core == nil {
		return fmt.Errorf("scan: nil core")
	}
	if c.RealPIs < 0 || c.RealPIs > c.Core.NumInputs() {
		return fmt.Errorf("scan: RealPIs %d out of range", c.RealPIs)
	}
	if c.RealPOs < 0 || c.RealPOs > c.Core.NumOutputs() {
		return fmt.Errorf("scan: RealPOs %d out of range", c.RealPOs)
	}
	ffIn := c.Core.NumInputs() - c.RealPIs
	ffOut := c.Core.NumOutputs() - c.RealPOs
	if ffIn != ffOut {
		return fmt.Errorf("scan: %d FF outputs vs %d FF inputs", ffIn, ffOut)
	}
	switch c.Protection {
	case None:
		if len(c.Key) != c.Core.NumKeys() {
			return fmt.Errorf("scan: stored key width %d != core %d", len(c.Key), c.Core.NumKeys())
		}
	case OraPBasic, OraPModified:
		if err := c.LFSR.Validate(); err != nil {
			return err
		}
		if c.LFSR.N != c.Core.NumKeys() {
			return fmt.Errorf("scan: LFSR width %d != core key width %d", c.LFSR.N, c.Core.NumKeys())
		}
		if len(c.Seeds) != c.Schedule.NumSeeds() {
			return fmt.Errorf("scan: %d seeds for a %d-seed schedule", len(c.Seeds), c.Schedule.NumSeeds())
		}
		used := make(map[int]bool)
		for _, p := range append(append([]int(nil), c.MemInject...), c.RespInject...) {
			if p < 0 || p >= len(c.LFSR.Inject) {
				return fmt.Errorf("scan: inject position %d out of range", p)
			}
			if used[p] {
				return fmt.Errorf("scan: inject position %d assigned twice", p)
			}
			used[p] = true
		}
		for _, s := range c.Seeds {
			if s.Len() != len(c.MemInject) {
				return fmt.Errorf("scan: seed width %d != memory inject count %d", s.Len(), len(c.MemInject))
			}
		}
		if c.Protection == OraPModified {
			if len(c.RespInject) == 0 {
				return fmt.Errorf("scan: OraPModified requires response-driven inject points")
			}
			if len(c.RespTaps) != len(c.RespInject) {
				return fmt.Errorf("scan: %d response taps for %d response inject points", len(c.RespTaps), len(c.RespInject))
			}
			for _, t := range c.RespTaps {
				if t < 0 || t >= ffIn {
					return fmt.Errorf("scan: response tap FF %d out of range (%d FFs)", t, ffIn)
				}
			}
		} else if len(c.RespInject) != 0 {
			return fmt.Errorf("scan: response inject points given for non-modified protection")
		}
	default:
		return fmt.Errorf("scan: unknown protection %d", c.Protection)
	}
	return nil
}

// Chip is a behavioural model of the fabricated, activated chip.
type Chip struct {
	cfg     Config
	trojans Trojans

	ff       []bool  // normal flip-flop state
	keyReg   gf2.Vec // key register contents
	shadow   gf2.Vec // shadow register (ShadowKey trojan)
	se       bool    // scan enable level
	unlocked bool    // whether the unlock sequence has been run since the last key clear

	// core is the reusable evaluator over the compiled combinational
	// core; every capture clock goes through it.
	core *sim.Evaluator

	// batch is the lazily built word-parallel evaluator behind ScanBatch
	// (batch.go); it shares core's compiled program.
	batch *sim.Parallel

	// cycles counts test-clock cycles spent on the scan interface:
	// chain-length clocks per shift operation, one per capture or shift
	// cycle. Unlock is the activation procedure, not attacker channel
	// use, and is not counted.
	cycles int64

	// layout, when attached via SetLayout, enables the cycle-accurate
	// shift interface (shift.go).
	layout *Layout
}

// New builds a powered-on chip (all state cleared, locked).
func New(cfg Config) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	core, err := sim.NewEvaluator(cfg.Core)
	if err != nil {
		return nil, err
	}
	return &Chip{
		cfg:    cfg,
		ff:     make([]bool, cfg.NumFFs()),
		keyReg: gf2.NewVec(cfg.Core.NumKeys()),
		shadow: gf2.NewVec(cfg.Core.NumKeys()),
		core:   core,
	}, nil
}

// Config returns the chip's build configuration.
func (ch *Chip) Config() Config { return ch.cfg }

// ArmTrojans installs foundry Trojan behaviour (modelling a chip the
// attacker fabricated with modifications and then triggered).
func (ch *Chip) ArmTrojans(t Trojans) { ch.trojans = t }

// ScanEnable returns the current scan-enable level.
func (ch *Chip) ScanEnable() bool { return ch.se }

// ChainLength returns the length of the longest scan chain in shift
// cycles. With a layout attached this is the longest configured chain;
// otherwise the model assumes a single chain threading every flip-flop
// plus, on a protected chip, every key-register cell (the cells sit in
// the chains by design).
func (ch *Chip) ChainLength() int {
	if ch.layout != nil {
		m := 0
		for _, chain := range ch.layout.Chains {
			if len(chain) > m {
				m = len(chain)
			}
		}
		return m
	}
	n := len(ch.ff)
	if ch.cfg.Protection != None {
		n += ch.keyReg.Len()
	}
	return n
}

// CyclesPerQuery returns the modeled test-clock cost of one scan-protocol
// query: shift in (chain length), one capture clock, shift out (chain
// length) — 2·L+1.
func (ch *Chip) CyclesPerQuery() int64 { return 2*int64(ch.ChainLength()) + 1 }

// Cycles returns the test-clock cycles spent on the scan interface so
// far (shift and capture clocks; the unlock procedure is not counted).
func (ch *Chip) Cycles() int64 { return ch.cycles }

// Unlocked reports whether the controller believes the chip is unlocked
// (an unlock sequence ran and the key register was not cleared since).
func (ch *Chip) Unlocked() bool { return ch.unlocked }

// SetScanEnable drives the scan-enable pin. On a rising edge the pulse
// generators clear every key-register cell (unless a Trojan suppresses
// the reset) — the core mechanism of the OraP scheme.
func (ch *Chip) SetScanEnable(v bool) {
	rising := v && !ch.se
	ch.se = v
	if !rising {
		return
	}
	if ch.cfg.Protection == None {
		return // conventional key register: unaffected by scan
	}
	if ch.trojans.SuppressKeyReset {
		return
	}
	ch.keyReg = gf2.NewVec(ch.cfg.Core.NumKeys())
	ch.unlocked = false
}

// ScanInFFs shifts the given values into the normal flip-flops. The chip
// must be in scan mode.
func (ch *Chip) ScanInFFs(v []bool) error {
	if !ch.se {
		return fmt.Errorf("scan: ScanInFFs outside scan mode")
	}
	if len(v) != len(ch.ff) {
		return fmt.Errorf("scan: %d bits for %d flip-flops", len(v), len(ch.ff))
	}
	copy(ch.ff, v)
	ch.cycles += int64(ch.ChainLength())
	return nil
}

// ScanInKey shifts values into the key-register cells, which sit in the
// scan chains by design (Section II of the paper: this both blocks the
// local scan-enable-suppression Trojan and improves testability).
func (ch *Chip) ScanInKey(v []bool) error {
	if !ch.se {
		return fmt.Errorf("scan: ScanInKey outside scan mode")
	}
	if ch.cfg.Protection == None {
		return fmt.Errorf("scan: conventional key register is not scannable")
	}
	if len(v) != ch.keyReg.Len() {
		return fmt.Errorf("scan: %d bits for %d key cells", len(v), ch.keyReg.Len())
	}
	ch.keyReg = gf2.FromBools(v)
	ch.unlocked = false
	ch.cycles += int64(ch.ChainLength())
	return nil
}

// ScanOutFFs returns the current flip-flop contents (scan mode only).
func (ch *Chip) ScanOutFFs() ([]bool, error) {
	if !ch.se {
		return nil, fmt.Errorf("scan: ScanOutFFs outside scan mode")
	}
	ch.cycles += int64(ch.ChainLength())
	return append([]bool(nil), ch.ff...), nil
}

// ScanOutKey returns the current key-register contents via the scan
// chains. Under OraP this is only reachable after the rising scan-enable
// edge already cleared the register.
func (ch *Chip) ScanOutKey() ([]bool, error) {
	if !ch.se {
		return nil, fmt.Errorf("scan: ScanOutKey outside scan mode")
	}
	if ch.cfg.Protection == None {
		return nil, fmt.Errorf("scan: conventional key register is not scannable")
	}
	ch.cycles += int64(ch.ChainLength())
	return ch.keyReg.Bools(), nil
}

// ReadShadow returns the shadow register planted by the ShadowKey Trojan.
func (ch *Chip) ReadShadow() ([]bool, error) {
	if !ch.trojans.ShadowKey {
		return nil, fmt.Errorf("scan: no shadow-key trojan armed")
	}
	return ch.shadow.Bools(), nil
}

// evalCore evaluates the combinational core for the given pin values with
// the current flip-flop and key-register state. It returns the full core
// output vector.
func (ch *Chip) evalCore(pins []bool) ([]bool, error) {
	if len(pins) != ch.cfg.RealPIs {
		return nil, fmt.Errorf("scan: %d pin values for %d pins", len(pins), ch.cfg.RealPIs)
	}
	in := make([]bool, ch.cfg.Core.NumInputs())
	copy(in, pins)
	copy(in[ch.cfg.RealPIs:], ch.ff)
	return ch.core.Eval(in, ch.keyReg.Bools())
}

// CaptureClock applies one functional clock in normal mode: the core
// evaluates with the current state and key, pin outputs are returned, and
// the flip-flops capture their next state.
func (ch *Chip) CaptureClock(pins []bool) ([]bool, error) {
	if ch.se {
		return nil, fmt.Errorf("scan: CaptureClock during scan mode")
	}
	out, err := ch.evalCore(pins)
	if err != nil {
		return nil, err
	}
	copy(ch.ff, out[ch.cfg.RealPOs:])
	ch.cycles++
	return out[:ch.cfg.RealPOs], nil
}

// Unlock runs the logic-locking controller's unlock procedure.
//
// For a conventional chip the stored key is loaded into the key register.
// For OraP chips the controller first pulses scan enable to clear the
// register (the paper's reset idiom), then feeds the key sequence through
// the LFSR over the configured schedule while the still-locked circuit
// operates; under OraPModified the designated flip-flops feed half of the
// reseeding points each cycle. Pins are held at the given values (all
// zero if nil) for the duration, matching the synthesis-time assumption.
func (ch *Chip) Unlock(pins []bool) error {
	if pins == nil {
		pins = make([]bool, ch.cfg.RealPIs)
	}
	switch ch.cfg.Protection {
	case None:
		ch.keyReg = gf2.FromBools(ch.cfg.Key)
		ch.unlocked = true
		return nil
	}
	// Reset the key register via a scan-enable pulse.
	ch.SetScanEnable(true)
	ch.SetScanEnable(false)
	if !ch.trojans.FreezeFFs {
		// Normal flip-flops start the unlock sequence from reset.
		for i := range ch.ff {
			ch.ff[i] = false
		}
	}
	width := len(ch.cfg.LFSR.Inject)
	reg, err := lfsr.New(ch.cfg.LFSR)
	if err != nil {
		return err
	}
	if err := reg.SetState(ch.keyReg); err != nil {
		return err
	}
	seedIdx := 0
	step := func(seeded bool) error {
		inj := gf2.NewVec(width)
		if seeded {
			s := ch.cfg.Seeds[seedIdx]
			for i, pos := range ch.cfg.MemInject {
				if s.Bit(i) {
					inj.SetBit(pos, true)
				}
			}
			seedIdx++
		}
		if ch.cfg.Protection == OraPModified {
			for i, pos := range ch.cfg.RespInject {
				if ch.ff[ch.cfg.RespTaps[i]] {
					inj.SetBit(pos, true)
				}
			}
		}
		// The circuit operates (locked) during the unlock cycle; its
		// next state is captured unless a Trojan froze the flip-flops.
		ch.keyReg = reg.State()
		out, err := ch.evalCore(pins)
		if err != nil {
			return err
		}
		if !ch.trojans.FreezeFFs {
			copy(ch.ff, out[ch.cfg.RealPOs:])
		}
		return reg.Step(inj)
	}
	for _, fr := range ch.cfg.Schedule.FreeRunAfter {
		if err := step(true); err != nil {
			return err
		}
		for i := 0; i < fr; i++ {
			if err := step(false); err != nil {
				return err
			}
		}
	}
	ch.keyReg = reg.State()
	ch.unlocked = true
	if ch.trojans.ShadowKey {
		ch.shadow = ch.keyReg.Clone()
	}
	return nil
}

// Key returns the current key-register contents. This is a modelling
// convenience for experiments and tests — the physical chip offers no
// such port.
func (ch *Chip) Key() []bool { return ch.keyReg.Bools() }
