package scan

import (
	"fmt"

	"orap/internal/sim"
)

// ScanBatch runs up to 64 scan-protocol queries through the chip in one
// call. in is bit-sliced over the core inputs (pins first, then
// flip-flop-driven inputs): bit p of in[i] is pattern p's value of core
// input i. The response uses the same layout over the core outputs (pin
// outputs, then the captured flip-flop values); lanes at and above n are
// zero.
//
// Each pattern replays the exact scalar protocol — raise scan enable
// (rising edge: OraP pulse generators clear the key register), shift the
// pattern in, drop scan enable for one capture clock, raise scan enable
// again to shift the response out, drop it. The scan-enable edges are
// driven through SetScanEnable per pattern, so the self-clear semantics,
// Trojan interactions and unlocked bookkeeping are identical to n scalar
// queries; the key register seen by each capture is snapshotted per lane
// before the cores evaluate word-parallel in a single pass. The chip
// ends in the same state as after the n-th scalar query: scan enable
// low, flip-flops holding the last pattern's captured response, and
// n·(2·chain-length+1) test-clock cycles accounted.
func (ch *Chip) ScanBatch(in []uint64, n int) ([]uint64, error) {
	if n < 1 || n > 64 {
		return nil, fmt.Errorf("scan: batch size %d out of range [1,64]", n)
	}
	if len(in) != ch.cfg.Core.NumInputs() {
		return nil, fmt.Errorf("scan: batch width %d != core inputs %d", len(in), ch.cfg.Core.NumInputs())
	}
	if ch.batch == nil {
		p, err := sim.ForProgram(ch.core.Program(), 1)
		if err != nil {
			return nil, err
		}
		ch.batch = p
	}
	prog := ch.batch.Program()

	// Replay the scan-enable protocol per pattern and snapshot the key
	// register each capture clock sees. The flip-flop scan-in fully
	// overwrites the state, so patterns cannot couple through ch.ff; the
	// key register evolves only on scan-enable edges, replayed here in
	// order.
	keyWords := make([]uint64, ch.keyReg.Len())
	for p := 0; p < n; p++ {
		ch.SetScanEnable(true) // rising edge: OraP clears the key register
		bit := uint64(1) << uint(p)
		for i := 0; i < ch.keyReg.Len(); i++ {
			if ch.keyReg.Bit(i) {
				keyWords[i] |= bit
			}
		}
		ch.SetScanEnable(false) // capture happens here (deferred below)
		ch.SetScanEnable(true)  // second rising edge: shift the response out
		ch.SetScanEnable(false)
	}

	// All captures evaluate in one word-parallel pass over the shared
	// compiled program, with the per-lane key snapshots applied.
	for i, id := range prog.PIs {
		ch.batch.SetInput(int(id), in[i:i+1])
	}
	for i, id := range prog.Keys {
		ch.batch.SetInput(int(id), keyWords[i:i+1])
	}
	ch.batch.Run()

	mask := ^uint64(0)
	if n < 64 {
		mask = 1<<uint(n) - 1
	}
	out := make([]uint64, prog.NumOutputs())
	for j, id := range prog.POs {
		out[j] = ch.batch.Value(int(id))[0] & mask
	}

	// The chip state after the batch matches the n-th scalar query: the
	// flip-flops hold the last pattern's captured next-state.
	last := uint(n - 1)
	for k := range ch.ff {
		ch.ff[k] = out[ch.cfg.RealPOs+k]>>last&1 == 1
	}
	ch.cycles += int64(n) * ch.CyclesPerQuery()
	return out, nil
}
