package scan

import (
	"testing"

	"orap/internal/circuits"
	"orap/internal/gf2"
	"orap/internal/lfsr"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/rng"
	"orap/internal/sim"
)

// testCore returns a locked ripple adder split as 5 pins + 4 FFs on the
// input side and 1 pin + 4 FFs on the output side.
func testCore(t *testing.T, seed uint64) (*netlist.Circuit, *lock.Locked) {
	t.Helper()
	orig := circuits.RippleAdder(4) // 9 inputs, 5 outputs
	l, err := lock.RandomXOR(orig, 6, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return orig, l
}

// basicConfig builds an OraPBasic config with hand-made seeds (tests that
// need a *correct* key sequence use package orap instead; here we only
// exercise chip mechanics).
func basicConfig(t *testing.T, l *lock.Locked) Config {
	t.Helper()
	n := l.Circuit.NumKeys()
	cfg := Config{
		Core:       l.Circuit,
		RealPIs:    5,
		RealPOs:    1,
		Protection: OraPBasic,
		LFSR: lfsr.Config{
			N:      n,
			Taps:   lfsr.StandardTaps(n, 8),
			Inject: lfsr.AllInject(n),
		},
		Schedule:  lfsr.UniformSchedule(2, 1),
		Seeds:     []gf2.Vec{gf2.NewVec(n), gf2.NewVec(n)},
		MemInject: identity(n),
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	_, l := testCore(t, 1)
	good := basicConfig(t, l)

	bad := good
	bad.RealPIs = 4 // 5 FF inputs vs 4 FF outputs
	if err := bad.Validate(); err == nil {
		t.Error("FF mismatch accepted")
	}

	bad = good
	bad.Seeds = bad.Seeds[:1]
	if err := bad.Validate(); err == nil {
		t.Error("seed/schedule mismatch accepted")
	}

	bad = good
	bad.MemInject = append([]int(nil), bad.MemInject...)
	bad.MemInject[0] = bad.MemInject[1] // duplicate position
	if err := bad.Validate(); err == nil {
		t.Error("duplicate inject position accepted")
	}

	bad = good
	bad.Protection = None
	bad.Key = nil
	if err := bad.Validate(); err == nil {
		t.Error("None protection without stored key accepted")
	}

	bad = good
	bad.Protection = OraPModified
	if err := bad.Validate(); err == nil {
		t.Error("modified protection without response points accepted")
	}
}

func TestConventionalChipUnlocksAndAnswers(t *testing.T) {
	orig, l := testCore(t, 2)
	cfg := Config{
		Core:       l.Circuit,
		RealPIs:    5,
		RealPOs:    1,
		Protection: None,
		Key:        l.Key,
	}
	ch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Unlock(nil); err != nil {
		t.Fatal(err)
	}
	if !ch.Unlocked() {
		t.Fatal("chip not unlocked")
	}
	// Capture with known pins/FF state must match direct core simulation.
	r := rng.New(3)
	x := make([]bool, l.Circuit.NumInputs())
	for trial := 0; trial < 20; trial++ {
		r.Bits(x)
		ch.SetScanEnable(true)
		if err := ch.ScanInFFs(x[5:]); err != nil {
			t.Fatal(err)
		}
		ch.SetScanEnable(false)
		pinOut, err := ch.CaptureClock(x[:5])
		if err != nil {
			t.Fatal(err)
		}
		ch.SetScanEnable(true)
		ffOut, err := ch.ScanOutFFs()
		if err != nil {
			t.Fatal(err)
		}
		ch.SetScanEnable(false)
		want, err := sim.Eval(l.Circuit, x, l.Key)
		if err != nil {
			t.Fatal(err)
		}
		got := append(append([]bool(nil), pinOut...), ffOut...)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d output %d: chip %v, sim %v", trial, j, got[j], want[j])
			}
		}
	}
	_ = orig
}

func TestPulseGeneratorClearsKeyOnRisingEdgeOnly(t *testing.T) {
	_, l := testCore(t, 4)
	cfg := basicConfig(t, l)
	ch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Load a non-zero key via scan (the register is scannable by design).
	ch.SetScanEnable(true)
	val := make([]bool, l.Circuit.NumKeys())
	val[0], val[3] = true, true
	// First rising edge already cleared; set after.
	if err := ch.ScanInKey(val); err != nil {
		t.Fatal(err)
	}
	// Holding scan enable high must not clear.
	ch.SetScanEnable(true)
	if got := ch.Key(); !boolsEq(got, val) {
		t.Fatal("level-high scan enable cleared the key register")
	}
	// Falling edge must not clear.
	ch.SetScanEnable(false)
	if got := ch.Key(); !boolsEq(got, val) {
		t.Fatal("falling edge cleared the key register")
	}
	// Rising edge must clear.
	ch.SetScanEnable(true)
	if got := ch.Key(); !allFalse(got) {
		t.Fatal("rising edge did not clear the key register")
	}
}

func TestTrojanSuppressesReset(t *testing.T) {
	_, l := testCore(t, 5)
	cfg := basicConfig(t, l)
	ch, _ := New(cfg)
	ch.ArmTrojans(Trojans{SuppressKeyReset: true})
	ch.SetScanEnable(true)
	val := make([]bool, l.Circuit.NumKeys())
	val[1] = true
	ch.ScanInKey(val)
	ch.SetScanEnable(false)
	ch.SetScanEnable(true) // rising edge, but reset suppressed
	if got := ch.Key(); !boolsEq(got, val) {
		t.Fatal("suppressed reset still cleared the register")
	}
}

func TestConventionalKeyRegisterNotScannable(t *testing.T) {
	_, l := testCore(t, 6)
	cfg := Config{Core: l.Circuit, RealPIs: 5, RealPOs: 1, Protection: None, Key: l.Key}
	ch, _ := New(cfg)
	ch.SetScanEnable(true)
	if err := ch.ScanInKey(make([]bool, len(l.Key))); err == nil {
		t.Fatal("conventional key register accepted scan writes")
	}
	if _, err := ch.ScanOutKey(); err == nil {
		t.Fatal("conventional key register leaked via scan")
	}
}

func TestScanOpsRequireScanMode(t *testing.T) {
	_, l := testCore(t, 7)
	ch, _ := New(basicConfig(t, l))
	if err := ch.ScanInFFs(make([]bool, 4)); err == nil {
		t.Error("ScanInFFs outside scan mode accepted")
	}
	if _, err := ch.ScanOutFFs(); err == nil {
		t.Error("ScanOutFFs outside scan mode accepted")
	}
	ch.SetScanEnable(true)
	if _, err := ch.CaptureClock(make([]bool, 5)); err == nil {
		t.Error("CaptureClock during scan mode accepted")
	}
}

func TestLastCorrectResponseScansOut(t *testing.T) {
	// Section II-A: the one correct response an OraP chip can emit is the
	// last captured state before scan enable rises — but obtaining it for
	// a chosen input would require knowing the key-dependent state
	// sequence, so it does not enable attacks.
	_, l := testCore(t, 8)
	cfg := basicConfig(t, l)
	ch, _ := New(cfg)
	// Simulate an unlocked chip by scanning the correct key in (a test
	// convenience; a real chip gets it from the unlock sequence).
	ch.SetScanEnable(true)
	ch.ScanInKey(l.Key)
	ch.ScanInFFs(make([]bool, 4))
	ch.SetScanEnable(false)

	pins := []bool{true, false, true, true, false}
	if _, err := ch.CaptureClock(pins); err != nil {
		t.Fatal(err)
	}
	x := append(append([]bool(nil), pins...), false, false, false, false)
	want, _ := sim.Eval(l.Circuit, x, l.Key)

	ch.SetScanEnable(true) // clears the key…
	got, err := ch.ScanOutFFs()
	if err != nil {
		t.Fatal(err)
	}
	// …but the captured flip-flop contents are still the correct response.
	if !boolsEq(got, want[1:]) {
		t.Fatalf("last response lost: got %v want %v", got, want[1:])
	}
	if !allFalse(ch.Key()) {
		t.Fatal("key register survived the rising edge")
	}
}

func TestUnlockWithWrongSeedsYieldsWrongKey(t *testing.T) {
	_, l := testCore(t, 9)
	cfg := basicConfig(t, l) // all-zero seeds: final key is all zero
	ch, _ := New(cfg)
	if err := ch.Unlock(nil); err != nil {
		t.Fatal(err)
	}
	if !allFalse(ch.Key()) {
		t.Fatal("all-zero key sequence should unlock to the all-zero key")
	}
}

func boolsEq(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allFalse(a []bool) bool {
	for _, v := range a {
		if v {
			return false
		}
	}
	return true
}
