package scan

import "fmt"

// Cell identifies one element of a scan chain: either a key-register
// (LFSR) cell or a normal circuit flip-flop.
type Cell struct {
	// IsKey marks key-register cells.
	IsKey bool
	// Index is the key-cell index (0..n-1) or flip-flop index.
	Index int
}

// Layout is an explicit scan-chain ordering. The behavioural chip model
// does not depend on the ordering (shift cycles are abstracted), but the
// Section III countermeasure against the stem-suppression Trojan is a
// *placement* rule — "all LFSR cells should be placed before normal
// circuit flip-flops in the scan chains … interleaved" — and the Trojan's
// bypass-mux payload is a function of this layout.
type Layout struct {
	Chains [][]Cell
}

// Validate checks that every key cell in [0, keyCells) and every flip-flop
// in [0, ffs) appears exactly once across the chains.
func (l Layout) Validate(keyCells, ffs int) error {
	seenKey := make([]bool, keyCells)
	seenFF := make([]bool, ffs)
	for ci, chain := range l.Chains {
		for _, c := range chain {
			if c.IsKey {
				if c.Index < 0 || c.Index >= keyCells {
					return fmt.Errorf("scan: chain %d has key cell %d out of range", ci, c.Index)
				}
				if seenKey[c.Index] {
					return fmt.Errorf("scan: key cell %d appears twice", c.Index)
				}
				seenKey[c.Index] = true
			} else {
				if c.Index < 0 || c.Index >= ffs {
					return fmt.Errorf("scan: chain %d has flip-flop %d out of range", ci, c.Index)
				}
				if seenFF[c.Index] {
					return fmt.Errorf("scan: flip-flop %d appears twice", c.Index)
				}
				seenFF[c.Index] = true
			}
		}
	}
	for i, s := range seenKey {
		if !s {
			return fmt.Errorf("scan: key cell %d missing from the layout", i)
		}
	}
	for i, s := range seenFF {
		if !s {
			return fmt.Errorf("scan: flip-flop %d missing from the layout", i)
		}
	}
	return nil
}

// InterleavedLayout builds the paper's recommended layout: key cells are
// distributed round-robin over the chains, each placed before normal
// flip-flops and interleaved with them, so every key cell directly drives
// a normal flip-flop in its chain.
func InterleavedLayout(keyCells, ffs, chains int) Layout {
	if chains <= 0 {
		chains = 1
	}
	out := Layout{Chains: make([][]Cell, chains)}
	// Distribute both populations round-robin, then interleave per chain
	// starting with a key cell.
	var keysPer, ffsPer [][]int
	keysPer = make([][]int, chains)
	ffsPer = make([][]int, chains)
	for i := 0; i < keyCells; i++ {
		keysPer[i%chains] = append(keysPer[i%chains], i)
	}
	for i := 0; i < ffs; i++ {
		ffsPer[i%chains] = append(ffsPer[i%chains], i)
	}
	for c := 0; c < chains; c++ {
		ks, fs := keysPer[c], ffsPer[c]
		var chain []Cell
		for len(ks) > 0 || len(fs) > 0 {
			if len(ks) > 0 {
				chain = append(chain, Cell{IsKey: true, Index: ks[0]})
				ks = ks[1:]
			}
			if len(fs) > 0 {
				chain = append(chain, Cell{Index: fs[0]})
				fs = fs[1:]
			}
		}
		out.Chains[c] = chain
	}
	return out
}

// TailLayout builds the layout an attacker would prefer: all key cells
// bunched at the end of the chains, where a single cut per chain bypasses
// them. It exists to quantify what the countermeasure buys.
func TailLayout(keyCells, ffs, chains int) Layout {
	if chains <= 0 {
		chains = 1
	}
	out := Layout{Chains: make([][]Cell, chains)}
	for i := 0; i < ffs; i++ {
		c := i % chains
		out.Chains[c] = append(out.Chains[c], Cell{Index: i})
	}
	for i := 0; i < keyCells; i++ {
		c := i % chains
		out.Chains[c] = append(out.Chains[c], Cell{IsKey: true, Index: i})
	}
	return out
}

// BypassMuxCount returns the number of 2-to-1 multiplexers a scenario-(b)
// Trojan needs to splice the key cells out of the chains: one for every
// key cell that drives a normal flip-flop, plus one per chain whose
// scan-out is driven by a key cell (the output still has to come from
// somewhere once the cell is removed).
func (l Layout) BypassMuxCount() int {
	muxes := 0
	for _, chain := range l.Chains {
		for i, c := range chain {
			if !c.IsKey {
				continue
			}
			if i+1 < len(chain) && !chain[i+1].IsKey {
				muxes++ // key cell feeds a normal flip-flop
			}
			if i+1 == len(chain) {
				muxes++ // key cell feeds the scan-out port
			}
		}
	}
	return muxes
}

// KeyRunLengths returns the lengths of maximal runs of consecutive key
// cells, a diagnostic for how interleaved a layout is (the
// countermeasure wants runs of length 1).
func (l Layout) KeyRunLengths() []int {
	var runs []int
	for _, chain := range l.Chains {
		run := 0
		for _, c := range chain {
			if c.IsKey {
				run++
				continue
			}
			if run > 0 {
				runs = append(runs, run)
				run = 0
			}
		}
		if run > 0 {
			runs = append(runs, run)
		}
	}
	return runs
}
