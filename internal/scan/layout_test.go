package scan

import "testing"

func TestInterleavedLayoutValid(t *testing.T) {
	for _, tc := range []struct{ keys, ffs, chains int }{
		{8, 32, 4}, {128, 1000, 16}, {3, 1, 2}, {5, 0, 1},
	} {
		l := InterleavedLayout(tc.keys, tc.ffs, tc.chains)
		if err := l.Validate(tc.keys, tc.ffs); err != nil {
			t.Errorf("keys=%d ffs=%d chains=%d: %v", tc.keys, tc.ffs, tc.chains, err)
		}
	}
}

func TestInterleavedLayoutMaximizesBypassCost(t *testing.T) {
	// With interleaving, every key cell drives a normal flip-flop (or the
	// scan-out port), so the scenario-(b) Trojan pays one mux per cell —
	// the countermeasure's whole point.
	const keys, ffs, chains = 128, 1024, 8
	l := InterleavedLayout(keys, ffs, chains)
	if got := l.BypassMuxCount(); got != keys {
		t.Fatalf("interleaved bypass muxes = %d, want %d (one per key cell)", got, keys)
	}
	// Runs of key cells all have length 1.
	for _, r := range l.KeyRunLengths() {
		if r != 1 {
			t.Fatalf("interleaved layout has a key run of length %d", r)
		}
	}
}

func TestTailLayoutIsCheapToBypass(t *testing.T) {
	// The attacker-preferred layout: key cells bunched at chain tails
	// need only one mux per chain.
	const keys, ffs, chains = 128, 1024, 8
	l := TailLayout(keys, ffs, chains)
	if err := l.Validate(keys, ffs); err != nil {
		t.Fatal(err)
	}
	if got := l.BypassMuxCount(); got != chains {
		t.Fatalf("tail layout bypass muxes = %d, want %d (one per chain)", got, chains)
	}
	// That is a 16× payload gap — the quantified value of the placement
	// guideline.
	inter := InterleavedLayout(keys, ffs, chains)
	if inter.BypassMuxCount() <= 4*l.BypassMuxCount() {
		t.Fatalf("countermeasure gain too small: %d vs %d", inter.BypassMuxCount(), l.BypassMuxCount())
	}
}

func TestLayoutValidateCatchesErrors(t *testing.T) {
	l := Layout{Chains: [][]Cell{{{IsKey: true, Index: 0}, {Index: 0}}}}
	if err := l.Validate(2, 1); err == nil {
		t.Error("missing key cell not caught")
	}
	l = Layout{Chains: [][]Cell{{{IsKey: true, Index: 0}, {IsKey: true, Index: 0}}}}
	if err := l.Validate(1, 0); err == nil {
		t.Error("duplicate key cell not caught")
	}
	l = Layout{Chains: [][]Cell{{{Index: 5}}}}
	if err := l.Validate(0, 1); err == nil {
		t.Error("out-of-range flip-flop not caught")
	}
}

func TestKeyRunLengths(t *testing.T) {
	l := Layout{Chains: [][]Cell{{
		{IsKey: true, Index: 0}, {IsKey: true, Index: 1}, {Index: 0},
		{IsKey: true, Index: 2}, {Index: 1},
	}}}
	runs := l.KeyRunLengths()
	if len(runs) != 2 || runs[0] != 2 || runs[1] != 1 {
		t.Fatalf("runs = %v, want [2 1]", runs)
	}
}
