package gf2

import (
	"testing"
	"testing/quick"

	"orap/internal/rng"
)

func randVec(r *rng.Stream, n int) Vec {
	v := NewVec(n)
	for i := 0; i < n; i++ {
		if r.Bool() {
			v.SetBit(i, true)
		}
	}
	return v
}

func randMatrix(r *rng.Stream, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		m.SetRow(i, randVec(r, cols))
	}
	return m
}

func TestVecBitOps(t *testing.T) {
	v := NewVec(130)
	v.SetBit(0, true)
	v.SetBit(64, true)
	v.SetBit(129, true)
	if !v.Bit(0) || !v.Bit(64) || !v.Bit(129) || v.Bit(1) {
		t.Fatal("bit set/get broken across word boundaries")
	}
	if v.Weight() != 3 {
		t.Fatalf("weight = %d, want 3", v.Weight())
	}
	v.FlipBit(64)
	if v.Bit(64) || v.Weight() != 2 {
		t.Fatal("FlipBit broken")
	}
	v.SetBit(0, false)
	if v.Bit(0) {
		t.Fatal("SetBit(false) broken")
	}
}

func TestVecOnes(t *testing.T) {
	v := NewVec(200)
	want := []int{3, 63, 64, 127, 199}
	for _, i := range want {
		v.SetBit(i, true)
	}
	got := v.Ones()
	if len(got) != len(want) {
		t.Fatalf("Ones = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ones = %v, want %v", got, want)
		}
	}
}

func TestXorSelfIsZero(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		v := randVec(r, 100)
		w := v.Clone()
		w.Xor(v)
		if !w.IsZero() {
			t.Fatal("v ^ v != 0")
		}
	}
}

func TestDotLinearity(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 50; trial++ {
		a, b, c := randVec(r, 90), randVec(r, 90), randVec(r, 90)
		ab := a.Clone()
		ab.Xor(b)
		// (a+b)·c == a·c + b·c over GF(2)
		if ab.Dot(c) != (a.Dot(c) != b.Dot(c)) {
			t.Fatal("dot product not linear")
		}
	}
}

func TestBoolsRoundTrip(t *testing.T) {
	check := func(bs []bool) bool {
		v := FromBools(bs)
		back := v.Bools()
		if len(back) != len(bs) {
			return false
		}
		for i := range bs {
			if back[i] != bs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityMulVec(t *testing.T) {
	r := rng.New(3)
	id := Identity(77)
	for trial := 0; trial < 10; trial++ {
		v := randVec(r, 77)
		if !id.MulVec(v).Equal(v) {
			t.Fatal("I·v != v")
		}
	}
}

func TestMatrixMulAssociativity(t *testing.T) {
	r := rng.New(4)
	a := randMatrix(r, 20, 30)
	b := randMatrix(r, 30, 25)
	v := randVec(r, 25)
	// (A·B)·v == A·(B·v)
	left := a.Mul(b).MulVec(v)
	right := a.MulVec(b.MulVec(v))
	if !left.Equal(right) {
		t.Fatal("(AB)v != A(Bv)")
	}
}

func TestRankIdentity(t *testing.T) {
	if got := Identity(50).Rank(); got != 50 {
		t.Fatalf("rank(I50) = %d", got)
	}
}

func TestRankZeroMatrix(t *testing.T) {
	if got := NewMatrix(10, 10).Rank(); got != 0 {
		t.Fatalf("rank(0) = %d", got)
	}
}

func TestRankDuplicateRows(t *testing.T) {
	m := NewMatrix(4, 4)
	row := NewVec(4)
	row.SetBit(0, true)
	row.SetBit(2, true)
	for i := 0; i < 4; i++ {
		m.SetRow(i, row)
	}
	if got := m.Rank(); got != 1 {
		t.Fatalf("rank of 4 identical rows = %d, want 1", got)
	}
}

func TestSolveRoundTrip(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		rows := 10 + r.Intn(40)
		cols := 10 + r.Intn(40)
		m := randMatrix(r, rows, cols)
		xTrue := randVec(r, cols)
		b := m.MulVec(xTrue)
		x, ok := m.Solve(b)
		if !ok {
			t.Fatalf("trial %d: consistent system reported unsolvable", trial)
		}
		if !m.MulVec(x).Equal(b) {
			t.Fatalf("trial %d: returned x does not satisfy M·x=b", trial)
		}
	}
}

func TestSolveDetectsInconsistency(t *testing.T) {
	// Rows: x0 = 0 and x0 = 1 simultaneously.
	m := NewMatrix(2, 1)
	m.Set(0, 0, true)
	m.Set(1, 0, true)
	b := NewVec(2)
	b.SetBit(1, true) // row0 says x0=0, row1 says x0=1
	if _, ok := m.Solve(b); ok {
		t.Fatal("inconsistent system reported solvable")
	}
}

func TestSolveUnderdetermined(t *testing.T) {
	// One equation, three unknowns: x0 ^ x2 = 1.
	m := NewMatrix(1, 3)
	m.Set(0, 0, true)
	m.Set(0, 2, true)
	b := NewVec(1)
	b.SetBit(0, true)
	x, ok := m.Solve(b)
	if !ok {
		t.Fatal("underdetermined consistent system reported unsolvable")
	}
	if !m.MulVec(x).Equal(b) {
		t.Fatal("solution does not satisfy the equation")
	}
}

func TestSolveWideAndTall(t *testing.T) {
	r := rng.New(6)
	// Tall system (more equations than unknowns) built from a true solution
	// must remain solvable.
	m := randMatrix(r, 60, 20)
	xTrue := randVec(r, 20)
	b := m.MulVec(xTrue)
	if x, ok := m.Solve(b); !ok || !m.MulVec(x).Equal(b) {
		t.Fatal("tall consistent system failed")
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := Identity(5)
	c := m.Clone()
	c.Set(0, 1, true)
	if m.At(0, 1) {
		t.Fatal("Clone shares storage")
	}
}

func TestVecStringLSBFirst(t *testing.T) {
	v := NewVec(4)
	v.SetBit(0, true)
	v.SetBit(3, true)
	if got := v.String(); got != "1001" {
		t.Fatalf("String = %q, want 1001", got)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"Xor": func() { NewVec(3).Xor(NewVec(4)) },
		"Dot": func() { NewVec(3).Dot(NewVec(4)) },
		"MulVec": func() {
			NewMatrix(2, 3).MulVec(NewVec(4))
		},
		"SetRow": func() { NewMatrix(2, 3).SetRow(0, NewVec(4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkSolve256(b *testing.B) {
	r := rng.New(7)
	m := randMatrix(r, 256, 512)
	x := randVec(r, 512)
	rhs := m.MulVec(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Solve(rhs); !ok {
			b.Fatal("unsolvable")
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	r := rng.New(41)
	found := 0
	for trial := 0; trial < 40 && found < 10; trial++ {
		m := randMatrix(r, 24, 24)
		inv, ok := m.Invert()
		if !ok {
			continue // singular draw
		}
		found++
		if prod := m.Mul(inv); prod.Rank() != 24 {
			t.Fatal("M · M⁻¹ not full rank")
		} else {
			// Must equal identity exactly.
			id := Identity(24)
			for i := 0; i < 24; i++ {
				if !prod.Row(i).Equal(id.Row(i)) {
					t.Fatal("M · M⁻¹ != I")
				}
			}
		}
		// Inverse works both ways.
		v := randVec(r, 24)
		back := inv.MulVec(m.MulVec(v))
		if !back.Equal(v) {
			t.Fatal("M⁻¹(M·v) != v")
		}
	}
	if found < 5 {
		t.Fatalf("only %d invertible draws in 40 trials; RNG suspicious", found)
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMatrix(4, 4) // zero matrix
	if _, ok := m.Invert(); ok {
		t.Fatal("zero matrix inverted")
	}
	if _, ok := NewMatrix(2, 3).Invert(); ok {
		t.Fatal("non-square matrix inverted")
	}
}

func TestTranspose(t *testing.T) {
	r := rng.New(42)
	m := randMatrix(r, 10, 20)
	tt := m.Transpose()
	if tt.Rows != 20 || tt.Cols != 10 {
		t.Fatal("transpose shape wrong")
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 20; j++ {
			if m.At(i, j) != tt.At(j, i) {
				t.Fatal("transpose element mismatch")
			}
		}
	}
	// (Mᵀ)ᵀ = M.
	back := tt.Transpose()
	for i := 0; i < 10; i++ {
		if !back.Row(i).Equal(m.Row(i)) {
			t.Fatal("double transpose != original")
		}
	}
}
