// Package gf2 implements bit-packed linear algebra over GF(2).
//
// It backs two parts of the OraP reproduction:
//
//   - Key-sequence synthesis: the final state of the key-register LFSR is a
//     GF(2)-linear function of the injected seed bits, so finding a key
//     sequence that unlocks a given key is a linear solve (orap package).
//   - Attack (d) of the paper: the adversary symbolically simulates the
//     LFSR and implements each cell's linear expression as a XOR tree; the
//     number of terms in each expression (row weight) determines the
//     Trojan's payload size (trojan package).
package gf2

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a bit vector over GF(2). The zero value is an empty vector.
type Vec struct {
	n int
	w []uint64
}

// NewVec returns an all-zero vector of n bits.
func NewVec(n int) Vec {
	return Vec{n: n, w: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits.
func (v Vec) Len() int { return v.n }

// Bit returns bit i.
func (v Vec) Bit(i int) bool {
	return v.w[i/64]>>(uint(i)%64)&1 == 1
}

// SetBit sets bit i to b.
func (v Vec) SetBit(i int, b bool) {
	if b {
		v.w[i/64] |= 1 << (uint(i) % 64)
	} else {
		v.w[i/64] &^= 1 << (uint(i) % 64)
	}
}

// FlipBit toggles bit i.
func (v Vec) FlipBit(i int) { v.w[i/64] ^= 1 << (uint(i) % 64) }

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	return Vec{n: v.n, w: append([]uint64(nil), v.w...)}
}

// Xor adds u into v in place (v ^= u). Vectors must have equal length.
func (v Vec) Xor(u Vec) {
	if v.n != u.n {
		panic(fmt.Sprintf("gf2: Xor length mismatch %d vs %d", v.n, u.n))
	}
	for i := range v.w {
		v.w[i] ^= u.w[i]
	}
}

// IsZero reports whether all bits are zero.
func (v Vec) IsZero() bool {
	for _, w := range v.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Weight returns the number of set bits (the Hamming weight).
func (v Vec) Weight() int {
	t := 0
	for _, w := range v.w {
		t += bits.OnesCount64(w)
	}
	return t
}

// Dot returns the GF(2) inner product of v and u.
func (v Vec) Dot(u Vec) bool {
	if v.n != u.n {
		panic(fmt.Sprintf("gf2: Dot length mismatch %d vs %d", v.n, u.n))
	}
	acc := uint64(0)
	for i := range v.w {
		acc ^= v.w[i] & u.w[i]
	}
	return bits.OnesCount64(acc)%2 == 1
}

// Equal reports whether v and u hold the same bits.
func (v Vec) Equal(u Vec) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.w {
		if v.w[i] != u.w[i] {
			return false
		}
	}
	return true
}

// Ones returns the indices of all set bits in ascending order.
func (v Vec) Ones() []int {
	var idx []int
	for wi, w := range v.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			idx = append(idx, wi*64+b)
			w &= w - 1
		}
	}
	return idx
}

// String renders the vector as a bit string, LSB (index 0) first.
func (v Vec) String() string {
	var b strings.Builder
	for i := 0; i < v.n; i++ {
		if v.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// FromBools packs a boolean slice into a Vec (index 0 ↔ element 0).
func FromBools(bs []bool) Vec {
	v := NewVec(len(bs))
	for i, b := range bs {
		if b {
			v.SetBit(i, true)
		}
	}
	return v
}

// Bools unpacks the vector into a boolean slice.
func (v Vec) Bools() []bool {
	out := make([]bool, v.n)
	for i := range out {
		out[i] = v.Bit(i)
	}
	return out
}

// Matrix is a dense GF(2) matrix stored row-major as bit vectors.
type Matrix struct {
	Rows int
	Cols int
	row  []Vec
}

// NewMatrix returns an all-zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	m := &Matrix{Rows: rows, Cols: cols, row: make([]Vec, rows)}
	for i := range m.row {
		m.row[i] = NewVec(cols)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) bool { return m.row[r].Bit(c) }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, b bool) { m.row[r].SetBit(c, b) }

// Row returns row r; the returned Vec shares storage with the matrix.
func (m *Matrix) Row(r int) Vec { return m.row[r] }

// SetRow replaces row r with a copy of v.
func (m *Matrix) SetRow(r int, v Vec) {
	if v.Len() != m.Cols {
		panic(fmt.Sprintf("gf2: SetRow length %d != cols %d", v.Len(), m.Cols))
	}
	m.row[r] = v.Clone()
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	n := &Matrix{Rows: m.Rows, Cols: m.Cols, row: make([]Vec, m.Rows)}
	for i := range m.row {
		n.row[i] = m.row[i].Clone()
	}
	return n
}

// MulVec returns m · v (treating v as a column vector of length Cols).
func (m *Matrix) MulVec(v Vec) Vec {
	if v.Len() != m.Cols {
		panic(fmt.Sprintf("gf2: MulVec length %d != cols %d", v.Len(), m.Cols))
	}
	out := NewVec(m.Rows)
	for r := 0; r < m.Rows; r++ {
		if m.row[r].Dot(v) {
			out.SetBit(r, true)
		}
	}
	return out
}

// Mul returns the matrix product m · o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("gf2: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMatrix(m.Rows, o.Cols)
	for r := 0; r < m.Rows; r++ {
		dst := out.row[r]
		src := m.row[r]
		for _, k := range src.Ones() {
			dst.Xor(o.row[k])
		}
	}
	return out
}

// Rank returns the rank of the matrix. The matrix is not modified.
func (m *Matrix) Rank() int {
	e := m.Clone()
	rank := 0
	for c := 0; c < e.Cols && rank < e.Rows; c++ {
		pivot := -1
		for r := rank; r < e.Rows; r++ {
			if e.row[r].Bit(c) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		e.row[rank], e.row[pivot] = e.row[pivot], e.row[rank]
		for r := 0; r < e.Rows; r++ {
			if r != rank && e.row[r].Bit(c) {
				e.row[r].Xor(e.row[rank])
			}
		}
		rank++
	}
	return rank
}

// Solve finds one solution x of m · x = b, or reports that none exists.
// m and b are not modified.
func (m *Matrix) Solve(b Vec) (Vec, bool) {
	if b.Len() != m.Rows {
		panic(fmt.Sprintf("gf2: Solve rhs length %d != rows %d", b.Len(), m.Rows))
	}
	// Augmented elimination: carry the RHS alongside each row.
	e := m.Clone()
	rhs := b.Clone()
	pivotCol := make([]int, 0, e.Rows)
	rank := 0
	for c := 0; c < e.Cols && rank < e.Rows; c++ {
		pivot := -1
		for r := rank; r < e.Rows; r++ {
			if e.row[r].Bit(c) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		e.row[rank], e.row[pivot] = e.row[pivot], e.row[rank]
		pb, rb := rhs.Bit(pivot), rhs.Bit(rank)
		rhs.SetBit(pivot, rb)
		rhs.SetBit(rank, pb)
		for r := 0; r < e.Rows; r++ {
			if r != rank && e.row[r].Bit(c) {
				e.row[r].Xor(e.row[rank])
				rhs.SetBit(r, rhs.Bit(r) != rhs.Bit(rank))
			}
		}
		pivotCol = append(pivotCol, c)
		rank++
	}
	// Inconsistency check: zero rows with non-zero RHS.
	for r := rank; r < e.Rows; r++ {
		if rhs.Bit(r) {
			return Vec{}, false
		}
	}
	x := NewVec(m.Cols)
	for r := 0; r < rank; r++ {
		x.SetBit(pivotCol[r], rhs.Bit(r))
	}
	return x, true
}

// String renders the matrix, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		b.WriteString(m.row[r].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Invert returns the inverse of a square matrix, or ok=false when the
// matrix is singular. The receiver is not modified.
func (m *Matrix) Invert() (*Matrix, bool) {
	if m.Rows != m.Cols {
		return nil, false
	}
	n := m.Rows
	e := m.Clone()
	inv := Identity(n)
	row := 0
	for c := 0; c < n; c++ {
		pivot := -1
		for r := row; r < n; r++ {
			if e.row[r].Bit(c) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		e.row[row], e.row[pivot] = e.row[pivot], e.row[row]
		inv.row[row], inv.row[pivot] = inv.row[pivot], inv.row[row]
		for r := 0; r < n; r++ {
			if r != row && e.row[r].Bit(c) {
				e.row[r].Xor(e.row[row])
				inv.row[r].Xor(inv.row[row])
			}
		}
		row++
	}
	return inv, true
}

// Transpose returns the transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for _, c := range m.row[r].Ones() {
			t.Set(c, r, true)
		}
	}
	return t
}
