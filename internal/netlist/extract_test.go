package netlist

import "testing"

// buildTwoCones returns a circuit with two mostly-disjoint output cones:
// o1 = (a ∧ b) ⊕ k, o2 = c ∨ d.
func buildTwoCones(t *testing.T) (*Circuit, int, int) {
	t.Helper()
	c := New("two")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	cc, _ := c.AddInput("c")
	d, _ := c.AddInput("d")
	k, _ := c.AddKeyInput("keyinput0")
	ab := c.MustAddGate(And, "ab", a, b)
	o1 := c.MustAddGate(Xor, "o1", ab, k)
	o2 := c.MustAddGate(Or, "o2", cc, d)
	c.MarkOutput(o1)
	c.MarkOutput(o2)
	return c, o1, o2
}

func TestExtractConeShrinksToRelevantLogic(t *testing.T) {
	c, o1, o2 := buildTwoCones(t)

	cone1, m1, err := c.ExtractCone(o1)
	if err != nil {
		t.Fatal(err)
	}
	if cone1.NumInputs() != 2 || cone1.NumKeys() != 1 || cone1.NumOutputs() != 1 {
		t.Fatalf("cone1 shape wrong: %s", cone1.Summary())
	}
	if _, ok := cone1.NodeByName("c"); ok {
		t.Fatal("cone1 contains an input from the other cone")
	}
	if _, ok := m1[o2]; ok {
		t.Fatal("cone1 map contains the other output")
	}

	cone2, _, err := c.ExtractCone(o2)
	if err != nil {
		t.Fatal(err)
	}
	if cone2.NumKeys() != 0 {
		t.Fatal("cone2 should not contain the key input")
	}
	if cone2.GateCount() != 1 {
		t.Fatalf("cone2 gates = %d, want 1", cone2.GateCount())
	}
}

func TestExtractConePreservesFunction(t *testing.T) {
	c, o1, _ := buildTwoCones(t)
	cone, _, err := c.ExtractCone(o1)
	if err != nil {
		t.Fatal(err)
	}
	// o1 = (a∧b) ⊕ k over inputs (a, b) and key k.
	for v := 0; v < 8; v++ {
		a, b, k := v&1 == 1, v>>1&1 == 1, v>>2&1 == 1
		got := evalSingle(t, cone, []bool{a, b}, []bool{k})
		want := (a && b) != k
		if got[0] != want {
			t.Fatalf("cone wrong at a=%v b=%v k=%v", a, b, k)
		}
	}
}

func TestExtractConeMultipleRoots(t *testing.T) {
	c, o1, o2 := buildTwoCones(t)
	both, m, err := c.ExtractCone(o1, o2)
	if err != nil {
		t.Fatal(err)
	}
	if both.NumOutputs() != 2 || both.NumInputs() != 4 || both.NumKeys() != 1 {
		t.Fatalf("combined cone shape wrong: %s", both.Summary())
	}
	if both.POs[0] != m[o1] || both.POs[1] != m[o2] {
		t.Fatal("output order not preserved")
	}
}

func TestExtractConeWithConstants(t *testing.T) {
	c := New("const")
	a, _ := c.AddInput("a")
	one, _ := c.AddConst(true, "one")
	g := c.MustAddGate(And, "g", a, one)
	c.MarkOutput(g)
	cone, _, err := c.ExtractCone(g)
	if err != nil {
		t.Fatal(err)
	}
	if cone.NumNodes() != 3 {
		t.Fatalf("cone nodes = %d, want 3", cone.NumNodes())
	}
}

func TestExtractConeRangeChecked(t *testing.T) {
	c, _, _ := buildTwoCones(t)
	if _, _, err := c.ExtractCone(999); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

// evalSingle is a minimal single-pattern evaluator for this package's
// tests (the sim package would be an import cycle).
func evalSingle(t *testing.T, c *Circuit, pi, key []bool) []bool {
	t.Helper()
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]bool, len(c.Gates))
	for i, id := range c.PIs {
		vals[id] = pi[i]
	}
	for i, id := range c.Keys {
		vals[id] = key[i]
	}
	for _, id := range order {
		g := &c.Gates[id]
		switch g.Type {
		case Input:
		case Const0:
			vals[id] = false
		case Const1:
			vals[id] = true
		case Buf:
			vals[id] = vals[g.Fanin[0]]
		case Not:
			vals[id] = !vals[g.Fanin[0]]
		case And, Nand:
			v := true
			for _, f := range g.Fanin {
				v = v && vals[f]
			}
			vals[id] = v != (g.Type == Nand)
		case Or, Nor:
			v := false
			for _, f := range g.Fanin {
				v = v || vals[f]
			}
			vals[id] = v != (g.Type == Nor)
		case Xor, Xnor:
			v := false
			for _, f := range g.Fanin {
				v = v != vals[f]
			}
			vals[id] = v != (g.Type == Xnor)
		}
	}
	out := make([]bool, len(c.POs))
	for i, id := range c.POs {
		out[i] = vals[id]
	}
	return out
}
