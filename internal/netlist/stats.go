package netlist

import (
	"fmt"
	"strings"
)

// Stats summarizes a circuit with the metrics used throughout the paper's
// evaluation: gate count without inverters/buffers (the "area" proxy of
// Table I) and logic depth in levels (the delay proxy).
type Stats struct {
	Nodes      int // all nodes including inputs and constants
	Gates      int // logic gates excluding inverters and buffers
	Inverters  int // NOT nodes
	Buffers    int // BUF nodes
	Inputs     int
	KeyInputs  int
	Outputs    int
	Depth      int // levels over all nodes counting every gate
	TypeCounts map[GateType]int
}

// ComputeStats gathers the summary metrics for the circuit.
func (c *Circuit) ComputeStats() (Stats, error) {
	s := Stats{
		Inputs:     len(c.PIs),
		KeyInputs:  len(c.Keys),
		Outputs:    len(c.POs),
		Nodes:      len(c.Gates),
		TypeCounts: make(map[GateType]int),
	}
	for _, g := range c.Gates {
		s.TypeCounts[g.Type]++
		switch g.Type {
		case Input, Const0, Const1:
		case Not:
			s.Inverters++
		case Buf:
			s.Buffers++
		default:
			s.Gates++
		}
	}
	d, err := c.Depth()
	if err != nil {
		return Stats{}, err
	}
	s.Depth = d
	return s, nil
}

// String renders the stats in a compact single line.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d gates=%d inv=%d buf=%d pi=%d key=%d po=%d depth=%d",
		s.Nodes, s.Gates, s.Inverters, s.Buffers, s.Inputs, s.KeyInputs, s.Outputs, s.Depth)
}

// GateCount returns the number of logic gates excluding inverters and
// buffers, the paper's area metric.
func (c *Circuit) GateCount() int {
	n := 0
	for _, g := range c.Gates {
		switch g.Type {
		case Input, Const0, Const1, Not, Buf:
		default:
			n++
		}
	}
	return n
}

// Summary returns a short multi-line human-readable description.
func (c *Circuit) Summary() string {
	var b strings.Builder
	st, err := c.ComputeStats()
	if err != nil {
		fmt.Fprintf(&b, "circuit %q: invalid (%v)\n", c.Name, err)
		return b.String()
	}
	fmt.Fprintf(&b, "circuit %q: %s\n", c.Name, st)
	return b.String()
}

// DanglingNodes returns the IDs of nodes that are neither outputs nor in the
// transitive fanin of any output. Inputs are never reported as dangling.
func (c *Circuit) DanglingNodes() []int {
	used := c.TransitiveFanin(c.POs...)
	var dangling []int
	for id := range c.Gates {
		if used[id] || c.Gates[id].Type == Input {
			continue
		}
		dangling = append(dangling, id)
	}
	return dangling
}
