// Package netlist models gate-level combinational circuits.
//
// A Circuit is a directed acyclic graph of multi-input logic gates. Nodes
// are identified by dense integer IDs (indices into the gate table), which
// makes the bit-parallel simulator, CNF encoder, ATPG and fault simulator
// cheap to index. Primary inputs and key inputs are both Input-type nodes;
// the circuit tracks which input IDs carry key bits so locking schemes and
// attacks can treat them specially.
//
// The package distinguishes "area" in the paper's sense: gate counts exclude
// inverters and buffers, matching Table I of the OraP paper, while levels
// (logic depth) provide the delay estimate.
package netlist

import (
	"fmt"
	"sort"
)

// GateType enumerates the supported logic functions.
type GateType uint8

// Supported gate types. Input nodes have no fanin; Const0/Const1 are
// constant drivers; Buf and Not are single-input; the remaining types
// accept two or more fanins.
const (
	Input GateType = iota
	Const0
	Const1
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	numGateTypes
)

var gateNames = [...]string{
	Input:  "INPUT",
	Const0: "CONST0",
	Const1: "CONST1",
	Buf:    "BUF",
	Not:    "NOT",
	And:    "AND",
	Nand:   "NAND",
	Or:     "OR",
	Nor:    "NOR",
	Xor:    "XOR",
	Xnor:   "XNOR",
}

// String returns the conventional upper-case name of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// Inverting reports whether the gate complements the underlying
// monotone/parity function (NOT, NAND, NOR, XNOR).
func (t GateType) Inverting() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// Base returns the non-inverting counterpart of t
// (NAND→AND, NOR→OR, XNOR→XOR, NOT→BUF); other types map to themselves.
func (t GateType) Base() GateType {
	switch t {
	case Nand:
		return And
	case Nor:
		return Or
	case Xnor:
		return Xor
	case Not:
		return Buf
	}
	return t
}

// Invert returns the inverting counterpart of t (AND→NAND, …, BUF→NOT) or,
// for already-inverting types, the non-inverting one.
func (t GateType) Invert() GateType {
	switch t {
	case And:
		return Nand
	case Nand:
		return And
	case Or:
		return Nor
	case Nor:
		return Or
	case Xor:
		return Xnor
	case Xnor:
		return Xor
	case Buf:
		return Not
	case Not:
		return Buf
	case Const0:
		return Const1
	case Const1:
		return Const0
	}
	return t
}

// Gate is a single node of the circuit DAG.
type Gate struct {
	Type  GateType
	Fanin []int // IDs of driver nodes, empty for Input/Const
}

// Circuit is a combinational gate-level netlist.
//
// The zero value is an empty circuit ready for use, but most callers should
// use New so the circuit has a name.
type Circuit struct {
	Name string

	// Gates holds every node; the slice index is the node ID.
	Gates []Gate
	// NodeNames holds an optional textual name per node ("" if unnamed).
	NodeNames []string

	// PIs lists primary (functional) input node IDs in declaration order.
	PIs []int
	// Keys lists key input node IDs in declaration order.
	Keys []int
	// POs lists primary output node IDs in declaration order.
	POs []int

	// SrcLines optionally records, per node, the 1-based source line the
	// node was defined on (0 = unknown). Populated by parsers such as
	// bench.Parse so structural diagnostics (internal/check) can point
	// back into the source file. The slice may be shorter than Gates;
	// use SrcLine/SetSrcLine rather than indexing directly.
	SrcLines []int

	byName map[string]int
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]int)}
}

// NumNodes returns the total number of nodes, including inputs and constants.
func (c *Circuit) NumNodes() int { return len(c.Gates) }

// NumInputs returns the number of primary (non-key) inputs.
func (c *Circuit) NumInputs() int { return len(c.PIs) }

// NumKeys returns the number of key inputs.
func (c *Circuit) NumKeys() int { return len(c.Keys) }

// NumOutputs returns the number of primary outputs.
func (c *Circuit) NumOutputs() int { return len(c.POs) }

// nameNode registers a name for node id, if non-empty.
func (c *Circuit) nameNode(id int, name string) error {
	if name == "" {
		return nil
	}
	if c.byName == nil {
		c.byName = make(map[string]int)
	}
	if old, ok := c.byName[name]; ok && old != id {
		return fmt.Errorf("netlist: duplicate node name %q (nodes %d and %d)", name, old, id)
	}
	c.byName[name] = id
	for len(c.NodeNames) < len(c.Gates) {
		c.NodeNames = append(c.NodeNames, "")
	}
	c.NodeNames[id] = name
	return nil
}

// addNode appends a raw node and returns its ID.
func (c *Circuit) addNode(g Gate, name string) (int, error) {
	id := len(c.Gates)
	c.Gates = append(c.Gates, g)
	c.NodeNames = append(c.NodeNames, "")
	if err := c.nameNode(id, name); err != nil {
		c.Gates = c.Gates[:id]
		c.NodeNames = c.NodeNames[:id]
		return 0, err
	}
	return id, nil
}

// AddInput adds a primary input node with the given name and returns its ID.
func (c *Circuit) AddInput(name string) (int, error) {
	id, err := c.addNode(Gate{Type: Input}, name)
	if err != nil {
		return 0, err
	}
	c.PIs = append(c.PIs, id)
	return id, nil
}

// AddKeyInput adds a key input node with the given name and returns its ID.
func (c *Circuit) AddKeyInput(name string) (int, error) {
	id, err := c.addNode(Gate{Type: Input}, name)
	if err != nil {
		return 0, err
	}
	c.Keys = append(c.Keys, id)
	return id, nil
}

// AddConst adds a constant node driving the given value and returns its ID.
func (c *Circuit) AddConst(v bool, name string) (int, error) {
	t := Const0
	if v {
		t = Const1
	}
	return c.addNode(Gate{Type: t}, name)
}

// AddGate adds a logic gate with the given fanins and returns its ID.
// Fanin IDs must already exist. Buf/Not require exactly one fanin; the
// multi-input types require at least two.
func (c *Circuit) AddGate(t GateType, name string, fanin ...int) (int, error) {
	switch t {
	case Input, Const0, Const1:
		return 0, fmt.Errorf("netlist: AddGate cannot add %v nodes", t)
	case Buf, Not:
		if len(fanin) != 1 {
			return 0, fmt.Errorf("netlist: %v gate %q needs exactly 1 fanin, got %d", t, name, len(fanin))
		}
	default:
		if t >= numGateTypes {
			return 0, fmt.Errorf("netlist: unknown gate type %d", t)
		}
		if len(fanin) < 2 {
			return 0, fmt.Errorf("netlist: %v gate %q needs at least 2 fanins, got %d", t, name, len(fanin))
		}
	}
	for _, f := range fanin {
		if f < 0 || f >= len(c.Gates) {
			return 0, fmt.Errorf("netlist: gate %q references unknown fanin node %d", name, f)
		}
	}
	fi := make([]int, len(fanin))
	copy(fi, fanin)
	return c.addNode(Gate{Type: t, Fanin: fi}, name)
}

// MustAddGate is AddGate that panics on error; intended for tests and
// generators building circuits from trusted descriptions.
func (c *Circuit) MustAddGate(t GateType, name string, fanin ...int) int {
	id, err := c.AddGate(t, name, fanin...)
	if err != nil {
		panic(err)
	}
	return id
}

// MarkOutput declares node id as a primary output.
func (c *Circuit) MarkOutput(id int) error {
	if id < 0 || id >= len(c.Gates) {
		return fmt.Errorf("netlist: output references unknown node %d", id)
	}
	c.POs = append(c.POs, id)
	return nil
}

// NodeByName returns the ID of the named node.
func (c *Circuit) NodeByName(name string) (int, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// NameOf returns the textual name of node id, or a synthetic "n<id>" when
// the node is unnamed.
func (c *Circuit) NameOf(id int) string {
	if id >= 0 && id < len(c.NodeNames) && c.NodeNames[id] != "" {
		return c.NodeNames[id]
	}
	return fmt.Sprintf("n%d", id)
}

// SetSrcLine records the 1-based source line node id was defined on.
// Lines are advisory metadata: they survive Clone but are not otherwise
// maintained across structural edits.
func (c *Circuit) SetSrcLine(id, line int) {
	if id < 0 || id >= len(c.Gates) || line <= 0 {
		return
	}
	for len(c.SrcLines) < len(c.Gates) {
		c.SrcLines = append(c.SrcLines, 0)
	}
	c.SrcLines[id] = line
}

// SrcLine returns the recorded source line of node id, or 0 when unknown.
func (c *Circuit) SrcLine(id int) int {
	if id >= 0 && id < len(c.SrcLines) {
		return c.SrcLines[id]
	}
	return 0
}

// Rename assigns a (new) name to node id.
func (c *Circuit) Rename(id int, name string) error {
	if id < 0 || id >= len(c.Gates) {
		return fmt.Errorf("netlist: rename of unknown node %d", id)
	}
	if old := c.NodeNames[id]; old != "" {
		delete(c.byName, old)
		c.NodeNames[id] = ""
	}
	return c.nameNode(id, name)
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	nc := &Circuit{
		Name:      c.Name,
		Gates:     make([]Gate, len(c.Gates)),
		NodeNames: append([]string(nil), c.NodeNames...),
		PIs:       append([]int(nil), c.PIs...),
		Keys:      append([]int(nil), c.Keys...),
		POs:       append([]int(nil), c.POs...),
		SrcLines:  append([]int(nil), c.SrcLines...),
		byName:    make(map[string]int, len(c.byName)),
	}
	for i, g := range c.Gates {
		nc.Gates[i] = Gate{Type: g.Type, Fanin: append([]int(nil), g.Fanin...)}
	}
	for k, v := range c.byName {
		nc.byName[k] = v
	}
	return nc
}

// AllInputs returns the IDs of primary inputs followed by key inputs.
func (c *Circuit) AllInputs() []int {
	all := make([]int, 0, len(c.PIs)+len(c.Keys))
	all = append(all, c.PIs...)
	all = append(all, c.Keys...)
	return all
}

// IsKeyInput reports whether node id is a key input.
func (c *Circuit) IsKeyInput(id int) bool {
	for _, k := range c.Keys {
		if k == id {
			return true
		}
	}
	return false
}

// Validate checks structural invariants: fanin IDs in range, gate arity
// rules, acyclicity, and that outputs reference existing nodes. It returns
// the first violation found.
func (c *Circuit) Validate() error {
	for id, g := range c.Gates {
		switch g.Type {
		case Input, Const0, Const1:
			if len(g.Fanin) != 0 {
				return fmt.Errorf("netlist: node %d (%v) must have no fanin", id, g.Type)
			}
		case Buf, Not:
			if len(g.Fanin) != 1 {
				return fmt.Errorf("netlist: node %d (%v) must have 1 fanin, has %d", id, g.Type, len(g.Fanin))
			}
		case And, Nand, Or, Nor, Xor, Xnor:
			if len(g.Fanin) < 2 {
				return fmt.Errorf("netlist: node %d (%v) must have >=2 fanins, has %d", id, g.Type, len(g.Fanin))
			}
		default:
			return fmt.Errorf("netlist: node %d has unknown type %d", id, g.Type)
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= len(c.Gates) {
				return fmt.Errorf("netlist: node %d references out-of-range fanin %d", id, f)
			}
		}
	}
	for _, o := range c.POs {
		if o < 0 || o >= len(c.Gates) {
			return fmt.Errorf("netlist: output references out-of-range node %d", o)
		}
	}
	for _, in := range c.AllInputs() {
		if in < 0 || in >= len(c.Gates) || c.Gates[in].Type != Input {
			return fmt.Errorf("netlist: input list references node %d which is not an Input", in)
		}
	}
	if _, err := c.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// SortedNames returns all registered node names in lexicographic order.
// It is primarily useful for deterministic serialization and tests.
func (c *Circuit) SortedNames() []string {
	names := make([]string, 0, len(c.byName))
	for n := range c.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
