package netlist

import (
	"fmt"
	"strings"
)

// TopoOrder returns the node IDs in a topological order (every node appears
// after all of its fanins). The order is recomputed on every call — hot
// paths should compile the circuit once with ir.Compile and use the
// program's Order instead. An error is returned if the graph contains a
// combinational cycle.
func (c *Circuit) TopoOrder() ([]int, error) {
	n := len(c.Gates)
	indeg := make([]int, n)
	fanout := c.FanoutLists()
	for id := range c.Gates {
		indeg[id] = len(c.Gates[id].Fanin)
	}
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, f := range fanout[id] {
			indeg[f]--
			if indeg[f] == 0 {
				queue = append(queue, f)
			}
		}
	}
	if len(order) != n {
		cyc := c.FindCycle()
		return nil, fmt.Errorf("netlist: circuit %q contains a combinational cycle through %s (%d of %d nodes ordered)",
			c.Name, c.cyclePath(cyc), len(order), n)
	}
	return order, nil
}

// FindCycle returns the node IDs of one combinational cycle, in driver
// order (each node drives the next, and the last drives the first), or
// nil when the circuit is acyclic. Only one cycle is reported even when
// several exist.
func (c *Circuit) FindCycle() []int {
	const (
		unseen = 0
		active = 1
		done   = 2
	)
	state := make([]uint8, len(c.Gates))
	// Iterative DFS over fanin edges; an edge into an "active" node closes
	// a cycle. pathPos tracks each active node's index on the DFS path so
	// the cycle can be sliced out.
	path := make([]int, 0, 16)
	pathPos := make([]int, len(c.Gates))
	type frame struct{ id, next int }
	for root := range c.Gates {
		if state[root] != unseen {
			continue
		}
		stack := []frame{{root, 0}}
		state[root] = active
		pathPos[root] = len(path)
		path = append(path, root)
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			fan := c.Gates[fr.id].Fanin
			if fr.next < len(fan) {
				f := fan[fr.next]
				fr.next++
				if f < 0 || f >= len(c.Gates) {
					continue
				}
				switch state[f] {
				case active:
					// path[pathPos[f]:] is the cycle, discovered along
					// fanin edges; reverse it so it reads driver→sink.
					cyc := append([]int(nil), path[pathPos[f]:]...)
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				case unseen:
					state[f] = active
					pathPos[f] = len(path)
					path = append(path, f)
					stack = append(stack, frame{f, 0})
				}
				continue
			}
			state[fr.id] = done
			path = path[:len(path)-1]
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

// cyclePath renders a cycle as "a -> b -> c -> a" using node names.
func (c *Circuit) cyclePath(cyc []int) string {
	if len(cyc) == 0 {
		return "(unknown)"
	}
	var b strings.Builder
	for _, id := range cyc {
		b.WriteString(c.NameOf(id))
		b.WriteString(" -> ")
	}
	b.WriteString(c.NameOf(cyc[0]))
	return b.String()
}

// MustTopoOrder is TopoOrder that panics on cyclic circuits.
func (c *Circuit) MustTopoOrder() []int {
	order, err := c.TopoOrder()
	if err != nil {
		panic(err)
	}
	return order
}

// FanoutLists returns, for every node, the IDs of the nodes it drives.
// Duplicate fanin edges yield duplicate fanout entries, mirroring the
// physical connection count.
func (c *Circuit) FanoutLists() [][]int {
	counts := make([]int, len(c.Gates))
	for _, g := range c.Gates {
		for _, f := range g.Fanin {
			counts[f]++
		}
	}
	fanout := make([][]int, len(c.Gates))
	for id, n := range counts {
		if n > 0 {
			fanout[id] = make([]int, 0, n)
		}
	}
	for id, g := range c.Gates {
		for _, f := range g.Fanin {
			fanout[f] = append(fanout[f], id)
		}
	}
	return fanout
}

// Levels returns the logic level of every node: inputs and constants are
// level 0, every gate is 1 + max(level of fanins). Buffers and inverters
// count as levels here; LevelsExcludingInverters provides the paper's
// delay metric. Like TopoOrder, the result is recomputed on every call;
// hot paths should use a compiled ir.Program's Level array.
func (c *Circuit) Levels() ([]int, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	lv := make([]int, len(c.Gates))
	for _, id := range order {
		g := &c.Gates[id]
		if len(g.Fanin) == 0 {
			lv[id] = 0
			continue
		}
		maxIn := 0
		for _, f := range g.Fanin {
			if lv[f] > maxIn {
				maxIn = lv[f]
			}
		}
		lv[id] = maxIn + 1
	}
	return lv, nil
}

// Depth returns the maximum logic level across primary outputs.
func (c *Circuit) Depth() (int, error) {
	lv, err := c.Levels()
	if err != nil {
		return 0, err
	}
	d := 0
	for _, o := range c.POs {
		if lv[o] > d {
			d = lv[o]
		}
	}
	return d, nil
}

// TransitiveFanin returns a boolean membership slice marking every node in
// the transitive fanin cone of the given roots (the roots included).
func (c *Circuit) TransitiveFanin(roots ...int) []bool {
	in := make([]bool, len(c.Gates))
	stack := append([]int(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id < 0 || id >= len(c.Gates) || in[id] {
			continue
		}
		in[id] = true
		stack = append(stack, c.Gates[id].Fanin...)
	}
	return in
}

// TransitiveFanout returns a boolean membership slice marking every node in
// the transitive fanout cone of the given roots (the roots included).
func (c *Circuit) TransitiveFanout(roots ...int) []bool {
	fanout := c.FanoutLists()
	out := make([]bool, len(c.Gates))
	stack := append([]int(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id < 0 || id >= len(c.Gates) || out[id] {
			continue
		}
		out[id] = true
		stack = append(stack, fanout[id]...)
	}
	return out
}
