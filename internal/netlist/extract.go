package netlist

import "fmt"

// ExtractCone builds a standalone circuit containing exactly the logic in
// the transitive fanin of the given output nodes. Inputs (primary and
// key) that feed the cone are preserved with their names and classes; the
// requested roots become the new circuit's primary outputs, in the given
// order. The returned map translates old node IDs to new ones (only for
// nodes inside the cone).
//
// Cone extraction is the standard preprocessing step for per-output
// analyses — ATPG on a single fault's influence region, sensitization
// checks, or handing a slice of a large design to the SAT engine.
func (c *Circuit) ExtractCone(roots ...int) (*Circuit, map[int]int, error) {
	for _, r := range roots {
		if r < 0 || r >= len(c.Gates) {
			return nil, nil, fmt.Errorf("netlist: cone root %d out of range", r)
		}
	}
	inCone := c.TransitiveFanin(roots...)
	order, err := c.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	out := New(c.Name + "_cone")
	oldToNew := make(map[int]int)
	isKey := make(map[int]bool, len(c.Keys))
	for _, k := range c.Keys {
		isKey[k] = true
	}
	// Preserve input declaration order: walk the original input lists.
	for _, id := range c.PIs {
		if !inCone[id] {
			continue
		}
		nid, err := out.AddInput(c.NodeNames[id])
		if err != nil {
			return nil, nil, err
		}
		oldToNew[id] = nid
	}
	for _, id := range c.Keys {
		if !inCone[id] {
			continue
		}
		nid, err := out.AddKeyInput(c.NodeNames[id])
		if err != nil {
			return nil, nil, err
		}
		oldToNew[id] = nid
	}
	for _, id := range order {
		if !inCone[id] {
			continue
		}
		g := &c.Gates[id]
		switch g.Type {
		case Input:
			if _, ok := oldToNew[id]; !ok {
				return nil, nil, fmt.Errorf("netlist: input node %d missing from PI/key lists", id)
			}
			continue
		case Const0, Const1:
			nid, err := out.AddConst(g.Type == Const1, c.NodeNames[id])
			if err != nil {
				return nil, nil, err
			}
			oldToNew[id] = nid
			continue
		}
		fan := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			nf, ok := oldToNew[f]
			if !ok {
				return nil, nil, fmt.Errorf("netlist: cone fanin %d not yet mapped", f)
			}
			fan[i] = nf
		}
		nid, err := out.AddGate(g.Type, c.NodeNames[id], fan...)
		if err != nil {
			return nil, nil, err
		}
		oldToNew[id] = nid
	}
	for _, r := range roots {
		if err := out.MarkOutput(oldToNew[r]); err != nil {
			return nil, nil, err
		}
	}
	if err := out.Validate(); err != nil {
		return nil, nil, err
	}
	return out, oldToNew, nil
}
