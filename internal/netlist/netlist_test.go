package netlist

import (
	"fmt"
	"strings"
	"testing"
)

func buildSmall(t *testing.T) *Circuit {
	t.Helper()
	c := New("small")
	a, err := c.AddInput("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AddInput("b")
	if err != nil {
		t.Fatal(err)
	}
	k, err := c.AddKeyInput("keyinput0")
	if err != nil {
		t.Fatal(err)
	}
	g1 := c.MustAddGate(And, "g1", a, b)
	g2 := c.MustAddGate(Xor, "g2", g1, k)
	if err := c.MarkOutput(g2); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildAndValidate(t *testing.T) {
	c := buildSmall(t)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.NumInputs() != 2 || c.NumKeys() != 1 || c.NumOutputs() != 1 {
		t.Fatalf("bad shape: %d inputs %d keys %d outputs", c.NumInputs(), c.NumKeys(), c.NumOutputs())
	}
	if c.NumNodes() != 5 {
		t.Fatalf("expected 5 nodes, got %d", c.NumNodes())
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	c := New("dup")
	if _, err := c.AddInput("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddInput("x"); err == nil {
		t.Fatal("duplicate input name accepted")
	}
}

func TestGateArityRules(t *testing.T) {
	c := New("arity")
	a, _ := c.AddInput("a")
	if _, err := c.AddGate(Not, "n", a, a); err == nil {
		t.Error("NOT with 2 fanins accepted")
	}
	if _, err := c.AddGate(And, "x", a); err == nil {
		t.Error("AND with 1 fanin accepted")
	}
	if _, err := c.AddGate(And, "y", a, 999); err == nil {
		t.Error("fanin out of range accepted")
	}
	if _, err := c.AddGate(Input, "z"); err == nil {
		t.Error("AddGate(Input) accepted")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	c := buildSmall(t)
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, c.NumNodes())
	for i, id := range order {
		pos[id] = i
	}
	for id, g := range c.Gates {
		for _, f := range g.Fanin {
			if pos[f] >= pos[id] {
				t.Fatalf("node %d appears before its fanin %d", id, f)
			}
		}
	}
}

func TestCycleDetected(t *testing.T) {
	c := New("cyc")
	a, _ := c.AddInput("a")
	g1 := c.MustAddGate(And, "g1", a, a)
	// Manually create a cycle g1 <-> g2.
	g2 := c.MustAddGate(Or, "g2", g1, a)
	c.Gates[g1].Fanin[1] = g2
	if _, err := c.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := c.Validate(); err == nil {
		t.Fatal("Validate missed the cycle")
	}
}

func TestLevelsAndDepth(t *testing.T) {
	c := buildSmall(t)
	lv, err := c.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// inputs at level 0, g1 at 1, g2 at 2
	g1, _ := c.NodeByName("g1")
	g2, _ := c.NodeByName("g2")
	if lv[g1] != 1 || lv[g2] != 2 {
		t.Fatalf("levels wrong: g1=%d g2=%d", lv[g1], lv[g2])
	}
	d, err := c.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := buildSmall(t)
	cl := c.Clone()
	g1, _ := cl.NodeByName("g1")
	cl.Gates[g1].Fanin[0] = 0
	orig, _ := c.NodeByName("g1")
	if c.Gates[orig].Fanin[0] == 0 && orig != 0 {
		// fanin[0] was node "a"; ensure it wasn't 0 before concluding.
		a, _ := c.NodeByName("a")
		if a != 0 {
			t.Fatal("Clone shares fanin storage with original")
		}
	}
	cl.Name = "changed"
	if c.Name == "changed" {
		t.Fatal("Clone shares name")
	}
	if _, ok := cl.NodeByName("g2"); !ok {
		t.Fatal("Clone lost name index")
	}
}

func TestGateCountExcludesInverters(t *testing.T) {
	c := New("inv")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	n := c.MustAddGate(Not, "n", a)
	bf := c.MustAddGate(Buf, "bf", b)
	g := c.MustAddGate(Nand, "g", n, bf)
	c.MarkOutput(g)
	if got := c.GateCount(); got != 1 {
		t.Fatalf("GateCount = %d, want 1 (NOT/BUF excluded)", got)
	}
	st, err := c.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Inverters != 1 || st.Buffers != 1 || st.Gates != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestFanoutLists(t *testing.T) {
	c := buildSmall(t)
	fo := c.FanoutLists()
	a, _ := c.NodeByName("a")
	g1, _ := c.NodeByName("g1")
	if len(fo[a]) != 1 || fo[a][0] != g1 {
		t.Fatalf("fanout of a = %v, want [%d]", fo[a], g1)
	}
	g2, _ := c.NodeByName("g2")
	if len(fo[g2]) != 0 {
		t.Fatalf("fanout of output gate should be empty, got %v", fo[g2])
	}
}

func TestTransitiveCones(t *testing.T) {
	c := buildSmall(t)
	g2, _ := c.NodeByName("g2")
	fanin := c.TransitiveFanin(g2)
	for id := range c.Gates {
		if !fanin[id] {
			t.Fatalf("node %d not in fanin cone of the only output", id)
		}
	}
	a, _ := c.NodeByName("a")
	fanout := c.TransitiveFanout(a)
	k, _ := c.NodeByName("keyinput0")
	if fanout[k] {
		t.Fatal("key input wrongly in fanout cone of a")
	}
	if !fanout[g2] {
		t.Fatal("output missing from fanout cone of a")
	}
}

func TestGateTypeHelpers(t *testing.T) {
	cases := []struct {
		t        GateType
		base     GateType
		inverted GateType
		inv      bool
	}{
		{And, And, Nand, false},
		{Nand, And, And, true},
		{Or, Or, Nor, false},
		{Nor, Or, Or, true},
		{Xor, Xor, Xnor, false},
		{Xnor, Xor, Xor, true},
		{Not, Buf, Buf, true},
		{Buf, Buf, Not, false},
	}
	for _, tc := range cases {
		if tc.t.Base() != tc.base {
			t.Errorf("%v.Base() = %v, want %v", tc.t, tc.t.Base(), tc.base)
		}
		if tc.t.Invert() != tc.inverted {
			t.Errorf("%v.Invert() = %v, want %v", tc.t, tc.t.Invert(), tc.inverted)
		}
		if tc.t.Inverting() != tc.inv {
			t.Errorf("%v.Inverting() = %v, want %v", tc.t, tc.t.Inverting(), tc.inv)
		}
	}
}

func TestRename(t *testing.T) {
	c := buildSmall(t)
	g1, _ := c.NodeByName("g1")
	if err := c.Rename(g1, "renamed"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.NodeByName("g1"); ok {
		t.Fatal("old name still resolves")
	}
	id, ok := c.NodeByName("renamed")
	if !ok || id != g1 {
		t.Fatalf("new name resolves to %d, want %d", id, g1)
	}
}

func TestDanglingNodes(t *testing.T) {
	c := buildSmall(t)
	if d := c.DanglingNodes(); len(d) != 0 {
		t.Fatalf("unexpected dangling nodes %v", d)
	}
	a, _ := c.NodeByName("a")
	b, _ := c.NodeByName("b")
	c.MustAddGate(Or, "orphan", a, b)
	d := c.DanglingNodes()
	if len(d) != 1 {
		t.Fatalf("expected 1 dangling node, got %v", d)
	}
}

func TestIsKeyInput(t *testing.T) {
	c := buildSmall(t)
	k, _ := c.NodeByName("keyinput0")
	a, _ := c.NodeByName("a")
	if !c.IsKeyInput(k) || c.IsKeyInput(a) {
		t.Fatal("IsKeyInput misclassifies")
	}
}

func TestSummaryMentionsName(t *testing.T) {
	c := buildSmall(t)
	if s := c.Summary(); !strings.Contains(s, "small") {
		t.Fatalf("summary %q does not mention circuit name", s)
	}
}

func BenchmarkTopoOrder(b *testing.B) {
	c := New("wide")
	prev := make([]int, 0, 64)
	for i := 0; i < 64; i++ {
		id, _ := c.AddInput(fmt.Sprintf("i%d", i))
		prev = append(prev, id)
	}
	for g := 0; g < 20000; g++ {
		a := prev[g%len(prev)]
		bb := prev[(g*7+3)%len(prev)]
		if a == bb {
			bb = prev[(g*7+4)%len(prev)]
		}
		id := c.MustAddGate(And, "", a, bb)
		prev[g%len(prev)] = id
	}
	c.MarkOutput(prev[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TopoOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTopoOrderCycleNamesGates is the regression test for the cycle
// failure mode: the error must name gates on the cycle so callers can
// locate it, not just report a count.
func TestTopoOrderCycleNamesGates(t *testing.T) {
	c := New("cyclic")
	a, _ := c.AddInput("a")
	g1 := c.MustAddGate(And, "loop1", a, a)
	g2 := c.MustAddGate(Or, "loop2", g1, a)
	g3 := c.MustAddGate(And, "loop3", g2, a)
	c.MarkOutput(g3)
	// Close the cycle loop1 -> loop2 -> loop3 -> loop1 behind AddGate's back.
	c.Gates[g1].Fanin[1] = g3
	if _, err := c.TopoOrder(); err == nil {
		t.Fatal("TopoOrder accepted a cyclic circuit")
	} else {
		msg := err.Error()
		for _, want := range []string{"loop1", "loop2", "loop3"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("cycle error %q does not name gate %s", msg, want)
			}
		}
	}
	cyc := c.FindCycle()
	if len(cyc) != 3 {
		t.Fatalf("FindCycle returned %v, want the 3-gate loop", cyc)
	}
	for i, id := range cyc {
		next := cyc[(i+1)%len(cyc)]
		found := false
		for _, f := range c.Gates[next].Fanin {
			if f == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("FindCycle %v is not in driver order: %s does not drive %s",
				cyc, c.NameOf(id), c.NameOf(next))
		}
	}
}

// TestFindCycleAcyclic confirms FindCycle reports nothing on a DAG.
func TestFindCycleAcyclic(t *testing.T) {
	c := buildSmall(t)
	if cyc := c.FindCycle(); cyc != nil {
		t.Fatalf("FindCycle found %v in an acyclic circuit", cyc)
	}
}

// TestCloneKeepsSrcLines confirms source-line metadata survives Clone.
func TestCloneKeepsSrcLines(t *testing.T) {
	c := buildSmall(t)
	c.SetSrcLine(0, 7)
	cl := c.Clone()
	if cl.SrcLine(0) != 7 {
		t.Fatalf("clone lost source line: got %d, want 7", cl.SrcLine(0))
	}
	if c.SrcLine(99) != 0 {
		t.Fatal("SrcLine of unknown node should be 0")
	}
}
