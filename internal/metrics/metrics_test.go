package metrics

import (
	"testing"

	"orap/internal/benchgen"
	"orap/internal/circuits"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/rng"
)

func TestHDZeroWhenWrongKeysCannotCorrupt(t *testing.T) {
	// A key gate on a dead branch... simpler: XNOR pair that cancels.
	// Build a circuit where the key input feeds two XORs that cancel out.
	c := netlist.New("cancel")
	a, _ := c.AddInput("a")
	k, _ := c.AddKeyInput("keyinput0")
	x1 := c.MustAddGate(netlist.Xor, "x1", a, k)
	x2 := c.MustAddGate(netlist.Xor, "x2", x1, k)
	c.MarkOutput(x2) // x2 == a regardless of k
	res, err := HammingDistance(c, []bool{false}, HDOptions{Patterns: 1 << 10, WrongKeys: 1, Rand: rng.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.HDPercent != 0 {
		t.Fatalf("cancelling key shows HD %.2f%%, want 0", res.HDPercent)
	}
}

func TestHDFiftyForPureXorKey(t *testing.T) {
	// y = a ⊕ k: a wrong key flips y on every pattern → HD = 100%.
	// With a second key-free output the average halves to 50%.
	c := netlist.New("xork")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	k, _ := c.AddKeyInput("keyinput0")
	y := c.MustAddGate(netlist.Xor, "y", a, k)
	z := c.MustAddGate(netlist.And, "z", a, b)
	c.MarkOutput(y)
	c.MarkOutput(z)
	res, err := HammingDistance(c, []bool{false}, HDOptions{Patterns: 1 << 12, WrongKeys: 1, Rand: rng.New(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.HDPercent != 50 {
		t.Fatalf("HD = %.2f%%, want exactly 50", res.HDPercent)
	}
	if res.AvgFlippedOutputs != 1 {
		t.Fatalf("avg flipped outputs = %.2f, want 1", res.AvgFlippedOutputs)
	}
}

func TestHDWeightedBeatsSARLock(t *testing.T) {
	// The paper's motivation: weighted locking has high output
	// corruptibility, SAT-resistant point functions have almost none.
	orig := circuits.RippleAdder(6)
	wll, err := lock.Weighted(orig, lock.WeightedOptions{KeyBits: 12, ControlWidth: 3, KeyGates: 12, Rand: rng.New(3)})
	if err != nil {
		t.Fatal(err)
	}
	sar, err := lock.SARLock(orig, 0, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	opts := HDOptions{Patterns: 1 << 12, WrongKeys: 4, Rand: rng.New(5)}
	wllHD, err := HammingDistance(wll.Circuit, wll.Key, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Rand = rng.New(6)
	sarHD, err := HammingDistance(sar.Circuit, sar.Key, opts)
	if err != nil {
		t.Fatal(err)
	}
	if wllHD.HDPercent < 10 {
		t.Fatalf("weighted locking HD = %.2f%%, expected substantial corruption", wllHD.HDPercent)
	}
	if sarHD.HDPercent > 1 {
		t.Fatalf("SARLock HD = %.2f%%, expected near zero", sarHD.HDPercent)
	}
	if wllHD.HDPercent < 20*sarHD.HDPercent {
		t.Fatalf("weighted (%.2f%%) should dwarf SARLock (%.2f%%)", wllHD.HDPercent, sarHD.HDPercent)
	}
}

func TestHDValidation(t *testing.T) {
	c := circuits.C17()
	if _, err := HammingDistance(c, nil, HDOptions{Rand: rng.New(1)}); err == nil {
		t.Fatal("unkeyed circuit accepted")
	}
	locked, _ := lock.RandomXOR(c, 3, rng.New(2))
	if _, err := HammingDistance(locked.Circuit, []bool{true}, HDOptions{Rand: rng.New(3)}); err == nil {
		t.Fatal("wrong key width accepted")
	}
	if _, err := HammingDistance(locked.Circuit, locked.Key, HDOptions{}); err == nil {
		t.Fatal("missing Rand accepted")
	}
}

func TestHDDeterministic(t *testing.T) {
	orig := circuits.RippleAdder(4)
	l, _ := lock.RandomXOR(orig, 5, rng.New(7))
	a, err := HammingDistance(l.Circuit, l.Key, HDOptions{Patterns: 1 << 10, WrongKeys: 3, Rand: rng.New(8)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := HammingDistance(l.Circuit, l.Key, HDOptions{Patterns: 1 << 10, WrongKeys: 3, Rand: rng.New(8)})
	if err != nil {
		t.Fatal(err)
	}
	if a.HDPercent != b.HDPercent {
		t.Fatalf("HD not deterministic: %v vs %v", a.HDPercent, b.HDPercent)
	}
}

func TestHDPatternRounding(t *testing.T) {
	orig := circuits.RippleAdder(4)
	l, _ := lock.RandomXOR(orig, 5, rng.New(9))
	res, err := HammingDistance(l.Circuit, l.Key, HDOptions{Patterns: 100, BlockWords: 2, WrongKeys: 1, Rand: rng.New(10)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns != 128 {
		t.Fatalf("patterns = %d, want rounded-up 128", res.Patterns)
	}
}

func BenchmarkHammingDistanceB20Slice(b *testing.B) {
	prof, _ := benchgen.ProfileByName("b20")
	circuit, err := benchgen.Generate(prof.Scale(0.05), 1)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lock.Weighted(circuit, lock.WeightedOptions{KeyBits: 48, ControlWidth: 3, Rand: rng.New(2)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HammingDistance(l.Circuit, l.Key, HDOptions{
			Patterns: 1 << 12, WrongKeys: 4, Rand: rng.New(3),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHDWorkerCountInvariance(t *testing.T) {
	// The tentpole regression guard: the measurement must be bit-identical
	// at any worker count, because every block draws from its own
	// substream and the reduction is ordered by block index.
	orig := circuits.RippleAdder(8)
	l, err := lock.Weighted(orig, lock.WeightedOptions{KeyBits: 12, ControlWidth: 3, KeyGates: 12, Rand: rng.New(31)})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) HDResult {
		res, err := HammingDistance(l.Circuit, l.Key, HDOptions{
			Patterns: 1 << 12, WrongKeys: 4, BlockWords: 4,
			Workers: workers, Rand: rng.New(32),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); got != serial {
			t.Fatalf("Workers=%d result %+v differs from serial %+v", w, got, serial)
		}
	}
}
