// Package metrics measures output corruptibility, the quantity the
// paper's Table I reports as Hamming distance (HD): the valid key and
// random wrong keys are applied to the locked circuit, long pseudorandom
// input sequences are simulated, and the fraction of differing output
// bits is averaged.
//
// The measurement is bit-parallel and streamed in blocks, so circuits at
// b19 scale (~200k gates, thousands of outputs, hundreds of thousands of
// patterns) run in bounded memory. Blocks are fanned out across a worker
// pool; each block draws its patterns from its own deterministic
// substream of the seed, so the result is bit-identical at any worker
// count.
package metrics

import (
	"fmt"

	"orap/internal/netlist"
	"orap/internal/par"
	"orap/internal/rng"
	"orap/internal/sim"
)

// HDOptions tunes the Hamming-distance measurement.
type HDOptions struct {
	// Patterns is the number of pseudorandom input patterns (default
	// 262144, "a few hundreds of thousands" as in the paper; rounded up
	// to a multiple of the block size).
	Patterns int
	// WrongKeys is the number of random wrong keys averaged (default 8).
	WrongKeys int
	// BlockWords is the number of 64-pattern words simulated at once
	// (default 64, i.e. 4096 patterns per block).
	BlockWords int
	// Workers bounds the worker pool simulating blocks (0 = all cores,
	// 1 = serial). The result does not depend on it.
	Workers int
	// Rand drives pattern and wrong-key generation; required.
	Rand *rng.Stream
}

func (o *HDOptions) fill() error {
	if o.Rand == nil {
		return fmt.Errorf("metrics: HDOptions.Rand is required")
	}
	if o.Patterns <= 0 {
		o.Patterns = 1 << 18
	}
	if o.WrongKeys <= 0 {
		o.WrongKeys = 8
	}
	if o.BlockWords <= 0 {
		o.BlockWords = 64
	}
	return nil
}

// HDResult reports a corruptibility measurement.
type HDResult struct {
	// HDPercent is the average Hamming distance between correct-key and
	// wrong-key outputs, as a percentage of all output bits.
	HDPercent float64
	// Patterns and WrongKeys echo the measurement size.
	Patterns  int
	WrongKeys int
	// AvgFlippedOutputs is the average number of corrupted outputs per
	// pattern (the paper's "2068 out of 6672 outputs" style statistic).
	AvgFlippedOutputs float64
}

// hdWorker is the per-worker scratch of the block fan-out: a private
// evaluator plus the good-output buffer it compares wrong keys against.
type hdWorker struct {
	eval *sim.Parallel
	good [][]uint64
}

// HammingDistance measures output corruptibility of a locked circuit:
// the average bit-difference between the circuit under its correct key
// and under random wrong keys, over pseudorandom input patterns.
//
// Pattern blocks are simulated concurrently on opts.Workers workers; each
// block b draws its patterns from substream b of opts.Rand (rng.Split),
// and per-block difference counts are reduced in block order, so the
// result is bit-identical regardless of the worker count.
func HammingDistance(locked *netlist.Circuit, correctKey []bool, opts HDOptions) (HDResult, error) {
	if err := opts.fill(); err != nil {
		return HDResult{}, err
	}
	if len(correctKey) != locked.NumKeys() {
		return HDResult{}, fmt.Errorf("metrics: key width %d != circuit %d", len(correctKey), locked.NumKeys())
	}
	if locked.NumKeys() == 0 {
		return HDResult{}, fmt.Errorf("metrics: circuit %q has no key inputs", locked.Name)
	}
	// The prototype evaluator compiles the circuit once; clones share the
	// immutable program, so worker goroutines need no warm-up.
	proto, err := sim.NewParallel(locked, opts.BlockWords)
	if err != nil {
		return HDResult{}, err
	}

	// Draw the wrong keys up front (skipping accidental hits on the
	// correct key).
	wrong := make([][]bool, 0, opts.WrongKeys)
	for len(wrong) < opts.WrongKeys {
		k := make([]bool, len(correctKey))
		opts.Rand.Bits(k)
		same := true
		for i := range k {
			if k[i] != correctKey[i] {
				same = false
				break
			}
		}
		if !same {
			wrong = append(wrong, k)
		}
	}

	blockPatterns := opts.BlockWords * 64
	blocks := (opts.Patterns + blockPatterns - 1) / blockPatterns
	totalPatterns := blocks * blockPatterns
	blockRand := opts.Rand.Split(blocks)

	workers := par.Workers(opts.Workers)
	scratch := make([]*hdWorker, workers)
	blockDiff := make([]int64, blocks)
	err = par.ForEachWorker(workers, blocks, func(w, b int) error {
		s := scratch[w]
		if s == nil {
			s = &hdWorker{eval: proto}
			if w > 0 {
				s.eval = proto.Clone()
			}
			s.good = make([][]uint64, locked.NumOutputs())
			for i := range s.good {
				s.good[i] = make([]uint64, opts.BlockWords)
			}
			scratch[w] = s
		}
		s.eval.RandomizeInputs(blockRand[b])
		if err := s.eval.SetKey(correctKey); err != nil {
			return err
		}
		s.eval.Run()
		for i, id := range locked.POs {
			copy(s.good[i], s.eval.Value(id))
		}
		var diff int64
		for _, k := range wrong {
			if err := s.eval.SetKey(k); err != nil {
				return err
			}
			s.eval.Run()
			for i, id := range locked.POs {
				diff += int64(sim.DiffBits(s.eval.Value(id), s.good[i], blockPatterns))
			}
		}
		blockDiff[b] = diff
		return nil
	})
	for w := 1; w < len(scratch); w++ {
		if scratch[w] != nil {
			scratch[w].eval.Release()
		}
	}
	proto.Release()
	if err != nil {
		return HDResult{}, err
	}

	var diffBits int64
	for _, d := range blockDiff {
		diffBits += d
	}
	totalBits := int64(totalPatterns) * int64(len(wrong)) * int64(locked.NumOutputs())
	hd := 100 * float64(diffBits) / float64(totalBits)
	return HDResult{
		HDPercent:         hd,
		Patterns:          totalPatterns,
		WrongKeys:         len(wrong),
		AvgFlippedOutputs: hd / 100 * float64(locked.NumOutputs()),
	}, nil
}
