// Package metrics measures output corruptibility, the quantity the
// paper's Table I reports as Hamming distance (HD): the valid key and
// random wrong keys are applied to the locked circuit, long pseudorandom
// input sequences are simulated, and the fraction of differing output
// bits is averaged.
//
// The measurement is bit-parallel and streamed in blocks, so circuits at
// b19 scale (~200k gates, thousands of outputs, hundreds of thousands of
// patterns) run in bounded memory.
package metrics

import (
	"fmt"

	"orap/internal/netlist"
	"orap/internal/rng"
	"orap/internal/sim"
)

// HDOptions tunes the Hamming-distance measurement.
type HDOptions struct {
	// Patterns is the number of pseudorandom input patterns (default
	// 262144, "a few hundreds of thousands" as in the paper; rounded up
	// to a multiple of the block size).
	Patterns int
	// WrongKeys is the number of random wrong keys averaged (default 8).
	WrongKeys int
	// BlockWords is the number of 64-pattern words simulated at once
	// (default 64, i.e. 4096 patterns per block).
	BlockWords int
	// Rand drives pattern and wrong-key generation; required.
	Rand *rng.Stream
}

func (o *HDOptions) fill() error {
	if o.Rand == nil {
		return fmt.Errorf("metrics: HDOptions.Rand is required")
	}
	if o.Patterns <= 0 {
		o.Patterns = 1 << 18
	}
	if o.WrongKeys <= 0 {
		o.WrongKeys = 8
	}
	if o.BlockWords <= 0 {
		o.BlockWords = 64
	}
	return nil
}

// HDResult reports a corruptibility measurement.
type HDResult struct {
	// HDPercent is the average Hamming distance between correct-key and
	// wrong-key outputs, as a percentage of all output bits.
	HDPercent float64
	// Patterns and WrongKeys echo the measurement size.
	Patterns  int
	WrongKeys int
	// AvgFlippedOutputs is the average number of corrupted outputs per
	// pattern (the paper's "2068 out of 6672 outputs" style statistic).
	AvgFlippedOutputs float64
}

// HammingDistance measures output corruptibility of a locked circuit:
// the average bit-difference between the circuit under its correct key
// and under random wrong keys, over pseudorandom input patterns.
func HammingDistance(locked *netlist.Circuit, correctKey []bool, opts HDOptions) (HDResult, error) {
	if err := opts.fill(); err != nil {
		return HDResult{}, err
	}
	if len(correctKey) != locked.NumKeys() {
		return HDResult{}, fmt.Errorf("metrics: key width %d != circuit %d", len(correctKey), locked.NumKeys())
	}
	if locked.NumKeys() == 0 {
		return HDResult{}, fmt.Errorf("metrics: circuit %q has no key inputs", locked.Name)
	}
	p, err := sim.NewParallel(locked, opts.BlockWords)
	if err != nil {
		return HDResult{}, err
	}

	// Draw the wrong keys up front (skipping accidental hits on the
	// correct key).
	wrong := make([][]bool, 0, opts.WrongKeys)
	for len(wrong) < opts.WrongKeys {
		k := make([]bool, len(correctKey))
		opts.Rand.Bits(k)
		same := true
		for i := range k {
			if k[i] != correctKey[i] {
				same = false
				break
			}
		}
		if !same {
			wrong = append(wrong, k)
		}
	}

	blockPatterns := opts.BlockWords * 64
	blocks := (opts.Patterns + blockPatterns - 1) / blockPatterns
	totalPatterns := blocks * blockPatterns

	goodOut := make([][]uint64, locked.NumOutputs())
	for i := range goodOut {
		goodOut[i] = make([]uint64, opts.BlockWords)
	}

	var diffBits int64
	for b := 0; b < blocks; b++ {
		p.RandomizeInputs(opts.Rand)
		if err := p.SetKey(correctKey); err != nil {
			return HDResult{}, err
		}
		p.Run()
		for i, id := range locked.POs {
			copy(goodOut[i], p.Value(id))
		}
		for _, k := range wrong {
			if err := p.SetKey(k); err != nil {
				return HDResult{}, err
			}
			p.Run()
			for i, id := range locked.POs {
				diffBits += int64(sim.DiffBits(p.Value(id), goodOut[i], blockPatterns))
			}
		}
	}

	totalBits := int64(totalPatterns) * int64(len(wrong)) * int64(locked.NumOutputs())
	hd := 100 * float64(diffBits) / float64(totalBits)
	return HDResult{
		HDPercent:         hd,
		Patterns:          totalPatterns,
		WrongKeys:         len(wrong),
		AvgFlippedOutputs: hd / 100 * float64(locked.NumOutputs()),
	}, nil
}
