package aig

import (
	"fmt"
	"testing"

	"orap/internal/circuits"
	"orap/internal/netlist"
	"orap/internal/rng"
	"orap/internal/sim"
)

func TestLitHelpers(t *testing.T) {
	l := MkLit(5, true)
	if l.Node() != 5 || !l.Compl() {
		t.Fatalf("MkLit broken: %v", l)
	}
	if l.Not().Compl() || l.Not().Node() != 5 {
		t.Fatal("Not broken")
	}
	if ConstTrue.Not() != ConstFalse {
		t.Fatal("constant complement broken")
	}
}

func TestAndSimplifications(t *testing.T) {
	g := New()
	a := g.AddPI()
	b := g.AddPI()
	if g.And(a, ConstFalse) != ConstFalse {
		t.Error("a ∧ 0 != 0")
	}
	if g.And(a, ConstTrue) != a {
		t.Error("a ∧ 1 != a")
	}
	if g.And(a, a) != a {
		t.Error("a ∧ a != a")
	}
	if g.And(a, a.Not()) != ConstFalse {
		t.Error("a ∧ ¬a != 0")
	}
	ab := g.And(a, b)
	if g.And(a, ab) != ab {
		t.Error("absorption a ∧ (a∧b) != a∧b")
	}
	if g.And(a.Not(), ab) != ConstFalse {
		t.Error("contradiction ¬a ∧ (a∧b) != 0")
	}
	if g.NumANDs() != 1 {
		t.Fatalf("simplifiable ANDs created nodes: %d", g.NumANDs())
	}
}

func TestStructuralHashing(t *testing.T) {
	g := New()
	a := g.AddPI()
	b := g.AddPI()
	x := g.And(a, b)
	y := g.And(b, a) // commuted: must hash to the same node
	if x != y {
		t.Fatal("strash missed commuted AND")
	}
	if g.NumANDs() != 1 {
		t.Fatalf("ANDs = %d, want 1", g.NumANDs())
	}
}

// evalAIGvsCircuit cross-checks FromCircuit against the gate-level
// simulator on random patterns by re-simulating through the AIG.
func evalLit(g *AIG, l Lit, vals []bool) bool {
	v := evalNode(g, l.Node(), vals)
	if l.Compl() {
		return !v
	}
	return v
}

func evalNode(g *AIG, id int, vals []bool) bool {
	if id == 0 {
		return true
	}
	n := g.nodes[id]
	if n.isPI {
		return vals[id]
	}
	return evalLit(g, n.f0, vals) && evalLit(g, n.f1, vals)
}

func TestFromCircuitPreservesFunction(t *testing.T) {
	for _, build := range []func() *netlist.Circuit{circuits.C17, circuits.FullAdder, circuits.Comparator4, circuits.Mux21} {
		c := build()
		g, err := FromCircuit(c)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumPIs() != c.NumInputs()+c.NumKeys() {
			t.Fatalf("%s: PI count mismatch", c.Name)
		}
		n := c.NumInputs()
		for v := 0; v < 1<<uint(n); v++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = v>>uint(i)&1 == 1
			}
			want, err := sim.Eval(c, in, nil)
			if err != nil {
				t.Fatal(err)
			}
			vals := make([]bool, len(g.nodes))
			for i, pi := range g.pis {
				vals[pi] = in[i]
			}
			for j, o := range g.pos {
				if got := evalLit(g, o, vals); got != want[j] {
					t.Fatalf("%s input %b output %d: AIG %v, circuit %v", c.Name, v, j, got, want[j])
				}
			}
		}
	}
}

func TestFromCircuitSharesLogic(t *testing.T) {
	// Two identical AND gates in the netlist must map to one AIG node.
	c := netlist.New("dup")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	g1 := c.MustAddGate(netlist.And, "g1", a, b)
	g2 := c.MustAddGate(netlist.And, "g2", a, b)
	o := c.MustAddGate(netlist.Or, "o", g1, g2)
	c.MarkOutput(o)
	g, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	// OR(x, x) = x, so the whole circuit collapses to one AND node.
	ands, _ := g.CountUsed()
	if ands != 1 {
		t.Fatalf("used ANDs = %d, want 1 (sharing + absorption)", ands)
	}
}

func TestBalancedAndReducesDepth(t *testing.T) {
	// A 16-input AND as a chain would be depth 15; balanced it is 4.
	c := netlist.New("wide")
	ids := make([]int, 16)
	for i := range ids {
		ids[i], _ = c.AddInput(fmt.Sprintf("x%d", i))
	}
	o := c.MustAddGate(netlist.And, "wideand", ids...)
	c.MarkOutput(o)
	g, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	_, levels := g.CountUsed()
	if levels != 4 {
		t.Fatalf("balanced 16-AND depth = %d, want 4", levels)
	}
}

func TestXorCost(t *testing.T) {
	g := New()
	a := g.AddPI()
	b := g.AddPI()
	g.AddPO(g.Xor(a, b))
	ands, _ := g.CountUsed()
	if ands != 3 {
		t.Fatalf("XOR2 = %d ANDs, want 3", ands)
	}
}

func TestMux(t *testing.T) {
	g := New()
	s := g.AddPI()
	a := g.AddPI()
	b := g.AddPI()
	m := g.Mux(s, a, b)
	for v := 0; v < 8; v++ {
		vals := make([]bool, len(g.nodes))
		vals[s.Node()] = v&1 == 1
		vals[a.Node()] = v>>1&1 == 1
		vals[b.Node()] = v>>2&1 == 1
		want := vals[b.Node()]
		if vals[s.Node()] {
			want = vals[a.Node()]
		}
		if got := evalLit(g, m, vals); got != want {
			t.Fatalf("mux wrong at %03b", v)
		}
	}
}

func TestCountUsedIgnoresDangling(t *testing.T) {
	g := New()
	a := g.AddPI()
	b := g.AddPI()
	g.And(a, b) // dangling
	g.AddPO(g.And(a, b.Not()))
	ands, _ := g.CountUsed()
	if ands != 1 {
		t.Fatalf("used ANDs = %d, want 1", ands)
	}
	if g.NumANDs() != 2 {
		t.Fatalf("total ANDs = %d, want 2", g.NumANDs())
	}
}

func TestFromCircuitRandomCrossCheck(t *testing.T) {
	c := circuits.RippleAdder(6)
	g, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	in := make([]bool, c.NumInputs())
	for trial := 0; trial < 200; trial++ {
		r.Bits(in)
		want, _ := sim.Eval(c, in, nil)
		vals := make([]bool, len(g.nodes))
		for i, pi := range g.pis {
			vals[pi] = in[i]
		}
		for j, o := range g.pos {
			if evalLit(g, o, vals) != want[j] {
				t.Fatalf("trial %d output %d differs", trial, j)
			}
		}
	}
}
