package aig

// Rewrite runs the explicit optimization passes on an AIG that was built
// with FromCircuit — the stand-in for ABC's refactor → rewrite steps on
// top of the constructive strash:
//
//   - two-level absorption and resolution rules on AND pairs
//     (a∧b) ∧ (a∧c) patterns re-associate through the strash table and
//     collapse shared structure,
//   - constant and complement propagation exposed by earlier rules,
//   - a final dangling sweep (the area metric already ignores dangling
//     nodes; the sweep makes the node table itself compact).
//
// The graph is rebuilt bottom-up, re-entering every node through And(),
// so all constructive rules apply transitively; one extra rule handles
// the two-level "resolution" pattern that construction order can hide.
// Rewrite is idempotent and never increases the used-node count.
func (g *AIG) Rewrite() *AIG {
	out := New()
	// Map old literal -> new literal.
	mapped := make([]Lit, len(g.nodes))
	mapped[0] = ConstTrue
	for _, pi := range g.pis {
		mapped[pi] = out.AddPI()
	}
	remap := func(l Lit) Lit {
		m := mapped[l.Node()]
		if l.Compl() {
			m = m.Not()
		}
		return m
	}
	for id := 1; id < len(g.nodes); id++ {
		n := &g.nodes[id]
		if n.isPI {
			continue
		}
		a := remap(n.f0)
		b := remap(n.f1)
		mapped[id] = out.andRewrite(a, b)
	}
	for _, o := range g.pos {
		out.AddPO(remap(o))
	}
	return out
}

// andRewrite is And() plus the two-level resolution/sharing rules that
// need to look inside both fanins.
func (g *AIG) andRewrite(a, b Lit) Lit {
	// Resolution: (x ∧ y) ∧ (x ∧ ¬y) = 0 is covered by containment once
	// shared; the interesting two-level cases:
	//   (¬(x∧y)) ∧ (¬(x∧¬y)) = ¬x        (both products of x die)
	//   (x∧y) ∧ z where z complements one factor — handled by And().
	if a.Compl() && b.Compl() {
		an, bn := a.Node(), b.Node()
		if an != 0 && bn != 0 && !g.nodes[an].isPI && !g.nodes[bn].isPI &&
			an < len(g.nodes) && bn < len(g.nodes) {
			af0, af1 := g.fanins(an)
			bf0, bf1 := g.fanins(bn)
			if shared, other1, other2, ok := sharedFactor(af0, af1, bf0, bf1); ok && other1 == other2.Not() {
				// ¬(s∧o) ∧ ¬(s∧¬o) = ¬s
				_ = other1
				return shared.Not()
			}
		}
	}
	return g.And(a, b)
}

// fanins returns the fanin literals of an AND node in this graph.
func (g *AIG) fanins(id int) (Lit, Lit) {
	return g.nodes[id].f0, g.nodes[id].f1
}

// sharedFactor finds a literal present in both (a0,a1) and (b0,b1),
// returning it plus the two leftover literals.
func sharedFactor(a0, a1, b0, b1 Lit) (shared, otherA, otherB Lit, ok bool) {
	switch {
	case a0 == b0:
		return a0, a1, b1, true
	case a0 == b1:
		return a0, a1, b0, true
	case a1 == b0:
		return a1, a0, b1, true
	case a1 == b1:
		return a1, a0, b0, true
	}
	return 0, 0, 0, false
}
