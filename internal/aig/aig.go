// Package aig implements And-Inverter Graphs with structural hashing and
// local rewriting. It plays ABC's role in the paper's Table I flow: both
// the original and the protected circuit are normalized (strash →
// refactor → rewrite in the paper; strash + local Boolean rules + tree
// balancing here) before area is measured as node count and delay as
// logic levels, so the reported overheads compare like against like.
package aig

import (
	"fmt"

	"orap/internal/ir"
	"orap/internal/netlist"
)

// Lit is an AIG literal: node index times two, plus one when complemented.
// Node 0 is the constant-true node, so Lit 0 is const1 and Lit 1 const0.
type Lit uint32

// Constant literals.
const (
	ConstTrue  Lit = 0
	ConstFalse Lit = 1
)

// MkLit builds a literal.
func MkLit(node int, compl bool) Lit {
	l := Lit(node << 1)
	if compl {
		l |= 1
	}
	return l
}

// Node returns the literal's node index.
func (l Lit) Node() int { return int(l >> 1) }

// Compl reports whether the literal is complemented.
func (l Lit) Compl() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// node is an AND2 node (or a PI / constant placeholder).
type node struct {
	f0, f1 Lit // fanins; PIs and the constant have f0 == f1 == 0 and isPI/const flags
	isPI   bool
	level  int32
}

// AIG is an and-inverter graph under construction.
type AIG struct {
	nodes []node
	pis   []int
	pos   []Lit
	// strash maps (f0, f1) to the existing node.
	strash map[[2]Lit]int
}

// New returns an empty AIG containing only the constant node.
func New() *AIG {
	g := &AIG{strash: make(map[[2]Lit]int)}
	g.nodes = append(g.nodes, node{}) // node 0: constant true
	return g
}

// NumANDs returns the number of AND nodes — the area metric.
func (g *AIG) NumANDs() int { return len(g.nodes) - 1 - len(g.pis) }

// NumPIs returns the number of primary inputs.
func (g *AIG) NumPIs() int { return len(g.pis) }

// NumPOs returns the number of primary outputs.
func (g *AIG) NumPOs() int { return len(g.pos) }

// AddPI appends a primary input and returns its literal.
func (g *AIG) AddPI() Lit {
	id := len(g.nodes)
	g.nodes = append(g.nodes, node{isPI: true})
	g.pis = append(g.pis, id)
	return MkLit(id, false)
}

// AddPO marks a literal as a primary output.
func (g *AIG) AddPO(l Lit) { g.pos = append(g.pos, l) }

// And returns a literal for a ∧ b, building a node only when no
// simplification or structural match applies.
func (g *AIG) And(a, b Lit) Lit {
	// Normalize order.
	if a > b {
		a, b = b, a
	}
	// Trivial rules.
	switch {
	case a == ConstFalse || b == ConstFalse:
		return ConstFalse
	case a == ConstTrue:
		return b
	case b == ConstTrue:
		return a
	case a == b:
		return a
	case a == b.Not():
		return ConstFalse
	}
	// One-level containment rules: a ∧ (a ∧ x) = a ∧ x, a ∧ (¬a ∧ x) = 0.
	if s, ok := g.containment(a, b); ok {
		return s
	}
	if s, ok := g.containment(b, a); ok {
		return s
	}
	key := [2]Lit{a, b}
	if id, ok := g.strash[key]; ok {
		return MkLit(id, false)
	}
	id := len(g.nodes)
	lv := max32(g.levelOf(a), g.levelOf(b)) + 1
	g.nodes = append(g.nodes, node{f0: a, f1: b, level: lv})
	g.strash[key] = id
	return MkLit(id, false)
}

// containment simplifies a ∧ b when b is an uncomplemented AND node that
// already contains a or ¬a as a direct fanin.
func (g *AIG) containment(a, b Lit) (Lit, bool) {
	if b.Compl() {
		return 0, false
	}
	n := &g.nodes[b.Node()]
	if n.isPI || b.Node() == 0 {
		return 0, false
	}
	if n.f0 == a || n.f1 == a {
		return b, true // absorption
	}
	if n.f0 == a.Not() || n.f1 == a.Not() {
		return ConstFalse, true // contradiction
	}
	return 0, false
}

// Or builds a ∨ b via De Morgan.
func (g *AIG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor builds a ⊕ b (three AND nodes in the worst case).
func (g *AIG) Xor(a, b Lit) Lit {
	return g.And(g.And(a, b.Not()).Not(), g.And(a.Not(), b).Not()).Not()
}

// Mux builds s ? t : e.
func (g *AIG) Mux(s, t, e Lit) Lit {
	return g.And(g.And(s, t).Not(), g.And(s.Not(), e).Not()).Not()
}

func (g *AIG) levelOf(l Lit) int32 {
	return g.nodes[l.Node()].level
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// Levels returns the maximum AND level over the primary outputs — the
// delay metric.
func (g *AIG) Levels() int {
	lv := int32(0)
	for _, o := range g.pos {
		if l := g.levelOf(o); l > lv {
			lv = l
		}
	}
	return int(lv)
}

// CountUsed returns the number of AND nodes in the transitive fanin of the
// outputs (the area after a dangling-node sweep) and their depth.
func (g *AIG) CountUsed() (ands, levels int) {
	used := make([]bool, len(g.nodes))
	var walk func(l Lit)
	walk = func(l Lit) {
		id := l.Node()
		if used[id] {
			return
		}
		used[id] = true
		n := &g.nodes[id]
		if n.isPI || id == 0 {
			return
		}
		walk(n.f0)
		walk(n.f1)
	}
	for _, o := range g.pos {
		walk(o)
	}
	for id, u := range used {
		if u && !g.nodes[id].isPI && id != 0 {
			ands++
		}
	}
	return ands, g.Levels()
}

// FromCircuit compiles a gate-level circuit and strashes it into a fresh
// AIG (see FromProgram).
func FromCircuit(c *netlist.Circuit) (*AIG, error) {
	prog, err := ir.Compile(c)
	if err != nil {
		return nil, err
	}
	return FromProgram(prog)
}

// FromProgram strashes a compiled circuit into a fresh AIG. Key inputs
// become ordinary PIs (appended after the primary inputs). Multi-input
// gates are decomposed into balanced trees, which also realizes the
// balancing effect of a resynthesis pass. Construction walks the
// program's topological order, so the same program always yields the
// same graph.
func FromProgram(prog *ir.Program) (*AIG, error) {
	g := New()
	lit := make([]Lit, prog.NumNodes())
	for i := range lit {
		lit[i] = ConstFalse
	}
	for _, id := range prog.PIs {
		lit[id] = g.AddPI()
	}
	for _, id := range prog.Keys {
		lit[id] = g.AddPI()
	}
	for _, id32 := range prog.Order {
		id := int(id32)
		op := prog.Ops[id]
		fanin := prog.FaninSpan(id)
		switch op {
		case ir.OpInput:
			// Already assigned.
		case ir.OpConst0:
			lit[id] = ConstFalse
		case ir.OpConst1:
			lit[id] = ConstTrue
		case ir.OpBuf:
			lit[id] = lit[fanin[0]]
		case ir.OpNot:
			lit[id] = lit[fanin[0]].Not()
		case ir.OpAnd, ir.OpNand, ir.OpOr, ir.OpNor:
			fan := make([]Lit, len(fanin))
			for i, f := range fanin {
				fan[i] = lit[f]
				if op == ir.OpOr || op == ir.OpNor {
					fan[i] = fan[i].Not()
				}
			}
			v := g.balancedAnd(fan)
			if op == ir.OpNand || op == ir.OpOr {
				v = v.Not()
			}
			lit[id] = v
		case ir.OpXor, ir.OpXnor:
			v := lit[fanin[0]]
			for _, f := range fanin[1:] {
				v = g.Xor(v, lit[f])
			}
			if op == ir.OpXnor {
				v = v.Not()
			}
			lit[id] = v
		default:
			return nil, fmt.Errorf("aig: unsupported gate type %v", op)
		}
	}
	for _, o := range prog.POs {
		g.AddPO(lit[o])
	}
	return g, nil
}

// balancedAnd conjoins literals as a balanced tree (minimizing depth),
// sorted by level so shallow inputs pair first.
func (g *AIG) balancedAnd(fan []Lit) Lit {
	if len(fan) == 0 {
		return ConstTrue
	}
	work := append([]Lit(nil), fan...)
	for len(work) > 1 {
		// Repeatedly combine the two shallowest literals.
		ai, bi := g.twoShallowest(work)
		a, b := work[ai], work[bi]
		// Remove bi first (bi > ai by construction).
		work = append(work[:bi], work[bi+1:]...)
		work[ai] = g.And(a, b)
	}
	return work[0]
}

// twoShallowest returns the indices of the two lowest-level literals,
// first index smaller.
func (g *AIG) twoShallowest(work []Lit) (int, int) {
	a, b := 0, 1
	if g.levelOf(work[b]) < g.levelOf(work[a]) {
		a, b = b, a
	}
	for i := 2; i < len(work); i++ {
		l := g.levelOf(work[i])
		switch {
		case l < g.levelOf(work[a]):
			b = a
			a = i
		case l < g.levelOf(work[b]):
			b = i
		}
	}
	if a > b {
		a, b = b, a
	}
	return a, b
}
