package aig

import (
	"testing"

	"orap/internal/benchgen"
	"orap/internal/circuits"
	"orap/internal/rng"
	"orap/internal/sim"
)

func TestRewriteResolutionRule(t *testing.T) {
	// ¬(x∧y) ∧ ¬(x∧¬y) = ¬x: Rewrite must collapse the whole cone.
	g := New()
	x := g.AddPI()
	y := g.AddPI()
	p := g.And(x, y).Not()
	q := g.And(x, y.Not()).Not()
	// Build the top AND through raw And (construction can't see the
	// two-level rule when the products were built first).
	g.AddPO(g.And(p, q))
	r := g.Rewrite()
	ands, _ := r.CountUsed()
	if ands != 0 {
		t.Fatalf("resolution did not collapse: %d used ANDs, want 0 (output = ¬x)", ands)
	}
}

func TestRewritePreservesFunction(t *testing.T) {
	for _, build := range []func() (*AIG, error){
		func() (*AIG, error) { return FromCircuit(circuits.C17()) },
		func() (*AIG, error) { return FromCircuit(circuits.RippleAdder(5)) },
		func() (*AIG, error) { return FromCircuit(circuits.Comparator4()) },
	} {
		g, err := build()
		if err != nil {
			t.Fatal(err)
		}
		r := g.Rewrite()
		if r.NumPIs() != g.NumPIs() || r.NumPOs() != g.NumPOs() {
			t.Fatal("Rewrite changed the interface")
		}
		// Exhaustive comparison up to 2^11.
		n := g.NumPIs()
		if n > 11 {
			t.Fatalf("test circuit too wide: %d PIs", n)
		}
		for v := 0; v < 1<<uint(n); v++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = v>>uint(i)&1 == 1
			}
			valsG := make([]bool, len(g.nodes))
			for i, pi := range g.pis {
				valsG[pi] = in[i]
			}
			valsR := make([]bool, len(r.nodes))
			for i, pi := range r.pis {
				valsR[pi] = in[i]
			}
			for j := range g.pos {
				if evalLit(g, g.pos[j], valsG) != evalLit(r, r.pos[j], valsR) {
					t.Fatalf("Rewrite changed output %d at input %b", j, v)
				}
			}
		}
	}
}

func TestRewriteNeverGrows(t *testing.T) {
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 3; seed++ {
		c, err := benchgen.Generate(prof.Scale(0.01), seed)
		if err != nil {
			t.Fatal(err)
		}
		g, err := FromCircuit(c)
		if err != nil {
			t.Fatal(err)
		}
		before, _ := g.CountUsed()
		r := g.Rewrite()
		after, _ := r.CountUsed()
		if after > before {
			t.Fatalf("seed %d: Rewrite grew the graph %d -> %d", seed, before, after)
		}
	}
}

func TestRewriteIdempotent(t *testing.T) {
	g, err := FromCircuit(circuits.RippleAdder(6))
	if err != nil {
		t.Fatal(err)
	}
	r1 := g.Rewrite()
	r2 := r1.Rewrite()
	a1, _ := r1.CountUsed()
	a2, _ := r2.CountUsed()
	if a2 > a1 {
		t.Fatalf("second Rewrite grew the graph %d -> %d", a1, a2)
	}
}

func TestRewriteRandomCrossCheck(t *testing.T) {
	prof, err := benchgen.ProfileByName("b21")
	if err != nil {
		t.Fatal(err)
	}
	c, err := benchgen.Generate(prof.Scale(0.004), 9)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	r := g.Rewrite()
	rand := rng.New(10)
	in := make([]bool, c.NumInputs())
	for trial := 0; trial < 100; trial++ {
		rand.Bits(in)
		want, err := sim.Eval(c, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		valsR := make([]bool, len(r.nodes))
		for i, pi := range r.pis {
			valsR[pi] = in[i]
		}
		for j := range r.pos {
			if evalLit(r, r.pos[j], valsR) != want[j] {
				t.Fatalf("trial %d output %d differs from circuit", trial, j)
			}
		}
	}
}
