package lock

import (
	"testing"

	"orap/internal/circuits"
	"orap/internal/rng"
	"orap/internal/sim"
)

func TestTTLockEquivalence(t *testing.T) {
	r := rng.New(21)
	orig := circuits.C17()
	l, err := TTLock(orig, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if l.Circuit.NumKeys() != 5 {
		t.Fatalf("keys = %d, want 5", l.Circuit.NumKeys())
	}
	assertEquivalentUnderKey(t, orig, l)
}

func TestTTLockWrongKeyCorruptsTwoPatterns(t *testing.T) {
	r := rng.New(22)
	orig := circuits.C17()
	l, err := TTLock(orig, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	wrong := append([]bool(nil), l.Key...)
	wrong[1] = !wrong[1]
	mismatches := 0
	for v := 0; v < 32; v++ {
		in := make([]bool, 5)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		want, _ := sim.Eval(orig, in, nil)
		got, _ := sim.Eval(l.Circuit, in, wrong)
		for j := range want {
			if want[j] != got[j] {
				mismatches++
				break
			}
		}
	}
	if mismatches != 2 {
		t.Fatalf("wrong key corrupted %d inputs, want exactly 2 (protected cube + wrong restore)", mismatches)
	}
}

func TestTTLockRemovalResistance(t *testing.T) {
	// Removing the restore unit must NOT recover the original function:
	// the stripped circuit differs on the protected cube. This is the
	// property that separates TTLock from SARLock.
	r := rng.New(23)
	orig := circuits.C17()
	l, err := TTLock(orig, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := StripRestoreUnit(l)
	if err != nil {
		t.Fatal(err)
	}
	diffs := 0
	var diffAt int
	key := make([]bool, stripped.NumKeys())
	for v := 0; v < 32; v++ {
		in := make([]bool, 5)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		want, _ := sim.Eval(orig, in, nil)
		got, _ := sim.Eval(stripped, in, key)
		for j := range want {
			if want[j] != got[j] {
				diffs++
				diffAt = v
				break
			}
		}
	}
	if diffs != 1 {
		t.Fatalf("stripped circuit differs on %d inputs, want exactly 1", diffs)
	}
	// The difference must be exactly the protected cube.
	for i := range l.Key {
		if l.Key[i] != (diffAt>>uint(i)&1 == 1) {
			t.Fatalf("stripped circuit differs at %05b, protected cube is %v", diffAt, l.Key)
		}
	}
}

func TestTTLockSARLockContrastOnRemoval(t *testing.T) {
	// SARLock's flip logic is additive: forcing its flip signal away
	// (removal attack) recovers the original exactly. Verify our SARLock
	// has that weakness so the TTLock contrast is real: with the correct
	// key the flip never fires, and the flip signal is a pure add-on the
	// removal attack can isolate.
	r := rng.New(24)
	orig := circuits.C17()
	l, err := SARLock(orig, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate removal: take the XOR output gate's functional input.
	c := l.Circuit.Clone()
	out := c.POs[0]
	c.POs[0] = c.Gates[out].Fanin[0]
	key := make([]bool, c.NumKeys())
	for v := 0; v < 32; v++ {
		in := make([]bool, 5)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		want, _ := sim.Eval(orig, in, nil)
		got, _ := sim.Eval(c, in, key)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("SARLock removal failed at input %05b — construction changed?", v)
			}
		}
	}
}
