package lock

import (
	"fmt"

	"orap/internal/netlist"
	"orap/internal/rng"
)

// TTLock locks the circuit with TTLock (Yasin et al., GLSVLSI'17, the
// precursor of stripped-functionality logic locking): the function is
// *stripped* by hard-wiring a flip of one output on a single secret input
// cube, and a keyed restore unit flips the output again when the applied
// key matches the input pattern. With the correct key the two flips
// cancel everywhere; a wrong key corrupts exactly two input patterns
// (the protected cube and the wrongly restored one).
//
// Like SARLock this yields one-key-per-DIP SAT resistance with minimal
// corruption, but unlike SARLock the locked netlist without its restore
// unit is NOT the original function — removal attacks recover only the
// stripped circuit. The keyBits inputs compared are the first min(keyBits,
// inputs) primary inputs; the returned key is the protected cube.
func TTLock(c *netlist.Circuit, keyBits int, r *rng.Stream) (*Locked, error) {
	if c.NumOutputs() == 0 {
		return nil, fmt.Errorf("lock: circuit %q has no outputs", c.Name)
	}
	if keyBits <= 0 || keyBits > c.NumInputs() {
		keyBits = c.NumInputs()
	}
	lc := c.Clone()
	lc.Name = fmt.Sprintf("%s_tt%d", c.Name, keyBits)

	cube := make([]bool, keyBits)
	r.Bits(cube)
	base := lc.NumKeys()
	keyIDs := make([]int, keyBits)
	for i := range keyIDs {
		id, err := lc.AddKeyInput(fmt.Sprintf("keyinput%d", base+i))
		if err != nil {
			return nil, err
		}
		keyIDs[i] = id
	}

	// strip = AND_i (x_i XNOR cube_i): hard-wired cube comparator, part
	// of the stripped (manufactured) netlist.
	stripIn := make([]int, keyBits)
	for i := 0; i < keyBits; i++ {
		if cube[i] {
			stripIn[i] = lc.PIs[i]
		} else {
			stripIn[i] = lc.MustAddGate(netlist.Not, fmt.Sprintf("tt_sn%d_%d", i, base), lc.PIs[i])
		}
	}
	strip := andTree(lc, fmt.Sprintf("tt_strip%d", base), stripIn)

	// restore = AND_i (x_i XNOR k_i): the keyed restore unit
	// (programmable functionality restoration).
	restIn := make([]int, keyBits)
	for i := 0; i < keyBits; i++ {
		restIn[i] = lc.MustAddGate(netlist.Xnor, fmt.Sprintf("tt_rq%d_%d", i, base), lc.PIs[i], keyIDs[i])
	}
	restore := andTree(lc, fmt.Sprintf("tt_rest%d", base), restIn)

	target := lc.POs[0]
	stripped := lc.MustAddGate(netlist.Xor, fmt.Sprintf("tt_sflip%d", base), target, strip)
	restored := lc.MustAddGate(netlist.Xor, fmt.Sprintf("tt_out%d", base), stripped, restore)
	lc.POs[0] = restored
	if err := lc.Validate(); err != nil {
		return nil, fmt.Errorf("lock: TTLock produced invalid circuit: %w", err)
	}
	return &Locked{Circuit: lc, Key: cube}, nil
}

// StripRestoreUnit returns the TTLock circuit with its restore unit
// removed (the removal attack's view): the stripped function, which
// differs from the original on the protected cube. It is used by tests
// and studies to demonstrate TTLock's removal resistance.
func StripRestoreUnit(l *Locked) (*netlist.Circuit, error) {
	c := l.Circuit.Clone()
	c.Name = l.Circuit.Name + "_removed"
	// Removing the restore unit means the final XOR collapses to its
	// stripped input: rewire PO[0] to the tt_sflip node.
	out := c.POs[0]
	g := c.Gates[out]
	if g.Type != netlist.Xor || len(g.Fanin) != 2 {
		return nil, fmt.Errorf("lock: circuit %q does not look TTLock-ed", l.Circuit.Name)
	}
	c.POs[0] = g.Fanin[0]
	// Key inputs now drive dead logic only.
	return c, nil
}
