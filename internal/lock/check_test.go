package lock

import (
	"testing"

	"orap/internal/check"
	"orap/internal/circuits"
	"orap/internal/netlist"
	"orap/internal/rng"
)

// TestLockedOutputsPassCheck runs the full diagnostic rule set on each
// technique's output right after construction: no error-severity
// findings, no key-convention warnings (keys must be named keyinput<i>
// and every key bit must be observable), and no dead logic introduced
// by the rewiring.
func TestLockedOutputsPassCheck(t *testing.T) {
	base := circuits.RippleAdder(4)
	techniques := map[string]func() (*Locked, error){
		"randomxor": func() (*Locked, error) { return RandomXOR(base.Clone(), 4, rng.New(21)) },
		"weighted": func() (*Locked, error) {
			return Weighted(base.Clone(), WeightedOptions{KeyBits: 6, ControlWidth: 3, Rand: rng.New(22)})
		},
		"sarlock": func() (*Locked, error) { return SARLock(base.Clone(), 4, rng.New(23)) },
		"antisat": func() (*Locked, error) { return AntiSAT(base.Clone(), 4, rng.New(24)) },
		"ttlock":  func() (*Locked, error) { return TTLock(base.Clone(), 4, rng.New(25)) },
	}
	for name, build := range techniques {
		l, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep := check.Circuit(l.Circuit)
		if errs := rep.Errors(); len(errs) != 0 {
			t.Errorf("%s: error diagnostics on the locked output:\n%s", name, rep)
		}
		for _, rule := range []string{check.RuleKeyNaming, check.RuleKeyUnobservable, check.RuleDangling, check.RuleDeadCone} {
			if d := rep.ByRule(rule); len(d) != 0 {
				t.Errorf("%s: rule %s fired on the locked output:\n%s", name, rule, rep)
			}
		}
	}
}

// TestStackedLockPassesCheck covers the compound-defense path: weighted
// locking wrapped in SARLock must still satisfy the key conventions for
// the concatenated key.
func TestStackedLockPassesCheck(t *testing.T) {
	l, err := Stack(circuits.RippleAdder(4),
		func(c *netlist.Circuit) (*Locked, error) {
			return Weighted(c, WeightedOptions{KeyBits: 6, ControlWidth: 3, Rand: rng.New(31)})
		},
		func(c *netlist.Circuit) (*Locked, error) { return SARLock(c, 4, rng.New(32)) },
	)
	if err != nil {
		t.Fatal(err)
	}
	rep := check.Circuit(l.Circuit)
	if errs := rep.Errors(); len(errs) != 0 {
		t.Fatalf("stacked lock: error diagnostics:\n%s", rep)
	}
	if d := rep.ByRule(check.RuleKeyNaming); len(d) != 0 {
		t.Fatalf("stacked lock: key naming broke across stacking:\n%s", rep)
	}
}
