package lock

import (
	"fmt"

	"orap/internal/netlist"
	"orap/internal/rng"
)

// SARLock locks the circuit with the SARLock point-function defense: a
// comparator flips one primary output exactly when the applied key equals
// the input pattern and differs from the correct key, so each SAT-attack
// DIP rules out only a single wrong key and the attack needs ~2^n
// iterations. Output corruptibility is minimal (one input pattern per
// wrong key), the weakness the OraP paper highlights in SAT-resistant
// schemes.
//
// The key width equals the circuit's primary input count when keyBits is
// zero or exceeds it; otherwise the first keyBits inputs are compared.
func SARLock(c *netlist.Circuit, keyBits int, r *rng.Stream) (*Locked, error) {
	if c.NumOutputs() == 0 {
		return nil, fmt.Errorf("lock: circuit %q has no outputs", c.Name)
	}
	if keyBits <= 0 || keyBits > c.NumInputs() {
		keyBits = c.NumInputs()
	}
	lc := c.Clone()
	lc.Name = fmt.Sprintf("%s_sar%d", c.Name, keyBits)

	key := make([]bool, keyBits)
	r.Bits(key)
	base := lc.NumKeys()
	keyIDs := make([]int, keyBits)
	for i := range keyIDs {
		id, err := lc.AddKeyInput(fmt.Sprintf("keyinput%d", base+i))
		if err != nil {
			return nil, err
		}
		keyIDs[i] = id
	}

	// match = AND_i (x_i XNOR k_i): applied key equals the input pattern.
	matchIn := make([]int, keyBits)
	for i := 0; i < keyBits; i++ {
		matchIn[i] = lc.MustAddGate(netlist.Xnor, fmt.Sprintf("sar_eq%d_%d", i, base), lc.PIs[i], keyIDs[i])
	}
	match := andTree(lc, fmt.Sprintf("sar_match%d", base), matchIn)

	// correct = AND_i (k_i XNOR k*_i): applied key equals the correct key.
	// The correct key is hard-wired through per-bit inversion, exactly as
	// a masked comparator implements it.
	corrIn := make([]int, keyBits)
	for i := 0; i < keyBits; i++ {
		if key[i] {
			corrIn[i] = keyIDs[i]
		} else {
			corrIn[i] = lc.MustAddGate(netlist.Not, fmt.Sprintf("sar_kn%d_%d", i, base), keyIDs[i])
		}
	}
	correct := andTree(lc, fmt.Sprintf("sar_corr%d", base), corrIn)
	notCorrect := lc.MustAddGate(netlist.Not, fmt.Sprintf("sar_ncorr%d", base), correct)

	flip := lc.MustAddGate(netlist.And, fmt.Sprintf("sar_flip%d", base), match, notCorrect)

	// XOR the flip signal into the first primary output.
	target := lc.POs[0]
	fo := lc.MustAddGate(netlist.Xor, fmt.Sprintf("sar_out%d", base), target, flip)
	lc.POs[0] = fo
	if err := lc.Validate(); err != nil {
		return nil, fmt.Errorf("lock: SARLock produced invalid circuit: %w", err)
	}
	return &Locked{Circuit: lc, Key: key}, nil
}

// AntiSAT locks the circuit with an Anti-SAT block: two complementary
// key-mixed functions g(X⊕K1) ∧ ḡ(X⊕K2) whose AND is constantly zero only
// when K1 = K2 (the correct relationship); any other key pair leaks a one
// on a tiny input set, again forcing ~2^n SAT iterations with negligible
// corruption. The returned key stacks K1 then K2 (width 2·keyBits).
func AntiSAT(c *netlist.Circuit, keyBits int, r *rng.Stream) (*Locked, error) {
	if c.NumOutputs() == 0 {
		return nil, fmt.Errorf("lock: circuit %q has no outputs", c.Name)
	}
	if keyBits <= 0 || keyBits > c.NumInputs() {
		keyBits = c.NumInputs()
	}
	lc := c.Clone()
	lc.Name = fmt.Sprintf("%s_anti%d", c.Name, keyBits)

	// Correct key: K1 = K2 = v for a random v.
	v := make([]bool, keyBits)
	r.Bits(v)
	key := make([]bool, 2*keyBits)
	copy(key, v)
	copy(key[keyBits:], v)

	base := lc.NumKeys()
	k1 := make([]int, keyBits)
	k2 := make([]int, keyBits)
	for i := 0; i < keyBits; i++ {
		id, err := lc.AddKeyInput(fmt.Sprintf("keyinput%d", base+i))
		if err != nil {
			return nil, err
		}
		k1[i] = id
	}
	for i := 0; i < keyBits; i++ {
		id, err := lc.AddKeyInput(fmt.Sprintf("keyinput%d", base+keyBits+i))
		if err != nil {
			return nil, err
		}
		k2[i] = id
	}

	// g = AND over (x_i ⊕ k1_i); ḡ = NAND over (x_i ⊕ k2_i).
	gIn := make([]int, keyBits)
	hIn := make([]int, keyBits)
	for i := 0; i < keyBits; i++ {
		gIn[i] = lc.MustAddGate(netlist.Xor, fmt.Sprintf("as_g%d_%d", i, base), lc.PIs[i], k1[i])
		hIn[i] = lc.MustAddGate(netlist.Xor, fmt.Sprintf("as_h%d_%d", i, base), lc.PIs[i], k2[i])
	}
	g := andTree(lc, fmt.Sprintf("as_gand%d", base), gIn)
	h := andTree(lc, fmt.Sprintf("as_hand%d", base), hIn)
	hbar := lc.MustAddGate(netlist.Not, fmt.Sprintf("as_hbar%d", base), h)
	flip := lc.MustAddGate(netlist.And, fmt.Sprintf("as_flip%d", base), g, hbar)

	target := lc.POs[0]
	fo := lc.MustAddGate(netlist.Xor, fmt.Sprintf("as_out%d", base), target, flip)
	lc.POs[0] = fo
	if err := lc.Validate(); err != nil {
		return nil, fmt.Errorf("lock: AntiSAT produced invalid circuit: %w", err)
	}
	return &Locked{Circuit: lc, Key: key}, nil
}

// andTree builds a balanced AND tree over the given node IDs and returns
// the root (the single ID itself when len(in) == 1).
func andTree(c *netlist.Circuit, prefix string, in []int) int {
	level := 0
	for len(in) > 1 {
		var next []int
		for i := 0; i+1 < len(in); i += 2 {
			next = append(next, c.MustAddGate(netlist.And, fmt.Sprintf("%s_l%d_%d", prefix, level, i/2), in[i], in[i+1]))
		}
		if len(in)%2 == 1 {
			next = append(next, in[len(in)-1])
		}
		in = next
		level++
	}
	return in[0]
}
