package lock

import (
	"testing"

	"orap/internal/audit"
	"orap/internal/check"
	"orap/internal/circuits"
	"orap/internal/rng"
)

// TestLockedOutputsPassAudit runs the security analyzer on each
// technique's output right after construction. No scheme may leave
// removable key logic behind (an error-severity key-removable finding
// would mean the locker wired a key bit that cannot affect the
// function), and the fingerprint rule must classify each scheme the
// way its literature does: random XOR insertion and the point-function
// family are identifiable (warnings), weighted control cones are
// diffuse (info only).
func TestLockedOutputsPassAudit(t *testing.T) {
	base := circuits.RippleAdder(4)
	techniques := map[string]func() (*Locked, error){
		"randomxor": func() (*Locked, error) { return RandomXOR(base.Clone(), 4, rng.New(21)) },
		"weighted": func() (*Locked, error) {
			return Weighted(base.Clone(), WeightedOptions{KeyBits: 6, ControlWidth: 3, Rand: rng.New(22)})
		},
		"sarlock": func() (*Locked, error) { return SARLock(base.Clone(), 4, rng.New(23)) },
		"antisat": func() (*Locked, error) { return AntiSAT(base.Clone(), 4, rng.New(24)) },
		"ttlock":  func() (*Locked, error) { return TTLock(base.Clone(), 4, rng.New(25)) },
	}
	for name, build := range techniques {
		l, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep, err := audit.Circuit(l.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, f := range rep.ByRule(audit.RuleKeyRemovable) {
			if f.Sev == check.Error {
				t.Errorf("%s: removable key logic in the locked output:\n%s", name, rep)
			}
		}
		fps := rep.ByRule(audit.RuleKeyFingerprint)
		switch name {
		case "randomxor", "sarlock", "antisat", "ttlock":
			warned := false
			for _, f := range fps {
				if f.Sev >= check.Warning {
					warned = true
				}
			}
			if !warned {
				t.Errorf("%s: expected a warning-severity fingerprint finding:\n%s", name, rep)
			}
		case "weighted":
			for _, f := range fps {
				if f.Sev > check.Info {
					t.Errorf("%s: control-cone fingerprint must stay info severity:\n%s", name, rep)
				}
			}
		}
	}
}
