package lock

import (
	"fmt"
	"math/bits"
	"sort"

	"orap/internal/netlist"
	"orap/internal/rng"
	"orap/internal/sim"
)

// WeightedOptions configures weighted logic locking.
type WeightedOptions struct {
	// KeyBits is the key (LFSR) size n.
	KeyBits int
	// ControlWidth is the number of key inputs combined by each control
	// gate (the paper's Table I uses 3, or 5 for the largest circuits).
	ControlWidth int
	// KeyGates is the number of key gates to insert. Zero selects the
	// default KeyBits/ControlWidth (disjoint key groups, as in the
	// IOLTS'17 scheme).
	KeyGates int
	// Rand drives key generation and tie-breaking; required.
	Rand *rng.Stream
}

// Weighted locks the circuit with weighted logic locking: each key gate is
// an XOR/XNOR whose second input comes from a ControlWidth-input control
// gate (NAND or AND) over key inputs, raising the gate's actuation
// probability under a wrong key to 1−2^−w and with it the output
// corruptibility. Insertion locations are chosen by a fault-impact score
// (output observability × switching activity) — the package's stand-in
// for the fault-analysis selection of the original paper — with nodes on
// or near the critical path(s) deferred so the delay overhead stays low.
func Weighted(c *netlist.Circuit, opts WeightedOptions) (*Locked, error) {
	if opts.Rand == nil {
		return nil, fmt.Errorf("lock: Weighted requires a random stream")
	}
	if opts.KeyBits <= 0 {
		return nil, fmt.Errorf("lock: non-positive key size %d", opts.KeyBits)
	}
	w := opts.ControlWidth
	if w <= 0 {
		return nil, fmt.Errorf("lock: non-positive control width %d", w)
	}
	if w > opts.KeyBits {
		return nil, fmt.Errorf("lock: control width %d exceeds key size %d", w, opts.KeyBits)
	}
	gates := opts.KeyGates
	if gates == 0 {
		gates = opts.KeyBits / w
	}
	if gates <= 0 {
		return nil, fmt.Errorf("lock: key size %d with control width %d yields no key gates", opts.KeyBits, w)
	}

	lc := c.Clone()
	lc.Name = fmt.Sprintf("%s_wll%d", c.Name, opts.KeyBits)

	// Rank candidate locations by fault impact, keeping key gates off the
	// critical path(s) where possible so the delay overhead stays near
	// zero ("0% delay overhead means that no key gates have been inserted
	// in a circuit's critical path(s)", Table I discussion).
	scored, err := FaultImpactScores(lc, opts.Rand)
	if err != nil {
		return nil, err
	}
	critical, err := criticalPathNodes(lc)
	if err != nil {
		return nil, err
	}
	candidates := lockableNodes(lc)
	nonCritical := candidates[:0:0]
	var criticalOnes []int
	for _, id := range candidates {
		if critical[id] {
			criticalOnes = append(criticalOnes, id)
		} else {
			nonCritical = append(nonCritical, id)
		}
	}
	sort.SliceStable(nonCritical, func(i, j int) bool {
		return scored[nonCritical[i]] > scored[nonCritical[j]]
	})
	sort.SliceStable(criticalOnes, func(i, j int) bool {
		return scored[criticalOnes[i]] > scored[criticalOnes[j]]
	})
	candidates = append(nonCritical, criticalOnes...)
	if len(candidates) < gates {
		return nil, fmt.Errorf("lock: circuit %q has %d lockable nodes for %d key gates", c.Name, len(candidates), gates)
	}

	// Correct key is random; control-gate inputs are inverted per bit so
	// the correct key is the unique sub-key deactivating each gate.
	key := make([]bool, opts.KeyBits)
	opts.Rand.Bits(key)
	base := lc.NumKeys()
	keyIDs := make([]int, opts.KeyBits)
	for i := range keyIDs {
		id, err := lc.AddKeyInput(fmt.Sprintf("keyinput%d", base+i))
		if err != nil {
			return nil, err
		}
		keyIDs[i] = id
	}

	for g := 0; g < gates; g++ {
		n := candidates[g]
		// Key group: disjoint windows, wrapping when KeyGates exceeds
		// KeyBits/w so every gate still gets w distinct bits.
		group := make([]int, w)
		for j := range group {
			group[j] = (g*w + j) % opts.KeyBits
		}
		// Build the control gate inputs with per-bit inversion.
		ctrlIn := make([]int, w)
		for j, b := range group {
			if key[b] {
				ctrlIn[j] = keyIDs[b]
			} else {
				inv, err := lc.AddGate(netlist.Not, fmt.Sprintf("kinv%d_%d_%d", base, g, j), keyIDs[b])
				if err != nil {
					return nil, err
				}
				ctrlIn[j] = inv
			}
		}
		// Randomly pick (NAND control, XOR key gate) or (AND, XNOR);
		// both deactivate exactly at the correct sub-key. A one-input
		// control "gate" degenerates to the (possibly inverted) key bit
		// itself — plain XOR/XNOR locking.
		ctrlType, kgType := netlist.Nand, netlist.Xor
		if opts.Rand.Bool() {
			ctrlType, kgType = netlist.And, netlist.Xnor
		}
		var ctrl int
		if len(ctrlIn) == 1 {
			if ctrlType == netlist.Nand {
				ctrl, err = lc.AddGate(netlist.Not, fmt.Sprintf("ctrl%d_%d", base, g), ctrlIn[0])
				if err != nil {
					return nil, err
				}
			} else {
				ctrl = ctrlIn[0]
			}
		} else {
			ctrl, err = lc.AddGate(ctrlType, fmt.Sprintf("ctrl%d_%d", base, g), ctrlIn...)
			if err != nil {
				return nil, err
			}
		}
		kg, err := lc.AddGate(kgType, fmt.Sprintf("kg%d_%d", base, g), n, ctrl)
		if err != nil {
			return nil, err
		}
		keep := map[int]bool{kg: true}
		replaceFanin(lc, n, kg, keep)
	}
	if err := lc.Validate(); err != nil {
		return nil, fmt.Errorf("lock: Weighted produced invalid circuit: %w", err)
	}
	return &Locked{Circuit: lc, Key: key}, nil
}

// FaultImpactScores returns a per-node score approximating the output
// corruption a stuck fault (or key-gate flip) at the node would cause:
// the number of (sampled) reachable outputs weighted by the node's
// switching activity under random patterns.
func FaultImpactScores(c *netlist.Circuit, r *rng.Stream) ([]float64, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	// Sample up to 64 primary outputs and propagate reachability masks
	// backwards through the DAG.
	reach := make([]uint64, c.NumNodes())
	outs := c.POs
	if len(outs) > 64 {
		perm := r.Perm(len(outs))
		sampled := make([]int, 64)
		for i := range sampled {
			sampled[i] = outs[perm[i]]
		}
		outs = sampled
	}
	for i, o := range outs {
		reach[o] |= 1 << uint(i%64)
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		for _, f := range c.Gates[id].Fanin {
			reach[f] |= reach[id]
		}
	}

	// Switching activity from one word (64 patterns) of random simulation.
	p, err := sim.NewParallel(c, 1)
	if err != nil {
		return nil, err
	}
	p.RandomizeInputs(r)
	for _, id := range c.Keys {
		p.SetInputConst(id, false)
	}
	p.Run()

	scores := make([]float64, c.NumNodes())
	for id := range scores {
		ones := bits.OnesCount64(p.Value(id)[0])
		prob := float64(ones) / 64
		activity := 4 * prob * (1 - prob) // peaks at balanced signals
		scores[id] = float64(bits.OnesCount64(reach[id])) * (0.25 + activity)
	}
	return scores, nil
}

// criticalPathNodes marks every node lying on some longest input-to-output
// path: level(n) + downstream(n) equals the circuit depth.
func criticalPathNodes(c *netlist.Circuit) ([]bool, error) {
	levels, err := c.Levels()
	if err != nil {
		return nil, err
	}
	depth, err := c.Depth()
	if err != nil {
		return nil, err
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	// downstream[n]: longest gate count from n to any primary output.
	down := make([]int, c.NumNodes())
	fanout := c.FanoutLists()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0
		for _, fo := range fanout[id] {
			if d := down[fo] + 1; d > best {
				best = d
			}
		}
		down[id] = best
	}
	// A key gate inserted on a node adds a couple of logic levels (the
	// XOR plus, after decomposition, part of the control tree), so nodes
	// need that much slack for the circuit depth to stay put.
	const keyGateDepth = 3
	crit := make([]bool, c.NumNodes())
	for id := range crit {
		crit[id] = levels[id]+down[id]+keyGateDepth > depth
	}
	return crit, nil
}
