package lock

import (
	"fmt"
	"testing"

	"orap/internal/audit"
	"orap/internal/circuits"
	"orap/internal/netlist"
	"orap/internal/rng"
	"orap/internal/sim"
)

// assertEquivalentUnderKey exhaustively (up to 2^inputs ≤ 2^12) checks that
// the locked circuit with the correct key matches the original, then
// confirms the audit's symbolic equivalence proof reaches the same
// verdict over every input pattern at once.
func assertEquivalentUnderKey(t *testing.T, orig *netlist.Circuit, l *Locked) {
	t.Helper()
	rep, err := audit.KeyEquivalence(l.Circuit, orig, l.Key, audit.ExactOptions{})
	if err != nil {
		t.Fatalf("symbolic equivalence proof: %v", err)
	}
	if rep.HasErrors() {
		t.Fatalf("symbolic equivalence proof rejected the stored key:\n%s", rep)
	}
	n := orig.NumInputs()
	if n > 12 {
		t.Fatalf("circuit too wide for exhaustive check: %d inputs", n)
	}
	for v := 0; v < 1<<uint(n); v++ {
		in := make([]bool, n)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		want, err := sim.Eval(orig, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.Eval(l.Circuit, in, l.Key)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("input %b output %d: locked+key %v, original %v", v, j, got[j], want[j])
			}
		}
	}
}

// countWrongKeyMismatch returns how many of the sampled wrong keys change
// at least one output on at least one of the sampled inputs.
func countWrongKeyMismatch(t *testing.T, orig *netlist.Circuit, l *Locked, keys int, r *rng.Stream) int {
	t.Helper()
	n := orig.NumInputs()
	corrupted := 0
	key := make([]bool, len(l.Key))
	for k := 0; k < keys; k++ {
		r.Bits(key)
		same := true
		for i := range key {
			if key[i] != l.Key[i] {
				same = false
				break
			}
		}
		if same {
			continue
		}
		diff := false
		in := make([]bool, n)
		for v := 0; v < 256 && !diff; v++ {
			r.Bits(in)
			want, _ := sim.Eval(orig, in, nil)
			got, _ := sim.Eval(l.Circuit, in, key)
			for j := range want {
				if want[j] != got[j] {
					diff = true
					break
				}
			}
		}
		if diff {
			corrupted++
		}
	}
	return corrupted
}

func TestRandomXOREquivalence(t *testing.T) {
	r := rng.New(1)
	for _, build := range []func() *netlist.Circuit{circuits.C17, circuits.FullAdder, circuits.Comparator4} {
		orig := build()
		l, err := RandomXOR(orig, 4, r)
		if err != nil {
			t.Fatal(err)
		}
		if l.Circuit.NumKeys() != 4 || len(l.Key) != 4 {
			t.Fatalf("key shape wrong: %d/%d", l.Circuit.NumKeys(), len(l.Key))
		}
		assertEquivalentUnderKey(t, orig, l)
	}
}

func TestRandomXORWrongKeyCorrupts(t *testing.T) {
	r := rng.New(2)
	orig := circuits.C17()
	l, err := RandomXOR(orig, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if got := countWrongKeyMismatch(t, orig, l, 20, r); got < 15 {
		t.Fatalf("only %d/20 wrong keys corrupted any output", got)
	}
}

func TestRandomXORTooManyKeyBits(t *testing.T) {
	r := rng.New(3)
	if _, err := RandomXOR(circuits.C17(), 1000, r); err == nil {
		t.Fatal("absurd key size accepted")
	}
}

func TestRandomXORDoesNotModifyOriginal(t *testing.T) {
	r := rng.New(4)
	orig := circuits.C17()
	nodes := orig.NumNodes()
	if _, err := RandomXOR(orig, 3, r); err != nil {
		t.Fatal(err)
	}
	if orig.NumNodes() != nodes || orig.NumKeys() != 0 {
		t.Fatal("original circuit was modified")
	}
}

func TestWeightedEquivalence(t *testing.T) {
	r := rng.New(5)
	orig := circuits.RippleAdder(4) // 9 inputs, 5 outputs
	l, err := Weighted(orig, WeightedOptions{KeyBits: 9, ControlWidth: 3, Rand: r})
	if err != nil {
		t.Fatal(err)
	}
	if l.Circuit.NumKeys() != 9 {
		t.Fatalf("keys = %d, want 9", l.Circuit.NumKeys())
	}
	assertEquivalentUnderKey(t, orig, l)
}

func TestWeightedHighActuation(t *testing.T) {
	// With NAND control gates of width 3, a random wrong key actuates
	// each key gate with probability 1 - 2^-3; nearly every wrong key
	// must corrupt outputs.
	r := rng.New(6)
	orig := circuits.RippleAdder(4)
	l, err := Weighted(orig, WeightedOptions{KeyBits: 9, ControlWidth: 3, Rand: r})
	if err != nil {
		t.Fatal(err)
	}
	if got := countWrongKeyMismatch(t, orig, l, 30, r); got < 27 {
		t.Fatalf("only %d/30 wrong keys corrupted outputs; weighted locking should actuate nearly always", got)
	}
}

func TestWeightedKeyGateCountDefault(t *testing.T) {
	r := rng.New(7)
	orig := circuits.RippleAdder(8)
	l, err := Weighted(orig, WeightedOptions{KeyBits: 12, ControlWidth: 3, Rand: r})
	if err != nil {
		t.Fatal(err)
	}
	// Default: 12/3 = 4 key gates, i.e. 4 XOR/XNOR named kg0_0..kg0_3.
	for g := 0; g < 4; g++ {
		if _, ok := l.Circuit.NodeByName(fmt.Sprintf("kg0_%d", g)); !ok {
			t.Fatalf("key gate kg0_%d missing", g)
		}
	}
	if _, ok := l.Circuit.NodeByName("kg0_4"); ok {
		t.Fatal("unexpected extra key gate kg0_4")
	}
}

func TestWeightedExplicitKeyGates(t *testing.T) {
	r := rng.New(8)
	orig := circuits.RippleAdder(4)
	l, err := Weighted(orig, WeightedOptions{KeyBits: 6, ControlWidth: 3, KeyGates: 6, Rand: r})
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalentUnderKey(t, orig, l)
}

func TestWeightedValidatesOptions(t *testing.T) {
	r := rng.New(9)
	orig := circuits.C17()
	cases := []WeightedOptions{
		{KeyBits: 0, ControlWidth: 3, Rand: r},
		{KeyBits: 6, ControlWidth: 0, Rand: r},
		{KeyBits: 2, ControlWidth: 3, Rand: r},
		{KeyBits: 6, ControlWidth: 3, Rand: nil},
	}
	for i, o := range cases {
		if _, err := Weighted(orig, o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestSARLockEquivalence(t *testing.T) {
	r := rng.New(10)
	orig := circuits.C17()
	l, err := SARLock(orig, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if l.Circuit.NumKeys() != orig.NumInputs() {
		t.Fatalf("keys = %d, want %d", l.Circuit.NumKeys(), orig.NumInputs())
	}
	assertEquivalentUnderKey(t, orig, l)
}

func TestSARLockSinglePointCorruption(t *testing.T) {
	// Under any wrong key k, SARLock corrupts exactly the input x = k.
	r := rng.New(11)
	orig := circuits.C17()
	l, err := SARLock(orig, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	wrong := append([]bool(nil), l.Key...)
	wrong[2] = !wrong[2]
	mismatches := 0
	var mismatchAt int
	for v := 0; v < 32; v++ {
		in := make([]bool, 5)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		want, _ := sim.Eval(orig, in, nil)
		got, _ := sim.Eval(l.Circuit, in, wrong)
		for j := range want {
			if want[j] != got[j] {
				mismatches++
				mismatchAt = v
				break
			}
		}
	}
	if mismatches != 1 {
		t.Fatalf("wrong key corrupted %d inputs, want exactly 1", mismatches)
	}
	// The corrupted input must equal the wrong key pattern.
	for i := range wrong {
		if wrong[i] != (mismatchAt>>uint(i)&1 == 1) {
			t.Fatalf("corruption at input %05b, want the wrong key pattern", mismatchAt)
		}
	}
}

func TestAntiSATEquivalence(t *testing.T) {
	r := rng.New(12)
	orig := circuits.C17()
	l, err := AntiSAT(orig, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if l.Circuit.NumKeys() != 2*orig.NumInputs() {
		t.Fatalf("keys = %d, want %d", l.Circuit.NumKeys(), 2*orig.NumInputs())
	}
	assertEquivalentUnderKey(t, orig, l)
}

func TestAntiSATEqualHalvesAlwaysCorrect(t *testing.T) {
	// Any key with K1 == K2 unlocks Anti-SAT (the classical equivalence
	// class), not just the stored one.
	r := rng.New(13)
	orig := circuits.C17()
	l, err := AntiSAT(orig, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	n := orig.NumInputs()
	alt := make([]bool, 2*n)
	for i := 0; i < n; i++ {
		alt[i] = !l.Key[i]
		alt[n+i] = !l.Key[n+i]
	}
	lAlt := &Locked{Circuit: l.Circuit, Key: alt}
	assertEquivalentUnderKey(t, orig, lAlt)
}

func TestAntiSATUnequalHalvesCorrupt(t *testing.T) {
	r := rng.New(14)
	orig := circuits.C17()
	l, err := AntiSAT(orig, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	n := orig.NumInputs()
	wrong := append([]bool(nil), l.Key...)
	wrong[0] = !wrong[0] // K1 != K2 now
	mismatches := 0
	for v := 0; v < 32; v++ {
		in := make([]bool, n)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		want, _ := sim.Eval(orig, in, nil)
		got, _ := sim.Eval(l.Circuit, in, wrong)
		for j := range want {
			if want[j] != got[j] {
				mismatches++
				break
			}
		}
	}
	if mismatches != 1 {
		t.Fatalf("unequal halves corrupted %d inputs, want exactly 1", mismatches)
	}
}

func TestFaultImpactScoresShape(t *testing.T) {
	r := rng.New(15)
	c := circuits.C17()
	scores, err := FaultImpactScores(c, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != c.NumNodes() {
		t.Fatalf("scores length %d != nodes %d", len(scores), c.NumNodes())
	}
	// Node G16 feeds both outputs; G10 only one. G16 must score at least
	// as high on the reachability component.
	g16, _ := c.NodeByName("G16")
	g10, _ := c.NodeByName("G10")
	if scores[g16] <= 0 || scores[g10] <= 0 {
		t.Fatal("live internal nodes should have positive scores")
	}
}
