// Package lock implements combinational logic-locking techniques:
//
//   - RandomXOR: EPIC-style random XOR/XNOR key-gate insertion, the
//     classical baseline every oracle-guided attack is evaluated on.
//   - Weighted: weighted logic locking (Karousos, Pexaras, Karybali,
//     Kalligeros, IOLTS'17), the fault-analysis-based, high-corruptibility
//     scheme the OraP paper pairs with its oracle protection.
//   - SARLock and AntiSAT: the classical SAT-resistant point-function
//     defenses, included as baselines for the attack-scaling studies.
//
// All techniques return the locked netlist together with the correct key;
// the locked circuit with the correct key applied is functionally
// equivalent to the original.
package lock

import (
	"fmt"

	"orap/internal/netlist"
	"orap/internal/rng"
)

// Locked bundles a locked circuit with its correct key.
//
// Key covers the key inputs the technique added, in order. When the input
// circuit was already locked (compound defenses), the new key inputs are
// numbered after the existing ones; use Stack to thread the full key.
type Locked struct {
	// Circuit is the locked netlist; its Keys list has one entry per key
	// bit, named keyinput0, keyinput1, ….
	Circuit *netlist.Circuit
	// Key is the correct key for the key inputs added by this technique.
	Key []bool
}

// Stack applies locking steps in sequence (inner defense first) and
// concatenates their keys, so compound defenses like "weighted locking
// plus SARLock" can be built and attacked as one circuit.
func Stack(c *netlist.Circuit, steps ...func(*netlist.Circuit) (*Locked, error)) (*Locked, error) {
	cur := c
	var key []bool
	for i, step := range steps {
		l, err := step(cur)
		if err != nil {
			return nil, fmt.Errorf("lock: stack step %d: %w", i, err)
		}
		cur = l.Circuit
		key = append(key, l.Key...)
	}
	if len(key) != cur.NumKeys() {
		return nil, fmt.Errorf("lock: stacked key width %d != circuit %d", len(key), cur.NumKeys())
	}
	return &Locked{Circuit: cur, Key: key}, nil
}

// replaceFanin rewires every consumer of old (gate fanins and primary
// outputs) to read from new instead, except for the consumers whose IDs
// are in keep (the freshly inserted key-gate logic that must still read
// the original signal).
func replaceFanin(c *netlist.Circuit, old, new int, keep map[int]bool) {
	for id := range c.Gates {
		if keep[id] {
			continue
		}
		fan := c.Gates[id].Fanin
		for i, f := range fan {
			if f == old {
				fan[i] = new
			}
		}
	}
	for i, o := range c.POs {
		if o == old {
			c.POs[i] = new
		}
	}
}

// lockableNodes returns candidate nodes for key-gate insertion: every
// logic gate and primary input that feeds something (constants and key
// inputs excluded).
func lockableNodes(c *netlist.Circuit) []int {
	fanout := c.FanoutLists()
	var nodes []int
	for id, g := range c.Gates {
		switch g.Type {
		case netlist.Const0, netlist.Const1:
			continue
		case netlist.Input:
			if c.IsKeyInput(id) {
				continue
			}
		}
		if len(fanout[id]) == 0 {
			// Only worth locking if observable: dead nodes skipped, but
			// primary outputs (no fanout, in POs) are fine.
			isPO := false
			for _, o := range c.POs {
				if o == id {
					isPO = true
					break
				}
			}
			if !isPO {
				continue
			}
		}
		nodes = append(nodes, id)
	}
	return nodes
}

// RandomXOR locks the circuit with keyBits random XOR/XNOR key gates, the
// EPIC-style baseline. Each key gate is inserted on a distinct random net;
// XOR gates want key bit 0, XNOR gates want key bit 1, chosen uniformly.
// The input circuit is not modified.
func RandomXOR(c *netlist.Circuit, keyBits int, r *rng.Stream) (*Locked, error) {
	if keyBits <= 0 {
		return nil, fmt.Errorf("lock: non-positive key size %d", keyBits)
	}
	lc := c.Clone()
	lc.Name = c.Name + "_rnd" + fmt.Sprint(keyBits)
	nodes := lockableNodes(lc)
	if len(nodes) < keyBits {
		return nil, fmt.Errorf("lock: circuit %q has only %d lockable nodes for %d key bits", c.Name, len(nodes), keyBits)
	}
	perm := r.Perm(len(nodes))
	key := make([]bool, keyBits)
	base := lc.NumKeys()
	for i := 0; i < keyBits; i++ {
		n := nodes[perm[i]]
		k, err := lc.AddKeyInput(fmt.Sprintf("keyinput%d", base+i))
		if err != nil {
			return nil, err
		}
		t := netlist.Xor
		if r.Bool() {
			t = netlist.Xnor
			key[i] = true
		}
		kg, err := lc.AddGate(t, fmt.Sprintf("kg%d", base+i), n, k)
		if err != nil {
			return nil, err
		}
		replaceFanin(lc, n, kg, map[int]bool{kg: true})
	}
	if err := lc.Validate(); err != nil {
		return nil, fmt.Errorf("lock: RandomXOR produced invalid circuit: %w", err)
	}
	return &Locked{Circuit: lc, Key: key}, nil
}
