package bench

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the .bench parser: it must either
// return an error or a circuit that validates and round-trips.
func FuzzParse(f *testing.F) {
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
	f.Add(c17)
	f.Add("INPUT(a)\nINPUT(keyinput0)\nOUTPUT(o)\no = XOR(a, keyinput0)\n")
	f.Add("q = DFF(d)\nINPUT(a)\nOUTPUT(y)\nd = AND(a, q)\ny = NOT(q)\n")
	f.Add("p cnf nonsense\n= ()\n")
	f.Add("INPUT(a)\nOUTPUT(a)\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src, "fuzz")
		if err != nil {
			return // rejection is fine; crashing is not
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid circuit: %v\ninput:\n%s", verr, src)
		}
		text, err := FormatString(c)
		if err != nil {
			t.Fatalf("accepted circuit failed to format: %v", err)
		}
		back, err := ParseString(text, "fuzz2")
		if err != nil {
			t.Fatalf("formatted output failed to reparse: %v\n%s", err, text)
		}
		if back.NumInputs() != c.NumInputs() || back.NumOutputs() != c.NumOutputs() ||
			back.GateCount() != c.GateCount() {
			t.Fatalf("round trip changed shape:\n%s\nvs\n%s", c.Summary(), back.Summary())
		}
	})
}

// FuzzDirectiveArg guards the low-level directive splitting.
func FuzzDirectiveArg(f *testing.F) {
	f.Add("INPUT(a)")
	f.Add("INPUT()")
	f.Add("INPUT(")
	f.Add("INPUT)a(")
	f.Fuzz(func(t *testing.T, line string) {
		if !strings.HasPrefix(strings.ToUpper(line), "INPUT") {
			return
		}
		// Must not panic regardless of shape.
		_, _ = directiveArg("fuzz", line, "INPUT", 1)
	})
}
