package bench_test

import (
	"testing"

	"orap/internal/bench"
	"orap/internal/circuits"
	"orap/internal/netlist"
)

// seedBench renders one of the shipped builder circuits to .bench text for
// use as a fuzz seed.
func seedBench(f *testing.F, c *netlist.Circuit) string {
	f.Helper()
	text, err := bench.FormatString(c)
	if err != nil {
		f.Fatalf("formatting seed circuit %q: %v", c.Name, err)
	}
	return text
}

// FuzzRoundTrip drives the reader/writer pair from the outside (the
// exported API only), seeded with every shipped benchmark circuit: any
// accepted input must validate, format, reparse, and reach a textual
// fixpoint — parse(format(c)) formats to the same bytes — with the
// input/key/output interface preserved exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(circuits.C17Bench)
	f.Add(seedBench(f, circuits.C17()))
	f.Add(seedBench(f, circuits.FullAdder()))
	f.Add(seedBench(f, circuits.RippleAdder(4)))
	f.Add(seedBench(f, circuits.Parity(5)))
	f.Add(seedBench(f, circuits.Comparator4()))
	f.Add(seedBench(f, circuits.Mux21()))
	f.Add("INPUT(a)\nINPUT(keyinput0)\nOUTPUT(o)\no = XNOR(a, keyinput0)\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := bench.ParseString(src, "fuzz")
		if err != nil {
			return // rejection is fine; crashing or accepting garbage is not
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid circuit: %v\ninput:\n%s", verr, src)
		}
		text, err := bench.FormatString(c)
		if err != nil {
			t.Fatalf("accepted circuit failed to format: %v", err)
		}
		// Same name both times: Format echoes it in the header comment.
		back, err := bench.ParseString(text, "fuzz")
		if err != nil {
			t.Fatalf("formatted output failed to reparse: %v\n%s", err, text)
		}
		if back.NumInputs() != c.NumInputs() || back.NumKeys() != c.NumKeys() ||
			back.NumOutputs() != c.NumOutputs() || back.GateCount() != c.GateCount() {
			t.Fatalf("round trip changed the interface:\n%s\nvs\n%s", c.Summary(), back.Summary())
		}
		again, err := bench.FormatString(back)
		if err != nil {
			t.Fatalf("reparsed circuit failed to format: %v", err)
		}
		if again != text {
			t.Fatalf("format is not a fixpoint after one round trip:\nfirst:\n%s\nsecond:\n%s", text, again)
		}
	})
}
