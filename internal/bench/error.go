package bench

import "fmt"

// ErrCode classifies parse failures so tools (internal/check, the cmd
// loaders) can map them to diagnostics without string matching.
type ErrCode uint8

// Parse error codes.
const (
	// ErrSyntax covers malformed lines: bad directives, missing '=',
	// invalid signal names, unbalanced parentheses.
	ErrSyntax ErrCode = iota
	// ErrUnknownOp is an assignment with an unrecognized gate operator.
	ErrUnknownOp
	// ErrDupDef is a signal assigned by two gate definitions.
	ErrDupDef
	// ErrMultiDriven is a signal driven more than once across kinds:
	// an INPUT that is also a gate output, or a repeated INPUT.
	ErrMultiDriven
	// ErrUndefined is a reference to a signal that is never defined.
	ErrUndefined
	// ErrCycle is a combinational cycle among the gate definitions.
	ErrCycle
	// ErrStructure covers netlist-level violations surfaced while
	// building the circuit (arity rules, validation failures).
	ErrStructure
	// ErrIO is a read failure from the underlying reader.
	ErrIO
)

var errCodeNames = [...]string{
	ErrSyntax:      "syntax",
	ErrUnknownOp:   "unknown-op",
	ErrDupDef:      "dup-def",
	ErrMultiDriven: "multi-driven",
	ErrUndefined:   "undefined",
	ErrCycle:       "cycle",
	ErrStructure:   "structure",
	ErrIO:          "io",
}

// String returns the short diagnostic name of the code.
func (c ErrCode) String() string {
	if int(c) < len(errCodeNames) {
		return errCodeNames[c]
	}
	return fmt.Sprintf("ErrCode(%d)", uint8(c))
}

// ParseError is a structured .bench parse failure: the file (the name
// passed to Parse), the 1-based source line, the offending token (a
// signal name, operator or raw line fragment, possibly empty), a
// machine-readable code and a human-readable message.
type ParseError struct {
	File  string
	Line  int
	Token string
	Code  ErrCode
	Msg   string
}

// Error implements the error interface: "file:line: message" with the
// line omitted when unknown (0).
func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.File, e.Msg)
}

// parseErrf builds a ParseError with a formatted message.
func parseErrf(file string, line int, code ErrCode, token, format string, args ...interface{}) *ParseError {
	return &ParseError{
		File:  file,
		Line:  line,
		Token: token,
		Code:  code,
		Msg:   fmt.Sprintf(format, args...),
	}
}
