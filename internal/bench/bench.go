// Package bench reads and writes circuits in the ISCAS/ITC ".bench" format.
//
// The format is line oriented:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G22)
//	G10 = NAND(G1, G3)
//
// Extensions honoured by this package, matching common logic-locking tool
// conventions:
//
//   - Input names beginning with "keyinput" (case-insensitive) are recorded
//     as key inputs of the resulting circuit, and key inputs are emitted
//     with such names by Format.
//   - "X = DFF(Y)" state elements are accepted and converted to the
//     combinational part: X becomes a pseudo primary input and Y a pseudo
//     primary output, which is the standard extraction used by the paper
//     ("the combinational part of the largest ISCAS'89 and ITC'99
//     benchmark circuits").
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"orap/internal/netlist"
)

// KeyInputPrefix marks input names that carry key bits.
const KeyInputPrefix = "keyinput"

type rawGate struct {
	name  string
	op    string
	fanin []string
	line  int
}

// rawSignal is a declared INPUT or OUTPUT name with its source line.
type rawSignal struct {
	name string
	line int
}

// Parse reads a .bench description and builds the combinational circuit.
// Failures are reported as *ParseError with the source line, offending
// token and a machine-readable code. Each node of the returned circuit
// records the .bench line it was defined on (netlist.Circuit.SrcLine).
func Parse(r io.Reader, name string) (*netlist.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)

	var (
		inputs   []rawSignal
		outputs  []rawSignal
		gates    []rawGate
		dffIn    []rawSignal // D pins: become pseudo outputs
		dffOut   []rawSignal // Q pins: become pseudo inputs
		lineno   int
		declared = make(map[string]int) // gate LHS name -> defining line
	)

	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case matchDirective(line, "INPUT"):
			arg, err := directiveArg(name, line, "INPUT", lineno)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, rawSignal{arg, lineno})
		case matchDirective(line, "OUTPUT"):
			arg, err := directiveArg(name, line, "OUTPUT", lineno)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, rawSignal{arg, lineno})
		default:
			g, err := parseAssignment(name, line, lineno)
			if err != nil {
				return nil, err
			}
			if g.op == "DFF" {
				if len(g.fanin) != 1 {
					return nil, parseErrf(name, lineno, ErrStructure, g.name,
						"DFF %q needs exactly one fanin", g.name)
				}
				dffOut = append(dffOut, rawSignal{g.name, lineno})
				dffIn = append(dffIn, rawSignal{g.fanin[0], lineno})
				continue
			}
			if prev, ok := declared[g.name]; ok {
				return nil, parseErrf(name, lineno, ErrDupDef, g.name,
					"signal %q defined twice (first definition on line %d)", g.name, prev)
			}
			declared[g.name] = lineno
			gates = append(gates, g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, parseErrf(name, 0, ErrIO, "", "read: %v", err)
	}

	c := netlist.New(name)
	// Declare inputs (functional, then DFF pseudo-inputs), detecting keys.
	for _, in := range inputs {
		var (
			id  int
			err error
		)
		if strings.HasPrefix(strings.ToLower(in.name), KeyInputPrefix) {
			id, err = c.AddKeyInput(in.name)
		} else {
			id, err = c.AddInput(in.name)
		}
		if err != nil {
			return nil, parseErrf(name, in.line, ErrMultiDriven, in.name,
				"input %q declared twice", in.name)
		}
		c.SetSrcLine(id, in.line)
	}
	for _, q := range dffOut {
		id, err := c.AddInput(q.name)
		if err != nil {
			return nil, parseErrf(name, q.line, ErrMultiDriven, q.name,
				"state element %q collides with an earlier declaration", q.name)
		}
		c.SetSrcLine(id, q.line)
	}

	// Build gates iteratively: repeatedly add gates whose fanins exist.
	// .bench files commonly list gates in arbitrary order.
	pending := gates
	for len(pending) > 0 {
		progress := false
		var next []rawGate
		for _, g := range pending {
			ready := true
			for _, f := range g.fanin {
				if _, ok := c.NodeByName(f); !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, g)
				continue
			}
			if err := addGate(c, name, g); err != nil {
				return nil, err
			}
			progress = true
		}
		if !progress {
			return nil, unresolvedError(c, name, next)
		}
		pending = next
	}

	// Declare outputs (functional, then DFF pseudo-outputs).
	for _, out := range append(append([]rawSignal(nil), outputs...), dffIn...) {
		id, ok := c.NodeByName(out.name)
		if !ok {
			return nil, parseErrf(name, out.line, ErrUndefined, out.name,
				"output %q is never defined", out.name)
		}
		if err := c.MarkOutput(id); err != nil {
			return nil, parseErrf(name, out.line, ErrStructure, out.name, "%v", err)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, parseErrf(name, 0, ErrStructure, "", "%v", err)
	}
	return c, nil
}

// unresolvedError classifies a stuck gate-resolution pass: fanin names
// that no pending gate defines are undefined signals; if every missing
// name is itself a pending definition, the definitions form a
// combinational cycle, which is reported with the actual cycle path.
func unresolvedError(c *netlist.Circuit, file string, pending []rawGate) *ParseError {
	byName := make(map[string]*rawGate, len(pending))
	for i := range pending {
		byName[pending[i].name] = &pending[i]
	}
	var undefined []string
	seenUndef := make(map[string]bool)
	firstLine := 0
	for _, g := range pending {
		for _, f := range g.fanin {
			if _, ok := c.NodeByName(f); ok {
				continue
			}
			if _, ok := byName[f]; ok {
				continue // defined later or on the cycle
			}
			if !seenUndef[f] {
				seenUndef[f] = true
				undefined = append(undefined, f)
				if firstLine == 0 || g.line < firstLine {
					firstLine = g.line
				}
			}
		}
	}
	if len(undefined) > 0 {
		sort.Strings(undefined)
		return parseErrf(file, firstLine, ErrUndefined, undefined[0],
			"undefined signals: %s", strings.Join(undefined, ", "))
	}
	// Every missing fanin is itself pending: find one cycle by walking
	// unresolved fanin edges until a gate repeats.
	g := &pending[0]
	pos := map[string]int{}
	var path []string
	for {
		if at, ok := pos[g.name]; ok {
			cyc := path[at:]
			return parseErrf(file, g.line, ErrCycle, g.name,
				"combinational cycle: %s -> %s", strings.Join(cyc, " -> "), cyc[0])
		}
		pos[g.name] = len(path)
		path = append(path, g.name)
		advanced := false
		for _, f := range g.fanin {
			if nextG, ok := byName[f]; ok {
				if _, resolved := c.NodeByName(f); !resolved {
					g = nextG
					advanced = true
					break
				}
			}
		}
		if !advanced {
			// Cannot happen: a pending gate always has an unresolved,
			// pending fanin at this point. Fail defensively.
			return parseErrf(file, g.line, ErrCycle, g.name,
				"unresolvable signal %q", g.name)
		}
	}
}

// ParseString is Parse over an in-memory description.
func ParseString(s, name string) (*netlist.Circuit, error) {
	return Parse(strings.NewReader(s), name)
}

func matchDirective(line, dir string) bool {
	u := strings.ToUpper(line)
	return strings.HasPrefix(u, dir+"(") || strings.HasPrefix(u, dir+" ")
}

// validName reports whether a signal name can be emitted and reparsed
// unambiguously: no bench syntax characters, and not a directive keyword.
func validName(name string) bool {
	if name == "" {
		return false
	}
	if strings.ContainsAny(name, " \t(),=#") {
		return false
	}
	switch strings.ToUpper(name) {
	case "INPUT", "OUTPUT":
		return false
	}
	return true
}

func directiveArg(file, line, dir string, lineno int) (string, error) {
	open := strings.IndexByte(line, '(')
	close := strings.LastIndexByte(line, ')')
	if open < 0 || close < open {
		return "", parseErrf(file, lineno, ErrSyntax, line, "malformed %s directive %q", dir, line)
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if !validName(arg) {
		return "", parseErrf(file, lineno, ErrSyntax, arg, "invalid signal name %q in %s directive", arg, dir)
	}
	return arg, nil
}

func parseAssignment(file, line string, lineno int) (rawGate, error) {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return rawGate{}, parseErrf(file, lineno, ErrSyntax, line, "expected assignment, got %q", line)
	}
	name := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	close := strings.LastIndexByte(rhs, ')')
	if open < 0 || close < open {
		return rawGate{}, parseErrf(file, lineno, ErrSyntax, rhs, "malformed gate expression %q", rhs)
	}
	op := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	var fanin []string
	for _, part := range strings.Split(rhs[open+1:close], ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			fanin = append(fanin, part)
		}
	}
	if !validName(name) || op == "" {
		return rawGate{}, parseErrf(file, lineno, ErrSyntax, name, "malformed assignment %q", line)
	}
	for _, f := range fanin {
		if !validName(f) {
			return rawGate{}, parseErrf(file, lineno, ErrSyntax, f, "invalid fanin name %q", f)
		}
	}
	return rawGate{name: name, op: op, fanin: fanin, line: lineno}, nil
}

var opToType = map[string]netlist.GateType{
	"AND":  netlist.And,
	"NAND": netlist.Nand,
	"OR":   netlist.Or,
	"NOR":  netlist.Nor,
	"XOR":  netlist.Xor,
	"XNOR": netlist.Xnor,
	"NOT":  netlist.Not,
	"INV":  netlist.Not,
	"BUF":  netlist.Buf,
	"BUFF": netlist.Buf,
}

func addGate(c *netlist.Circuit, file string, g rawGate) error {
	if _, exists := c.NodeByName(g.name); exists {
		return parseErrf(file, g.line, ErrMultiDriven, g.name,
			"signal %q is already driven by an input or state element", g.name)
	}
	t, ok := opToType[g.op]
	if !ok {
		switch g.op {
		case "CONST0", "GND":
			id, err := c.AddConst(false, g.name)
			if err != nil {
				return parseErrf(file, g.line, ErrStructure, g.name, "%v", err)
			}
			c.SetSrcLine(id, g.line)
			return nil
		case "CONST1", "VDD":
			id, err := c.AddConst(true, g.name)
			if err != nil {
				return parseErrf(file, g.line, ErrStructure, g.name, "%v", err)
			}
			c.SetSrcLine(id, g.line)
			return nil
		}
		return parseErrf(file, g.line, ErrUnknownOp, g.op, "unknown operator %q", g.op)
	}
	ids := make([]int, len(g.fanin))
	for i, f := range g.fanin {
		id, ok := c.NodeByName(f)
		if !ok {
			return parseErrf(file, g.line, ErrUndefined, f,
				"gate %q references undefined signal %q", g.name, f)
		}
		ids[i] = id
	}
	// Tolerate single-input AND/OR/etc. (some generators emit them) by
	// lowering to BUF, and single-input NAND/NOR/XNOR to NOT.
	if len(ids) == 1 && t != netlist.Buf && t != netlist.Not {
		if t.Inverting() {
			t = netlist.Not
		} else {
			t = netlist.Buf
		}
	}
	id, err := c.AddGate(t, g.name, ids...)
	if err != nil {
		return parseErrf(file, g.line, ErrStructure, g.name, "%v", err)
	}
	c.SetSrcLine(id, g.line)
	return nil
}

// Format writes the circuit in .bench syntax. Key inputs are emitted before
// regular inputs only if they were declared first; declaration order is
// preserved. Unnamed nodes — and nodes whose names would be ambiguous in
// bench syntax (directive keywords, delimiter characters) — receive
// synthetic names, applied consistently across declarations and fanins.
func Format(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	nameOf := func(id int) string {
		if n := c.NameOf(id); validName(n) {
			return n
		}
		return fmt.Sprintf("n%d_", id)
	}
	fmt.Fprintf(bw, "# %s\n", c.Name)
	fmt.Fprintf(bw, "# %d inputs, %d key inputs, %d outputs, %d gates\n",
		c.NumInputs(), c.NumKeys(), c.NumOutputs(), c.GateCount())
	for _, id := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", nameOf(id))
	}
	for _, id := range c.Keys {
		fmt.Fprintf(bw, "INPUT(%s)\n", nameOf(id))
	}
	for _, id := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", nameOf(id))
	}
	order, err := c.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		g := c.Gates[id]
		switch g.Type {
		case netlist.Input:
			continue
		case netlist.Const0:
			fmt.Fprintf(bw, "%s = CONST0()\n", nameOf(id))
			continue
		case netlist.Const1:
			fmt.Fprintf(bw, "%s = CONST1()\n", nameOf(id))
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = nameOf(f)
		}
		op := strings.ToUpper(g.Type.String())
		fmt.Fprintf(bw, "%s = %s(%s)\n", nameOf(id), op, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// FormatString renders the circuit to a .bench string.
func FormatString(c *netlist.Circuit) (string, error) {
	var b strings.Builder
	if err := Format(&b, c); err != nil {
		return "", err
	}
	return b.String(), nil
}
