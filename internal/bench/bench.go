// Package bench reads and writes circuits in the ISCAS/ITC ".bench" format.
//
// The format is line oriented:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G22)
//	G10 = NAND(G1, G3)
//
// Extensions honoured by this package, matching common logic-locking tool
// conventions:
//
//   - Input names beginning with "keyinput" (case-insensitive) are recorded
//     as key inputs of the resulting circuit, and key inputs are emitted
//     with such names by Format.
//   - "X = DFF(Y)" state elements are accepted and converted to the
//     combinational part: X becomes a pseudo primary input and Y a pseudo
//     primary output, which is the standard extraction used by the paper
//     ("the combinational part of the largest ISCAS'89 and ITC'99
//     benchmark circuits").
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"orap/internal/netlist"
)

// KeyInputPrefix marks input names that carry key bits.
const KeyInputPrefix = "keyinput"

type rawGate struct {
	name  string
	op    string
	fanin []string
	line  int
}

// Parse reads a .bench description and builds the combinational circuit.
func Parse(r io.Reader, name string) (*netlist.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)

	var (
		inputs   []string
		outputs  []string
		gates    []rawGate
		dffIn    []string // D pins: become pseudo outputs
		dffOut   []string // Q pins: become pseudo inputs
		lineno   int
		declared = make(map[string]bool)
	)

	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case matchDirective(line, "INPUT"):
			arg, err := directiveArg(line, "INPUT", lineno)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, arg)
		case matchDirective(line, "OUTPUT"):
			arg, err := directiveArg(line, "OUTPUT", lineno)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, arg)
		default:
			g, err := parseAssignment(line, lineno)
			if err != nil {
				return nil, err
			}
			if g.op == "DFF" {
				if len(g.fanin) != 1 {
					return nil, fmt.Errorf("bench:%d: DFF %q needs exactly one fanin", lineno, g.name)
				}
				dffOut = append(dffOut, g.name)
				dffIn = append(dffIn, g.fanin[0])
				continue
			}
			if declared[g.name] {
				return nil, fmt.Errorf("bench:%d: signal %q defined twice", lineno, g.name)
			}
			declared[g.name] = true
			gates = append(gates, g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: read: %w", err)
	}

	c := netlist.New(name)
	// Declare inputs (functional, then DFF pseudo-inputs), detecting keys.
	for _, in := range inputs {
		var err error
		if strings.HasPrefix(strings.ToLower(in), KeyInputPrefix) {
			_, err = c.AddKeyInput(in)
		} else {
			_, err = c.AddInput(in)
		}
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
	}
	for _, q := range dffOut {
		if _, err := c.AddInput(q); err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
	}

	// Build gates iteratively: repeatedly add gates whose fanins exist.
	// .bench files commonly list gates in arbitrary order.
	pending := gates
	for len(pending) > 0 {
		progress := false
		var next []rawGate
		for _, g := range pending {
			ready := true
			for _, f := range g.fanin {
				if _, ok := c.NodeByName(f); !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, g)
				continue
			}
			if err := addGate(c, g); err != nil {
				return nil, err
			}
			progress = true
		}
		if !progress {
			missing := map[string]bool{}
			for _, g := range next {
				for _, f := range g.fanin {
					if _, ok := c.NodeByName(f); !ok {
						missing[f] = true
					}
				}
			}
			names := make([]string, 0, len(missing))
			for n := range missing {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("bench: undefined or cyclic signals: %s", strings.Join(names, ", "))
		}
		pending = next
	}

	// Declare outputs (functional, then DFF pseudo-outputs).
	for _, out := range append(append([]string(nil), outputs...), dffIn...) {
		id, ok := c.NodeByName(out)
		if !ok {
			return nil, fmt.Errorf("bench: output %q is never defined", out)
		}
		if err := c.MarkOutput(id); err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseString is Parse over an in-memory description.
func ParseString(s, name string) (*netlist.Circuit, error) {
	return Parse(strings.NewReader(s), name)
}

func matchDirective(line, dir string) bool {
	u := strings.ToUpper(line)
	return strings.HasPrefix(u, dir+"(") || strings.HasPrefix(u, dir+" ")
}

// validName reports whether a signal name can be emitted and reparsed
// unambiguously: no bench syntax characters, and not a directive keyword.
func validName(name string) bool {
	if name == "" {
		return false
	}
	if strings.ContainsAny(name, " \t(),=#") {
		return false
	}
	switch strings.ToUpper(name) {
	case "INPUT", "OUTPUT":
		return false
	}
	return true
}

func directiveArg(line, dir string, lineno int) (string, error) {
	open := strings.IndexByte(line, '(')
	close := strings.LastIndexByte(line, ')')
	if open < 0 || close < open {
		return "", fmt.Errorf("bench:%d: malformed %s directive %q", lineno, dir, line)
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if !validName(arg) {
		return "", fmt.Errorf("bench:%d: invalid signal name %q in %s directive", lineno, arg, dir)
	}
	return arg, nil
}

func parseAssignment(line string, lineno int) (rawGate, error) {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return rawGate{}, fmt.Errorf("bench:%d: expected assignment, got %q", lineno, line)
	}
	name := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	close := strings.LastIndexByte(rhs, ')')
	if open < 0 || close < open {
		return rawGate{}, fmt.Errorf("bench:%d: malformed gate expression %q", lineno, rhs)
	}
	op := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	var fanin []string
	for _, part := range strings.Split(rhs[open+1:close], ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			fanin = append(fanin, part)
		}
	}
	if !validName(name) || op == "" {
		return rawGate{}, fmt.Errorf("bench:%d: malformed assignment %q", lineno, line)
	}
	for _, f := range fanin {
		if !validName(f) {
			return rawGate{}, fmt.Errorf("bench:%d: invalid fanin name %q", lineno, f)
		}
	}
	return rawGate{name: name, op: op, fanin: fanin, line: lineno}, nil
}

var opToType = map[string]netlist.GateType{
	"AND":  netlist.And,
	"NAND": netlist.Nand,
	"OR":   netlist.Or,
	"NOR":  netlist.Nor,
	"XOR":  netlist.Xor,
	"XNOR": netlist.Xnor,
	"NOT":  netlist.Not,
	"INV":  netlist.Not,
	"BUF":  netlist.Buf,
	"BUFF": netlist.Buf,
}

func addGate(c *netlist.Circuit, g rawGate) error {
	t, ok := opToType[g.op]
	if !ok {
		switch g.op {
		case "CONST0", "GND":
			_, err := c.AddConst(false, g.name)
			return err
		case "CONST1", "VDD":
			_, err := c.AddConst(true, g.name)
			return err
		}
		return fmt.Errorf("bench:%d: unknown operator %q", g.line, g.op)
	}
	ids := make([]int, len(g.fanin))
	for i, f := range g.fanin {
		id, ok := c.NodeByName(f)
		if !ok {
			return fmt.Errorf("bench:%d: gate %q references undefined signal %q", g.line, g.name, f)
		}
		ids[i] = id
	}
	// Tolerate single-input AND/OR/etc. (some generators emit them) by
	// lowering to BUF, and single-input NAND/NOR/XNOR to NOT.
	if len(ids) == 1 && t != netlist.Buf && t != netlist.Not {
		if t.Inverting() {
			t = netlist.Not
		} else {
			t = netlist.Buf
		}
	}
	_, err := c.AddGate(t, g.name, ids...)
	if err != nil {
		return fmt.Errorf("bench:%d: %w", g.line, err)
	}
	return nil
}

// Format writes the circuit in .bench syntax. Key inputs are emitted before
// regular inputs only if they were declared first; declaration order is
// preserved. Unnamed nodes — and nodes whose names would be ambiguous in
// bench syntax (directive keywords, delimiter characters) — receive
// synthetic names, applied consistently across declarations and fanins.
func Format(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	nameOf := func(id int) string {
		if n := c.NameOf(id); validName(n) {
			return n
		}
		return fmt.Sprintf("n%d_", id)
	}
	fmt.Fprintf(bw, "# %s\n", c.Name)
	fmt.Fprintf(bw, "# %d inputs, %d key inputs, %d outputs, %d gates\n",
		c.NumInputs(), c.NumKeys(), c.NumOutputs(), c.GateCount())
	for _, id := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", nameOf(id))
	}
	for _, id := range c.Keys {
		fmt.Fprintf(bw, "INPUT(%s)\n", nameOf(id))
	}
	for _, id := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", nameOf(id))
	}
	order, err := c.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		g := c.Gates[id]
		switch g.Type {
		case netlist.Input:
			continue
		case netlist.Const0:
			fmt.Fprintf(bw, "%s = CONST0()\n", nameOf(id))
			continue
		case netlist.Const1:
			fmt.Fprintf(bw, "%s = CONST1()\n", nameOf(id))
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = nameOf(f)
		}
		op := strings.ToUpper(g.Type.String())
		fmt.Fprintf(bw, "%s = %s(%s)\n", nameOf(id), op, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// FormatString renders the circuit to a .bench string.
func FormatString(c *netlist.Circuit) (string, error) {
	var b strings.Builder
	if err := Format(&b, c); err != nil {
		return "", err
	}
	return b.String(), nil
}
