package bench

import (
	"strings"
	"testing"

	"orap/internal/netlist"
)

const c17 = `# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func TestParseC17(t *testing.T) {
	c, err := ParseString(c17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 5 || c.NumOutputs() != 2 || c.NumKeys() != 0 {
		t.Fatalf("bad shape: %d/%d/%d", c.NumInputs(), c.NumKeys(), c.NumOutputs())
	}
	if got := c.GateCount(); got != 6 {
		t.Fatalf("gate count = %d, want 6", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseDetectsKeyInputs(t *testing.T) {
	src := `INPUT(a)
INPUT(keyinput0)
INPUT(KEYINPUT1)
OUTPUT(o)
t = XOR(a, keyinput0)
o = XNOR(t, KEYINPUT1)
`
	c, err := ParseString(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumKeys() != 2 {
		t.Fatalf("key inputs = %d, want 2", c.NumKeys())
	}
	if c.NumInputs() != 1 {
		t.Fatalf("primary inputs = %d, want 1", c.NumInputs())
	}
}

func TestParseOutOfOrderGates(t *testing.T) {
	src := `INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(t1, t2)
t2 = OR(a, b)
t1 = NAND(a, b)
`
	c, err := ParseString(src, "ooo")
	if err != nil {
		t.Fatal(err)
	}
	if c.GateCount() != 3 {
		t.Fatalf("gate count = %d, want 3", c.GateCount())
	}
}

func TestParseDFFSplitsCombinationalPart(t *testing.T) {
	src := `INPUT(a)
OUTPUT(y)
q = DFF(d)
d = AND(a, q)
y = NOT(q)
`
	c, err := ParseString(src, "seq")
	if err != nil {
		t.Fatal(err)
	}
	// q becomes a pseudo input, d a pseudo output.
	if c.NumInputs() != 2 {
		t.Fatalf("inputs = %d, want 2 (a + pseudo q)", c.NumInputs())
	}
	if c.NumOutputs() != 2 {
		t.Fatalf("outputs = %d, want 2 (y + pseudo d)", c.NumOutputs())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"undefined signal":   "INPUT(a)\nOUTPUT(y)\ny = AND(a, nope)\n",
		"double definition":  "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n",
		"unknown op":         "INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n",
		"malformed line":     "INPUT(a)\nOUTPUT(y)\nthis is not bench\n",
		"undefined output":   "INPUT(a)\nOUTPUT(nope)\ny = NOT(a)\n",
		"combinational loop": "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = OR(a, x)\n",
	}
	for name, src := range cases {
		if _, err := ParseString(src, name); err == nil {
			t.Errorf("%s: parse accepted invalid input", name)
		}
	}
}

func TestSingleInputGateLowering(t *testing.T) {
	src := `INPUT(a)
OUTPUT(y)
t = AND(a)
y = NAND(t)
`
	c, err := ParseString(src, "lower")
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := c.NodeByName("t")
	yn, _ := c.NodeByName("y")
	if c.Gates[tn].Type != netlist.Buf {
		t.Fatalf("AND(a) lowered to %v, want BUF", c.Gates[tn].Type)
	}
	if c.Gates[yn].Type != netlist.Not {
		t.Fatalf("NAND(t) lowered to %v, want NOT", c.Gates[yn].Type)
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := ParseString(c17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	text, err := FormatString(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(text, "c17")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if back.NumInputs() != orig.NumInputs() || back.NumOutputs() != orig.NumOutputs() ||
		back.GateCount() != orig.GateCount() {
		t.Fatalf("round trip changed shape: %s vs %s", back.Summary(), orig.Summary())
	}
}

func TestRoundTripPreservesKeyInputs(t *testing.T) {
	c := netlist.New("k")
	a, _ := c.AddInput("a")
	k, _ := c.AddKeyInput("keyinput0")
	g := c.MustAddGate(netlist.Xor, "y", a, k)
	c.MarkOutput(g)
	text, err := FormatString(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(text, "k")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumKeys() != 1 {
		t.Fatalf("key inputs lost in round trip:\n%s", text)
	}
}

func TestFormatConstants(t *testing.T) {
	c := netlist.New("const")
	a, _ := c.AddInput("a")
	one, _ := c.AddConst(true, "one")
	g := c.MustAddGate(netlist.And, "y", a, one)
	c.MarkOutput(g)
	text, err := FormatString(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "CONST1") {
		t.Fatalf("constant missing from output:\n%s", text)
	}
	back, err := ParseString(text, "const")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != c.NumNodes() {
		t.Fatalf("round trip changed node count %d -> %d", c.NumNodes(), back.NumNodes())
	}
}

func TestParseWhitespaceAndComments(t *testing.T) {
	src := "\n# leading comment\n  INPUT( a )\n\nOUTPUT( y )\n# mid comment\n y  =  NOT( a )\n"
	c, err := ParseString(src, "ws")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 1 || c.NumOutputs() != 1 {
		t.Fatal("whitespace handling broken")
	}
}

// TestParseErrorStructure checks that parse failures carry the source
// line, offending token and machine-readable code.
func TestParseErrorStructure(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		code  ErrCode
		line  int
		token string
	}{
		{"undefined", "INPUT(a)\nOUTPUT(y)\ny = AND(a, nope)\n", ErrUndefined, 3, "nope"},
		{"dup-def", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n", ErrDupDef, 4, "y"},
		{"multi-driven", "INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", ErrMultiDriven, 2, "a"},
		{"input-redriven", "INPUT(a)\nOUTPUT(y)\na = NOT(y)\ny = BUF(a)\n", ErrMultiDriven, 3, "a"},
		{"unknown-op", "INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n", ErrUnknownOp, 3, "MAJ"},
		{"syntax", "INPUT(a)\nnot bench at all\n", ErrSyntax, 2, ""},
		{"cycle", "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = OR(a, x)\n", ErrCycle, 0, ""},
		{"undefined-output", "INPUT(a)\nOUTPUT(nope)\ny = NOT(a)\n", ErrUndefined, 2, "nope"},
	}
	for _, tc := range cases {
		_, err := ParseString(tc.src, tc.name)
		if err == nil {
			t.Errorf("%s: parse accepted invalid input", tc.name)
			continue
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Errorf("%s: error is %T, want *ParseError (%v)", tc.name, err, err)
			continue
		}
		if pe.Code != tc.code {
			t.Errorf("%s: code = %v, want %v (%v)", tc.name, pe.Code, tc.code, pe)
		}
		if tc.line > 0 && pe.Line != tc.line {
			t.Errorf("%s: line = %d, want %d (%v)", tc.name, pe.Line, tc.line, pe)
		}
		if tc.token != "" && pe.Token != tc.token {
			t.Errorf("%s: token = %q, want %q (%v)", tc.name, pe.Token, tc.token, pe)
		}
		if pe.File != tc.name {
			t.Errorf("%s: file = %q, want %q", tc.name, pe.File, tc.name)
		}
	}
}

// TestParseCyclePath checks the cycle error prints the actual loop.
func TestParseCyclePath(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = OR(a, z)\nz = NOT(x)\n"
	_, err := ParseString(src, "loop")
	if err == nil {
		t.Fatal("parse accepted a cyclic netlist")
	}
	pe, ok := err.(*ParseError)
	if !ok || pe.Code != ErrCycle {
		t.Fatalf("got %v, want an ErrCycle ParseError", err)
	}
	for _, name := range []string{"x", "y", "z"} {
		if !strings.Contains(pe.Msg, name) {
			t.Fatalf("cycle message %q does not name signal %s", pe.Msg, name)
		}
	}
}

// TestParseRecordsSourceLines checks per-node line numbers land on the
// parsed circuit for check diagnostics.
func TestParseRecordsSourceLines(t *testing.T) {
	src := "# comment\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\n\nmid = AND(a, b)\ny = NOT(mid)\n"
	c, err := ParseString(src, "lines")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"a": 2, "b": 3, "mid": 6, "y": 7}
	for name, line := range want {
		id, ok := c.NodeByName(name)
		if !ok {
			t.Fatalf("node %s missing", name)
		}
		if got := c.SrcLine(id); got != line {
			t.Errorf("SrcLine(%s) = %d, want %d", name, got, line)
		}
	}
}
