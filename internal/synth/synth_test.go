package synth

import (
	"testing"

	"orap/internal/circuits"
	"orap/internal/lock"
	"orap/internal/rng"
)

func TestOptimizeC17(t *testing.T) {
	m, err := Optimize(circuits.C17())
	if err != nil {
		t.Fatal(err)
	}
	if m.Area <= 0 || m.Area > 12 {
		t.Fatalf("c17 optimized area = %d, implausible", m.Area)
	}
	if m.Delay <= 0 || m.Delay > 8 {
		t.Fatalf("c17 optimized delay = %d, implausible", m.Delay)
	}
}

func TestOverheadZeroForIdenticalCircuits(t *testing.T) {
	c := circuits.RippleAdder(8)
	ov, err := Compare(c, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ov.AreaPercent() != 0 || ov.DelayPercent() != 0 {
		t.Fatalf("identical circuits show overhead: %.2f%% / %.2f%%", ov.AreaPercent(), ov.DelayPercent())
	}
}

func TestOverheadPositiveForLockedCircuit(t *testing.T) {
	orig := circuits.RippleAdder(8)
	l, err := lock.Weighted(orig, lock.WeightedOptions{KeyBits: 9, ControlWidth: 3, Rand: rng.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := Compare(orig, l.Circuit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ov.AreaPercent() <= 0 {
		t.Fatalf("locked circuit shows no area overhead: %.2f%%", ov.AreaPercent())
	}
}

func TestExtraGatesCharged(t *testing.T) {
	c := circuits.RippleAdder(8)
	ov, err := Compare(c, c, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ov.AreaPercent() <= 0 {
		t.Fatal("extra register gates not charged to the area overhead")
	}
}

func TestDelayPercentClampedAtZero(t *testing.T) {
	// If optimization makes the "protected" circuit shallower, report 0%
	// as the paper does, not a negative overhead.
	ov := Overhead{
		Original:  Metrics{Area: 100, Delay: 20},
		Protected: Metrics{Area: 100, Delay: 18},
	}
	if ov.DelayPercent() != 0 {
		t.Fatalf("DelayPercent = %v, want 0", ov.DelayPercent())
	}
}

func TestOptimizationRemovesRedundancy(t *testing.T) {
	// Optimize must see through duplicate logic: the same adder described
	// twice and ANDed output-wise is no bigger than described once plus
	// the combining gates.
	a := circuits.RippleAdder(4)
	single, err := Optimize(a)
	if err != nil {
		t.Fatal(err)
	}
	// Lock with 0-effect: cloning should not change metrics.
	clone, err := Optimize(a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if single != clone {
		t.Fatal("Optimize is not deterministic across clones")
	}
}
