// Package synth estimates post-resynthesis area and delay, reproducing
// the paper's Table I methodology: both the original and the protected
// circuit are normalized through the same optimization pipeline (ABC's
// strash → refactor → rewrite in the paper, the aig package's strash +
// local rules + balancing here), then area is compared as gate count and
// delay as logic levels.
package synth

import (
	"fmt"

	"orap/internal/aig"
	"orap/internal/netlist"
)

// Metrics holds post-synthesis area and delay for one circuit.
type Metrics struct {
	// Area is the optimized AND-node count (the gate-count analogue,
	// inverters free as in the paper's "gates without inverters").
	Area int
	// Delay is the optimized logic depth in levels.
	Delay int
}

// Optimize normalizes a circuit and returns its metrics: strash during
// AIG construction, then the explicit rewrite pass.
func Optimize(c *netlist.Circuit) (Metrics, error) {
	g, err := aig.FromCircuit(c)
	if err != nil {
		return Metrics{}, err
	}
	g = g.Rewrite()
	area, delay := g.CountUsed()
	return Metrics{Area: area, Delay: delay}, nil
}

// Overhead compares a protected circuit against its original, adding
// extraGates (e.g. the OraP register's pulse generators and XORs) to the
// protected area, as the paper's accounting does.
type Overhead struct {
	Original  Metrics
	Protected Metrics
	// ExtraGates is the fixed gate-equivalent count added outside the
	// combinational netlist (OraP register hardware).
	ExtraGates int
}

// AreaPercent returns the area overhead in percent.
func (o Overhead) AreaPercent() float64 {
	if o.Original.Area == 0 {
		return 0
	}
	return 100 * float64(o.Protected.Area+o.ExtraGates-o.Original.Area) / float64(o.Original.Area)
}

// DelayPercent returns the delay overhead in percent (0 when the
// protected depth does not exceed the original — "no key gates have been
// inserted in a circuit's critical path(s)").
func (o Overhead) DelayPercent() float64 {
	if o.Original.Delay == 0 {
		return 0
	}
	d := 100 * float64(o.Protected.Delay-o.Original.Delay) / float64(o.Original.Delay)
	if d < 0 {
		return 0
	}
	return d
}

// Compare optimizes both circuits and assembles the overhead report.
func Compare(original, protected *netlist.Circuit, extraGates int) (Overhead, error) {
	om, err := Optimize(original)
	if err != nil {
		return Overhead{}, fmt.Errorf("synth: original: %w", err)
	}
	pm, err := Optimize(protected)
	if err != nil {
		return Overhead{}, fmt.Errorf("synth: protected: %w", err)
	}
	return Overhead{Original: om, Protected: pm, ExtraGates: extraGates}, nil
}
