package trojan

import (
	"testing"

	"orap/internal/circuits"
	"orap/internal/lfsr"
	"orap/internal/lock"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/scan"
)

// buildChipConfig locks an adder and protects it with the given scheme.
func buildChipConfig(t *testing.T, prot scan.Protection, seed uint64) (scan.Config, *lock.Locked) {
	t.Helper()
	orig := circuits.RippleAdder(4)
	l, err := lock.RandomXOR(orig, 8, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := orap.Protect(l.Circuit, l.Key, 5, 1, prot, orap.Options{Rand: rng.New(seed + 50)})
	if err != nil {
		t.Fatal(err)
	}
	return cfg, l
}

func somePattern(n int) []bool {
	x := make([]bool, n)
	for i := range x {
		x[i] = i%3 != 0
	}
	return x
}

func TestScenarioASuppressResetYieldsCorrectOracle(t *testing.T) {
	cfg, l := buildChipConfig(t, scan.OraPBasic, 1)
	x := somePattern(cfg.Core.NumInputs())
	out, err := SimulateSuppressReset(cfg, l.Key, x)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CorrectResponse {
		t.Fatal("suppress-reset Trojan failed to expose the oracle (it should succeed functionally)")
	}
	if out.RecoveredKey == nil {
		t.Fatal("suppress-reset Trojan should also leak the key via scan")
	}
	for i := range l.Key {
		if out.RecoveredKey[i] != l.Key[i] {
			t.Fatal("leaked key differs from the true key")
		}
	}
}

func TestScenarioCShadowRegisterLeaksKey(t *testing.T) {
	for _, prot := range []scan.Protection{scan.OraPBasic, scan.OraPModified} {
		cfg, l := buildChipConfig(t, prot, 2)
		out, err := SimulateShadowKey(cfg, l.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !out.CorrectResponse {
			t.Fatalf("%v: shadow register did not capture the key", prot)
		}
	}
}

func TestScenarioDXorTreeReconstructsBasicKey(t *testing.T) {
	cfg, l := buildChipConfig(t, scan.OraPBasic, 3)
	out, err := SimulateXorTree(cfg, l.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CorrectResponse {
		t.Fatal("XOR-tree reconstruction failed on the basic scheme (LFSR is linear; it must work)")
	}
}

func TestScenarioEFreezeFFsBasicVsModified(t *testing.T) {
	// The experiment behind Fig. 3: freezing the flip-flops gives the
	// attacker one correct response under the basic scheme, but under
	// the modified scheme the frozen (wrong) responses corrupt the key.
	basicCfg, basicL := buildChipConfig(t, scan.OraPBasic, 4)
	x := somePattern(basicCfg.Core.NumInputs())
	basicOut, err := SimulateFreezeFFs(basicCfg, basicL.Key, x)
	if err != nil {
		t.Fatal(err)
	}
	if !basicOut.CorrectResponse {
		t.Fatal("scenario (e) must succeed against the basic scheme — that is why Fig. 3 exists")
	}

	modCfg, modL := buildChipConfig(t, scan.OraPModified, 4)
	xm := somePattern(modCfg.Core.NumInputs())
	modOut, err := SimulateFreezeFFs(modCfg, modL.Key, xm)
	if err != nil {
		t.Fatal(err)
	}
	if modOut.CorrectResponse {
		t.Fatal("scenario (e) succeeded against the modified scheme — response feedback broken")
	}
}

func TestPayloadOrdering(t *testing.T) {
	// The countermeasures order the payload costs: (e) ≪ (a) < (b) < (c),
	// and (d) dominates everything once the XOR trees are sized.
	const n = 128
	cfg := lfsr.Config{N: n, Taps: lfsr.StandardTaps(n, 8), Inject: lfsr.AllInject(n)}
	sc := lfsr.UniformSchedule(4, 2)
	ps, err := Payloads(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	byScenario := map[string]Payload{}
	for _, p := range ps {
		byScenario[p.Scenario] = p
	}
	a, b, c, d, e := byScenario["a"], byScenario["b"], byScenario["c"], byScenario["d"], byScenario["e"]
	if !(e.GateEquivalents < a.GateEquivalents) {
		t.Fatalf("(e)=%v should be far below (a)=%v", e.GateEquivalents, a.GateEquivalents)
	}
	if !(a.GateEquivalents < b.GateEquivalents) {
		t.Fatalf("(a)=%v should be below (b)=%v — that is the interleaving countermeasure", a.GateEquivalents, b.GateEquivalents)
	}
	if !(b.GateEquivalents < c.GateEquivalents) {
		t.Fatalf("(b)=%v should be below (c)=%v", b.GateEquivalents, c.GateEquivalents)
	}
	if !(c.GateEquivalents < d.GateEquivalents) {
		t.Fatalf("(c)=%v should be below (d)=%v for a mixing LFSR", c.GateEquivalents, d.GateEquivalents)
	}
}

func TestPayloadAMatchesPaperArithmetic(t *testing.T) {
	// "Considering an 128-bit key register … roughly 64 NAND2 gates."
	p := PayloadA(128)
	if p.GateEquivalents != 64 {
		t.Fatalf("PayloadA(128) = %v GE, paper says ~64", p.GateEquivalents)
	}
}

func TestXorTreeCostGrowsWithMixing(t *testing.T) {
	// More seeds and free-run cycles mix seed bits into more cells, so
	// the attack-(d) XOR trees must grow — the designer's lever.
	const n = 64
	cfg := lfsr.Config{N: n, Taps: lfsr.StandardTaps(n, 8), Inject: lfsr.AllInject(n)}
	small, err := XorTreeGates(cfg, lfsr.UniformSchedule(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	big, err := XorTreeGates(cfg, lfsr.UniformSchedule(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("XOR-tree cost did not grow with mixing: %d vs %d", small, big)
	}
}

func TestXorTreeCostLFSRBeatsShiftRegister(t *testing.T) {
	// "This is exactly the reason for utilizing an LFSR as a key
	// register": without feedback taps a shift register mixes far less.
	const n = 64
	sc := lfsr.UniformSchedule(4, 6)
	withTaps := lfsr.Config{N: n, Taps: lfsr.StandardTaps(n, 8), Inject: lfsr.AllInject(n)}
	noTaps := lfsr.Config{N: n, Inject: lfsr.AllInject(n)}
	l, err := XorTreeGates(withTaps, sc)
	if err != nil {
		t.Fatal(err)
	}
	s, err := XorTreeGates(noTaps, sc)
	if err != nil {
		t.Fatal(err)
	}
	if l <= s {
		t.Fatalf("LFSR XOR-tree cost %d not above shift register's %d", l, s)
	}
}

func TestSimulateXorTreeRejectsModified(t *testing.T) {
	cfg, l := buildChipConfig(t, scan.OraPModified, 5)
	if _, err := SimulateXorTree(cfg, l.Key); err == nil {
		t.Fatal("XOR-tree simulation accepted the modified scheme")
	}
}

func TestPayloadBFromLayoutQuantifiesCountermeasure(t *testing.T) {
	inter := trojanLayout(scan.InterleavedLayout(128, 1024, 8))
	tail := trojanLayout(scan.TailLayout(128, 1024, 8))
	if inter.GateEquivalents <= 4*tail.GateEquivalents {
		t.Fatalf("interleaving should multiply the payload: %v vs %v",
			inter.GateEquivalents, tail.GateEquivalents)
	}
	// The generic PayloadB (one mux per cell) matches the interleaved
	// layout's pricing.
	if inter.GateEquivalents != PayloadB(128).GateEquivalents {
		t.Fatalf("interleaved pricing %v != generic PayloadB %v",
			inter.GateEquivalents, PayloadB(128).GateEquivalents)
	}
}

func trojanLayout(l scan.Layout) Payload { return PayloadBFromLayout(l) }
