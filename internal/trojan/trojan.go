// Package trojan models the hardware-Trojan threat scenarios of Section
// III of the OraP paper: an attacker in an untrusted foundry modifies the
// chip (keeping its original functionality, since activated chips undergo
// standard tests and side-channel analysis in the owner's trusted
// environment), buys a functional part from the open market, triggers the
// Trojan and tries to use scan mode on the unlocked circuit.
//
// For each scenario the package provides (1) the payload hardware cost in
// NAND2 gate equivalents — the quantity the paper's countermeasures
// deliberately inflate so side-channel Trojan detection catches the
// modification — and (2) an executable simulation of the attack against a
// scan.Chip, showing whether the attacker obtains correct oracle
// responses.
package trojan

import (
	"fmt"

	"orap/internal/gf2"
	"orap/internal/lfsr"
	"orap/internal/scan"
	"orap/internal/sim"
)

// Gate-equivalent costs (in NAND2 units) used by the payload accounting.
// The paper's arithmetic charges half a NAND2 for upgrading a NAND2 to a
// NAND3 ("roughly 64 NAND2 gates" for a 128-bit register); a 2-to-1 mux
// and a flip-flop use standard cell-library equivalents.
const (
	geNAND2ToNAND3 = 0.5
	geMux21        = 3.0
	geFlipFlop     = 6.0
	geXOR2         = 3.0
)

// Payload describes a Trojan's payload hardware cost.
type Payload struct {
	// Scenario is the paper's label, "a" through "e".
	Scenario string
	// Description summarizes the modification.
	Description string
	// GateEquivalents is the payload size in NAND2 equivalents (payload
	// only — the trigger circuit comes on top, as in the paper).
	GateEquivalents float64
}

// String renders the payload in one line.
func (p Payload) String() string {
	return fmt.Sprintf("scenario (%s): %s — %.1f GE payload", p.Scenario, p.Description, p.GateEquivalents)
}

// PayloadA is scenario (a): suppress the scan-enable-driven reset locally
// in every LFSR cell by upgrading each pulse generator's NAND2 to a NAND3
// driven by the trigger. Because the LFSR sits in the scan chains, the
// attacker cannot cut the scan-enable stem without losing scan
// functionality, so the modification must be per-cell.
func PayloadA(keyBits int) Payload {
	return Payload{
		Scenario:        "a",
		Description:     fmt.Sprintf("per-cell NAND2→NAND3 in %d pulse generators", keyBits),
		GateEquivalents: geNAND2ToNAND3 * float64(keyBits),
	}
}

// PayloadB is scenario (b): suppress scan enable at the LFSR's stem and
// bypass the register in the scan chains. The countermeasure — placing
// LFSR cells before normal flip-flops, interleaved when several share a
// chain — forces one 2-to-1 multiplexer per LFSR cell, which exceeds the
// cost of scenario (a).
func PayloadB(keyBits int) Payload {
	return Payload{
		Scenario:        "b",
		Description:     fmt.Sprintf("stem gating + %d bypass muxes (interleaved placement)", keyBits),
		GateEquivalents: 1 + geMux21*float64(keyBits),
	}
}

// PayloadC is scenario (c): a shadow register that stores the key at the
// end of unlock, plus one multiplexer per bit to feed it to the key gates
// or scan it out.
func PayloadC(keyBits int) Payload {
	return Payload{
		Scenario:        "c",
		Description:     fmt.Sprintf("%d-bit shadow register + %d muxes", keyBits, keyBits),
		GateEquivalents: (geFlipFlop + geMux21) * float64(keyBits),
	}
}

// PayloadD is scenario (d): symbolic simulation of the LFSR gives each key
// bit as a GF(2)-linear expression of the injected seed bits; the Trojan
// latches every seed into separate registers and implements the
// expressions as XOR trees. The cost is computed exactly from the
// schedule: one flip-flop per stored seed bit, XOR2 gates per expression
// term beyond the first, and a mux per key bit to inject the result.
//
// This is the cost the defender controls through the characteristic
// polynomial, the number and position of reseeding points, the number of
// seeds, and the free-run cycles — the reason the key register is an LFSR
// rather than a plain shift register.
func PayloadD(cfg lfsr.Config, sc lfsr.Schedule) (Payload, error) {
	m, err := lfsr.TransferMatrix(cfg, sc)
	if err != nil {
		return Payload{}, err
	}
	xors := 0
	for r := 0; r < m.Rows; r++ {
		if w := m.Row(r).Weight(); w > 1 {
			xors += w - 1
		}
	}
	seedBits := cfg.SeedWidth() * sc.NumSeeds()
	ge := geFlipFlop*float64(seedBits) + geXOR2*float64(xors) + geMux21*float64(cfg.N)
	return Payload{
		Scenario: "d",
		Description: fmt.Sprintf("%d seed-bit registers + %d XOR2 in trees + %d muxes",
			seedBits, xors, cfg.N),
		GateEquivalents: ge,
	}, nil
}

// XorTreeGates returns just the XOR2 count of scenario (d)'s trees, the
// quantity swept in the design-space studies.
func XorTreeGates(cfg lfsr.Config, sc lfsr.Schedule) (int, error) {
	m, err := lfsr.TransferMatrix(cfg, sc)
	if err != nil {
		return 0, err
	}
	xors := 0
	for r := 0; r < m.Rows; r++ {
		if w := m.Row(r).Weight(); w > 1 {
			xors += w - 1
		}
	}
	return xors, nil
}

// PayloadE is scenario (e): freeze the normal flip-flops' reset/enable
// during unlock to exploit the one correct scanned-out response. Only a
// few control signals must be gated, so the payload is tiny — which is
// exactly why the basic scheme alone is insufficient and the modified
// scheme of Fig. 3 exists.
func PayloadE() Payload {
	return Payload{
		Scenario:        "e",
		Description:     "gate reset/enable of normal flip-flops during unlock",
		GateEquivalents: 6,
	}
}

// Payloads returns the full Section-III payload table for a key width and
// unlock schedule.
func Payloads(cfg lfsr.Config, sc lfsr.Schedule) ([]Payload, error) {
	d, err := PayloadD(cfg, sc)
	if err != nil {
		return nil, err
	}
	return []Payload{
		PayloadA(cfg.N),
		PayloadB(cfg.N),
		PayloadC(cfg.N),
		d,
		PayloadE(),
	}, nil
}

// AttackOutcome reports a simulated Trojan-assisted oracle access.
type AttackOutcome struct {
	// Scenario is the paper's label.
	Scenario string
	// CorrectResponse reports whether the attacker obtained the chip's
	// correct (unlocked) response for their chosen pattern.
	CorrectResponse bool
	// RecoveredKey is the key material the attack exposed (nil if none).
	RecoveredKey []bool
}

// reference computes the correct core response for pattern x under key.
func reference(cfg scan.Config, x, key []bool) ([]bool, error) {
	return sim.Eval(cfg.Core, x, key)
}

// SimulateSuppressReset runs scenarios (a)/(b) behaviourally: with the
// key-register reset suppressed, the attacker unlocks the chip and then
// queries it through scan. The attack succeeds functionally — the
// defense against it is detection, because the payload cannot be small.
func SimulateSuppressReset(cfg scan.Config, trueKey []bool, x []bool) (AttackOutcome, error) {
	ch, err := scan.New(cfg)
	if err != nil {
		return AttackOutcome{}, err
	}
	ch.ArmTrojans(scan.Trojans{SuppressKeyReset: true})
	if err := ch.Unlock(nil); err != nil {
		return AttackOutcome{}, err
	}
	resp, err := scanQuery(ch, x)
	if err != nil {
		return AttackOutcome{}, err
	}
	want, err := reference(cfg, x, trueKey)
	if err != nil {
		return AttackOutcome{}, err
	}
	// With the reset gone, the attacker can also scan the key register
	// straight out.
	ch.SetScanEnable(true)
	leaked, err := ch.ScanOutKey()
	ch.SetScanEnable(false)
	if err != nil {
		leaked = nil
	}
	return AttackOutcome{
		Scenario:        "a/b",
		CorrectResponse: boolsEqual(resp, want),
		RecoveredKey:    leaked,
	}, nil
}

// SimulateShadowKey runs scenario (c): the shadow register snapshots the
// key at the end of unlock and the attacker reads it back.
func SimulateShadowKey(cfg scan.Config, trueKey []bool) (AttackOutcome, error) {
	ch, err := scan.New(cfg)
	if err != nil {
		return AttackOutcome{}, err
	}
	ch.ArmTrojans(scan.Trojans{ShadowKey: true})
	if err := ch.Unlock(nil); err != nil {
		return AttackOutcome{}, err
	}
	leaked, err := ch.ReadShadow()
	if err != nil {
		return AttackOutcome{}, err
	}
	return AttackOutcome{
		Scenario:        "c",
		CorrectResponse: boolsEqual(leaked, trueKey),
		RecoveredKey:    leaked,
	}, nil
}

// SimulateXorTree runs scenario (d): the Trojan latched the seeds fed
// during unlock and reconstructs the key with the symbolic transfer
// matrix (the XOR trees' function). For the basic scheme this recovers
// the key exactly; the defense is again the payload size, computed by
// PayloadD.
func SimulateXorTree(cfg scan.Config, trueKey []bool) (AttackOutcome, error) {
	if cfg.Protection != scan.OraPBasic {
		return AttackOutcome{}, fmt.Errorf("trojan: XOR-tree reconstruction modelled for the basic scheme only")
	}
	m, err := lfsr.TransferMatrix(cfg.LFSR, cfg.Schedule)
	if err != nil {
		return AttackOutcome{}, err
	}
	// Stack the latched seeds in feeding order, mapping memory-driven
	// positions into the full injection width.
	w := cfg.LFSR.SeedWidth()
	stacked := gf2.NewVec(w * cfg.Schedule.NumSeeds())
	for i, s := range cfg.Seeds {
		for j, pos := range cfg.MemInject {
			if s.Bit(j) {
				stacked.SetBit(i*w+pos, true)
			}
		}
	}
	rec := m.MulVec(stacked)
	return AttackOutcome{
		Scenario:        "d",
		CorrectResponse: rec.Equal(gf2.FromBools(trueKey)),
		RecoveredKey:    rec.Bools(),
	}, nil
}

// SimulateFreezeFFs runs scenario (e): the attacker scans their pattern
// into the normal flip-flops, freezes them, lets the controller unlock,
// then captures one clock and scans the response out. Against the basic
// scheme this yields one correct response per unlock; against the
// modified scheme the frozen flip-flops feed wrong values into the LFSR,
// the generated key is wrong, and the captured response is (with
// overwhelming probability) wrong too.
func SimulateFreezeFFs(cfg scan.Config, trueKey []bool, x []bool) (AttackOutcome, error) {
	if len(x) != cfg.Core.NumInputs() {
		return AttackOutcome{}, fmt.Errorf("trojan: pattern width %d != core inputs %d", len(x), cfg.Core.NumInputs())
	}
	ch, err := scan.New(cfg)
	if err != nil {
		return AttackOutcome{}, err
	}
	pins := x[:cfg.RealPIs]
	ffPart := x[cfg.RealPIs:]

	// Shift the desired state in while the chip is (naturally) locked.
	ch.SetScanEnable(true)
	if err := ch.ScanInFFs(ffPart); err != nil {
		return AttackOutcome{}, err
	}
	ch.SetScanEnable(false)

	// Trigger the Trojan and let the controller unlock; the frozen
	// flip-flops survive the unlock sequence.
	ch.ArmTrojans(scan.Trojans{FreezeFFs: true})
	if err := ch.Unlock(pins); err != nil {
		return AttackOutcome{}, err
	}
	ch.ArmTrojans(scan.Trojans{}) // release for the capture clock

	pinOut, err := ch.CaptureClock(pins)
	if err != nil {
		return AttackOutcome{}, err
	}
	ch.SetScanEnable(true)
	ffOut, err := ch.ScanOutFFs()
	if err != nil {
		return AttackOutcome{}, err
	}
	ch.SetScanEnable(false)
	resp := append(append([]bool(nil), pinOut...), ffOut...)

	want, err := reference(cfg, x, trueKey)
	if err != nil {
		return AttackOutcome{}, err
	}
	return AttackOutcome{
		Scenario:        "e",
		CorrectResponse: boolsEqual(resp, want),
	}, nil
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scanQuery performs one scan in – capture – scan out query, mirroring
// oracle.Scan but usable on a chip the caller already holds.
func scanQuery(ch *scan.Chip, x []bool) ([]bool, error) {
	cfg := ch.Config()
	pins := x[:cfg.RealPIs]
	ffPart := x[cfg.RealPIs:]
	ch.SetScanEnable(true)
	if err := ch.ScanInFFs(ffPart); err != nil {
		return nil, err
	}
	ch.SetScanEnable(false)
	pinOut, err := ch.CaptureClock(pins)
	if err != nil {
		return nil, err
	}
	ch.SetScanEnable(true)
	ffOut, err := ch.ScanOutFFs()
	if err != nil {
		return nil, err
	}
	ch.SetScanEnable(false)
	return append(append([]bool(nil), pinOut...), ffOut...), nil
}

// PayloadBFromLayout prices scenario (b) for a concrete scan-chain
// layout: one bypass mux per splice point (see scan.Layout), plus the
// single stem gate. With the paper's interleaved placement this equals
// PayloadB; with an attacker-friendly tail placement it collapses to one
// mux per chain — the quantified value of the placement countermeasure.
func PayloadBFromLayout(l scan.Layout) Payload {
	muxes := l.BypassMuxCount()
	return Payload{
		Scenario:        "b",
		Description:     fmt.Sprintf("stem gating + %d bypass muxes (given layout)", muxes),
		GateEquivalents: 1 + geMux21*float64(muxes),
	}
}
