// Package benchgen deterministically generates synthetic combinational
// circuits at the scale of the paper's benchmark suite.
//
// The real ISCAS'89 and ITC'99 netlists are not redistributable with this
// repository, so each named benchmark is replaced by a random levelized
// DAG matching the published interface of its combinational part: primary
// input count (pins + flip-flop outputs), primary output count (pins +
// flip-flop inputs), and the gate count (excluding inverters) reported in
// Table I. The experiments depend on circuit *scale* — gate and output
// counts drive Hamming-distance statistics, relative overheads, and ATPG
// effort — which the generator reproduces; see DESIGN.md for the
// substitution argument.
package benchgen

import (
	"fmt"
	"sort"

	"orap/internal/check"
	"orap/internal/netlist"
	"orap/internal/rng"
)

// Profile describes a benchmark's combinational-part interface.
type Profile struct {
	// Name is the benchmark name (s38417, b17, …).
	Name string
	// Pins is the number of package-pin primary inputs.
	Pins int
	// FFs is the number of flip-flops (pseudo PI/PO pairs).
	FFs int
	// PinOuts is the number of package-pin primary outputs.
	PinOuts int
	// Gates is the target gate count excluding inverters (Table I col 2).
	Gates int
	// LFSRSize and CtrlInputs mirror Table I columns 4 and 5.
	LFSRSize   int
	CtrlInputs int
}

// Inputs returns the combinational input count (pins + FF outputs).
func (p Profile) Inputs() int { return p.Pins + p.FFs }

// Outputs returns the combinational output count (pin outputs + FF inputs).
func (p Profile) Outputs() int { return p.PinOuts + p.FFs }

// Profiles lists the paper's Table I benchmarks with their published
// interfaces (PI/FF/PO counts from the ISCAS'89 / ITC'99 documentation,
// gate and output counts from Table I itself).
var Profiles = []Profile{
	{Name: "s38417", Pins: 28, FFs: 1636, PinOuts: 106, Gates: 8709, LFSRSize: 256, CtrlInputs: 3},
	{Name: "s38584", Pins: 38, FFs: 1426, PinOuts: 304, Gates: 11448, LFSRSize: 186, CtrlInputs: 3},
	{Name: "b17", Pins: 37, FFs: 1415, PinOuts: 97, Gates: 29267, LFSRSize: 256, CtrlInputs: 3},
	{Name: "b18", Pins: 36, FFs: 3320, PinOuts: 23, Gates: 97569, LFSRSize: 97, CtrlInputs: 5},
	{Name: "b19", Pins: 24, FFs: 6642, PinOuts: 30, Gates: 196855, LFSRSize: 208, CtrlInputs: 5},
	{Name: "b20", Pins: 32, FFs: 490, PinOuts: 22, Gates: 17648, LFSRSize: 236, CtrlInputs: 3},
	{Name: "b21", Pins: 32, FFs: 490, PinOuts: 22, Gates: 17972, LFSRSize: 229, CtrlInputs: 3},
	{Name: "b22", Pins: 32, FFs: 735, PinOuts: 22, Gates: 26195, LFSRSize: 243, CtrlInputs: 3},
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("benchgen: unknown benchmark %q", name)
}

// Scale returns a proportionally shrunken copy of the profile (factor in
// (0,1]), for fast test and -short bench runs: gate, FF and output counts
// scale together so the shape of the experiments is preserved.
func (p Profile) Scale(factor float64) Profile {
	if factor >= 1 {
		return p
	}
	s := p
	scaleInt := func(v int) int {
		n := int(float64(v) * factor)
		if n < 4 {
			n = 4
		}
		return n
	}
	s.Name = fmt.Sprintf("%s@%.3g", p.Name, factor)
	s.FFs = scaleInt(p.FFs)
	s.Gates = scaleInt(p.Gates)
	s.PinOuts = scaleInt(p.PinOuts)
	s.Pins = scaleInt(p.Pins)
	if s.LFSRSize > s.Gates/4 {
		s.LFSRSize = s.Gates / 4
	}
	if s.LFSRSize < s.CtrlInputs {
		s.LFSRSize = s.CtrlInputs
	}
	return s
}

// Generate builds the synthetic circuit for a profile. The construction
// is fully deterministic in (profile, seed).
func Generate(p Profile, seed uint64) (*netlist.Circuit, error) {
	if p.Inputs() < 2 || p.Outputs() < 1 || p.Gates < p.Outputs() {
		return nil, fmt.Errorf("benchgen: degenerate profile %+v", p)
	}
	r := rng.NewNamed(seed, p.Name)
	c := netlist.New(p.Name)

	inputs := make([]int, p.Inputs())
	for i := range inputs {
		id, err := c.AddInput(fmt.Sprintf("I%d", i))
		if err != nil {
			return nil, err
		}
		inputs[i] = id
	}

	// Gate nodes are created in topological order. Fanins are drawn with
	// a locality bias: mostly recent nodes (builds depth), sometimes
	// inputs or older nodes (builds breadth and reconvergence).
	nodes := append([]int(nil), inputs...)
	pick := func() int {
		n := len(nodes)
		switch r.Intn(10) {
		case 0, 1, 2: // any node
			return nodes[r.Intn(n)]
		case 3, 4: // an input
			return inputs[r.Intn(len(inputs))]
		default: // recent window
			w := 4 * p.Outputs()
			if w > n {
				w = n
			}
			return nodes[n-1-r.Intn(w)]
		}
	}
	gateTypes := []netlist.GateType{
		netlist.And, netlist.Nand, netlist.Or, netlist.Nor,
		netlist.And, netlist.Nand, netlist.Or, netlist.Nor,
		netlist.Xor, netlist.Xnor,
	}
	gates := make([]int, 0, p.Gates)
	inverterBudget := p.Gates / 10 // sprinkle inverters; they are free in the area metric
	for g := 0; g < p.Gates; g++ {
		t := gateTypes[r.Intn(len(gateTypes))]
		arity := 2
		if r.Intn(5) == 0 {
			arity = 3
		}
		fan := make([]int, 0, arity)
		seen := map[int]bool{}
		for len(fan) < arity {
			f := pick()
			if !seen[f] {
				seen[f] = true
				fan = append(fan, f)
			}
		}
		id, err := c.AddGate(t, fmt.Sprintf("g%d", g), fan...)
		if err != nil {
			return nil, err
		}
		if inverterBudget > 0 && r.Intn(10) == 0 {
			inv, err := c.AddGate(netlist.Not, fmt.Sprintf("inv%d", g), id)
			if err != nil {
				return nil, err
			}
			id = inv
			inverterBudget--
		}
		nodes = append(nodes, id)
		gates = append(gates, id)
	}

	// Choose primary outputs: all currently dangling gates first (so the
	// DAG has no dead logic), then random internal gates.
	used := make(map[int]bool, len(c.Gates))
	for _, g := range c.Gates {
		for _, f := range g.Fanin {
			used[f] = true
		}
	}
	var sinks []int
	for _, id := range gates {
		if !used[id] {
			sinks = append(sinks, id)
		}
	}
	sort.Ints(sinks)
	want := p.Outputs()
	if len(sinks) > want {
		// Too many sinks: absorb the surplus into reducer gates.
		for len(sinks) > want {
			take := 3
			if take > len(sinks) {
				take = len(sinks)
			}
			fan := sinks[:take]
			sinks = sinks[take:]
			if len(fan) == 1 {
				sinks = append(sinks, fan[0])
				break
			}
			id, err := c.AddGate(netlist.Xor, fmt.Sprintf("red%d", len(sinks)), fan...)
			if err != nil {
				return nil, err
			}
			sinks = append(sinks, id)
		}
	}
	chosen := make(map[int]bool, want)
	for _, id := range sinks {
		chosen[id] = true
	}
	for len(sinks) < want {
		// Promote distinct random internal gates to outputs as well.
		id := gates[r.Intn(len(gates))]
		if !chosen[id] {
			chosen[id] = true
			sinks = append(sinks, id)
		}
	}
	for _, id := range sinks[:want] {
		if err := c.MarkOutput(id); err != nil {
			return nil, err
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("benchgen: generated circuit invalid: %w", err)
	}
	if rep := check.Structural(c); rep.HasErrors() {
		return nil, fmt.Errorf("benchgen: %w", rep.Err())
	}
	return c, nil
}
