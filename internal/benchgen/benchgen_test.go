package benchgen

import (
	"testing"

	"orap/internal/rng"
	"orap/internal/sim"
)

func TestProfilesMatchTableI(t *testing.T) {
	// Output counts must reproduce Table I column 3 exactly.
	want := map[string]int{
		"s38417": 1742, "s38584": 1730, "b17": 1512, "b18": 3343,
		"b19": 6672, "b20": 512, "b21": 512, "b22": 757,
	}
	for _, p := range Profiles {
		if got := p.Outputs(); got != want[p.Name] {
			t.Errorf("%s outputs = %d, want %d", p.Name, got, want[p.Name])
		}
	}
}

func TestGenerateSmallProfilesShape(t *testing.T) {
	for _, name := range []string{"b20", "s38417"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p = p.Scale(0.02)
		c, err := Generate(p, 42)
		if err != nil {
			t.Fatal(err)
		}
		if c.NumInputs() != p.Inputs() {
			t.Errorf("%s: inputs %d, want %d", p.Name, c.NumInputs(), p.Inputs())
		}
		if c.NumOutputs() != p.Outputs() {
			t.Errorf("%s: outputs %d, want %d", p.Name, c.NumOutputs(), p.Outputs())
		}
		gc := c.GateCount()
		// Reducer gates that absorb surplus sinks add a few percent on
		// top of the profile target.
		if gc < p.Gates || gc > p.Gates+p.Gates/8+p.Outputs() {
			t.Errorf("%s: gate count %d outside [%d, %d]", p.Name, gc, p.Gates, p.Gates+p.Gates/8+p.Outputs())
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", p.Name, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("b20")
	p = p.Scale(0.02)
	a, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() {
		t.Fatal("same seed produced different node counts")
	}
	for id := range a.Gates {
		if a.Gates[id].Type != b.Gates[id].Type || len(a.Gates[id].Fanin) != len(b.Gates[id].Fanin) {
			t.Fatalf("node %d differs between same-seed generations", id)
		}
		for i := range a.Gates[id].Fanin {
			if a.Gates[id].Fanin[i] != b.Gates[id].Fanin[i] {
				t.Fatalf("node %d fanin differs", id)
			}
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	p, _ := ProfileByName("b20")
	p = p.Scale(0.02)
	a, _ := Generate(p, 1)
	b, _ := Generate(p, 2)
	same := true
	if a.NumNodes() != b.NumNodes() {
		same = false
	} else {
		for id := range a.Gates {
			if a.Gates[id].Type != b.Gates[id].Type {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced structurally identical circuits")
	}
}

func TestGeneratedCircuitHasNoDeadLogic(t *testing.T) {
	p, _ := ProfileByName("b21")
	p = p.Scale(0.02)
	c, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.DanglingNodes(); len(d) != 0 {
		t.Fatalf("%d dangling nodes in generated circuit", len(d))
	}
}

func TestGeneratedCircuitIsResponsive(t *testing.T) {
	// Outputs must actually toggle under random inputs (no stuck logic).
	p, _ := ProfileByName("b20")
	p = p.Scale(0.02)
	c, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sim.NewParallel(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	par.RandomizeInputs(rng.New(5))
	par.Run()
	toggling := 0
	for _, o := range c.POs {
		w := par.Value(o)
		ones := sim.PopCount(w, 256)
		if ones > 0 && ones < 256 {
			toggling++
		}
	}
	if toggling < c.NumOutputs()/2 {
		t.Fatalf("only %d/%d outputs toggle under random patterns", toggling, c.NumOutputs())
	}
}

func TestScaleReducesEverything(t *testing.T) {
	p, _ := ProfileByName("b19")
	s := p.Scale(0.01)
	if s.Gates >= p.Gates || s.FFs >= p.FFs {
		t.Fatal("Scale did not shrink the profile")
	}
	if s.Scale(1.5).Gates != s.Gates {
		t.Fatal("Scale(>1) should be identity")
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestGenerateFullScaleB20(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	p, _ := ProfileByName("b20")
	c, err := Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumOutputs() != 512 || c.GateCount() < 17648 {
		t.Fatalf("b20 shape wrong: %s", c.Summary())
	}
}
