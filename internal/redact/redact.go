// Package redact formats secret key material for logs and error
// messages without revealing it.
//
// The repository's vet layer (cmd/orapvet, rule "nosecret") forbids
// printing raw key vectors from internal packages: a key that leaks into
// a log line, a benchmark table or a test transcript defeats the locking
// scheme as surely as a broken oracle. Internal code that needs to talk
// about a key goes through this package, which renders only the width
// and a short non-invertible fingerprint — enough to tell two keys
// apart in a trace, useless for recovering either.
package redact

import (
	"fmt"
	"hash/fnv"

	"orap/internal/gf2"
)

// Key renders a key vector as "key[width=N fp=xxxxxxxx]": the width and
// a 32-bit FNV-1a fingerprint of the bits. The fingerprint is stable
// across runs (no per-process seed), so traces stay comparable, and it
// is not invertible beyond brute force over the keyspace — which is
// exactly the work factor the locking scheme already assumes.
//
//vet:sanitizer
func Key(key []bool) string {
	h := fnv.New32a()
	buf := make([]byte, (len(key)+7)/8)
	for i, b := range key {
		if b {
			buf[i/8] |= 1 << (i % 8)
		}
	}
	h.Write(buf)
	return fmt.Sprintf("key[width=%d fp=%08x]", len(key), h.Sum32())
}

// Vec is Key for gf2 vectors.
//
//vet:sanitizer
func Vec(v gf2.Vec) string { return Key(v.Bools()) }
