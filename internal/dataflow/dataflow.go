// Package dataflow is the abstract-interpretation engine over the
// compiled circuit IR: one generic fixpoint solver that every static
// rule in internal/check and internal/audit shares, instead of each
// rule re-implementing its own propagation loop.
//
// A Domain is a small lattice-plus-transfer description of one analysis
// (bottom element, join, per-opcode transfer function); the engine
// solves it two ways:
//
//   - Run performs a full level sweep over ir.Program's wavefront
//     schedule. On a combinational DAG every node's inputs (fanins for
//     forward domains, fanouts for backward ones) live on earlier
//     levels of the sweep, so a single sweep IS the fixpoint — no
//     iteration, and the nodes of one level may be transferred in
//     parallel (internal/par) because they cannot depend on each other.
//   - Rerun incrementally repairs an existing fixpoint after a seed
//     node's abstract value changes, driving a worklist along the CSR
//     fanout arrays in topological-position order (the same frontier
//     discipline faultsim's event-driven simulator uses). Each dirty
//     node is transferred exactly once, and propagation stops where the
//     recomputed value equals the old one — the per-key-bit analyses in
//     internal/audit touch only the key bit's fanout cone this way.
//
// The four shipped domains are the ternary constant lattice (Const),
// the pair/key-difference domain (Pair), per-net key-taint sets
// (KeyTaint) and SCOAP-style testability scores (Controllability /
// Observability). Callers are free to define their own domains against
// the same interface; internal/check's output-reachability pass and
// internal/audit's control-cone pass do exactly that.
package dataflow

import (
	"orap/internal/ir"
	"orap/internal/par"
)

// Direction orients a domain's transfer functions.
type Direction uint8

const (
	// Forward domains compute a node's value from its fanins; the
	// engine sweeps levels from inputs toward primary outputs.
	Forward Direction = iota
	// Backward domains compute a node's value from its fanouts; the
	// engine sweeps levels from primary outputs toward inputs. Rerun
	// supports forward domains only.
	Backward
)

// Domain is one abstract interpretation over a compiled circuit: a
// join-semilattice of abstract values V with a per-node transfer
// function. Implementations hold the *ir.Program they were built for
// (Transfer dispatches on its opcodes) and must be pure: the engine
// calls Transfer concurrently for independent nodes, so it may not
// mutate shared state.
type Domain[V any] interface {
	// Direction reports which way the domain's information flows.
	Direction() Direction
	// Bottom is the initial abstract value of every node. On DAG
	// programs each node is transferred exactly once per sweep before
	// anything reads it, so Bottom is only ever observed by domains
	// whose Transfer inspects not-yet-swept neighbours (there are none
	// among the shipped domains); it also anchors the lattice order the
	// property tests check (Bottom ⊑ v for every v).
	Bottom() V
	// Join is the lattice least upper bound. The DAG solver itself
	// never joins (every node has exactly one transfer result); Join
	// defines the precision order a ⊑ b ⇔ Join(a, b) = b under which
	// every Transfer must be monotone — the property the engine's
	// fuzz tests enforce for each shipped domain.
	Join(a, b V) V
	// Equal reports whether two abstract values coincide; Rerun uses it
	// to stop propagating unchanged values.
	Equal(a, b V) bool
	// Transfer computes node id's abstract value from its neighbours'
	// current values (fanins for forward domains, fanouts for backward
	// ones), read through get.
	Transfer(id int, get func(int) V) V
}

// Options tunes a fixpoint run.
type Options struct {
	// Workers bounds the worker pool sweeping each level (0 = all
	// cores, 1 = serial). Transfer results are pure functions of the
	// node, so the solution is bit-identical at any worker count.
	Workers int
}

// parGrain is the minimum level width worth fanning out to the pool;
// below it the per-item dispatch overhead dominates the transfers.
const parGrain = 128

// Run solves the domain to fixpoint over the whole program with one
// level sweep and returns the abstract values indexed by node ID.
func Run[V any](p *ir.Program, d Domain[V], opts Options) []V {
	n := p.NumNodes()
	vals := make([]V, n)
	bot := d.Bottom()
	for i := range vals {
		vals[i] = bot
	}
	get := func(id int) V { return vals[id] }
	levels := p.NumLevels()
	for l := 0; l < levels; l++ {
		lv := l
		if d.Direction() == Backward {
			lv = levels - 1 - l
		}
		nodes := p.Order[p.LevelStart[lv]:p.LevelStart[lv+1]]
		if opts.Workers == 1 || len(nodes) < parGrain {
			for _, id := range nodes {
				vals[id] = d.Transfer(int(id), get)
			}
			continue
		}
		// Distinct nodes write distinct slots and read only earlier
		// levels, so the fan-out is race-free and order-independent.
		par.ForEach(opts.Workers, len(nodes), func(i int) error {
			id := nodes[i]
			vals[id] = d.Transfer(int(id), get)
			return nil
		})
	}
	return vals
}

// Rerun incrementally re-solves a forward domain's fixpoint in place
// after the transfer results of the seed nodes changed (typically
// because the domain was reconfigured, e.g. Pair.SetKey selecting a
// different key input). vals must hold a fixpoint previously computed
// by Run or Rerun for the same program; on return it is the fixpoint of
// the reconfigured domain.
//
// The worklist pops nodes in topological-position order off a min-heap,
// so a node is transferred only after every dirty fanin has settled —
// each visited node is transferred exactly once — and fanouts are
// enqueued through the CSR fanout arrays only when a value actually
// changed. The returned slice lists the visited node IDs in processing
// (topological) order; callers use it to scan exactly the dirty cone
// and to restore vals afterwards when iterating over many seeds.
func Rerun[V any](p *ir.Program, d Domain[V], vals []V, seeds ...int32) []int32 {
	h := posHeap{pos: p.Pos}
	queued := make([]bool, p.NumNodes())
	for _, s := range seeds {
		if !queued[s] {
			queued[s] = true
			h.push(s)
		}
	}
	get := func(id int) V { return vals[id] }
	var visited []int32
	for len(h.heap) > 0 {
		id := h.pop()
		visited = append(visited, id)
		old := vals[id]
		next := d.Transfer(int(id), get)
		vals[id] = next
		if d.Equal(old, next) {
			continue
		}
		for _, fo := range p.FanoutSpan(int(id)) {
			if !queued[fo] {
				queued[fo] = true
				h.push(fo)
			}
		}
	}
	return visited
}

// posHeap is a binary min-heap of node IDs keyed by topological
// position. Fanouts always sit at strictly larger positions than the
// node that enqueues them, so nothing is ever pushed below the current
// minimum and pops come out in increasing topological order.
type posHeap struct {
	pos  []int32
	heap []int32
}

func (h *posHeap) push(id int32) {
	h.heap = append(h.heap, id)
	i := len(h.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.pos[h.heap[parent]] <= h.pos[h.heap[i]] {
			break
		}
		h.heap[parent], h.heap[i] = h.heap[i], h.heap[parent]
		i = parent
	}
}

func (h *posHeap) pop() int32 {
	top := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.heap = h.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h.heap) && h.pos[h.heap[l]] < h.pos[h.heap[min]] {
			min = l
		}
		if r < len(h.heap) && h.pos[h.heap[r]] < h.pos[h.heap[min]] {
			min = r
		}
		if min == i {
			return top
		}
		h.heap[i], h.heap[min] = h.heap[min], h.heap[i]
		i = min
	}
}
