package dataflow

import "orap/internal/ir"

// PairValue is the pair/key-difference abstract value: the ternary
// constant-propagation results of one node under both values of a
// single designated key bit, tracked jointly. Tracking the pair
// matters: XOR(x, k) is Unknown under both values of k, yet its
// concrete value always differs between them — a naive two-pass diff
// would call it key-independent.
type PairValue struct {
	// V0 and V1 are the ternary results under key = 0 and key = 1.
	V0, V1 int8
	// Eq is a proof of key-independence:
	//
	//	Eq[n] = (both values known and equal) ∨ (every fanin of n is Eq)
	//
	// Eq is sound — Eq[n] implies n's concrete value cannot depend on
	// the key bit for any assignment of the unknown inputs — and by
	// induction it also implies the two lattice values coincide.
	Eq bool
	// Anti is the opposite certainty: n's concrete value provably
	// differs between the two key values, for every assignment of the
	// unknown inputs (the node computes f(x) XOR k up to inversion).
	// It propagates through Buf/Not and through XOR/XNOR gates whose
	// remaining fanins are all Eq; AND/OR families destroy it, which is
	// exactly why a PO that keeps Anti is a one-query key leak.
	Anti bool
}

// Pair is the pair/key-difference domain behind audit's key-removable
// and key-leak rules. A Pair is configured with the active key input
// via SetKey; all other inputs stay Unknown-but-Eq. The intended use is
// one base Run with no key selected, then per key bit a SetKey followed
// by an incremental Rerun seeded at the key input.
type Pair struct {
	p *ir.Program
	// key is the node ID of the active key input, -1 for none.
	key int32
}

// NewPair returns the pair domain for p with no key bit selected.
func NewPair(p *ir.Program) *Pair { return &Pair{p: p, key: -1} }

// SetKey selects the key input node the pair tracks (-1 for none).
// After changing it, re-solve with Rerun seeded at the old and/or new
// key node.
func (d *Pair) SetKey(id int32) { d.key = id }

// Direction implements Domain.
func (d *Pair) Direction() Direction { return Forward }

// Bottom implements Domain: both values Unknown with the Eq proof —
// the value every input other than the key carries.
func (d *Pair) Bottom() PairValue {
	return PairValue{V0: Unknown, V1: Unknown, Eq: true}
}

// Join implements Domain: values join in the ternary lattice, the Eq
// and Anti proofs survive only when both sides carry them.
func (d *Pair) Join(a, b PairValue) PairValue {
	c := NewConst(d.p)
	return PairValue{
		V0:   c.Join(a.V0, b.V0),
		V1:   c.Join(a.V1, b.V1),
		Eq:   a.Eq && b.Eq,
		Anti: a.Anti && b.Anti,
	}
}

// Equal implements Domain.
func (d *Pair) Equal(a, b PairValue) bool { return a == b }

// Transfer implements Domain.
func (d *Pair) Transfer(id int, get func(int) PairValue) PairValue {
	p := d.p
	switch p.Ops[id] {
	case ir.OpInput:
		if int32(id) == d.key {
			return PairValue{V0: 0, V1: 1, Anti: true}
		}
		return PairValue{V0: Unknown, V1: Unknown, Eq: true}
	case ir.OpConst0:
		return PairValue{V0: 0, V1: 0, Eq: true}
	case ir.OpConst1:
		return PairValue{V0: 1, V1: 1, Eq: true}
	}
	fi := p.FaninSpan(id)
	op := p.Ops[id]
	v := PairValue{
		V0: foldOp(op, fi, func(f int) int8 { return get(f).V0 }),
		V1: foldOp(op, fi, func(f int) int8 { return get(f).V1 }),
	}
	if v.V0 != Unknown && v.V1 != Unknown {
		v.Eq = v.V0 == v.V1
		v.Anti = v.V0 != v.V1
		return v
	}
	v.Eq = true
	for _, f := range fi {
		if !get(int(f)).Eq {
			v.Eq = false
			break
		}
	}
	if !v.Eq {
		v.Anti = antiThrough(op, fi, get)
	}
	return v
}

// antiThrough decides whether the always-flips proof survives a gate
// whose output value is not fully known: inverters pass it through, and
// an XOR/XNOR flips iff an odd number of fanins flip while every other
// fanin is provably key-independent. Everything else (the AND/OR
// families, or any fanin with neither proof) drops it.
func antiThrough(op ir.Op, fanins []int32, get func(int) PairValue) bool {
	switch op {
	case ir.OpBuf, ir.OpNot:
		return get(int(fanins[0])).Anti
	case ir.OpXor, ir.OpXnor:
		anti := 0
		for _, f := range fanins {
			fv := get(int(f))
			switch {
			case fv.Anti:
				anti++
			case fv.Eq:
			default:
				return false
			}
		}
		return anti%2 == 1
	}
	return false
}
