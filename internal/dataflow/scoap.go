package dataflow

import "orap/internal/ir"

// Unreachable is the saturation ceiling of the SCOAP scores: a score at
// or above it means the condition cannot be established (a constant
// net's opposite value, an output with no path to a primary output).
// Saturating arithmetic keeps deep circuits from overflowing.
const Unreachable = int32(1) << 28

// satAdd adds two SCOAP scores, saturating at Unreachable.
func satAdd(a, b int32) int32 {
	s := a + b
	if s >= Unreachable || a >= Unreachable || b >= Unreachable {
		return Unreachable
	}
	return s
}

// ControlValue carries the SCOAP combinational controllabilities of one
// net: CC0/CC1 estimate how many circuit lines must be set to force the
// net to 0/1 (primary and key inputs cost 1, every gate adds 1).
type ControlValue struct {
	CC0, CC1 int32
}

// Controllability is the forward half of the SCOAP testability domain
// (Goldstein's classic difficulty estimate): inputs are directly
// controllable, AND-family gates sum the costs of their non-controlling
// values and take the cheapest controlling input, XOR gates fold parity
// combinations pairwise. High values mark nets random patterns almost
// never exercise — where SAT-resistant point functions hide.
type Controllability struct {
	p *ir.Program
}

// NewControllability returns the controllability domain for p.
func NewControllability(p *ir.Program) *Controllability {
	return &Controllability{p: p}
}

// Direction implements Domain.
func (d *Controllability) Direction() Direction { return Forward }

// Bottom implements Domain: the zero (free-to-control) score.
func (d *Controllability) Bottom() ControlValue { return ControlValue{} }

// Join implements Domain: the pessimistic (max) score per polarity.
func (d *Controllability) Join(a, b ControlValue) ControlValue {
	return ControlValue{CC0: max32(a.CC0, b.CC0), CC1: max32(a.CC1, b.CC1)}
}

// Equal implements Domain.
func (d *Controllability) Equal(a, b ControlValue) bool { return a == b }

// Transfer implements Domain.
func (d *Controllability) Transfer(id int, get func(int) ControlValue) ControlValue {
	p := d.p
	fi := p.FaninSpan(id)
	switch p.Ops[id] {
	case ir.OpInput:
		return ControlValue{CC0: 1, CC1: 1}
	case ir.OpConst0:
		return ControlValue{CC0: 0, CC1: Unreachable}
	case ir.OpConst1:
		return ControlValue{CC0: Unreachable, CC1: 0}
	case ir.OpBuf:
		v := get(int(fi[0]))
		return ControlValue{CC0: satAdd(v.CC0, 1), CC1: satAdd(v.CC1, 1)}
	case ir.OpNot:
		v := get(int(fi[0]))
		return ControlValue{CC0: satAdd(v.CC1, 1), CC1: satAdd(v.CC0, 1)}
	case ir.OpAnd, ir.OpNand:
		// Output 1 needs every input 1; output 0 needs the cheapest 0.
		one, zero := int32(0), Unreachable
		for _, f := range fi {
			v := get(int(f))
			one = satAdd(one, v.CC1)
			zero = min32(zero, v.CC0)
		}
		cc0, cc1 := satAdd(zero, 1), satAdd(one, 1)
		if p.Ops[id] == ir.OpNand {
			cc0, cc1 = cc1, cc0
		}
		return ControlValue{CC0: cc0, CC1: cc1}
	case ir.OpOr, ir.OpNor:
		zero, one := int32(0), Unreachable
		for _, f := range fi {
			v := get(int(f))
			zero = satAdd(zero, v.CC0)
			one = min32(one, v.CC1)
		}
		cc0, cc1 := satAdd(zero, 1), satAdd(one, 1)
		if p.Ops[id] == ir.OpNor {
			cc0, cc1 = cc1, cc0
		}
		return ControlValue{CC0: cc0, CC1: cc1}
	case ir.OpXor, ir.OpXnor:
		// Pairwise parity fold: the running pair (c0, c1) is the cost of
		// an even/odd parity over the fanins consumed so far.
		v := get(int(fi[0]))
		c0, c1 := v.CC0, v.CC1
		for _, f := range fi[1:] {
			fv := get(int(f))
			n0 := min32(satAdd(c0, fv.CC0), satAdd(c1, fv.CC1))
			n1 := min32(satAdd(c0, fv.CC1), satAdd(c1, fv.CC0))
			c0, c1 = n0, n1
		}
		cc0, cc1 := satAdd(c0, 1), satAdd(c1, 1)
		if p.Ops[id] == ir.OpXnor {
			cc0, cc1 = cc1, cc0
		}
		return ControlValue{CC0: cc0, CC1: cc1}
	}
	return ControlValue{CC0: Unreachable, CC1: Unreachable}
}

// Observability is the backward half of SCOAP: CO estimates how many
// lines must be set to propagate a net's value to a primary output
// (0 at the outputs themselves; each gate on the path adds 1 plus the
// cost of holding its side inputs at non-controlling values, read from
// a completed Controllability result). CO of Unreachable means no
// primary output can ever see the net.
type Observability struct {
	p    *ir.Program
	cc   []ControlValue
	isPO []bool
}

// NewObservability returns the observability domain for p, reading side
// -input costs from cc (a Controllability result for the same program).
func NewObservability(p *ir.Program, cc []ControlValue) *Observability {
	d := &Observability{p: p, cc: cc, isPO: make([]bool, p.NumNodes())}
	for _, o := range p.POs {
		d.isPO[o] = true
	}
	return d
}

// Direction implements Domain.
func (d *Observability) Direction() Direction { return Backward }

// Bottom implements Domain: the zero (freely observable) score.
func (d *Observability) Bottom() int32 { return 0 }

// Join implements Domain: the pessimistic (max) score.
func (d *Observability) Join(a, b int32) int32 { return max32(a, b) }

// Equal implements Domain.
func (d *Observability) Equal(a, b int32) bool { return a == b }

// Transfer implements Domain.
func (d *Observability) Transfer(id int, get func(int) int32) int32 {
	p := d.p
	co := Unreachable
	if d.isPO[id] {
		co = 0
	}
	for _, fo := range p.FanoutSpan(id) {
		g := int(fo)
		cost := get(g)
		switch p.Ops[g] {
		case ir.OpBuf, ir.OpNot:
			// No side inputs.
		case ir.OpAnd, ir.OpNand:
			for _, f := range p.FaninSpan(g) {
				if int(f) != id {
					cost = satAdd(cost, d.cc[f].CC1)
				}
			}
		case ir.OpOr, ir.OpNor:
			for _, f := range p.FaninSpan(g) {
				if int(f) != id {
					cost = satAdd(cost, d.cc[f].CC0)
				}
			}
		case ir.OpXor, ir.OpXnor:
			for _, f := range p.FaninSpan(g) {
				if int(f) != id {
					cost = satAdd(cost, min32(d.cc[f].CC0, d.cc[f].CC1))
				}
			}
		default:
			cost = Unreachable
		}
		co = min32(co, satAdd(cost, 1))
	}
	return co
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
