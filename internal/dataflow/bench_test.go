package dataflow_test

import (
	"testing"

	"orap/internal/benchgen"
	"orap/internal/dataflow"
	"orap/internal/ir"
	"orap/internal/lock"
	"orap/internal/rng"
)

// BenchmarkDataflow measures a full four-domain engine pass (ternary
// constants, pair/key-difference, key taint, SCOAP controllability +
// observability) over the scaled b19 benchmark locked the way Table I
// locks it — the workload internal/audit runs per analysis. Each domain
// reaches fixpoint in a single level sweep; the first iteration also
// cross-checks that the parallel sweep matches the serial one
// bit-for-bit, so a scheduling regression fails the bench rather than
// skewing it.
func BenchmarkDataflow(b *testing.B) {
	prof, err := benchgen.ProfileByName("b19")
	if err != nil {
		b.Fatal(err)
	}
	scaled := prof.Scale(0.05)
	circuit, err := benchgen.Generate(scaled, 2020)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lock.Weighted(circuit, lock.WeightedOptions{
		KeyBits:      scaled.LFSRSize,
		ControlWidth: scaled.CtrlInputs,
		Rand:         rng.New(2020),
	})
	if err != nil {
		b.Fatal(err)
	}
	p, err := ir.Compile(l.Circuit)
	if err != nil {
		b.Fatal(err)
	}

	pass := func(workers int) (consts []int8, pair []dataflow.PairValue, taint []dataflow.KeySet, cc []dataflow.ControlValue, co []int32) {
		opts := dataflow.Options{Workers: workers}
		consts = dataflow.Run[int8](p, dataflow.NewConst(p), opts)
		d := dataflow.NewPair(p)
		d.SetKey(p.Keys[0])
		pair = dataflow.Run[dataflow.PairValue](p, d, opts)
		taint = dataflow.Run[dataflow.KeySet](p, dataflow.NewKeyTaint(p), opts)
		cc = dataflow.Run[dataflow.ControlValue](p, dataflow.NewControllability(p), opts)
		co = dataflow.Run[int32](p, dataflow.NewObservability(p, cc), opts)
		return
	}

	c1, p1, t1, cc1, co1 := pass(1)
	c8, p8, t8, cc8, co8 := pass(8)
	kt := dataflow.NewKeyTaint(p)
	for id := 0; id < p.NumNodes(); id++ {
		if c1[id] != c8[id] || p1[id] != p8[id] || !kt.Equal(t1[id], t8[id]) ||
			cc1[id] != cc8[id] || co1[id] != co8[id] {
			b.Fatalf("node %d: workers=1 and workers=8 fixpoints differ", id)
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pass(0)
	}
	b.ReportMetric(float64(p.NumNodes()), "nodes")
}
