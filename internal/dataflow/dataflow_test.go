package dataflow_test

import (
	"fmt"
	"testing"

	"orap/internal/circuits"
	"orap/internal/dataflow"
	"orap/internal/ir"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/rng"
)

// compile is the test helper every case goes through.
func compile(t testing.TB, c *netlist.Circuit) *ir.Program {
	t.Helper()
	prog, err := ir.Compile(c)
	if err != nil {
		t.Fatalf("compile %s: %v", c.Name, err)
	}
	return prog
}

// soundnessCircuits are small enough to enumerate exhaustively
// (primary inputs plus key inputs within ~12 bits) yet cover every
// opcode and the locked shapes the audit rules care about.
func soundnessCircuits(t testing.TB) map[string]*netlist.Circuit {
	t.Helper()
	out := map[string]*netlist.Circuit{
		"c17":       circuits.C17(),
		"fulladder": circuits.FullAdder(),
		"mux21":     circuits.Mux21(),
	}
	if l, err := lock.RandomXOR(circuits.Parity(8), 3, rng.New(11)); err != nil {
		t.Fatal(err)
	} else {
		out["parity8-randomxor"] = l.Circuit
	}
	if l, err := lock.RandomXOR(circuits.C17(), 3, rng.New(11)); err != nil {
		t.Fatal(err)
	} else {
		out["c17-randomxor"] = l.Circuit
	}
	if l, err := lock.Weighted(circuits.Comparator4(), lock.WeightedOptions{
		KeyBits: 6, ControlWidth: 3, Rand: rng.New(12),
	}); err != nil {
		t.Fatal(err)
	} else {
		out["cmp4-weighted"] = l.Circuit
	}
	if l, err := lock.SARLock(circuits.FullAdder(), 3, rng.New(13)); err != nil {
		t.Fatal(err)
	} else {
		out["fulladder-sarlock"] = l.Circuit
	}
	return out
}

// forEachAssignment enumerates every assignment of the program's
// primary inputs and key bits. It skips (and reports) programs too wide
// to enumerate so a fixture change cannot silently turn the exhaustive
// tests into no-ops.
func forEachAssignment(t *testing.T, p *ir.Program, fn func(pi, key []bool)) {
	t.Helper()
	n := p.NumInputs() + p.NumKeys()
	if n > 14 {
		t.Fatalf("circuit has %d input bits; too wide to enumerate", n)
	}
	pi := make([]bool, p.NumInputs())
	key := make([]bool, p.NumKeys())
	for m := 0; m < 1<<n; m++ {
		for i := range pi {
			pi[i] = m>>i&1 != 0
		}
		for i := range key {
			key[i] = m>>(len(pi)+i)&1 != 0
		}
		fn(pi, key)
	}
}

// TestConstSoundness checks the ternary constant domain against brute
// force: a node the domain calls constant must evaluate to that
// constant under every input and key assignment.
func TestConstSoundness(t *testing.T) {
	for name, c := range soundnessCircuits(t) {
		t.Run(name, func(t *testing.T) {
			p := compile(t, c)
			vals := dataflow.Run[int8](p, dataflow.NewConst(p), dataflow.Options{Workers: 1})
			concrete := make([]bool, p.NumNodes())
			forEachAssignment(t, p, func(pi, key []bool) {
				p.EvalInto(concrete, pi, key)
				for id, av := range vals {
					if av == dataflow.Unknown {
						continue
					}
					if concrete[id] != (av == 1) {
						t.Fatalf("node %d (%s): abstract constant %d, concrete %v under pi=%v key=%v",
							id, c.NameOf(id), av, concrete[id], pi, key)
					}
				}
			})
		})
	}
}

// TestPairSoundness checks the pair/key-difference domain against brute
// force, per key bit: V0/V1 must match the concrete value under the
// respective key-bit value whenever known, an Eq proof means the node
// never depends on the bit, and an Anti proof means the node flips with
// the bit under every assignment of everything else.
func TestPairSoundness(t *testing.T) {
	for name, c := range soundnessCircuits(t) {
		if c.NumKeys() == 0 {
			continue
		}
		t.Run(name, func(t *testing.T) {
			p := compile(t, c)
			d := dataflow.NewPair(p)
			base := dataflow.Run[dataflow.PairValue](p, d, dataflow.Options{Workers: 1})
			v0 := make([]bool, p.NumNodes())
			v1 := make([]bool, p.NumNodes())
			for kb, kid := range p.Keys {
				vals := make([]dataflow.PairValue, len(base))
				copy(vals, base)
				d.SetKey(kid)
				dataflow.Rerun[dataflow.PairValue](p, d, vals, kid)
				forEachAssignment(t, p, func(pi, key []bool) {
					if key[kb] {
						return // the pair tracks both values of bit kb itself
					}
					key[kb] = false
					p.EvalInto(v0, pi, key)
					key[kb] = true
					p.EvalInto(v1, pi, key)
					key[kb] = false
					for id, av := range vals {
						if av.V0 != dataflow.Unknown && v0[id] != (av.V0 == 1) {
							t.Fatalf("bit %d node %d (%s): V0=%d, concrete %v", kb, id, c.NameOf(id), av.V0, v0[id])
						}
						if av.V1 != dataflow.Unknown && v1[id] != (av.V1 == 1) {
							t.Fatalf("bit %d node %d (%s): V1=%d, concrete %v", kb, id, c.NameOf(id), av.V1, v1[id])
						}
						if av.Eq && v0[id] != v1[id] {
							t.Fatalf("bit %d node %d (%s): Eq proof but values differ under pi=%v key=%v",
								kb, id, c.NameOf(id), pi, key)
						}
						if av.Anti && v0[id] == v1[id] {
							t.Fatalf("bit %d node %d (%s): Anti proof but values agree under pi=%v key=%v",
								kb, id, c.NameOf(id), pi, key)
						}
					}
				})
			}
		})
	}
}

// TestRerunMatchesFreshRun pins the incremental solver against the full
// sweep: starting from the keyless pair fixpoint, a Rerun seeded at the
// key input must land on exactly the fixpoint a fresh Run computes with
// the key selected from the start.
func TestRerunMatchesFreshRun(t *testing.T) {
	for name, c := range soundnessCircuits(t) {
		if c.NumKeys() == 0 {
			continue
		}
		t.Run(name, func(t *testing.T) {
			p := compile(t, c)
			d := dataflow.NewPair(p)
			base := dataflow.Run[dataflow.PairValue](p, d, dataflow.Options{Workers: 1})
			for _, kid := range p.Keys {
				inc := make([]dataflow.PairValue, len(base))
				copy(inc, base)
				d.SetKey(kid)
				visited := dataflow.Rerun[dataflow.PairValue](p, d, inc, kid)
				fresh := dataflow.Run[dataflow.PairValue](p, d, dataflow.Options{Workers: 1})
				for id := range fresh {
					if !d.Equal(inc[id], fresh[id]) {
						t.Fatalf("key node %d, node %d (%s): Rerun %+v, fresh Run %+v",
							kid, id, c.NameOf(id), inc[id], fresh[id])
					}
				}
				// The visited cone is the key input's transitive fanout,
				// in topological order.
				for i := 1; i < len(visited); i++ {
					if p.Pos[visited[i-1]] >= p.Pos[visited[i]] {
						t.Fatalf("key node %d: visited out of topological order at %d", kid, i)
					}
				}
				d.SetKey(-1)
			}
		})
	}
}

// TestTaintMatchesTransitiveFanout pins the key-taint domain against
// the structural definition it abstracts: node n carries bit kb's taint
// exactly when n lies in the key input's transitive fanout.
func TestTaintMatchesTransitiveFanout(t *testing.T) {
	for name, c := range soundnessCircuits(t) {
		if c.NumKeys() == 0 {
			continue
		}
		t.Run(name, func(t *testing.T) {
			p := compile(t, c)
			taint := dataflow.Run[dataflow.KeySet](p, dataflow.NewKeyTaint(p), dataflow.Options{Workers: 1})
			for kb, kid := range p.Keys {
				cone := p.TransitiveFanout(int(kid))
				for id := range taint {
					if taint[id].Has(kb) != cone[id] {
						t.Fatalf("bit %d node %d (%s): taint %v, cone %v",
							kb, id, c.NameOf(id), taint[id].Has(kb), cone[id])
					}
				}
			}
		})
	}
}

// TestScoapHandValues pins the SCOAP domains on a hand-computed
// circuit: g = AND(a, b) driving the only output, plus a dangling
// buffer nobody observes.
func TestScoapHandValues(t *testing.T) {
	c := netlist.New("scoap")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	g := c.MustAddGate(netlist.And, "g", a, b)
	dead := c.MustAddGate(netlist.Buf, "dead", a)
	if err := c.MarkOutput(g); err != nil {
		t.Fatal(err)
	}
	p := compile(t, c)

	cc := dataflow.Run[dataflow.ControlValue](p, dataflow.NewControllability(p), dataflow.Options{Workers: 1})
	co := dataflow.Run[int32](p, dataflow.NewObservability(p, cc), dataflow.Options{Workers: 1})

	if cc[a] != (dataflow.ControlValue{CC0: 1, CC1: 1}) {
		t.Fatalf("cc[a] = %+v", cc[a])
	}
	// AND: CC0 = min(CC0 inputs)+1 = 2, CC1 = sum(CC1 inputs)+1 = 3.
	if cc[g] != (dataflow.ControlValue{CC0: 2, CC1: 3}) {
		t.Fatalf("cc[g] = %+v", cc[g])
	}
	if co[g] != 0 {
		t.Fatalf("co[g] = %d, want 0 at a primary output", co[g])
	}
	// Observing a through g costs CO(g) + CC1(b) + 1 = 2.
	if co[a] != 2 {
		t.Fatalf("co[a] = %d, want 2", co[a])
	}
	if co[dead] < dataflow.Unreachable {
		t.Fatalf("co[dead] = %d, want unreachable", co[dead])
	}
}

// TestScoapConstants pins the constant seeds: a constant's opposite
// value is unreachable.
func TestScoapConstants(t *testing.T) {
	c := netlist.New("scoap-const")
	a, _ := c.AddInput("a")
	k, _ := c.AddConst(false, "zero")
	g := c.MustAddGate(netlist.Or, "g", a, k)
	if err := c.MarkOutput(g); err != nil {
		t.Fatal(err)
	}
	p := compile(t, c)
	cc := dataflow.Run[dataflow.ControlValue](p, dataflow.NewControllability(p), dataflow.Options{Workers: 1})
	if cc[k].CC0 != 0 || cc[k].CC1 < dataflow.Unreachable {
		t.Fatalf("cc[const0] = %+v", cc[k])
	}
	// OR through a constant-0 side input stays controllable both ways.
	if cc[g].CC0 != 2 || cc[g].CC1 != 2 {
		t.Fatalf("cc[g] = %+v", cc[g])
	}
}

// workerDomains builds one instance of every shipped domain for p, each
// wrapped so the invariance and fuzz tests can treat them uniformly.
type domainCase struct {
	name string
	run  func(p *ir.Program, workers int) func(id int) string
}

// fingerprint renders one node's abstract value to a comparable string,
// letting heterogeneous value types share the invariance loop.
func workerCases() []domainCase {
	return []domainCase{
		{"const", func(p *ir.Program, w int) func(int) string {
			vals := dataflow.Run[int8](p, dataflow.NewConst(p), dataflow.Options{Workers: w})
			return func(id int) string { return fmt.Sprint(vals[id]) }
		}},
		{"pair", func(p *ir.Program, w int) func(int) string {
			d := dataflow.NewPair(p)
			if p.NumKeys() > 0 {
				d.SetKey(p.Keys[0])
			}
			vals := dataflow.Run[dataflow.PairValue](p, d, dataflow.Options{Workers: w})
			return func(id int) string { return fmt.Sprintf("%+v", vals[id]) }
		}},
		{"taint", func(p *ir.Program, w int) func(int) string {
			vals := dataflow.Run[dataflow.KeySet](p, dataflow.NewKeyTaint(p), dataflow.Options{Workers: w})
			return func(id int) string { return fmt.Sprint(vals[id].Bits()) }
		}},
		{"scoap", func(p *ir.Program, w int) func(int) string {
			cc := dataflow.Run[dataflow.ControlValue](p, dataflow.NewControllability(p), dataflow.Options{Workers: w})
			co := dataflow.Run[int32](p, dataflow.NewObservability(p, cc), dataflow.Options{Workers: w})
			return func(id int) string { return fmt.Sprintf("%+v/%d", cc[id], co[id]) }
		}},
	}
}

// TestRunWorkerInvariance asserts the fixpoint is bit-identical at any
// worker count for every shipped domain — the determinism contract the
// level sweep is built on.
func TestRunWorkerInvariance(t *testing.T) {
	l, err := lock.Weighted(circuits.RippleAdder(8), lock.WeightedOptions{
		KeyBits: 9, ControlWidth: 3, Rand: rng.New(21),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := compile(t, l.Circuit)
	for _, dc := range workerCases() {
		t.Run(dc.name, func(t *testing.T) {
			serial := dc.run(p, 1)
			parallel := dc.run(p, 8)
			for id := 0; id < p.NumNodes(); id++ {
				if s, par := serial(id), parallel(id); s != par {
					t.Fatalf("node %d: workers=1 %s, workers=8 %s", id, s, par)
				}
			}
		})
	}
}
