package dataflow

import (
	"math/bits"

	"orap/internal/ir"
)

// KeySet is a set of key-bit indices packed as a bit vector. The zero
// value is the empty set of any width; sets produced by one KeyTaint
// domain share a word width and may be compared with Equal.
type KeySet struct {
	w []uint64
}

// Has reports whether key bit kb is in the set.
func (s KeySet) Has(kb int) bool {
	word := kb >> 6
	if word >= len(s.w) {
		return false
	}
	return s.w[word]>>(uint(kb)&63)&1 != 0
}

// Count returns the number of key bits in the set.
func (s KeySet) Count() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set holds no key bits.
func (s KeySet) Empty() bool {
	for _, w := range s.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Bits returns the key-bit indices in the set, in increasing order.
func (s KeySet) Bits() []int {
	var out []int
	for wi, w := range s.w {
		for ; w != 0; w &= w - 1 {
			out = append(out, wi<<6+bits.TrailingZeros64(w))
		}
	}
	return out
}

// KeyTaint is the input-taint domain: the abstract value of a net is
// the set of tracked inputs with a structural path to it — the nets
// that carry values dependent on those inputs, an over-approximation
// of actual influence. Each tracked input seeds its own bit; gates
// union their fanins. Instantiated over the key inputs (NewKeyTaint) a
// primary output with a non-empty set is in some key bit's corruption
// cone; instantiated over every input (NewInputTaint with p.Inputs)
// the fixpoint is each net's full input support — which is how the
// audit's exact symbolic backend sizes a cone's BDD variable set
// before committing a node budget to it.
type KeyTaint struct {
	p     *ir.Program
	words int
	// bitOf maps a node ID to its tracked-input index, -1 for nodes
	// that seed nothing.
	bitOf []int32
}

// NewKeyTaint returns the taint domain tracking p's key inputs: set
// bit kb means key bit kb reaches the net.
func NewKeyTaint(p *ir.Program) *KeyTaint {
	return NewInputTaint(p, p.Keys)
}

// NewInputTaint returns the taint domain tracking an arbitrary input
// subset: set bit i means inputs[i] reaches the net. Passing p.Inputs
// tracks every input, so a solved value is the net's exact structural
// support (PI bits first, key bits after, mirroring the p.Inputs
// layout).
func NewInputTaint(p *ir.Program, inputs []int32) *KeyTaint {
	d := &KeyTaint{
		p:     p,
		words: (len(inputs) + 63) / 64,
		bitOf: make([]int32, p.NumNodes()),
	}
	for i := range d.bitOf {
		d.bitOf[i] = -1
	}
	for i, id := range inputs {
		d.bitOf[id] = int32(i)
	}
	return d
}

// Direction implements Domain.
func (d *KeyTaint) Direction() Direction { return Forward }

// Bottom implements Domain: the empty set.
func (d *KeyTaint) Bottom() KeySet { return KeySet{} }

// Join implements Domain: set union.
func (d *KeyTaint) Join(a, b KeySet) KeySet {
	if len(a.w) == 0 {
		return b
	}
	if len(b.w) == 0 {
		return a
	}
	out := make([]uint64, d.words)
	copy(out, a.w)
	for i, w := range b.w {
		out[i] |= w
	}
	return KeySet{w: out}
}

// Equal implements Domain.
func (d *KeyTaint) Equal(a, b KeySet) bool {
	for i := 0; i < d.words; i++ {
		var aw, bw uint64
		if i < len(a.w) {
			aw = a.w[i]
		}
		if i < len(b.w) {
			bw = b.w[i]
		}
		if aw != bw {
			return false
		}
	}
	return true
}

// Transfer implements Domain.
func (d *KeyTaint) Transfer(id int, get func(int) KeySet) KeySet {
	switch d.p.Ops[id] {
	case ir.OpInput:
		if kb := d.bitOf[id]; kb >= 0 {
			w := make([]uint64, d.words)
			w[kb>>6] = 1 << (uint(kb) & 63)
			return KeySet{w: w}
		}
		return KeySet{}
	case ir.OpConst0, ir.OpConst1:
		return KeySet{}
	}
	out := KeySet{}
	for _, f := range d.p.FaninSpan(id) {
		out = d.Join(out, get(int(f)))
	}
	return out
}
