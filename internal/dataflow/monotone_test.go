package dataflow_test

import (
	"testing"

	"orap/internal/circuits"
	"orap/internal/dataflow"
	"orap/internal/ir"
	"orap/internal/lock"
	"orap/internal/rng"
)

// The property behind the engine's exactness guarantee: every shipped
// domain's Transfer must be monotone with respect to its Join order,
//
//	A ⊑ B  (pointwise)  ⇒  Transfer(A) ⊑ Transfer(B),
//
// where a ⊑ b ⇔ Join(a, b) = b. The tests fuzz it the same way for
// every domain: draw a random consistent assignment A, degrade it
// pointwise into B[i] = Join(A[i], R[i]) with fresh random values R
// (so A ⊑ B by construction), and assert the transfer results satisfy
// Join(T(A)[id], T(B)[id]) = T(B)[id] at every node.

const fuzzRounds = 64

// monotoneProgram is the fuzz fixture: a weighted-locked adder mixing
// every opcode family, key material and reconvergence.
func monotoneProgram(t *testing.T) *ir.Program {
	t.Helper()
	l, err := lock.Weighted(circuits.RippleAdder(6), lock.WeightedOptions{
		KeyBits: 6, ControlWidth: 3, Rand: rng.New(31),
	})
	if err != nil {
		t.Fatal(err)
	}
	return compile(t, l.Circuit)
}

// checkMonotone runs the degradation fuzz for one domain given a
// generator of random consistent abstract values.
func checkMonotone[V any](t *testing.T, p *ir.Program, d dataflow.Domain[V], random func(r *rng.Stream) V) {
	t.Helper()
	r := rng.NewNamed(2020, "dataflow-monotone")
	n := p.NumNodes()
	for round := 0; round < fuzzRounds; round++ {
		a := make([]V, n)
		b := make([]V, n)
		for i := 0; i < n; i++ {
			a[i] = random(r)
			b[i] = d.Join(a[i], random(r))
		}
		getA := func(id int) V { return a[id] }
		getB := func(id int) V { return b[id] }
		for id := 0; id < n; id++ {
			ta := d.Transfer(id, getA)
			tb := d.Transfer(id, getB)
			if !d.Equal(d.Join(ta, tb), tb) {
				t.Fatalf("round %d node %d (%v): Transfer not monotone: T(A)=%+v T(B)=%+v join=%+v",
					round, id, p.Ops[id], ta, tb, d.Join(ta, tb))
			}
		}
	}
}

// randomTernary draws from the flat ternary lattice.
func randomTernary(r *rng.Stream) int8 {
	switch r.Intn(3) {
	case 0:
		return 0
	case 1:
		return 1
	}
	return dataflow.Unknown
}

func TestConstMonotone(t *testing.T) {
	p := monotoneProgram(t)
	checkMonotone[int8](t, p, dataflow.NewConst(p), randomTernary)
}

// randomPair draws a consistent pair value: when both ternary halves
// are known the proofs are forced by the values; otherwise Eq and Anti
// are free but mutually exclusive, and a half-known pair carries
// neither proof (no transfer or join produces such a proof, and the
// lattice order is only defined over consistent values).
func randomPair(r *rng.Stream) dataflow.PairValue {
	v := dataflow.PairValue{V0: randomTernary(r), V1: randomTernary(r)}
	switch {
	case v.V0 != dataflow.Unknown && v.V1 != dataflow.Unknown:
		v.Eq = v.V0 == v.V1
		v.Anti = v.V0 != v.V1
	case v.V0 == dataflow.Unknown && v.V1 == dataflow.Unknown:
		switch r.Intn(3) {
		case 0:
			v.Eq = true
		case 1:
			v.Anti = true
		}
	}
	return v
}

func TestPairMonotone(t *testing.T) {
	p := monotoneProgram(t)
	d := dataflow.NewPair(p)
	d.SetKey(p.Keys[0])
	checkMonotone[dataflow.PairValue](t, p, d, randomPair)
}

func TestKeyTaintMonotone(t *testing.T) {
	p := monotoneProgram(t)
	d := dataflow.NewKeyTaint(p)
	base := dataflow.Run[dataflow.KeySet](p, d, dataflow.Options{Workers: 1})
	// Random sets are drawn by joining a few solved taint values, which
	// keeps the word width consistent without exporting a constructor.
	random := func(r *rng.Stream) dataflow.KeySet {
		s := dataflow.KeySet{}
		for i := r.Intn(3); i >= 0; i-- {
			s = d.Join(s, base[r.Intn(len(base))])
		}
		return s
	}
	checkMonotone[dataflow.KeySet](t, p, d, random)
}

// randomScore draws a SCOAP score, occasionally saturated.
func randomScore(r *rng.Stream) int32 {
	if r.Intn(8) == 0 {
		return dataflow.Unreachable
	}
	return int32(r.Intn(1000))
}

func TestControllabilityMonotone(t *testing.T) {
	p := monotoneProgram(t)
	checkMonotone[dataflow.ControlValue](t, p, dataflow.NewControllability(p),
		func(r *rng.Stream) dataflow.ControlValue {
			return dataflow.ControlValue{CC0: randomScore(r), CC1: randomScore(r)}
		})
}

func TestObservabilityMonotone(t *testing.T) {
	p := monotoneProgram(t)
	cc := dataflow.Run[dataflow.ControlValue](p, dataflow.NewControllability(p), dataflow.Options{Workers: 1})
	checkMonotone[int32](t, p, dataflow.NewObservability(p, cc), randomScore)
}
