package dataflow

import "orap/internal/ir"

// Unknown is the top element of the ternary constant lattice
// {Unknown, 0, 1}: the node's value is not provably constant.
const Unknown = int8(-1)

// Const is the ternary constant-propagation domain. Const0/Const1
// nodes seed known values, the AND/OR families fold through absorbing
// inputs, and the degenerate two-input XOR/XNOR of one signal against
// itself folds regardless of the signal's value. A non-Unknown result
// proves the gate's output stuck at that constant for every input
// assignment — the fact behind check's const-out rule.
type Const struct {
	p *ir.Program
}

// NewConst returns the constant domain for p.
func NewConst(p *ir.Program) *Const { return &Const{p: p} }

// Direction implements Domain.
func (d *Const) Direction() Direction { return Forward }

// Bottom implements Domain. The ternary lattice is flat (0 and 1
// incomparable below Unknown), so the safe initial value is its top.
func (d *Const) Bottom() int8 { return Unknown }

// Join implements Domain: equal values join to themselves, anything
// else to Unknown.
func (d *Const) Join(a, b int8) int8 {
	if a == b {
		return a
	}
	return Unknown
}

// Equal implements Domain.
func (d *Const) Equal(a, b int8) bool { return a == b }

// Transfer implements Domain.
func (d *Const) Transfer(id int, get func(int) int8) int8 {
	switch d.p.Ops[id] {
	case ir.OpInput:
		return Unknown
	case ir.OpConst0:
		return 0
	case ir.OpConst1:
		return 1
	}
	return foldOp(d.p.Ops[id], d.p.FaninSpan(id), get)
}

// foldOp evaluates one gate over the ternary lattice. It is the single
// constant folder behind the Const and Pair domains (check's foldGate
// and audit's foldOp before the engine unified them), including the
// degenerate XOR(x, x)/XNOR(x, x) shapes that fold without knowing x.
func foldOp(op ir.Op, fanins []int32, get func(int) int8) int8 {
	switch op {
	case ir.OpBuf:
		return get(int(fanins[0]))
	case ir.OpNot:
		if v := get(int(fanins[0])); v != Unknown {
			return 1 - v
		}
		return Unknown
	case ir.OpAnd, ir.OpNand:
		out := int8(1)
		for _, f := range fanins {
			switch get(int(f)) {
			case 0:
				out = 0
			case Unknown:
				if out != 0 {
					out = Unknown
				}
			}
		}
		if out == Unknown {
			return Unknown
		}
		if op == ir.OpNand {
			return 1 - out
		}
		return out
	case ir.OpOr, ir.OpNor:
		out := int8(0)
		for _, f := range fanins {
			switch get(int(f)) {
			case 1:
				out = 1
			case Unknown:
				if out != 1 {
					out = Unknown
				}
			}
		}
		if out == Unknown {
			return Unknown
		}
		if op == ir.OpNor {
			return 1 - out
		}
		return out
	case ir.OpXor, ir.OpXnor:
		// Degenerate shape: x XOR x is 0 (x XNOR x is 1) whatever x is.
		if len(fanins) == 2 && fanins[0] == fanins[1] {
			if op == ir.OpXor {
				return 0
			}
			return 1
		}
		parity := int8(0)
		for _, f := range fanins {
			v := get(int(f))
			if v == Unknown {
				return Unknown
			}
			parity ^= v
		}
		if op == ir.OpXnor {
			return 1 - parity
		}
		return parity
	}
	return Unknown
}
