package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The interprocedural secret-flow engine behind the nosecret rule.
//
// Per function the engine computes a taint summary: which inputs
// (receiver + parameters) reach an output sink if they carry key
// material, and whether any input or intrinsic source reaches the
// function's results. Summaries are solved to a fixpoint over the
// module's call graph (direct calls, method calls on concrete types,
// closures bound to single-assignment locals), so a key bit that takes
// two hops through helpers is still caught — with a witness chain.
//
// Taint is "must" at variable granularity: a local is tainted only if
// every rebinding write is tainted (a reassigned local provably no
// longer holds the key), while element/accumulator writes (x[i] = …,
// x = append(x, …)) accumulate. Taint never crosses scalar types —
// len(key), a width, a popcount are sanctioned derived values (the
// internal/redact philosophy) — and never rides error values, which is
// the fmt.Errorf exemption generalized.

const (
	// intrinsicBit marks value-carried key material: the expression was
	// built from a key source and stays tainted through assignments and
	// calls. typeSrcBit marks type-carried material — the expression's
	// own static type embeds a source (a gf2.Vec, a key-holding struct).
	// The two differ at field selection: a non-secret field read off a
	// key-holding struct drops the type taint (l.Circuit off a
	// lock.Locked is clean), while value taint survives. typeSrcBit
	// never needs interprocedural propagation because every expression's
	// own type is re-classified where it appears.
	intrinsicBit = uint64(1) << 63
	typeSrcBit   = uint64(1) << 62
	anySrc       = intrinsicBit | typeSrcBit
	inputMask    = typeSrcBit - 1
	maxInputBit  = 61
	maxChainHops = 12
	maxChains    = 8
	maxRounds    = 10
)

// printFamily is the fmt and log output surface covered by nosecret:
// every call that renders its arguments somewhere a developer might
// leave enabled in production, including the standard logger and its
// method set. fmt.Errorf is deliberately absent — wrapping key material
// into an error for the caller to redact is the sanctioned pattern.
var printFamily = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"fmt.Sprint": true, "fmt.Sprintf": true, "fmt.Sprintln": true,

	"log.Print": true, "log.Printf": true, "log.Println": true,
	"log.Fatal": true, "log.Fatalf": true, "log.Fatalln": true,
	"log.Panic": true, "log.Panicf": true, "log.Panicln": true,

	"(*log.Logger).Print": true, "(*log.Logger).Printf": true, "(*log.Logger).Println": true,
	"(*log.Logger).Fatal": true, "(*log.Logger).Fatalf": true, "(*log.Logger).Fatalln": true,
	"(*log.Logger).Panic": true, "(*log.Logger).Panicf": true, "(*log.Logger).Panicln": true,
}

// funcNode is one module function in the flow engine's call graph.
type funcNode struct {
	p         *vetPkg
	decl      *ast.FuncDecl
	obj       *types.Func
	inputs    []types.Object // receiver (if any) then parameters
	hasRecv   bool
	sanitizer bool
	sum       *summary
	sc        *scope // cached write/return structure of the body
}

// relName renders the function name package-qualified, with the
// receiver type for methods: "flow.relay", "flow.holder.show".
func (n *funcNode) relName() string {
	pkg := n.p.pkg.Name()
	if n.hasRecv {
		recv := n.obj.Type().(*types.Signature).Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + n.obj.Name()
		}
	}
	return pkg + "." + n.obj.Name()
}

// chain is a witness-chain suffix stored in summaries: the hops from a
// function input to a sink, excluding the caller's side.
type chain []Hop

// summary is a function's taint summary.
type summary struct {
	sinks     map[int][]chain // input index -> sink chains
	flows     uint64          // input bits whose taint reaches a result
	intrinsic bool            // some result carries key material unconditionally
	intOrigin *origin
}

func newSummary() *summary { return &summary{sinks: map[int][]chain{}} }

func (s *summary) equal(t *summary) bool {
	if s == nil || t == nil {
		return s == t
	}
	if s.flows != t.flows || s.intrinsic != t.intrinsic || len(s.sinks) != len(t.sinks) {
		return false
	}
	for j, cs := range s.sinks {
		ts := t.sinks[j]
		if len(cs) != len(ts) {
			return false
		}
		for i := range cs {
			if len(cs[i]) != len(ts[i]) || cs[i][0].Pos != ts[i][0].Pos ||
				cs[i][len(cs[i])-1].Pos != ts[i][len(ts[i])-1].Pos {
				return false
			}
		}
	}
	return true
}

// srcKind classifies why a value is a source, which picks the finding's
// message form.
type srcKind int

const (
	srcName    srcKind = iota // key-named []bool variable or field
	srcVec                    // gf2.Vec, by type
	srcStruct                 // struct embedding key material, by type
	srcDerived                // produced by a callee's tainted result
)

// origin records where key material entered a flow.
type origin struct {
	kind  srcKind
	name  string // short name for messages ("Key", "cfg.Key")
	field string // offending field path, for srcStruct
	typ   string // rendered type, for srcStruct
	pos   token.Pos
}

func (o *origin) desc() string {
	switch o.kind {
	case srcVec:
		return fmt.Sprintf("gf2.Vec value %s", o.name)
	case srcStruct:
		return fmt.Sprintf("%s value %s (field %s holds key material)", o.typ, o.name, o.field)
	case srcDerived:
		return fmt.Sprintf("key material derived from %s", o.name)
	}
	return fmt.Sprintf("key bits %s", o.name)
}

// write is one recorded write to a tracked object.
type write struct {
	rhs    ast.Expr // expression whose taint flows in (nil -> fixed)
	fixed  uint64
	update bool // element/field/accumulator write: OR instead of AND
}

// scope is the cached per-function structure the mask fixpoint runs
// over: every write to every local (closure bodies included, sharing
// the enclosing function's environment), the closure bindings, and the
// return expressions.
type scope struct {
	a    *analyzer
	p    *vetPkg
	node *funcNode

	writes     map[types.Object][]write
	order      []types.Object // deterministic fixpoint order
	inputBit   map[types.Object]int
	localLits  map[types.Object]*ast.FuncLit
	litReturns map[*ast.FuncLit][]ast.Expr
	returns    []ast.Expr // top-level return expressions
	bareReturn bool
	named      []types.Object // named results, read by bare returns

	masks   map[types.Object]uint64
	origins map[types.Object]*origin
	inOrig  map[types.Object]bool // recursion guard for originOf
}

// ---------------------------------------------------------------------
// Index construction

// indexFuncs registers every FuncDecl in internal/ packages as a call
// graph node. cmd/ packages are not analyzed: the cmd layer is the
// sanctioned place to print (it is where orapattack reports a recovered
// key), exactly as under the previous syntactic rule.
func (a *analyzer) indexFuncs() {
	for _, p := range a.loaded() {
		if !p.inInternal() {
			continue
		}
		for _, f := range p.files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{p: p, decl: fd, obj: obj, sum: newSummary(), sanitizer: isSanitizer(p, fd)}
				sig := obj.Type().(*types.Signature)
				if r := sig.Recv(); r != nil {
					n.hasRecv = true
					n.inputs = append(n.inputs, r)
				}
				for i := 0; i < sig.Params().Len(); i++ {
					n.inputs = append(n.inputs, sig.Params().At(i))
				}
				a.funcs[obj] = n
				a.fnOrder = append(a.fnOrder, n)
			}
		}
	}
}

// isSanitizer reports whether a function is a sanctioned key formatter:
// anything in an internal/redact package, or carrying an explicit
// //vet:sanitizer directive.
func isSanitizer(p *vetPkg, fd *ast.FuncDecl) bool {
	if strings.HasSuffix(p.path, "/internal/redact") {
		return true
	}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.TrimSpace(c.Text) == "//vet:sanitizer" {
				return true
			}
		}
	}
	return false
}

// runTaint solves the summaries to a fixpoint (Gauss–Seidel over the
// deterministic function order), then re-walks every function once to
// emit findings against the converged summaries.
func (a *analyzer) runTaint() {
	a.indexFuncs()
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, n := range a.fnOrder {
			ns := a.analyzeFn(n, false)
			if !ns.equal(n.sum) {
				changed = true
			}
			n.sum = ns
		}
		if !changed {
			break
		}
	}
	for _, n := range a.fnOrder {
		a.analyzeFn(n, true)
	}
}

// ---------------------------------------------------------------------
// Per-function analysis

func (a *analyzer) analyzeFn(n *funcNode, emit bool) *summary {
	if n.sc == nil {
		n.sc = a.collect(n)
	}
	sc := n.sc
	sc.solve()
	return sc.walkSinks(emit)
}

// collect builds the write environment of one function body: input
// seeds, every assignment (classified rebind vs update), closure
// bindings and returns.
func (a *analyzer) collect(n *funcNode) *scope {
	sc := &scope{
		a: a, p: n.p, node: n,
		writes:     map[types.Object][]write{},
		inputBit:   map[types.Object]int{},
		localLits:  map[types.Object]*ast.FuncLit{},
		litReturns: map[*ast.FuncLit][]ast.Expr{},
	}
	for i, in := range n.inputs {
		b := i
		if b > maxInputBit {
			b = maxInputBit
		}
		sc.inputBit[in] = b
		sc.addWrite(in, write{fixed: uint64(1) << b})
	}
	if res := n.decl.Type.Results; res != nil {
		for _, f := range res.List {
			for _, name := range f.Names {
				if obj := n.p.info.Defs[name]; obj != nil {
					sc.named = append(sc.named, obj)
				}
			}
		}
	}

	// Track FuncLit nesting so returns attribute to the right unit.
	var lits []*ast.FuncLit
	innermostLit := func(pos token.Pos) *ast.FuncLit {
		var best *ast.FuncLit
		for _, l := range lits {
			if l.Body.Pos() <= pos && pos <= l.Body.End() {
				if best == nil || (best.Pos() <= l.Pos() && l.End() <= best.End()) {
					best = l
				}
			}
		}
		return best
	}
	ast.Inspect(n.decl.Body, func(m ast.Node) bool {
		if l, ok := m.(*ast.FuncLit); ok {
			lits = append(lits, l)
		}
		return true
	})

	writeCount := map[types.Object]int{}
	litCandidate := map[types.Object]*ast.FuncLit{}
	ast.Inspect(n.decl.Body, func(m ast.Node) bool {
		switch st := m.(type) {
		case *ast.AssignStmt:
			paired := len(st.Lhs) == len(st.Rhs)
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if paired {
					rhs = st.Rhs[i]
				} else {
					rhs = st.Rhs[0] // tuple: every lhs gets the call's mask
				}
				sc.recordAssign(lhs, rhs, writeCount, litCandidate, st.Tok == token.DEFINE)
			}
		case *ast.RangeStmt:
			if obj := sc.lhsObject(st.Key); obj != nil {
				sc.addWrite(obj, write{})
				writeCount[obj]++
			}
			if st.Value != nil {
				if obj := sc.lhsObject(st.Value); obj != nil {
					// An element of a tainted container is tainted.
					sc.addWrite(obj, write{rhs: st.X})
					writeCount[obj]++
				}
			}
		case *ast.IncDecStmt:
			if obj := sc.lhsObject(st.X); obj != nil {
				sc.addWrite(obj, write{})
				writeCount[obj]++
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				obj := sc.p.info.Defs[name]
				if obj == nil || name.Name == "_" {
					continue
				}
				if i < len(st.Values) {
					sc.addWrite(obj, write{rhs: st.Values[i]})
				} else {
					sc.addWrite(obj, write{})
				}
				writeCount[obj]++
			}
		case *ast.ReturnStmt:
			if lit := innermostLit(st.Pos()); lit != nil {
				sc.litReturns[lit] = append(sc.litReturns[lit], st.Results...)
			} else {
				if len(st.Results) == 0 {
					sc.bareReturn = true
				}
				sc.returns = append(sc.returns, st.Results...)
			}
		}
		return true
	})

	// Single-assignment locals bound to closures become call targets.
	for obj, lit := range litCandidate {
		if writeCount[obj] == 1 {
			sc.localLits[obj] = lit
		}
	}
	// Bind call-site arguments into closure parameters (may-taint:
	// one tainted caller taints the parameter).
	ast.Inspect(n.decl.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		var lit *ast.FuncLit
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if obj := sc.p.info.Uses[fun]; obj != nil {
				lit = sc.localLits[obj]
			}
		case *ast.FuncLit:
			lit = fun // immediately invoked
		}
		if lit == nil {
			return true
		}
		var params []types.Object
		for _, f := range lit.Type.Params.List {
			for _, name := range f.Names {
				if obj := sc.p.info.Defs[name]; obj != nil {
					params = append(params, obj)
				}
			}
		}
		for i, arg := range call.Args {
			if len(params) == 0 {
				break
			}
			j := i
			if j >= len(params) {
				j = len(params) - 1
			}
			sc.addWrite(params[j], write{rhs: arg, update: true})
		}
		return true
	})
	return sc
}

func (sc *scope) addWrite(obj types.Object, w write) {
	if _, ok := sc.writes[obj]; !ok {
		sc.order = append(sc.order, obj)
	}
	sc.writes[obj] = append(sc.writes[obj], w)
}

// recordAssign classifies one assignment target. Direct identifier
// writes are rebinds unless the RHS reads the identifier itself
// (x = append(x, …)); element and field writes (x[i] = …, s.f = …)
// are always accumulating updates against the base object.
func (sc *scope) recordAssign(lhs, rhs ast.Expr, writeCount map[types.Object]int, litCandidate map[types.Object]*ast.FuncLit, define bool) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := sc.lhsObject(l)
		if obj == nil {
			return
		}
		writeCount[obj]++
		if define {
			if lit, ok := rhs.(*ast.FuncLit); ok {
				litCandidate[obj] = lit
			}
		}
		sc.addWrite(obj, write{rhs: rhs, update: sc.readsObject(rhs, obj)})
	case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr, *ast.ParenExpr:
		base := baseIdent(lhs)
		if base == nil {
			return
		}
		obj := sc.lhsObject(base)
		if obj == nil {
			return
		}
		writeCount[obj]++
		sc.addWrite(obj, write{rhs: rhs, update: true})
	}
}

func (sc *scope) lhsObject(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := sc.p.info.Defs[id]; obj != nil {
		return obj
	}
	return sc.p.info.Uses[id]
}

func (sc *scope) readsObject(e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && sc.p.info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// solve iterates the object masks to a (bounded) fixpoint:
// mask = AND(rebind writes) | OR(update writes), gated to zero on
// types that cannot carry key material.
func (sc *scope) solve() {
	sc.masks = map[types.Object]uint64{}
	sc.origins = map[types.Object]*origin{}
	sc.inOrig = map[types.Object]bool{}
	for iter := 0; iter < 16; iter++ {
		changed := false
		for _, obj := range sc.order {
			if !sc.a.capableType(obj.Type()) {
				continue
			}
			var and uint64 = ^uint64(0)
			var or uint64
			hasRebind := false
			for _, w := range sc.writes[obj] {
				m := sc.writeMask(w)
				if w.update {
					or |= m
				} else {
					and &= m
					hasRebind = true
				}
			}
			nm := or
			if hasRebind {
				nm |= and
			}
			if sc.masks[obj] != nm {
				sc.masks[obj] = nm
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func (sc *scope) writeMask(w write) uint64 {
	if w.rhs == nil {
		return w.fixed
	}
	return w.fixed | sc.exprMask(w.rhs, 0)
}

// ---------------------------------------------------------------------
// Expression taint

// capableType reports whether a type can carry key material at all.
// Scalars cannot: len(key), a Hamming weight, one derived count are the
// sanctioned redact-style outputs. Errors cannot: that is the
// fmt.Errorf exemption. Strings, slices, structs, pointers, interfaces
// and maps can.
func (a *analyzer) capableType(t types.Type) bool {
	if t == nil {
		return true
	}
	if types.Identical(t, types.Universe.Lookup("error").Type()) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Signature, *types.Chan:
		return false
	}
	return true
}

func (sc *scope) typeOf(e ast.Expr) types.Type {
	if tv, ok := sc.p.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// exprMask computes an expression's taint mask: which function inputs
// it depends on (bits 0..62) and whether it carries key material
// unconditionally (the intrinsic bit).
func (sc *scope) exprMask(e ast.Expr, depth int) uint64 {
	if e == nil || depth > 32 {
		return 0
	}
	t := sc.typeOf(e)
	if t != nil && !sc.a.capableType(t) {
		return 0
	}
	var m uint64
	// Type-based sources: gf2.Vec values, lfsr state, and any struct
	// embedding either or a key-named []bool field.
	if t != nil && (sc.a.isGF2Vec(t) || sc.a.secretField(t) != "") {
		m |= typeSrcBit
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := sc.p.info.Uses[e]; obj != nil {
			m |= sc.masks[obj]
		} else if obj := sc.p.info.Defs[e]; obj != nil {
			m |= sc.masks[obj]
		}
		if isBoolSlice(t) && keyish(e.Name) {
			m |= intrinsicBit
		}
	case *ast.SelectorExpr:
		if sel := sc.p.info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			// A field read drops the base's type taint: the field's own
			// type was classified above. When the base's type is itself
			// secret-bearing, its value taint is carried by its secret
			// fields, so a selected field answers for itself too —
			// l.Circuit off a lock.Locked{Circuit, Key} is clean, l.Key
			// re-taints by name. Value taint smuggled into a struct the
			// engine cannot blame on a declared field (holder{bits: key})
			// survives selection.
			bm := sc.exprMask(e.X, depth+1) &^ typeSrcBit
			if xt := sc.typeOf(e.X); xt != nil && sc.a.secretField(xt) != "" {
				bm &^= intrinsicBit
			}
			m |= bm
		} else if obj := sc.p.info.Uses[e.Sel]; obj != nil {
			m |= sc.masks[obj] // qualified identifier (pkg.Var)
		}
		if isBoolSlice(t) && keyish(e.Sel.Name) {
			m |= intrinsicBit
		}
	case *ast.IndexExpr:
		m |= sc.exprMask(e.X, depth+1) | sc.exprMask(e.Index, depth+1)
	case *ast.SliceExpr:
		m |= sc.exprMask(e.X, depth+1)
	case *ast.StarExpr:
		m |= sc.exprMask(e.X, depth+1)
	case *ast.ParenExpr:
		m |= sc.exprMask(e.X, depth+1)
	case *ast.UnaryExpr:
		m |= sc.exprMask(e.X, depth+1)
	case *ast.TypeAssertExpr:
		m |= sc.exprMask(e.X, depth+1)
	case *ast.BinaryExpr:
		if t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				m |= sc.exprMask(e.X, depth+1) | sc.exprMask(e.Y, depth+1)
			}
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			m |= sc.exprMask(elt, depth+1)
		}
	case *ast.CallExpr:
		m |= sc.callMask(e, depth)
	}
	return m
}

// callMask computes the taint of a call's results: conversions and
// append propagate, sanitizers clear, module functions apply their
// flow summary, everything else (the untracked standard library) stops
// taint.
func (sc *scope) callMask(call *ast.CallExpr, depth int) uint64 {
	if tv, ok := sc.p.info.Types[call.Fun]; ok {
		if tv.IsType() { // conversion
			if len(call.Args) == 1 {
				return sc.exprMask(call.Args[0], depth+1)
			}
			return 0
		}
		if tv.IsBuiltin() {
			if name := builtinName(call.Fun); name == "append" {
				var m uint64
				for _, a := range call.Args {
					m |= sc.exprMask(a, depth+1)
				}
				return m
			}
			return 0
		}
	}
	// The sprint family returns its arguments rendered: taint passes
	// straight through (the call is also a sink in its own right).
	if full := callFullName(sc.p, call); full == "fmt.Sprint" || full == "fmt.Sprintf" || full == "fmt.Sprintln" {
		var m uint64
		for _, a := range call.Args {
			m |= sc.exprMask(a, depth+1)
		}
		return m
	}
	// Closure bound to a single-assignment local: its returns.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj := sc.p.info.Uses[id]; obj != nil {
			if lit := sc.localLits[obj]; lit != nil {
				var m uint64
				for _, r := range sc.litReturns[lit] {
					m |= sc.exprMask(r, depth+1)
				}
				return m
			}
		}
	}
	node := sc.a.calleeNode(sc.p, call)
	if node == nil || node.sanitizer {
		return 0
	}
	var m uint64
	if node.sum.intrinsic {
		m |= intrinsicBit
	}
	for _, b := range sc.a.bindArgs(node, call) {
		if node.sum.flows&(uint64(1)<<uint(min(b.input, maxInputBit))) != 0 {
			m |= sc.exprMask(b.arg, depth+1)
		}
	}
	return m
}

func builtinName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return builtinName(e.X)
	}
	return ""
}

// calleeNode resolves a call to its module funcNode (nil for stdlib,
// interface calls, and anything else unresolvable).
func (a *analyzer) calleeNode(p *vetPkg, call *ast.CallExpr) *funcNode {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
			continue
		case *ast.IndexExpr:
			fun = f.X // generic instantiation f[T](…)
			continue
		case *ast.IndexListExpr:
			fun = f.X
			continue
		}
		break
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = p.info.Uses[f]
	case *ast.SelectorExpr:
		obj = p.info.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return a.funcs[fn.Origin()]
}

// binding maps one caller argument expression to a callee input index.
type binding struct {
	input int
	arg   ast.Expr
}

func (a *analyzer) bindArgs(node *funcNode, call *ast.CallExpr) []binding {
	var out []binding
	off := 0
	if node.hasRecv {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			out = append(out, binding{0, sel.X})
		}
		off = 1
	}
	nParams := len(node.inputs) - off
	if nParams <= 0 {
		return out
	}
	for i, arg := range call.Args {
		j := i
		if j >= nParams {
			j = nParams - 1 // variadic tail
		}
		out = append(out, binding{off + j, arg})
	}
	return out
}

// ---------------------------------------------------------------------
// Sources: naming, types, origins

func keyish(name string) bool {
	return strings.Contains(strings.ToLower(name), "key")
}

func isBoolSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func (a *analyzer) isGF2Vec(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == a.modPath+"/internal/gf2" && named.Obj().Name() == "Vec"
}

// secretField returns the path of the first field embedding key
// material in (a pointer/slice/array of) a struct type — a gf2.Vec
// field (which covers lfsr.LFSR's state) or a key-named []bool field,
// recursively — or "" when the type is clean.
func (a *analyzer) secretField(t types.Type) string {
	return a.secretFieldRec(t, 0, map[types.Type]bool{})
}

func (a *analyzer) secretFieldRec(t types.Type, depth int, seen map[types.Type]bool) string {
	if t == nil || depth > 4 || seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return a.secretFieldRec(u.Elem(), depth, seen)
	case *types.Slice:
		return a.secretFieldRec(u.Elem(), depth+1, seen)
	case *types.Array:
		return a.secretFieldRec(u.Elem(), depth+1, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			switch {
			case a.isGF2Vec(f.Type()):
				return f.Name()
			case isBoolSlice(f.Type()) && keyish(f.Name()):
				return f.Name()
			}
			if _, isStruct := f.Type().Underlying().(*types.Struct); isStruct || isPointerToStruct(f.Type()) {
				if sub := a.secretFieldRec(f.Type(), depth+1, seen); sub != "" {
					return f.Name() + "." + sub
				}
			}
		}
	}
	return ""
}

func isPointerToStruct(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	_, ok = p.Elem().Underlying().(*types.Struct)
	return ok
}

// typeStr renders a type package-qualified ("scan.Config").
func typeStr(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// originOfExpr explains why an expression carries key material: the
// most specific source it can trace (a tainted local's recorded origin,
// a key-named field read, a flowing call argument), falling back to the
// type-based classification. Returns nil when no origin is traceable.
func (sc *scope) originOfExpr(e ast.Expr, depth int) *origin {
	if e == nil || depth > 16 {
		return nil
	}
	t := sc.typeOf(e)
	switch x := e.(type) {
	case *ast.Ident:
		if obj := sc.p.info.Uses[x]; obj != nil {
			if o := sc.originOf(obj, depth); o != nil {
				return o
			}
		}
		if isBoolSlice(t) && keyish(x.Name) {
			return &origin{kind: srcName, name: x.Name, pos: e.Pos()}
		}
	case *ast.SelectorExpr:
		if isBoolSlice(t) && keyish(x.Sel.Name) {
			return &origin{kind: srcName, name: x.Sel.Name, pos: e.Pos()}
		}
		if sel := sc.p.info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			if o := sc.originOfExpr(x.X, depth+1); o != nil {
				return o
			}
		}
	case *ast.ParenExpr:
		return sc.originOfExpr(x.X, depth+1)
	case *ast.StarExpr:
		return sc.originOfExpr(x.X, depth+1)
	case *ast.UnaryExpr:
		return sc.originOfExpr(x.X, depth+1)
	case *ast.IndexExpr:
		if o := sc.originOfExpr(x.X, depth+1); o != nil {
			return o
		}
		return sc.originOfExpr(x.Index, depth+1)
	case *ast.SliceExpr:
		return sc.originOfExpr(x.X, depth+1)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if sc.exprMask(elt, 0)&anySrc != 0 {
				if o := sc.originOfExpr(elt, depth+1); o != nil {
					return o
				}
			}
		}
	case *ast.CallExpr:
		node := sc.a.calleeNode(sc.p, x)
		if node == nil {
			// Conversions, builtins, and pass-through stdlib calls (the
			// sprint family): the origin is whichever argument carries it.
			for _, arg := range x.Args {
				if sc.exprMask(arg, 0)&anySrc != 0 {
					if o := sc.originOfExpr(arg, depth+1); o != nil {
						return o
					}
				}
			}
			break
		}
		{
			for _, b := range sc.a.bindArgs(node, x) {
				if node.sum.flows&(uint64(1)<<uint(min(b.input, maxInputBit))) == 0 {
					continue
				}
				if sc.exprMask(b.arg, 0)&anySrc != 0 {
					if o := sc.originOfExpr(b.arg, depth+1); o != nil {
						return o
					}
				}
			}
			if node.sum.intrinsic {
				if o := node.sum.intOrigin; o != nil {
					return o
				}
				return &origin{kind: srcDerived, name: node.relName() + "()", pos: x.Pos()}
			}
		}
	}
	// Type-based fallbacks.
	if t != nil {
		if sc.a.isGF2Vec(t) {
			return &origin{kind: srcVec, name: types.ExprString(e), pos: e.Pos()}
		}
		if f := sc.a.secretField(t); f != "" {
			return &origin{kind: srcStruct, name: types.ExprString(e), field: f, typ: typeStr(t), pos: e.Pos()}
		}
	}
	return nil
}

// originOf resolves the recorded origin of a tainted object: the first
// write whose value carries the intrinsic bit.
func (sc *scope) originOf(obj types.Object, depth int) *origin {
	if o, ok := sc.origins[obj]; ok {
		return o
	}
	if sc.inOrig[obj] || depth > 16 {
		return nil
	}
	sc.inOrig[obj] = true
	defer func() { sc.inOrig[obj] = false }()
	for _, w := range sc.writes[obj] {
		if w.rhs == nil {
			continue
		}
		if sc.exprMask(w.rhs, 0)&anySrc != 0 {
			if o := sc.originOfExpr(w.rhs, depth+1); o != nil {
				sc.origins[obj] = o
				return o
			}
		}
	}
	sc.origins[obj] = nil
	return nil
}
