package vet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// analyzer parses and typechecks the module's packages on demand and
// accumulates findings. Module packages are resolved from the source
// tree; standard-library imports are delegated to the go/importer
// source importer. Test files are parsed but never typechecked
// (external _test packages would need the full go test harness); the
// only test-file rule is syntactic.
type analyzer struct {
	fset     *token.FileSet
	modRoot  string
	modPath  string
	stdlib   types.Importer
	pkgs     map[string]*vetPkg
	order    []string // load order of module package paths
	findings []Finding

	// Secret-flow engine state; see taint.go.
	funcs   map[*types.Func]*funcNode
	fnOrder []*funcNode
}

type vetPkg struct {
	path      string
	files     []*ast.File
	testFiles []*ast.File
	pkg       *types.Package
	info      *types.Info
	err       error
}

// inInternal reports whether the package lives under internal/ — the
// scope of the norand, nowalltime and nosecret rules.
func (p *vetPkg) inInternal() bool {
	return strings.Contains(p.path+"/", "/internal/")
}

func newAnalyzer(modRoot, modPath string) *analyzer {
	a := &analyzer{
		fset:    token.NewFileSet(),
		modRoot: modRoot,
		modPath: modPath,
		pkgs:    map[string]*vetPkg{},
		funcs:   map[*types.Func]*funcNode{},
	}
	a.stdlib = importer.ForCompiler(a.fset, "source", nil)
	return a
}

// loadAll loads every package under ./internal/... and ./cmd/...,
// returning the first load error (nil when everything typechecks).
func (a *analyzer) loadAll() error {
	var paths []string
	for _, sub := range []string{"internal", "cmd"} {
		paths = append(paths, a.packagesUnder(sub)...)
	}
	var firstErr error
	for _, path := range paths {
		if _, err := a.load(path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// loaded returns the successfully loaded module packages in load order.
func (a *analyzer) loaded() []*vetPkg {
	var out []*vetPkg
	for _, path := range a.order {
		if p := a.pkgs[path]; p.err == nil {
			out = append(out, p)
		}
	}
	return out
}

// packagesUnder lists the import paths of the Go packages below a
// module subdirectory, skipping testdata trees.
func (a *analyzer) packagesUnder(sub string) []string {
	seen := map[string]bool{}
	var paths []string
	root := filepath.Join(a.modRoot, sub)
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		rel, err := filepath.Rel(a.modRoot, filepath.Dir(path))
		if err != nil {
			return nil
		}
		ip := a.modPath + "/" + filepath.ToSlash(rel)
		if !seen[ip] {
			seen[ip] = true
			paths = append(paths, ip)
		}
		return nil
	})
	sort.Strings(paths)
	return paths
}

// Import resolves an import path for the typechecker: module-local
// packages load from the source tree, everything else from the
// standard library.
func (a *analyzer) Import(path string) (*types.Package, error) {
	if path == a.modPath || strings.HasPrefix(path, a.modPath+"/") {
		p, err := a.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return a.stdlib.Import(path)
}

// load parses and typechecks one module package, memoized. Comments are
// kept so sanitizer directives (//vet:sanitizer) are visible.
func (a *analyzer) load(path string) (*vetPkg, error) {
	if p, ok := a.pkgs[path]; ok {
		return p, p.err
	}
	p := &vetPkg{path: path}
	a.pkgs[path] = p
	a.order = append(a.order, path)
	dir := filepath.Join(a.modRoot, filepath.FromSlash(strings.TrimPrefix(path, a.modPath+"/")))
	entries, err := os.ReadDir(dir)
	if err != nil {
		p.err = fmt.Errorf("orapvet: %s: %w", path, err)
		return p, p.err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		file, err := parser.ParseFile(a.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			p.err = err
			return p, p.err
		}
		if strings.HasSuffix(e.Name(), "_test.go") {
			p.testFiles = append(p.testFiles, file)
		} else {
			p.files = append(p.files, file)
		}
	}
	if len(p.files) == 0 {
		p.err = fmt.Errorf("orapvet: %s: no Go files", path)
		return p, p.err
	}
	p.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: a}
	p.pkg, err = conf.Check(path, a.fset, p.files, p.info)
	if err != nil {
		p.err = err
		return p, p.err
	}
	return p, nil
}

func (a *analyzer) report(pos token.Pos, rule, format string, args ...interface{}) {
	a.findings = append(a.findings, Finding{
		Pos:  a.fset.Position(pos),
		Rule: rule,
		Sev:  severityOf(rule),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
