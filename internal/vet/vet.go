// Package vet implements the repository's own static analyzer: the
// cross-package invariants the compiler cannot check but the
// experiments and the threat model depend on. cmd/orapvet is a thin
// driver over this package.
//
// Two layers of rules run over one shared load of the module
// (./internal/... and ./cmd/..., parsed and typechecked with go/types):
//
// Syntactic and type-resolved rules, one function or file at a time:
//
//	norand        no math/rand in internal/ (use internal/rng)
//	nowalltime    no time.Now / time.Since in internal/
//	clonerelease  every sim.Parallel.Clone dominated by a Release or
//	              defer Release on every path to the function exit
//	irmutate      no ir.Program field writes outside internal/ir
//	shortrace     goroutine-spawning tests must not skip under -short
//
// And the interprocedural secret-flow engine behind nosecret: the
// module's call graph is built over go/types (direct calls, method
// calls on concrete types, closures), and per-function taint summaries
// — which parameters, receivers and results carry key material — are
// computed to a fixpoint, so a key bit that travels through a helper
// call, a struct field or a closure capture is still caught at the
// print. This is the codebase-level mirror of the paper's argument:
// the oracle's key material is the asset, and a key that leaks into a
// log through one level of indirection is as gone as one read off an
// unprotected scan chain.
//
//	sources     scan.Config.Key and any key-named []bool field or
//	            variable; gf2.Vec values (type-based); lfsr state and
//	            any struct embedding either (scan.Chip, lock.Locked, …)
//	sanitizers  internal/redact formatters (//vet:sanitizer directive,
//	            or any function in an internal/redact package)
//	sinks       the fmt and log print families, os.Stdout/os.Stderr
//	            writes, and struct values whose fields embed a source
//
// Findings from the flow engine carry a witness chain — source,
// intermediate calls, sink, each with a position — mirroring
// orapaudit -explain's key-to-anchor witness paths.
package vet

import (
	"fmt"
	"go/token"
	"sort"
)

// Rule IDs, stable across releases: findings, tests and the -json
// report all key on them.
const (
	// RuleNoRand: internal/ packages must use internal/rng, never
	// math/rand, so every simulation result is reproducible from a seed.
	RuleNoRand = "norand"
	// RuleNoWallTime: internal/ packages must not read the wall clock
	// (time.Now, time.Since); timing belongs to the cmd/ layer.
	RuleNoWallTime = "nowalltime"
	// RuleCloneRelease: a sim.Parallel.Clone must be followed by a
	// Release (or covered by a defer Release) on every path to the
	// function exit, or the pooled value buffers leak.
	RuleCloneRelease = "clonerelease"
	// RuleIRMutate: ir.Program is immutable after Compile; no package
	// outside internal/ir may write its fields or their elements.
	RuleIRMutate = "irmutate"
	// RuleShortRace: a test that spawns goroutines must not gate itself
	// on testing.Short, because the -race CI leg runs with -short and
	// would silently skip exactly the tests the race detector is for.
	RuleShortRace = "shortrace"
	// RuleNoSecret: no path in internal/ may carry raw key material to
	// an output sink — the fmt/log print families, process streams, or
	// a whole-struct print of a key-holding value. Keys reach logs only
	// through internal/redact. fmt.Errorf is exempt: error values carry
	// key detail up to the caller, they are not output.
	RuleNoSecret = "nosecret"
)

// Severity ranks a finding. Errors are invariant violations that make
// results wrong or leak key material; warnings are hygiene findings
// (today only shortrace). The orapvet exit-code convention (0 clean,
// 1 errors, 2 internal, 3 warnings only) keys on this, matching
// orapaudit.
type Severity int

const (
	SevWarning Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// severityOf maps a rule to its severity.
func severityOf(rule string) Severity {
	if rule == RuleShortRace {
		return SevWarning
	}
	return SevError
}

// Hop is one step of a secret-flow witness chain: the source where key
// material entered the flow, each call it crossed, and the sink.
type Hop struct {
	Kind string // "source", "call" or "sink"
	Desc string // e.g. `field Key of scan.Config`, `emit(b)`, `fmt.Println`
	Pos  token.Position
}

// Finding is one rule violation at one source position. Secret-flow
// findings additionally carry the witness chain that proves the leak.
type Finding struct {
	Pos   token.Position
	Rule  string
	Sev   Severity
	Msg   string
	Chain []Hop
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Analyze loads the module rooted at modRoot (with module path modPath)
// and runs every rule, returning the sorted findings. The error reports
// the first parse or typecheck failure; rules still run over the
// packages that loaded.
func Analyze(modRoot, modPath string) ([]Finding, error) {
	a := newAnalyzer(modRoot, modPath)
	firstErr := a.loadAll()
	for _, p := range a.loaded() {
		a.vetPackage(p)
	}
	a.runTaint()
	sortFindings(a.findings)
	return a.findings, firstErr
}

// sortFindings orders findings by file, line, rule, message — the
// stable order the text and JSON reports print and the tests pin.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}
