package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ruleCloneRelease enforces that every sim.Parallel.Clone is released
// on every path: each Clone must be followed by a Release call — or
// covered by a defer Release — on all paths from the Clone to the
// function's exit, not merely textually paired somewhere in the same
// function. A Clone whose Release lives in a spawned goroutine or
// worker closure counts as a handoff (the statement that contains the
// Release covers it), matching the metrics.HammingDistance idiom.
//
// The analysis is structured and receiver-blind: it tracks "pending
// clone" positions through the statement tree (if/else, switch, select,
// loops, early returns) and clears them at any Release. No aliasing of
// the cloned value is attempted — the rule is about the shape of the
// function, like the rest of orapvet.
func (a *analyzer) ruleCloneRelease(p *vetPkg, f *ast.File) {
	simPath := a.modPath + "/internal/sim"
	if p.path == simPath {
		return // the methods' own package
	}
	cr := &cloneChecker{
		a: a, p: p,
		cloneName:   "(*" + simPath + ".Parallel).Clone",
		releaseName: "(*" + simPath + ".Parallel).Release",
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		cr.checkUnit(fd.Name.Name, fd.Body, true)
	}
}

type cloneChecker struct {
	a           *analyzer
	p           *vetPkg
	cloneName   string
	releaseName string
	fnName      string
}

// crState is the path state: clones not yet released, and whether a
// defer Release is in scope (covering every later exit).
type crState struct {
	pending  []token.Pos
	deferred bool
}

func (s crState) clone() crState {
	return crState{pending: append([]token.Pos(nil), s.pending...), deferred: s.deferred}
}

// checkUnit runs the path analysis over one function body. For the
// top-level pass (nested=true→false… see below) closures are treated
// as leaf contents; closures that contain BOTH a Clone and a Release
// additionally get their own unit pass, so an early return inside a
// worker closure is caught too.
func (cr *cloneChecker) checkUnit(name string, body *ast.BlockStmt, top bool) {
	// Cheap pre-pass: nothing to do without a Clone; and a function with
	// a Clone but no Release at all keeps the classic message.
	clones, releases := cr.count(body)
	if clones == 0 {
		return
	}
	if releases == 0 {
		if pos := cr.firstClone(body); pos != token.NoPos {
			cr.a.report(pos, RuleCloneRelease,
				"%s calls sim.Parallel.Clone without a Release in the same function; the pooled buffers leak", name)
		}
		return
	}
	cr.fnName = name
	st, terminated := cr.exec(body.List, crState{})
	if !terminated {
		cr.leak(st, body.End())
	}
	if top {
		// Closures that manage their own clone lifecycle get a path pass
		// of their own (their returns are their exits).
		ast.Inspect(body, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			c, r := cr.count(lit.Body)
			if c > 0 && r > 0 {
				cr.checkUnit(name, lit.Body, false)
			}
			return false // checkUnit recurses into deeper lits itself
		})
	}
}

// leak reports every pending clone as leaking at the path exit.
func (cr *cloneChecker) leak(st crState, exit token.Pos) {
	if st.deferred {
		return
	}
	line := cr.a.fset.Position(exit).Line
	for _, pos := range st.pending {
		cr.a.report(pos, RuleCloneRelease,
			"%s releases its sim.Parallel.Clone only on some paths; the path exiting at line %d skips Release and leaks the pooled buffers", cr.fnName, line)
	}
}

// exec interprets a statement list, returning the fall-through state
// and whether every path through the list terminates (returns or
// branches away).
func (cr *cloneChecker) exec(stmts []ast.Stmt, st crState) (crState, bool) {
	for _, s := range stmts {
		var terminated bool
		st, terminated = cr.execStmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (cr *cloneChecker) execStmt(s ast.Stmt, st crState) (crState, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return cr.exec(s.List, st)
	case *ast.LabeledStmt:
		return cr.execStmt(s.Stmt, st)
	case *ast.DeferStmt:
		if containsCall(cr.p, s.Call, cr.releaseName) {
			st.deferred = true
		}
		st = cr.scanLeaf(s.Call, st)
		return st, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			st = cr.scanLeaf(e, st)
		}
		cr.leak(st, s.Pos())
		st.pending = nil
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; treating the
		// path as terminated avoids false leaks at the list's exit.
		return st, true
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = cr.execStmt(s.Init, st)
		}
		st = cr.scanLeaf(s.Cond, st)
		thenSt, thenTerm := cr.exec(s.Body.List, st.clone())
		elseSt, elseTerm := st.clone(), false
		if s.Else != nil {
			elseSt, elseTerm = cr.execStmt(s.Else, st.clone())
		}
		return mergeStates(
			[]crState{thenSt, elseSt},
			[]bool{thenTerm, elseTerm})
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return cr.execSwitch(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = cr.execStmt(s.Init, st)
		}
		if s.Cond != nil {
			st = cr.scanLeaf(s.Cond, st)
		}
		bodySt, _ := cr.exec(s.Body.List, st.clone())
		// The body may run zero times: merge its fall-through state with
		// the skip state. Leaks at returns inside the body were reported
		// during its exec.
		out, _ := mergeStates([]crState{st, bodySt}, []bool{false, false})
		return out, false
	case *ast.RangeStmt:
		st = cr.scanLeaf(s.X, st)
		bodySt, _ := cr.exec(s.Body.List, st.clone())
		out, _ := mergeStates([]crState{st, bodySt}, []bool{false, false})
		return out, false
	default:
		// Leaf statement: assignments, expression statements, go
		// statements, declarations, channel sends, …
		st = cr.scanLeaf(s, st)
		return st, false
	}
}

// execSwitch handles switch/type-switch/select uniformly: each clause
// body runs from the same entry state; the fall-through state is the
// merge of the non-terminating clauses, plus the skip path when a
// switch has no default clause.
func (cr *cloneChecker) execSwitch(s ast.Stmt, st crState) (crState, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = cr.execStmt(s.Init, st)
		}
		if s.Tag != nil {
			st = cr.scanLeaf(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = cr.execStmt(s.Init, st)
		}
		st = cr.scanLeaf(s.Assign, st)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
		hasDefault = true // select always enters one of its clauses
	}
	var states []crState
	var terms []bool
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			list = c.Body
		case *ast.CommClause:
			list = c.Body
		}
		cs, ct := cr.exec(list, st.clone())
		states, terms = append(states, cs), append(terms, ct)
	}
	if !hasDefault || len(states) == 0 {
		states, terms = append(states, st), append(terms, false)
	}
	return mergeStates(states, terms)
}

// mergeStates joins branch states: the fall-through pending set is the
// union over non-terminated branches, deferred only if every
// non-terminated branch deferred. All branches terminated → terminated.
func mergeStates(states []crState, terms []bool) (crState, bool) {
	out := crState{deferred: true}
	live := 0
	seen := map[token.Pos]bool{}
	for i, st := range states {
		if terms[i] {
			continue
		}
		live++
		out.deferred = out.deferred && st.deferred
		for _, p := range st.pending {
			if !seen[p] {
				seen[p] = true
				out.pending = append(out.pending, p)
			}
		}
	}
	if live == 0 {
		return crState{}, true
	}
	return out, false
}

// scanLeaf scans one leaf statement or expression for Clone and Release
// calls (closure bodies included): clones become pending; any Release
// clears the pending set — a statement containing both (a worker
// closure that clones and releases, a goroutine handoff) nets out
// clean here and is path-checked separately by checkUnit.
func (cr *cloneChecker) scanLeaf(n ast.Node, st crState) crState {
	if n == nil {
		return st
	}
	var clones []token.Pos
	released := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := callFullName(cr.p, call); name == cr.cloneName {
			clones = append(clones, call.Pos())
		} else if name == cr.releaseName {
			released = true
		}
		return true
	})
	st.pending = append(st.pending, clones...)
	if released {
		st.pending = nil
	}
	return st
}

// count tallies Clone and Release calls under a node.
func (cr *cloneChecker) count(n ast.Node) (clones, releases int) {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch callFullName(cr.p, call) {
		case cr.cloneName:
			clones++
		case cr.releaseName:
			releases++
		}
		return true
	})
	return
}

func (cr *cloneChecker) firstClone(n ast.Node) token.Pos {
	pos := token.NoPos
	ast.Inspect(n, func(m ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && callFullName(cr.p, call) == cr.cloneName {
			pos = call.Pos()
			return false
		}
		return true
	})
	return pos
}

// callFullName resolves a call's target to its types.Func full name
// ("" when the target is not a resolved function).
func callFullName(p *vetPkg, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	return fn.FullName()
}

// containsCall reports whether a call expression (or anything under it)
// resolves to the named function.
func containsCall(p *vetPkg, n ast.Node, full string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && callFullName(p, call) == full {
			found = true
			return false
		}
		return true
	})
	return found
}
