package vet

import (
	"go/ast"
	"go/types"
	"strings"
)

// vetPackage runs the per-package rules. The secret-flow engine runs
// separately over the whole module (see taint.go) because its findings
// depend on cross-package summaries.
func (a *analyzer) vetPackage(p *vetPkg) {
	inInternal := p.inInternal()
	for _, f := range p.files {
		if inInternal {
			a.ruleNoRand(f)
			a.ruleNoWallTime(p, f)
		}
		a.ruleCloneRelease(p, f)
		a.ruleIRMutate(p, f)
	}
	for _, f := range p.testFiles {
		a.ruleShortRace(f)
	}
}

// ruleNoRand flags math/rand imports in internal packages.
func (a *analyzer) ruleNoRand(f *ast.File) {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path == "math/rand" || path == "math/rand/v2" {
			a.report(imp.Pos(), RuleNoRand,
				"import of %s in internal/; use internal/rng so results are reproducible from a seed", path)
		}
	}
}

// ruleNoWallTime flags wall-clock reads in internal packages, resolved
// through the typechecker so aliased imports are still caught.
func (a *analyzer) ruleNoWallTime(p *vetPkg, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := p.info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		if full := fn.FullName(); full == "time.Now" || full == "time.Since" {
			a.report(id.Pos(), RuleNoWallTime,
				"%s in internal/; wall-clock reads belong in the cmd/ layer", full)
		}
		return true
	})
}

// ruleIRMutate flags writes to ir.Program fields (or elements of slice
// fields) from outside internal/ir.
func (a *analyzer) ruleIRMutate(p *vetPkg, f *ast.File) {
	irPath := a.modPath + "/internal/ir"
	if p.path == irPath {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if name, ok := a.programField(p, irPath, lhs); ok {
					a.report(lhs.Pos(), RuleIRMutate,
						"write to ir.Program field %s outside internal/ir; Programs are immutable after Compile", name)
				}
			}
		case *ast.IncDecStmt:
			if name, ok := a.programField(p, irPath, st.X); ok {
				a.report(st.X.Pos(), RuleIRMutate,
					"write to ir.Program field %s outside internal/ir; Programs are immutable after Compile", name)
			}
		}
		return true
	})
}

// programField reports whether an assignable expression resolves to a
// field of ir.Program, looking through index expressions so writes like
// prog.Ops[i] = x are caught too.
func (a *analyzer) programField(p *vetPkg, irPath string, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		sel := p.info.Selections[e]
		if sel == nil || sel.Kind() != types.FieldVal {
			return "", false
		}
		recv := sel.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return "", false
		}
		if named.Obj().Pkg().Path() == irPath && named.Obj().Name() == "Program" {
			return e.Sel.Name, true
		}
	case *ast.IndexExpr:
		return a.programField(p, irPath, e.X)
	case *ast.ParenExpr:
		return a.programField(p, irPath, e.X)
	case *ast.StarExpr:
		return a.programField(p, irPath, e.X)
	}
	return "", false
}

// ruleShortRace flags test functions that both spawn goroutines and
// gate on testing.Short: the CI race leg runs `go test -race -short`,
// so such a test exempts itself from the race detector.
func (a *analyzer) ruleShortRace(f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Test") {
			continue
		}
		spawns, short := false, false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				spawns = true
			case *ast.SelectorExpr:
				if id, ok := x.X.(*ast.Ident); ok && id.Name == "testing" && x.Sel.Name == "Short" {
					short = true
				}
			}
			return true
		})
		if spawns && short {
			a.report(fd.Pos(), RuleShortRace,
				"%s spawns goroutines but gates on testing.Short; the -race -short CI leg would skip it", fd.Name.Name)
		}
	}
}
