package vet

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixtureFindings analyzes the orapvet fixture module once per process.
var fixtureCache []Finding

func fixtureFindings(t testing.TB) []Finding {
	t.Helper()
	if fixtureCache != nil {
		return fixtureCache
	}
	root, err := filepath.Abs(filepath.Join("..", "..", "cmd", "orapvet", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Analyze(root, "vetfixture")
	if err != nil {
		t.Fatalf("Analyze(fixture): %v", err)
	}
	fixtureCache = fs
	return fs
}

// base returns the path of a finding relative to the fixture module.
func base(f Finding) string {
	name := filepath.ToSlash(f.Pos.Filename)
	if i := strings.Index(name, "testdata/src/"); i >= 0 {
		return name[i+len("testdata/src/"):]
	}
	return name
}

// want locates exactly one finding by rule, file suffix, line, and
// message substring.
func want(t *testing.T, fs []Finding, rule, file string, line int, msgPart string) Finding {
	t.Helper()
	var hits []Finding
	for _, f := range fs {
		if f.Rule == rule && base(f) == file && f.Pos.Line == line && strings.Contains(f.Msg, msgPart) {
			hits = append(hits, f)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("want exactly one %s finding at %s:%d containing %q, got %d\nall findings:\n%s",
			rule, file, line, msgPart, len(hits), dump(fs))
	}
	return hits[0]
}

func dump(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + base(f) + ":" + f.String() + "\n")
	}
	return b.String()
}

// hopAt asserts one hop of a witness chain.
func hopAt(t *testing.T, f Finding, i int, kind, descPart string, line int) {
	t.Helper()
	if i >= len(f.Chain) {
		t.Fatalf("finding %q: want hop %d, chain has %d hops", f.Msg, i, len(f.Chain))
	}
	h := f.Chain[i]
	if h.Kind != kind || !strings.Contains(h.Desc, descPart) || h.Pos.Line != line {
		t.Fatalf("finding %q hop %d: got %s %q line %d, want %s ~%q line %d",
			f.Msg, i, h.Kind, h.Desc, h.Pos.Line, kind, descPart, line)
	}
}

func TestFixtureTotals(t *testing.T) {
	fs := fixtureFindings(t)
	if len(fs) != 21 {
		t.Fatalf("fixture findings = %d, want 21\n%s", len(fs), dump(fs))
	}
	counts := map[string]int{}
	for _, f := range fs {
		dir := filepath.Dir(base(f))
		counts[dir]++
		if dir != "internal/bad" && dir != "internal/flow" {
			t.Errorf("finding outside internal/{bad,flow}: %s: %s", base(f), f.Msg)
		}
	}
	if counts["internal/bad"] != 13 || counts["internal/flow"] != 8 {
		t.Fatalf("split = bad:%d flow:%d, want bad:13 flow:8\n%s",
			counts["internal/bad"], counts["internal/flow"], dump(fs))
	}
}

// TestSyntacticRules pins the pre-engine rules byte-for-byte: the same
// files must keep firing at the same lines with the same messages.
func TestSyntacticRules(t *testing.T) {
	fs := fixtureFindings(t)
	want(t, fs, RuleNoRand, "internal/bad/bad.go", 6, "import of math/rand in internal/; use internal/rng")
	want(t, fs, RuleNoWallTime, "internal/bad/bad.go", 15, "time.Now in internal/")
	want(t, fs, RuleNoWallTime, "internal/bad/bad.go", 17, "time.Since in internal/")
	want(t, fs, RuleCloneRelease, "internal/bad/bad.go", 20, "LeakClone calls sim.Parallel.Clone without a Release in the same function")
	want(t, fs, RuleIRMutate, "internal/bad/bad.go", 24, "field Name")
	want(t, fs, RuleIRMutate, "internal/bad/bad.go", 28, "field Ops")
	f := want(t, fs, RuleShortRace, "internal/bad/bad_test.go", 5, "TestSpawnSkipsShort spawns goroutines but gates on testing.Short")
	if f.Sev != SevWarning {
		t.Errorf("shortrace severity = %v, want warning", f.Sev)
	}
}

// TestClonePathAware pins the path-sensitive clonerelease upgrade: a
// Release that is skipped on one branch names the escaping path.
func TestClonePathAware(t *testing.T) {
	fs := fixtureFindings(t)
	want(t, fs, RuleCloneRelease, "internal/bad/clonepath.go", 14,
		"releases its sim.Parallel.Clone only on some paths; the path exiting at line 16 skips Release")
}

// TestIntraproceduralSecrets pins the original nosecret findings — the
// ones the old syntactic rule caught — byte-identically.
func TestIntraproceduralSecrets(t *testing.T) {
	fs := fixtureFindings(t)
	want(t, fs, RuleNoSecret, "internal/bad/secret.go", 12, `fmt.Println passes raw key bits "key"`)
	want(t, fs, RuleNoSecret, "internal/bad/secret.go", 16, `fmt.Printf passes gf2.Vec "seed"`)
	alias := want(t, fs, RuleNoSecret, "internal/bad/secret.go", 22, `fmt.Println passes raw key bits "k" (aliased from "Key")`)
	hopAt(t, alias, 0, "source", "key bits Key", 21)
	hopAt(t, alias, 1, "sink", "fmt.Println", 22)
	want(t, fs, RuleNoSecret, "internal/bad/logleak.go", 9, `log.Printf passes raw key bits "keyBits"`)
	want(t, fs, RuleNoSecret, "internal/bad/logleak.go", 13, `(*log.Logger).Println passes raw key bits "masterKey"`)

	secrets := 0
	for _, f := range fs {
		if f.Rule == RuleNoSecret && base(f) == "internal/bad/secret.go" {
			secrets++
		}
	}
	if secrets != 3 {
		t.Errorf("secret.go nosecret findings = %d, want 3", secrets)
	}
}

// TestInterproceduralChains exercises the taint engine's witness
// chains: helper calls, two-deep chains, methods, closures, variadics,
// struct values, and raw stdout writes.
func TestInterproceduralChains(t *testing.T) {
	fs := fixtureFindings(t)

	helper := want(t, fs, RuleNoSecret, "internal/flow/flow.go", 22,
		`key material from "Key" reaches fmt.Println via flow.emit`)
	hopAt(t, helper, 0, "source", "key bits Key", 22)
	hopAt(t, helper, 1, "call", "flow.emit", 22)
	hopAt(t, helper, 2, "sink", "fmt.Println", 17)

	deep := want(t, fs, RuleNoSecret, "internal/flow/flow.go", 32,
		`key material from "Key" reaches fmt.Println via flow.relay`)
	if len(deep.Chain) != 4 {
		t.Fatalf("Deep chain hops = %d, want 4", len(deep.Chain))
	}
	hopAt(t, deep, 1, "call", "flow.relay", 32)
	hopAt(t, deep, 2, "call", "flow.emit", 27)
	hopAt(t, deep, 3, "sink", "fmt.Println", 17)

	method := want(t, fs, RuleNoSecret, "internal/flow/flow.go", 49,
		`reaches fmt.Println via flow.holder.show`)
	hopAt(t, method, 1, "call", "flow.holder.show", 49)
	hopAt(t, method, 2, "sink", "fmt.Println", 43)

	capture := want(t, fs, RuleNoSecret, "internal/flow/flow.go", 56,
		`fmt.Println passes raw key bits "b" (aliased from "Key")`)
	hopAt(t, capture, 0, "source", "key bits Key", 54)

	variadic := want(t, fs, RuleNoSecret, "internal/flow/flow.go", 68,
		`reaches fmt.Println via flow.tee`)
	hopAt(t, variadic, 1, "call", "flow.tee", 68)

	whole := want(t, fs, RuleNoSecret, "internal/flow/flow.go", 74,
		`fmt.Printf passes scan.Config "cfg" whose field Key holds key material`)
	hopAt(t, whole, 0, "source", "scan.Config value cfg", 74)

	want(t, fs, RuleNoSecret, "internal/flow/flow.go", 80, `fmt.Sprint passes raw key bits "Key"`)
	want(t, fs, RuleNoSecret, "internal/flow/flow.go", 80, `os.Stdout.WriteString receives key material derived from "Key"`)
}

// TestRepoIsClean runs the engine over this repository itself: the
// production tree must produce zero findings, or CI would be red.
func TestRepoIsClean(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Analyze(root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		var b strings.Builder
		for _, f := range fs {
			b.WriteString("  " + f.String() + "\n")
		}
		t.Fatalf("repo self-run produced %d findings, want 0:\n%s", len(fs), b.String())
	}
	if modPath != "orap" {
		t.Errorf("module path = %q, want orap", modPath)
	}
}

// TestFindModule checks module discovery walks up from a subdirectory.
func TestFindModule(t *testing.T) {
	root, modPath, err := FindModule(filepath.Join("..", "..", "internal", "gf2"))
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "orap" {
		t.Errorf("module path = %q, want orap", modPath)
	}
	if _, _, err := FindModule(t.TempDir()); err == nil {
		t.Error("FindModule outside any module: want error, got nil")
	}
	_ = root
}

// BenchmarkVetModule measures a full fixture-module analysis: load,
// typecheck, fixpoint, and report.
func BenchmarkVetModule(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", "..", "cmd", "orapvet", "testdata", "src"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(root, "vetfixture"); err != nil {
			b.Fatal(err)
		}
	}
}
