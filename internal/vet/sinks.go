package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// walkSinks runs the reporting walk over one function body against the
// current summaries: it records which inputs reach a sink (the
// function's own summary for the next fixpoint round) and, on the final
// emit pass, produces the nosecret findings with their witness chains.
func (sc *scope) walkSinks(emit bool) *summary {
	sum := newSummary()

	// Result flows: inputs (and intrinsic sources) that reach a result.
	var flowMask uint64
	for _, r := range sc.returns {
		flowMask |= sc.exprMask(r, 0)
	}
	if sc.bareReturn {
		for _, obj := range sc.named {
			flowMask |= sc.masks[obj]
		}
	}
	sum.flows = flowMask & inputMask
	if flowMask&intrinsicBit != 0 {
		sum.intrinsic = true
		for _, r := range sc.returns {
			if sc.exprMask(r, 0)&intrinsicBit != 0 {
				sum.intOrigin = sc.originOfExpr(r, 0)
				break
			}
		}
	}

	// Sanctioned formatters may touch raw key material — that is their
	// job — so their bodies are exempt from sink findings.
	skip := sc.node.sanitizer || strings.HasSuffix(sc.p.path, "/internal/redact")

	seen := map[string]bool{}
	ast.Inspect(sc.node.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !skip {
			if name, ok := sc.a.sinkCall(sc.p, call); ok {
				sc.handleSink(sum, call, name, emit, seen)
			}
			if node := sc.a.calleeNode(sc.p, call); node != nil && !node.sanitizer {
				sc.handleModuleCall(sum, node, call, emit, seen)
			}
		}
		return true
	})
	return sum
}

// sinkCall classifies a call as an output sink: the fmt/log print
// family, or a Write/WriteString on os.Stdout or os.Stderr.
func (a *analyzer) sinkCall(p *vetPkg, call *ast.CallExpr) (string, bool) {
	full := callFullName(p, call)
	if printFamily[full] {
		return full, true
	}
	if full == "(*os.File).Write" || full == "(*os.File).WriteString" {
		sel := call.Fun.(*ast.SelectorExpr)
		if inner, ok := sel.X.(*ast.SelectorExpr); ok {
			if obj := p.info.Uses[inner.Sel]; obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
				return "os." + obj.Name() + "." + sel.Sel.Name, true
			}
		}
	}
	return "", false
}

// handleSink examines every argument of an output call. The
// classification precedence mirrors the messages: a gf2.Vec by type, a
// key-embedding struct by type, key-named []bool bits by name, then
// anything the flow engine proved to carry key material (with its
// witness chain). Arguments that merely depend on the function's own
// inputs become summary entries for the callers to judge.
func (sc *scope) handleSink(sum *summary, call *ast.CallExpr, sinkName string, emit bool, seen map[string]bool) {
	sinkHop := Hop{Kind: "sink", Desc: sinkName, Pos: sc.a.fset.Position(call.Pos())}
	for _, arg := range call.Args {
		m := sc.exprMask(arg, 0)
		for j := 0; j <= maxInputBit && m&inputMask != 0; j++ {
			if m&(uint64(1)<<uint(j)) != 0 {
				addChain(sum, j, chain{sinkHop}, seen)
			}
		}
		if !emit {
			continue
		}
		t := sc.typeOf(arg)
		name := baseName(arg)
		switch {
		case sc.a.isGF2Vec(t):
			sc.a.reportChain(arg.Pos(), sc.sourceSinkChain(arg, sinkHop),
				"%s passes gf2.Vec %q; format it with internal/redact.Vec", sinkName, name)
		case isStructish(t) && sc.a.secretField(t) != "":
			sc.a.reportChain(arg.Pos(), sc.sourceSinkChain(arg, sinkHop),
				"%s passes %s %q whose field %s holds key material; format the field with internal/redact",
				sinkName, typeStr(t), name, sc.a.secretField(t))
		case isBoolSlice(t) && keyish(name):
			sc.a.reportChain(arg.Pos(), sc.sourceSinkChain(arg, sinkHop),
				"%s passes raw key bits %q; format them with internal/redact.Key", sinkName, name)
		case m&anySrc != 0:
			o := sc.originOfExpr(arg, 0)
			if o == nil {
				o = &origin{kind: srcDerived, name: name, pos: arg.Pos()}
			}
			ch := chain{{Kind: "source", Desc: o.desc(), Pos: sc.a.fset.Position(o.pos)}, sinkHop}
			if id, ok := arg.(*ast.Ident); ok && o.kind == srcName && o.name != id.Name {
				sc.a.reportChain(arg.Pos(), ch,
					"%s passes raw key bits %q (aliased from %q); format them with internal/redact.Key",
					sinkName, id.Name, o.name)
			} else {
				sc.a.reportChain(arg.Pos(), ch,
					"%s receives key material derived from %q; format it with internal/redact.Key",
					sinkName, o.name)
			}
		}
	}
}

// handleModuleCall propagates a callee's sink summary to this call
// site: arguments that depend on this function's inputs extend the
// summary chains one hop; arguments carrying key material outright
// become findings whose witness chain crosses the call. Type-based
// sources (a gf2.Vec, a key-holding struct) are left to fire inside the
// callee, where the sink is — one finding per leak, at the leak.
func (sc *scope) handleModuleCall(sum *summary, node *funcNode, call *ast.CallExpr, emit bool, seen map[string]bool) {
	callHop := Hop{Kind: "call", Desc: node.relName(), Pos: sc.a.fset.Position(call.Pos())}
	for _, b := range sc.a.bindArgs(node, call) {
		chains := node.sum.sinks[b.input]
		if len(chains) == 0 {
			continue
		}
		am := sc.exprMask(b.arg, 0)
		if am == 0 {
			continue
		}
		for j := 0; j <= maxInputBit; j++ {
			if am&(uint64(1)<<uint(j)) == 0 {
				continue
			}
			for _, ch := range chains {
				if len(ch)+1 <= maxChainHops {
					addChain(sum, j, append(chain{callHop}, ch...), seen)
				}
			}
		}
		if am&intrinsicBit == 0 || !emit {
			continue
		}
		o := sc.originOfExpr(b.arg, 0)
		if o == nil || o.kind == srcVec || o.kind == srcStruct {
			continue // the callee's own sink pass reports these
		}
		ch := chains[0]
		full := append(chain{
			{Kind: "source", Desc: o.desc(), Pos: sc.a.fset.Position(o.pos)},
			callHop,
		}, ch...)
		key := fmt.Sprintf("emit|%v|%v", b.arg.Pos(), ch[len(ch)-1].Pos)
		if seen[key] {
			continue
		}
		seen[key] = true
		sc.a.reportChain(b.arg.Pos(), full,
			"key material from %q reaches %s via %s; format it with internal/redact.Key",
			o.name, ch[len(ch)-1].Desc, node.relName())
	}
}

// sourceSinkChain builds the two-hop witness for an intraprocedural
// finding: the argument itself is the source.
func (sc *scope) sourceSinkChain(arg ast.Expr, sinkHop Hop) chain {
	desc := types.ExprString(arg)
	if o := sc.originOfExpr(arg, 0); o != nil {
		desc = o.desc()
	}
	return chain{{Kind: "source", Desc: desc, Pos: sc.a.fset.Position(arg.Pos())}, sinkHop}
}

// addChain records a sink chain on a summary input, deduplicated by
// endpoints and capped.
func addChain(sum *summary, input int, ch chain, seen map[string]bool) {
	if len(sum.sinks[input]) >= maxChains {
		return
	}
	key := fmt.Sprintf("sum|%d|%v|%v", input, ch[0].Pos, ch[len(ch)-1].Pos)
	if seen[key] {
		return
	}
	seen[key] = true
	sum.sinks[input] = append(sum.sinks[input], ch)
}

// reportChain is report plus a witness chain.
func (a *analyzer) reportChain(pos token.Pos, ch chain, format string, args ...interface{}) {
	a.findings = append(a.findings, Finding{
		Pos:   a.fset.Position(pos),
		Rule:  RuleNoSecret,
		Sev:   severityOf(RuleNoSecret),
		Msg:   fmt.Sprintf(format, args...),
		Chain: ch,
	})
}

// isStructish reports whether a type is a struct or pointer to struct —
// the shapes the whole-value print finding covers.
func isStructish(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Struct); ok {
		return true
	}
	return isPointerToStruct(t)
}

// baseName digs out the identifier an argument expression reads from,
// for the key-naming heuristic ("" when there is none, e.g. a call
// result).
func baseName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return baseName(e.X)
	case *ast.ParenExpr:
		return baseName(e.X)
	case *ast.StarExpr:
		return baseName(e.X)
	}
	return ""
}
