package oracle

import (
	"fmt"

	"orap/internal/scan"
)

// chipPort is the slice of the scan.Chip surface the oracle drives. The
// seam exists so tests can inject shift/capture failures and assert the
// oracle restores the chip to a consistent state (scan enable low) on
// every error path.
type chipPort interface {
	Config() scan.Config
	ScanEnable() bool
	SetScanEnable(v bool)
	ScanInFFs(v []bool) error
	CaptureClock(pins []bool) ([]bool, error)
	ScanOutFFs() ([]bool, error)
	ScanBatch(in []uint64, n int) ([]uint64, error)
	ChainLength() int
}

var _ chipPort = (*scan.Chip)(nil)

// Scan is the realistic oracle: every query goes through the chip's scan
// infrastructure exactly as the paper describes — raise scan enable,
// shift the pattern into the flip-flops, drop scan enable for one capture
// clock, raise scan enable again and shift the response out.
//
// On a conventional chip (scan.None) the key register still holds the
// correct key during capture, so responses are correct and oracle-guided
// attacks work. On an OraP chip the rising scan-enable edge cleared the
// key register before the first shift, so every response belongs to the
// locked circuit.
//
// Scan implements WordOracle: a batched query carries up to 64 patterns
// through scan.Chip.ScanBatch, which replays the per-pattern scan-enable
// protocol (self-clear included) and evaluates all captures in one
// word-parallel pass. It also implements ChannelCost with the paper's
// cost model, 2·chain-length+1 test clocks per query.
type Scan struct {
	chip    chipPort
	queries int
}

// NewScan wraps an activated chip. The chip should have been unlocked
// (activated) before it reached the attacker; for a protected chip the
// protection works regardless.
func NewScan(ch *scan.Chip) *Scan {
	return &Scan{chip: ch}
}

// NumInputs implements Oracle: queries cover all core inputs, pins first
// then flip-flop-driven inputs.
func (o *Scan) NumInputs() int { return o.chip.Config().Core.NumInputs() }

// NumOutputs implements Oracle: responses cover all core outputs, pin
// outputs first then the captured flip-flop values scanned back out.
func (o *Scan) NumOutputs() int { return o.chip.Config().Core.NumOutputs() }

// Query implements Oracle via the scan in – capture – scan out protocol.
// On any protocol error the oracle drops scan enable before returning,
// so a failed query leaves the chip ready for the next one instead of
// parked in scan mode.
func (o *Scan) Query(x []bool) ([]bool, error) {
	cfg := o.chip.Config()
	if len(x) != cfg.Core.NumInputs() {
		return nil, fmt.Errorf("oracle: query width %d != core inputs %d", len(x), cfg.Core.NumInputs())
	}
	o.queries++
	pins := x[:cfg.RealPIs]
	ffPart := x[cfg.RealPIs:]

	o.chip.SetScanEnable(true) // rising edge: OraP clears the key register
	if err := o.chip.ScanInFFs(ffPart); err != nil {
		o.chip.SetScanEnable(false)
		return nil, err
	}
	o.chip.SetScanEnable(false)
	pinOut, err := o.chip.CaptureClock(pins)
	if err != nil {
		return nil, err
	}
	o.chip.SetScanEnable(true)
	ffOut, err := o.chip.ScanOutFFs()
	if err != nil {
		o.chip.SetScanEnable(false)
		return nil, err
	}
	o.chip.SetScanEnable(false)
	resp := make([]bool, 0, len(pinOut)+len(ffOut))
	resp = append(resp, pinOut...)
	resp = append(resp, ffOut...)
	return resp, nil
}

// QueryWords implements WordOracle: up to 64 patterns per interface
// crossing, delegated to the chip's batched scan protocol.
func (o *Scan) QueryWords(in []uint64, n int) ([]uint64, error) {
	if err := checkBatch(o, in, n); err != nil {
		return nil, err
	}
	out, err := o.chip.ScanBatch(in, n)
	if err != nil {
		if o.chip.ScanEnable() {
			o.chip.SetScanEnable(false)
		}
		return nil, err
	}
	o.queries += n
	return out, nil
}

// QueryCycles implements ChannelCost: one scan-protocol query costs
// chain-length clocks to shift in, one capture clock, and chain-length
// clocks to shift out.
func (o *Scan) QueryCycles() int64 { return 2*int64(o.chip.ChainLength()) + 1 }

// Queries implements Oracle.
func (o *Scan) Queries() int { return o.queries }
