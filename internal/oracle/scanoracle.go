package oracle

import (
	"fmt"

	"orap/internal/scan"
)

// Scan is the realistic oracle: every query goes through the chip's scan
// infrastructure exactly as the paper describes — raise scan enable,
// shift the pattern into the flip-flops, drop scan enable for one capture
// clock, raise scan enable again and shift the response out.
//
// On a conventional chip (scan.None) the key register still holds the
// correct key during capture, so responses are correct and oracle-guided
// attacks work. On an OraP chip the rising scan-enable edge cleared the
// key register before the first shift, so every response belongs to the
// locked circuit.
type Scan struct {
	chip    *scan.Chip
	queries int
}

// NewScan wraps an activated chip. The chip should have been unlocked
// (activated) before it reached the attacker; for a protected chip the
// protection works regardless.
func NewScan(ch *scan.Chip) *Scan {
	return &Scan{chip: ch}
}

// NumInputs implements Oracle: queries cover all core inputs, pins first
// then flip-flop-driven inputs.
func (o *Scan) NumInputs() int { return o.chip.Config().Core.NumInputs() }

// NumOutputs implements Oracle: responses cover all core outputs, pin
// outputs first then the captured flip-flop values scanned back out.
func (o *Scan) NumOutputs() int { return o.chip.Config().Core.NumOutputs() }

// Query implements Oracle via the scan in – capture – scan out protocol.
func (o *Scan) Query(x []bool) ([]bool, error) {
	cfg := o.chip.Config()
	if len(x) != cfg.Core.NumInputs() {
		return nil, fmt.Errorf("oracle: query width %d != core inputs %d", len(x), cfg.Core.NumInputs())
	}
	o.queries++
	pins := x[:cfg.RealPIs]
	ffPart := x[cfg.RealPIs:]

	o.chip.SetScanEnable(true) // rising edge: OraP clears the key register
	if err := o.chip.ScanInFFs(ffPart); err != nil {
		return nil, err
	}
	o.chip.SetScanEnable(false)
	pinOut, err := o.chip.CaptureClock(pins)
	if err != nil {
		return nil, err
	}
	o.chip.SetScanEnable(true)
	ffOut, err := o.chip.ScanOutFFs()
	if err != nil {
		return nil, err
	}
	o.chip.SetScanEnable(false)
	resp := make([]bool, 0, len(pinOut)+len(ffOut))
	resp = append(resp, pinOut...)
	resp = append(resp, ffOut...)
	return resp, nil
}

// Queries implements Oracle.
func (o *Scan) Queries() int { return o.queries }
