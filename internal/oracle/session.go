package oracle

import "fmt"

// ChannelStats quantifies an attack's use of the oracle access channel —
// the scan in – capture – scan out interface the paper argues is the
// asset to protect. A Session maintains these counters; experiment
// tables and the orapattack command report them.
type ChannelStats struct {
	// Queries is the number of patterns asked through the session,
	// including patterns answered from the transcript cache.
	Queries int
	// Unique is the number of distinct patterns ever admitted to the
	// underlying oracle.
	Unique int
	// CacheHits counts patterns answered from the transcript without
	// touching the chip (repeated DIP confirmations, resampled rounds).
	CacheHits int
	// OracleCalls counts interface crossings that reached the wrapped
	// oracle; BatchCalls counts how many of those were word-level
	// (up-to-64-pattern) crossings.
	OracleCalls int
	BatchCalls  int
	// ScanCycles is the modeled test-clock cost of the admitted queries:
	// 2·chain-length+1 clocks per query on a scan-protocol oracle, one
	// capture clock on the ideal direct oracle, zero when the wrapped
	// oracle models no channel cost.
	ScanCycles int64
}

// HitRate returns the fraction of session queries answered from the
// transcript cache.
func (s ChannelStats) HitRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Queries)
}

// Session wraps an oracle into a stateful attack session over the access
// channel. It memoises the query transcript (SAT-family attacks
// re-confirm DIPs and AppSAT re-samples across rounds, so repeated
// patterns are common), enforces a centralized query budget counting
// only the queries it admits, and keeps ChannelStats telemetry. Session
// itself implements WordOracle, so it drops in front of any attack; when
// the wrapped oracle has a word channel, cache misses are forwarded in
// compacted batches.
type Session struct {
	o    Oracle
	w    WordOracle // non-nil when o exposes the word-level channel
	cost int64      // modeled cycles per admitted query (0 = unmodeled)

	max      int // admitted-query budget (0 = unlimited)
	admitted int

	cache map[string][]bool
	stats ChannelStats
}

var _ WordOracle = (*Session)(nil)

// NewSession opens a session over o. maxQueries bounds the queries the
// session admits to the underlying oracle (0 = unlimited); transcript
// cache hits are free — they need no chip access.
func NewSession(o Oracle, maxQueries int) *Session {
	s := &Session{o: o, max: maxQueries, cache: make(map[string][]bool)}
	if w, ok := o.(WordOracle); ok {
		s.w = w
	}
	if c, ok := o.(ChannelCost); ok {
		s.cost = c.QueryCycles()
	}
	return s
}

// NumInputs implements Oracle.
func (s *Session) NumInputs() int { return s.o.NumInputs() }

// NumOutputs implements Oracle.
func (s *Session) NumOutputs() int { return s.o.NumOutputs() }

// Queries implements Oracle: the number of patterns asked through the
// session, cache hits included — the attack's view of its own query
// count, independent of memoisation.
func (s *Session) Queries() int { return s.stats.Queries }

// Admitted returns how many queries reached the underlying oracle.
func (s *Session) Admitted() int { return s.admitted }

// Stats returns a snapshot of the session's channel telemetry.
func (s *Session) Stats() ChannelStats { return s.stats }

// transcriptKey packs a pattern into a compact map key.
func transcriptKey(x []bool) string {
	b := make([]byte, (len(x)+7)/8)
	for i, v := range x {
		if v {
			b[i/8] |= 1 << uint(i%8)
		}
	}
	return string(b)
}

// Query implements Oracle with transcript memoisation and budgeting.
func (s *Session) Query(x []bool) ([]bool, error) {
	if len(x) != s.o.NumInputs() {
		return nil, fmt.Errorf("oracle: query width %d != oracle inputs %d", len(x), s.o.NumInputs())
	}
	k := transcriptKey(x)
	if y, ok := s.cache[k]; ok {
		s.stats.Queries++
		s.stats.CacheHits++
		return append([]bool(nil), y...), nil
	}
	if s.max > 0 && s.admitted >= s.max {
		return nil, ErrBudget
	}
	y, err := s.o.Query(x)
	if err != nil {
		return nil, err
	}
	s.admitted++
	s.stats.Queries++
	s.stats.Unique++
	s.stats.OracleCalls++
	s.stats.ScanCycles += s.cost
	s.cache[k] = append([]bool(nil), y...)
	return y, nil
}

// QueryWords implements WordOracle. Lanes found in the transcript (or
// repeated within the batch) are served from cache; the remaining misses
// are compacted into one sub-batch and forwarded — through the wrapped
// oracle's word channel when it has one, as scalar queries otherwise.
// The budget is checked against the whole miss set before any lane is
// admitted, so a rejected batch leaves the session unchanged.
func (s *Session) QueryWords(in []uint64, n int) ([]uint64, error) {
	if err := checkBatch(s.o, in, n); err != nil {
		return nil, err
	}
	ni, no := s.o.NumInputs(), s.o.NumOutputs()

	// Classify lanes against the transcript without touching stats yet.
	sub := make([]int, n) // lane → sub-batch lane, or -1 when cached
	keys := make([]string, n)
	subLane := make(map[string]int)
	missIn := make([]uint64, ni)
	misses, dupHits := 0, 0
	x := make([]bool, ni)
	for p := 0; p < n; p++ {
		UnpackPattern(in, p, x)
		k := transcriptKey(x)
		keys[p] = k
		if _, ok := s.cache[k]; ok {
			sub[p] = -1
			continue
		}
		if j, ok := subLane[k]; ok {
			sub[p] = j // duplicate within the batch: rides the same access
			dupHits++
			continue
		}
		j := misses
		misses++
		subLane[k] = j
		sub[p] = j
		PackPattern(missIn, j, x)
	}

	var missOut []uint64
	if misses > 0 {
		if s.max > 0 && s.admitted+misses > s.max {
			return nil, ErrBudget
		}
		var err error
		if s.w != nil {
			missOut, err = s.w.QueryWords(missIn, misses)
			s.stats.BatchCalls++
			s.stats.OracleCalls++
		} else {
			missOut, err = QueryWords(scalarOnly{s.o}, missIn, misses)
			s.stats.OracleCalls += misses
		}
		if err != nil {
			return nil, err
		}
		s.admitted += misses
		s.stats.Unique += misses
		s.stats.ScanCycles += int64(misses) * s.cost
		y := make([]bool, no)
		for k, j := range subLane {
			UnpackPattern(missOut, j, y)
			s.cache[k] = append([]bool(nil), y...)
		}
	}

	out := make([]uint64, no)
	for p := 0; p < n; p++ {
		if j := sub[p]; j >= 0 {
			bit := uint64(1) << uint(p)
			for i := range out {
				if missOut[i]>>uint(j)&1 == 1 {
					out[i] |= bit
				}
			}
		} else {
			PackPattern(out, p, s.cache[keys[p]])
			s.stats.CacheHits++
		}
	}
	s.stats.Queries += n
	s.stats.CacheHits += dupHits
	return out, nil
}
