// Package oracle defines the black-box access channel that oracle-guided
// attacks query, together with the ideal (unprotected) implementation.
//
// In the paper's threat model, the attacker owns an activated chip and
// reaches its combinational core through the scan chains ("scan in –
// capture – scan out"). An unprotected chip therefore behaves like Comb:
// every query returns the correct response. The OraP-protected chip
// (package scan / orap) also satisfies Oracle, but its responses are
// computed with a cleared key register — the central difference the
// experiments measure.
//
// The channel is word-parallel: oracles that implement WordOracle carry
// up to 64 patterns per interface crossing, bit-sliced one uint64 lane
// word per input, matching the layout of the sim/ir evaluation kernel.
// Session wraps any oracle with transcript memoisation, a query budget
// and channel telemetry (total/unique patterns, cache hits, modeled
// scan-cycle cost), making the access channel itself measurable.
package oracle

import (
	"fmt"

	"orap/internal/netlist"
	"orap/internal/sim"
)

// Oracle answers combinational input/output queries on an activated chip.
type Oracle interface {
	// NumInputs returns the width of query patterns.
	NumInputs() int
	// NumOutputs returns the width of responses.
	NumOutputs() int
	// Query applies one input pattern and returns the chip's response.
	Query(x []bool) ([]bool, error)
	// Queries returns how many patterns have been queried.
	Queries() int
}

// WordOracle is the batched oracle channel: one call carries up to 64
// patterns. Patterns are bit-sliced: in[i] holds input bit i across the
// batch, with bit p of in[i] being pattern p's value of input i. The
// response uses the same layout over outputs. Lanes at and above n are
// zero in the response. A batch of n patterns advances Queries() by n.
type WordOracle interface {
	Oracle
	// QueryWords applies up to 64 patterns at once; n is the number of
	// valid lanes (1..64).
	QueryWords(in []uint64, n int) ([]uint64, error)
}

// ChannelCost is implemented by oracles whose access channel has a
// modeled per-query clock cost. A scan-protocol oracle reports
// 2·chain-length+1 (shift in, capture, shift out); the ideal direct
// oracle reports 1 (a single capture clock, no chains to traverse).
type ChannelCost interface {
	// QueryCycles returns the modeled test-clock cycles one query costs.
	QueryCycles() int64
}

// LaneMask returns a word with the low n bits set — the valid lanes of
// an n-pattern batch.
func LaneMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// PackPattern writes pattern x into lane p of the bit-sliced word
// vector in. len(in) must be at least len(x).
func PackPattern(in []uint64, p int, x []bool) {
	bit := uint64(1) << uint(p)
	for i, v := range x {
		if v {
			in[i] |= bit
		} else {
			in[i] &^= bit
		}
	}
}

// UnpackPattern fills x with lane p of the bit-sliced word vector out.
// len(out) must be at least len(x).
func UnpackPattern(out []uint64, p int, x []bool) {
	for i := range x {
		x[i] = out[i]>>uint(p)&1 == 1
	}
}

// checkBatch validates the shape of a batched query against an oracle.
func checkBatch(o Oracle, in []uint64, n int) error {
	if n < 1 || n > 64 {
		return fmt.Errorf("oracle: batch size %d out of range [1,64]", n)
	}
	if len(in) != o.NumInputs() {
		return fmt.Errorf("oracle: batch width %d != oracle inputs %d", len(in), o.NumInputs())
	}
	return nil
}

// QueryWords sends an n-pattern batch through o's word channel when it
// has one, and falls back to n scalar queries otherwise. Either way the
// responses are bit-identical and lanes at and above n are zero; attacks
// call this helper so they run batched against any Oracle.
func QueryWords(o Oracle, in []uint64, n int) ([]uint64, error) {
	if w, ok := o.(WordOracle); ok {
		return w.QueryWords(in, n)
	}
	if err := checkBatch(o, in, n); err != nil {
		return nil, err
	}
	out := make([]uint64, o.NumOutputs())
	x := make([]bool, o.NumInputs())
	for p := 0; p < n; p++ {
		UnpackPattern(in, p, x)
		y, err := o.Query(x)
		if err != nil {
			return nil, err
		}
		PackPattern(out, p, y)
	}
	return out, nil
}

// Scalarize hides any word-level channel o may have, leaving only the
// scalar Query path. It exists for regression baselines and serial-vs-
// batched benchmark pairs: an attack run against Scalarize(o) crosses
// the oracle interface once per pattern.
func Scalarize(o Oracle) Oracle { return scalarOnly{o} }

type scalarOnly struct{ o Oracle }

func (s scalarOnly) NumInputs() int                 { return s.o.NumInputs() }
func (s scalarOnly) NumOutputs() int                { return s.o.NumOutputs() }
func (s scalarOnly) Query(x []bool) ([]bool, error) { return s.o.Query(x) }
func (s scalarOnly) Queries() int                   { return s.o.Queries() }

// Comb is the ideal oracle: direct combinational evaluation of a circuit
// with the correct key applied. It models unrestricted scan access to an
// unprotected activated chip. The circuit is compiled once at
// construction; queries reuse the evaluator's buffer, and batched
// queries run 64-way word-parallel over the same compiled program.
type Comb struct {
	c       *netlist.Circuit
	eval    *sim.Evaluator
	par     *sim.Parallel // lazily built one-word batch evaluator
	key     []bool
	queries int
}

// NewComb returns an oracle over circuit c unlocked with key. The key
// width must match the circuit; an unkeyed circuit takes a nil key.
func NewComb(c *netlist.Circuit, key []bool) (*Comb, error) {
	if len(key) != c.NumKeys() {
		return nil, fmt.Errorf("oracle: key width %d != circuit %d", len(key), c.NumKeys())
	}
	ev, err := sim.NewEvaluator(c)
	if err != nil {
		return nil, err
	}
	return &Comb{c: c, eval: ev, key: append([]bool(nil), key...)}, nil
}

// NumInputs implements Oracle.
func (o *Comb) NumInputs() int { return o.c.NumInputs() }

// NumOutputs implements Oracle.
func (o *Comb) NumOutputs() int { return o.c.NumOutputs() }

// Query implements Oracle.
func (o *Comb) Query(x []bool) ([]bool, error) {
	o.queries++
	return o.eval.Eval(x, o.key)
}

// QueryWords implements WordOracle: all lanes evaluate in one pass over
// the compiled program.
func (o *Comb) QueryWords(in []uint64, n int) ([]uint64, error) {
	if err := checkBatch(o, in, n); err != nil {
		return nil, err
	}
	if o.par == nil {
		p, err := sim.ForProgram(o.eval.Program(), 1)
		if err != nil {
			return nil, err
		}
		if err := p.SetKey(o.key); err != nil {
			return nil, err
		}
		o.par = p
	}
	prog := o.par.Program()
	for i, id := range prog.PIs {
		o.par.SetInput(int(id), in[i:i+1])
	}
	o.par.Run()
	mask := LaneMask(n)
	out := make([]uint64, prog.NumOutputs())
	for j, id := range prog.POs {
		out[j] = o.par.Value(int(id))[0] & mask
	}
	o.queries += n
	return out, nil
}

// QueryCycles implements ChannelCost: the ideal oracle applies a pattern
// directly, so a query costs a single capture clock.
func (o *Comb) QueryCycles() int64 { return 1 }

// Queries implements Oracle.
func (o *Comb) Queries() int { return o.queries }

// Limited wraps an oracle with a query budget; exceeding it returns
// ErrBudget. The budget counts only queries admitted through this
// wrapper: an oracle shared across attacks (or pre-warmed before the
// wrapper was installed) is not charged for its earlier queries.
// Session subsumes Limited with memoisation and telemetry on top; the
// wrapper remains for callers that want budgeting alone.
type Limited struct {
	Oracle
	Max int

	// used counts the queries this wrapper admitted.
	used int
}

// ErrBudget reports an exhausted oracle query budget.
var ErrBudget = fmt.Errorf("oracle: query budget exhausted")

// Query implements Oracle, enforcing the budget.
func (l *Limited) Query(x []bool) ([]bool, error) {
	if l.Max > 0 && l.used >= l.Max {
		return nil, ErrBudget
	}
	l.used++
	return l.Oracle.Query(x)
}

// Used returns how many queries this wrapper has admitted.
func (l *Limited) Used() int { return l.used }
