// Package oracle defines the black-box interface that oracle-guided
// attacks query, together with the ideal (unprotected) implementation.
//
// In the paper's threat model, the attacker owns an activated chip and
// reaches its combinational core through the scan chains ("scan in –
// capture – scan out"). An unprotected chip therefore behaves like Comb:
// every query returns the correct response. The OraP-protected chip
// (package scan / orap) also satisfies Oracle, but its responses are
// computed with a cleared key register — the central difference the
// experiments measure.
package oracle

import (
	"fmt"

	"orap/internal/netlist"
	"orap/internal/sim"
)

// Oracle answers combinational input/output queries on an activated chip.
type Oracle interface {
	// NumInputs returns the width of query patterns.
	NumInputs() int
	// NumOutputs returns the width of responses.
	NumOutputs() int
	// Query applies one input pattern and returns the chip's response.
	Query(x []bool) ([]bool, error)
	// Queries returns how many times Query has been called.
	Queries() int
}

// Comb is the ideal oracle: direct combinational evaluation of a circuit
// with the correct key applied. It models unrestricted scan access to an
// unprotected activated chip. The circuit is compiled once at
// construction; queries reuse the evaluator's buffer.
type Comb struct {
	c       *netlist.Circuit
	eval    *sim.Evaluator
	key     []bool
	queries int
}

// NewComb returns an oracle over circuit c unlocked with key. The key
// width must match the circuit; an unkeyed circuit takes a nil key.
func NewComb(c *netlist.Circuit, key []bool) (*Comb, error) {
	if len(key) != c.NumKeys() {
		return nil, fmt.Errorf("oracle: key width %d != circuit %d", len(key), c.NumKeys())
	}
	ev, err := sim.NewEvaluator(c)
	if err != nil {
		return nil, err
	}
	return &Comb{c: c, eval: ev, key: append([]bool(nil), key...)}, nil
}

// NumInputs implements Oracle.
func (o *Comb) NumInputs() int { return o.c.NumInputs() }

// NumOutputs implements Oracle.
func (o *Comb) NumOutputs() int { return o.c.NumOutputs() }

// Query implements Oracle.
func (o *Comb) Query(x []bool) ([]bool, error) {
	o.queries++
	return o.eval.Eval(x, o.key)
}

// Queries implements Oracle.
func (o *Comb) Queries() int { return o.queries }

// Limited wraps an oracle with a query budget; exceeding it returns
// ErrBudget. Attack evaluations use it to bound runaway query loops.
type Limited struct {
	Oracle
	Max int
}

// ErrBudget reports an exhausted oracle query budget.
var ErrBudget = fmt.Errorf("oracle: query budget exhausted")

// Query implements Oracle, enforcing the budget.
func (l *Limited) Query(x []bool) ([]bool, error) {
	if l.Max > 0 && l.Oracle.Queries() >= l.Max {
		return nil, ErrBudget
	}
	return l.Oracle.Query(x)
}
