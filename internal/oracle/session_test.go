package oracle

import (
	"bytes"
	"testing"

	"orap/internal/circuits"
	"orap/internal/rng"
	"orap/internal/scan"
)

func TestSessionMemoisesRepeatedQueries(t *testing.T) {
	c := circuits.C17()
	inner, _ := NewComb(c, nil)
	s := NewSession(inner, 0)
	x := []bool{true, false, true, true, false}
	y1, err := s.Query(x)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := s.Query(x)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(boolBytes(y1), boolBytes(y2)) {
		t.Fatal("cached response differs from the original")
	}
	if inner.Queries() != 1 {
		t.Fatalf("underlying oracle saw %d queries, want 1", inner.Queries())
	}
	// The attack's view counts both; the channel view records the hit.
	if s.Queries() != 2 {
		t.Fatalf("session Queries() = %d, want 2", s.Queries())
	}
	st := s.Stats()
	if st.Unique != 1 || st.CacheHits != 1 || st.Queries != 2 {
		t.Fatalf("stats = %+v, want 1 unique / 1 hit / 2 queries", st)
	}
	// Cached responses must be defensive copies.
	y1[0] = !y1[0]
	y3, _ := s.Query(x)
	if y3[0] == y1[0] {
		t.Fatal("cache aliases a caller-held slice")
	}
}

// distinctBatch packs n guaranteed-distinct patterns (the binary encodings
// of 0..n-1), avoiding random-draw collisions in narrow circuits.
func distinctBatch(inputs, n int) ([]uint64, [][]bool) {
	in := make([]uint64, inputs)
	pats := make([][]bool, n)
	for p := 0; p < n; p++ {
		x := make([]bool, inputs)
		for i := range x {
			x[i] = p>>uint(i)&1 == 1
		}
		pats[p] = x
		PackPattern(in, p, x)
	}
	return in, pats
}

func TestSessionBatchedMemoisation(t *testing.T) {
	c := circuits.RippleAdder(4)
	inner, _ := NewComb(c, nil)
	s := NewSession(inner, 0)
	in, pats := distinctBatch(s.NumInputs(), 32)
	if _, err := s.QueryWords(in, 32); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Unique; got != 32 {
		t.Fatalf("unique = %d, want 32", got)
	}
	// Re-ask the same batch: all lanes served from the transcript.
	out, err := s.QueryWords(in, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().CacheHits; got != 32 {
		t.Fatalf("cache hits = %d, want 32", got)
	}
	if inner.Queries() != 32 {
		t.Fatalf("underlying oracle saw %d queries, want 32", inner.Queries())
	}
	// Scatter from cache must equal the original responses.
	y := make([]bool, s.NumOutputs())
	for p, x := range pats {
		want, _ := s.Query(x) // cached too
		UnpackPattern(out, p, y)
		if !bytes.Equal(boolBytes(y), boolBytes(want)) {
			t.Fatalf("lane %d: cached batch response differs", p)
		}
	}
}

func TestSessionCountsInBatchDuplicatesAsHits(t *testing.T) {
	c := circuits.C17()
	inner, _ := NewComb(c, nil)
	s := NewSession(inner, 0)
	// 8 lanes, all the same pattern: one admitted query, 7 hits.
	in := make([]uint64, 5)
	PackPattern(in, 0, []bool{true, true, false, false, true})
	for i := range in {
		if in[i]&1 == 1 {
			in[i] = LaneMask(8)
		}
	}
	if _, err := s.QueryWords(in, 8); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Unique != 1 || st.CacheHits != 7 || st.Queries != 8 {
		t.Fatalf("stats = %+v, want 1 unique / 7 hits / 8 queries", st)
	}
	if s.Admitted() != 1 {
		t.Fatalf("admitted = %d, want 1", s.Admitted())
	}
}

func TestSessionBudgetCountsOnlyAdmitted(t *testing.T) {
	c := circuits.C17()
	inner, _ := NewComb(c, nil)
	// Pre-warm the oracle so lifetime queries exceed the budget up front.
	if _, err := inner.Query(make([]bool, 5)); err != nil {
		t.Fatal(err)
	}
	s := NewSession(inner, 2)
	a := []bool{true, false, false, false, false}
	b := []bool{false, true, false, false, false}
	d := []bool{false, false, true, false, false}
	if _, err := s.Query(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(b); err != nil {
		t.Fatal(err)
	}
	// Budget exhausted for new patterns…
	if _, err := s.Query(d); err != ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	// …but transcript hits stay free.
	if _, err := s.Query(a); err != nil {
		t.Fatalf("cache hit rejected under exhausted budget: %v", err)
	}
}

func TestSessionBatchBudgetIsAtomic(t *testing.T) {
	c := circuits.RippleAdder(4)
	inner, _ := NewComb(c, nil)
	s := NewSession(inner, 10)
	in, _ := drawBatch(rng.New(5), s.NumInputs(), 16)
	// 16 misses against a 10-query budget: the whole batch is rejected and
	// the session is left untouched.
	if _, err := s.QueryWords(in, 16); err != ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	if s.Admitted() != 0 || s.Stats().Queries != 0 || inner.Queries() != 0 {
		t.Fatalf("rejected batch had side effects: admitted %d, queries %d, inner %d",
			s.Admitted(), s.Stats().Queries, inner.Queries())
	}
	// A batch that fits is admitted.
	if _, err := s.QueryWords(in, 10); err != nil {
		t.Fatal(err)
	}
	if s.Admitted() != 10 {
		t.Fatalf("admitted = %d, want 10", s.Admitted())
	}
}

func TestSessionScalarFallbackOracle(t *testing.T) {
	// A session over a scalar-only oracle still serves batches, crossing
	// the wrapped interface once per miss.
	c := circuits.RippleAdder(4)
	inner, _ := NewComb(c, nil)
	ref, _ := NewComb(c, nil)
	s := NewSession(Scalarize(inner), 0)
	assertBatchMatchesScalar(t, s, ref, 20, 77)
	st := s.Stats()
	if st.BatchCalls != 0 {
		t.Fatalf("scalar-only oracle recorded %d batch calls", st.BatchCalls)
	}
	// One scalar crossing per miss; hits (random collisions) stay cached.
	if st.OracleCalls != st.Unique {
		t.Fatalf("oracle calls = %d, want %d (one per unique pattern)", st.OracleCalls, st.Unique)
	}
	if st.Unique+st.CacheHits != st.Queries {
		t.Fatalf("stats don't balance: %+v", st)
	}
}

func TestSessionScanCycleModel(t *testing.T) {
	// Comb models a direct oracle: one capture clock per admitted query.
	c := circuits.C17()
	comb, _ := NewComb(c, nil)
	s := NewSession(comb, 0)
	if _, err := s.Query(make([]bool, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(make([]bool, 5)); err != nil { // cache hit: free
		t.Fatal(err)
	}
	if got := s.Stats().ScanCycles; got != 1 {
		t.Fatalf("comb scan cycles = %d, want 1", got)
	}

	// Scan models the full protocol: 2·chain-length+1 per admitted query,
	// matching the chip's own cycle accounting.
	_, _, ch := protectedChip(t, scan.OraPBasic, 11)
	so := NewScan(ch)
	ss := NewSession(so, 0)
	in, _ := drawBatch(rng.New(12), ss.NumInputs(), 9)
	if _, err := ss.QueryWords(in, 9); err != nil {
		t.Fatal(err)
	}
	want := 9 * ch.CyclesPerQuery()
	if got := ss.Stats().ScanCycles; got != want {
		t.Fatalf("scan cycles = %d, want %d (9 queries × (2·%d+1))", got, want, ch.ChainLength())
	}
	if ch.Cycles() != want {
		t.Fatalf("chip accounted %d cycles, session modeled %d", ch.Cycles(), want)
	}
}

func TestSessionQueryWidthChecked(t *testing.T) {
	c := circuits.C17()
	inner, _ := NewComb(c, nil)
	s := NewSession(inner, 0)
	if _, err := s.Query(make([]bool, 3)); err == nil {
		t.Fatal("wrong scalar width accepted")
	}
	if _, err := s.QueryWords(make([]uint64, 3), 4); err == nil {
		t.Fatal("wrong batch width accepted")
	}
}
