package oracle

import (
	"testing"

	"orap/internal/rng"
	"orap/internal/scan"
)

// The serial/batched pair measures the word-parallel channel against 64
// scalar queries of the same patterns on an identical OraP chip.

func BenchmarkScanOracleSerial64(b *testing.B) {
	_, _, ch := protectedChip(b, scan.OraPBasic, 99)
	o := NewScan(ch)
	_, pats := drawBatch(rng.New(17), o.NumInputs(), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range pats {
			if _, err := o.Query(x); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkScanOracleBatched64(b *testing.B) {
	_, _, ch := protectedChip(b, scan.OraPBasic, 99)
	o := NewScan(ch)
	in, _ := drawBatch(rng.New(17), o.NumInputs(), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.QueryWords(in, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionCachedBatch prices a fully-memoised batch: after warm-up
// every lane is a transcript hit, so no scan protocol runs at all.
func BenchmarkSessionCachedBatch(b *testing.B) {
	_, _, ch := protectedChip(b, scan.OraPBasic, 99)
	s := NewSession(NewScan(ch), 0)
	in, _ := drawBatch(rng.New(17), s.NumInputs(), 64)
	if _, err := s.QueryWords(in, 64); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.QueryWords(in, 64); err != nil {
			b.Fatal(err)
		}
	}
}
