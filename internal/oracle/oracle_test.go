package oracle

import (
	"testing"

	"orap/internal/circuits"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/scan"
	"orap/internal/sim"
)

func TestCombOracleMatchesSimulation(t *testing.T) {
	c := circuits.C17()
	o, err := NewComb(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 32; v++ {
		x := make([]bool, 5)
		for i := range x {
			x[i] = v>>uint(i)&1 == 1
		}
		got, err := o.Query(x)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := sim.Eval(c, x, nil)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("input %05b output %d differs", v, j)
			}
		}
	}
	if o.Queries() != 32 {
		t.Fatalf("query count = %d, want 32", o.Queries())
	}
}

func TestCombOracleKeyWidthChecked(t *testing.T) {
	c := circuits.C17()
	if _, err := NewComb(c, []bool{true}); err == nil {
		t.Fatal("key width mismatch accepted")
	}
}

func TestLimitedOracleBudget(t *testing.T) {
	c := circuits.C17()
	inner, _ := NewComb(c, nil)
	o := &Limited{Oracle: inner, Max: 2}
	x := make([]bool, 5)
	for i := 0; i < 2; i++ {
		if _, err := o.Query(x); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := o.Query(x); err != ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func TestLimitedBudgetCountsOnlyAdmittedQueries(t *testing.T) {
	// Regression: the budget used to compare the wrapped oracle's lifetime
	// Queries() against Max, so reusing an oracle across attacks charged
	// the earlier attack's queries to the new budget.
	c := circuits.C17()
	inner, _ := NewComb(c, nil)
	x := make([]bool, 5)
	// Pre-warm the shared oracle: 5 queries before the wrapper exists.
	for i := 0; i < 5; i++ {
		if _, err := inner.Query(x); err != nil {
			t.Fatal(err)
		}
	}
	o := &Limited{Oracle: inner, Max: 3}
	for i := 0; i < 3; i++ {
		if _, err := o.Query(x); err != nil {
			t.Fatalf("admitted query %d rejected: %v (budget charged for pre-warm queries)", i, err)
		}
	}
	if _, err := o.Query(x); err != ErrBudget {
		t.Fatalf("expected ErrBudget after 3 admitted queries, got %v", err)
	}
	if o.Used() != 3 {
		t.Fatalf("Used() = %d, want 3", o.Used())
	}
	if inner.Queries() != 8 {
		t.Fatalf("inner queries = %d, want 8", inner.Queries())
	}
}

// protectedChip builds a locked adder behind the requested protection and
// returns (original, locked, chip). testing.TB so benchmarks share it.
func protectedChip(t testing.TB, prot scan.Protection, seed uint64) (*netlist.Circuit, *lock.Locked, *scan.Chip) {
	t.Helper()
	orig := circuits.RippleAdder(4)
	l, err := lock.RandomXOR(orig, 8, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := orap.Protect(l.Circuit, l.Key, 5, 1, prot, orap.Options{Rand: rng.New(seed + 100)})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := scan.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Unlock(nil); err != nil {
		t.Fatal(err)
	}
	return orig, l, ch
}

func TestScanOracleUnprotectedGivesCorrectResponses(t *testing.T) {
	orig, _, ch := protectedChip(t, scan.None, 1)
	o := NewScan(ch)
	r := rng.New(2)
	x := make([]bool, o.NumInputs())
	for trial := 0; trial < 25; trial++ {
		r.Bits(x)
		got, err := o.Query(x)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := sim.Eval(orig, x, nil)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d: unprotected scan oracle returned a wrong bit", trial)
			}
		}
	}
}

func TestScanOracleOraPGivesLockedResponses(t *testing.T) {
	// The paper's central claim: on an OraP chip, scan-based queries see
	// the circuit under a cleared key register, never the correct key.
	for _, prot := range []scan.Protection{scan.OraPBasic, scan.OraPModified} {
		orig, l, ch := protectedChip(t, prot, 3)
		o := NewScan(ch)
		r := rng.New(4)
		x := make([]bool, o.NumInputs())
		zeroKey := make([]bool, l.Circuit.NumKeys())
		sawCorruption := false
		for trial := 0; trial < 25; trial++ {
			r.Bits(x)
			got, err := o.Query(x)
			if err != nil {
				t.Fatal(err)
			}
			// Responses must match the LOCKED circuit with the cleared
			// (all-zero) key…
			wantLocked, _ := sim.Eval(l.Circuit, x, zeroKey)
			for j := range wantLocked {
				if got[j] != wantLocked[j] {
					t.Fatalf("%v trial %d: response is not the locked-circuit response", prot, trial)
				}
			}
			// …and must diverge from the correct function somewhere.
			wantTrue, _ := sim.Eval(orig, x, nil)
			for j := range wantTrue {
				if got[j] != wantTrue[j] {
					sawCorruption = true
				}
			}
		}
		if !sawCorruption {
			t.Fatalf("%v: zero-key responses coincided with the correct function on all samples", prot)
		}
	}
}

func TestScanOracleChipStaysProtectedAfterManyQueries(t *testing.T) {
	_, _, ch := protectedChip(t, scan.OraPBasic, 5)
	o := NewScan(ch)
	x := make([]bool, o.NumInputs())
	for i := 0; i < 10; i++ {
		if _, err := o.Query(x); err != nil {
			t.Fatal(err)
		}
	}
	if ch.Unlocked() {
		t.Fatal("chip believes it is unlocked after scan queries")
	}
	for _, b := range ch.Key() {
		if b {
			t.Fatal("key register non-zero after scan queries")
		}
	}
}

func TestScanOracleQueryWidthChecked(t *testing.T) {
	_, _, ch := protectedChip(t, scan.None, 6)
	o := NewScan(ch)
	if _, err := o.Query(make([]bool, 3)); err == nil {
		t.Fatal("wrong query width accepted")
	}
}
