package oracle

import (
	"bytes"
	"fmt"
	"testing"

	"orap/internal/circuits"
	"orap/internal/rng"
	"orap/internal/scan"
)

// drawBatch fills a bit-sliced batch with n random patterns, one r.Bits
// draw per pattern, and returns the scalar patterns in draw order.
func drawBatch(r *rng.Stream, inputs, n int) ([]uint64, [][]bool) {
	in := make([]uint64, inputs)
	pats := make([][]bool, n)
	x := make([]bool, inputs)
	for p := 0; p < n; p++ {
		r.Bits(x)
		pats[p] = append([]bool(nil), x...)
		PackPattern(in, p, x)
	}
	return in, pats
}

// assertBatchMatchesScalar queries batched against scalar-built twins of
// the same oracle construction and requires bit-identical responses.
func assertBatchMatchesScalar(t *testing.T, batched, scalar Oracle, n int, seed uint64) {
	t.Helper()
	in, pats := drawBatch(rng.New(seed), batched.NumInputs(), n)
	out, err := QueryWords(batched, in, n)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]bool, batched.NumOutputs())
	for p := 0; p < n; p++ {
		want, err := scalar.Query(pats[p])
		if err != nil {
			t.Fatal(err)
		}
		UnpackPattern(out, p, got)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("pattern %d output %d: batched %v, scalar %v", p, j, got[j], want[j])
			}
		}
	}
	// Garbage lanes must be masked off.
	for j := 0; j < batched.NumOutputs(); j++ {
		if out[j]&^LaneMask(n) != 0 {
			t.Fatalf("output %d has bits set above lane %d", j, n)
		}
	}
	if batched.Queries() != scalar.Queries() {
		t.Fatalf("batched counted %d queries, scalar %d", batched.Queries(), scalar.Queries())
	}
}

func TestQueryWordsMatchesScalarComb(t *testing.T) {
	c := circuits.RippleAdder(6)
	for _, n := range []int{1, 7, 64} {
		a, err := NewComb(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewComb(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertBatchMatchesScalar(t, a, b, n, uint64(n)+10)
	}
}

func TestQueryWordsMatchesScalarScanAndOraP(t *testing.T) {
	// The batched scan path must replay the full per-pattern protocol: on
	// the unprotected chip responses carry the correct key, on OraP chips
	// every pattern in the batch sees the self-cleared register.
	for _, prot := range []scan.Protection{scan.None, scan.OraPBasic, scan.OraPModified} {
		for _, n := range []int{1, 5, 64} {
			t.Run(fmt.Sprintf("%v/n=%d", prot, n), func(t *testing.T) {
				_, _, chA := protectedChip(t, prot, 21)
				_, _, chB := protectedChip(t, prot, 21)
				assertBatchMatchesScalar(t, NewScan(chA), NewScan(chB), n, uint64(n))
				// The chips must also end in identical state: same key
				// register, same scan-cycle bill, same unlocked flag.
				if !bytes.Equal(boolBytes(chA.Key()), boolBytes(chB.Key())) {
					t.Fatal("key register differs between batched and scalar chips")
				}
				if chA.Cycles() != chB.Cycles() {
					t.Fatalf("cycle accounting differs: batched %d, scalar %d", chA.Cycles(), chB.Cycles())
				}
				if chA.Unlocked() != chB.Unlocked() {
					t.Fatal("unlocked bookkeeping differs between batched and scalar chips")
				}
			})
		}
	}
}

func TestScanBatchFollowedByScalarQueriesAgree(t *testing.T) {
	// Interleaving the two channels must leave the chip in the same state:
	// a scalar query after a batch answers exactly as on a chip that saw
	// only scalar queries.
	_, _, chA := protectedChip(t, scan.OraPBasic, 33)
	_, _, chB := protectedChip(t, scan.OraPBasic, 33)
	a, b := NewScan(chA), NewScan(chB)
	in, pats := drawBatch(rng.New(7), a.NumInputs(), 17)
	if _, err := a.QueryWords(in, 17); err != nil {
		t.Fatal(err)
	}
	for _, x := range pats {
		if _, err := b.Query(x); err != nil {
			t.Fatal(err)
		}
	}
	x := make([]bool, a.NumInputs())
	rng.New(8).Bits(x)
	ya, err := a.Query(x)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := b.Query(x)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(boolBytes(ya), boolBytes(yb)) {
		t.Fatal("scalar query after a batch differs from the all-scalar chip")
	}
	if chA.Cycles() != chB.Cycles() {
		t.Fatalf("cycles differ after mixed channels: %d vs %d", chA.Cycles(), chB.Cycles())
	}
}

func TestQueryWordsScalarFallback(t *testing.T) {
	// The package-level helper must serve any Oracle: Scalarize hides the
	// word channel, forcing the scalar fallback, and the responses must
	// still be bit-identical.
	c := circuits.RippleAdder(5)
	a, _ := NewComb(c, nil)
	b, _ := NewComb(c, nil)
	assertBatchMatchesScalar(t, Scalarize(a), b, 23, 99)
}

func TestQueryWordsErrorPaths(t *testing.T) {
	c := circuits.C17()
	o, _ := NewComb(c, nil)
	if _, err := o.QueryWords(make([]uint64, 5), 0); err == nil {
		t.Fatal("batch size 0 accepted")
	}
	if _, err := o.QueryWords(make([]uint64, 5), 65); err == nil {
		t.Fatal("batch size 65 accepted")
	}
	if _, err := o.QueryWords(make([]uint64, 3), 4); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if o.Queries() != 0 {
		t.Fatalf("rejected batches advanced the query count to %d", o.Queries())
	}
}

func FuzzQueryWordsMatchesScalar(f *testing.F) {
	f.Add(uint8(1), []byte{0x00})
	f.Add(uint8(64), []byte{0xff, 0x0f, 0xaa})
	f.Add(uint8(13), []byte{0x5a, 0xc3})
	f.Fuzz(func(t *testing.T, nRaw uint8, data []byte) {
		n := int(nRaw)%64 + 1
		c := circuits.RippleAdder(3)
		batched, err := NewComb(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		scalar, err := NewComb(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		ni := c.NumInputs()
		in := make([]uint64, ni)
		x := make([]bool, ni)
		pats := make([][]bool, n)
		for p := 0; p < n; p++ {
			for i := range x {
				bit := p*ni + i
				x[i] = bit/8 < len(data) && data[bit/8]>>(uint(bit)%8)&1 == 1
			}
			pats[p] = append([]bool(nil), x...)
			PackPattern(in, p, x)
		}
		out, err := batched.QueryWords(in, n)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]bool, c.NumOutputs())
		for p := 0; p < n; p++ {
			want, err := scalar.Query(pats[p])
			if err != nil {
				t.Fatal(err)
			}
			UnpackPattern(out, p, got)
			if !bytes.Equal(boolBytes(got), boolBytes(want)) {
				t.Fatalf("pattern %d: batched response differs from scalar", p)
			}
		}
	})
}

// faultyChip wraps a real chip and fails selected protocol steps, to
// check the oracle restores scan enable on every error path.
type faultyChip struct {
	*scan.Chip
	failScanIn  bool
	failCapture bool
	failScanOut bool
	failBatch   bool
}

func (f *faultyChip) ScanInFFs(v []bool) error {
	if f.failScanIn {
		return fmt.Errorf("injected scan-in fault")
	}
	return f.Chip.ScanInFFs(v)
}

func (f *faultyChip) CaptureClock(pins []bool) ([]bool, error) {
	if f.failCapture {
		return nil, fmt.Errorf("injected capture fault")
	}
	return f.Chip.CaptureClock(pins)
}

func (f *faultyChip) ScanOutFFs() ([]bool, error) {
	if f.failScanOut {
		return nil, fmt.Errorf("injected scan-out fault")
	}
	return f.Chip.ScanOutFFs()
}

func (f *faultyChip) ScanBatch(in []uint64, n int) ([]uint64, error) {
	if f.failBatch {
		f.Chip.SetScanEnable(true) // leave the chip mid-protocol
		return nil, fmt.Errorf("injected batch fault")
	}
	return f.Chip.ScanBatch(in, n)
}

func TestScanOracleRestoresScanEnableOnError(t *testing.T) {
	// Regression: a failed ScanInFFs/ScanOutFFs used to return with scan
	// enable still asserted, so the next query's SetScanEnable(true) saw
	// no rising edge — on an OraP chip that skips the key-register clear.
	cases := []struct {
		name  string
		arm   func(f *faultyChip)
		batch bool
	}{
		{"scan-in", func(f *faultyChip) { f.failScanIn = true }, false},
		{"scan-out", func(f *faultyChip) { f.failScanOut = true }, false},
		{"capture", func(f *faultyChip) { f.failCapture = true }, false},
		{"batch", func(f *faultyChip) { f.failBatch = true }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, ch := protectedChip(t, scan.OraPBasic, 44)
			f := &faultyChip{Chip: ch}
			o := &Scan{chip: f}
			tc.arm(f)
			var err error
			if tc.batch {
				_, err = o.QueryWords(make([]uint64, o.NumInputs()), 4)
			} else {
				_, err = o.Query(make([]bool, o.NumInputs()))
			}
			if err == nil {
				t.Fatal("injected fault did not surface")
			}
			if f.ScanEnable() {
				t.Fatal("scan enable left asserted after a failed query")
			}
			// The channel must be usable again right away.
			f.failScanIn, f.failCapture, f.failScanOut, f.failBatch = false, false, false, false
			if _, err := o.Query(make([]bool, o.NumInputs())); err != nil {
				t.Fatalf("query after recovered fault failed: %v", err)
			}
		})
	}
}

func boolBytes(bs []bool) []byte {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = 1
		}
	}
	return out
}
