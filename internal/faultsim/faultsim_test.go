package faultsim

import (
	"testing"

	"orap/internal/circuits"
	"orap/internal/netlist"
	"orap/internal/rng"
)

func TestAllFaultsCount(t *testing.T) {
	// c17: 5 inputs + 6 NAND2 gates, each with 2 input pins.
	c := circuits.C17()
	faults := AllFaults(c)
	// Outputs: 11 observed nodes (5 inputs + 6 gates) ×2 = 22;
	// input pins: 12 ×2 = 24. Total 46.
	if len(faults) != 46 {
		t.Fatalf("fault universe = %d, want 46", len(faults))
	}
}

func TestCollapseReducesFaults(t *testing.T) {
	c := circuits.C17()
	all := AllFaults(c)
	col := CollapseFaults(c)
	if len(col) >= len(all) {
		t.Fatalf("collapsing did not reduce: %d vs %d", len(col), len(all))
	}
	// NAND gates keep only input s-a-1: 22 output faults + 12 input s-a-1.
	if len(col) != 34 {
		t.Fatalf("collapsed list = %d, want 34", len(col))
	}
}

func TestC17FullCoverageWithRandomPatterns(t *testing.T) {
	// c17 is fully testable; plenty of random patterns must reach 100%.
	c := circuits.C17()
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	res := s.RunRandom(CollapseFaults(c), 8, rng.New(1))
	if res.Coverage() != 100 {
		t.Fatalf("coverage = %.2f%%, want 100%% (remaining %v)", res.Coverage(), res.Remaining)
	}
}

func TestStuckOutputDetectedByObviousPattern(t *testing.T) {
	// y = AND(a, b): y s-a-0 is detected exactly by a=b=1.
	c := netlist.New("and2")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	y := c.MustAddGate(netlist.And, "y", a, b)
	c.MarkOutput(y)
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	f := Fault{Node: y, Pin: -1, SA1: false}
	hit, err := s.DetectsWithPattern(f, []bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("a=b=1 must detect y s-a-0")
	}
	hit, err = s.DetectsWithPattern(f, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("a=1,b=0 cannot detect y s-a-0 (output already 0)")
	}
}

func TestInputPinFault(t *testing.T) {
	// y = AND(a, b): pin-a s-a-1 is detected by a=0, b=1 (good 0, bad 1).
	c := netlist.New("and2")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	y := c.MustAddGate(netlist.And, "y", a, b)
	c.MarkOutput(y)
	s, _ := New(c)
	f := Fault{Node: y, Pin: 0, SA1: true}
	hit, err := s.DetectsWithPattern(f, []bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("a=0,b=1 must detect pin-a s-a-1")
	}
	hit, _ = s.DetectsWithPattern(f, []bool{false, false})
	if hit {
		t.Fatal("b=0 masks the pin fault")
	}
}

func TestRedundantFaultNeverDetected(t *testing.T) {
	// y = OR(a, AND(a, b)) is logically just a; the AND gate's effect is
	// absorbed, so AND-output s-a-0 is redundant.
	c := netlist.New("redundant")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	and := c.MustAddGate(netlist.And, "and", a, b)
	y := c.MustAddGate(netlist.Or, "y", a, and)
	c.MarkOutput(y)
	s, _ := New(c)
	f := Fault{Node: and, Pin: -1, SA1: false}
	res := s.RunRandom([]Fault{f}, 16, rng.New(2))
	if res.Detected != 0 {
		t.Fatal("redundant fault reported detected")
	}
}

func TestFaultDroppingKeepsTotalsConsistent(t *testing.T) {
	c := circuits.RippleAdder(4)
	s, _ := New(c)
	faults := CollapseFaults(c)
	res := s.RunRandom(faults, 4, rng.New(3))
	if res.Detected+len(res.Remaining) != res.Total {
		t.Fatalf("detected %d + remaining %d != total %d", res.Detected, len(res.Remaining), res.Total)
	}
	if res.Total != len(faults) {
		t.Fatalf("total %d != fault list %d", res.Total, len(faults))
	}
	if res.Coverage() < 90 {
		t.Fatalf("adder random coverage suspiciously low: %.2f%%", res.Coverage())
	}
}

func TestKeyInputsAreControllable(t *testing.T) {
	// A fault behind a key-controlled XOR must be detectable because key
	// inputs receive patterns like any other input.
	c := netlist.New("keyed")
	a, _ := c.AddInput("a")
	k, _ := c.AddKeyInput("keyinput0")
	x := c.MustAddGate(netlist.Xor, "x", a, k)
	c.MarkOutput(x)
	s, _ := New(c)
	res := s.RunRandom(CollapseFaults(c), 4, rng.New(4))
	if res.Coverage() != 100 {
		t.Fatalf("keyed circuit coverage = %.2f%%, want 100%%", res.Coverage())
	}
}

func TestFaultString(t *testing.T) {
	if got := (Fault{Node: 3, Pin: -1, SA1: true}).String(); got != "n3 s-a-1" {
		t.Fatalf("String = %q", got)
	}
	if got := (Fault{Node: 3, Pin: 1, SA1: false}).String(); got != "n3.in1 s-a-0" {
		t.Fatalf("String = %q", got)
	}
}

func BenchmarkRandomFaultSimAdder16(b *testing.B) {
	c := circuits.RippleAdder(16)
	s, err := New(c)
	if err != nil {
		b.Fatal(err)
	}
	faults := CollapseFaults(c)
	r := rng.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunRandom(faults, 4, r)
	}
}

func TestRunRandomWorkerCountInvariance(t *testing.T) {
	// Fault detection is independent per fault and the random patterns are
	// drawn once per block regardless of the pool size, so the campaign
	// result — counts and the order of Remaining — must be identical at
	// any worker count. The adder is large enough to cross the parallel
	// floor, so the fan-out path really runs.
	c := circuits.RippleAdder(48)
	faults := CollapseFaults(c)
	if len(faults) < parallelFaultFloor {
		t.Fatalf("test circuit too small to exercise the parallel path: %d faults", len(faults))
	}
	run := func(workers int) Result {
		s, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		s.Workers = workers
		return s.RunRandom(faults, 2, rng.New(17))
	}
	serial := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if got.Total != serial.Total || got.Detected != serial.Detected {
			t.Fatalf("Workers=%d: detected %d/%d, serial %d/%d", w, got.Detected, got.Total, serial.Detected, serial.Total)
		}
		if len(got.Remaining) != len(serial.Remaining) {
			t.Fatalf("Workers=%d: %d remaining, serial %d", w, len(got.Remaining), len(serial.Remaining))
		}
		for i := range got.Remaining {
			if got.Remaining[i] != serial.Remaining[i] {
				t.Fatalf("Workers=%d: remaining[%d] = %v, serial %v", w, i, got.Remaining[i], serial.Remaining[i])
			}
		}
	}
}
