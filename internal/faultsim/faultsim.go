// Package faultsim is a 64-way parallel-pattern stuck-at fault simulator
// with fault dropping, playing the role HOPE plays in the paper's Table II
// flow: random patterns first knock out the easily detected faults, so
// deterministic ATPG only handles the hard remainder.
//
// Faults live on gate outputs and gate input pins. Simulation is
// parallel-pattern single-fault propagation (PPSFP): the good circuit is
// evaluated once per 64-pattern block, then each live fault is injected
// and its effect propagated event-wise through its fanout cone only.
// Good values and fault propagation both run over the compiled circuit
// IR (internal/ir), sharing one immutable program — and the same gate
// kernel — with the bit-parallel simulator.
package faultsim

import (
	"fmt"

	"orap/internal/ir"
	"orap/internal/netlist"
	"orap/internal/par"
	"orap/internal/rng"
	"orap/internal/sim"
)

// Fault is a single stuck-at fault.
type Fault struct {
	// Node is the gate whose output (Pin == -1) or input pin (Pin >= 0,
	// an index into the gate's fanin) is stuck.
	Node int
	// Pin selects the faulty connection: -1 for the gate output,
	// otherwise the fanin position.
	Pin int
	// SA1 selects stuck-at-1 (true) or stuck-at-0 (false).
	SA1 bool
}

// String renders the fault in the conventional "node[/pin] s-a-v" form.
func (f Fault) String() string {
	v := 0
	if f.SA1 {
		v = 1
	}
	if f.Pin < 0 {
		return fmt.Sprintf("n%d s-a-%d", f.Node, v)
	}
	return fmt.Sprintf("n%d.in%d s-a-%d", f.Node, f.Pin, v)
}

// AllFaults enumerates the uncollapsed fault universe: two faults per gate
// output (for nodes with observers or marked as outputs) and two per gate
// input pin.
func AllFaults(c *netlist.Circuit) []Fault {
	fanout := c.FanoutLists()
	isPO := make([]bool, c.NumNodes())
	for _, o := range c.POs {
		isPO[o] = true
	}
	var faults []Fault
	for id, g := range c.Gates {
		if g.Type == netlist.Const0 || g.Type == netlist.Const1 {
			continue
		}
		if len(fanout[id]) > 0 || isPO[id] {
			faults = append(faults, Fault{Node: id, Pin: -1, SA1: false}, Fault{Node: id, Pin: -1, SA1: true})
		}
		for pin := range g.Fanin {
			faults = append(faults, Fault{Node: id, Pin: pin, SA1: false}, Fault{Node: id, Pin: pin, SA1: true})
		}
	}
	return faults
}

// CollapseFaults returns a reduced fault list using standard structural
// equivalences: an input pin stuck at the gate's controlling value is
// equivalent to the output stuck at the controlled value, and inverter /
// buffer input faults are equivalent to (possibly inverted) output faults.
// Dominance is not used, so coverage numbers remain exact.
func CollapseFaults(c *netlist.Circuit) []Fault {
	var faults []Fault
	fanout := c.FanoutLists()
	isPO := make([]bool, c.NumNodes())
	for _, o := range c.POs {
		isPO[o] = true
	}
	for id, g := range c.Gates {
		if g.Type == netlist.Const0 || g.Type == netlist.Const1 {
			continue
		}
		observed := len(fanout[id]) > 0 || isPO[id]
		if observed {
			faults = append(faults, Fault{Node: id, Pin: -1, SA1: false}, Fault{Node: id, Pin: -1, SA1: true})
		}
		switch g.Type {
		case netlist.Buf, netlist.Not:
			// Input faults equivalent to output faults: skip.
		case netlist.And, netlist.Nand:
			// Input s-a-0 forces the AND term: equivalent to output
			// s-a-0 (AND) / s-a-1 (NAND). Keep only input s-a-1.
			for pin := range g.Fanin {
				faults = append(faults, Fault{Node: id, Pin: pin, SA1: true})
			}
		case netlist.Or, netlist.Nor:
			// Input s-a-1 collapses; keep input s-a-0.
			for pin := range g.Fanin {
				faults = append(faults, Fault{Node: id, Pin: pin, SA1: false})
			}
		case netlist.Xor, netlist.Xnor:
			// No controlling value: keep both input fault polarities.
			for pin := range g.Fanin {
				faults = append(faults, Fault{Node: id, Pin: pin, SA1: false}, Fault{Node: id, Pin: pin, SA1: true})
			}
		}
	}
	return faults
}

// Simulator runs parallel-pattern fault simulation over a fixed circuit.
type Simulator struct {
	// Workers bounds the worker pool that fans the live fault list out
	// during RunRandom (0 = all cores, 1 = serial). Detection of each
	// fault is independent of every other, so the result — including the
	// order of Remaining — does not depend on it.
	Workers int

	prog *ir.Program
	par  *sim.Parallel

	// Per-run scratch, epoch-stamped to avoid clearing.
	faulty    []uint64
	stamp     []int
	seenStamp []int
	epoch     int
	heap      posHeap

	isPO []bool
}

// New compiles c and builds a fault simulator with one 64-pattern word
// per node.
func New(c *netlist.Circuit) (*Simulator, error) {
	prog, err := ir.Compile(c)
	if err != nil {
		return nil, err
	}
	return ForProgram(prog)
}

// ForProgram builds a fault simulator over an already-compiled program,
// sharing it read-only with any other consumer.
func ForProgram(prog *ir.Program) (*Simulator, error) {
	par, err := sim.ForProgram(prog, 1)
	if err != nil {
		return nil, err
	}
	n := prog.NumNodes()
	isPO := make([]bool, n)
	for _, o := range prog.POs {
		isPO[o] = true
	}
	s := &Simulator{
		prog:      prog,
		par:       par,
		faulty:    make([]uint64, n),
		stamp:     make([]int, n),
		seenStamp: make([]int, n),
		isPO:      isPO,
	}
	s.heap.pos = prog.Pos
	return s, nil
}

// Program returns the simulator's compiled program.
func (s *Simulator) Program() *ir.Program { return s.prog }

// clone returns a propagation worker sharing the (read-only) compiled
// program and the good-circuit evaluator, with private fault-effect
// scratch. Clones only read s.par between the good-value Run and the
// merge barrier, so a batch of clones can simulate disjoint fault chunks
// of the same block concurrently.
func (s *Simulator) clone() *Simulator {
	n := s.prog.NumNodes()
	cl := &Simulator{
		prog:      s.prog,
		par:       s.par,
		faulty:    make([]uint64, n),
		stamp:     make([]int, n),
		seenStamp: make([]int, n),
		isPO:      s.isPO,
	}
	cl.heap.pos = s.prog.Pos
	return cl
}

// goodValue returns the good-circuit word of node id for the current block.
func (s *Simulator) goodValue(id int) uint64 { return s.par.Value(id)[0] }

// faultyValue returns the faulty word of node id (good value when the
// fault effect has not reached it this epoch).
func (s *Simulator) faultyValue(id int) uint64 {
	if s.stamp[id] == s.epoch {
		return s.faulty[id]
	}
	return s.goodValue(id)
}

func (s *Simulator) setFaulty(id int, v uint64) {
	s.faulty[id] = v
	s.stamp[id] = s.epoch
}

// evalFaulty recomputes node id's value from the faulty values of its
// fanins via the shared IR gate kernel, honouring an input-pin fault on
// (fnode, fpin).
func (s *Simulator) evalFaulty(id int, f Fault) uint64 {
	op := s.prog.Ops[id]
	if op == ir.OpInput {
		return s.goodValue(id)
	}
	fan := s.prog.FaninSpan(id)
	return ir.EvalWord(op, len(fan), func(pin int) uint64 {
		if id == f.Node && pin == f.Pin {
			if f.SA1 {
				return ^uint64(0)
			}
			return 0
		}
		return s.faultyValue(int(fan[pin]))
	})
}

// simulateFault propagates one fault over the current block and reports
// whether any primary output differs on any pattern.
func (s *Simulator) simulateFault(f Fault) bool {
	s.epoch++
	var root int
	var rootVal uint64
	if f.Pin < 0 {
		root = f.Node
		if f.SA1 {
			rootVal = ^uint64(0)
		} else {
			rootVal = 0
		}
	} else {
		root = f.Node
		rootVal = s.evalFaulty(root, f)
	}
	if rootVal == s.goodValue(root) {
		return false // fault not excited by any pattern in the block
	}
	s.setFaulty(root, rootVal)
	if s.isPO[root] {
		return true
	}
	// Event-driven propagation in topological order using a sorted
	// frontier (binary heap keyed by topo position). The seen stamps and
	// the heap storage are reused across faults to stay allocation-free.
	h := &s.heap
	h.heap = h.heap[:0]
	push := func(id int32) {
		if s.seenStamp[id] != s.epoch {
			s.seenStamp[id] = s.epoch
			h.push(id)
		}
	}
	for _, fo := range s.prog.FanoutSpan(root) {
		push(fo)
	}
	for h.len() > 0 {
		id := int(h.pop())
		nv := s.evalFaulty(id, f)
		if nv == s.goodValue(id) {
			continue
		}
		s.setFaulty(id, nv)
		if s.isPO[id] {
			return true
		}
		for _, fo := range s.prog.FanoutSpan(id) {
			push(fo)
		}
	}
	return false
}

// Result summarizes a fault-simulation campaign.
type Result struct {
	// Total is the number of simulated faults.
	Total int
	// Detected is the number of faults some pattern detected.
	Detected int
	// Remaining lists the undetected faults (for handoff to ATPG).
	Remaining []Fault
}

// Coverage returns the detected fraction in percent.
func (r Result) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Detected) / float64(r.Total)
}

// parallelFaultFloor is the live-list size below which the per-block
// fan-out is not worth the goroutine round trip and RunRandom drops back
// to the serial loop.
const parallelFaultFloor = 256

// RunRandom simulates `blocks` blocks of 64 random patterns with fault
// dropping and returns the campaign result. Key inputs are treated as
// freely controllable (they sit in the scan chains under OraP), so they
// receive random patterns exactly like primary inputs.
//
// Within each block the live fault list is partitioned into batches
// simulated by per-worker clones over the shared good-circuit values
// (s.Workers bounds the pool); detection flags are merged in fault order
// at the barrier, so the result is identical at any worker count.
func (s *Simulator) RunRandom(faults []Fault, blocks int, r *rng.Stream) Result {
	live := append([]Fault(nil), faults...)
	res := Result{Total: len(faults)}
	workers := par.Workers(s.Workers)
	var clones []*Simulator // lazily grown; slot 0 is s itself
	var detected []bool
	for b := 0; b < blocks && len(live) > 0; b++ {
		for _, id := range s.prog.Inputs {
			s.par.Value(int(id))[0] = r.Uint64()
		}
		s.par.Run()
		if workers <= 1 || len(live) < parallelFaultFloor {
			kept := live[:0]
			for _, f := range live {
				if s.simulateFault(f) {
					res.Detected++
				} else {
					kept = append(kept, f)
				}
			}
			live = kept
			continue
		}
		chunks := par.Partition(len(live), workers*4)
		detected = append(detected[:0], make([]bool, len(live))...)
		for len(clones) < workers {
			clones = append(clones, nil)
		}
		// Each worker tests a contiguous fault chunk; no two items touch
		// the same detected slot, and the good values are read-only here.
		par.ForEachWorker(workers, len(chunks), func(w, ci int) error {
			sm := s
			if w > 0 {
				if clones[w] == nil {
					clones[w] = s.clone()
				}
				sm = clones[w]
			}
			for i := chunks[ci][0]; i < chunks[ci][1]; i++ {
				if sm.simulateFault(live[i]) {
					detected[i] = true
				}
			}
			return nil
		})
		kept := live[:0]
		for i, f := range live {
			if detected[i] {
				res.Detected++
			} else {
				kept = append(kept, f)
			}
		}
		live = kept
	}
	res.Remaining = append([]Fault(nil), live...)
	return res
}

// DetectsWithPattern reports whether the given single test pattern
// (covering primary inputs then key inputs) detects the fault.
func (s *Simulator) DetectsWithPattern(f Fault, pattern []bool) (bool, error) {
	ins := s.prog.Inputs
	if len(pattern) != len(ins) {
		return false, fmt.Errorf("faultsim: pattern width %d != inputs %d", len(pattern), len(ins))
	}
	for i, id := range ins {
		if pattern[i] {
			s.par.Value(int(id))[0] = ^uint64(0)
		} else {
			s.par.Value(int(id))[0] = 0
		}
	}
	s.par.Run()
	return s.simulateFault(f), nil
}

// posHeap is a small binary min-heap of node IDs keyed by topological
// position, used to process fault events in dependency order.
type posHeap struct {
	pos  []int32
	heap []int32
}

func (h *posHeap) len() int { return len(h.heap) }

func (h *posHeap) push(id int32) {
	h.heap = append(h.heap, id)
	i := len(h.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.pos[h.heap[p]] <= h.pos[h.heap[i]] {
			break
		}
		h.heap[p], h.heap[i] = h.heap[i], h.heap[p]
		i = p
	}
}

func (h *posHeap) pop() int32 {
	top := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.heap = h.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.pos[h.heap[l]] < h.pos[h.heap[small]] {
			small = l
		}
		if r < last && h.pos[h.heap[r]] < h.pos[h.heap[small]] {
			small = r
		}
		if small == i {
			break
		}
		h.heap[i], h.heap[small] = h.heap[small], h.heap[i]
		i = small
	}
	return top
}
