package exp

import (
	"fmt"

	"orap/internal/benchgen"
	"orap/internal/lock"
	"orap/internal/metrics"
	"orap/internal/orap"
	"orap/internal/par"
	"orap/internal/rng"
	"orap/internal/scan"
	"orap/internal/synth"
)

// TableIRow is one line of the paper's Table I: Hamming distance, area
// and delay overhead for a benchmark locked with OraP + weighted logic
// locking.
type TableIRow struct {
	Circuit    string
	Gates      int // gates of the combinational part, w/o inverters
	Outputs    int
	LFSRSize   int // = key size
	CtrlInputs int
	HDPercent  float64
	AreaOvhd   float64
	DelayOvhd  float64
}

// TableIOptions configures the Table I reproduction.
type TableIOptions struct {
	// Scale shrinks the generated circuits (1.0 = paper scale).
	Scale float64
	// Patterns is the pseudorandom pattern count for HD (default: the
	// metrics package default, "a few hundreds of thousands").
	Patterns int
	// WrongKeys averaged per circuit (default 8).
	WrongKeys int
	// Circuits selects a subset by name (default: all eight).
	Circuits []string
	// Workers bounds the worker pool running circuit rows concurrently
	// (0 = all cores, 1 = serial). Every circuit derives its streams from
	// its own name, so the rows do not depend on it.
	Workers int
	// Seed drives every random choice.
	Seed uint64
}

// TableI locks each benchmark with weighted logic locking (control-gate
// widths from Table I), protects it with the basic OraP scheme, and
// measures HD, area overhead and delay overhead exactly as the paper
// describes: pseudorandom patterns for HD, and a common resynthesis of
// the original and protected circuits for the overheads, with the OraP
// register hardware (pulse generators, reseeding and polynomial XORs)
// charged to the protected side and flip-flops excluded.
func TableI(opts TableIOptions) ([]TableIRow, error) {
	if opts.Scale <= 0 || opts.Scale > 1 {
		opts.Scale = 1
	}
	names := opts.Circuits
	if len(names) == 0 {
		for _, p := range benchgen.Profiles {
			names = append(names, p.Name)
		}
	}
	// Circuit rows are independent — each derives its randomness from its
	// own named streams and generates its own circuit — so they fan out
	// across the pool while the output keeps the requested order.
	rows := make([]TableIRow, len(names))
	err := par.ForEach(opts.Workers, len(names), func(i int) error {
		name := names[i]
		prof, err := benchgen.ProfileByName(name)
		if err != nil {
			return err
		}
		scaled := prof.Scale(opts.Scale)
		r := rng.NewNamed(opts.Seed, "tableI/"+name)
		circuit, err := benchgen.Generate(scaled, opts.Seed)
		if err != nil {
			return err
		}
		l, err := lock.Weighted(circuit, lock.WeightedOptions{
			KeyBits:      scaled.LFSRSize,
			ControlWidth: scaled.CtrlInputs,
			Rand:         r,
		})
		if err != nil {
			return fmt.Errorf("exp: weighted lock of %s: %w", name, err)
		}
		// Protect with basic OraP: the register overhead enters the area
		// accounting; the locking itself is unchanged.
		cfg, err := orap.Protect(l.Circuit, l.Key, scaled.Pins, scaled.PinOuts, scan.OraPBasic, orap.Options{Rand: r})
		if err != nil {
			return fmt.Errorf("exp: OraP protect of %s: %w", name, err)
		}
		regOv := orap.RegisterOverhead(cfg.LFSR)

		hd, err := metrics.HammingDistance(l.Circuit, l.Key, metrics.HDOptions{
			Patterns:  opts.Patterns,
			WrongKeys: opts.WrongKeys,
			Workers:   opts.Workers,
			Rand:      rng.NewNamed(opts.Seed, "tableI/hd/"+name),
		})
		if err != nil {
			return err
		}
		ov, err := synth.Compare(circuit, l.Circuit, regOv.Gates())
		if err != nil {
			return err
		}
		rows[i] = TableIRow{
			Circuit:    prof.Name,
			Gates:      circuit.GateCount(),
			Outputs:    circuit.NumOutputs(),
			LFSRSize:   scaled.LFSRSize,
			CtrlInputs: scaled.CtrlInputs,
			HDPercent:  hd.HDPercent,
			AreaOvhd:   ov.AreaPercent(),
			DelayOvhd:  ov.DelayPercent(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTableI renders Table I in the paper's column layout.
func FormatTableI(rows []TableIRow) string {
	header := []string{"Circuit", "# Gates", "# Outputs", "LFSR size", "Ctrl gate", "HD (%)", "Ar. Ovhd (%)", "Del. Ovhd (%)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Circuit,
			fmt.Sprint(r.Gates),
			fmt.Sprint(r.Outputs),
			fmt.Sprint(r.LFSRSize),
			fmt.Sprint(r.CtrlInputs),
			fmt.Sprintf("%.2f", r.HDPercent),
			fmt.Sprintf("%.2f", r.AreaOvhd),
			fmt.Sprintf("%.2f", r.DelayOvhd),
		})
	}
	return FormatTable(header, cells)
}
