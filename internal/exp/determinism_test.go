package exp

import (
	"reflect"
	"testing"
)

// The worker-count invariance tests are the regression guard for the
// parallel experiment drivers: the same seed must give byte-identical
// tables whether the rows run on one worker or eight. They run at tiny
// scales — equality, not statistical quality, is what is under test.

func TestTableIWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []TableIRow {
		rows, err := TableI(TableIOptions{
			Scale:     0.008,
			Patterns:  1 << 11,
			WrongKeys: 2,
			Circuits:  []string{"b20", "s38417"},
			Workers:   workers,
			Seed:      21,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := run(1)
	if parallel := run(8); !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Table I diverged across worker counts:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestTableIIWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []TableIIRow {
		rows, err := TableII(TableIIOptions{
			Scale:        0.006,
			RandomBlocks: 8,
			Circuits:     []string{"b20", "b21"},
			Workers:      workers,
			Seed:         22,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := run(1)
	if parallel := run(8); !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Table II diverged across worker counts:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestSweepWorkerCountInvariance(t *testing.T) {
	ctrlSerial, err := CtrlWidthSweep(23, []int{1, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctrlParallel, err := CtrlWidthSweep(23, []int{1, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ctrlSerial, ctrlParallel) {
		t.Fatalf("ctrl-width sweep diverged: %+v vs %+v", ctrlSerial, ctrlParallel)
	}
	keySerial, err := KeySizeSweep(24, []int{6, 12}, 1)
	if err != nil {
		t.Fatal(err)
	}
	keyParallel, err := KeySizeSweep(24, []int{6, 12}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keySerial, keyParallel) {
		t.Fatalf("key-size sweep diverged: %+v vs %+v", keySerial, keyParallel)
	}
}
