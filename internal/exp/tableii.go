package exp

import (
	"fmt"

	"orap/internal/atpg"
	"orap/internal/benchgen"
	"orap/internal/faultsim"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/par"
	"orap/internal/rng"
)

// TableIIRow is one line of the paper's Table II: stuck-at fault coverage
// and redundant+aborted fault counts for the original and the protected
// version of each benchmark.
type TableIIRow struct {
	Circuit     string
	OrigFC      float64
	OrigRedAbrt int
	ProtFC      float64
	ProtRedAbrt int
	OrigFaults  int
	ProtFaults  int
}

// TableIIOptions configures the Table II reproduction.
type TableIIOptions struct {
	// Scale shrinks the generated circuits (1.0 = paper scale).
	Scale float64
	// RandomBlocks is the number of 64-pattern random fault-simulation
	// blocks before deterministic ATPG (the HOPE prefilter; default 32).
	RandomBlocks int
	// ConflictBudget bounds per-fault ATPG effort (0 = high effort).
	ConflictBudget int64
	// Circuits selects a subset by name (default: all eight).
	Circuits []string
	// Workers bounds the worker pool running circuit rows concurrently
	// and the fault-simulation fan-out inside each row (0 = all cores,
	// 1 = serial). The rows do not depend on it.
	Workers int
	// Seed drives every random choice.
	Seed uint64
}

// TableII runs the paper's testability experiment: ATPG (with a random
// fault-simulation prefilter) on the original circuit and on the version
// protected with OraP + weighted logic locking. Because the key register
// is part of the scan chains, key inputs are fully controllable during
// test, so the protected circuit's key gates act as test points and its
// coverage improves — the paper's headline observation.
func TableII(opts TableIIOptions) ([]TableIIRow, error) {
	if opts.Scale <= 0 || opts.Scale > 1 {
		opts.Scale = 1
	}
	if opts.RandomBlocks <= 0 {
		opts.RandomBlocks = 32
	}
	names := opts.Circuits
	if len(names) == 0 {
		for _, p := range benchgen.Profiles {
			names = append(names, p.Name)
		}
	}
	// Rows are independent (per-name streams, per-row circuits), so they
	// fan out across the pool in the requested output order.
	rows := make([]TableIIRow, len(names))
	err := par.ForEach(opts.Workers, len(names), func(i int) error {
		name := names[i]
		prof, err := benchgen.ProfileByName(name)
		if err != nil {
			return err
		}
		scaled := prof.Scale(opts.Scale)
		circuit, err := benchgen.Generate(scaled, opts.Seed)
		if err != nil {
			return err
		}
		l, err := lock.Weighted(circuit, lock.WeightedOptions{
			KeyBits:      scaled.LFSRSize,
			ControlWidth: scaled.CtrlInputs,
			Rand:         rng.NewNamed(opts.Seed, "tableII/lock/"+name),
		})
		if err != nil {
			return err
		}

		origSum, err := testability(circuit, opts, "orig/"+name)
		if err != nil {
			return err
		}
		protSum, err := testability(l.Circuit, opts, "prot/"+name)
		if err != nil {
			return err
		}
		rows[i] = TableIIRow{
			Circuit:     prof.Name,
			OrigFC:      origSum.Coverage(),
			OrigRedAbrt: origSum.RedundantPlusAborted(),
			ProtFC:      protSum.Coverage(),
			ProtRedAbrt: protSum.RedundantPlusAborted(),
			OrigFaults:  origSum.Total,
			ProtFaults:  protSum.Total,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// testability runs the full random-then-deterministic flow on one circuit.
func testability(c *netlist.Circuit, opts TableIIOptions, stream string) (atpg.Summary, error) {
	sim, err := faultsim.New(c)
	if err != nil {
		return atpg.Summary{}, err
	}
	sim.Workers = opts.Workers
	faults := faultsim.CollapseFaults(c)
	rand := sim.RunRandom(faults, opts.RandomBlocks, rng.NewNamed(opts.Seed, "tableII/"+stream))
	return atpg.Run(c, sim, rand, atpg.Options{ConflictBudget: opts.ConflictBudget})
}

// FormatTableII renders Table II in the paper's column layout.
func FormatTableII(rows []TableIIRow) string {
	header := []string{"Circuit", "Orig FC (%)", "Orig #Red+Abrt", "Prot FC (%)", "Prot #Red+Abrt"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Circuit,
			fmt.Sprintf("%.2f", r.OrigFC),
			fmt.Sprint(r.OrigRedAbrt),
			fmt.Sprintf("%.2f", r.ProtFC),
			fmt.Sprint(r.ProtRedAbrt),
		})
	}
	return FormatTable(header, cells)
}
