package exp

import (
	"fmt"

	"orap/internal/attack"
	"orap/internal/benchgen"
	"orap/internal/lock"
	"orap/internal/oracle"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/scan"
	"orap/internal/sim"
)

// OtherAttackRow is one line of the "remaining attacks" study covering the
// paper's Section II-A claims about bypass, SPS and removal: which defense
// each attack applies to, and whether OraP starves it.
type OtherAttackRow struct {
	Attack  string
	Defense string
	Oracle  string
	// Applies reports whether the attack's own applicability criterion
	// held (a skewed wire found, the patch budget sufficed, …).
	Applies bool
	// DesignRecovered reports whether the attacker ends with a circuit
	// functionally equivalent to the original.
	DesignRecovered bool
	Note            string
}

// OtherAttacks runs the bypass and SPS/removal attacks across defenses
// and oracle modes on a small generated circuit.
func OtherAttacks(seed uint64) ([]OtherAttackRow, error) {
	prof, err := benchgen.ProfileByName("b22")
	if err != nil {
		return nil, err
	}
	scaled := prof.Scale(0.004)
	design, err := benchgen.Generate(scaled, seed)
	if err != nil {
		return nil, err
	}

	var rows []OtherAttackRow

	// --- Bypass vs SARLock, unprotected then OraP. ---
	sar, err := lock.SARLock(design, 6, rng.NewNamed(seed, "other/sar"))
	if err != nil {
		return nil, err
	}
	ensureNonZeroKey(sar)
	for _, prot := range []scan.Protection{scan.None, scan.OraPBasic} {
		o, err := chipOracle(sar, scaled, prot, seed)
		if err != nil {
			return nil, err
		}
		chosen := append([]bool(nil), sar.Key...)
		chosen[0] = !chosen[0]
		row := OtherAttackRow{Attack: "bypass", Defense: "sarlock", Oracle: prot.String()}
		res, err := attack.Bypass(sar.Circuit, o, chosen, attack.BypassOptions{MaxPatches: 256})
		if err != nil {
			row.Note = "patch budget exhausted"
		} else {
			row.Applies = true
			row.DesignRecovered = patchedMatches(design, sar, res, seed)
		}
		rows = append(rows, row)
	}

	// --- Bypass vs weighted locking: not applicable (too much corruption). ---
	wll, err := lock.Weighted(design, lock.WeightedOptions{KeyBits: 12, ControlWidth: 3, KeyGates: 12, Rand: rng.NewNamed(seed, "other/wll")})
	if err != nil {
		return nil, err
	}
	oWll, err := chipOracle(wll, scaled, scan.None, seed)
	if err != nil {
		return nil, err
	}
	rowW := OtherAttackRow{Attack: "bypass", Defense: "weighted", Oracle: "none"}
	if _, err := attack.Bypass(wll.Circuit, oWll, make([]bool, 12), attack.BypassOptions{MaxPatches: 64}); err != nil {
		rowW.Note = "patch budget exhausted (high corruption)"
	} else {
		rowW.Applies = true
	}
	rows = append(rows, rowW)

	// --- SPS (oracle-less) vs Anti-SAT and vs weighted locking. ---
	anti, err := lock.AntiSAT(design, 6, rng.NewNamed(seed, "other/anti"))
	if err != nil {
		return nil, err
	}
	spsAnti, err := attack.SPS(anti.Circuit, attack.SPSOptions{Rand: rng.NewNamed(seed, "other/sps1")})
	if err != nil {
		return nil, err
	}
	rowA := OtherAttackRow{Attack: "sps+removal", Defense: "antisat", Oracle: "(oracle-less)"}
	if spsAnti.Candidate >= 0 {
		rowA.Applies = true
		if cut, _, ok := attack.SPSCutKeyDead(anti.Circuit, spsAnti); ok {
			recovered, err := attack.VerifyKey(cut, design, make([]bool, cut.NumKeys()))
			if err != nil {
				return nil, err
			}
			rowA.DesignRecovered = recovered
		} else {
			rowA.Note = "no cut kills the key dependence"
		}
	} else {
		rowA.Note = "no skewed key-fed wire"
	}
	rows = append(rows, rowA)

	spsWll, err := attack.SPS(wll.Circuit, attack.SPSOptions{Rand: rng.NewNamed(seed, "other/sps2")})
	if err != nil {
		return nil, err
	}
	// Random logic naturally contains skewed nodes inside the key cone;
	// the attack only *applies* when some cut kills the key dependence,
	// which weighted locking's distributed key gates never allow.
	_, _, cutOK := attack.SPSCutKeyDead(wll.Circuit, spsWll)
	rows = append(rows, OtherAttackRow{
		Attack:  "sps+removal",
		Defense: "weighted",
		Oracle:  "(oracle-less)",
		Applies: cutOK,
		Note:    "no cut kills the key dependence",
	})
	return rows, nil
}

// patchedMatches samples whether the bypass-patched design equals the
// original function. The comparison is word-parallel: one run of the
// locked circuit under the correct key (the reference function) and one
// under the attacker's chosen key cover all trials; patched input
// patterns are then checked against the patch table per lane.
func patchedMatches(design interface {
	NumInputs() int
}, l *lock.Locked, res *attack.BypassResult, seed uint64) bool {
	const trials = 256
	r := rng.NewNamed(seed, "other/verify")
	p, err := sim.NewParallel(l.Circuit, trials/64)
	if err != nil {
		return false
	}
	defer p.Release()

	x := make([]bool, design.NumInputs())
	patterns := make([][]bool, trials)
	for trial := range patterns {
		r.Bits(x)
		patterns[trial] = append([]bool(nil), x...)
	}
	for i, id := range l.Circuit.PIs {
		w := p.Value(id)
		for trial, pat := range patterns {
			if pat[i] {
				w[trial/64] |= 1 << uint(trial%64)
			}
		}
	}
	run := func(key []bool) ([][]uint64, bool) {
		if err := p.SetKey(key); err != nil {
			return nil, false
		}
		p.Run()
		out := make([][]uint64, len(l.Circuit.POs))
		for j, id := range l.Circuit.POs {
			out[j] = append([]uint64(nil), p.Value(id)...)
		}
		return out, true
	}
	want, ok := run(l.Key) // correct key = original function
	if !ok {
		return false
	}
	got, ok := run(res.Key) // attacker's chosen key, pre-patch
	if !ok {
		return false
	}
	for trial, pat := range patterns {
		w, b := trial/64, uint(trial)%64
		if patch, patched := res.Patches[bitString(pat)]; patched {
			for j := range want {
				if patch[j] != (want[j][w]>>b&1 == 1) {
					return false
				}
			}
			continue
		}
		for j := range want {
			if (want[j][w]^got[j][w])>>b&1 == 1 {
				return false
			}
		}
	}
	return true
}

// bitString renders a pattern in the '0'/'1' form the bypass patch table
// is keyed by.
func bitString(x []bool) string {
	out := make([]byte, len(x))
	for i, b := range x {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// ensureNonZeroKey flips a bit if the drawn key is all-zero (the one key
// OraP cannot protect).
func ensureNonZeroKey(l *lock.Locked) {
	for _, b := range l.Key {
		if b {
			return
		}
	}
	// Flipping a key bit of SARLock means re-wiring an inverter; for the
	// study it is simpler to flip via the comparator's symmetry: the key
	// equals the protected pattern, so adjust both representations by
	// re-locking would be needed. In practice the RNG never draws zero
	// here; guard for determinism drift.
	panic("exp: drawn all-zero key; change the study seed")
}

// chipOracle builds an activated chip for the locked design and wraps it
// in the scan-protocol oracle behind a channel session.
func chipOracle(l *lock.Locked, prof benchgen.Profile, prot scan.Protection, seed uint64) (oracle.Oracle, error) {
	cfg, err := orap.Protect(l.Circuit, l.Key, prof.Pins, prof.PinOuts, prot, orap.Options{
		Rand: rng.NewNamed(seed, "other/protect"),
	})
	if err != nil {
		return nil, err
	}
	ch, err := scan.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := ch.Unlock(nil); err != nil {
		return nil, err
	}
	return oracle.NewSession(oracle.NewScan(ch), 0), nil
}

// FormatOtherAttacks renders the study.
func FormatOtherAttacks(rows []OtherAttackRow) string {
	header := []string{"Attack", "Defense", "Oracle", "Applies", "Design recovered", "Note"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Attack, r.Defense, r.Oracle,
			fmt.Sprint(r.Applies), fmt.Sprint(r.DesignRecovered), r.Note,
		})
	}
	return FormatTable(header, cells)
}
