package exp

import (
	"fmt"

	"orap/internal/attack"
	"orap/internal/benchgen"
	"orap/internal/lfsr"
	"orap/internal/lock"
	"orap/internal/metrics"
	"orap/internal/oracle"
	"orap/internal/par"
	"orap/internal/rng"
	"orap/internal/sat"
	"orap/internal/trojan"
)

// SATScalingRow is one point of the SAT-attack scaling ablation: the
// number of DIP iterations the attack needs as a function of defense and
// key width. The study reproduces the motivation for SAT-resistant
// schemes (point functions force ~2^n iterations) and, by contrast, why
// the paper prefers disabling the oracle altogether.
type SATScalingRow struct {
	Defense    string
	KeyBits    int
	Iterations int
	Converged  bool
	// Solver carries the attack's total SAT effort: conflicts,
	// propagations and the mean LBD of learned clauses, so the table shows
	// where the solver spends its time as the key widens.
	Solver sat.Stats
}

// SATScalingOptions configures the scaling study.
type SATScalingOptions struct {
	// KeyWidths lists the widths to sweep (default 4, 6, 8, 10).
	KeyWidths []int
	// Workers bounds the worker pool sweeping key widths concurrently
	// (0 = all cores, 1 = serial). Each width owns a named stream which
	// its defenses consume in a fixed order, so results do not depend on
	// it.
	Workers int
	// Seed drives every random choice.
	Seed uint64
}

// SATScaling measures SAT-attack iterations against random XOR locking,
// weighted locking, SARLock and Anti-SAT at several key widths on a small
// carrier circuit.
func SATScaling(opts SATScalingOptions) ([]SATScalingRow, error) {
	widths := opts.KeyWidths
	if len(widths) == 0 {
		widths = []int{4, 6, 8, 10}
	}
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		return nil, err
	}
	scaled := prof.Scale(0.004)
	circuit, err := benchgen.Generate(scaled, opts.Seed)
	if err != nil {
		return nil, err
	}
	// Widths fan out across the pool; the defenses inside one width stay
	// serial because they draw from the width's shared stream in order.
	// The carrier circuit is shared read-only, which is safe without any
	// warm-up: evaluators compile their own immutable programs.
	perWidth := make([][]SATScalingRow, len(widths))
	err = par.ForEach(opts.Workers, len(widths), func(wi int) error {
		w := widths[wi]
		type defense struct {
			name string
			mk   func() (*lock.Locked, error)
		}
		r := rng.NewNamed(opts.Seed, fmt.Sprintf("scaling/%d", w))
		defs := []defense{
			{"random-xor", func() (*lock.Locked, error) { return lock.RandomXOR(circuit, w, r) }},
			{"weighted", func() (*lock.Locked, error) {
				return lock.Weighted(circuit, lock.WeightedOptions{KeyBits: w, ControlWidth: 2, KeyGates: w, Rand: r})
			}},
			{"sarlock", func() (*lock.Locked, error) { return lock.SARLock(circuit, w, r) }},
			{"antisat", func() (*lock.Locked, error) { return lock.AntiSAT(circuit, w/2, r) }},
			{"ttlock", func() (*lock.Locked, error) { return lock.TTLock(circuit, w, r) }},
		}
		for _, d := range defs {
			l, err := d.mk()
			if err != nil {
				return err
			}
			o, err := oracle.NewComb(circuit, nil)
			if err != nil {
				return err
			}
			res, err := attack.SAT(l.Circuit, o, attack.Budgets{MaxIterations: 1 << 14})
			row := SATScalingRow{Defense: d.name, KeyBits: l.Circuit.NumKeys()}
			if err == nil {
				row.Iterations = res.Iterations
				row.Converged = res.Converged
			} else if err == attack.ErrIterationBudget {
				row.Iterations = res.Iterations
			} else {
				return err
			}
			if res != nil {
				row.Solver = res.SolverStats
			}
			perWidth[wi] = append(perWidth[wi], row)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []SATScalingRow
	for _, wr := range perWidth {
		rows = append(rows, wr...)
	}
	return rows, nil
}

// FormatSATScaling renders the scaling study, including the solver-effort
// columns (total conflicts and propagations, mean learned-clause LBD).
func FormatSATScaling(rows []SATScalingRow) string {
	header := []string{"Defense", "Key bits", "SAT iterations", "Converged", "Conflicts", "Propagations", "Mean LBD"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Defense, fmt.Sprint(r.KeyBits), fmt.Sprint(r.Iterations), fmt.Sprint(r.Converged),
			fmt.Sprint(r.Solver.Conflicts), fmt.Sprint(r.Solver.Propagations), fmt.Sprintf("%.2f", r.Solver.MeanLBD()),
		})
	}
	return FormatTable(header, cells)
}

// XorTreeRow is one point of the attack-(d) design-space ablation: the
// XOR-tree payload the defender forces as a function of the LFSR wiring
// and unlock schedule.
type XorTreeRow struct {
	TapSpacing int
	Seeds      int
	FreeRun    int
	XorGates   int
	PayloadGE  float64
}

// XorTreeSweep sizes the scenario-(d) Trojan for a sweep of tap spacings
// and schedules at a fixed key width, demonstrating the designer's
// levers the paper lists: "the complexity of the XOR trees depends on the
// LFSR's characteristic polynomial, the number of seeds fed to the LFSR,
// the number and positions of reseeding points … and the number of
// free-run cycles".
func XorTreeSweep(keyBits int) ([]XorTreeRow, error) {
	if keyBits <= 0 {
		keyBits = 128
	}
	var rows []XorTreeRow
	for _, spacing := range []int{0, 16, 8, 4} { // 0 = plain shift register
		for _, sched := range []struct{ seeds, freeRun int }{
			{1, 0}, {2, 2}, {4, 4}, {8, 8},
		} {
			cfg := lfsr.Config{N: keyBits, Inject: lfsr.AllInject(keyBits)}
			if spacing > 0 {
				cfg.Taps = lfsr.StandardTaps(keyBits, spacing)
			}
			sc := lfsr.UniformSchedule(sched.seeds, sched.freeRun)
			xors, err := trojan.XorTreeGates(cfg, sc)
			if err != nil {
				return nil, err
			}
			p, err := trojan.PayloadD(cfg, sc)
			if err != nil {
				return nil, err
			}
			rows = append(rows, XorTreeRow{
				TapSpacing: spacing,
				Seeds:      sched.seeds,
				FreeRun:    sched.freeRun,
				XorGates:   xors,
				PayloadGE:  p.GateEquivalents,
			})
		}
	}
	return rows, nil
}

// FormatXorTreeSweep renders the design-space sweep.
func FormatXorTreeSweep(rows []XorTreeRow) string {
	header := []string{"Tap spacing", "Seeds", "Free-run", "XOR2 gates", "Payload (GE)"}
	var cells [][]string
	for _, r := range rows {
		spacing := "none (shift reg)"
		if r.TapSpacing > 0 {
			spacing = fmt.Sprint(r.TapSpacing)
		}
		cells = append(cells, []string{
			spacing, fmt.Sprint(r.Seeds), fmt.Sprint(r.FreeRun), fmt.Sprint(r.XorGates), fmt.Sprintf("%.0f", r.PayloadGE),
		})
	}
	return FormatTable(header, cells)
}

// CtrlWidthRow is one point of the control-gate-width ablation for
// weighted logic locking: actuation probability and measured HD.
type CtrlWidthRow struct {
	ControlWidth int
	HDPercent    float64
}

// CtrlWidthSweep measures HD as a function of the weighted-locking
// control gate width on a mid-size generated circuit, reproducing why
// Table I uses 3-input control gates for most circuits (wider gates
// actuate more but cost more area). Widths run concurrently on up to
// workers workers (0 = all cores); each owns named streams, so the rows
// do not depend on the pool size.
func CtrlWidthSweep(seed uint64, widths []int, workers int) ([]CtrlWidthRow, error) {
	if len(widths) == 0 {
		widths = []int{1, 2, 3, 5}
	}
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		return nil, err
	}
	scaled := prof.Scale(0.02)
	circuit, err := benchgen.Generate(scaled, seed)
	if err != nil {
		return nil, err
	}
	// The carrier circuit is shared read-only across widths.
	rows := make([]CtrlWidthRow, len(widths))
	err = par.ForEach(workers, len(widths), func(i int) error {
		w := widths[i]
		keyBits := 24
		l, err := lock.Weighted(circuit, lock.WeightedOptions{
			KeyBits:      keyBits,
			ControlWidth: w,
			KeyGates:     keyBits / w,
			Rand:         rng.NewNamed(seed, fmt.Sprintf("ctrl/%d", w)),
		})
		if err != nil {
			return err
		}
		hd, err := metrics.HammingDistance(l.Circuit, l.Key, metrics.HDOptions{
			Patterns:  1 << 13,
			WrongKeys: 6,
			Workers:   workers,
			Rand:      rng.NewNamed(seed, fmt.Sprintf("ctrl/hd/%d", w)),
		})
		if err != nil {
			return err
		}
		rows[i] = CtrlWidthRow{ControlWidth: w, HDPercent: hd.HDPercent}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatCtrlWidthSweep renders the control-width sweep.
func FormatCtrlWidthSweep(rows []CtrlWidthRow) string {
	header := []string{"Ctrl width", "HD (%)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{fmt.Sprint(r.ControlWidth), fmt.Sprintf("%.2f", r.HDPercent)})
	}
	return FormatTable(header, cells)
}

// KeySizeRow is one point of the key-size saturation study that
// reproduces the paper's Table I methodology sentence: "we set 256 as
// maximum key size. However, we stopped with smaller key sizes if output
// corruptibility with HD = 50% had been achieved … or if output
// corruptibility, in terms of HD, saturated."
type KeySizeRow struct {
	KeyBits   int
	HDPercent float64
}

// KeySizeSweep measures HD against the key (LFSR) size on one generated
// circuit, exposing the saturation the paper's stopping rule relies on.
// Sizes run concurrently on up to workers workers (0 = all cores); each
// owns named streams, so the rows do not depend on the pool size.
func KeySizeSweep(seed uint64, sizes []int, workers int) ([]KeySizeRow, error) {
	if len(sizes) == 0 {
		sizes = []int{6, 12, 24, 48, 96}
	}
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		return nil, err
	}
	scaled := prof.Scale(0.05)
	circuit, err := benchgen.Generate(scaled, seed)
	if err != nil {
		return nil, err
	}
	rows := make([]KeySizeRow, len(sizes))
	err = par.ForEach(workers, len(sizes), func(i int) error {
		n := sizes[i]
		l, err := lock.Weighted(circuit, lock.WeightedOptions{
			KeyBits:      n,
			ControlWidth: 3,
			Rand:         rng.NewNamed(seed, fmt.Sprintf("keysize/%d", n)),
		})
		if err != nil {
			return err
		}
		hd, err := metrics.HammingDistance(l.Circuit, l.Key, metrics.HDOptions{
			Patterns:  1 << 13,
			WrongKeys: 6,
			Workers:   workers,
			Rand:      rng.NewNamed(seed, fmt.Sprintf("keysize/hd/%d", n)),
		})
		if err != nil {
			return err
		}
		rows[i] = KeySizeRow{KeyBits: n, HDPercent: hd.HDPercent}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatKeySizeSweep renders the key-size saturation study.
func FormatKeySizeSweep(rows []KeySizeRow) string {
	header := []string{"Key bits", "HD (%)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{fmt.Sprint(r.KeyBits), fmt.Sprintf("%.2f", r.HDPercent)})
	}
	return FormatTable(header, cells)
}
