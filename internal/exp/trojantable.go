package exp

import (
	"fmt"

	"orap/internal/benchgen"
	"orap/internal/lfsr"
	"orap/internal/lock"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/scan"
	"orap/internal/trojan"
)

// TrojanRow is one line of the Section III study: a Trojan scenario's
// payload cost and simulated outcome against the basic and modified OraP
// schemes.
type TrojanRow struct {
	Scenario    string
	Description string
	PayloadGE   float64
	// BasicWorks / ModifiedWorks report whether the simulated attack
	// obtains correct oracle material against each scheme variant
	// ("n/a" scenarios are marked false with a note in Description).
	BasicWorks    bool
	ModifiedWorks bool
}

// TrojanStudyOptions configures the Section III reproduction.
type TrojanStudyOptions struct {
	// KeyBits is the key-register width (paper's running example: 128).
	KeyBits int
	// Scale shrinks the carrier circuit.
	Scale float64
	// Seed drives every random choice.
	Seed uint64
}

// TrojanStudy reproduces the Section III analysis executably: for each
// attack scenario (a)–(e) it computes the Trojan payload in NAND2 gate
// equivalents under the paper's countermeasures, and where the scenario is
// behavioural it simulates the attack against chips built with the basic
// and the modified OraP scheme.
func TrojanStudy(opts TrojanStudyOptions) ([]TrojanRow, error) {
	if opts.KeyBits <= 0 {
		opts.KeyBits = 128
	}
	if opts.Scale <= 0 || opts.Scale > 1 {
		opts.Scale = 0.02
	}
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		return nil, err
	}
	scaled := prof.Scale(opts.Scale)
	circuit, err := benchgen.Generate(scaled, opts.Seed)
	if err != nil {
		return nil, err
	}
	// The simulated chips use a moderate key width (the payload table
	// below uses the full requested width); wide keys on a small carrier
	// entangle every flip-flop cone and the modified-scheme synthesis
	// would fall back to its randomized search.
	simKeyBits := opts.KeyBits
	if simKeyBits > 24 {
		simKeyBits = 24
	}
	if simKeyBits > circuit.GateCount()/8 {
		simKeyBits = circuit.GateCount() / 8
	}
	l, err := lock.Weighted(circuit, lock.WeightedOptions{
		KeyBits:      simKeyBits,
		ControlWidth: 3,
		Rand:         rng.NewNamed(opts.Seed, "trojan/lock"),
	})
	if err != nil {
		return nil, err
	}
	// The designer deliberately feeds several seeds with free-run cycles
	// between them — that is the lever that blows up the scenario-(d)
	// XOR trees.
	basicCfg, err := orap.Protect(l.Circuit, l.Key, scaled.Pins, scaled.PinOuts, scan.OraPBasic, orap.Options{
		Seeds:   4,
		FreeRun: 2,
		Rand:    rng.NewNamed(opts.Seed, "trojan/basic"),
	})
	if err != nil {
		return nil, err
	}
	var modCfg scan.Config
	for attempt := 0; ; attempt++ {
		modCfg, err = orap.Protect(l.Circuit, l.Key, scaled.Pins, scaled.PinOuts, scan.OraPModified, orap.Options{
			Rand: rng.NewNamed(opts.Seed+uint64(attempt), "trojan/mod"),
		})
		if err == nil {
			break
		}
		if attempt >= 4 {
			return nil, err
		}
	}

	// Payload costs use the requested (paper-scale) key width and the
	// basic scheme's synthesized schedule.
	costCfg := lfsr.Config{
		N:      opts.KeyBits,
		Taps:   lfsr.StandardTaps(opts.KeyBits, 8),
		Inject: lfsr.AllInject(opts.KeyBits),
	}
	payloads, err := trojan.Payloads(costCfg, basicCfg.Schedule)
	if err != nil {
		return nil, err
	}
	byScenario := map[string]trojan.Payload{}
	for _, p := range payloads {
		byScenario[p.Scenario] = p
	}

	x := make([]bool, l.Circuit.NumInputs())
	for i := range x {
		x[i] = i%2 == 0
	}

	var rows []TrojanRow
	// (a)/(b): suppress the key-register reset. Works behaviourally on
	// both variants; the defense is payload-size detection.
	supBasic, err := trojan.SimulateSuppressReset(basicCfg, l.Key, x)
	if err != nil {
		return nil, err
	}
	supMod, err := trojan.SimulateSuppressReset(modCfg, l.Key, x)
	if err != nil {
		return nil, err
	}
	rows = append(rows, TrojanRow{
		Scenario: "a", Description: byScenario["a"].Description,
		PayloadGE:  byScenario["a"].GateEquivalents,
		BasicWorks: supBasic.CorrectResponse, ModifiedWorks: supMod.CorrectResponse,
	})
	rows = append(rows, TrojanRow{
		Scenario: "b", Description: byScenario["b"].Description,
		PayloadGE:  byScenario["b"].GateEquivalents,
		BasicWorks: supBasic.CorrectResponse, ModifiedWorks: supMod.CorrectResponse,
	})

	// (c): shadow register.
	shBasic, err := trojan.SimulateShadowKey(basicCfg, l.Key)
	if err != nil {
		return nil, err
	}
	shMod, err := trojan.SimulateShadowKey(modCfg, l.Key)
	if err != nil {
		return nil, err
	}
	rows = append(rows, TrojanRow{
		Scenario: "c", Description: byScenario["c"].Description,
		PayloadGE:  byScenario["c"].GateEquivalents,
		BasicWorks: shBasic.CorrectResponse, ModifiedWorks: shMod.CorrectResponse,
	})

	// (d): XOR-tree key reconstruction from latched seeds (basic scheme).
	xt, err := trojan.SimulateXorTree(basicCfg, l.Key)
	if err != nil {
		return nil, err
	}
	rows = append(rows, TrojanRow{
		Scenario: "d", Description: byScenario["d"].Description,
		PayloadGE:  byScenario["d"].GateEquivalents,
		BasicWorks: xt.CorrectResponse, ModifiedWorks: false,
	})

	// (e): freeze the flip-flops — the scenario that separates basic from
	// modified.
	frBasic, err := trojan.SimulateFreezeFFs(basicCfg, l.Key, x)
	if err != nil {
		return nil, err
	}
	frMod, err := trojan.SimulateFreezeFFs(modCfg, l.Key, x)
	if err != nil {
		return nil, err
	}
	rows = append(rows, TrojanRow{
		Scenario: "e", Description: byScenario["e"].Description,
		PayloadGE:  byScenario["e"].GateEquivalents,
		BasicWorks: frBasic.CorrectResponse, ModifiedWorks: frMod.CorrectResponse,
	})
	return rows, nil
}

// FormatTrojanStudy renders the Section III study.
func FormatTrojanStudy(rows []TrojanRow) string {
	header := []string{"Scenario", "Payload (GE)", "Beats basic", "Beats modified", "Payload description"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Scenario,
			fmt.Sprintf("%.1f", r.PayloadGE),
			fmt.Sprint(r.BasicWorks),
			fmt.Sprint(r.ModifiedWorks),
			r.Description,
		})
	}
	return FormatTable(header, cells)
}
