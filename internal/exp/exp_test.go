package exp

import (
	"strings"
	"testing"
)

func TestFormatTableAlignment(t *testing.T) {
	out := FormatTable([]string{"A", "Long header"}, [][]string{{"wide cell", "x"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("separator not aligned with header:\n%s", out)
	}
}

func TestTableISmallScale(t *testing.T) {
	rows, err := TableI(TableIOptions{
		Scale:     0.01,
		Patterns:  1 << 12,
		WrongKeys: 3,
		Circuits:  []string{"b20", "s38417"},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.HDPercent <= 5 {
			t.Errorf("%s: HD %.2f%% too low — weighted locking should corrupt strongly", r.Circuit, r.HDPercent)
		}
		if r.HDPercent > 60 {
			t.Errorf("%s: HD %.2f%% above the theoretical regime", r.Circuit, r.HDPercent)
		}
		if r.AreaOvhd <= 0 {
			t.Errorf("%s: area overhead %.2f%% should be positive", r.Circuit, r.AreaOvhd)
		}
		if r.DelayOvhd < 0 {
			t.Errorf("%s: negative delay overhead", r.Circuit)
		}
	}
	text := FormatTableI(rows)
	if !strings.Contains(text, "b20") || !strings.Contains(text, "HD (%)") {
		t.Fatalf("formatted table missing content:\n%s", text)
	}
}

func TestTableIOverheadShrinksWithCircuitSize(t *testing.T) {
	// The paper's overhead-reduction trend: bigger circuits, smaller
	// relative overhead (key size roughly constant).
	rows, err := TableI(TableIOptions{
		Scale:     0.02,
		Patterns:  1 << 10,
		WrongKeys: 2,
		Circuits:  []string{"b20", "b18"},
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var small, big TableIRow
	for _, r := range rows {
		switch r.Circuit {
		case "b20":
			small = r
		case "b18":
			big = r
		}
	}
	if big.Gates <= small.Gates {
		t.Fatalf("b18 should be bigger than b20 (%d vs %d gates)", big.Gates, small.Gates)
	}
	if big.AreaOvhd >= small.AreaOvhd {
		t.Fatalf("area overhead should shrink with size: b20=%.2f%% b18=%.2f%%", small.AreaOvhd, big.AreaOvhd)
	}
}

func TestTableIISmallScale(t *testing.T) {
	rows, err := TableII(TableIIOptions{
		Scale:        0.008,
		RandomBlocks: 16,
		Circuits:     []string{"b20"},
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	// Synthetic random logic carries more redundant faults than the real
	// benchmark suite, so the absolute coverages sit a little below the
	// paper's 95-99%; the floor guards against gross regressions.
	if r.OrigFC < 80 || r.ProtFC < 80 {
		t.Fatalf("coverages implausibly low: orig %.2f%% prot %.2f%%", r.OrigFC, r.ProtFC)
	}
	// The paper's observation: the protected circuit's coverage does not
	// degrade (key inputs act as controllable test points).
	if r.ProtFC < r.OrigFC-0.5 {
		t.Fatalf("protected coverage %.2f%% fell below original %.2f%%", r.ProtFC, r.OrigFC)
	}
	if r.ProtFaults <= r.OrigFaults {
		t.Fatalf("protected circuit should carry more faults (%d vs %d)", r.ProtFaults, r.OrigFaults)
	}
	text := FormatTableII(rows)
	if !strings.Contains(text, "b20") {
		t.Fatalf("formatted table missing circuit:\n%s", text)
	}
}

func TestAttackStudyShape(t *testing.T) {
	rows, err := AttackStudy(AttackStudyOptions{
		Scale:   0.004,
		KeyBits: 10,
		Seed:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 (4 attacks × 2 oracle modes)", len(rows))
	}
	for _, r := range rows {
		switch r.Protection {
		case "none":
			if !r.KeyCorrect {
				t.Errorf("%s against the unprotected oracle failed (disagreement %.3f, note %q)", r.Attack, r.Disagreement, r.Note)
			}
			// The audit column must predict the outcome: an unprotected
			// oracle is an error-severity finding.
			if !strings.HasPrefix(r.Audit, "1E") {
				t.Errorf("%s/none: audit column %q, want an error-severity verdict", r.Attack, r.Audit)
			}
		case "orap-basic":
			if r.KeyCorrect {
				t.Errorf("%s against the OraP oracle recovered a correct key — the protection is broken", r.Attack)
			}
			if r.Note == "" && r.Disagreement == 0 {
				t.Errorf("%s against OraP reports zero disagreement", r.Attack)
			}
			if !strings.HasPrefix(r.Audit, "0E") || !strings.Contains(r.Audit, "b") {
				t.Errorf("%s/orap-basic: audit column %q, want clean with an entropy figure", r.Attack, r.Audit)
			}
		}
	}
	// Oracle-channel telemetry: every cell ran through a session over the
	// scan oracle, so the channel columns must be populated and coherent.
	for _, r := range rows {
		if r.Unique <= 0 {
			t.Errorf("%s/%s: no unique patterns recorded", r.Attack, r.Protection)
		}
		if r.Queries > 0 && r.Unique > r.Queries {
			t.Errorf("%s/%s: unique %d > queries %d", r.Attack, r.Protection, r.Unique, r.Queries)
		}
		if r.CacheHitPct < 0 || r.CacheHitPct > 100 {
			t.Errorf("%s/%s: cache hit %.1f%% out of range", r.Attack, r.Protection, r.CacheHitPct)
		}
		if r.ScanCycles <= 0 {
			t.Errorf("%s/%s: no scan cycles accounted", r.Attack, r.Protection)
		}
		// The dataflow column is per locked netlist: weighted locking
		// taints outputs through its control cones but must never leave a
		// key bit linearly separable, so the leak count is pinned to 0.
		if !strings.Contains(r.Taint, "PO") || !strings.HasSuffix(r.Taint, " 0L") {
			t.Errorf("%s/%s: taint column %q, want tainted-PO figure with zero key leaks", r.Attack, r.Protection, r.Taint)
		}
		// The exact column refines the taint bound symbolically: at this
		// scale every cone fits the BDD budget, so the column must carry
		// a model-counted rate and a distinguishing-input tally, with no
		// budget fallbacks.
		if !strings.Contains(r.Exact, "r ") || !strings.Contains(r.Exact, "d") {
			t.Errorf("%s/%s: exact column %q, want rate and distinguishing-input figures", r.Attack, r.Protection, r.Exact)
		}
		if strings.Contains(r.Exact, "fb") || strings.Contains(r.Exact, "budget") {
			t.Errorf("%s/%s: exact column %q reports budget fallbacks at study scale", r.Attack, r.Protection, r.Exact)
		}
	}
	text := FormatAttackStudy(rows)
	for _, col := range []string{"Taint", "Exact", "Audit", "Unique", "Hit%", "Scan cycles"} {
		if !strings.Contains(text, col) {
			t.Fatalf("formatted study missing the %s column:\n%s", col, text)
		}
	}
}

func TestTrojanStudyShape(t *testing.T) {
	rows, err := TrojanStudy(TrojanStudyOptions{KeyBits: 128, Scale: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 scenarios", len(rows))
	}
	get := func(s string) TrojanRow {
		for _, r := range rows {
			if r.Scenario == s {
				return r
			}
		}
		t.Fatalf("scenario %s missing", s)
		return TrojanRow{}
	}
	a, b, c, d, e := get("a"), get("b"), get("c"), get("d"), get("e")
	// Payload ordering enforced by the countermeasures.
	if !(e.PayloadGE < a.PayloadGE && a.PayloadGE < b.PayloadGE && b.PayloadGE < c.PayloadGE && c.PayloadGE < d.PayloadGE) {
		t.Fatalf("payload ordering violated: e=%.0f a=%.0f b=%.0f c=%.0f d=%.0f",
			e.PayloadGE, a.PayloadGE, b.PayloadGE, c.PayloadGE, d.PayloadGE)
	}
	// Scenario (e) is the separator between basic and modified.
	if !e.BasicWorks || e.ModifiedWorks {
		t.Fatalf("scenario (e): basic=%v modified=%v, want true/false", e.BasicWorks, e.ModifiedWorks)
	}
	// Reset suppression and shadow registers beat both variants
	// (behaviourally) — their defense is side-channel detection.
	if !a.BasicWorks || !c.BasicWorks {
		t.Fatal("scenarios (a)/(c) should succeed behaviourally")
	}
}

func TestSATScalingShape(t *testing.T) {
	rows, err := SATScaling(SATScalingOptions{KeyWidths: []int{4, 6}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// SARLock iterations must grow roughly 2^n; random XOR stays small.
	iters := map[string]map[int]int{}
	for _, r := range rows {
		if iters[r.Defense] == nil {
			iters[r.Defense] = map[int]int{}
		}
		iters[r.Defense][r.KeyBits] = r.Iterations
	}
	if iters["sarlock"][6] <= iters["sarlock"][4] {
		t.Fatalf("SARLock iterations did not grow with key width: %v", iters["sarlock"])
	}
	if iters["random-xor"][6] >= iters["sarlock"][6] {
		t.Fatalf("random XOR (%d) should need fewer iterations than SARLock (%d)",
			iters["random-xor"][6], iters["sarlock"][6])
	}
}

func TestXorTreeSweepShape(t *testing.T) {
	rows, err := XorTreeSweep(64)
	if err != nil {
		t.Fatal(err)
	}
	// Within a fixed schedule, denser taps mean more mixing.
	cost := map[[3]int]int{}
	for _, r := range rows {
		cost[[3]int{r.TapSpacing, r.Seeds, r.FreeRun}] = r.XorGates
	}
	if !(cost[[3]int{4, 8, 8}] > cost[[3]int{16, 8, 8}]) {
		t.Fatalf("denser taps should cost more XOR gates: %v vs %v",
			cost[[3]int{4, 8, 8}], cost[[3]int{16, 8, 8}])
	}
	if !(cost[[3]int{0, 8, 8}] < cost[[3]int{8, 8, 8}]) {
		t.Fatalf("shift register should cost less than LFSR: %v vs %v",
			cost[[3]int{0, 8, 8}], cost[[3]int{8, 8, 8}])
	}
}

func TestCtrlWidthSweepShape(t *testing.T) {
	rows, err := CtrlWidthSweep(7, []int{1, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.HDPercent <= 0 {
			t.Fatalf("ctrl width %d: zero HD", r.ControlWidth)
		}
	}
}

func TestKeySizeSweepSaturates(t *testing.T) {
	rows, err := KeySizeSweep(9, []int{6, 24, 96}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// HD grows with key size but saturates below ~55%.
	if rows[0].HDPercent >= rows[2].HDPercent {
		t.Fatalf("HD did not grow with key size: %.2f -> %.2f", rows[0].HDPercent, rows[2].HDPercent)
	}
	for _, r := range rows {
		if r.HDPercent > 58 {
			t.Fatalf("HD %.2f%% above the saturation regime", r.HDPercent)
		}
	}
	// The paper's stopping rule: the jump from 24 to 96 bits is much
	// smaller than the jump from 6 to 24 (diminishing returns).
	gain1 := rows[1].HDPercent - rows[0].HDPercent
	gain2 := rows[2].HDPercent - rows[1].HDPercent
	if gain2 > gain1 {
		t.Fatalf("no saturation: gains %.2f then %.2f", gain1, gain2)
	}
}

func TestOtherAttacksShape(t *testing.T) {
	rows, err := OtherAttacks(11)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]OtherAttackRow{}
	for _, r := range rows {
		byKey[r.Attack+"/"+r.Defense+"/"+r.Oracle] = r
	}
	// Bypass defeats SARLock through an unprotected oracle…
	if r := byKey["bypass/sarlock/none"]; !r.Applies || !r.DesignRecovered {
		t.Fatalf("bypass vs SARLock (unprotected) should recover the design: %+v", r)
	}
	// …but the OraP oracle's locked responses poison the patch table.
	if r := byKey["bypass/sarlock/orap-basic"]; r.DesignRecovered {
		t.Fatalf("bypass through OraP recovered the design: %+v", r)
	}
	// Bypass does not apply to high-corruption locking.
	if r := byKey["bypass/weighted/none"]; r.Applies {
		t.Fatalf("bypass should exhaust its budget vs weighted locking: %+v", r)
	}
	// SPS + removal defeats Anti-SAT, oracle-less.
	if r := byKey["sps+removal/antisat/(oracle-less)"]; !r.Applies || !r.DesignRecovered {
		t.Fatalf("SPS should defeat Anti-SAT: %+v", r)
	}
	// SPS finds nothing in OraP + weighted locking.
	if r := byKey["sps+removal/weighted/(oracle-less)"]; r.Applies {
		t.Fatalf("SPS should not apply to weighted locking: %+v", r)
	}
}
