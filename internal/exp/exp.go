// Package exp contains the experiment drivers that regenerate every table
// of the paper's evaluation, plus the ablation studies listed in
// EXPERIMENTS.md. Each driver is deterministic in its options (seeded
// streams throughout) and returns structured rows; Format helpers render
// them in the paper's layout.
//
// All drivers take a Scale factor: 1.0 reproduces the paper's circuit
// sizes (minutes of CPU), smaller factors shrink the generated benchmark
// circuits proportionally for test and -short bench runs while preserving
// the qualitative shape of every result.
package exp

import (
	"fmt"
	"strings"
)

// FormatTable renders rows of cells with aligned columns.
func FormatTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
