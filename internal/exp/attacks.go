package exp

import (
	"fmt"

	"orap/internal/attack"
	"orap/internal/audit"
	"orap/internal/benchgen"
	"orap/internal/dataflow"
	"orap/internal/ir"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/oracle"
	"orap/internal/orap"
	"orap/internal/par"
	"orap/internal/rng"
	"orap/internal/scan"
)

// AttackRow is one line of the oracle-protection study (the executable
// form of the paper's Section II-A security analysis): an oracle-guided
// attack against the same locked circuit through an unprotected scan
// chain versus through the OraP-gated one.
type AttackRow struct {
	Attack     string
	Protection string
	// Converged reports the attack's own termination criterion.
	Converged bool
	// KeyCorrect reports functional equivalence of the recovered key.
	KeyCorrect bool
	// Disagreement is the sampled error rate of the recovered key vs the
	// true function (1.0 when no key was produced).
	Disagreement float64
	Iterations   int
	Queries      int
	// Unique is the number of distinct patterns the attack's session
	// admitted to the chip; CacheHitPct is the fraction of queries the
	// session transcript answered without chip access; ScanCycles is the
	// modeled test-clock cost of the admitted queries (2·chain-length+1
	// per query).
	Unique      int
	CacheHitPct float64
	ScanCycles  int64
	// Taint summarizes the netlist-side dataflow verdict on the locked
	// circuit ("tainted/total POs, key-leak findings") — computed once
	// from the key-taint fixpoint and the audit's key-leak rule, and
	// shared by both protection levels because OraP never rewrites the
	// netlist.
	Taint string
	// Exact is the symbolic refinement of Taint from the audit's ROBDD
	// backend: the minimum per-key-bit corruption rate over (input, key)
	// pairs and how many key bits have at least one distinguishing
	// input ("0.25r 16/16d"). Bits over the node budget append an "Nfb"
	// fallback count; "budget(N)" means every bit fell back. Shared by
	// both protection levels, like Taint.
	Exact string
	// Audit summarizes the static oracle-path audit of this protection
	// level ("errors E / warnings W", plus effective/nominal key entropy
	// for protected configurations) — the analyzer's verdict next to the
	// attack outcome it predicts.
	Audit string
	// Note carries failure detail (e.g. inconsistent observations).
	Note string
}

// AttackStudyOptions configures the attack comparison.
type AttackStudyOptions struct {
	// Scale shrinks the circuit (1.0 = the paper-scale b20 profile; the
	// study defaults to a small slice because SAT attacks on full-size
	// circuits with hundreds of key bits do not terminate by design).
	Scale float64
	// KeyBits for the weighted locking layer (default 16).
	KeyBits int
	// Budgets bounds each attack.
	Budgets attack.Budgets
	// Workers bounds the worker pool running attack×oracle cells
	// concurrently (0 = all cores, 1 = serial). Each cell builds its own
	// chip and derives its own streams, so the rows do not depend on it.
	Workers int
	// Seed drives every random choice.
	Seed uint64
}

// AttackStudy locks one benchmark with weighted logic locking and runs
// the SAT, Double DIP, AppSAT, and hill-climbing attacks twice each:
// against a conventional chip (scan.None — the assumption every
// oracle-based attack makes) and against the OraP-protected chip. The
// expected shape, and the paper's core claim: every attack recovers a
// correct key through the unprotected scan chain and fails (converges to
// a locked-circuit key with high disagreement) against OraP.
func AttackStudy(opts AttackStudyOptions) ([]AttackRow, error) {
	if opts.Scale <= 0 || opts.Scale > 1 {
		opts.Scale = 0.004
	}
	if opts.KeyBits <= 0 {
		opts.KeyBits = 16
	}
	if opts.Budgets.MaxIterations == 0 {
		opts.Budgets.MaxIterations = 2000
	}
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		return nil, err
	}
	scaled := prof.Scale(opts.Scale)
	circuit, err := benchgen.Generate(scaled, opts.Seed)
	if err != nil {
		return nil, err
	}
	l, err := lock.Weighted(circuit, lock.WeightedOptions{
		KeyBits:      opts.KeyBits,
		ControlWidth: 3,
		KeyGates:     opts.KeyBits,
		Rand:         rng.NewNamed(opts.Seed, "attacks/lock"),
	})
	if err != nil {
		return nil, err
	}

	type attackFn struct {
		name string
		run  func(o oracle.Oracle, seed uint64) (*attack.Result, error)
	}
	attacks := []attackFn{
		{"SAT", func(o oracle.Oracle, seed uint64) (*attack.Result, error) {
			return attack.SAT(l.Circuit, o, opts.Budgets)
		}},
		{"DoubleDIP", func(o oracle.Oracle, seed uint64) (*attack.Result, error) {
			return attack.DoubleDIP(l.Circuit, o, opts.Budgets)
		}},
		{"AppSAT", func(o oracle.Oracle, seed uint64) (*attack.Result, error) {
			return attack.AppSAT(l.Circuit, o, attack.AppSATOptions{
				Budgets: opts.Budgets,
				Rand:    rng.NewNamed(seed, "attacks/appsat"),
			})
		}},
		{"HillClimb", func(o oracle.Oracle, seed uint64) (*attack.Result, error) {
			return attack.HillClimb(l.Circuit, o, attack.HillOptions{
				Patterns: 512,
				Restarts: 12,
				Rand:     rng.NewNamed(seed, "attacks/hill"),
			})
		}},
	}

	// The cells share the locked and reference circuits read-only; every
	// evaluator compiles its own immutable program, so no warm-up is
	// needed before the fan-out.
	type cell struct {
		prot scan.Protection
		a    attackFn
	}
	var cells []cell
	taintCol, err := taintSummary(l.Circuit)
	if err != nil {
		return nil, err
	}
	exactCol, err := exactSummary(l.Circuit)
	if err != nil {
		return nil, err
	}
	auditCol := make(map[scan.Protection]string)
	for _, prot := range []scan.Protection{scan.None, scan.OraPBasic} {
		// The audit column is per protection level, not per attack: run the
		// static analyzer once on the same configuration the cells rebuild.
		cfg, err := orap.Protect(l.Circuit, l.Key, scaled.Pins, scaled.PinOuts, prot, orap.Options{
			Rand: rng.NewNamed(opts.Seed, "attacks/orap"),
		})
		if err != nil {
			return nil, err
		}
		auditCol[prot], err = auditSummary(cfg)
		if err != nil {
			return nil, err
		}
		for _, a := range attacks {
			cells = append(cells, cell{prot, a})
		}
	}
	rows := make([]AttackRow, len(cells))
	err = par.ForEach(opts.Workers, len(cells), func(i int) error {
		prot, a := cells[i].prot, cells[i].a
		o, err := newScanOracle(l, scaled, prot, opts.Seed)
		if err != nil {
			return err
		}
		row := AttackRow{Attack: a.name, Protection: prot.String(), Disagreement: 1, Taint: taintCol, Exact: exactCol, Audit: auditCol[prot]}
		res, err := a.run(o, opts.Seed)
		// Channel telemetry comes from the session itself, so failed runs
		// report their (wasted) channel usage too.
		st := o.Stats()
		row.Unique = st.Unique
		row.CacheHitPct = 100 * st.HitRate()
		row.ScanCycles = st.ScanCycles
		if err != nil {
			row.Note = err.Error()
			if res != nil {
				row.Iterations = res.Iterations
				row.Queries = res.OracleQueries
			}
			rows[i] = row
			return nil
		}
		row.Converged = res.Converged
		row.Iterations = res.Iterations
		row.Queries = res.OracleQueries
		if res.Key != nil {
			ok, err := attack.VerifyKey(l.Circuit, circuit, res.Key)
			if err != nil {
				return err
			}
			row.KeyCorrect = ok
			ref, err := oracle.NewComb(circuit, nil)
			if err != nil {
				return err
			}
			dis, err := attack.SampleDisagreement(l.Circuit, res.Key, ref, 256,
				rng.NewNamed(opts.Seed, "attacks/disagree"))
			if err != nil {
				return err
			}
			row.Disagreement = dis
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// taintSummary condenses the netlist-side dataflow verdict into a table
// cell: how many primary outputs any key bit can structurally corrupt
// (the key-taint fixpoint) and how many key bits the audit proves
// linearly separable at an output (key-leak findings). Weighted locking
// should taint every output and leak nothing.
func taintSummary(c *netlist.Circuit) (string, error) {
	prog, err := ir.Compile(c)
	if err != nil {
		return "", err
	}
	taint := dataflow.Run[dataflow.KeySet](prog, dataflow.NewKeyTaint(prog), dataflow.Options{Workers: 1})
	tainted := 0
	for _, o := range prog.POs {
		if !taint[o].Empty() {
			tainted++
		}
	}
	rep := audit.AnalyzeProgram(prog, c, audit.Options{})
	leaks := len(rep.ByRule(audit.RuleKeyLeak))
	return fmt.Sprintf("%d/%dPO %dL", tainted, prog.NumOutputs(), leaks), nil
}

// exactSummary condenses the audit's symbolic backend into a table
// cell: the minimum per-key-bit corruption rate (how rarely the
// hardest bit is observable — the quantity approximate attacks
// exploit) and how many key bits provably have at least one
// distinguishing input. Key bits whose cones blew the BDD node budget
// are reported as a fallback suffix rather than silently dropped.
func exactSummary(c *netlist.Circuit) (string, error) {
	rep, err := audit.Analyze(c, audit.Options{Exact: true})
	if err != nil {
		return "", err
	}
	ex := rep.Exact
	minRate, okBits, withDist := 1.0, 0, 0
	for _, b := range ex.Bits {
		if !b.OK {
			continue
		}
		okBits++
		if b.Rate < minRate {
			minRate = b.Rate
		}
		if b.DistInputs.Sign() > 0 {
			withDist++
		}
	}
	if okBits == 0 {
		return fmt.Sprintf("budget(%d)", ex.Stats.Fallbacks), nil
	}
	s := fmt.Sprintf("%.3gr %d/%dd", minRate, withDist, len(ex.Bits))
	if ex.Stats.Fallbacks > 0 {
		s += fmt.Sprintf(" %dfb", ex.Stats.Fallbacks)
	}
	return s, nil
}

// auditSummary condenses the oracle-path audit of a configuration into
// a table cell: error/warning counts, and effective vs nominal key
// entropy when the configuration carries an LFSR register.
func auditSummary(cfg scan.Config) (string, error) {
	rep, err := audit.Oracle(cfg, nil)
	if err != nil {
		return "", err
	}
	errs, warns, _ := rep.Counts()
	s := fmt.Sprintf("%dE/%dW", errs, warns)
	if rep.NominalEntropy > 0 {
		s += fmt.Sprintf(" %d/%db", rep.EffectiveEntropy, rep.NominalEntropy)
	}
	return s, nil
}

// newScanOracle builds a fresh activated chip for the locked circuit and
// wraps it in the scan-protocol oracle behind a channel session
// (batching, transcript memoisation, telemetry).
func newScanOracle(l *lock.Locked, prof benchgen.Profile, prot scan.Protection, seed uint64) (*oracle.Session, error) {
	cfg, err := orap.Protect(l.Circuit, l.Key, prof.Pins, prof.PinOuts, prot, orap.Options{
		Rand: rng.NewNamed(seed, "attacks/orap"),
	})
	if err != nil {
		return nil, err
	}
	ch, err := scan.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := ch.Unlock(nil); err != nil {
		return nil, err
	}
	return oracle.NewSession(oracle.NewScan(ch), 0), nil
}

// FormatAttackStudy renders the attack comparison.
func FormatAttackStudy(rows []AttackRow) string {
	header := []string{"Attack", "Oracle", "Converged", "Key correct", "Disagreement", "Iters", "Queries", "Unique", "Hit%", "Scan cycles", "Taint", "Exact", "Audit", "Note"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Attack,
			r.Protection,
			fmt.Sprint(r.Converged),
			fmt.Sprint(r.KeyCorrect),
			fmt.Sprintf("%.3f", r.Disagreement),
			fmt.Sprint(r.Iterations),
			fmt.Sprint(r.Queries),
			fmt.Sprint(r.Unique),
			fmt.Sprintf("%.1f", r.CacheHitPct),
			fmt.Sprint(r.ScanCycles),
			r.Taint,
			r.Exact,
			r.Audit,
			r.Note,
		})
	}
	return FormatTable(header, cells)
}
