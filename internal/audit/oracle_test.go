// Firing and clean cases for the oracle-path rules, against hand-built
// scan configurations and real orap.Protect output.
package audit_test

import (
	"testing"

	"orap/internal/audit"
	"orap/internal/check"
	"orap/internal/circuits"
	"orap/internal/gf2"
	"orap/internal/lfsr"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/scan"
)

// keyedCore builds a 4-key core with 1 package pin, 4 flip-flops and 1
// pin output — enough state for modified-scheme and layout checks.
func keyedCore(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("keyedcore")
	a := addIn(t, c, "a")
	ffs := make([]int, 4)
	for i := range ffs {
		ffs[i] = addIn(t, c, "f"+string(rune('0'+i)))
	}
	keys := make([]int, 4)
	for i := range keys {
		keys[i] = addKey(t, c, "keyinput"+string(rune('0'+i)))
	}
	x := c.MustAddGate(netlist.Xor, "x", a, keys[0])
	for i := 1; i < 4; i++ {
		x = c.MustAddGate(netlist.Xor, "x"+string(rune('0'+i)), x, keys[i])
	}
	o := c.MustAddGate(netlist.Or, "o", x, ffs[0])
	markOut(t, c, o)
	for i := range ffs {
		d := c.MustAddGate(netlist.And, "d"+string(rune('0'+i)), ffs[i], x)
		markOut(t, c, d)
	}
	return c
}

// orapBasicConfig builds a real protected configuration through the
// paper's synthesis path.
func orapBasicConfig(t *testing.T, prot scan.Protection) (scan.Config, *lock.Locked) {
	t.Helper()
	l, err := lock.Weighted(circuits.RippleAdder(4), lock.WeightedOptions{
		KeyBits: 12, ControlWidth: 3, KeyGates: 12, Rand: rng.New(71),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := orap.Protect(l.Circuit, l.Key, 5, 1, prot, orap.Options{Rand: rng.New(72)})
	if err != nil {
		t.Fatal(err)
	}
	return cfg, l
}

func TestOracleUnprotectedFires(t *testing.T) {
	core := keyedCore(t)
	cfg := scan.Config{
		Core: core, RealPIs: 1, RealPOs: 1,
		Protection: scan.None,
		Key:        []bool{true, false, false, false},
	}
	rep, err := audit.Oracle(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := rep.ByRule(audit.RuleOracleUnprotected)
	if len(fs) != 1 || fs[0].Sev != check.Error {
		t.Fatalf("want one error, got:\n%s", rep)
	}
	if rep.NominalEntropy != 0 {
		t.Errorf("unprotected config must not report entropy, got %d", rep.NominalEntropy)
	}
}

func TestOracleProtectedCleanWithFullEntropy(t *testing.T) {
	cfg, l := orapBasicConfig(t, scan.OraPBasic)
	rep, err := audit.Oracle(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasErrors() {
		t.Fatalf("errors on a synthesized OraP configuration:\n%s", rep)
	}
	if rep.NominalEntropy != len(l.Key) || rep.EffectiveEntropy != rep.NominalEntropy {
		t.Fatalf("entropy %d/%d, want full %d", rep.EffectiveEntropy, rep.NominalEntropy, len(l.Key))
	}
}

// A schedule injecting through a single point for too few cycles leaves
// the transfer matrix rank-deficient: only a fraction of the register
// states are reachable from memory.
func TestOracleKeyEntropyFires(t *testing.T) {
	core := keyedCore(t)
	seeds := []gf2.Vec{gf2.NewVec(1), gf2.NewVec(1)}
	seeds[0].SetBit(0, true)
	cfg := scan.Config{
		Core: core, RealPIs: 1, RealPOs: 1,
		Protection: scan.OraPBasic,
		LFSR:       lfsr.Config{N: 4, Taps: lfsr.StandardTaps(4, 8), Inject: []int{0}},
		Schedule:   lfsr.UniformSchedule(2, 0),
		Seeds:      seeds,
		MemInject:  []int{0},
	}
	rep, err := audit.Oracle(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := rep.ByRule(audit.RuleKeyEntropy)
	if len(fs) != 1 || fs[0].Sev != check.Error {
		t.Fatalf("want one key-entropy error, got:\n%s", rep)
	}
	if rep.EffectiveEntropy >= rep.NominalEntropy || rep.NominalEntropy != 4 {
		t.Fatalf("entropy %d/%d, want deficient", rep.EffectiveEntropy, rep.NominalEntropy)
	}
}

// Zeroing out a synthesized key sequence makes the basic scheme unlock
// to the cleared register: protection void, audit must say so.
func TestOracleZeroKeyFires(t *testing.T) {
	cfg, _ := orapBasicConfig(t, scan.OraPBasic)
	for i := range cfg.Seeds {
		cfg.Seeds[i] = gf2.NewVec(cfg.Seeds[i].Len())
	}
	rep, err := audit.Oracle(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fs := rep.ByRule(audit.RuleZeroKey); len(fs) != 1 || fs[0].Sev != check.Error {
		t.Fatalf("want one zero-key error, got:\n%s", rep)
	}
}

func modifiedConfig(t *testing.T, respTaps []int) scan.Config {
	t.Helper()
	core := keyedCore(t)
	seeds := make([]gf2.Vec, 4)
	for i := range seeds {
		seeds[i] = gf2.NewVec(2)
	}
	return scan.Config{
		Core: core, RealPIs: 1, RealPOs: 1,
		Protection: scan.OraPModified,
		LFSR:       lfsr.Config{N: 4, Taps: lfsr.StandardTaps(4, 8), Inject: lfsr.AllInject(4)},
		Schedule:   lfsr.UniformSchedule(4, 1),
		Seeds:      seeds,
		MemInject:  []int{0, 2},
		RespInject: []int{1, 3},
		RespTaps:   respTaps,
	}
}

func TestOracleRespTapsRule(t *testing.T) {
	rep, err := audit.Oracle(modifiedConfig(t, []int{1, 1}), nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := rep.ByRule(audit.RuleRespTaps)
	if len(fs) != 1 || fs[0].Sev != check.Warning {
		t.Fatalf("want one resp-taps warning, got:\n%s", rep)
	}

	rep, err = audit.Oracle(modifiedConfig(t, []int{0, 1}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fs := rep.ByRule(audit.RuleRespTaps); len(fs) != 0 {
		t.Fatalf("resp-taps fired on distinct taps:\n%s", rep)
	}
}

func TestOracleScanLayoutRule(t *testing.T) {
	cfg := modifiedConfig(t, []int{0, 1})

	tail := scan.TailLayout(4, 4, 1)
	rep, err := audit.Oracle(cfg, &tail)
	if err != nil {
		t.Fatal(err)
	}
	if fs := rep.ByRule(audit.RuleScanLayout); len(fs) != 1 || fs[0].Sev != check.Warning {
		t.Fatalf("want one scan-layout warning on the tail layout, got:\n%s", rep)
	}

	inter := scan.InterleavedLayout(4, 4, 1)
	rep, err = audit.Oracle(cfg, &inter)
	if err != nil {
		t.Fatal(err)
	}
	if fs := rep.ByRule(audit.RuleScanLayout); len(fs) != 0 {
		t.Fatalf("scan-layout fired on the interleaved layout:\n%s", rep)
	}
}

func TestProbeChipSelfClear(t *testing.T) {
	cfg, _ := orapBasicConfig(t, scan.OraPBasic)

	clean, err := scan.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := audit.ProbeChip(clean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fs := rep.ByRule(audit.RuleSelfClear); len(fs) != 0 {
		t.Fatalf("self-clear fired on a clean chip:\n%s", rep)
	}
	if rep.HasErrors() {
		t.Fatalf("errors on a clean chip:\n%s", rep)
	}

	trojaned, err := scan.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trojaned.ArmTrojans(scan.Trojans{SuppressKeyReset: true})
	rep, err = audit.ProbeChip(trojaned, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fs := rep.ByRule(audit.RuleSelfClear); len(fs) != 1 || fs[0].Sev != check.Error {
		t.Fatalf("self-clear did not catch the reset-suppression Trojan:\n%s", rep)
	}
}
