// Package audit is the security static analyzer: it asks whether a
// locked (and possibly OraP-protected) design leaks its key through the
// netlist or through the oracle path, and answers with typed findings
// that carry a rule ID, a severity, the offending gates or key bits and
// a reference to the attack literature that exploits the weakness.
//
// Where internal/check guards *structural* soundness (cycles, undriven
// nets, arity), audit guards *security*: the topology-guided attack
// (Zhang et al., arXiv:2006.05930) locates key gates by their local
// structure, and resynthesis-based attacks (Almeida et al.,
// arXiv:2301.04400) strip key logic that constant propagation can
// remove — both without ever touching an oracle. A configuration that
// fails the audit is broken before the first SAT query, so the analyzer
// runs as a preflight in orapbench and as a post-construction assertion
// in the lock and orap tests.
//
// Netlist rules (Analyze/Circuit):
//
//   - key-removable: per-key-bit constant propagation under both key
//     values. A key bit no primary output depends on is dead weight a
//     resynthesis pass strips (error; warning when the bit drives no
//     gate at all, mirroring check's dead-key-material policy), and a
//     gate that goes constant while a key-dependent signal feeds it
//     absorbs — and thereby removes — that key dependence (warning).
//   - key-fingerprint: key gates identifiable from local structure —
//     an XOR/XNOR spliced directly behind a key input (EPIC-style,
//     warning), a point-function comparator against primary inputs
//     (SARLock/Anti-SAT/TTLock-style, warning), or a weighted-locking
//     control cone (info). Each finding reports its anonymity set: how
//     many gates in the circuit share the fingerprint shape.
//   - low-corruptibility: a key bit whose fanout cone covers fewer
//     primary outputs than a threshold; a wrong guess at that bit is
//     almost never observed, which is what approximate attacks
//     (AppSAT) exploit. Warning.
//   - key-leak: a key bit that is linearly separable at a primary
//     output — the output provably flips with the bit under every
//     input pattern, so a single scan capture of the activated chip
//     reveals the bit. Warning.
//   - testability-bound: a gate whose SCOAP stuck-at detect difficulty
//     exceeds a threshold; random patterns are unlikely to cover it,
//     and point-function locking hides exactly there. Info.
//
// The netlist rules all run on one shared abstract-interpretation
// engine (internal/dataflow): the pair/key-difference domain drives
// key-removable and key-leak, the key-taint domain drives
// low-corruptibility, and the SCOAP controllability/observability
// domains drive testability-bound. Explain reconstructs per-finding
// witness paths from the same fixpoints.
//
// Oracle-path rules (Oracle/ProbeChip):
//
//   - oracle-unprotected: a conventional scan configuration — the key
//     register survives test mode and the whole oracle-guided attack
//     class applies. Error.
//   - key-entropy: the GF(2) rank of the memory-seed transfer matrix is
//     the number of key-register states reachable from tamper-proof
//     memory; rank below the nominal LFSR width shrinks the effective
//     keyspace accordingly (the scenario-(d) symbolic analysis run from
//     the defender's side). Error.
//   - zero-key: the stored key sequence unlocks the basic scheme to the
//     all-zero state — indistinguishable from a cleared register, so
//     the chip answers correctly in test mode and the protection is
//     void. Error.
//   - resp-taps: response-driven reseeding points sharing a flip-flop
//     tap; correlated injections shrink the scenario-(e) search space.
//     Warning.
//   - scan-layout: key cells bunched in the scan chains, cheapening the
//     scenario-(b) bypass-mux Trojan the Section III interleaving
//     countermeasure defends against. Warning.
//   - self-clear: a behavioural probe — after a rising scan-enable
//     edge the key register must read back all-zero through the scan
//     chain; a chip where it does not has the scenario-(a)/(b) reset
//     suppression in place. Error.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"orap/internal/check"
	"orap/internal/ir"
	"orap/internal/netlist"
)

// Rule IDs, in catalog order.
const (
	// RuleKeyRemovable: key logic that constant propagation removes —
	// an inert key bit (error; warning when it drives nothing) or a
	// gate that absorbs key dependence into a constant (warning).
	RuleKeyRemovable = "key-removable"
	// RuleKeyFingerprint: a key gate identifiable by local structure.
	// Warning for EPIC-style XOR splices and point-function
	// comparators, info for weighted control cones.
	RuleKeyFingerprint = "key-fingerprint"
	// RuleLowCorruptibility: a key bit whose cone covers fewer primary
	// outputs than the threshold. Warning.
	RuleLowCorruptibility = "low-corruptibility"
	// RuleKeyLeak: a key bit linearly separable at a primary output —
	// one oracle response reveals it. Warning.
	RuleKeyLeak = "key-leak"
	// RuleKeyEquivalence: the locked circuit under the stored key is
	// provably not equivalent to the original — the lock transform
	// corrupted the design. Emitted only by the symbolic KeyEquivalence
	// proof. Error.
	RuleKeyEquivalence = "key-equivalence"
	// RuleTestabilityBound: a gate whose SCOAP stuck-at detect
	// difficulty exceeds the threshold. Info.
	RuleTestabilityBound = "testability-bound"
	// RuleOracleUnprotected: conventional scan exposes the unlocked
	// core to the tester. Error.
	RuleOracleUnprotected = "oracle-unprotected"
	// RuleKeyEntropy: memory-seed transfer matrix rank below the
	// nominal LFSR width. Error.
	RuleKeyEntropy = "key-entropy"
	// RuleZeroKey: the key sequence unlocks to the all-zero (cleared)
	// state. Error.
	RuleZeroKey = "zero-key"
	// RuleRespTaps: response reseeding points share flip-flop taps.
	// Warning.
	RuleRespTaps = "resp-taps"
	// RuleScanLayout: consecutive key cells in a scan chain. Warning.
	RuleScanLayout = "scan-layout"
	// RuleSelfClear: the key register survives a rising scan-enable
	// edge. Error.
	RuleSelfClear = "self-clear"
)

// Attack-literature references attached to findings.
const (
	// RefResynthesis: resynthesis-based attacks on logic locking,
	// Almeida et al., arXiv:2301.04400.
	RefResynthesis = "arXiv:2301.04400"
	// RefTopology: topology-guided attack, Zhang et al.,
	// arXiv:2006.05930.
	RefTopology = "arXiv:2006.05930"
	// RefOraP: the source paper (Kalligeros et al., DATE 2020) —
	// Section II for the oracle-path reasoning, Section III for the
	// Trojan scenarios (a)–(e) and their countermeasures.
	RefOraP = "OraP DATE'20"
)

// Finding is one audit result: the rule that fired, its severity, the
// key bit and/or node it is anchored to, and the attack-literature
// reference explaining who exploits the weakness.
type Finding struct {
	Rule string
	Sev  check.Severity
	// KeyBit is the key-bit index the finding concerns, -1 when the
	// finding is not tied to a specific key bit.
	KeyBit int
	// Node is the offending node ID, -1 when not tied to a node.
	Node int
	// Name and Line locate Node in the source netlist when known.
	Name string
	Line int
	Msg  string
	// Ref cites the attack paper or scheme section that exploits the
	// flagged weakness.
	Ref string
}

// String renders the finding as "line 12: error[key-removable]: message
// (ref: arXiv:2301.04400)".
func (f Finding) String() string {
	var b strings.Builder
	if f.Line > 0 {
		fmt.Fprintf(&b, "line %d: ", f.Line)
	}
	fmt.Fprintf(&b, "%s[%s]: %s", f.Sev, f.Rule, f.Msg)
	if f.Ref != "" {
		fmt.Fprintf(&b, " (ref: %s)", f.Ref)
	}
	return b.String()
}

// Report is the outcome of auditing one design or chip configuration.
type Report struct {
	// Circuit is the audited circuit's name.
	Circuit string
	// Findings holds every finding, grouped by rule in catalog order.
	Findings []Finding
	// NominalEntropy and EffectiveEntropy are the LFSR width and the
	// GF(2) rank of its memory-seed transfer matrix; both zero for
	// netlist-only audits and for unprotected configurations.
	NominalEntropy   int
	EffectiveEntropy int
	// Exact holds the symbolic backend's per-key-bit model counts and
	// BDD telemetry when the audit ran with Options.Exact; nil
	// otherwise.
	Exact *ExactResult
}

func (r *Report) add(f Finding) { r.Findings = append(r.Findings, f) }

// ruleRank orders the netlist rules in catalog order for the canonical
// report sort. Oracle-path rules never mix with netlist findings in one
// report, so they need no rank.
var ruleRank = map[string]int{
	RuleKeyRemovable:      0,
	RuleKeyFingerprint:    1,
	RuleLowCorruptibility: 2,
	RuleKeyLeak:           3,
	RuleTestabilityBound:  4,
	RuleKeyEquivalence:    5,
}

// sort puts the findings in the canonical order: rule in catalog order,
// then node ID, then key bit. The stable sort keeps the per-rule
// emission order for findings sharing all three keys.
func (r *Report) sort() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if ra, rb := ruleRank[a.Rule], ruleRank[b.Rule]; ra != rb {
			return ra < rb
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.KeyBit < b.KeyBit
	})
}

// HasErrors reports whether any finding has error severity.
func (r *Report) HasErrors() bool {
	for _, f := range r.Findings {
		if f.Sev == check.Error {
			return true
		}
	}
	return false
}

// Errors returns the error-severity findings.
func (r *Report) Errors() []Finding { return r.AtLeast(check.Error) }

// AtLeast returns the findings with severity >= min.
func (r *Report) AtLeast(min check.Severity) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Sev >= min {
			out = append(out, f)
		}
	}
	return out
}

// ByRule returns the findings produced by the given rule.
func (r *Report) ByRule(rule string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

// Counts returns the number of error-, warning- and info-severity
// findings.
func (r *Report) Counts() (errors, warnings, infos int) {
	for _, f := range r.Findings {
		switch f.Sev {
		case check.Error:
			errors++
		case check.Warning:
			warnings++
		default:
			infos++
		}
	}
	return
}

// String renders the report one finding per line, prefixed with the
// circuit name, followed by the entropy summary when one was computed.
func (r *Report) String() string {
	var b strings.Builder
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "%s: %s\n", r.Circuit, f)
	}
	if r.NominalEntropy > 0 {
		fmt.Fprintf(&b, "%s: effective key entropy %d of %d bits\n",
			r.Circuit, r.EffectiveEntropy, r.NominalEntropy)
	}
	if r.Exact != nil {
		fmt.Fprintf(&b, "%s: %s\n", r.Circuit, r.Exact.Telemetry())
	}
	return b.String()
}

// Err converts the report's error-severity findings into a single
// error, or nil when there are none.
func (r *Report) Err() error {
	errs := r.Errors()
	if len(errs) == 0 {
		return nil
	}
	first := errs[0]
	if len(errs) == 1 {
		return fmt.Errorf("audit: circuit %q: %s", r.Circuit, first)
	}
	return fmt.Errorf("audit: circuit %q: %s (and %d more errors)", r.Circuit, first, len(errs)-1)
}

// Options tunes the netlist analyses.
type Options struct {
	// MinCorruptPOs is the low-corruptibility threshold: a key bit
	// whose fanout cone covers fewer primary outputs warns. 0 selects
	// the default min(2, numPOs) — a bit confined to a single output
	// of a multi-output circuit is flagged, single-output circuits
	// never are.
	MinCorruptPOs int
	// TestabilityThreshold is the SCOAP detect-difficulty level at
	// which testability-bound fires. 0 selects the default (50).
	TestabilityThreshold int
	// Exact enables the symbolic backend: per-key-bit ROBDD model
	// counts replace the structural bounds in low-corruptibility and
	// key-leak, and a bit whose exact corruption count is zero is
	// reported key-removable. Bits whose cones exceed the node budget
	// fall back to the dataflow bounds, recorded in the report's
	// telemetry.
	Exact bool
	// BDDBudget is the per-key-bit BDD node budget for Exact; 0 selects
	// bdd.DefaultBudget.
	BDDBudget int
}

// Circuit audits a locked netlist with default options. The circuit
// must pass check's structural rules (ir.Compile enforces them); the
// returned error reports a structurally unsound circuit, not audit
// findings — those are in the report.
func Circuit(c *netlist.Circuit) (*Report, error) {
	return Analyze(c, Options{})
}

// Analyze audits a locked netlist: key-gate removability, topology
// fingerprints and static corruptibility bounds. Unlocked circuits
// (no key inputs) produce an empty report.
func Analyze(c *netlist.Circuit, opts Options) (*Report, error) {
	prog, err := ir.Compile(c)
	if err != nil {
		return nil, err
	}
	return AnalyzeProgram(prog, c, opts), nil
}

// AnalyzeProgram is Analyze for a circuit already compiled to its IR;
// c supplies node names and source lines for the findings and must be
// the circuit prog was compiled from.
func AnalyzeProgram(prog *ir.Program, c *netlist.Circuit, opts Options) *Report {
	rep := &Report{Circuit: c.Name}
	if prog.NumKeys() == 0 {
		return rep
	}
	e := newEngine(prog)
	inert := removability(e, c, rep)
	var ex *ExactResult
	if opts.Exact {
		ex = exactAnalyze(prog, ExactOptions{NodeBudget: opts.BDDBudget})
		rep.Exact = ex
		exactRemovability(prog, c, rep, ex, inert)
	}
	fingerprints(prog, c, rep)
	corruptibility(e, c, rep, opts, inert, ex)
	keyLeaks(e, c, rep, ex)
	testabilityBound(e, c, rep, opts)
	rep.sort()
	return rep
}

// finding builds a node-anchored finding, resolving name and line.
func finding(c *netlist.Circuit, rule string, sev check.Severity, keyBit, id int, ref, format string, args ...interface{}) Finding {
	f := Finding{
		Rule:   rule,
		Sev:    sev,
		KeyBit: keyBit,
		Node:   id,
		Msg:    fmt.Sprintf(format, args...),
		Ref:    ref,
	}
	if id >= 0 && id < c.NumNodes() {
		f.Name = c.NameOf(id)
		f.Line = c.SrcLine(id)
	}
	return f
}
