// Firing and clean cases for every netlist audit rule, on hand-built
// circuits small enough to verify the expected finding by inspection.
package audit_test

import (
	"strings"
	"testing"

	"orap/internal/audit"
	"orap/internal/check"
	"orap/internal/netlist"
)

func addIn(t *testing.T, c *netlist.Circuit, name string) int {
	t.Helper()
	id, err := c.AddInput(name)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func addKey(t *testing.T, c *netlist.Circuit, name string) int {
	t.Helper()
	id, err := c.AddKeyInput(name)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func markOut(t *testing.T, c *netlist.Circuit, ids ...int) {
	t.Helper()
	for _, id := range ids {
		if err := c.MarkOutput(id); err != nil {
			t.Fatal(err)
		}
	}
}

func mustAudit(t *testing.T, c *netlist.Circuit) *audit.Report {
	t.Helper()
	rep, err := audit.Circuit(c)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// XOR(k, k) is constant, so the key bit cannot reach the output: the
// inert-bit error and the absorption warning must both fire, the
// warning anchored at the absorbing gate.
func TestRemovabilityInertKeyBitFires(t *testing.T) {
	c := netlist.New("inert")
	a := addIn(t, c, "a")
	k := addKey(t, c, "keyinput0")
	g := c.MustAddGate(netlist.Xor, "g", k, k)
	h := c.MustAddGate(netlist.And, "h", a, g)
	markOut(t, c, h)

	rep := mustAudit(t, c)
	fs := rep.ByRule(audit.RuleKeyRemovable)
	if len(fs) == 0 {
		t.Fatalf("key-removable did not fire:\n%s", rep)
	}
	var sawInert, sawAbsorb bool
	for _, f := range fs {
		if f.Sev == check.Error && f.KeyBit == 0 {
			sawInert = true
		}
		if f.Sev == check.Warning && f.Node == g {
			sawAbsorb = true
		}
	}
	if !sawInert {
		t.Errorf("missing error-severity inert-key finding:\n%s", rep)
	}
	if !sawAbsorb {
		t.Errorf("missing absorption warning at gate %q:\n%s", c.NameOf(g), rep)
	}
}

// A key input with no fanout is dead key material — the weighted-lock
// remainder-bit artifact — and only warns.
func TestRemovabilityDeadKeyMaterialWarns(t *testing.T) {
	c := netlist.New("dead")
	a := addIn(t, c, "a")
	addKey(t, c, "keyinput0")
	o := c.MustAddGate(netlist.Buf, "o", a)
	markOut(t, c, o)

	rep := mustAudit(t, c)
	fs := rep.ByRule(audit.RuleKeyRemovable)
	if len(fs) != 1 || fs[0].Sev != check.Warning {
		t.Fatalf("want exactly one warning, got:\n%s", rep)
	}
	if !strings.Contains(fs[0].Msg, "drives no gate") {
		t.Errorf("unexpected message: %s", fs[0].Msg)
	}
	if rep.HasErrors() {
		t.Errorf("dead key material must not be an error:\n%s", rep)
	}
}

// A key bit a primary output genuinely depends on is clean — including
// through XOR, where both constant-propagation passes stay unknown and
// only the equality tracking tells dependence apart.
func TestRemovabilityCleanOnLiveKey(t *testing.T) {
	c := netlist.New("live")
	a := addIn(t, c, "a")
	k := addKey(t, c, "keyinput0")
	o := c.MustAddGate(netlist.Xor, "o", a, k)
	markOut(t, c, o)

	rep := mustAudit(t, c)
	if fs := rep.ByRule(audit.RuleKeyRemovable); len(fs) != 0 {
		t.Fatalf("key-removable fired on a live key bit:\n%s", rep)
	}
}

func TestFingerprintXorDirectFires(t *testing.T) {
	c := netlist.New("epic")
	a := addIn(t, c, "a")
	b := addIn(t, c, "b")
	k := addKey(t, c, "keyinput0")
	n1 := c.MustAddGate(netlist.And, "n1", a, b)
	kg := c.MustAddGate(netlist.Xor, "kg", n1, k)
	markOut(t, c, kg)

	rep := mustAudit(t, c)
	fs := rep.ByRule(audit.RuleKeyFingerprint)
	if len(fs) != 1 || fs[0].Sev != check.Warning {
		t.Fatalf("want one warning, got:\n%s", rep)
	}
	if !strings.Contains(fs[0].Msg, "EPIC") || fs[0].Node != kg {
		t.Errorf("unexpected finding: %+v", fs[0])
	}
	if !strings.Contains(fs[0].Msg, "anonymity set") {
		t.Errorf("finding lacks the anonymity score: %s", fs[0].Msg)
	}
}

func TestFingerprintPointFunctionFires(t *testing.T) {
	c := netlist.New("sarlockish")
	a := addIn(t, c, "a")
	b := addIn(t, c, "b")
	k := addKey(t, c, "keyinput0")
	cmp := c.MustAddGate(netlist.Xnor, "cmp", a, k)
	o := c.MustAddGate(netlist.And, "o", b, cmp)
	markOut(t, c, o)

	rep := mustAudit(t, c)
	fs := rep.ByRule(audit.RuleKeyFingerprint)
	if len(fs) != 1 || fs[0].Sev != check.Warning {
		t.Fatalf("want one warning, got:\n%s", rep)
	}
	if !strings.Contains(fs[0].Msg, "point-function") || fs[0].Node != cmp {
		t.Errorf("unexpected finding: %+v", fs[0])
	}
}

// A weighted-locking control cone (key bits mixing in an AND before
// touching the circuit) is only an info note, per key bit.
func TestFingerprintControlConeIsInfo(t *testing.T) {
	c := netlist.New("weightedish")
	a := addIn(t, c, "a")
	b := addIn(t, c, "b")
	k0 := addKey(t, c, "keyinput0")
	k1 := addKey(t, c, "keyinput1")
	ctrl := c.MustAddGate(netlist.And, "ctrl", k0, k1)
	n1 := c.MustAddGate(netlist.And, "n1", a, b)
	kg := c.MustAddGate(netlist.Xor, "kg", n1, ctrl)
	markOut(t, c, kg)

	rep := mustAudit(t, c)
	fs := rep.ByRule(audit.RuleKeyFingerprint)
	if len(fs) != 2 {
		t.Fatalf("want one info note per key bit, got:\n%s", rep)
	}
	for _, f := range fs {
		if f.Sev != check.Info {
			t.Errorf("control cone must be info severity, got %v: %s", f.Sev, f.Msg)
		}
		if !strings.Contains(f.Msg, "control cone") {
			t.Errorf("unexpected message: %s", f.Msg)
		}
	}
}

// A key bit feeding a plain AND against a circuit signal matches no
// known key-gate signature and stays silent.
func TestFingerprintCleanOnUnclassifiedShape(t *testing.T) {
	c := netlist.New("diffuse")
	a := addIn(t, c, "a")
	k := addKey(t, c, "keyinput0")
	g := c.MustAddGate(netlist.And, "g", a, k)
	markOut(t, c, g)

	rep := mustAudit(t, c)
	if fs := rep.ByRule(audit.RuleKeyFingerprint); len(fs) != 0 {
		t.Fatalf("fingerprint fired on an unclassified shape:\n%s", rep)
	}
}

func TestCorruptibilityLowCoverageFires(t *testing.T) {
	c := netlist.New("narrow")
	a := addIn(t, c, "a")
	b := addIn(t, c, "b")
	k := addKey(t, c, "keyinput0")
	o1 := c.MustAddGate(netlist.Xor, "o1", a, k)
	o2 := c.MustAddGate(netlist.Buf, "o2", b)
	markOut(t, c, o1, o2)

	rep := mustAudit(t, c)
	fs := rep.ByRule(audit.RuleLowCorruptibility)
	if len(fs) != 1 || fs[0].Sev != check.Warning || fs[0].KeyBit != 0 {
		t.Fatalf("want one warning on key bit 0, got:\n%s", rep)
	}
}

func TestCorruptibilityCleanOnWideCone(t *testing.T) {
	c := netlist.New("wide")
	a := addIn(t, c, "a")
	b := addIn(t, c, "b")
	k := addKey(t, c, "keyinput0")
	o1 := c.MustAddGate(netlist.Xor, "o1", a, k)
	o2 := c.MustAddGate(netlist.And, "o2", b, o1)
	markOut(t, c, o1, o2)

	rep := mustAudit(t, c)
	if fs := rep.ByRule(audit.RuleLowCorruptibility); len(fs) != 0 {
		t.Fatalf("low-corruptibility fired on a two-output cone:\n%s", rep)
	}
}

// Single-output circuits never fire the default threshold: one output
// is all there is to corrupt.
func TestCorruptibilitySingleOutputClean(t *testing.T) {
	c := netlist.New("single")
	a := addIn(t, c, "a")
	k := addKey(t, c, "keyinput0")
	o := c.MustAddGate(netlist.Xor, "o", a, k)
	markOut(t, c, o)

	rep := mustAudit(t, c)
	if fs := rep.ByRule(audit.RuleLowCorruptibility); len(fs) != 0 {
		t.Fatalf("low-corruptibility fired on a single-output circuit:\n%s", rep)
	}
}

func TestCorruptibilityThresholdOption(t *testing.T) {
	c := netlist.New("threshold")
	a := addIn(t, c, "a")
	b := addIn(t, c, "b")
	d := addIn(t, c, "d")
	k := addKey(t, c, "keyinput0")
	o1 := c.MustAddGate(netlist.Xor, "o1", a, k)
	o2 := c.MustAddGate(netlist.And, "o2", b, o1)
	o3 := c.MustAddGate(netlist.Buf, "o3", d)
	markOut(t, c, o1, o2, o3)

	rep, err := audit.Analyze(c, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fs := rep.ByRule(audit.RuleLowCorruptibility); len(fs) != 0 {
		t.Fatalf("default threshold fired at coverage 2:\n%s", rep)
	}
	rep, err = audit.Analyze(c, audit.Options{MinCorruptPOs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fs := rep.ByRule(audit.RuleLowCorruptibility); len(fs) != 1 {
		t.Fatalf("raised threshold did not fire:\n%s", rep)
	}
}

func TestUnlockedCircuitEmptyReport(t *testing.T) {
	c := netlist.New("plain")
	a := addIn(t, c, "a")
	b := addIn(t, c, "b")
	o := c.MustAddGate(netlist.And, "o", a, b)
	markOut(t, c, o)

	rep := mustAudit(t, c)
	if len(rep.Findings) != 0 {
		t.Fatalf("findings on an unlocked circuit:\n%s", rep)
	}
	if rep.HasErrors() || rep.Err() != nil {
		t.Fatal("empty report reports errors")
	}
}

func TestReportHelpers(t *testing.T) {
	c := netlist.New("helpers")
	a := addIn(t, c, "a")
	k := addKey(t, c, "keyinput0")
	g := c.MustAddGate(netlist.Xor, "g", k, k)
	h := c.MustAddGate(netlist.And, "h", a, g)
	markOut(t, c, h)

	rep := mustAudit(t, c)
	if !rep.HasErrors() {
		t.Fatalf("expected errors:\n%s", rep)
	}
	if rep.Err() == nil {
		t.Fatal("Err() returned nil with error findings present")
	}
	errs, warns, _ := rep.Counts()
	if errs == 0 || warns == 0 {
		t.Fatalf("Counts() = %d errors, %d warnings; want both nonzero", errs, warns)
	}
	if len(rep.AtLeast(check.Warning)) < len(rep.Errors()) {
		t.Fatal("AtLeast(Warning) smaller than Errors()")
	}
	s := rep.String()
	if !strings.Contains(s, "[key-removable]") || !strings.Contains(s, "ref:") {
		t.Fatalf("String() misses rule tag or reference:\n%s", s)
	}
}
