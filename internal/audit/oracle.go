package audit

import (
	"fmt"

	"orap/internal/check"
	"orap/internal/gf2"
	"orap/internal/lfsr"
	"orap/internal/scan"
)

// Oracle audits the oracle path of a chip configuration statically:
// protection level, effective key entropy of the reseeding schedule,
// the stored key sequence, response-tap hygiene and — when a scan
// layout is supplied (nil skips the placement rules) — the Section III
// placement countermeasure. The returned error reports an invalid
// configuration, not audit findings; those are in the report, and the
// report's NominalEntropy/EffectiveEntropy fields carry the LFSR width
// and the transfer-matrix rank for protected configurations.
func Oracle(cfg scan.Config, lay *scan.Layout) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{Circuit: cfg.Core.Name}
	if cfg.Protection == scan.None {
		rep.add(Finding{
			Rule: RuleOracleUnprotected, Sev: check.Error, KeyBit: -1, Node: -1, Ref: RefOraP,
			Msg: "conventional scan configuration: the key register survives test mode, so scan in - capture - scan out observes the unlocked core and the whole oracle-guided attack class applies",
		})
		return rep, nil
	}

	n := cfg.LFSR.N
	rep.NominalEntropy = n
	m, err := lfsr.MemTransferMatrix(cfg.LFSR, cfg.Schedule, cfg.MemInject)
	if err != nil {
		return nil, err
	}
	rank := m.Rank()
	rep.EffectiveEntropy = rank
	if rank < n {
		rep.add(Finding{
			Rule: RuleKeyEntropy, Sev: check.Error, KeyBit: -1, Node: -1, Ref: RefOraP,
			Msg: fmt.Sprintf("memory-seed transfer matrix has GF(2) rank %d < %d: only 2^%d of the 2^%d key-register states are reachable from tamper-proof memory, and the scenario-(d) symbolic attack searches the smaller space", rank, n, rank, n),
		})
	}

	if cfg.Protection == scan.OraPBasic && len(cfg.Seeds) > 0 {
		// The final register state of the basic scheme is a pure linear
		// image of the stored seeds; all-zero would equal the cleared
		// register and void the protection.
		w := len(cfg.MemInject)
		stacked := gf2.NewVec(w * len(cfg.Seeds))
		for i, s := range cfg.Seeds {
			for j := 0; j < w; j++ {
				if s.Bit(j) {
					stacked.SetBit(i*w+j, true)
				}
			}
		}
		if m.MulVec(stacked).Weight() == 0 {
			rep.add(Finding{
				Rule: RuleZeroKey, Sev: check.Error, KeyBit: -1, Node: -1, Ref: RefOraP,
				Msg: "the stored key sequence unlocks to the all-zero key register — indistinguishable from the cleared state, so the chip answers correctly in test mode and the protection is void",
			})
		}
	}

	if cfg.Protection == scan.OraPModified {
		byTap := map[int][]int{}
		for i, t := range cfg.RespTaps {
			byTap[t] = append(byTap[t], cfg.RespInject[i])
		}
		for _, t := range sortedKeys(byTap) {
			if pts := byTap[t]; len(pts) > 1 {
				rep.add(Finding{
					Rule: RuleRespTaps, Sev: check.Warning, KeyBit: -1, Node: -1, Ref: RefOraP,
					Msg: fmt.Sprintf("response reseeding points %v all tap flip-flop %d; correlated injections shrink the space a scenario-(e) attacker must search", pts, t),
				})
			}
		}
	}

	if lay != nil {
		if err := lay.Validate(n, cfg.NumFFs()); err != nil {
			return nil, err
		}
		layoutRules(lay, n, rep)
	}
	return rep, nil
}

// layoutRules checks the Section III placement countermeasure: key
// cells interleaved with normal flip-flops, so the scenario-(b) bypass
// Trojan pays one multiplexer per key cell rather than one per run.
func layoutRules(lay *scan.Layout, keyCells int, rep *Report) {
	muxes := lay.BypassMuxCount()
	if muxes >= keyCells {
		return
	}
	maxRun := 0
	for _, r := range lay.KeyRunLengths() {
		if r > maxRun {
			maxRun = r
		}
	}
	rep.add(Finding{
		Rule: RuleScanLayout, Sev: check.Warning, KeyBit: -1, Node: -1, Ref: RefOraP,
		Msg: fmt.Sprintf("scan layout bunches key cells (longest run %d): a scenario-(b) bypass Trojan splices them out with %d multiplexers; full interleaving forces %d", maxRun, muxes, keyCells),
	})
}

// ProbeChip audits a built chip: the static Oracle rules plus a
// behavioural self-clear probe — a nonzero pattern is scanned into the
// key register and scan enable is pulsed; OraP's per-cell pulse
// generators must clear every cell on the rising edge, so a nonzero
// read-back means the reset is suppressed (Trojan scenarios (a)/(b)).
//
// The probe is destructive: it clears the key register and leaves the
// chip locked with scan enable low. Re-run Unlock afterwards if the
// chip is still needed as an oracle.
func ProbeChip(ch *scan.Chip, lay *scan.Layout) (*Report, error) {
	cfg := ch.Config()
	rep, err := Oracle(cfg, lay)
	if err != nil || cfg.Protection == scan.None {
		return rep, err
	}
	pattern := make([]bool, cfg.Core.NumKeys())
	for i := range pattern {
		pattern[i] = true
	}
	ch.SetScanEnable(false)
	ch.SetScanEnable(true)
	if err := ch.ScanInKey(pattern); err != nil {
		return nil, err
	}
	ch.SetScanEnable(false)
	ch.SetScanEnable(true) // rising edge: the pulse generators must fire
	got, err := ch.ScanOutKey()
	ch.SetScanEnable(false)
	if err != nil {
		return nil, err
	}
	for _, b := range got {
		if b {
			rep.add(Finding{
				Rule: RuleSelfClear, Sev: check.Error, KeyBit: -1, Node: -1, Ref: RefOraP,
				Msg: "key register reads back nonzero after a rising scan-enable edge: the per-cell self-clear is suppressed (Trojan scenarios (a)/(b)) and the oracle leaks the unlocked circuit",
			})
			break
		}
	}
	return rep, nil
}

// sortedKeys returns the map's keys in increasing order, for
// deterministic finding order.
func sortedKeys(m map[int][]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
