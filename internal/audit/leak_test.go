// Firing, clean and cross-check cases for the engine-backed rules:
// key-leak, testability-bound, the canonical report order and the
// Explain witness paths.
package audit_test

import (
	"reflect"
	"sort"
	"testing"

	"orap/internal/audit"
	"orap/internal/check"
	"orap/internal/circuits"
	"orap/internal/faultsim"
	"orap/internal/ir"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/rng"
)

// Random-XOR locking of an all-XOR circuit keeps every key gate on a
// pure parity path to the output: the key bits stay linearly separable
// and key-leak must flag each of them at the output.
func TestKeyLeakFiresOnRandomXorParity(t *testing.T) {
	l, err := lock.RandomXOR(circuits.Parity(8), 3, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	rep := mustAudit(t, l.Circuit)
	leaks := rep.ByRule(audit.RuleKeyLeak)
	if len(leaks) != 3 {
		t.Fatalf("want one key-leak per key bit (3), got %d:\n%s", len(leaks), rep)
	}
	bits := map[int]bool{}
	for _, f := range leaks {
		if f.Sev != check.Warning {
			t.Fatalf("key-leak severity = %v, want warning", f.Sev)
		}
		bits[f.KeyBit] = true
	}
	if len(bits) != 3 {
		t.Fatalf("key-leak fired on bits %v, want all three", bits)
	}
}

// Weighted locking mixes key bits through AND/NAND control cones before
// the XOR splice: no output flips with a single bit under every input
// pattern, so key-leak must stay silent — on the plain scheme and on
// the OraP pairing alike (OraP protects the oracle path and leaves the
// netlist untouched, which this pins).
func TestKeyLeakCleanOnWeighted(t *testing.T) {
	for _, tc := range []struct {
		name string
		c    func(t *testing.T) *netlist.Circuit
	}{
		{"weighted", func(t *testing.T) *netlist.Circuit {
			l, err := lock.Weighted(circuits.C17(), lock.WeightedOptions{
				KeyBits: 6, ControlWidth: 3, Rand: rng.New(12),
			})
			if err != nil {
				t.Fatal(err)
			}
			return l.Circuit
		}},
		{"weighted-rippleadder", func(t *testing.T) *netlist.Circuit {
			l, err := lock.Weighted(circuits.RippleAdder(4), lock.WeightedOptions{
				KeyBits: 6, ControlWidth: 3, Rand: rng.New(12),
			})
			if err != nil {
				t.Fatal(err)
			}
			return l.Circuit
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := mustAudit(t, tc.c(t))
			if leaks := rep.ByRule(audit.RuleKeyLeak); len(leaks) != 0 {
				t.Fatalf("weighted locking must not key-leak, got:\n%s", rep)
			}
		})
	}
}

// A bare XOR key gate between a primary input and the output is the
// minimal leak; routing the same key bit through an AND gate destroys
// the proof. Both directions on one hand-built circuit.
func TestKeyLeakMinimalShapes(t *testing.T) {
	c := netlist.New("leak-shapes")
	a := addIn(t, c, "a")
	b := addIn(t, c, "b")
	k := addKey(t, c, "keyinput0")
	leak := c.MustAddGate(netlist.Xor, "leak", a, k)
	masked := c.MustAddGate(netlist.And, "masked", b, k)
	markOut(t, c, leak, masked)
	rep := mustAudit(t, c)
	leaks := rep.ByRule(audit.RuleKeyLeak)
	if len(leaks) != 1 {
		t.Fatalf("want exactly one key-leak, got %d:\n%s", len(leaks), rep)
	}
	if leaks[0].Name != "leak" {
		t.Fatalf("key-leak anchored at %q, want the XOR output", leaks[0].Name)
	}
}

// wideAnd chains a balanced AND reduction over the given inputs.
func wideAnd(c *netlist.Circuit, name string, in []int) int {
	for layer := 0; len(in) > 1; layer++ {
		var next []int
		for i := 0; i < len(in); i += 2 {
			if i+1 == len(in) {
				next = append(next, in[i])
				continue
			}
			next = append(next, c.MustAddGate(netlist.And, c.NameOf(in[i])+"_l", in[i], in[i+1]))
		}
		in = next
	}
	return in[0]
}

// buildTestabilityFixture is a circuit with one provably hard site (a
// 16-input AND point function — its output goes 1 on a single pattern)
// next to easy shallow logic, the shape the testability-bound rule
// exists to flag.
func buildTestabilityFixture(t *testing.T) *netlist.Circuit {
	c := netlist.New("hard-sites")
	var ins []int
	for i := 0; i < 16; i++ {
		ins = append(ins, addIn(t, c, "x"+string(rune('a'+i))))
	}
	k := addKey(t, c, "keyinput0")
	hard := wideAnd(c, "hard", ins)
	flip := c.MustAddGate(netlist.Xor, "flip", hard, k)
	easy := c.MustAddGate(netlist.Or, "easy", ins[0], ins[1])
	markOut(t, c, flip, easy)
	return c
}

// The fixture's point-function root needs all 16 inputs at 1 (SCOAP
// CC1 ≈ 20), so with a low threshold testability-bound must flag the
// deep AND layers as info findings and leave the shallow OR alone.
func TestTestabilityBoundFires(t *testing.T) {
	c := buildTestabilityFixture(t)
	rep, err := audit.Analyze(c, audit.Options{TestabilityThreshold: 15})
	if err != nil {
		t.Fatal(err)
	}
	tb := rep.ByRule(audit.RuleTestabilityBound)
	if len(tb) == 0 {
		t.Fatalf("testability-bound must fire on the 16-input point function:\n%s", rep)
	}
	for _, f := range tb {
		if f.Sev != check.Info {
			t.Fatalf("testability-bound severity = %v, want info", f.Sev)
		}
		if f.Name == "easy" {
			t.Fatalf("testability-bound flagged the shallow OR gate:\n%s", rep)
		}
	}
	// At the default threshold the same fixture is quiet.
	repDefault := mustAudit(t, c)
	if tb := repDefault.ByRule(audit.RuleTestabilityBound); len(tb) != 0 {
		t.Fatalf("default threshold must not fire on a 16-input cone:\n%s", repDefault)
	}
}

// The SCOAP bound must agree with dynamic fault simulation: stuck-at
// faults at the flagged gates survive a random campaign that covers
// everything the rule left unflagged.
func TestTestabilityBoundMatchesFaultsim(t *testing.T) {
	c := buildTestabilityFixture(t)
	rep, err := audit.Analyze(c, audit.Options{TestabilityThreshold: 15})
	if err != nil {
		t.Fatal(err)
	}
	flagged := map[int]bool{}
	for _, f := range rep.ByRule(audit.RuleTestabilityBound) {
		flagged[f.Node] = true
	}
	if len(flagged) == 0 {
		t.Fatal("fixture produced no testability-bound findings")
	}

	s, err := faultsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	res := s.RunRandom(faultsim.CollapseFaults(c), 8, rng.New(2020))
	undetected := map[int]bool{}
	for _, f := range res.Remaining {
		if f.Pin < 0 {
			undetected[f.Node] = true
		}
	}
	// Every flagged gate keeps an undetected output fault: 512 random
	// patterns essentially never produce the single all-ones excitation
	// the AND cone needs.
	for node := range flagged {
		if !undetected[node] {
			t.Errorf("gate %q flagged hard but random patterns covered it", c.NameOf(node))
		}
	}
	// And the easy shallow logic is fully covered, so the rule's silence
	// there matches the simulator too.
	for _, f := range res.Remaining {
		if c.NameOf(f.Node) == "easy" {
			t.Errorf("fault %v at the shallow OR gate survived the campaign", f)
		}
	}
}

// Reports must come out in the canonical order (rule catalog order,
// then node, then key bit) and be identical across runs.
func TestReportCanonicalOrder(t *testing.T) {
	l, err := lock.RandomXOR(circuits.C17(), 4, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	rep1 := mustAudit(t, l.Circuit)
	rep2 := mustAudit(t, l.Circuit)
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("two audits of the same circuit differ:\n%s\nvs\n%s", rep1, rep2)
	}
	rank := map[string]int{
		audit.RuleKeyRemovable:      0,
		audit.RuleKeyFingerprint:    1,
		audit.RuleLowCorruptibility: 2,
		audit.RuleKeyLeak:           3,
		audit.RuleTestabilityBound:  4,
	}
	ordered := sort.SliceIsSorted(rep1.Findings, func(i, j int) bool {
		a, b := rep1.Findings[i], rep1.Findings[j]
		if rank[a.Rule] != rank[b.Rule] {
			return rank[a.Rule] < rank[b.Rule]
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.KeyBit < b.KeyBit
	})
	if !ordered {
		t.Fatalf("findings not in canonical order:\n%s", rep1)
	}
}

// Explain must walk a key-leak finding back to its key input, ending at
// the finding's anchor with the Anti proof intact on the final step.
func TestExplainKeyLeakPath(t *testing.T) {
	l, err := lock.RandomXOR(circuits.Parity(8), 3, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Compile(l.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	rep := audit.AnalyzeProgram(prog, l.Circuit, audit.Options{})
	leaks := rep.ByRule(audit.RuleKeyLeak)
	if len(leaks) == 0 {
		t.Fatal("no key-leak findings to explain")
	}
	for _, f := range leaks {
		steps := audit.Explain(prog, l.Circuit, f)
		if len(steps) < 2 {
			t.Fatalf("bit %d: witness path too short: %+v", f.KeyBit, steps)
		}
		first, last := steps[0], steps[len(steps)-1]
		if first.Node != int(prog.Keys[f.KeyBit]) {
			t.Fatalf("bit %d: path starts at %q, want the key input", f.KeyBit, first.Name)
		}
		if last.Node != f.Node {
			t.Fatalf("bit %d: path ends at %q, want the finding's anchor %q", f.KeyBit, last.Name, f.Name)
		}
		for i, s := range steps {
			if !s.Anti {
				t.Fatalf("bit %d step %d (%q): key-leak path must keep the Anti proof", f.KeyBit, i, s.Name)
			}
			if s.TaintBits < 1 {
				t.Fatalf("bit %d step %d (%q): path step carries no taint", f.KeyBit, i, s.Name)
			}
		}
	}
}

// Explain on a finding whose anchor the key bit cannot reach returns
// nil rather than inventing a path.
func TestExplainUnreachableReturnsNil(t *testing.T) {
	c := netlist.New("unreach")
	a := addIn(t, c, "a")
	k := addKey(t, c, "keyinput0")
	g := c.MustAddGate(netlist.Xor, "g", a, k)
	lone := c.MustAddGate(netlist.Not, "lone", a)
	markOut(t, c, g, lone)
	prog, err := ir.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	fake := audit.Finding{Rule: audit.RuleKeyLeak, KeyBit: 0, Node: lone}
	if steps := audit.Explain(prog, c, fake); steps != nil {
		t.Fatalf("Explain fabricated a path to an unreachable anchor: %+v", steps)
	}
	if steps := audit.Explain(prog, c, audit.Finding{KeyBit: -1, Node: g}); steps != nil {
		t.Fatalf("Explain must return nil without a key bit, got %+v", steps)
	}
}
