// Exactness cross-checks for the symbolic backend: every model count
// the -exact audit reports is re-derived by exhaustive enumeration on
// circuits small enough to sweep (≤ 14 inputs), the corruption rates
// are compared against faultsim-sampled stuck-at detection rates, and
// the budget-degradation path is pinned on a generated b19 slice.
package audit_test

import (
	"math/big"
	"strings"
	"testing"

	"orap/internal/audit"
	"orap/internal/benchgen"
	"orap/internal/circuits"
	"orap/internal/faultsim"
	"orap/internal/ir"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/rng"
	"orap/internal/sim"
)

// lockedCase builds one locked circuit next to its original.
type lockedCase struct {
	name string
	orig *netlist.Circuit
	l    *lock.Locked
}

// exactCases locks a spread of small circuits with every scheme shape
// the exact backend has to handle: XOR splices, weighted control
// cones, and point functions.
func exactCases(t *testing.T) []lockedCase {
	t.Helper()
	mk := func(name string, orig *netlist.Circuit, l *lock.Locked, err error) lockedCase {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return lockedCase{name, orig, l}
	}
	var cs []lockedCase
	{
		orig := circuits.RippleAdder(4)
		l, err := lock.RandomXOR(orig.Clone(), 3, rng.New(21))
		cs = append(cs, mk("rippleadder+randomxor", orig, l, err))
	}
	{
		orig := circuits.RippleAdder(4)
		l, err := lock.Weighted(orig.Clone(), lock.WeightedOptions{KeyBits: 4, ControlWidth: 3, Rand: rng.New(22)})
		cs = append(cs, mk("rippleadder+weighted", orig, l, err))
	}
	{
		orig := circuits.C17()
		l, err := lock.SARLock(orig.Clone(), 3, rng.New(23))
		cs = append(cs, mk("c17+sarlock", orig, l, err))
	}
	{
		orig := circuits.Comparator4()
		l, err := lock.TTLock(orig.Clone(), 3, rng.New(24))
		cs = append(cs, mk("comparator4+ttlock", orig, l, err))
	}
	return cs
}

// enumBit is the brute-force ground truth for one key bit.
type enumBit struct {
	corrupt int64   // (x, k) pairs where flipping the bit changes an output
	dist    int64   // x patterns with some distinguishing k
	sens    []int32 // POs flipped by some pair
	leak    []int32 // POs flipped by every pair
}

// enumerate sweeps the full (input, key) space once and derives every
// per-key-bit quantity the exact backend claims.
func enumerate(t *testing.T, c *netlist.Circuit) []enumBit {
	t.Helper()
	prog, err := ir.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	nPI, nKey := len(prog.PIs), prog.NumKeys()
	nIn := nPI + nKey
	if nIn > 14 {
		t.Fatalf("%d inputs, harness expects ≤ 14", nIn)
	}
	ev, err := sim.NewEvaluator(c)
	if err != nil {
		t.Fatal(err)
	}
	// One output table over the whole space, then every bit's counts
	// come from table lookups instead of re-simulation.
	nPO := len(prog.POs)
	table := make([][]bool, 1<<uint(nIn))
	buf := make([]bool, nIn)
	for v := range table {
		for i := range buf {
			buf[i] = v>>uint(i)&1 == 1
		}
		out, err := ev.Eval(buf[:nPI], buf[nPI:])
		if err != nil {
			t.Fatal(err)
		}
		table[v] = append([]bool(nil), out...)
	}
	bits := make([]enumBit, nKey)
	for kb := range bits {
		flip := 1 << uint(nPI+kb)
		sens := make([]bool, nPO)
		leak := make([]bool, nPO)
		for i := range leak {
			leak[i] = true
		}
		distAt := make([]bool, 1<<uint(nPI))
		for v := range table {
			a, b := table[v], table[v^flip]
			anyDiff := false
			for j := range a {
				if a[j] != b[j] {
					anyDiff = true
					sens[j] = true
				} else {
					leak[j] = false
				}
			}
			if anyDiff {
				bits[kb].corrupt++
				distAt[v&(1<<uint(nPI)-1)] = true
			}
		}
		for _, d := range distAt {
			if d {
				bits[kb].dist++
			}
		}
		for j := 0; j < nPO; j++ {
			if sens[j] {
				bits[kb].sens = append(bits[kb].sens, prog.POs[j])
			}
			if leak[j] {
				bits[kb].leak = append(bits[kb].leak, prog.POs[j])
			}
		}
	}
	return bits
}

func eqIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExactMatchesEnumeration is the core exactness contract: on every
// locked case the symbolic CorruptCount, DistInputs, sensitized-PO set
// and tautology-leak set equal the exhaustive enumeration, and the
// rate is the count over the space.
func TestExactMatchesEnumeration(t *testing.T) {
	for _, tc := range exactCases(t) {
		rep, err := audit.Analyze(tc.l.Circuit, audit.Options{Exact: true})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		ex := rep.Exact
		if ex == nil {
			t.Fatalf("%s: no exact result", tc.name)
		}
		want := enumerate(t, tc.l.Circuit)
		if len(ex.Bits) != len(want) {
			t.Fatalf("%s: %d exact bits, want %d", tc.name, len(ex.Bits), len(want))
		}
		space := new(big.Int).Lsh(big.NewInt(1), uint(ex.NumPIs+ex.NumKeys))
		for kb, w := range want {
			b := ex.Bits[kb]
			if !b.OK {
				t.Errorf("%s bit %d: budget fallback on a tiny circuit (%v)", tc.name, kb, b.Err)
				continue
			}
			if b.CorruptCount.Cmp(big.NewInt(w.corrupt)) != 0 {
				t.Errorf("%s bit %d: CorruptCount %v, enumeration %d", tc.name, kb, b.CorruptCount, w.corrupt)
			}
			if b.DistInputs.Cmp(big.NewInt(w.dist)) != 0 {
				t.Errorf("%s bit %d: DistInputs %v, enumeration %d", tc.name, kb, b.DistInputs, w.dist)
			}
			if b.SensPOs != len(w.sens) {
				t.Errorf("%s bit %d: SensPOs %d, enumeration %d", tc.name, kb, b.SensPOs, len(w.sens))
			}
			if !eqIDs(b.LeakPOs, w.leak) {
				t.Errorf("%s bit %d: LeakPOs %v, enumeration %v", tc.name, kb, b.LeakPOs, w.leak)
			}
			if b.SensPOs > b.ConePOs {
				t.Errorf("%s bit %d: exact %d sensitized POs above the structural bound %d", tc.name, kb, b.SensPOs, b.ConePOs)
			}
			wantRate, _ := new(big.Float).Quo(
				new(big.Float).SetInt(b.CorruptCount), new(big.Float).SetInt(space)).Float64()
			if diff := b.Rate - wantRate; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("%s bit %d: Rate %v, want %v", tc.name, kb, b.Rate, wantRate)
			}
		}
	}
}

// TestExactRandomXORDistinguishing pins the acceptance criterion for
// XOR-splice locking: every key bit of a random-XOR configuration must
// provably have at least one distinguishing input pattern — otherwise
// the bit would be unlearnable by any oracle and removable by
// resynthesis.
func TestExactRandomXORDistinguishing(t *testing.T) {
	for _, c := range []*netlist.Circuit{
		circuits.C17(),
		circuits.FullAdder(),
		circuits.RippleAdder(4),
		circuits.Parity(8),
		circuits.Comparator4(),
		circuits.Mux21(),
	} {
		l, err := lock.RandomXOR(c.Clone(), 3, rng.New(31))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := audit.Analyze(l.Circuit, audit.Options{Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		for kb, b := range rep.Exact.Bits {
			if !b.OK {
				t.Fatalf("%s bit %d: budget fallback on a tiny circuit", c.Name, kb)
			}
			if b.DistInputs.Sign() <= 0 {
				t.Errorf("%s bit %d: no distinguishing input (DistInputs %v)", c.Name, kb, b.DistInputs)
			}
		}
	}
}

// TestExactRateMatchesFaultsim ties the symbolic corruption rate to the
// testability world it refines: for a key input net, the probability a
// random (input, key) pattern detects stuck-at-0 plus the probability
// it detects stuck-at-1 is exactly the probability the outputs change
// when the bit flips — the exact Rate. The sampled sum must agree
// within Monte-Carlo tolerance.
func TestExactRateMatchesFaultsim(t *testing.T) {
	l, err := lock.Weighted(circuits.RippleAdder(4).Clone(), lock.WeightedOptions{
		KeyBits: 4, ControlWidth: 3, Rand: rng.New(41),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := audit.Analyze(l.Circuit, audit.Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := faultsim.New(l.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	prog := s.Program()
	const samples = 4096
	r := rng.New(42)
	pattern := make([]bool, len(prog.Inputs))
	hits := make([]int, prog.NumKeys())
	for n := 0; n < samples; n++ {
		r.Bits(pattern)
		for kb, kid := range prog.Keys {
			for _, sa1 := range []bool{false, true} {
				det, err := s.DetectsWithPattern(faultsim.Fault{Node: int(kid), Pin: -1, SA1: sa1}, pattern)
				if err != nil {
					t.Fatal(err)
				}
				if det {
					hits[kb]++
				}
			}
		}
	}
	for kb, b := range rep.Exact.Bits {
		if !b.OK {
			t.Fatalf("bit %d fell back on a tiny circuit", kb)
		}
		sampled := float64(hits[kb]) / samples
		// Bernoulli std dev over 4096 samples is ≤ 0.8%; 0.05 is > 6σ.
		if diff := sampled - b.Rate; diff > 0.05 || diff < -0.05 {
			t.Errorf("bit %d: faultsim-sampled rate %.4f, exact %.4f", kb, sampled, b.Rate)
		}
	}
}

// TestKeyEquivalenceAgainstEnumeration drives the symbolic equivalence
// proof with the stored key (must be clean for every locking scheme)
// and with each single-bit-corrupted key, where the verdict — and the
// exact set of disagreeing outputs — must match exhaustive simulation.
func TestKeyEquivalenceAgainstEnumeration(t *testing.T) {
	for _, tc := range exactCases(t) {
		rep, err := audit.KeyEquivalence(tc.l.Circuit, tc.orig, tc.l.Key, audit.ExactOptions{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rep.HasErrors() {
			t.Fatalf("%s: stored key not proven equivalent:\n%s", tc.name, rep)
		}
		for kb := range tc.l.Key {
			wrong := append([]bool(nil), tc.l.Key...)
			wrong[kb] = !wrong[kb]
			rep, err := audit.KeyEquivalence(tc.l.Circuit, tc.orig, wrong, audit.ExactOptions{})
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			got := make(map[int]bool)
			for _, f := range rep.ByRule(audit.RuleKeyEquivalence) {
				got[f.Node] = true
			}
			want := wrongKeyMismatchPOs(t, tc.orig, tc.l.Circuit, wrong)
			if len(got) != len(want) {
				t.Fatalf("%s bit %d flipped: %d mismatching POs reported, enumeration %d\n%s",
					tc.name, kb, len(got), len(want), rep)
			}
			for id := range want {
				if !got[id] {
					t.Errorf("%s bit %d flipped: PO node %d mismatches in enumeration but not in the proof", tc.name, kb, id)
				}
			}
		}
	}
}

// wrongKeyMismatchPOs enumerates the primary inputs and returns the
// locked-circuit PO node IDs whose value differs from the original
// under the given key, for any input.
func wrongKeyMismatchPOs(t *testing.T, orig, locked *netlist.Circuit, key []bool) map[int]bool {
	t.Helper()
	lp, err := ir.Compile(locked)
	if err != nil {
		t.Fatal(err)
	}
	nPI := len(lp.PIs)
	out := make(map[int]bool)
	in := make([]bool, nPI)
	for v := 0; v < 1<<uint(nPI); v++ {
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		want, err := sim.Eval(orig, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.Eval(locked, in, key)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if want[j] != got[j] {
				out[int(lp.POs[j])] = true
			}
		}
	}
	return out
}

// BenchmarkExactCorrupt measures the full exact audit — per-key-bit
// cone compilation, corruption model counting, distinguishing-input
// quantification — on the same weighted-locked b20 slice
// BenchmarkBDDCompile compiles. Runs in the bench-smoke CI leg; the
// fallbacks metric must stay 0 at this scale, so a budget regression
// fails loudly.
func BenchmarkExactCorrupt(b *testing.B) {
	prof, err := benchgen.ProfileByName("b20")
	if err != nil {
		b.Fatal(err)
	}
	scaled := prof.Scale(0.004)
	circuit, err := benchgen.Generate(scaled, 2020)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lock.Weighted(circuit, lock.WeightedOptions{
		KeyBits: 16, ControlWidth: 3, Rand: rng.New(2020),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := audit.Analyze(l.Circuit, audit.Options{Exact: true})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Exact.Stats.Fallbacks > 0 {
			b.Fatalf("budget fallbacks at benchmark scale: %s", rep.Exact.Telemetry())
		}
		b.ReportMetric(float64(rep.Exact.Stats.Nodes), "nodes")
	}
}

// TestExactBudgetFallbackScaledB19 is the degradation regression: a
// generated b19 slice audited with a starved BDD budget must complete,
// report the fallbacks in the telemetry, and produce exactly the
// findings of the plain dataflow audit — graceful degradation, never a
// crash or a dropped rule.
func TestExactBudgetFallbackScaledB19(t *testing.T) {
	prof, err := benchgen.ProfileByName("b19")
	if err != nil {
		t.Fatal(err)
	}
	scaled := prof.Scale(0.05)
	circuit, err := benchgen.Generate(scaled, 2020)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lock.Weighted(circuit, lock.WeightedOptions{
		KeyBits: 24, ControlWidth: scaled.CtrlInputs, Rand: rng.New(2020),
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := audit.Analyze(l.Circuit, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := audit.Analyze(l.Circuit, audit.Options{Exact: true, BDDBudget: 8})
	if err != nil {
		t.Fatal(err)
	}
	ex := exact.Exact
	if ex == nil || ex.Stats.Fallbacks == 0 {
		t.Fatalf("an 8-node budget produced no fallbacks: %+v", ex.Stats)
	}
	for _, b := range ex.Bits {
		if !b.OK && b.Err == nil {
			t.Errorf("bit %d fell back without a recorded cause", b.Bit)
		}
	}
	if !strings.Contains(exact.String(), "budget fallbacks") {
		t.Fatalf("telemetry line missing from the report:\n%s", exact.String())
	}
	if len(plain.Findings) != len(exact.Findings) {
		t.Fatalf("degraded exact audit changed the finding set: %d vs %d plain",
			len(exact.Findings), len(plain.Findings))
	}
	for i := range plain.Findings {
		if plain.Findings[i] != exact.Findings[i] {
			t.Errorf("finding %d differs under degradation:\nplain: %s\nexact: %s",
				i, plain.Findings[i], exact.Findings[i])
		}
	}
}
