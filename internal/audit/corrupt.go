package audit

import (
	"orap/internal/check"
	"orap/internal/netlist"
)

// The corruptibility bound is structural: the primary outputs inside a
// key bit's transitive fanout cone are the only ones a wrong guess at
// that bit can ever corrupt. A cone covering almost nothing is the
// SARLock/Anti-SAT situation the paper criticizes — one output flips on
// one input pattern — and exactly what approximate attacks (AppSAT,
// Double DIP) exploit: a key that is wrong only in low-corruptibility
// bits passes random testing. The bound is an over-approximation
// (cone membership does not guarantee sensitization), so it flags
// "provably at most", never "exactly".

// corruptibility emits the low-corruptibility findings. Key bits the
// removability pass already proved inert are skipped — a removable bit
// corrupts nothing, and the removability finding is the sharper one.
// PO coverage is read off the engine's key-taint fixpoint: a primary
// output carries key bit kb's taint exactly when it lies in kb's
// transitive fanout cone, so one taint pass replaces the per-bit cone
// walks. When the exact backend ran (ex non-nil) and the bit stayed
// within budget, the cone bound is replaced by the exact count of
// outputs some (input, key) pair really flips, and the finding carries
// the model-counted corruption rate; budget-fallback bits keep the
// structural message.
func corruptibility(e *engine, c *netlist.Circuit, rep *Report, opts Options, inert []bool, ex *ExactResult) {
	p := e.p
	nPO := p.NumOutputs()
	thr := opts.MinCorruptPOs
	if thr <= 0 {
		// Default: flag a key bit confined to a single output of a
		// multi-output circuit; never flag single-output circuits.
		thr = 2
		if nPO < thr {
			thr = nPO
		}
	}
	for kb, kid := range p.Keys {
		if inert[kb] {
			continue
		}
		covered := 0
		for _, o := range p.POs {
			if e.taint[o].Has(kb) {
				covered++
			}
		}
		if ex != nil && ex.Bits[kb].OK {
			b := &ex.Bits[kb]
			if b.SensPOs >= thr {
				continue
			}
			rep.add(finding(c, RuleLowCorruptibility, check.Warning, kb, int(kid), RefOraP,
				"key bit %d (%q) corrupts exactly %d of %d primary outputs (structural cone bound %d, threshold %d); a wrong guess flips some output for %.3g%% of (input, key) pairs — low output corruptibility is what approximate attacks exploit",
				kb, c.NameOf(int(kid)), b.SensPOs, nPO, covered, thr, 100*b.Rate))
			continue
		}
		if covered >= thr {
			continue
		}
		rep.add(finding(c, RuleLowCorruptibility, check.Warning, kb, int(kid), RefOraP,
			"key bit %d (%q) can corrupt at most %d of %d primary outputs (threshold %d); low output corruptibility is what approximate attacks exploit",
			kb, c.NameOf(int(kid)), covered, nPO, thr))
	}
}
