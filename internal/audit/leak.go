package audit

import (
	"orap/internal/check"
	"orap/internal/dataflow"
	"orap/internal/ir"
	"orap/internal/netlist"
)

// engine bundles the dataflow fixpoints the audit rules share, so each
// domain is solved once per analysis: the key-taint sets (corruptibility
// coverage, witness paths), the SCOAP testability scores (key-leak
// detail, testability-bound) and the per-key-bit Anti witnesses the
// removability pass harvests for key-leak.
type engine struct {
	p     *ir.Program
	taint []dataflow.KeySet
	cc    []dataflow.ControlValue
	co    []int32
	// leaks lists, per key bit, the primary outputs that keep the pair
	// domain's Anti proof — the output provably flips with the bit.
	leaks [][]int32
}

// newEngine solves the shared domains for prog.
func newEngine(prog *ir.Program) *engine {
	e := &engine{p: prog}
	e.taint = dataflow.Run[dataflow.KeySet](prog, dataflow.NewKeyTaint(prog), dataflow.Options{Workers: 1})
	e.cc = dataflow.Run[dataflow.ControlValue](prog, dataflow.NewControllability(prog), dataflow.Options{Workers: 1})
	e.co = dataflow.Run[int32](prog, dataflow.NewObservability(prog, e.cc), dataflow.Options{Workers: 1})
	return e
}

// keyLeaks emits the key-leak findings: a primary output whose value
// provably flips whenever the key bit flips, for every input pattern
// (the output computes f(x) XOR k up to inversion). On a conventional
// scan chain every core output is capture-observable, so a single
// response from the activated chip hands the attacker the bit by
// comparing against a simulation under either key value — the exact
// oracle-side leak OraP exists to block, and the reason the rule stays
// netlist-level: the oracle-path audit separately decides whether the
// scan channel is protected.
//
// Without the exact backend the evidence is the pair domain's Anti
// proof — sound (a flagged output really flips) but incomplete. With
// it (ex non-nil, bit within budget) the evidence is a BDD tautology
// check on XOR(F, F with the bit flipped), which misses nothing, and
// the finding reports the bit's exact distinguishing-input count.
func keyLeaks(e *engine, c *netlist.Circuit, rep *Report, ex *ExactResult) {
	p := e.p
	for kb, kid := range p.Keys {
		if ex != nil && ex.Bits[kb].OK {
			b := &ex.Bits[kb]
			for _, o := range b.LeakPOs {
				rep.add(finding(c, RuleKeyLeak, check.Warning, kb, int(o), RefOraP,
					"key bit %d (%q) is linearly separable at primary output %q: exact symbolic proof that the output flips with the bit for every (input, key) pair, so one scan capture of the activated chip reveals it (%v of %v input patterns distinguish the bit)",
					kb, c.NameOf(int(kid)), c.NameOf(int(o)), b.DistInputs, ex.PISpace()))
			}
			continue
		}
		for _, o := range e.leaks[kb] {
			rep.add(finding(c, RuleKeyLeak, check.Warning, kb, int(o), RefOraP,
				"key bit %d (%q) is linearly separable at primary output %q: the output provably flips with the bit for every input pattern, so one scan capture of the activated chip reveals it (output controllability CC0/CC1 = %d/%d)",
				kb, c.NameOf(int(kid)), c.NameOf(int(o)), e.cc[o].CC0, e.cc[o].CC1))
		}
	}
}

// defaultTestabilityThreshold is the SCOAP detect-difficulty level at
// which testability-bound speaks up when Options leaves the knob at 0.
// SCOAP grows by at least 1 per logic level, so the default only fires
// on structures markedly harder than the shipped reference circuits
// (wide point-function comparators, deep reconvergent cones).
const defaultTestabilityThreshold = 50

// testabilityBound emits the testability-bound findings: gates where
// the SCOAP difficulty of detecting a stuck-at fault — controllability
// of the value that excites the fault plus observability of the site —
// exceeds the threshold. Random-pattern fault simulation almost never
// covers such sites, which is both a test-quality problem and a place
// for SAT-resistant point functions to hide; the faultsim cross-check
// test pins the correlation.
func testabilityBound(e *engine, c *netlist.Circuit, rep *Report, opts Options) {
	thr := int32(opts.TestabilityThreshold)
	if thr <= 0 {
		thr = defaultTestabilityThreshold
	}
	p := e.p
	for _, id32 := range p.Order {
		id := int(id32)
		switch p.Ops[id] {
		case ir.OpInput, ir.OpConst0, ir.OpConst1:
			continue
		}
		co := e.co[id]
		if co >= dataflow.Unreachable {
			continue // dead logic; check's dead-cone rule owns it
		}
		// Detecting stuck-at-1 needs the line driven to 0 (CC0 + CO),
		// stuck-at-0 needs it driven to 1 (CC1 + CO); report the harder
		// fault of the two.
		d0 := satScore(e.cc[id].CC0, co)
		d1 := satScore(e.cc[id].CC1, co)
		worst, stuck := d0, "stuck-at-1"
		if d1 > d0 {
			worst, stuck = d1, "stuck-at-0"
		}
		if worst < thr {
			continue
		}
		rep.add(finding(c, RuleTestabilityBound, check.Info, -1, id, RefOraP,
			"%v gate %q has SCOAP detect difficulty %d for %s (CC0/CC1=%d/%d, CO=%d, threshold %d); random patterns are unlikely to test it",
			p.Ops[id], c.NameOf(id), worst, stuck, e.cc[id].CC0, e.cc[id].CC1, co, thr))
	}
}

// satScore adds two SCOAP scores without leaving the lattice ceiling.
func satScore(a, b int32) int32 {
	s := a + b
	if s >= dataflow.Unreachable || a >= dataflow.Unreachable || b >= dataflow.Unreachable {
		return dataflow.Unreachable
	}
	return s
}

// PathStep is one node on an Explain witness path, annotated with the
// abstract values the engine proved there.
type PathStep struct {
	// Node, Name and Op identify the net.
	Node int
	Name string
	Op   ir.Op
	// V0/V1/Eq/Anti is the pair-domain value under the finding's key
	// bit (dataflow.Unknown for a value the lattice cannot pin).
	V0, V1   int8
	Eq, Anti bool
	// TaintBits is how many key bits structurally reach the net.
	TaintBits int
	// CC0/CC1/CO are the net's SCOAP scores.
	CC0, CC1, CO int32
}

// Explain reconstructs a witness path for a key-anchored finding: the
// chain of nets from the finding's key input to its anchor node, each
// step chosen along the key bit's taint (preferring fanins that keep
// the Anti or non-Eq pair proofs, so the path follows the actual
// difference propagation when one exists). Findings without both a key
// bit and a node — or whose node the key bit cannot reach — return nil.
// prog and c must be the pair the finding was produced from.
func Explain(prog *ir.Program, c *netlist.Circuit, f Finding) []PathStep {
	if f.KeyBit < 0 || f.KeyBit >= prog.NumKeys() || f.Node < 0 || f.Node >= prog.NumNodes() {
		return nil
	}
	e := newEngine(prog)
	kid := prog.Keys[f.KeyBit]

	d := dataflow.NewPair(prog)
	vals := dataflow.Run[dataflow.PairValue](prog, d, dataflow.Options{Workers: 1})
	d.SetKey(kid)
	dataflow.Rerun[dataflow.PairValue](prog, d, vals, kid)

	if int32(f.Node) != kid && !e.taint[f.Node].Has(f.KeyBit) {
		return nil
	}
	// Walk fanins from the anchor back to the key input; every tainted
	// node has a tainted fanin (or is the key input itself), and fanins
	// sit at strictly lower levels, so the walk terminates at kid.
	var rev []int32
	for cur := int32(f.Node); ; {
		rev = append(rev, cur)
		if cur == kid {
			break
		}
		next := int32(-1)
		var nextVal dataflow.PairValue
		for _, fi := range prog.FaninSpan(int(cur)) {
			if fi != kid && !e.taint[fi].Has(f.KeyBit) {
				continue
			}
			v := vals[fi]
			if next < 0 || rank(v) > rank(nextVal) {
				next, nextVal = fi, v
			}
		}
		if next < 0 {
			return nil // anchor not actually reachable from the bit
		}
		cur = next
	}

	steps := make([]PathStep, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		id := int(rev[i])
		v := vals[id]
		steps = append(steps, PathStep{
			Node: id, Name: c.NameOf(id), Op: prog.Ops[id],
			V0: v.V0, V1: v.V1, Eq: v.Eq, Anti: v.Anti,
			TaintBits: e.taint[id].Count(),
			CC0:       e.cc[id].CC0, CC1: e.cc[id].CC1, CO: e.co[id],
		})
	}
	return steps
}

// rank orders pair values by how much key difference they still carry,
// for picking the most informative fanin on a witness path.
func rank(v dataflow.PairValue) int {
	switch {
	case v.Anti:
		return 2
	case !v.Eq:
		return 1
	}
	return 0
}
