// Clean-sweep gate, the security counterpart of check's: every shipped
// circuit locked with random XOR/XNOR insertion must fire at least one
// fingerprint or removability finding (the analyzer would otherwise
// miss the very weakness it was built to catch), no legitimate locking
// scheme may produce removability *errors*, and every weighted +
// OraP-protected configuration must audit with zero error-severity
// findings and full effective key entropy. cmd/orapaudit -sweep runs
// the same gate from the CLI for the make audit leg.
package audit_test

import (
	"testing"

	"orap/internal/audit"
	"orap/internal/check"
	"orap/internal/circuits"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/orap"
	"orap/internal/rng"
	"orap/internal/scan"
)

func shipped() map[string]*netlist.Circuit {
	return map[string]*netlist.Circuit{
		"c17":         circuits.C17(),
		"fulladder":   circuits.FullAdder(),
		"rippleadder": circuits.RippleAdder(4),
		"parity":      circuits.Parity(8),
		"comparator4": circuits.Comparator4(),
		"mux21":       circuits.Mux21(),
	}
}

func lockers() map[string]func(*netlist.Circuit) (*lock.Locked, error) {
	return map[string]func(*netlist.Circuit) (*lock.Locked, error){
		"randomxor": func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.RandomXOR(c, 3, rng.New(11))
		},
		"weighted": func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.Weighted(c, lock.WeightedOptions{
				KeyBits: 6, ControlWidth: 3, Rand: rng.New(12),
			})
		},
		"sarlock": func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.SARLock(c, 3, rng.New(13))
		},
		"antisat": func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.AntiSAT(c, 4, rng.New(14))
		},
		"ttlock": func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.TTLock(c, 3, rng.New(15))
		},
	}
}

func TestAuditCleanSweep(t *testing.T) {
	for cname, c := range shipped() {
		for lname, lk := range lockers() {
			l, err := lk(c.Clone())
			if err != nil {
				// Locking precondition (circuit too small), not a defect.
				t.Logf("%s/%s: skipped (%v)", cname, lname, err)
				continue
			}
			rep, err := audit.Circuit(l.Circuit)
			if err != nil {
				t.Fatalf("%s/%s: %v", cname, lname, err)
			}

			// No legitimate scheme leaves removable key logic behind.
			for _, f := range rep.ByRule(audit.RuleKeyRemovable) {
				if f.Sev == check.Error {
					t.Errorf("%s/%s: removability error on a legitimate scheme:\n%s", cname, lname, rep)
				}
			}

			// Random XOR insertion must be caught, every time.
			if lname == "randomxor" {
				hits := len(rep.ByRule(audit.RuleKeyFingerprint)) + len(rep.ByRule(audit.RuleKeyRemovable))
				if hits == 0 {
					t.Errorf("%s/randomxor: no fingerprint or removability finding:\n%s", cname, rep)
				}
			}

			// The paper's own pairing must come out clean end to end.
			if lname == "weighted" {
				if rep.HasErrors() {
					t.Errorf("%s/weighted: netlist audit errors:\n%s", cname, rep)
				}
				cfg, err := orap.Protect(l.Circuit, l.Key,
					l.Circuit.NumInputs(), l.Circuit.NumOutputs(),
					scan.OraPBasic, orap.Options{Rand: rng.New(16)})
				if err != nil {
					t.Fatalf("%s/weighted: protect: %v", cname, err)
				}
				orep, err := audit.Oracle(cfg, nil)
				if err != nil {
					t.Fatalf("%s/weighted: oracle audit: %v", cname, err)
				}
				if orep.HasErrors() {
					t.Errorf("%s/weighted+orap: oracle audit errors:\n%s", cname, orep)
				}
				if orep.EffectiveEntropy != orep.NominalEntropy || orep.NominalEntropy != len(l.Key) {
					t.Errorf("%s/weighted+orap: entropy %d/%d, want full %d",
						cname, orep.EffectiveEntropy, orep.NominalEntropy, len(l.Key))
				}
			}
		}
	}
}
