package audit

import (
	"orap/internal/check"
	"orap/internal/ir"
	"orap/internal/netlist"
)

// The removability analysis runs constant propagation once per key bit
// under each of its two values, all other inputs unknown. Tracking the
// two passes jointly matters: XOR(x, k) is unknown under both values of
// k, yet its concrete value always differs between them — a naive
// two-pass diff would call it key-independent. Each node therefore
// carries a pair of three-valued results plus an equality proof:
//
//	eq[n] = (both values known and equal) ∨ (every fanin of n is eq)
//
// eq is sound (eq[n] implies n's concrete value cannot depend on the
// key bit, for any assignment of the unknowns), and by induction eq[n]
// also implies the two lattice values coincide. A key bit with eq at
// every primary output is provably inert; a gate that is constant under
// both key values while a non-eq signal feeds it absorbs the key
// dependence — both are exactly what a resynthesis pass deletes.

const unknown = int8(-1)

// removability emits the key-removable findings and returns, per key
// bit, whether the bit is inert (no primary output depends on it).
func removability(p *ir.Program, c *netlist.Circuit, rep *Report) []bool {
	n := p.NumNodes()
	v0 := make([]int8, n)
	v1 := make([]int8, n)
	eq := make([]bool, n)
	inert := make([]bool, p.NumKeys())

	for kb, kid := range p.Keys {
		for _, id32 := range p.Order {
			id := int(id32)
			switch p.Ops[id] {
			case ir.OpInput:
				if id32 == kid {
					v0[id], v1[id], eq[id] = 0, 1, false
				} else {
					v0[id], v1[id], eq[id] = unknown, unknown, true
				}
				continue
			case ir.OpConst0:
				v0[id], v1[id], eq[id] = 0, 0, true
				continue
			case ir.OpConst1:
				v0[id], v1[id], eq[id] = 1, 1, true
				continue
			}
			fi := p.FaninSpan(id)
			a := foldOp(p.Ops[id], fi, v0)
			b := foldOp(p.Ops[id], fi, v1)
			v0[id], v1[id] = a, b
			if a != unknown && b != unknown {
				eq[id] = a == b
			} else {
				all := true
				for _, f := range fi {
					if !eq[f] {
						all = false
						break
					}
				}
				eq[id] = all
			}
			if eq[id] && a != unknown {
				// Constant under both key values: if a key-dependent
				// signal feeds this gate, the dependence dies here.
				for _, f := range fi {
					if !eq[f] {
						rep.add(finding(c, RuleKeyRemovable, check.Warning, kb, id, RefResynthesis,
							"%v gate %q is constant %d under both values of key bit %d (%q); the key dependence entering it is absorbed and resynthesis strips the key logic",
							p.Ops[id], c.NameOf(id), a, kb, c.NameOf(int(kid))))
						break
					}
				}
			}
		}

		depends := false
		for _, o := range p.POs {
			if !eq[o] {
				depends = true
				break
			}
		}
		if depends {
			continue
		}
		inert[kb] = true
		if len(p.FanoutSpan(int(kid))) == 0 {
			// Scheme artifact (weighted locking's remainder bits):
			// dead key material, same policy as check's key-unobservable
			// warning tier.
			rep.add(finding(c, RuleKeyRemovable, check.Warning, kb, int(kid), RefResynthesis,
				"key input %q (bit %d) drives no gate; dead key material a resynthesis pass drops", c.NameOf(int(kid)), kb))
		} else {
			rep.add(finding(c, RuleKeyRemovable, check.Error, kb, int(kid), RefResynthesis,
				"no primary output depends on key bit %d (%q) under two-valued constant propagation; its key logic is removable", kb, c.NameOf(int(kid))))
		}
	}
	return inert
}

// foldOp evaluates one gate over the three-valued lattice, mirroring
// check's constant folder (including the degenerate XOR(x, x) shape)
// on the compiled opcode/CSR view.
func foldOp(op ir.Op, fanins []int32, val []int8) int8 {
	switch op {
	case ir.OpBuf:
		return val[fanins[0]]
	case ir.OpNot:
		if v := val[fanins[0]]; v != unknown {
			return 1 - v
		}
		return unknown
	case ir.OpAnd, ir.OpNand:
		out := int8(1)
		for _, f := range fanins {
			switch val[f] {
			case 0:
				out = 0
			case unknown:
				if out != 0 {
					out = unknown
				}
			}
		}
		if out == unknown {
			return unknown
		}
		if op == ir.OpNand {
			return 1 - out
		}
		return out
	case ir.OpOr, ir.OpNor:
		out := int8(0)
		for _, f := range fanins {
			switch val[f] {
			case 1:
				out = 1
			case unknown:
				if out != 1 {
					out = unknown
				}
			}
		}
		if out == unknown {
			return unknown
		}
		if op == ir.OpNor {
			return 1 - out
		}
		return out
	case ir.OpXor, ir.OpXnor:
		if len(fanins) == 2 && fanins[0] == fanins[1] {
			if op == ir.OpXor {
				return 0
			}
			return 1
		}
		parity := int8(0)
		for _, f := range fanins {
			v := val[f]
			if v == unknown {
				return unknown
			}
			parity ^= v
		}
		if op == ir.OpXnor {
			return 1 - parity
		}
		return parity
	}
	return unknown
}
