package audit

import (
	"orap/internal/check"
	"orap/internal/dataflow"
	"orap/internal/netlist"
)

// The removability analysis runs the engine's pair/key-difference
// domain once per key bit: constant propagation under both of the bit's
// values, all other inputs unknown, tracked jointly (see
// dataflow.PairValue for why a naive two-pass diff is unsound). A key
// bit with the Eq proof at every primary output is provably inert; a
// gate that is constant under both key values while a non-Eq signal
// feeds it absorbs the key dependence — both are exactly what a
// resynthesis pass deletes.
//
// The per-bit pass is incremental: one base fixpoint with no key
// selected, then per key bit a Rerun seeded at the key input. Only the
// bit's fanout cone is re-transferred (in topological order, so the
// findings come out in the same order a full sweep produced), and the
// visited slice is what the restore loop and the key-leak collector
// scan. Along the way the pass also harvests the Anti proofs at the
// primary outputs — the key-leak rule's evidence — so the leak scan
// costs nothing extra.

// removability emits the key-removable findings and returns, per key
// bit, whether the bit is inert (no primary output depends on it). The
// Anti-at-PO witnesses are stored on the engine for keyLeaks.
func removability(e *engine, c *netlist.Circuit, rep *Report) []bool {
	p := e.p
	d := dataflow.NewPair(p)
	base := dataflow.Run[dataflow.PairValue](p, d, dataflow.Options{Workers: 1})
	vals := make([]dataflow.PairValue, len(base))
	copy(vals, base)
	inert := make([]bool, p.NumKeys())
	e.leaks = make([][]int32, p.NumKeys())

	for kb, kid := range p.Keys {
		d.SetKey(kid)
		visited := dataflow.Rerun[dataflow.PairValue](p, d, vals, kid)
		for _, id32 := range visited {
			id := int(id32)
			v := vals[id]
			if v.Eq && v.V0 != dataflow.Unknown {
				// Constant under both key values: if a key-dependent
				// signal feeds this gate, the dependence dies here.
				for _, f := range p.FaninSpan(id) {
					if !vals[f].Eq {
						rep.add(finding(c, RuleKeyRemovable, check.Warning, kb, id, RefResynthesis,
							"%v gate %q is constant %d under both values of key bit %d (%q); the key dependence entering it is absorbed and resynthesis strips the key logic",
							p.Ops[id], c.NameOf(id), v.V0, kb, c.NameOf(int(kid))))
						break
					}
				}
			}
		}

		depends := false
		for _, o := range p.POs {
			if !vals[o].Eq {
				depends = true
			}
			if vals[o].Anti {
				e.leaks[kb] = append(e.leaks[kb], o)
			}
		}
		if !depends {
			inert[kb] = true
			if len(p.FanoutSpan(int(kid))) == 0 {
				// Scheme artifact (weighted locking's remainder bits):
				// dead key material, same policy as check's key-unobservable
				// warning tier.
				rep.add(finding(c, RuleKeyRemovable, check.Warning, kb, int(kid), RefResynthesis,
					"key input %q (bit %d) drives no gate; dead key material a resynthesis pass drops", c.NameOf(int(kid)), kb))
			} else {
				rep.add(finding(c, RuleKeyRemovable, check.Error, kb, int(kid), RefResynthesis,
					"no primary output depends on key bit %d (%q) under two-valued constant propagation; its key logic is removable", kb, c.NameOf(int(kid))))
			}
		}

		// Put the visited cone back to the keyless base fixpoint so the
		// next bit starts from a clean slate.
		for _, id := range visited {
			vals[id] = base[id]
		}
	}
	return inert
}
