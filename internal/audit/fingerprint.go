package audit

import (
	"orap/internal/check"
	"orap/internal/dataflow"
	"orap/internal/ir"
	"orap/internal/netlist"
)

// The fingerprint analysis classifies each key bit by the local
// structure of the gates its input directly feeds — the view a
// topology-guided attacker has of a reverse-engineered netlist. Three
// signatures cover the shipped locking schemes:
//
//   - xor-direct: every direct fanout is a 2-input XOR/XNOR against an
//     internal net. The EPIC/random-XOR splice: removing the gate (and
//     absorbing the inversion for XNOR) recovers the original net, so
//     locating it is breaking it.
//   - pointfunc: a 2-input XOR/XNOR comparator against a primary
//     input. The SARLock/Anti-SAT/TTLock lineage: the comparator tree
//     is a point function an attacker bypasses once located.
//   - ctrl-cone: NOT/AND/NAND/OR/NOR gates computing over key material
//     only — the weighted-locking control cone. The least distinctive
//     shape (several key bits mix before touching the circuit), so it
//     only rates an info note.
//
// Every finding carries its anonymity set: how many gates in the whole
// circuit share the key gate's shape (opcode up to output inversion,
// same arity). A small set means the attacker needs to test almost
// nothing to confirm the identification.

// fingerprints emits the key-fingerprint findings.
func fingerprints(p *ir.Program, c *netlist.Circuit, rep *Report) {
	shapes := shapeCounts(p)
	total := 0
	for _, n := range shapes {
		total += n
	}

	isKeyInput := make([]bool, p.NumNodes())
	for _, k := range p.Keys {
		isKeyInput[k] = true
	}
	keyOnly := keyOnlyNodes(p, isKeyInput)

	for kb, kid := range p.Keys {
		fos := uniqueFanouts(p, int(kid))
		if len(fos) == 0 {
			continue // dead key material; removability reports it
		}
		allXor, allCtrl := true, false
		pointfuncAt, pointfuncPI := -1, -1
		ctrl := 0
		for _, fo := range fos {
			op := p.Ops[fo]
			fi := p.FaninSpan(fo)
			switch op {
			case ir.OpXor, ir.OpXnor:
				if len(fi) == 2 {
					other := int(fi[0])
					if other == int(kid) {
						other = int(fi[1])
					}
					if p.Ops[other] == ir.OpInput && !isKeyInput[other] {
						if pointfuncAt < 0 {
							pointfuncAt, pointfuncPI = fo, other
						}
						continue
					}
					continue // xor-direct candidate
				}
				allXor = false
			case ir.OpNot, ir.OpAnd, ir.OpNand, ir.OpOr, ir.OpNor:
				allXor = false
				if keyOnly[fo] {
					ctrl++
				}
			default:
				allXor = false
			}
		}
		allCtrl = ctrl == len(fos)

		switch {
		case pointfuncAt >= 0:
			rep.add(finding(c, RuleKeyFingerprint, check.Warning, kb, pointfuncAt, RefTopology,
				"key input %q feeds a %v comparator against primary input %q (point-function shape, SARLock/Anti-SAT/TTLock lineage); the unit is bypassable once located — anonymity set: %d of %d gates share its shape",
				c.NameOf(int(kid)), p.Ops[pointfuncAt], c.NameOf(pointfuncPI),
				shapes[shapeOf(p, pointfuncAt)], total))
		case allXor:
			g := fos[0]
			rep.add(finding(c, RuleKeyFingerprint, check.Warning, kb, g, RefTopology,
				"key input %q splices %d %v key gate(s) directly into the netlist (EPIC-style); topology-guided attacks locate and strip it — anonymity set: %d of %d gates share its shape",
				c.NameOf(int(kid)), len(fos), p.Ops[g], shapes[shapeOf(p, g)], total))
		case allCtrl:
			g := fos[0]
			rep.add(finding(c, RuleKeyFingerprint, check.Info, kb, g, RefTopology,
				"key input %q enters a weighted-locking control cone (%v over key material only); diffuse fingerprint — anonymity set: %d of %d gates share the entry gate's shape",
				c.NameOf(int(kid)), p.Ops[g], shapes[shapeOf(p, g)], total))
		}
	}
}

// shape is a local-structure signature: the gate opcode with the output
// inversion absorbed (XNOR folds to XOR, NAND to AND, NOR to OR — a
// resynthesizing attacker pushes inverters for free) plus the arity.
type shape struct {
	op    ir.Op
	arity int
}

func shapeOf(p *ir.Program, id int) shape {
	op := p.Ops[id]
	switch op {
	case ir.OpXnor:
		op = ir.OpXor
	case ir.OpNand:
		op = ir.OpAnd
	case ir.OpNor:
		op = ir.OpOr
	case ir.OpNot:
		op = ir.OpBuf
	}
	return shape{op: op, arity: len(p.FaninSpan(id))}
}

// shapeCounts tallies every gate's shape (inputs and constants
// excluded).
func shapeCounts(p *ir.Program) map[shape]int {
	out := make(map[shape]int)
	for id := range p.Ops {
		switch p.Ops[id] {
		case ir.OpInput, ir.OpConst0, ir.OpConst1:
			continue
		}
		out[shapeOf(p, id)]++
	}
	return out
}

// uniqueFanouts returns the distinct direct fanout gates of id.
func uniqueFanouts(p *ir.Program, id int) []int {
	span := p.FanoutSpan(id)
	out := make([]int, 0, len(span))
	seen := make(map[int32]bool, len(span))
	for _, fo := range span {
		if !seen[fo] {
			seen[fo] = true
			out = append(out, int(fo))
		}
	}
	return out
}

// keyOnly is the control-cone analysis as an engine domain: a node is
// key-only when its value is a function of key inputs and constants
// alone — the candidate control-cone gates. The lattice is the booleans
// under conjunction (key-only is the precise fact, losing it is the
// join direction).
type keyOnly struct {
	p     *ir.Program
	isKey []bool
}

func (d *keyOnly) Direction() dataflow.Direction { return dataflow.Forward }
func (d *keyOnly) Bottom() bool                  { return true }
func (d *keyOnly) Join(a, b bool) bool           { return a && b }
func (d *keyOnly) Equal(a, b bool) bool          { return a == b }

func (d *keyOnly) Transfer(id int, get func(int) bool) bool {
	switch d.p.Ops[id] {
	case ir.OpInput:
		return d.isKey[id]
	case ir.OpConst0, ir.OpConst1:
		return true
	}
	for _, f := range d.p.FaninSpan(id) {
		if !get(int(f)) {
			return false
		}
	}
	return true
}

// keyOnlyNodes marks the nodes whose value is a function of key inputs
// (and constants) only, by solving the keyOnly domain.
func keyOnlyNodes(p *ir.Program, isKeyInput []bool) []bool {
	return dataflow.Run[bool](p, &keyOnly{p: p, isKey: isKeyInput}, dataflow.Options{Workers: 1})
}
