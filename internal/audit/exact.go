package audit

import (
	"fmt"
	"math/big"
	"sort"

	"orap/internal/bdd"
	"orap/internal/check"
	"orap/internal/dataflow"
	"orap/internal/ir"
	"orap/internal/netlist"
)

// The exact backend upgrades three dataflow bounds to model-counted
// verdicts by compiling each key bit's corruption cone to a ROBDD
// (internal/bdd) and counting models instead of propagating lattice
// values:
//
//   - low-corruptibility: the structural cone bound "at most N outputs"
//     becomes the exact count of outputs some (input, key) pair really
//     flips, plus the corruption *rate* — the fraction of (input, key)
//     pairs on which a wrong guess at the bit is observable at all.
//   - key-leak: the pair domain's Anti flag (sound but incomplete)
//     becomes a tautology check on XOR(F, F|bit flipped) per output,
//     with the exact distinguishing-input count per key bit.
//   - key-removable: a bit whose exact corruption count is zero is
//     provably inert even when two-valued constant propagation cannot
//     see it.
//
// Per key bit the analysis builds a fresh Manager restricted to the
// bit's cone — the primary outputs its taint reaches and the inputs in
// their union support — so one exponential cone only sinks its own bit:
// a bdd.ErrBudget trip degrades that bit to the dataflow bound (OK =
// false, Fallbacks counted in the telemetry) and every other bit stays
// exact. Counts over the restricted support scale to the full
// (input, key) space by shifting: every input outside the support
// doubles both the model count and the space, so rates are unchanged
// and counts shift left by the number of free inputs.

// ExactOptions tunes the symbolic backend.
type ExactOptions struct {
	// NodeBudget is the per-key-bit BDD node budget; 0 selects
	// bdd.DefaultBudget.
	NodeBudget int
}

// ExactKeyBit is the symbolic verdict for one key bit. The model
// counts are only meaningful when OK is true; a bit that tripped the
// node budget reports OK = false with nil counts and the audit falls
// back to the structural bound for it.
type ExactKeyBit struct {
	// Bit is the key-bit index.
	Bit int
	// OK reports whether the symbolic analysis completed within the
	// node budget.
	OK bool
	// Err records why the bit fell back (wraps bdd.ErrBudget on a
	// budget trip); nil when OK.
	Err error
	// ConePOs is the structural bound: primary outputs in the bit's
	// transitive fanout cone. SensPOs is the exact refinement: outputs
	// some (input, key) pair actually flips. SensPOs <= ConePOs always.
	ConePOs int
	SensPOs int
	// SupportVars is the number of circuit inputs (PIs and key bits) in
	// the cone's union support — the BDD variable count for this bit.
	SupportVars int
	// CorruptCount is |{(x, k) : F(x, k) != F(x, k xor e_bit)}| over
	// the full primary-input × key space; Rate is the same quantity as
	// a fraction of that space.
	CorruptCount *big.Int
	Rate         float64
	// DistInputs counts primary-input patterns x for which some key k
	// makes the outputs differ between k and k xor e_bit — the
	// distinguishing inputs an oracle-guided attack needs to exist.
	DistInputs *big.Int
	// LeakPOs lists primary outputs whose diff function is a tautology:
	// the output flips with the bit for every (input, key) pair, the
	// exact form of the key-leak rule.
	LeakPOs []int32
}

// ExactStats aggregates the per-bit Managers' telemetry for the audit
// report, the same way ChannelStats surfaces oracle-channel counters.
type ExactStats struct {
	bdd.Stats
	// PeakNodes is the largest single per-bit Manager.
	PeakNodes int
	// Fallbacks counts key bits that exceeded the budget and degraded
	// to the dataflow bound.
	Fallbacks int
}

// ExactResult is the full symbolic outcome attached to a Report when
// the audit runs with Options.Exact.
type ExactResult struct {
	// Bits holds one verdict per key bit, indexed by key-bit number.
	Bits []ExactKeyBit
	// NumPIs and NumKeys size the spaces the counts range over:
	// CorruptCount over 2^(NumPIs+NumKeys), DistInputs over 2^NumPIs.
	NumPIs, NumKeys int
	Stats           ExactStats
}

// PISpace returns 2^NumPIs, the input-pattern space DistInputs counts
// against.
func (r *ExactResult) PISpace() *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(r.NumPIs))
}

// Telemetry renders the one-line BDD summary printed with the report.
func (r *ExactResult) Telemetry() string {
	return fmt.Sprintf("exact: %d/%d key bits symbolic (%d budget fallbacks); bdd %d nodes total, peak %d of %d budget, ite cache %.1f%% hits",
		len(r.Bits)-r.Stats.Fallbacks, len(r.Bits), r.Stats.Fallbacks,
		r.Stats.Nodes, r.Stats.PeakNodes, r.Stats.Budget, 100*r.Stats.HitRate())
}

// exactAnalyze runs the symbolic backend over every key bit of prog.
func exactAnalyze(prog *ir.Program, opts ExactOptions) *ExactResult {
	budget := opts.NodeBudget
	if budget <= 0 {
		budget = bdd.DefaultBudget
	}
	// One all-inputs taint sweep gives every node's exact structural
	// support: PI bits first, key bits after (the p.Inputs layout).
	support := dataflow.Run[dataflow.KeySet](prog, dataflow.NewInputTaint(prog, prog.Inputs), dataflow.Options{Workers: 1})
	rank := make(map[int32]int, len(prog.Inputs))
	for r, id := range bdd.InputOrder(prog) {
		rank[id] = r
	}
	res := &ExactResult{
		Bits:    make([]ExactKeyBit, prog.NumKeys()),
		NumPIs:  len(prog.PIs),
		NumKeys: prog.NumKeys(),
	}
	res.Stats.Budget = budget
	for kb := range prog.Keys {
		bit, st := exactBit(prog, support, rank, kb, budget)
		res.Bits[kb] = bit
		res.Stats.Add(st)
		res.Stats.Budget = budget
		if st.Nodes > res.Stats.PeakNodes {
			res.Stats.PeakNodes = st.Nodes
		}
		if !bit.OK {
			res.Stats.Fallbacks++
		}
	}
	return res
}

// exactBit analyzes one key bit on a fresh Manager restricted to the
// bit's cone, returning the verdict and the Manager's telemetry.
func exactBit(p *ir.Program, support []dataflow.KeySet, rank map[int32]int, kb, budget int) (ExactKeyBit, bdd.Stats) {
	out := ExactKeyBit{Bit: kb}
	idx := len(p.PIs) + kb // the bit's tracked-input index
	var cone []int32
	for _, o := range p.POs {
		if support[o].Has(idx) {
			cone = append(cone, o)
		}
	}
	out.ConePOs = len(cone)
	if len(cone) == 0 {
		// Structurally inert: the exact counts are trivially zero and
		// no Manager is needed.
		out.OK = true
		out.CorruptCount = new(big.Int)
		out.DistInputs = new(big.Int)
		return out, bdd.Stats{}
	}

	// Union the cone's input support and order it by the global
	// level-schedule ranking, so the restricted variable order is the
	// global one with the absent inputs deleted.
	inSup := make([]bool, len(p.Inputs))
	for _, o := range cone {
		for _, i := range support[o].Bits() {
			inSup[i] = true
		}
	}
	var sup []int
	for i, in := range inSup {
		if in {
			sup = append(sup, i)
		}
	}
	sort.Slice(sup, func(a, b int) bool { return rank[p.Inputs[sup[a]]] < rank[p.Inputs[sup[b]]] })
	out.SupportVars = len(sup)

	m := bdd.New(len(sup), budget)
	cp := bdd.NewCompiler(m, p)
	kbVar := -1
	keyVars := make([]bool, len(sup)) // levels bound to key inputs
	piInSup := 0
	err := func() error {
		for v, i := range sup {
			if err := cp.BindVar(p.Inputs[i], v); err != nil {
				return err
			}
			if i >= len(p.PIs) {
				keyVars[v] = true
				if i == idx {
					kbVar = v
				}
			} else {
				piInSup++
			}
		}
		diff := bdd.False
		for _, o := range cone {
			f, err := cp.Compile(o)
			if err != nil {
				return err
			}
			fl, err := m.Flip(f, kbVar)
			if err != nil {
				return err
			}
			d, err := m.Xor(f, fl)
			if err != nil {
				return err
			}
			if d != bdd.False {
				out.SensPOs++
			}
			if d == bdd.True {
				out.LeakPOs = append(out.LeakPOs, o)
			}
			if diff, err = m.Or(diff, d); err != nil {
				return err
			}
		}
		// Scale from the support space to the full (input, key) space:
		// each of the inputs outside the support doubles count and
		// space alike, so the rate carries over unshifted.
		freeAll := uint(len(p.Inputs) - len(sup))
		out.CorruptCount = new(big.Int).Lsh(m.SatCount(diff), freeAll)
		out.Rate = m.SatFraction(diff)
		// Distinguishing inputs: quantify the key variables out of the
		// diff, then count over the PI variables only. SatCount still
		// treats the quantified levels as free, so divide them back out
		// (exact — the function no longer depends on them) and scale up
		// by the PIs outside the support.
		ex, err := m.Exists(diff, keyVars)
		if err != nil {
			return err
		}
		di := new(big.Int).Rsh(m.SatCount(ex), uint(len(sup)-piInSup))
		out.DistInputs = di.Lsh(di, uint(len(p.PIs)-piInSup))
		return nil
	}()
	if err != nil {
		// Budget trip (or any symbolic failure): degrade this bit to
		// the dataflow bound and discard the partial exact state.
		out.Err = err
		out.SensPOs = 0
		out.LeakPOs = nil
		out.CorruptCount, out.DistInputs = nil, nil
		out.Rate = 0
		return out, m.Stats()
	}
	out.OK = true
	return out, m.Stats()
}

// exactRemovability emits the key-removable errors only the exact
// backend can see: bits whose corruption model count is zero although
// two-valued constant propagation could not prove any output
// independent. Such a bit is as removable as a dataflow-inert one, so
// it is also marked inert for the downstream corruptibility rule.
func exactRemovability(p *ir.Program, c *netlist.Circuit, rep *Report, ex *ExactResult, inert []bool) {
	for kb, kid := range p.Keys {
		b := &ex.Bits[kb]
		if !b.OK || inert[kb] || b.CorruptCount.Sign() != 0 {
			continue
		}
		inert[kb] = true
		rep.add(finding(c, RuleKeyRemovable, check.Error, kb, int(kid), RefResynthesis,
			"exact model count: no (input, key) pair flips any primary output when key bit %d (%q) flips; the bit's key logic is removable even though constant propagation cannot prove it",
			kb, c.NameOf(int(kid))))
	}
}

// KeyEquivalence symbolically proves that the locked circuit under the
// provided key computes the same function as the original: every
// primary output pair compiles to one shared Manager (keys bound to
// the stored constants), where hash-consing makes equivalence a node
// identity check. A mismatching output produces a key-equivalence
// error finding carrying the exact count of disagreeing input patterns
// and a witness pattern. The circuits correspond positionally: PI i of
// locked is PI i of original, likewise the POs. Returns a non-nil
// error — matching errors.Is(err, bdd.ErrBudget) — when the proof
// exceeds the node budget, so callers can skip rather than misreport.
func KeyEquivalence(locked, original *netlist.Circuit, key []bool, opts ExactOptions) (*Report, error) {
	lp, err := ir.Compile(locked)
	if err != nil {
		return nil, fmt.Errorf("audit: locked circuit: %w", err)
	}
	op, err := ir.Compile(original)
	if err != nil {
		return nil, fmt.Errorf("audit: original circuit: %w", err)
	}
	if lp.NumKeys() != len(key) {
		return nil, fmt.Errorf("audit: key has %d bits, locked circuit has %d key inputs", len(key), lp.NumKeys())
	}
	if op.NumKeys() != 0 {
		return nil, fmt.Errorf("audit: original circuit has %d key inputs, want 0", op.NumKeys())
	}
	if len(lp.PIs) != len(op.PIs) || len(lp.POs) != len(op.POs) {
		return nil, fmt.Errorf("audit: interface mismatch: locked has %d PIs/%d POs, original %d/%d",
			len(lp.PIs), len(lp.POs), len(op.PIs), len(op.POs))
	}

	// Shared variable order over the primary inputs, seeded from the
	// locked program's level schedule; the keys become constants.
	piIdx := make(map[int32]int, len(lp.PIs))
	for i, id := range lp.PIs {
		piIdx[id] = i
	}
	level := make([]int, len(lp.PIs)) // PI index -> BDD level
	v := 0
	for _, id := range bdd.InputOrder(lp) {
		if i, ok := piIdx[id]; ok {
			level[i] = v
			v++
		}
	}
	m := bdd.New(len(lp.PIs), opts.NodeBudget)
	cpl := bdd.NewCompiler(m, lp)
	cpo := bdd.NewCompiler(m, op)
	for i := range lp.PIs {
		if err := cpl.BindVar(lp.PIs[i], level[i]); err != nil {
			return nil, err
		}
		if err := cpo.BindVar(op.PIs[i], level[i]); err != nil {
			return nil, err
		}
	}
	for kb, kid := range lp.Keys {
		cpl.BindConst(kid, key[kb])
	}

	rep := &Report{Circuit: locked.Name}
	for j := range lp.POs {
		fl, err := cpl.Compile(lp.POs[j])
		if err != nil {
			return nil, fmt.Errorf("audit: key-equivalence proof for output %q: %w", locked.NameOf(int(lp.POs[j])), err)
		}
		fo, err := cpo.Compile(op.POs[j])
		if err != nil {
			return nil, fmt.Errorf("audit: key-equivalence proof for output %q: %w", original.NameOf(int(op.POs[j])), err)
		}
		if fl == fo {
			continue // canonical form: identical node is a proof
		}
		d, err := m.Xor(fl, fo)
		if err != nil {
			return nil, fmt.Errorf("audit: key-equivalence diff for output %q: %w", locked.NameOf(int(lp.POs[j])), err)
		}
		cnt := m.SatCount(d)
		// Render the witness over the PIs in declaration order;
		// don't-care positions stay '-'.
		w := m.AnySat(d)
		pat := make([]byte, len(lp.PIs))
		for i := range pat {
			switch w[level[i]] {
			case 0:
				pat[i] = '0'
			case 1:
				pat[i] = '1'
			default:
				pat[i] = '-'
			}
		}
		rep.add(finding(locked, RuleKeyEquivalence, check.Error, -1, int(lp.POs[j]), RefOraP,
			"primary output %q disagrees with the original for %v of %v input patterns under the stored key (witness %s over the PIs in declaration order); the lock transform corrupted the design",
			locked.NameOf(int(lp.POs[j])), cnt, new(big.Int).Lsh(big.NewInt(1), uint(len(lp.PIs))), pat))
	}
	rep.sort()
	return rep, nil
}
