package orap

import (
	"fmt"

	"orap/internal/gf2"
	"orap/internal/lfsr"
	"orap/internal/netlist"
	"orap/internal/scan"
	"orap/internal/sim"
)

// synthesizeModifiedSequential is the exact synthesis for the modified
// scheme when the reseeding points cover every cell (InjectSpacing == 1)
// and seeds are fed back to back (no free-run cycles).
//
// It exploits two facts:
//
//  1. The response word injected at cycle t is a function of the
//     flip-flop state at cycle t, which is fully determined before seed t
//     is chosen — the construction is triangular, never circular.
//  2. With memory seeds on the even cells, responses on the odd cells,
//     and polynomial taps only at even positions (any even tap spacing),
//     the register shift maps the even half of a state onto the odd half
//     of the next state. The final state's odd half is therefore set one
//     cycle early through the even half of the penultimate state (whose
//     response perturbation is already known), and the final state's even
//     half is set directly by the last seed.
//
// The construction works for every circuit, independent of how entangled
// the responses are with the key inputs.
func synthesizeModifiedSequential(core *netlist.Circuit, key []bool, realPIs, realPOs int, opts Options) (scan.Config, error) {
	n := core.NumKeys()
	if opts.TapSpacing%2 != 0 {
		return scan.Config{}, fmt.Errorf("orap: sequential synthesis needs an even tap spacing, got %d", opts.TapSpacing)
	}
	cfg := lfsr.Config{
		N:      n,
		Taps:   lfsr.StandardTaps(n, opts.TapSpacing),
		Inject: lfsr.AllInject(n),
	}
	var memInject, respInject []int
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			memInject = append(memInject, i)
		} else {
			respInject = append(respInject, i)
		}
	}
	if len(respInject) == 0 {
		return scan.Config{}, fmt.Errorf("orap: key register too small to split reseeding points (n=%d)", n)
	}
	numFFs := core.NumInputs() - realPIs
	if numFFs <= 0 {
		return scan.Config{}, fmt.Errorf("orap: modified scheme needs flip-flops for response feedback")
	}
	respTaps := make([]int, len(respInject))
	perm := opts.Rand.Perm(numFFs)
	for i := range respTaps {
		respTaps[i] = perm[i%numFFs]
	}

	seeds := opts.Seeds
	if seeds < 4 {
		seeds = 4
	}
	T := seeds
	sc := lfsr.UniformSchedule(T, 0)

	reg, err := lfsr.New(cfg)
	if err != nil {
		return scan.Config{}, err
	}
	ff := make([]bool, numFFs)
	pins := make([]bool, realPIs)
	target := gf2.FromBools(key)

	// evalFF computes the next flip-flop state for the current key state.
	// The core is compiled once here and reused for every unlock cycle.
	coreEval, err := sim.NewEvaluator(core)
	if err != nil {
		return scan.Config{}, err
	}
	evalFF := func(ff []bool, state gf2.Vec) ([]bool, error) {
		in := make([]bool, core.NumInputs())
		copy(in, pins)
		copy(in[realPIs:], ff)
		out, err := coreEval.Eval(in, state.Bools())
		if err != nil {
			return nil, err
		}
		return append([]bool(nil), out[realPOs:]...), nil
	}
	// respWord builds the odd-cell injection vector for a flip-flop state.
	respWord := func(ff []bool) gf2.Vec {
		v := gf2.NewVec(n)
		for j, cell := range respInject {
			if ff[respTaps[j]] {
				v.SetBit(cell, true)
			}
		}
		return v
	}
	// shiftWith computes the next register state for a full-width
	// injection vector.
	shiftWith := func(state, inj gf2.Vec) (gf2.Vec, error) {
		if err := reg.SetState(state); err != nil {
			return gf2.Vec{}, err
		}
		if err := reg.Step(inj); err != nil {
			return gf2.Vec{}, err
		}
		return reg.State(), nil
	}

	state := gf2.NewVec(n)
	seedVecs := make([]gf2.Vec, T)
	memWidth := len(memInject)
	for t := 0; t < T; t++ {
		// Baseline transition with a zero seed: shift + response injection.
		base, err := shiftWith(state, respWord(ff))
		if err != nil {
			return scan.Config{}, err
		}
		ffNext, err := evalFF(ff, state)
		if err != nil {
			return scan.Config{}, err
		}
		// Desired even half of the next state.
		desired := gf2.NewVec(memWidth)
		switch {
		case t < T-2:
			for i := 0; i < memWidth; i++ {
				desired.SetBit(i, opts.Rand.Bool())
			}
		case t == T-2:
			// Next cycle's responses are already determined by ffNext;
			// position the even half so the shift lands the target's odd
			// half.
			rNext := respWord(ffNext)
			for i, cell := range memInject {
				odd := cell + 1
				if odd >= n {
					desired.SetBit(i, opts.Rand.Bool())
					continue
				}
				// state_T[odd] = state_{T-1}[odd-1] ⊕ rNext[odd]
				// (taps sit on even cells only, so none interferes).
				desired.SetBit(i, target.Bit(odd) != rNext.Bit(odd))
			}
		default: // t == T-1
			for i, cell := range memInject {
				desired.SetBit(i, target.Bit(cell))
			}
		}
		// Seed bits make up the difference on the even cells.
		seed := gf2.NewVec(memWidth)
		for i, cell := range memInject {
			seed.SetBit(i, desired.Bit(i) != base.Bit(cell))
		}
		seedVecs[t] = seed
		inj := respWord(ff)
		for i, cell := range memInject {
			if seed.Bit(i) {
				inj.FlipBit(cell)
			}
		}
		state, err = shiftWith(state, inj)
		if err != nil {
			return scan.Config{}, err
		}
		ff = ffNext
	}
	if !state.Equal(target) {
		return scan.Config{}, fmt.Errorf("orap: sequential synthesis missed the target key (got %v, want %v)", state, target)
	}

	chipCfg := scan.Config{
		Core:       core,
		RealPIs:    realPIs,
		RealPOs:    realPOs,
		Protection: scan.OraPModified,
		LFSR:       cfg,
		Schedule:   sc,
		Seeds:      seedVecs,
		MemInject:  memInject,
		RespInject: respInject,
		RespTaps:   respTaps,
	}
	if err := chipCfg.Validate(); err != nil {
		return scan.Config{}, err
	}
	if err := verifyUnlock(chipCfg, key); err != nil {
		return scan.Config{}, err
	}
	return chipCfg, nil
}
