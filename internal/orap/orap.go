// Package orap implements the paper's contribution: the oracle-protection
// (OraP) logic-locking scheme.
//
// OraP does not corrupt outputs itself — it is combined with a
// conventional locking technique (the paper uses weighted logic locking)
// and protects the *oracle*: the key register is an LFSR whose cells are
// cleared by pulse generators whenever scan enable rises, so the scan in –
// capture – scan out flow every oracle-guided attack relies on only ever
// observes the locked circuit.
//
// Unlocking is a multi-cycle reseeding process. The values stored in
// tamper-proof memory (the "key sequence") are seeds; none of them is the
// key. This package synthesizes a key sequence realizing any target key:
// for the basic scheme (Fig. 1) this is one GF(2) linear solve over the
// LFSR's transfer matrix; for the modified scheme (Fig. 3), where circuit
// responses drive half the reseeding points, an exact sequential
// construction (exact.go) positions the register cycle by cycle — it
// works for any circuit because each cycle's response is determined
// before that cycle's seed is chosen. Sparse injection layouts fall back
// to a linear solve over key-independent response taps, or to a
// randomized fixpoint when the whole state is key-entangled. Every
// synthesized sequence is verified by simulating the unlock.
package orap

import (
	"fmt"

	"orap/internal/gf2"
	"orap/internal/lfsr"
	"orap/internal/netlist"
	"orap/internal/rng"
	"orap/internal/scan"
)

// Options tunes the OraP construction.
type Options struct {
	// TapSpacing is the characteristic-polynomial tap spacing (paper: a
	// new tap after every eight cells). Default 8.
	TapSpacing int
	// InjectSpacing places a reseeding point every k-th cell. Default 1
	// (every cell, the most general case of Fig. 1).
	InjectSpacing int
	// Seeds is the number of seeded cycles in the unlock schedule.
	// Default: grown automatically until the memory-driven transfer
	// matrix reaches full rank.
	Seeds int
	// FreeRun is the number of free-run cycles after each seed.
	// Default 1.
	FreeRun int
	// MaxSynthesisRetries bounds re-attempts (with fresh response taps /
	// randomization) for the modified scheme. Default 8.
	MaxSynthesisRetries int
	// Rand drives tap selection and synthesis randomization; required.
	Rand *rng.Stream
}

func (o *Options) fill() error {
	if o.Rand == nil {
		return fmt.Errorf("orap: Options.Rand is required")
	}
	if o.TapSpacing <= 0 {
		o.TapSpacing = 8
	}
	if o.InjectSpacing <= 0 {
		o.InjectSpacing = 1
	}
	if o.FreeRun < 0 {
		return fmt.Errorf("orap: negative FreeRun")
	}
	if o.FreeRun == 0 {
		o.FreeRun = 1
	}
	if o.MaxSynthesisRetries <= 0 {
		o.MaxSynthesisRetries = 8
	}
	return nil
}

// Protect builds a chip configuration that locks the given core behind the
// OraP scheme. The core must already carry a conventional locking layer
// (key inputs); key is its correct key, which the synthesized key sequence
// will reproduce in the LFSR at the end of the unlock schedule. realPIs
// and realPOs split the core's inputs/outputs into package pins and
// flip-flop connections (see scan.Config).
func Protect(core *netlist.Circuit, key []bool, realPIs, realPOs int, protection scan.Protection, opts Options) (scan.Config, error) {
	if err := opts.fill(); err != nil {
		return scan.Config{}, err
	}
	n := core.NumKeys()
	if n == 0 {
		return scan.Config{}, fmt.Errorf("orap: core %q has no key inputs to protect", core.Name)
	}
	if len(key) != n {
		return scan.Config{}, fmt.Errorf("orap: key width %d != core %d", len(key), n)
	}
	if protection != scan.None {
		// A cleared key register presents the all-zero key to the core;
		// if that were the correct key, the chip would answer correctly
		// in test mode and the whole protection would be void. A locking
		// layer with a random key hits this with probability 2^-n; reject
		// it outright.
		zero := true
		for _, b := range key {
			zero = zero && !b
		}
		if zero {
			return scan.Config{}, fmt.Errorf("orap: the all-zero key cannot be protected (it equals the cleared register); re-lock with a different key")
		}
	}
	switch protection {
	case scan.OraPBasic:
		return synthesizeBasic(core, key, realPIs, realPOs, opts)
	case scan.OraPModified:
		return synthesizeModified(core, key, realPIs, realPOs, opts)
	case scan.None:
		return scan.Config{
			Core:       core,
			RealPIs:    realPIs,
			RealPOs:    realPOs,
			Protection: scan.None,
			Key:        append([]bool(nil), key...),
		}, nil
	}
	return scan.Config{}, fmt.Errorf("orap: unknown protection %v", protection)
}

// lfsrConfig builds the register wiring for an n-bit key.
func lfsrConfig(n int, opts Options) lfsr.Config {
	return lfsr.Config{
		N:      n,
		Taps:   lfsr.StandardTaps(n, opts.TapSpacing),
		Inject: lfsr.EveryKthInject(n, opts.InjectSpacing),
	}
}

// growSchedule finds a schedule whose memory transfer matrix has full
// rank n, starting from opts.Seeds (or the minimum implied by widths).
// When the requested free-run count aliases with the injection spacing
// (seed bits then only ever reach a subset of the cells), nearby free-run
// counts are tried as well — the paper leaves both knobs to the designer.
func growSchedule(cfg lfsr.Config, memInject []int, n int, opts Options) (lfsr.Schedule, *gf2.Matrix, error) {
	w := len(memInject)
	minSeeds := opts.Seeds
	if minSeeds <= 0 {
		minSeeds = (n + w - 1) / w
	}
	var lastErr error
	for _, freeRun := range []int{opts.FreeRun, opts.FreeRun + 1, opts.FreeRun + 2} {
		for seeds := minSeeds; seeds <= 8*((n+w-1)/w)+8; seeds++ {
			sc := lfsr.UniformSchedule(seeds, freeRun)
			m, err := lfsr.MemTransferMatrix(cfg, sc, memInject)
			if err != nil {
				return lfsr.Schedule{}, nil, err
			}
			if m.Rank() == n {
				return sc, m, nil
			}
			lastErr = fmt.Errorf("orap: transfer matrix rank %d < %d (%d seeds, %d free-run)", m.Rank(), n, seeds, freeRun)
			if opts.Seeds > 0 {
				break // seed count pinned by the caller: only vary free-run
			}
		}
	}
	return lfsr.Schedule{}, nil, fmt.Errorf("orap: could not reach a full-rank transfer matrix: %w", lastErr)
}

// splitSeeds unpacks a stacked seed vector into per-cycle seeds.
func splitSeeds(stacked gf2.Vec, seeds, width int) []gf2.Vec {
	out := make([]gf2.Vec, seeds)
	for i := range out {
		v := gf2.NewVec(width)
		for j := 0; j < width; j++ {
			if stacked.Bit(i*width + j) {
				v.SetBit(j, true)
			}
		}
		out[i] = v
	}
	return out
}

// synthesizeBasic builds the Fig. 1 scheme: all reseeding points are
// memory-driven and the key sequence is a single linear solve.
func synthesizeBasic(core *netlist.Circuit, key []bool, realPIs, realPOs int, opts Options) (scan.Config, error) {
	n := core.NumKeys()
	cfg := lfsrConfig(n, opts)
	memInject := make([]int, len(cfg.Inject))
	for i := range memInject {
		memInject[i] = i
	}
	sc, m, err := growSchedule(cfg, memInject, n, opts)
	if err != nil {
		return scan.Config{}, err
	}
	stacked, ok := m.Solve(gf2.FromBools(key))
	if !ok {
		return scan.Config{}, fmt.Errorf("orap: full-rank transfer matrix unexpectedly unsolvable")
	}
	chipCfg := scan.Config{
		Core:       core,
		RealPIs:    realPIs,
		RealPOs:    realPOs,
		Protection: scan.OraPBasic,
		LFSR:       cfg,
		Schedule:   sc,
		Seeds:      splitSeeds(stacked, sc.NumSeeds(), len(memInject)),
		MemInject:  memInject,
	}
	if err := verifyUnlock(chipCfg, key); err != nil {
		return scan.Config{}, err
	}
	return chipCfg, nil
}

// synthesizeModified builds the Fig. 3 scheme: reseeding points alternate
// between memory-driven and response-driven (interleaved, as the paper
// prescribes), and the seeds are found by a fixpoint iteration over
// concrete unlock simulations.
func synthesizeModified(core *netlist.Circuit, key []bool, realPIs, realPOs int, opts Options) (scan.Config, error) {
	// With reseeding points on every cell, the sequential construction
	// (exact.go) synthesizes the key sequence deterministically for any
	// circuit; the randomized fixpoint below remains for sparse
	// injection layouts.
	if opts.InjectSpacing == 1 && opts.TapSpacing%2 == 0 {
		cfg, err := synthesizeModifiedSequential(core, key, realPIs, realPOs, opts)
		if err == nil {
			return cfg, nil
		}
	}
	n := core.NumKeys()
	cfg := lfsrConfig(n, opts)
	numFFs := core.NumInputs() - realPIs
	if numFFs <= 0 {
		return scan.Config{}, fmt.Errorf("orap: modified scheme needs flip-flops for response feedback (core has none)")
	}
	// Interleave: even inject positions from memory, odd from responses.
	var memInject, respInject []int
	for i := range cfg.Inject {
		if i%2 == 0 {
			memInject = append(memInject, i)
		} else {
			respInject = append(respInject, i)
		}
	}
	if len(respInject) == 0 {
		return scan.Config{}, fmt.Errorf("orap: too few reseeding points to split (have %d)", len(cfg.Inject))
	}

	sc, m, err := growSchedule(cfg, memInject, n, opts)
	if err != nil {
		return scan.Config{}, err
	}
	target := gf2.FromBools(key)
	width := len(memInject)

	// Prefer response taps whose flip-flops are key-independent (their
	// next-state cones contain no key inputs, transitively): the response
	// sequence is then a known constant of the design, key-sequence
	// synthesis reduces to one exact linear solve, and the designer gets
	// the "better control on the LFSR values" the paper asks for. The
	// scenario-(e) defense is unaffected — frozen flip-flops still feed
	// wrong values into the register. When no such flip-flops exist the
	// synthesis falls back to a randomized fixpoint search over the
	// (then key-entangled) response feedback.
	indepFFs := keyIndependentFFs(core, realPIs, realPOs)

	for retry := 0; retry < opts.MaxSynthesisRetries; retry++ {
		// Pick response taps (which flip-flops feed the odd points).
		respTaps := make([]int, len(respInject))
		if len(indepFFs) > 0 && retry == 0 {
			perm := opts.Rand.Perm(len(indepFFs))
			for i := range respTaps {
				respTaps[i] = indepFFs[perm[i%len(indepFFs)]]
			}
		} else {
			perm := opts.Rand.Perm(numFFs)
			for i := range respTaps {
				respTaps[i] = perm[i%numFFs]
			}
		}
		chipCfg := scan.Config{
			Core:       core,
			RealPIs:    realPIs,
			RealPOs:    realPOs,
			Protection: scan.OraPModified,
			LFSR:       cfg,
			Schedule:   sc,
			Seeds:      splitSeeds(gf2.NewVec(width*sc.NumSeeds()), sc.NumSeeds(), width),
			MemInject:  memInject,
			RespInject: respInject,
			RespTaps:   respTaps,
		}
		stacked := gf2.NewVec(width * sc.NumSeeds())
		seen := map[string]bool{}
		converged := false
		for iter := 0; iter < 32; iter++ {
			chipCfg.Seeds = splitSeeds(stacked, sc.NumSeeds(), width)
			final, err := simulateFinalKey(chipCfg)
			if err != nil {
				return scan.Config{}, err
			}
			if final.Equal(target) {
				converged = true
				break
			}
			// Newton-style correction treating the response contribution
			// as locally constant: M·δ = final ⊕ target.
			delta := final.Clone()
			delta.Xor(target)
			dSeed, ok := m.Solve(delta)
			if !ok {
				return scan.Config{}, fmt.Errorf("orap: correction solve failed on full-rank matrix")
			}
			stacked.Xor(dSeed)
			sig := stacked.String()
			if seen[sig] {
				// Fixpoint cycle: restart from a fresh random point; the
				// search then behaves like rejection sampling over the
				// response-feedback images.
				for b := 0; b < stacked.Len(); b++ {
					stacked.SetBit(b, opts.Rand.Bool())
				}
			}
			seen[sig] = true
		}
		if converged {
			if err := verifyUnlock(chipCfg, key); err != nil {
				return scan.Config{}, err
			}
			return chipCfg, nil
		}
	}
	return scan.Config{}, fmt.Errorf("orap: modified-scheme synthesis did not converge after %d retries", opts.MaxSynthesisRetries)
}

// simulateFinalKey runs a pristine chip's unlock and returns the key
// register's final contents.
func simulateFinalKey(cfg scan.Config) (gf2.Vec, error) {
	ch, err := scan.New(cfg)
	if err != nil {
		return gf2.Vec{}, err
	}
	if err := ch.Unlock(nil); err != nil {
		return gf2.Vec{}, err
	}
	return gf2.FromBools(ch.Key()), nil
}

// verifyUnlock checks by simulation that a pristine chip built from cfg
// unlocks to exactly the expected key.
func verifyUnlock(cfg scan.Config, key []bool) error {
	final, err := simulateFinalKey(cfg)
	if err != nil {
		return err
	}
	if !final.Equal(gf2.FromBools(key)) {
		return fmt.Errorf("orap: synthesized key sequence unlocks to %v, want %v", final, gf2.FromBools(key))
	}
	return nil
}

// keyIndependentFFs returns the indices of flip-flops whose next-state
// logic is transitively independent of every key input: the cone of their
// D input contains no key input and no key-dependent flip-flop output.
func keyIndependentFFs(core *netlist.Circuit, realPIs, realPOs int) []int {
	numFFs := core.NumInputs() - realPIs
	if numFFs <= 0 {
		return nil
	}
	isKey := make([]bool, core.NumNodes())
	for _, k := range core.Keys {
		isKey[k] = true
	}
	// ffOfInput maps a core input node ID to its flip-flop index (-1 for
	// package pins).
	ffOfInput := make(map[int]int)
	for i, id := range core.PIs[realPIs:] {
		ffOfInput[id] = i
	}

	// cones[j] lists, for flip-flop j's D input, the key flag and the
	// flip-flop outputs in its transitive fanin.
	directKey := make([]bool, numFFs)
	deps := make([][]int, numFFs)
	for j := 0; j < numFFs; j++ {
		cone := core.TransitiveFanin(core.POs[realPOs+j])
		for id, in := range cone {
			if !in {
				continue
			}
			if isKey[id] {
				directKey[j] = true
			}
			if ff, ok := ffOfInput[id]; ok {
				deps[j] = append(deps[j], ff)
			}
		}
	}
	// Fixpoint: a flip-flop is key-dependent if its cone has a key input
	// or a key-dependent flip-flop.
	keyDep := append([]bool(nil), directKey...)
	for changed := true; changed; {
		changed = false
		for j := 0; j < numFFs; j++ {
			if keyDep[j] {
				continue
			}
			for _, d := range deps[j] {
				if keyDep[d] {
					keyDep[j] = true
					changed = true
					break
				}
			}
		}
	}
	var indep []int
	for j := 0; j < numFFs; j++ {
		if !keyDep[j] {
			indep = append(indep, j)
		}
	}
	return indep
}
