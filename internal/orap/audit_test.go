package orap

import (
	"testing"

	"orap/internal/audit"
	"orap/internal/rng"
	"orap/internal/scan"
)

// TestProtectedConfigsPassAudit runs the oracle-path auditor on
// Protect's output for both OraP schemes: no error-severity findings,
// and the effective key entropy (transfer-matrix rank) must equal the
// nominal LFSR width — the property growSchedule exists to guarantee.
// The unprotected variant must fail the same audit.
func TestProtectedConfigsPassAudit(t *testing.T) {
	for _, prot := range []scan.Protection{scan.OraPBasic, scan.OraPModified} {
		_, l := lockedAdder(t, 41, 12)
		cfg, err := Protect(l.Circuit, l.Key, 5, 1, prot, Options{Rand: rng.New(42)})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		rep, err := audit.Oracle(cfg, nil)
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if rep.HasErrors() {
			t.Errorf("%v: oracle audit errors on a synthesized configuration:\n%s", prot, rep)
		}
		if rep.EffectiveEntropy != rep.NominalEntropy || rep.NominalEntropy != len(l.Key) {
			t.Errorf("%v: effective entropy %d of %d, want full %d",
				prot, rep.EffectiveEntropy, rep.NominalEntropy, len(l.Key))
		}

		crep, err := audit.Circuit(cfg.Core)
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if crep.HasErrors() {
			t.Errorf("%v: netlist audit errors on the protected core:\n%s", prot, crep)
		}
	}

	_, l := lockedAdder(t, 41, 12)
	cfg, err := Protect(l.Circuit, l.Key, 5, 1, scan.None, Options{Rand: rng.New(42)})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := audit.Oracle(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasErrors() {
		t.Fatalf("unprotected configuration passed the oracle audit:\n%s", rep)
	}
}
