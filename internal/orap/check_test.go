package orap

import (
	"testing"

	"orap/internal/check"
	"orap/internal/rng"
	"orap/internal/scan"
)

// TestProtectedCorePassesCheck runs the netlist checker on the core a
// chip is built around, for every protection variant: Protect must not
// leave the combinational core with error-severity findings or break
// the key conventions the attacks rely on.
func TestProtectedCorePassesCheck(t *testing.T) {
	for _, prot := range []scan.Protection{scan.None, scan.OraPBasic, scan.OraPModified} {
		_, l := lockedAdder(t, 41, 12)
		cfg, err := Protect(l.Circuit, l.Key, 5, 1, prot, Options{Rand: rng.New(42)})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		rep := check.Circuit(cfg.Core)
		if errs := rep.Errors(); len(errs) != 0 {
			t.Errorf("%v: error diagnostics on the protected core:\n%s", prot, rep)
		}
		for _, rule := range []string{check.RuleKeyNaming, check.RuleKeyUnobservable} {
			if d := rep.ByRule(rule); len(d) != 0 {
				t.Errorf("%v: rule %s fired on the protected core:\n%s", prot, rule, rep)
			}
		}
	}
}
