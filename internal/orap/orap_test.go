package orap

import (
	"testing"

	"orap/internal/circuits"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/rng"
	"orap/internal/scan"
)

// lockedAdder returns a weighted-locked ripple adder with the pin/FF split
// used across these tests (5 pins + 4 FFs in, 1 pin + 4 FFs out).
func lockedAdder(t *testing.T, seed uint64, keyBits int) (*netlist.Circuit, *lock.Locked) {
	t.Helper()
	orig := circuits.RippleAdder(4)
	l, err := lock.Weighted(orig, lock.WeightedOptions{
		KeyBits:      keyBits,
		ControlWidth: 3,
		KeyGates:     keyBits,
		Rand:         rng.New(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	return orig, l
}

func TestProtectBasicUnlocksToKey(t *testing.T) {
	_, l := lockedAdder(t, 1, 12)
	cfg, err := Protect(l.Circuit, l.Key, 5, 1, scan.OraPBasic, Options{Rand: rng.New(2)})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := scan.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Unlock(nil); err != nil {
		t.Fatal(err)
	}
	if got := ch.Key(); !boolsEq(got, l.Key) {
		t.Fatalf("unlocked to %v, want %v", got, l.Key)
	}
}

func TestProtectBasicNoneOfTheSeedsIsTheKey(t *testing.T) {
	// The paper stresses that none of the stored values is the key
	// itself. With a mixing LFSR this holds for random keys; assert it
	// for this construction.
	_, l := lockedAdder(t, 3, 12)
	cfg, err := Protect(l.Circuit, l.Key, 5, 1, scan.OraPBasic, Options{Rand: rng.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range cfg.Seeds {
		if s.Len() == len(l.Key) && boolsEq(s.Bools(), l.Key) {
			t.Fatalf("seed %d equals the key — tamper memory would leak it", i)
		}
	}
}

func TestProtectBasicDifferentKeysDifferentSeeds(t *testing.T) {
	_, l := lockedAdder(t, 5, 12)
	cfgA, err := Protect(l.Circuit, l.Key, 5, 1, scan.OraPBasic, Options{Rand: rng.New(6)})
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]bool(nil), l.Key...)
	flipped[0] = !flipped[0]
	// A flipped key is wrong for the circuit, but sequence synthesis is
	// purely linear-algebraic and must still hit it exactly.
	cfgB, err := Protect(l.Circuit, flipped, 5, 1, scan.OraPBasic, Options{Rand: rng.New(6)})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range cfgA.Seeds {
		if !cfgA.Seeds[i].Equal(cfgB.Seeds[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different keys produced identical key sequences")
	}
	chB, _ := scan.New(cfgB)
	chB.Unlock(nil)
	if !boolsEq(chB.Key(), flipped) {
		t.Fatal("flipped-key sequence does not unlock to the flipped key")
	}
}

func TestProtectModifiedUnlocksToKey(t *testing.T) {
	_, l := lockedAdder(t, 7, 12)
	cfg, err := Protect(l.Circuit, l.Key, 5, 1, scan.OraPModified, Options{Rand: rng.New(8)})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Protection != scan.OraPModified || len(cfg.RespInject) == 0 {
		t.Fatalf("config not modified-scheme: %+v", cfg.Protection)
	}
	ch, err := scan.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Unlock(nil); err != nil {
		t.Fatal(err)
	}
	if got := ch.Key(); !boolsEq(got, l.Key) {
		t.Fatalf("modified scheme unlocked to %v, want %v", got, l.Key)
	}
}

func TestProtectModifiedUsesResponses(t *testing.T) {
	// The modified scheme's defining property: the generated key depends
	// on the circuit responses during unlock. Freezing the flip-flops at
	// a nonzero state (what the scenario-(e) Trojan does) must corrupt
	// the key.
	_, l := lockedAdder(t, 9, 12)
	cfg, err := Protect(l.Circuit, l.Key, 5, 1, scan.OraPModified, Options{Rand: rng.New(10)})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := scan.New(cfg)
	ch.SetScanEnable(true)
	ffs := make([]bool, cfg.NumFFs())
	for i := range ffs {
		ffs[i] = i%2 == 0
	}
	ch.ScanInFFs(ffs)
	ch.SetScanEnable(false)
	ch.ArmTrojans(scan.Trojans{FreezeFFs: true})
	if err := ch.Unlock(nil); err != nil {
		t.Fatal(err)
	}
	if boolsEq(ch.Key(), l.Key) {
		t.Fatal("frozen flip-flops still produced the correct key — response feedback ineffective")
	}
}

func TestProtectNone(t *testing.T) {
	_, l := lockedAdder(t, 11, 12)
	cfg, err := Protect(l.Circuit, l.Key, 5, 1, scan.None, Options{Rand: rng.New(12)})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := scan.New(cfg)
	ch.Unlock(nil)
	if !boolsEq(ch.Key(), l.Key) {
		t.Fatal("conventional chip did not load its stored key")
	}
}

func TestProtectValidation(t *testing.T) {
	orig := circuits.RippleAdder(4)
	if _, err := Protect(orig, nil, 5, 1, scan.OraPBasic, Options{Rand: rng.New(1)}); err == nil {
		t.Error("unkeyed core accepted")
	}
	_, l := lockedAdder(t, 13, 12)
	if _, err := Protect(l.Circuit, l.Key[:3], 5, 1, scan.OraPBasic, Options{Rand: rng.New(1)}); err == nil {
		t.Error("wrong key width accepted")
	}
	if _, err := Protect(l.Circuit, l.Key, 5, 1, scan.OraPBasic, Options{}); err == nil {
		t.Error("missing Rand accepted")
	}
}

func TestProtectSparseInjection(t *testing.T) {
	// Fewer reseeding points ("the designer may choose fewer such
	// points") must still synthesize, with more seeded cycles.
	_, l := lockedAdder(t, 14, 12)
	cfg, err := Protect(l.Circuit, l.Key, 5, 1, scan.OraPBasic, Options{
		InjectSpacing: 3,
		Rand:          rng.New(15),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.LFSR.Inject) != 4 {
		t.Fatalf("inject points = %d, want 4", len(cfg.LFSR.Inject))
	}
	if cfg.Schedule.NumSeeds() < 3 {
		t.Fatalf("sparse injection should need ≥3 seeds, got %d", cfg.Schedule.NumSeeds())
	}
	ch, _ := scan.New(cfg)
	ch.Unlock(nil)
	if !boolsEq(ch.Key(), l.Key) {
		t.Fatal("sparse-injection scheme did not unlock correctly")
	}
}

func TestRegisterOverheadAccounting(t *testing.T) {
	cfg := lfsrConfig(256, Options{TapSpacing: 8, InjectSpacing: 1})
	ov := RegisterOverhead(cfg)
	if ov.PulseGenNANDs != 256 || ov.PulseGenInverters != 768 {
		t.Fatalf("pulse generator accounting wrong: %+v", ov)
	}
	if ov.ReseedXORs != 256 {
		t.Fatalf("reseed XORs = %d, want 256", ov.ReseedXORs)
	}
	if ov.TapXORs != 31 {
		t.Fatalf("tap XORs = %d, want 31", ov.TapXORs)
	}
	if ov.Gates() != 256+256+31 {
		t.Fatalf("Gates() = %d", ov.Gates())
	}
	if ov.GatesWithInverters() != ov.Gates()+768 {
		t.Fatalf("GatesWithInverters() = %d", ov.GatesWithInverters())
	}
}

func boolsEq(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestProtectRejectsAllZeroKey(t *testing.T) {
	_, l := lockedAdder(t, 30, 12)
	zero := make([]bool, len(l.Key))
	// The zero key is not the circuit's correct key, but Protect cannot
	// know that — it must refuse regardless, because the cleared register
	// would present exactly this key during test mode.
	if _, err := Protect(l.Circuit, zero, 5, 1, scan.OraPBasic, Options{Rand: rng.New(31)}); err == nil {
		t.Fatal("all-zero key accepted for OraP protection")
	}
	// Conventional (scan.None) chips have no cleared-register hazard.
	if _, err := Protect(l.Circuit, zero, 5, 1, scan.None, Options{Rand: rng.New(32)}); err != nil {
		t.Fatalf("scan.None should accept any key: %v", err)
	}
}

func BenchmarkProtectBasic64(b *testing.B) {
	orig := circuits.RippleAdder(16)
	l, err := lock.Weighted(orig, lock.WeightedOptions{KeyBits: 64, ControlWidth: 3, KeyGates: 21, Rand: rng.New(40)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Protect(l.Circuit, l.Key, 17, 1, scan.OraPBasic, Options{Rand: rng.New(41)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtectModified64(b *testing.B) {
	orig := circuits.RippleAdder(16)
	l, err := lock.Weighted(orig, lock.WeightedOptions{KeyBits: 64, ControlWidth: 3, KeyGates: 21, Rand: rng.New(42)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Protect(l.Circuit, l.Key, 17, 1, scan.OraPModified, Options{Rand: rng.New(43)}); err != nil {
			b.Fatal(err)
		}
	}
}
