package orap

import "orap/internal/lfsr"

// Overhead itemizes the hardware the OraP register adds on top of the
// combinational locking layer, using the paper's accounting: pulse
// generators (one NAND2 plus a three-inverter chain per key-register
// cell), one XOR2 per reseeding point, and one XOR2 per characteristic-
// polynomial tap. The LFSR flip-flops themselves are not charged, "since
// the use of key registers is common to all logic locking techniques".
type Overhead struct {
	// PulseGenNANDs is one NAND2 per key-register cell.
	PulseGenNANDs int
	// PulseGenInverters is the inverter-chain cost (three per cell).
	PulseGenInverters int
	// ReseedXORs is one XOR2 per reseeding point.
	ReseedXORs int
	// TapXORs is one XOR2 per polynomial tap.
	TapXORs int
}

// RegisterOverhead computes the OraP register overhead for a wiring.
func RegisterOverhead(cfg lfsr.Config) Overhead {
	return Overhead{
		PulseGenNANDs:     cfg.N,
		PulseGenInverters: 3 * cfg.N,
		ReseedXORs:        len(cfg.Inject),
		TapXORs:           len(cfg.Taps),
	}
}

// Gates returns the added gate count excluding inverters, the metric of
// the paper's Table I area column.
func (o Overhead) Gates() int {
	return o.PulseGenNANDs + o.ReseedXORs + o.TapXORs
}

// GatesWithInverters returns the added gate count including the pulse
// generators' inverter chains.
func (o Overhead) GatesWithInverters() int {
	return o.Gates() + o.PulseGenInverters
}
