// Package ir compiles gate-level circuits into an immutable, levelized
// program that every evaluation backend shares.
//
// A netlist.Circuit is a mutable builder: gates live in a slice of
// structs with per-gate fanin slices, and consumers used to walk it with
// their own copies of the gate-evaluation switch. ir.Compile flattens a
// finished circuit once into a Program — CSR-style fanin and fanout
// arrays, a compact opcode table, a precomputed topological order with
// its level schedule, and PI/key/PO index maps — and the simulator,
// fault simulator, CNF encoder, AIG builder and ATPG all consume that
// flat view. A Program is never modified after Compile returns, so any
// number of goroutines can evaluate it concurrently without warm-up or
// synchronization.
//
// Invariants established by Compile:
//
//   - Order is a topological order: every node appears after all of its
//     fanins. It is the same order netlist.(*Circuit).TopoOrder returns
//     (Kahn's algorithm with a FIFO queue seeded in ID order), so CNF
//     variable numbering and AIG construction are reproducible across
//     the compiled and uncompiled paths.
//   - Order is level-monotone: node levels are non-decreasing along it.
//     LevelStart records the level boundaries, so Order doubles as a
//     wavefront schedule (all nodes of one level may be evaluated in
//     parallel once the previous level is done).
//   - Fanins preserves pin order; Fanouts mirrors every fanin edge, with
//     duplicate edges kept (matching netlist.FanoutLists).
package ir

import (
	"fmt"

	"orap/internal/netlist"
)

// Op is a compact gate opcode. The values mirror netlist.GateType
// exactly, so conversion is a cast in either direction.
type Op uint8

// Opcodes, in netlist.GateType order.
const (
	OpInput Op = iota
	OpConst0
	OpConst1
	OpBuf
	OpNot
	OpAnd
	OpNand
	OpOr
	OpNor
	OpXor
	OpXnor
)

// String returns the conventional gate name.
func (o Op) String() string { return netlist.GateType(o).String() }

// GateType returns the netlist gate type the opcode mirrors.
func (o Op) GateType() netlist.GateType { return netlist.GateType(o) }

// Program is an immutable compiled circuit. All slice fields are
// read-only after Compile returns; they may be shared freely across
// goroutines and across evaluator clones.
type Program struct {
	// Name echoes the source circuit's name.
	Name string

	// Ops holds the opcode of every node; the index is the node ID
	// (identical to the source circuit's node IDs).
	Ops []Op

	// FaninStart/Fanins is the CSR fanin adjacency: the fanins of node
	// id are Fanins[FaninStart[id]:FaninStart[id+1]], in pin order.
	FaninStart []int32
	Fanins     []int32

	// FanoutStart/Fanouts is the CSR fanout adjacency: the nodes driven
	// by id are Fanouts[FanoutStart[id]:FanoutStart[id+1]]. Duplicate
	// fanin edges yield duplicate fanout entries.
	FanoutStart []int32
	Fanouts     []int32

	// Order lists node IDs in topological, level-monotone order.
	Order []int32
	// Pos is the inverse of Order: Pos[id] is id's position in Order.
	Pos []int32
	// Level is the logic level of every node (inputs and constants 0,
	// gates 1 + max fanin level).
	Level []int32
	// LevelStart indexes Order by level: the nodes of level l are
	// Order[LevelStart[l]:LevelStart[l+1]]; len(LevelStart) is the
	// number of levels + 1.
	LevelStart []int32

	// PIs, Keys and POs hold the primary-input, key-input and
	// primary-output node IDs in declaration order. Inputs is PIs
	// followed by Keys (the scan-chain controllability order).
	PIs    []int32
	Keys   []int32
	POs    []int32
	Inputs []int32
}

// Compile flattens a finished circuit into an immutable Program. The
// circuit is only read; later mutations of it are not reflected in the
// returned program. The structural-soundness conditions (gate arity,
// undriven nets, in-range references, combinational cycles — the same
// conditions internal/check's structural rules diagnose with full
// reports) are validated first and abort the compile, so no downstream
// backend ever sees an ill-formed program.
func Compile(c *netlist.Circuit) (*Program, error) {
	if err := validate(c); err != nil {
		return nil, err
	}
	n := len(c.Gates)
	p := &Program{
		Name:        c.Name,
		Ops:         make([]Op, n),
		FaninStart:  make([]int32, n+1),
		FanoutStart: make([]int32, n+1),
		Order:       make([]int32, 0, n),
		Pos:         make([]int32, n),
		Level:       make([]int32, n),
	}

	// Opcodes and CSR fanins (pin order preserved).
	edges := 0
	for _, g := range c.Gates {
		edges += len(g.Fanin)
	}
	p.Fanins = make([]int32, 0, edges)
	for id, g := range c.Gates {
		p.Ops[id] = Op(g.Type)
		p.FaninStart[id] = int32(len(p.Fanins))
		for _, f := range g.Fanin {
			p.Fanins = append(p.Fanins, int32(f))
		}
	}
	p.FaninStart[n] = int32(len(p.Fanins))

	// CSR fanouts: count, prefix-sum, fill (restoring the prefix sums).
	counts := make([]int32, n)
	for _, f := range p.Fanins {
		counts[f]++
	}
	var sum int32
	for id, cnt := range counts {
		p.FanoutStart[id] = sum
		sum += cnt
	}
	p.FanoutStart[n] = sum
	p.Fanouts = make([]int32, sum)
	next := make([]int32, n)
	copy(next, p.FanoutStart[:n])
	for id := 0; id < n; id++ {
		for _, f := range p.FaninSpan(id) {
			p.Fanouts[next[f]] = int32(id)
			next[f]++
		}
	}

	// Kahn's algorithm with a FIFO queue seeded in ID order — the exact
	// order netlist.TopoOrder produces, which is also level-monotone.
	indeg := make([]int32, n)
	for id := 0; id < n; id++ {
		indeg[id] = p.FaninStart[id+1] - p.FaninStart[id]
	}
	queue := make([]int32, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			queue = append(queue, int32(id))
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		p.Order = append(p.Order, id)
		for _, fo := range p.FanoutSpan(int(id)) {
			indeg[fo]--
			if indeg[fo] == 0 {
				queue = append(queue, fo)
			}
		}
	}
	if len(p.Order) != n {
		return nil, fmt.Errorf("ir: circuit %q contains a combinational cycle (%d of %d nodes ordered)", c.Name, len(p.Order), n)
	}

	// Positions, levels and the level schedule over Order.
	maxLevel := int32(0)
	for i, id := range p.Order {
		p.Pos[id] = int32(i)
		lv := int32(0)
		for _, f := range p.FaninSpan(int(id)) {
			if l := p.Level[f] + 1; l > lv {
				lv = l
			}
		}
		p.Level[id] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	p.LevelStart = make([]int32, maxLevel+2)
	prev := int32(-1)
	for i, id := range p.Order {
		lv := p.Level[id]
		if lv < prev {
			return nil, fmt.Errorf("ir: internal error: order of %q not level-monotone at position %d", c.Name, i)
		}
		for ; prev < lv; prev++ {
			p.LevelStart[prev+1] = int32(i)
		}
	}
	for ; prev <= maxLevel; prev++ {
		p.LevelStart[prev+1] = int32(n)
	}

	p.PIs = toInt32(c.PIs)
	p.Keys = toInt32(c.Keys)
	p.POs = toInt32(c.POs)
	p.Inputs = make([]int32, 0, len(p.PIs)+len(p.Keys))
	p.Inputs = append(p.Inputs, p.PIs...)
	p.Inputs = append(p.Inputs, p.Keys...)
	return p, nil
}

// validate enforces the structural preconditions Compile needs: every
// registered input is an Input node, gate arities are legal, fanin and
// output references are in range, and no Input-type node floats
// unregistered (an undriven net). Cycles are caught later by the Kahn
// pass itself. The conditions mirror internal/check's structural rules;
// check produces the full diagnostic report, Compile only needs a
// verdict (and must not import check, which sits above the IR in the
// analysis stack).
func validate(c *netlist.Circuit) error {
	n := len(c.Gates)
	registered := make(map[int]bool, len(c.PIs)+len(c.Keys))
	for _, in := range c.AllInputs() {
		if in < 0 || in >= n || c.Gates[in].Type != netlist.Input {
			return fmt.Errorf("ir: circuit %q: input list references node %d, which is not an Input node", c.Name, in)
		}
		registered[in] = true
	}
	for id := range c.Gates {
		g := &c.Gates[id]
		switch g.Type {
		case netlist.Input:
			if len(g.Fanin) != 0 {
				return fmt.Errorf("ir: circuit %q: input %q must have no fanin, has %d", c.Name, c.NameOf(id), len(g.Fanin))
			}
			if !registered[id] {
				return fmt.Errorf("ir: circuit %q: net %q has no driver", c.Name, c.NameOf(id))
			}
		case netlist.Const0, netlist.Const1:
			if len(g.Fanin) != 0 {
				return fmt.Errorf("ir: circuit %q: constant %q must have no fanin, has %d", c.Name, c.NameOf(id), len(g.Fanin))
			}
		case netlist.Buf, netlist.Not:
			if len(g.Fanin) != 1 {
				return fmt.Errorf("ir: circuit %q: %v gate %q must have exactly 1 fanin, has %d", c.Name, g.Type, c.NameOf(id), len(g.Fanin))
			}
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor:
			if len(g.Fanin) < 2 {
				return fmt.Errorf("ir: circuit %q: %v gate %q must have at least 2 fanins, has %d", c.Name, g.Type, c.NameOf(id), len(g.Fanin))
			}
		default:
			return fmt.Errorf("ir: circuit %q: node %q has unknown gate type %d", c.Name, c.NameOf(id), uint8(g.Type))
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= n {
				return fmt.Errorf("ir: circuit %q: gate %q references out-of-range fanin %d", c.Name, c.NameOf(id), f)
			}
		}
	}
	for _, o := range c.POs {
		if o < 0 || o >= n {
			return fmt.Errorf("ir: circuit %q: output list references out-of-range node %d", c.Name, o)
		}
	}
	return nil
}

// MustCompile is Compile that panics on cyclic circuits; intended for
// trusted, already-validated netlists.
func MustCompile(c *netlist.Circuit) *Program {
	p, err := Compile(c)
	if err != nil {
		panic(err)
	}
	return p
}

func toInt32(ids []int) []int32 {
	out := make([]int32, len(ids))
	for i, id := range ids {
		out[i] = int32(id)
	}
	return out
}

// NumNodes returns the total node count, including inputs and constants.
func (p *Program) NumNodes() int { return len(p.Ops) }

// NumInputs returns the primary (non-key) input count.
func (p *Program) NumInputs() int { return len(p.PIs) }

// NumKeys returns the key input count.
func (p *Program) NumKeys() int { return len(p.Keys) }

// NumOutputs returns the primary output count.
func (p *Program) NumOutputs() int { return len(p.POs) }

// NumLevels returns the number of logic levels (depth + 1).
func (p *Program) NumLevels() int { return len(p.LevelStart) - 1 }

// Depth returns the maximum logic level across primary outputs.
func (p *Program) Depth() int {
	d := int32(0)
	for _, o := range p.POs {
		if p.Level[o] > d {
			d = p.Level[o]
		}
	}
	return int(d)
}

// FaninSpan returns the fanin IDs of node id, in pin order. The returned
// slice aliases the program and must not be modified.
func (p *Program) FaninSpan(id int) []int32 {
	return p.Fanins[p.FaninStart[id]:p.FaninStart[id+1]]
}

// FanoutSpan returns the IDs of the nodes driven by id. The returned
// slice aliases the program and must not be modified.
func (p *Program) FanoutSpan(id int) []int32 {
	return p.Fanouts[p.FanoutStart[id]:p.FanoutStart[id+1]]
}

// TransitiveFanout marks every node in the transitive fanout cone of the
// given roots (roots included).
func (p *Program) TransitiveFanout(roots ...int) []bool {
	out := make([]bool, p.NumNodes())
	stack := make([]int32, 0, len(roots))
	for _, r := range roots {
		stack = append(stack, int32(r))
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id < 0 || int(id) >= len(out) || out[id] {
			continue
		}
		out[id] = true
		stack = append(stack, p.FanoutSpan(int(id))...)
	}
	return out
}

// TransitiveFanin marks every node in the transitive fanin cone of the
// given roots (roots included).
func (p *Program) TransitiveFanin(roots ...int) []bool {
	in := make([]bool, p.NumNodes())
	stack := make([]int32, 0, len(roots))
	for _, r := range roots {
		stack = append(stack, int32(r))
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id < 0 || int(id) >= len(in) || in[id] {
			continue
		}
		in[id] = true
		stack = append(stack, p.FaninSpan(int(id))...)
	}
	return in
}
