package ir_test

import (
	"sync"
	"testing"

	"orap/internal/bench"
	"orap/internal/circuits"
	"orap/internal/ir"
	"orap/internal/sim"
)

// TestConcurrentEvalNoWarmup evaluates a freshly parsed circuit from 8
// goroutines with no warm-up call of any kind. Before the compiled IR,
// netlist.Circuit carried lazily cached topo/level fields and every
// concurrent consumer needed a serial MustTopoOrder() warm-up first;
// this test (run under -race in CI) pins the guarantee that no such
// warm-up is needed anywhere anymore.
func TestConcurrentEvalNoWarmup(t *testing.T) {
	c, err := bench.ParseString(circuits.C17Bench, "c17")
	if err != nil {
		t.Fatal(err)
	}
	pi := make([]bool, c.NumInputs())
	for i := range pi {
		pi[i] = i%2 == 0
	}
	want, err := sim.Eval(c, pi, nil)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				var got []bool
				var err error
				switch iter % 3 {
				case 0:
					// Fresh compile per call, racing other compiles.
					got, err = sim.Eval(c, pi, nil)
				case 1:
					// Compile + scalar program eval.
					prog, cerr := ir.Compile(c)
					if cerr != nil {
						errs[g] = cerr
						return
					}
					got, err = prog.Eval(pi, nil)
				default:
					// Bit-parallel evaluator built from scratch.
					p, perr := sim.NewParallel(c, 1)
					if perr != nil {
						errs[g] = perr
						return
					}
					for i, id := range c.PIs {
						p.SetInputConst(id, pi[i])
					}
					p.Run()
					got = make([]bool, len(c.POs))
					for i, id := range c.POs {
						got[i] = p.Value(id)[0]&1 == 1
					}
					p.Release()
				}
				if err != nil {
					errs[g] = err
					return
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("goroutine %d iter %d: output %d = %v, want %v", g, iter, i, got[i], want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
