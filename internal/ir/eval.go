package ir

import "fmt"

// This file is the shared gate-evaluation kernel. Every engine that
// computes circuit values — the 64-way bit-parallel simulator, the
// single-pattern evaluators behind oracles and attacks, and the fault
// simulator's faulty-value propagation — reduces to one of the three
// entry points here, so the gate semantics live in exactly one place.

// RunWords evaluates every non-input node over the node-major value
// buffer vals, which holds `words` 64-pattern words per node
// (vals[id*words:(id+1)*words]). Input node words must be set by the
// caller beforehand; all other node words are overwritten. The program
// is only read, so concurrent calls with distinct buffers are safe.
func (p *Program) RunWords(vals []uint64, words int) {
	if words == 1 {
		// One word per node: direct scalar-word ops, skipping the
		// per-node subslice machinery that pays off only for wide blocks.
		// This is the fault simulator's good-value path.
		p.runWords1(vals)
		return
	}
	W := words
	for _, id32 := range p.Order {
		id := int(id32)
		op := p.Ops[id]
		if op == OpInput {
			continue
		}
		dst := vals[id*W : id*W+W]
		fan := p.Fanins[p.FaninStart[id]:p.FaninStart[id+1]]
		switch op {
		case OpConst0:
			for i := range dst {
				dst[i] = 0
			}
		case OpConst1:
			for i := range dst {
				dst[i] = ^uint64(0)
			}
		case OpBuf:
			src := vals[int(fan[0])*W : int(fan[0])*W+W]
			copy(dst, src)
		case OpNot:
			src := vals[int(fan[0])*W : int(fan[0])*W+W]
			src = src[:len(dst)]
			for i := range dst {
				dst[i] = ^src[i]
			}
		case OpAnd, OpNand:
			a := vals[int(fan[0])*W : int(fan[0])*W+W]
			if len(fan) == 2 {
				// Fused two-input form: one pass instead of copy+combine.
				b := vals[int(fan[1])*W : int(fan[1])*W+W]
				a, b = a[:len(dst)], b[:len(dst)]
				if op == OpNand {
					for i := range dst {
						dst[i] = ^(a[i] & b[i])
					}
				} else {
					for i := range dst {
						dst[i] = a[i] & b[i]
					}
				}
				continue
			}
			copy(dst, a)
			for _, f := range fan[1:] {
				src := vals[int(f)*W : int(f)*W+W]
				src = src[:len(dst)]
				for i := range dst {
					dst[i] &= src[i]
				}
			}
			if op == OpNand {
				for i := range dst {
					dst[i] = ^dst[i]
				}
			}
		case OpOr, OpNor:
			a := vals[int(fan[0])*W : int(fan[0])*W+W]
			if len(fan) == 2 {
				b := vals[int(fan[1])*W : int(fan[1])*W+W]
				a, b = a[:len(dst)], b[:len(dst)]
				if op == OpNor {
					for i := range dst {
						dst[i] = ^(a[i] | b[i])
					}
				} else {
					for i := range dst {
						dst[i] = a[i] | b[i]
					}
				}
				continue
			}
			copy(dst, a)
			for _, f := range fan[1:] {
				src := vals[int(f)*W : int(f)*W+W]
				src = src[:len(dst)]
				for i := range dst {
					dst[i] |= src[i]
				}
			}
			if op == OpNor {
				for i := range dst {
					dst[i] = ^dst[i]
				}
			}
		case OpXor, OpXnor:
			a := vals[int(fan[0])*W : int(fan[0])*W+W]
			if len(fan) == 2 {
				b := vals[int(fan[1])*W : int(fan[1])*W+W]
				a, b = a[:len(dst)], b[:len(dst)]
				if op == OpXnor {
					for i := range dst {
						dst[i] = ^(a[i] ^ b[i])
					}
				} else {
					for i := range dst {
						dst[i] = a[i] ^ b[i]
					}
				}
				continue
			}
			copy(dst, a)
			for _, f := range fan[1:] {
				src := vals[int(f)*W : int(f)*W+W]
				src = src[:len(dst)]
				for i := range dst {
					dst[i] ^= src[i]
				}
			}
			if op == OpXnor {
				for i := range dst {
					dst[i] = ^dst[i]
				}
			}
		}
	}
}

// runWords1 is RunWords for the single-word layout (vals[id] is node id's
// only word).
func (p *Program) runWords1(vals []uint64) {
	for _, id32 := range p.Order {
		id := int(id32)
		op := p.Ops[id]
		if op == OpInput {
			continue
		}
		fan := p.Fanins[p.FaninStart[id]:p.FaninStart[id+1]]
		switch op {
		case OpConst0:
			vals[id] = 0
		case OpConst1:
			vals[id] = ^uint64(0)
		case OpBuf:
			vals[id] = vals[fan[0]]
		case OpNot:
			vals[id] = ^vals[fan[0]]
		case OpAnd, OpNand:
			v := vals[fan[0]]
			for _, f := range fan[1:] {
				v &= vals[f]
			}
			if op == OpNand {
				v = ^v
			}
			vals[id] = v
		case OpOr, OpNor:
			v := vals[fan[0]]
			for _, f := range fan[1:] {
				v |= vals[f]
			}
			if op == OpNor {
				v = ^v
			}
			vals[id] = v
		case OpXor, OpXnor:
			v := vals[fan[0]]
			for _, f := range fan[1:] {
				v ^= vals[f]
			}
			if op == OpXnor {
				v = ^v
			}
			vals[id] = v
		}
	}
}

// RunBools evaluates every non-input node over the per-node boolean
// buffer vals (len NumNodes). Input values must be set beforehand.
func (p *Program) RunBools(vals []bool) {
	for _, id32 := range p.Order {
		id := int(id32)
		op := p.Ops[id]
		if op == OpInput {
			continue
		}
		fan := p.Fanins[p.FaninStart[id]:p.FaninStart[id+1]]
		switch op {
		case OpConst0:
			vals[id] = false
		case OpConst1:
			vals[id] = true
		case OpBuf:
			vals[id] = vals[fan[0]]
		case OpNot:
			vals[id] = !vals[fan[0]]
		case OpAnd, OpNand:
			v := true
			for _, f := range fan {
				v = v && vals[f]
			}
			vals[id] = v != (op == OpNand)
		case OpOr, OpNor:
			v := false
			for _, f := range fan {
				v = v || vals[f]
			}
			vals[id] = v != (op == OpNor)
		case OpXor, OpXnor:
			v := false
			for _, f := range fan {
				v = v != vals[f]
			}
			vals[id] = v != (op == OpXnor)
		}
	}
}

// Eval evaluates one pattern given as primary-input and key bit slices
// and returns the primary-output bits in declaration order. It allocates
// a fresh value buffer per call and is therefore safe to call from any
// number of goroutines; loops should prefer a reusable evaluator (such
// as sim.Evaluator) that amortizes the buffer.
func (p *Program) Eval(pi, key []bool) ([]bool, error) {
	if len(pi) != len(p.PIs) {
		return nil, fmt.Errorf("ir: got %d primary input bits, program has %d", len(pi), len(p.PIs))
	}
	if len(key) != len(p.Keys) {
		return nil, fmt.Errorf("ir: got %d key bits, program has %d", len(key), len(p.Keys))
	}
	vals := make([]bool, p.NumNodes())
	p.EvalInto(vals, pi, key)
	out := make([]bool, len(p.POs))
	for i, id := range p.POs {
		out[i] = vals[id]
	}
	return out, nil
}

// EvalInto evaluates one pattern into the caller's value buffer
// (len NumNodes), leaving every node's value readable. Widths must have
// been checked by the caller.
func (p *Program) EvalInto(vals []bool, pi, key []bool) {
	for i, id := range p.PIs {
		vals[id] = pi[i]
	}
	for i, id := range p.Keys {
		vals[id] = key[i]
	}
	p.RunBools(vals)
}

// EvalWord computes one 64-pattern word for a gate of type op with n
// fanins whose words are supplied by pin(i). It is the single-word form
// of the kernel, used by the fault simulator to recompute a node under
// an injected fault. Input nodes are the caller's responsibility.
func EvalWord(op Op, n int, pin func(int) uint64) uint64 {
	switch op {
	case OpConst0:
		return 0
	case OpConst1:
		return ^uint64(0)
	case OpBuf:
		return pin(0)
	case OpNot:
		return ^pin(0)
	case OpAnd, OpNand:
		v := ^uint64(0)
		for i := 0; i < n; i++ {
			v &= pin(i)
		}
		if op == OpNand {
			v = ^v
		}
		return v
	case OpOr, OpNor:
		v := uint64(0)
		for i := 0; i < n; i++ {
			v |= pin(i)
		}
		if op == OpNor {
			v = ^v
		}
		return v
	case OpXor, OpXnor:
		v := uint64(0)
		for i := 0; i < n; i++ {
			v ^= pin(i)
		}
		if op == OpXnor {
			v = ^v
		}
		return v
	}
	return 0
}
