package ir_test

import (
	"fmt"
	"testing"

	"orap/internal/cnf"
	"orap/internal/faultsim"
	"orap/internal/ir"
	"orap/internal/netlist"
	"orap/internal/sat"
	"orap/internal/sim"
)

// gateCircuit builds a minimal circuit exposing one gate of type t as the
// only primary output, with as many primary inputs as the gate needs.
func gateCircuit(t *testing.T, gt netlist.GateType, arity int) *netlist.Circuit {
	t.Helper()
	c := netlist.New(fmt.Sprintf("consistency-%v-%d", gt, arity))
	ins := make([]int, arity)
	for i := range ins {
		id, err := c.AddInput(fmt.Sprintf("i%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ins[i] = id
	}
	var po int
	switch gt {
	case netlist.Input:
		po = ins[0]
	case netlist.Const0, netlist.Const1:
		id, err := c.AddConst(gt == netlist.Const1, "k")
		if err != nil {
			t.Fatal(err)
		}
		po = id
	default:
		po = c.MustAddGate(gt, "g", ins...)
	}
	c.MarkOutput(po)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// engines evaluates the circuit's single output on one input pattern
// through every evaluation backend and returns the four results in the
// order: IR scalar kernel, bit-parallel word kernel, fault simulator's
// good-value path, CNF via SAT.
func engines(t *testing.T, c *netlist.Circuit, pattern []bool) [4]bool {
	t.Helper()
	var out [4]bool

	// 1. IR scalar kernel.
	prog, err := ir.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Eval(pattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	out[0] = res[0]

	// 2. Bit-parallel word kernel via sim.Parallel.
	p, err := sim.ForProgram(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range c.PIs {
		p.SetInputConst(id, pattern[i])
	}
	p.Run()
	out[1] = p.Value(c.POs[0])[0]&1 == 1
	p.Release()

	// 3. Fault simulator: a stuck-at-0 fault on the output is detected by
	// a pattern exactly when the good output value is 1 on that pattern.
	fs, err := faultsim.ForProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	detected, err := fs.DetectsWithPattern(faultsim.Fault{Node: c.POs[0], Pin: -1, SA1: false}, pattern)
	if err != nil {
		t.Fatal(err)
	}
	out[2] = detected

	// 4. CNF: Tseitin-encode with the inputs fixed and read the output
	// variable from the satisfying model.
	s := sat.New()
	inst, err := cnf.EncodeProgram(s, prog, cnf.Options{FixedPIs: pattern})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("CNF of %s UNSAT under fixed inputs", c.Name)
	}
	out[3] = s.Value(inst.POVars[0]) == sat.True
	return out
}

// TestCrossEngineConsistency checks, for every gate type, that the IR
// scalar kernel, the bit-parallel simulator, the fault simulator's
// good-value evaluation and the CNF encoding agree on the full truth
// table. Any divergence between the engines — all of which now reduce to
// the shared IR kernel or its clause-level mirror — fails here first.
func TestCrossEngineConsistency(t *testing.T) {
	cases := []struct {
		gt      netlist.GateType
		arities []int
	}{
		{netlist.Input, []int{1}},
		{netlist.Const0, []int{0}},
		{netlist.Const1, []int{0}},
		{netlist.Buf, []int{1}},
		{netlist.Not, []int{1}},
		{netlist.And, []int{2, 3}},
		{netlist.Nand, []int{2, 3}},
		{netlist.Or, []int{2, 3}},
		{netlist.Nor, []int{2, 3}},
		{netlist.Xor, []int{2, 3}}, // arity 3 exercises the CNF XOR chain
		{netlist.Xnor, []int{2, 3}},
	}
	engineName := [4]string{"ir.Eval", "sim.Parallel", "faultsim", "cnf+sat"}
	for _, tc := range cases {
		for _, arity := range tc.arities {
			t.Run(fmt.Sprintf("%v/%d", tc.gt, arity), func(t *testing.T) {
				c := gateCircuit(t, tc.gt, arity)
				pattern := make([]bool, arity)
				for bits := 0; bits < 1<<arity; bits++ {
					for i := range pattern {
						pattern[i] = bits&(1<<i) != 0
					}
					got := engines(t, c, pattern)
					for e := 1; e < len(got); e++ {
						if got[e] != got[0] {
							t.Fatalf("%v on %v: %s says %v but %s says %v",
								tc.gt, pattern, engineName[0], got[0], engineName[e], got[e])
						}
					}
				}
			})
		}
	}
}
