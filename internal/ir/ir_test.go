package ir

import (
	"testing"

	"orap/internal/netlist"
)

// TestOpMirrorsGateType pins the cast-compatibility contract between Op
// and netlist.GateType.
func TestOpMirrorsGateType(t *testing.T) {
	pairs := []struct {
		op Op
		gt netlist.GateType
	}{
		{OpInput, netlist.Input}, {OpConst0, netlist.Const0}, {OpConst1, netlist.Const1},
		{OpBuf, netlist.Buf}, {OpNot, netlist.Not}, {OpAnd, netlist.And},
		{OpNand, netlist.Nand}, {OpOr, netlist.Or}, {OpNor, netlist.Nor},
		{OpXor, netlist.Xor}, {OpXnor, netlist.Xnor},
	}
	for _, p := range pairs {
		if uint8(p.op) != uint8(p.gt) {
			t.Fatalf("opcode %v = %d does not mirror gate type %v = %d", p.op, p.op, p.gt, uint8(p.gt))
		}
		if p.op.String() != p.gt.String() {
			t.Fatalf("opcode %v stringifies as %q, gate type as %q", p.op, p.op.String(), p.gt.String())
		}
	}
}

// testCircuit builds a small multi-level circuit exercising every
// non-constant gate type.
func testCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("irtest")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	k, _ := c.AddKeyInput("keyinput0")
	one, _ := c.AddConst(true, "one")
	n1 := c.MustAddGate(netlist.And, "n1", a, b)
	n2 := c.MustAddGate(netlist.Xor, "n2", n1, k)
	n3 := c.MustAddGate(netlist.Nor, "n3", a, n2, one)
	n4 := c.MustAddGate(netlist.Not, "n4", n3)
	n5 := c.MustAddGate(netlist.Nand, "n5", n2, n4)
	n6 := c.MustAddGate(netlist.Or, "n6", n5, b)
	n7 := c.MustAddGate(netlist.Xnor, "n7", n6, n1)
	n8 := c.MustAddGate(netlist.Buf, "n8", n7)
	c.MarkOutput(n5)
	c.MarkOutput(n8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCompileMatchesNetlistViews checks the flat arrays against the
// netlist package's reference computations: same topological order, same
// levels, same fanout adjacency.
func TestCompileMatchesNetlistViews(t *testing.T) {
	c := testCircuit(t)
	p, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(p.Order) {
		t.Fatalf("order length %d vs netlist %d", len(p.Order), len(order))
	}
	for i, id := range order {
		if int(p.Order[i]) != id {
			t.Fatalf("order[%d] = %d, netlist has %d", i, p.Order[i], id)
		}
		if int(p.Pos[id]) != i {
			t.Fatalf("pos[%d] = %d, want %d", id, p.Pos[id], i)
		}
	}
	levels, err := c.Levels()
	if err != nil {
		t.Fatal(err)
	}
	for id, lv := range levels {
		if int(p.Level[id]) != lv {
			t.Fatalf("level[%d] = %d, netlist has %d", id, p.Level[id], lv)
		}
	}
	fanout := c.FanoutLists()
	for id := range fanout {
		span := p.FanoutSpan(id)
		if len(span) != len(fanout[id]) {
			t.Fatalf("node %d fanout count %d vs netlist %d", id, len(span), len(fanout[id]))
		}
		for i, f := range fanout[id] {
			if int(span[i]) != f {
				t.Fatalf("node %d fanout[%d] = %d, netlist has %d", id, i, span[i], f)
			}
		}
	}
	for id, g := range c.Gates {
		span := p.FaninSpan(id)
		if len(span) != len(g.Fanin) {
			t.Fatalf("node %d fanin count %d vs netlist %d", id, len(span), len(g.Fanin))
		}
		for i, f := range g.Fanin {
			if int(span[i]) != f {
				t.Fatalf("node %d fanin[%d] = %d, netlist has %d", id, i, span[i], f)
			}
		}
	}
	if d, err := c.Depth(); err != nil || p.Depth() != d {
		t.Fatalf("depth %d (err %v) vs program %d", d, err, p.Depth())
	}
}

// TestLevelSchedule checks that LevelStart partitions Order into
// contiguous, level-monotone wavefronts.
func TestLevelSchedule(t *testing.T) {
	p := MustCompile(testCircuit(t))
	if p.LevelStart[0] != 0 || int(p.LevelStart[p.NumLevels()]) != p.NumNodes() {
		t.Fatalf("level schedule does not span the order: %v", p.LevelStart)
	}
	for l := 0; l < p.NumLevels(); l++ {
		for _, id := range p.Order[p.LevelStart[l]:p.LevelStart[l+1]] {
			if int(p.Level[id]) != l {
				t.Fatalf("node %d scheduled at level %d but has level %d", id, l, p.Level[id])
			}
		}
	}
}

// TestEvalAgainstTruth evaluates the scalar and word kernels against an
// independent truth model on every input combination.
func TestEvalAgainstTruth(t *testing.T) {
	c := testCircuit(t)
	p := MustCompile(c)
	// Reference: n1=a&b, n2=n1^k, n3=!(a|n2|1)=false, n4=true,
	// n5=!(n2&n4)=!n2, n6=n5|b, n7=!(n6^n1), n8=n7. POs: n5, n8.
	truth := func(a, b, k bool) (bool, bool) {
		n1 := a && b
		n2 := n1 != k
		n5 := !n2
		n6 := n5 || b
		n7 := !(n6 != n1)
		return n5, n7
	}
	words := make([]uint64, p.NumNodes())
	for bits := 0; bits < 8; bits++ {
		a, b, k := bits&1 != 0, bits&2 != 0, bits&4 != 0
		w5, w8 := truth(a, b, k)
		out, err := p.Eval([]bool{a, b}, []bool{k})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != w5 || out[1] != w8 {
			t.Fatalf("Eval(a=%v b=%v k=%v) = %v, want [%v %v]", a, b, k, out, w5, w8)
		}
		// Word kernel: replicate the scalar pattern across all 64 lanes.
		for i, id := range p.Inputs {
			var w uint64
			if []bool{a, b, k}[i] {
				w = ^uint64(0)
			}
			words[id] = w
		}
		p.RunWords(words, 1)
		for i, want := range []bool{w5, w8} {
			got := words[p.POs[i]]
			var exp uint64
			if want {
				exp = ^uint64(0)
			}
			if got != exp {
				t.Fatalf("RunWords PO %d on a=%v b=%v k=%v: got %x want %x", i, a, b, k, got, exp)
			}
		}
	}
}

// TestCompileRejectsCycle checks the cycle diagnostic.
func TestCompileRejectsCycle(t *testing.T) {
	c := netlist.New("cyclic")
	a, _ := c.AddInput("a")
	g1 := c.MustAddGate(netlist.And, "g1", a, a)
	g2 := c.MustAddGate(netlist.Or, "g2", g1, a)
	// Introduce a back edge by hand (builders cannot, by construction).
	c.Gates[g1].Fanin[1] = g2
	if _, err := Compile(c); err == nil {
		t.Fatal("Compile accepted a cyclic circuit")
	}
}

// TestTransitiveCones compares the CSR cone walks against the netlist
// reference implementations.
func TestTransitiveCones(t *testing.T) {
	c := testCircuit(t)
	p := MustCompile(c)
	for id := 0; id < p.NumNodes(); id++ {
		wantOut := c.TransitiveFanout(id)
		gotOut := p.TransitiveFanout(id)
		wantIn := c.TransitiveFanin(id)
		gotIn := p.TransitiveFanin(id)
		for i := range wantOut {
			if wantOut[i] != gotOut[i] {
				t.Fatalf("TransitiveFanout(%d) differs at node %d", id, i)
			}
			if wantIn[i] != gotIn[i] {
				t.Fatalf("TransitiveFanin(%d) differs at node %d", id, i)
			}
		}
	}
}
