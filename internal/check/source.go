package check

import (
	"fmt"
	"io"
	"os"
	"strings"

	"orap/internal/bench"
	"orap/internal/netlist"
)

// parseRule maps bench parse-error codes onto check rule IDs.
var parseRule = map[bench.ErrCode]string{
	bench.ErrSyntax:      RuleSyntax,
	bench.ErrUnknownOp:   RuleUnknownOp,
	bench.ErrDupDef:      RuleDupDef,
	bench.ErrMultiDriven: RuleMultiDriven,
	bench.ErrUndefined:   RuleUndefined,
	bench.ErrCycle:       RuleCycle,
	bench.ErrStructure:   RuleArity,
	bench.ErrIO:          RuleIO,
}

// FromParseError converts a bench parse failure into a diagnostic.
// Non-ParseError values map onto a generic syntax diagnostic.
func FromParseError(err error) Diagnostic {
	pe, ok := err.(*bench.ParseError)
	if !ok {
		return Diagnostic{Rule: RuleSyntax, Sev: Error, Node: -1, Msg: err.Error()}
	}
	rule, ok := parseRule[pe.Code]
	if !ok {
		rule = RuleSyntax
	}
	return Diagnostic{
		Rule: rule,
		Sev:  Error,
		Node: -1,
		Name: pe.Token,
		Line: pe.Line,
		Msg:  pe.Msg,
	}
}

// Source parses a .bench description and checks it. Parse failures come
// back as a report with a single source-level diagnostic and a nil
// circuit; successful parses return the circuit and the full Circuit
// report.
func Source(r io.Reader, name string) (*netlist.Circuit, *Report) {
	c, err := bench.Parse(r, name)
	if err != nil {
		return nil, &Report{Circuit: name, Diags: []Diagnostic{FromParseError(err)}}
	}
	return c, Circuit(c)
}

// SourceString is Source over an in-memory description.
func SourceString(src, name string) (*netlist.Circuit, *Report) {
	return Source(strings.NewReader(src), name)
}

// File opens, parses and checks a .bench file. The returned error covers
// only I/O failures on open; parse and structural findings are in the
// report.
func File(path string) (*netlist.Circuit, *Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	c, rep := Source(f, path)
	return c, rep, nil
}

// LoadFile is the command-line loading discipline shared by the cmd/*
// tools: parse path, run the full rule set, fail on any error-severity
// diagnostic, and — when warn is non-nil (the -Wall flag) — print the
// surviving warning- and info-level diagnostics to it.
func LoadFile(path string, warn io.Writer) (*netlist.Circuit, error) {
	c, rep, err := File(path)
	if err != nil {
		return nil, err
	}
	if warn != nil {
		for _, d := range rep.Diags {
			fmt.Fprintf(warn, "%s: %s\n", rep.Circuit, d)
		}
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	return c, nil
}
