// Clean-sweep gate: every circuit the repo ships, and every locked
// variant the lock package produces from them, must come out of the
// full checker with zero error-severity diagnostics. Lives in an
// external test package because lock (via sim and ir) sits above check
// in the import graph.
package check_test

import (
	"testing"

	"orap/internal/check"
	"orap/internal/circuits"
	"orap/internal/lock"
	"orap/internal/netlist"
	"orap/internal/rng"
)

func shipped() map[string]*netlist.Circuit {
	return map[string]*netlist.Circuit{
		"c17":         circuits.C17(),
		"fulladder":   circuits.FullAdder(),
		"rippleadder": circuits.RippleAdder(4),
		"parity":      circuits.Parity(8),
		"comparator4": circuits.Comparator4(),
		"mux21":       circuits.Mux21(),
	}
}

func assertNoErrors(t *testing.T, name string, c *netlist.Circuit) {
	t.Helper()
	rep := check.Circuit(c)
	if errs := rep.Errors(); len(errs) != 0 {
		t.Errorf("%s: %d error diagnostics:\n%s", name, len(errs), rep)
	}
}

func TestShippedCircuitsClean(t *testing.T) {
	for name, c := range shipped() {
		assertNoErrors(t, name, c)
	}
}

func TestLockedVariantsClean(t *testing.T) {
	lockers := map[string]func(*netlist.Circuit) (*lock.Locked, error){
		"randomxor": func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.RandomXOR(c, 3, rng.New(11))
		},
		"weighted": func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.Weighted(c, lock.WeightedOptions{
				KeyBits: 6, ControlWidth: 3, Rand: rng.New(12),
			})
		},
		"sarlock": func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.SARLock(c, 3, rng.New(13))
		},
		"antisat": func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.AntiSAT(c, 4, rng.New(14))
		},
		"ttlock": func(c *netlist.Circuit) (*lock.Locked, error) {
			return lock.TTLock(c, 3, rng.New(15))
		},
	}
	for cname, c := range shipped() {
		for lname, lk := range lockers {
			l, err := lk(c.Clone())
			if err != nil {
				// Some schemes need more inputs than the smallest
				// circuits offer; that is a locking precondition, not
				// a netlist defect.
				t.Logf("%s/%s: skipped (%v)", cname, lname, err)
				continue
			}
			assertNoErrors(t, cname+"/"+lname, l.Circuit)
		}
	}
}
