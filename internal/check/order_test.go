package check_test

import (
	"reflect"
	"sort"
	"testing"

	"orap/internal/check"
	"orap/internal/netlist"
)

// buildMessy assembles a circuit that trips rules from every hygiene
// group at once — dangling gate, dead cone, unused input, constant
// output, misnamed key, non-XOR key shape — so the canonical report
// order is actually exercised across rule boundaries.
func buildMessy(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("messy")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	if _, err := c.AddInput("unused"); err != nil {
		t.Fatal(err)
	}
	k, err := c.AddKeyInput("oddname")
	if err != nil {
		t.Fatal(err)
	}
	one, _ := c.AddConst(true, "one")
	stuck := c.MustAddGate(netlist.Or, "stuck", a, one)    // const-out
	keyed := c.MustAddGate(netlist.And, "keyed", stuck, k) // non-XOR key shape
	dead := c.MustAddGate(netlist.And, "deadsrc", a, b)    // dead cone root
	c.MustAddGate(netlist.Not, "dangling", dead)           // dangling, makes deadsrc a dead cone
	out := c.MustAddGate(netlist.Or, "out", keyed, b)      // live output
	if err := c.MarkOutput(out); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestReportCanonicalOrder pins the deterministic diagnostic order:
// rule catalog order first, node ID second, source line third — and
// identical reports across repeated runs.
func TestReportCanonicalOrder(t *testing.T) {
	c := buildMessy(t)
	rep1 := check.Circuit(c)
	rep2 := check.Circuit(c)
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("two checks of the same circuit differ:\n%s\nvs\n%s", rep1, rep2)
	}
	rules := map[string]bool{}
	for _, d := range rep1.Diags {
		rules[d.Rule] = true
	}
	for _, want := range []string{check.RuleDangling, check.RuleDeadCone, check.RuleUnusedInput,
		check.RuleConstOut, check.RuleKeyNaming, check.RuleKeyGateShape} {
		if !rules[want] {
			t.Fatalf("fixture no longer trips %s; report:\n%s", want, rep1)
		}
	}
	rank := map[string]int{
		check.RuleCycle: 0, check.RuleUndriven: 1, check.RuleArity: 2,
		check.RuleDangling: 3, check.RuleDeadCone: 4, check.RuleUnusedInput: 5,
		check.RuleConstOut: 6, check.RuleKeyUnobservable: 7, check.RuleKeyNaming: 8,
		check.RuleKeyGateShape: 9,
	}
	ordered := sort.SliceIsSorted(rep1.Diags, func(i, j int) bool {
		a, b := rep1.Diags[i], rep1.Diags[j]
		if rank[a.Rule] != rank[b.Rule] {
			return rank[a.Rule] < rank[b.Rule]
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Line < b.Line
	})
	if !ordered {
		t.Fatalf("diagnostics not in canonical order:\n%s", rep1)
	}
}

// Structural reports sort too, even on the early-exit path.
func TestStructuralReportSorted(t *testing.T) {
	c := netlist.New("broken")
	a, _ := c.AddInput("a")
	g := c.MustAddGate(netlist.And, "g", a, a)
	c.Gates[g].Fanin = c.Gates[g].Fanin[:1] // arity violation
	n := c.MustAddGate(netlist.Not, "n", g)
	c.Gates[n].Fanin = append(c.Gates[n].Fanin, a) // second arity violation
	rep1 := check.Structural(c)
	rep2 := check.Structural(c)
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatal("structural reports differ across runs")
	}
	for i := 1; i < len(rep1.Diags); i++ {
		if rep1.Diags[i-1].Node > rep1.Diags[i].Node {
			t.Fatalf("structural diagnostics out of node order:\n%s", rep1)
		}
	}
}
