package check

import "testing"

// FuzzCheckCircuit extends the .bench fuzz surface through the checker:
// whatever the parser accepts or rejects, running the full rule set must
// never panic — diagnostics and clean reports are both fine.
func FuzzCheckCircuit(f *testing.F) {
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
	f.Add("INPUT(a)\nINPUT(keyinput0)\nOUTPUT(o)\no = XOR(a, keyinput0)\n")
	f.Add("INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = OR(a, x)\n")
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead = OR(a, a)\n")
	f.Add("INPUT(a)\nOUTPUT(y)\nz = XOR(a, a)\ny = AND(a, z)\n")
	f.Add("q = DFF(d)\nINPUT(a)\nOUTPUT(y)\nd = AND(a, q)\ny = NOT(q)\n")
	f.Add("p cnf nonsense\n= ()\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, rep := SourceString(src, "fuzz")
		if rep == nil {
			t.Fatal("SourceString returned a nil report")
		}
		if c == nil && len(rep.Diags) == 0 {
			t.Fatal("parse failed but the report is empty")
		}
		// Diagnostics must render without panicking either.
		_ = rep.String()
		for _, d := range rep.Diags {
			_ = d.String()
		}
	})
}
